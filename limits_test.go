package lucidscript

import (
	"errors"
	"strings"
	"testing"
)

// catCSV adds a categorical City column to the diabetes fixture so
// get_dummies genuinely widens the frame (testCSV is all numeric, where
// get_dummies is the identity) — the column budgets need something to trip.
const catCSV = `Glucose,SkinThickness,Age,City,Outcome
148,35,50,ann,1
85,29,31,bee,0
183,,32,cid,1
89,23,21,dov,0
137,35,33,elk,1
116,25,30,fay,0
78,32,26,ann,1
115,,29,bee,0
197,45,53,cid,1
125,96,54,dov,1
110,37,30,elk,0
168,15,34,fay,1
`

// newCatSystem is newTestSystem over catCSV.
func newCatSystem(t *testing.T, opts Options) *System {
	t.Helper()
	data, err := ReadCSV(strings.NewReader(catCSV))
	if err != nil {
		t.Fatal(err)
	}
	var corpus []*Script
	for i := 0; i < 5; i++ {
		s, err := ParseScript(corpusScript)
		if err != nil {
			t.Fatal(err)
		}
		corpus = append(corpus, s)
	}
	sys, err := NewSystem(corpus, map[string]*Frame{"diabetes.csv": data}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestExecLimitsGovernedRun standardizes under the recommended budgets and
// asserts the healthy path: same output as the ungoverned run, zero Health.
func TestExecLimitsGovernedRun(t *testing.T) {
	input, err := ParseScript(`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.median())
df = pd.get_dummies(df)
`)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := newTestSystem(t, Options{Tau: 0.5}).Standardize(input)
	if err != nil {
		t.Fatal(err)
	}
	governed, err := newTestSystem(t, Options{Tau: 0.5, ExecLimits: DefaultExecLimits()}).Standardize(input)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := governed.Script.Source(), plain.Script.Source(); g != w {
		t.Errorf("governor changed the output:\n%s\nvs\n%s", g, w)
	}
	if governed.Health.Degraded() {
		t.Errorf("healthy workload reports degraded health: %+v", governed.Health)
	}
}

// TestExecLimitsQuarantineSurfacesInHealth gives the governor a column
// budget the corpus-standard get_dummies candidates cannot fit in: the
// search must still complete (quarantining, not failing) and report the
// exhaustions through the facade Result.
func TestExecLimitsQuarantineSurfacesInHealth(t *testing.T) {
	// The input stays under 5 columns at every step; get_dummies candidates
	// (and any wider frame) trip the budget and are quarantined.
	input, err := ParseScript(`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.median())
`)
	if err != nil {
		t.Fatal(err)
	}
	sys := newCatSystem(t, Options{Tau: 0.5, ExecLimits: &ExecLimits{MaxCols: 6}})
	res, err := sys.Standardize(input)
	if err != nil {
		t.Fatalf("quarantines aborted the search: %v", err)
	}
	if res.Health.Check.Exhausted == 0 {
		t.Errorf("no budget exhaustions reported: %+v", res.Health)
	}
	if res.Health.Check.Panicked != 0 {
		t.Errorf("budget trips misreported as panics: %+v", res.Health)
	}
	if strings.Contains(res.Script.Source(), "get_dummies") {
		t.Errorf("budget-tripping candidate survived into the output:\n%s", res.Script.Source())
	}
}

// TestExecLimitsInputScriptExhaustion covers the one case where a budget
// error escapes to the caller: the user's own input script exceeds it. The
// chain must expose the typed sentinels and the failing statement.
func TestExecLimitsInputScriptExhaustion(t *testing.T) {
	input, err := ParseScript(`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = pd.get_dummies(df)
`)
	if err != nil {
		t.Fatal(err)
	}
	sys := newCatSystem(t, Options{ExecLimits: &ExecLimits{MaxCols: 6}})
	_, err = sys.Standardize(input)
	if !errors.Is(err, ErrInputScriptFails) {
		t.Fatalf("err = %v, want ErrInputScriptFails", err)
	}
	if !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("err = %v, want ErrResourceExhausted in the chain", err)
	}
	var stmtErr *StatementError
	if !errors.As(err, &stmtErr) {
		t.Fatalf("err = %v, want a *StatementError in the chain", err)
	}
	if stmtErr.Line != 3 || !strings.Contains(stmtErr.Stmt, "get_dummies") {
		t.Errorf("failure attributed to line %d (%s), want line 3 (get_dummies)", stmtErr.Line, stmtErr.Stmt)
	}
}
