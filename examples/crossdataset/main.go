// Cross-dataset standardization (the paper's "different corpus" scenario,
// Section 6.3.3): a Spaceship-Titanic script is standardized using the
// corpus of the original Titanic competition. The two datasets share column
// names (notably Age), so lemmatized steps transfer; improvements are
// smaller than with an on-topic corpus, as the paper reports.
package main

import (
	"fmt"
	"log"

	"lucidscript"
	"lucidscript/internal/corpusgen"
)

const spaceshipScript = `import pandas as pd
df = pd.read_csv("spaceship.csv")
df = df[df["Age"] < 80]
y = df["Transported"]
`

func main() {
	titanic, err := corpusgen.Get("Titanic")
	if err != nil {
		log.Fatal(err)
	}
	titanicGen, err := titanic.Generate(corpusgen.GenOptions{Seed: 1, RowScale: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	spaceship, err := corpusgen.Get("Spaceship")
	if err != nil {
		log.Fatal(err)
	}
	spaceGen, err := spaceship.Generate(corpusgen.GenOptions{Seed: 1, RowScale: 0.05})
	if err != nil {
		log.Fatal(err)
	}

	// The corpus comes from Titanic; the data (and input script) from
	// Spaceship. Titanic steps that reference Spaceship-absent columns fail
	// the execution check and are pruned automatically.
	sys, err := lucidscript.NewSystem(titanicGen.ScriptsOnly(), spaceGen.Sources, lucidscript.Options{
		Measure: lucidscript.IntentJaccard,
		Tau:     0.9,
	})
	if err != nil {
		log.Fatal(err)
	}

	input, err := lucidscript.ParseScript(spaceshipScript)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Spaceship input script ===")
	fmt.Print(input.Source())
	fmt.Printf("RE vs Titanic corpus = %.3f\n\n", sys.RE(input))

	res, err := sys.Standardize(input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== standardized with the Titanic corpus ===")
	fmt.Print(res.Script.Source())
	fmt.Printf("RE = %.3f (%.1f%% improvement), Δ_J = %.3f\n", res.REAfter, res.ImprovementPct, res.IntentValue)
	for _, tr := range res.Transformations {
		fmt.Println("  " + tr)
	}
	if res.ImprovementPct == 0 {
		fmt.Println("(no admissible cross-corpus improvement at τ_J = 0.9 — relax τ to allow more drift)")
	}
}
