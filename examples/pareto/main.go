// Pareto exploration and explanations (the paper's Section 8 extensions):
// a single beam search explores the whole intent-threshold space, showing
// the standardness the user can buy at each level of intent drift, and
// each recommended edit is justified by its corpus frequency and RE impact.
package main

import (
	"fmt"
	"log"

	"lucidscript"
	"lucidscript/internal/corpusgen"
)

const draft = `import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.median())
df = df[df["Age"].between(18, 25)]
df = pd.get_dummies(df)
`

func main() {
	comp, err := corpusgen.Get("Medical")
	if err != nil {
		log.Fatal(err)
	}
	gen, err := comp.Generate(corpusgen.GenOptions{Seed: 1, RowScale: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := lucidscript.NewSystem(gen.ScriptsOnly(), gen.Sources, lucidscript.Options{
		Measure: lucidscript.IntentJaccard,
		Tau:     0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	input, err := lucidscript.ParseScript(draft)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== intent/standardness trade-off (one search, many thresholds) ===")
	fmt.Println("τ_J     %improvement   Δ_J of output")
	taus := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0}
	points, err := sys.ParetoFrontier(input, taus)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range points {
		fmt.Printf("%.2f    %6.1f%%        %.3f\n", p.Tau, p.ImprovementPct, p.IntentValue)
	}

	fmt.Println("\n=== standardization at τ_J = 0.9, with explanations ===")
	res, err := sys.Standardize(input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Script.Source())
	fmt.Printf("\n%.1f%% improvement; each edit justified:\n", res.ImprovementPct)
	for _, ex := range res.Explanations {
		fmt.Println("  • " + ex)
	}
}
