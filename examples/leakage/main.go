// Target-leakage detection (the paper's Section 6.6, Figures 8-9): a
// leakage snippet — a noisy duplicate of the target column — is injected
// into a clean script. Because the injected atoms never occur in the
// corpus, they dominate the script's relative entropy, and standardization
// under the model-performance constraint removes them.
package main

import (
	"fmt"
	"log"

	"lucidscript"
	"lucidscript/internal/corpusgen"
	"lucidscript/internal/leakage"
)

const cleanScript = `import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.mean())
df = pd.get_dummies(df)
y = df["Outcome"]
X = df.drop("Outcome", axis=1)
`

func main() {
	comp, err := corpusgen.Get("Medical")
	if err != nil {
		log.Fatal(err)
	}
	gen, err := comp.Generate(corpusgen.GenOptions{Seed: 3, RowScale: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	clean, err := lucidscript.ParseScript(cleanScript)
	if err != nil {
		log.Fatal(err)
	}
	inj, err := leakage.Inject(clean, "Outcome", leakage.NoisyDup, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== input script with injected target leakage (Figure 8, left) ===")
	fmt.Print(inj.Script.Source())
	fmt.Println("\ninjected ground-truth lines:")
	for _, l := range inj.Lines {
		fmt.Println("  " + l)
	}

	sys, err := lucidscript.NewSystem(gen.ScriptsOnly(), gen.Sources, lucidscript.Options{
		SeqLength:    8,
		Measure:      lucidscript.IntentModel,
		Tau:          5,
		TargetColumn: "Outcome",
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Standardize(inj.Script)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== standardized output (Figure 8, right) ===")
	fmt.Print(res.Script.Source())
	fmt.Printf("\nRE %.3f -> %.3f (%.1f%% improvement), Δ_M = %.2f%%\n",
		res.REBefore, res.REAfter, res.ImprovementPct, res.IntentValue)
	if inj.Removed(res.Script) {
		fmt.Println("target leakage DETECTED: every injected line was removed")
	} else {
		fmt.Printf("leakage partially removed: %d/%d injected lines gone\n",
			inj.RemovedCount(res.Script), len(inj.Lines))
	}
}
