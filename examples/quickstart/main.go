// Quickstart: the paper's running example (Figures 1a/1b) end to end using
// only the public lucidscript API. Alex's script imputes with the median
// and filters young adults; the corpus imputes with the mean and removes
// SkinThickness outliers. Standardization swaps the imputation statistic
// and adds the outlier filter while preserving her intent.
package main

import (
	"fmt"
	"log"
	"strings"

	"lucidscript"
)

// diabetesCSV is a small inline slice of a Pima-style dataset (the real
// system reads diabetes.csv from disk).
const diabetesCSV = `Pregnancies,Glucose,SkinThickness,Age,Outcome
6,148,35,50,1
1,85,29,31,0
8,183,,32,1
1,89,23,21,0
0,137,35,33,1
5,116,25,30,0
3,78,32,26,1
10,115,,29,0
2,197,45,53,1
8,125,96,54,1
4,110,37,30,0
10,168,15,34,1
10,139,90,57,0
1,189,23,59,1
5,166,19,51,1
7,100,47,32,1
0,118,30,31,1
7,107,31,31,1
1,103,38,33,0
1,115,30,32,1
3,126,41,27,0
8,99,35,50,0
7,196,33,41,1
9,119,29,29,1
11,143,37,51,1
10,125,54,41,1
7,147,6,43,1
1,97,42,22,0
13,145,19,57,0
5,117,24,38,0
2,109,43,30,0
3,158,28,28,1
`

// The corpus: scripts other researchers published for the same dataset.
var corpusSources = []string{
	`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.mean())
df = df[df["SkinThickness"] < 80]
df = pd.get_dummies(df)
y = df["Outcome"]
`,
	`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.mean())
df = df[df["SkinThickness"] < 80]
df = pd.get_dummies(df)
`,
	`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.mean())
df = df[df["SkinThickness"] < 80]
df = pd.get_dummies(df)
y = df["Outcome"]
`,
	`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.mean())
df = df[df["SkinThickness"] < 80]
df = pd.get_dummies(df)
y = df["Outcome"]
`,
	`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.mean())
df = df[df["SkinThickness"] < 80]
df = pd.get_dummies(df)
y = df["Outcome"]
`,
}

// Alex's draft (Figure 1a): median imputation + her modeling-objective
// filter, missing the corpus-standard outlier handling.
const alexScript = `import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.median())
df = df[df["Age"].between(18, 25)]
df = pd.get_dummies(df)
`

func main() {
	data, err := lucidscript.ReadCSV(strings.NewReader(diabetesCSV))
	if err != nil {
		log.Fatal(err)
	}
	var corpus []*lucidscript.Script
	for _, src := range corpusSources {
		s, err := lucidscript.ParseScript(src)
		if err != nil {
			log.Fatal(err)
		}
		corpus = append(corpus, s)
	}
	sys, err := lucidscript.NewSystem(corpus,
		map[string]*lucidscript.Frame{"diabetes.csv": data},
		lucidscript.Options{
			Measure: lucidscript.IntentJaccard,
			Tau:     0.5, // Alex allows generous drift for this small demo
		})
	if err != nil {
		log.Fatal(err)
	}
	input, err := lucidscript.ParseScript(alexScript)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Alex's input script (Figure 1a) ===")
	fmt.Print(alexScript)
	fmt.Printf("\nstandardness RE = %.3f\n\n", sys.RE(input))

	res, err := sys.Standardize(input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Standardized output (Figure 1b) ===")
	fmt.Print(res.Script.Source())
	fmt.Printf("\nstandardness RE = %.3f (%.1f%% improvement)\n", res.REAfter, res.ImprovementPct)
	fmt.Printf("intent preserved: table Jaccard = %.3f\n", res.IntentValue)
	fmt.Println("\napplied transformations:")
	for _, tr := range res.Transformations {
		fmt.Println("  " + tr)
	}
}
