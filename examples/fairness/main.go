// Fairness-constrained standardization (the paper's Section 8 direction,
// citing "Automated data cleaning can hurt fairness in ML-based decision
// making"): the intent constraint bounds how much a preparation change may
// move the downstream model's demographic-parity gap across a protected
// attribute — here Sex on the Titanic data.
package main

import (
	"fmt"
	"log"

	"lucidscript"
	"lucidscript/internal/corpusgen"
	"lucidscript/internal/intent"
	"lucidscript/internal/interp"
)

const draft = `import pandas as pd
df = pd.read_csv("train.csv")
df = df.fillna(df.median())
`

func main() {
	comp, err := corpusgen.Get("Titanic")
	if err != nil {
		log.Fatal(err)
	}
	gen, err := comp.Generate(corpusgen.GenOptions{Seed: 2, RowScale: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := lucidscript.NewSystem(gen.ScriptsOnly(), gen.Sources, lucidscript.Options{
		Measure:         lucidscript.IntentFairness,
		Tau:             0.05, // the parity gap may move by at most 5 points
		TargetColumn:    "Survived",
		ProtectedColumn: "Sex",
		SeqLength:       8,
	})
	if err != nil {
		log.Fatal(err)
	}
	input, err := lucidscript.ParseScript(draft)
	if err != nil {
		log.Fatal(err)
	}

	mc := intent.ModelConfig{Target: "Survived"}
	baseRun, err := interp.Run(input, gen.Sources, interp.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	dpBefore, err := intent.DemographicParity(baseRun.Main, mc, "Sex")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== input script ===")
	fmt.Print(input.Source())
	fmt.Printf("demographic-parity gap (Sex): %.3f\n\n", dpBefore)

	res, err := sys.Standardize(input)
	if err != nil {
		log.Fatal(err)
	}
	outRun, err := interp.Run(res.Script, gen.Sources, interp.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	dpAfter, err := intent.DemographicParity(outRun.Main, mc, "Sex")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== standardized under the fairness constraint ===")
	fmt.Print(res.Script.Source())
	fmt.Printf("RE improvement: %.1f%%\n", res.ImprovementPct)
	fmt.Printf("demographic-parity gap: %.3f -> %.3f (|Δ| = %.3f ≤ 0.05)\n",
		dpBefore, dpAfter, res.IntentValue)
}
