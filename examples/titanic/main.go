// Titanic case study (the paper's Table 4): starting from a script that
// merely loads the data, standardization against a synthetic Titanic corpus
// progressively adds the corpus-common preparation steps, lowering the
// relative-entropy score while preserving intent, and the downstream model
// is trained on each variant to show Δ_M stays within bounds.
package main

import (
	"fmt"
	"log"

	"lucidscript"
	"lucidscript/internal/corpusgen"
	"lucidscript/internal/intent"
)

func main() {
	comp, err := corpusgen.Get("Titanic")
	if err != nil {
		log.Fatal(err)
	}
	gen, err := comp.Generate(corpusgen.GenOptions{Seed: 1, RowScale: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := lucidscript.NewSystem(gen.ScriptsOnly(), gen.Sources, lucidscript.Options{
		Measure:      lucidscript.IntentModel,
		Tau:          2, // allow up to 2% model-accuracy drift
		TargetColumn: "Survived",
	})
	if err != nil {
		log.Fatal(err)
	}
	stats := sys.Stats()
	fmt.Printf("corpus: %d scripts, %d unique 1-gram atoms, %d line atoms, %d edges\n\n",
		stats.Scripts, stats.UniqueUnigrams, stats.UniqueNgrams, stats.UniqueEdges)

	input, err := lucidscript.ParseScript(`import pandas as pd
df = pd.read_csv("train.csv")
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== input: a script that only loads the data ===")
	fmt.Print(input.Source())
	accBefore, err := intent.ModelAccuracy(gen.Sources["train.csv"], intent.ModelConfig{Target: "Survived"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RE = %.3f, downstream accuracy on raw table = %.3f\n\n", sys.RE(input), accBefore)

	res, err := sys.Standardize(input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== standardized output ===")
	fmt.Print(res.Script.Source())
	fmt.Printf("RE = %.3f (%.1f%% improvement), Δ_M = %.2f%%\n", res.REAfter, res.ImprovementPct, res.IntentValue)
	fmt.Println("\napplied transformations:")
	for _, tr := range res.Transformations {
		fmt.Println("  " + tr)
	}
}
