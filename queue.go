// Job-queue facade: the serving counterpart of StandardizeBatch. A
// JobQueue is what a long-lived service (cmd/lsserved, internal/serve)
// submits work through — admission-controlled, non-blocking, and sharing
// one curated corpus and one execution-prefix cache across every request's
// job, so curation is paid once per System no matter how many requests
// arrive over the System's lifetime.
package lucidscript

import (
	"context"

	"lucidscript/internal/core"
)

// The admission-control errors surfaced by JobQueue.Submit, re-exported
// for errors.Is. An HTTP front end maps ErrQueueFull to 429 and
// ErrQueueClosed to 503.
var (
	// ErrQueueFull reports a submission rejected because the queue's
	// bounded buffer is at capacity; retry later.
	ErrQueueFull = core.ErrQueueFull
	// ErrQueueClosed reports a submission to — or a queued job drained
	// by — a queue that is shutting down.
	ErrQueueClosed = core.ErrQueueClosed
)

// JobState is the lifecycle position of one queued job: JobQueued →
// JobRunning → JobDone.
type JobState = core.JobState

// The job lifecycle states.
const (
	JobQueued  = core.JobQueued
	JobRunning = core.JobRunning
	JobDone    = core.JobDone
)

// QueueStats snapshots a JobQueue's admission state: current depth against
// capacity, worker-pool size, and cumulative submitted / rejected /
// completed / failed counts.
type QueueStats = core.QueueStats

// JobQueue is a long-lived, admission-controlled standardization queue
// over this System's curated corpus — built once, then fed jobs for the
// life of a service. Submit never blocks: a job is either admitted into
// the bounded buffer or rejected with ErrQueueFull, which is how a server
// sheds load instead of stacking goroutines. All jobs share one
// execution-prefix session cache sized for the worker pool, with the same
// per-job isolation as StandardizeBatch: a panic, resource-budget trip, or
// timeout in one job never touches another.
type JobQueue struct {
	sys *System
	q   *core.Queue
}

// NewJobQueue builds a running queue: workers consume jobs immediately and
// until Close. workers ≤ 0 resolves to Options.BatchWorkers; depth ≤ 0
// resolves to 2×workers. Options.Timeout, when set, bounds each job
// individually, exactly as in StandardizeBatch.
func (s *System) NewJobQueue(workers, depth int) *JobQueue {
	if workers <= 0 {
		workers = s.batchWorkers
	}
	if depth <= 0 {
		depth = 2 * workers
	}
	eng := core.NewEngine(s.std, workers, s.timeout)
	return &JobQueue{sys: s, q: eng.NewQueue(depth)}
}

// Submit admits one standardization without blocking. The returned
// QueuedJob is live — watch Done, then Result, or just Wait. The error is
// ErrQueueFull when the buffer is at capacity and ErrQueueClosed once
// Close has begun. ctx covers the job's whole life: canceling it while the
// job is still queued completes the job with ErrCanceled without running
// it.
func (jq *JobQueue) Submit(ctx context.Context, sc *Script) (*QueuedJob, error) {
	return jq.SubmitObserved(ctx, sc, nil)
}

// SubmitObserved is Submit with a state-transition hook: observe is called
// with JobRunning when a worker picks the job up and JobDone when it
// finishes (after the outcome is recorded). A durable serving tier appends
// each transition to its write-ahead log from here. observe runs on the
// worker goroutine — keep it fast, and do not call back into the queue.
func (jq *JobQueue) SubmitObserved(ctx context.Context, sc *Script, observe func(JobState)) (*QueuedJob, error) {
	j, err := jq.q.SubmitObserved(ctx, sc, observe)
	if err != nil {
		return nil, err
	}
	return &QueuedJob{sys: jq.sys, j: j}, nil
}

// Close stops admission, lets in-flight jobs finish, and fails every
// still-queued job with ErrQueueClosed. Idempotent; blocks until the drain
// completes.
func (jq *JobQueue) Close() { jq.q.Close() }

// Drain stops admission but — unlike Close — runs every already-admitted
// job to completion before returning. It is the corpus hot-swap retirement
// path: after a server swaps in a queue over a new corpus version, the old
// queue drains so its jobs finish on the version they were admitted
// against. Idempotent, and safe to call concurrently with Close.
func (jq *JobQueue) Drain() { jq.q.Drain() }

// Stats snapshots the queue's admission state for health endpoints.
func (jq *JobQueue) Stats() QueueStats { return jq.q.Stats() }

// QueuedJob is one standardization admitted by JobQueue.Submit.
type QueuedJob struct {
	sys *System
	j   *core.QueuedJob
}

// ID is the job's queue-assigned sequence number (0-based).
func (j *QueuedJob) ID() int64 { return j.j.ID() }

// State reports where the job is in its lifecycle.
func (j *QueuedJob) State() JobState { return j.j.State() }

// Done is closed when the job finishes — successfully, with an error, or
// by cancellation.
func (j *QueuedJob) Done() <-chan struct{} { return j.j.Done() }

// Cancel stops the job: a queued job completes with ErrCanceled without
// ever running; a running job stops mid-search with StandardizeContext's
// partial-result-on-cancel semantics. Safe to call at any time.
func (j *QueuedJob) Cancel() { j.j.Cancel() }

// Result blocks until the job finishes (Done is closed) and returns its
// outcome. Both values follow StandardizeContext conventions — a partial
// Result can accompany ErrCanceled / ErrDeadlineExceeded. Use Wait for a
// bounded block.
func (j *QueuedJob) Result() (*Result, error) {
	res, err := j.j.Result()
	return j.convert(res), err
}

// Wait blocks until the job finishes or ctx is canceled. Canceling ctx
// abandons only the wait — the job keeps running; use Cancel to stop it.
func (j *QueuedJob) Wait(ctx context.Context) (*Result, error) {
	res, err := j.j.Wait(ctx)
	if err != nil && res == nil {
		// Either the wait was abandoned or the job failed without a
		// partial result; in both cases there is nothing to convert.
		return nil, err
	}
	return j.convert(res), err
}

// convert maps the core result through the System's facade conversion.
func (j *QueuedJob) convert(res *core.Result) *Result {
	if res == nil {
		return nil
	}
	return j.sys.toResult(res)
}
