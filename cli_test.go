package lucidscript

// End-to-end CLI tests: the three binaries are built once into a temp dir
// and exercised against small fixtures, verifying the full user-facing
// workflow (run a script, standardize a script, regenerate an experiment).

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

func buildCLIs(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "lucidscript-bin")
		if buildErr != nil {
			return
		}
		for _, tool := range []string{"lsrun", "lsstd", "lsbench"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, tool), "./cmd/"+tool)
			cmd.Dir = "."
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = err
				t.Logf("build %s: %s", tool, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building CLIs: %v", buildErr)
	}
	return binDir
}

const cliCSV = `Glucose,SkinThickness,Age,Outcome
148,35,50,1
85,29,31,0
183,,32,1
89,23,21,0
137,35,33,1
116,25,30,0
78,32,26,1
115,,29,0
`

const cliScript = `import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.median())
`

const cliCorpusScript = `import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.mean())
df = df[df["SkinThickness"] < 80]
y = df["Outcome"]
`

func writeFixtures(t *testing.T) (dir, csv, scriptPath, corpusDir string) {
	t.Helper()
	dir = t.TempDir()
	csv = filepath.Join(dir, "diabetes.csv")
	if err := os.WriteFile(csv, []byte(cliCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	scriptPath = filepath.Join(dir, "prep.ls")
	if err := os.WriteFile(scriptPath, []byte(cliScript), 0o644); err != nil {
		t.Fatal(err)
	}
	corpusDir = filepath.Join(dir, "corpus")
	if err := os.Mkdir(corpusDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		name := filepath.Join(corpusDir, "s"+string(rune('a'+i))+".py")
		if err := os.WriteFile(name, []byte(cliCorpusScript), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir, csv, scriptPath, corpusDir
}

func TestLSRunCLI(t *testing.T) {
	bin := buildCLIs(t)
	_, csv, scriptPath, _ := writeFixtures(t)
	out, err := exec.Command(filepath.Join(bin, "lsrun"),
		"-script", scriptPath, "-data", csv).Output()
	if err != nil {
		t.Fatalf("lsrun: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 9 { // header + 8 rows
		t.Fatalf("lsrun output lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Glucose") {
		t.Fatalf("missing header: %q", lines[0])
	}
	// Median fill applied: no empty SkinThickness cells remain.
	for _, l := range lines[1:] {
		if strings.Contains(l, ",,") {
			t.Fatalf("null survived median fill: %q", l)
		}
	}
}

func TestLSRunCLIHead(t *testing.T) {
	bin := buildCLIs(t)
	_, csv, scriptPath, _ := writeFixtures(t)
	out, err := exec.Command(filepath.Join(bin, "lsrun"),
		"-script", scriptPath, "-data", csv, "-head", "2").Output()
	if err != nil {
		t.Fatalf("lsrun: %v", err)
	}
	if n := len(strings.Split(strings.TrimSpace(string(out)), "\n")); n != 3 {
		t.Fatalf("head output lines = %d", n)
	}
}

func TestLSRunCLIErrors(t *testing.T) {
	bin := buildCLIs(t)
	if err := exec.Command(filepath.Join(bin, "lsrun")).Run(); err == nil {
		t.Fatal("missing flags should fail")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.ls")
	_ = os.WriteFile(bad, []byte("df = ???"), 0o644)
	csvPath := filepath.Join(dir, "d.csv")
	_ = os.WriteFile(csvPath, []byte("a\n1\n"), 0o644)
	if err := exec.Command(filepath.Join(bin, "lsrun"), "-script", bad, "-data", csvPath).Run(); err == nil {
		t.Fatal("unparseable script should fail")
	}
}

func TestLSStdCLI(t *testing.T) {
	bin := buildCLIs(t)
	_, csv, scriptPath, corpusDir := writeFixtures(t)
	cmd := exec.Command(filepath.Join(bin, "lsstd"),
		"-script", scriptPath, "-corpus", corpusDir, "-data", csv,
		"-measure", "jaccard", "-tau", "0.5", "-seq", "6")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("lsstd: %v\n%s", err, stderr.String())
	}
	src := string(out)
	if !strings.Contains(src, "read_csv") {
		t.Fatalf("output script missing load:\n%s", src)
	}
	if !strings.Contains(stderr.String(), "improvement") {
		t.Fatalf("summary missing:\n%s", stderr.String())
	}
	// The corpus-standard outlier filter or target split should be added.
	if !strings.Contains(src, "SkinThickness") && !strings.Contains(src, `y = df["Outcome"]`) {
		t.Fatalf("no corpus step adopted:\n%s", src)
	}
}

// TestLSStdCLIMaxSteps arms the resource governor from the command line
// with a statement budget the input script itself cannot fit in, and
// asserts the typed failure surfaces through the CLI.
func TestLSStdCLIMaxSteps(t *testing.T) {
	bin := buildCLIs(t)
	_, csv, scriptPath, corpusDir := writeFixtures(t)
	cmd := exec.Command(filepath.Join(bin, "lsstd"),
		"-script", scriptPath, "-corpus", corpusDir, "-data", csv,
		"-max-steps", "2")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Run(); err == nil {
		t.Fatalf("lsstd succeeded with -max-steps 2 on a 3-statement script\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "resource budget exhausted") {
		t.Fatalf("stderr does not name the budget trip:\n%s", stderr.String())
	}
}

// TestLSStdCLIMaxCells runs a governed standardization whose budgets are
// ample: the search must behave exactly as ungoverned.
func TestLSStdCLIMaxCells(t *testing.T) {
	bin := buildCLIs(t)
	_, csv, scriptPath, corpusDir := writeFixtures(t)
	cmd := exec.Command(filepath.Join(bin, "lsstd"),
		"-script", scriptPath, "-corpus", corpusDir, "-data", csv,
		"-tau", "0.5", "-seq", "6", "-max-cells", "1000000")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("lsstd: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(string(out), "read_csv") {
		t.Fatalf("output script missing load:\n%s", out)
	}
	if strings.Contains(stderr.String(), "degraded:") {
		t.Fatalf("ample budgets reported degradation:\n%s", stderr.String())
	}
}

func TestLSStdCLIModelMeasure(t *testing.T) {
	bin := buildCLIs(t)
	_, csv, scriptPath, corpusDir := writeFixtures(t)
	cmd := exec.Command(filepath.Join(bin, "lsstd"),
		"-script", scriptPath, "-corpus", corpusDir, "-data", csv,
		"-measure", "model", "-target", "Outcome", "-tau", "10", "-seq", "4")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("lsstd model measure: %v\n%s", err, out)
	}
}

func TestLSStdCLIErrors(t *testing.T) {
	bin := buildCLIs(t)
	if err := exec.Command(filepath.Join(bin, "lsstd")).Run(); err == nil {
		t.Fatal("missing flags should fail")
	}
	_, csv, scriptPath, _ := writeFixtures(t)
	empty := t.TempDir()
	if err := exec.Command(filepath.Join(bin, "lsstd"),
		"-script", scriptPath, "-corpus", empty, "-data", csv).Run(); err == nil {
		t.Fatal("empty corpus dir should fail")
	}
}

func TestLSBenchCLIListAndTable2(t *testing.T) {
	bin := buildCLIs(t)
	out, err := exec.Command(filepath.Join(bin, "lsbench"), "-list").Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "table5") || !strings.Contains(string(out), "fig9") {
		t.Fatalf("list output:\n%s", out)
	}
	out2, err := exec.Command(filepath.Join(bin, "lsbench"), "-exp", "table2", "-q").Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out2), "Table 2") {
		t.Fatalf("table2 output:\n%s", out2)
	}
	if err := exec.Command(filepath.Join(bin, "lsbench"), "-exp", "nope").Run(); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestLSStdCLISaveLoadSpace(t *testing.T) {
	bin := buildCLIs(t)
	dir, csv, scriptPath, corpusDir := writeFixtures(t)
	space := filepath.Join(dir, "space.json")
	// Curate once and save.
	cmd := exec.Command(filepath.Join(bin, "lsstd"),
		"-script", scriptPath, "-corpus", corpusDir, "-data", csv,
		"-tau", "0.5", "-seq", "4", "-save-space", space)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("save-space: %v\n%s", err, out)
	}
	if _, err := os.Stat(space); err != nil {
		t.Fatal("search space file missing")
	}
	// Reuse without the corpus directory.
	cmd2 := exec.Command(filepath.Join(bin, "lsstd"),
		"-script", scriptPath, "-load-space", space, "-data", csv,
		"-tau", "0.5", "-seq", "4")
	out2, err := cmd2.Output()
	if err != nil {
		t.Fatalf("load-space: %v", err)
	}
	if !strings.Contains(string(out2), "read_csv") {
		t.Fatalf("load-space output:\n%s", out2)
	}
}

func TestLSStdCLITraceAndMetrics(t *testing.T) {
	bin := buildCLIs(t)
	_, csv, scriptPath, corpusDir := writeFixtures(t)
	cmd := exec.Command(filepath.Join(bin, "lsstd"),
		"-script", scriptPath, "-corpus", corpusDir, "-data", csv,
		"-tau", "0.5", "-seq", "6", "-trace", "-metrics-dump")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("lsstd -trace: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(string(out), "read_csv") {
		t.Fatalf("output script missing:\n%s", out)
	}
	progress := stderr.String()
	for _, want := range []string{"curate_done", "search_start", "step_done", "verify_done", "search_done"} {
		if !strings.Contains(progress, want) {
			t.Fatalf("trace stream missing %q:\n%s", want, progress)
		}
	}
	for _, want := range []string{
		"lucidscript_searches_total 1",
		"lucidscript_statements_executed_total",
		"# TYPE lucidscript_exec_cache_hits_total counter",
	} {
		if !strings.Contains(progress, want) {
			t.Fatalf("metrics dump missing %q:\n%s", want, progress)
		}
	}
}

func TestLSStdCLITimeout(t *testing.T) {
	bin := buildCLIs(t)
	_, csv, scriptPath, corpusDir := writeFixtures(t)
	// A 1ns budget expires before the search starts; the CLI must still
	// exit 0 and print the best (unchanged) script with a note on stderr.
	cmd := exec.Command(filepath.Join(bin, "lsstd"),
		"-script", scriptPath, "-corpus", corpusDir, "-data", csv,
		"-tau", "0.5", "-seq", "6", "-timeout", "1ns")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("lsstd -timeout: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Fatalf("no interruption note:\n%s", stderr.String())
	}
	// The timed-out run passes the input through: its distinctive median
	// fill (absent from every corpus script) must survive.
	if !strings.Contains(string(out), "median") {
		t.Fatalf("timed-out run should print the input unchanged:\n%s", out)
	}
	// An invalid (negative) timeout is rejected up front.
	if err := exec.Command(filepath.Join(bin, "lsstd"),
		"-script", scriptPath, "-corpus", corpusDir, "-data", csv,
		"-timeout", "-5s").Run(); err == nil {
		t.Fatal("negative timeout should fail")
	}
}

func TestLSStdCLIBatchJobs(t *testing.T) {
	bin := buildCLIs(t)
	dir, csv, scriptPath, corpusDir := writeFixtures(t)
	jobsDir := filepath.Join(dir, "jobs")
	if err := os.Mkdir(jobsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	second := `import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df[df["Age"] < 45]
`
	if err := os.WriteFile(filepath.Join(jobsDir, "a.ls"), []byte(cliScript), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jobsDir, "b.ls"), []byte(second), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(filepath.Join(bin, "lsstd"),
		"-jobs", filepath.Join(jobsDir, "*.ls"), "-corpus", corpusDir, "-data", csv,
		"-tau", "0.5", "-seq", "6", "-batch-workers", "2")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("lsstd -jobs: %v\n%s", err, stderr.String())
	}
	src := string(out)
	// Each job's output appears in glob order under its own header.
	ai := strings.Index(src, "# === a.ls ===")
	bi := strings.Index(src, "# === b.ls ===")
	if ai < 0 || bi < 0 || bi < ai {
		t.Fatalf("missing or misordered job headers:\n%s", src)
	}
	if strings.Count(src, "read_csv") != 2 {
		t.Fatalf("want both standardized scripts in output:\n%s", src)
	}
	progress := stderr.String()
	for _, want := range []string{"a.ls: RE", "b.ls: RE", "batch: 2 jobs"} {
		if !strings.Contains(progress, want) {
			t.Fatalf("batch summary missing %q:\n%s", want, progress)
		}
	}
	// The batch output for a.ls must match the single-shot run byte for byte.
	single, err := exec.Command(filepath.Join(bin, "lsstd"),
		"-script", scriptPath, "-corpus", corpusDir, "-data", csv,
		"-tau", "0.5", "-seq", "6").Output()
	if err != nil {
		t.Fatalf("single-shot lsstd: %v", err)
	}
	if got := src[ai+len("# === a.ls ===\n") : bi]; got != string(single) {
		t.Fatalf("batch output diverges from single-shot:\nbatch:\n%ssingle:\n%s", got, single)
	}
	// A glob with no matches fails, as does combining -lint with -jobs.
	if err := exec.Command(filepath.Join(bin, "lsstd"),
		"-jobs", filepath.Join(jobsDir, "*.nope"), "-corpus", corpusDir, "-data", csv).Run(); err == nil {
		t.Fatal("empty glob should fail")
	}
	if err := exec.Command(filepath.Join(bin, "lsstd"),
		"-jobs", filepath.Join(jobsDir, "*.ls"), "-corpus", corpusDir, "-data", csv,
		"-lint").Run(); err == nil {
		t.Fatal("-lint with -jobs should fail")
	}
}

func TestLSBenchCLIBatchJSON(t *testing.T) {
	bin := buildCLIs(t)
	jsonPath := filepath.Join(t.TempDir(), "BENCH_batch.json")
	out, err := exec.Command(filepath.Join(bin, "lsbench"),
		"-exp", "batch", "-q", "-datasets", "Medical", "-scripts", "2",
		"-rowscale", "0.01", "-json", jsonPath).Output()
	if err != nil {
		t.Fatalf("lsbench -exp batch: %v", err)
	}
	if !strings.Contains(string(out), "Batch standardization") {
		t.Fatalf("batch table missing:\n%s", out)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("JSON record file: %v", err)
	}
	var records []map[string]any
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatalf("unmarshal %s: %v", jsonPath, err)
	}
	if len(records) != 1 {
		t.Fatalf("records = %d, want 1", len(records))
	}
	rec := records[0]
	if rec["dataset"] != "Medical" || rec["jobs"] != float64(2) {
		t.Fatalf("record fields: %v", rec)
	}
	if rec["identical"] != true {
		t.Fatalf("batch output not identical to sequential: %v", rec)
	}
	for _, key := range []string{"workers", "sequential_ms", "batch_ms", "speedup", "curate_ms", "cache_hits"} {
		if _, ok := rec[key]; !ok {
			t.Fatalf("record missing %q: %v", key, rec)
		}
	}
}

func TestLSStdCLILint(t *testing.T) {
	bin := buildCLIs(t)
	_, csv, scriptPath, corpusDir := writeFixtures(t)
	out, err := exec.Command(filepath.Join(bin, "lsstd"),
		"-script", scriptPath, "-corpus", corpusDir, "-data", csv,
		"-lint", "-lint-freq", "0.3").Output()
	if err != nil {
		t.Fatalf("lsstd -lint: %v", err)
	}
	// The fixture input uses median fill, absent from the corpus.
	if !strings.Contains(string(out), "median") {
		t.Fatalf("lint should flag the median fill:\n%s", out)
	}
}
