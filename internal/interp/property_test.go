package interp

import (
	"testing"
	"testing/quick"

	"lucidscript/internal/script"
)

// pipelinePool holds steps that always execute against the Titanic fixture.
var pipelinePool = []string{
	`df = df.fillna(df.mean())`,
	`df = df.fillna(df.median())`,
	`df = df.dropna()`,
	`df = df[df["Age"] < 60]`,
	`df = df[df["Fare"] > 5]`,
	`df = pd.get_dummies(df)`,
	`df["FareLog"] = df["Fare"] / 2`,
	`df = df.drop_duplicates()`,
	`df = df.sort_values("Fare")`,
	`df = df.head(6)`,
}

// Property: any pipeline drawn from the pool executes without error, never
// increases the row count, and produces a well-formed frame.
func TestRandomPipelinesExecuteProperty(t *testing.T) {
	sources := titanicSources(t)
	initialRows := sources["train.csv"].NumRows()
	f := func(pick []uint8) bool {
		src := "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\n"
		for i, p := range pick {
			if i >= 8 {
				break
			}
			src += pipelinePool[int(p)%len(pipelinePool)] + "\n"
		}
		s, err := script.Parse(src)
		if err != nil {
			return false
		}
		res, err := Run(s, sources, Options{Seed: 3})
		if err != nil {
			return false
		}
		if res.Main == nil || res.Main.NumRows() > initialRows {
			return false
		}
		// Every column has the frame's row count.
		for i := 0; i < res.Main.NumCols(); i++ {
			if res.Main.ColumnAt(i).Len() != res.Main.NumRows() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: running the same script twice gives byte-identical outputs.
func TestRunDeterminismProperty(t *testing.T) {
	sources := titanicSources(t)
	f := func(pick []uint8) bool {
		src := "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\ndf = df.sample(5)\n"
		for i, p := range pick {
			if i >= 4 {
				break
			}
			src += pipelinePool[int(p)%len(pipelinePool)] + "\n"
		}
		s, err := script.Parse(src)
		if err != nil {
			return false
		}
		a, err := Run(s, sources, Options{Seed: 9})
		if err != nil {
			return true // non-executable pipelines are out of scope here
		}
		b, err := Run(s, sources, Options{Seed: 9})
		if err != nil {
			return false
		}
		return a.Main.CSVString() == b.Main.CSVString()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: execution never mutates the source frames.
func TestSourcesImmutableProperty(t *testing.T) {
	sources := titanicSources(t)
	before := sources["train.csv"].CSVString()
	f := func(pick []uint8) bool {
		src := "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\n"
		for i, p := range pick {
			if i >= 6 {
				break
			}
			src += pipelinePool[int(p)%len(pipelinePool)] + "\n"
		}
		s, err := script.Parse(src)
		if err != nil {
			return false
		}
		// Whether or not the pipeline executes, the sources must be intact.
		_, _ = Run(s, sources, Options{Seed: 2})
		return sources["train.csv"].CSVString() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
