package interp

import (
	"math"
	"strings"
	"testing"

	"lucidscript/internal/frame"
	"lucidscript/internal/script"
)

func titanicSources(t *testing.T) map[string]*frame.Frame {
	t.Helper()
	f, err := frame.ReadCSVString(`Survived,Pclass,Sex,Age,Fare,Embarked
0,3,male,22,7.25,S
1,1,female,38,71.28,C
1,3,female,26,7.92,S
1,1,female,35,53.1,S
0,3,male,,8.05,
0,3,male,54,51.86,S
0,1,male,2,21.07,C
1,3,female,27,11.13,S
`)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*frame.Frame{"train.csv": f}
}

func run(t *testing.T, src string, sources map[string]*frame.Frame) *Result {
	t.Helper()
	s, err := script.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Run(s, sources, Options{Seed: 7})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func mustFail(t *testing.T, src string, sources map[string]*frame.Frame, wantSub string) {
	t.Helper()
	s, err := script.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Run(s, sources, Options{})
	if err == nil {
		t.Fatalf("Run(%q) should fail", src)
	}
	if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not mention %q", err, wantSub)
	}
}

func TestReadCSVAndResult(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
`, titanicSources(t))
	if res.Main == nil || res.Main.NumRows() != 8 {
		t.Fatalf("main frame wrong: %v", res.Main)
	}
}

func TestReadCSVByBaseName(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("/data/titanic/train.csv")
`, titanicSources(t))
	if res.Main.NumRows() != 8 {
		t.Fatal("path fallback to base name failed")
	}
}

func TestFillnaMeanPipeline(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df = df.fillna(df.mean())
`, titanicSources(t))
	age, _ := res.Main.Column("Age")
	if age.NullCount() != 0 {
		t.Fatal("mean fill left nulls")
	}
	// String column Embarked untouched by mean fill.
	emb, _ := res.Main.Column("Embarked")
	if emb.NullCount() != 1 {
		t.Fatal("mean fill should not fill string column")
	}
}

func TestColumnFillnaAndAssignment(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df["Age"] = df["Age"].fillna(df["Age"].median())
df["Embarked"] = df["Embarked"].fillna("S")
`, titanicSources(t))
	age, _ := res.Main.Column("Age")
	if age.NullCount() != 0 {
		t.Fatal("median fill left nulls")
	}
	emb, _ := res.Main.Column("Embarked")
	if emb.NullCount() != 0 || emb.StringAt(4) != "S" {
		t.Fatalf("Embarked fill: %q nulls=%d", emb.StringAt(4), emb.NullCount())
	}
}

func TestMaskFilterAndBetween(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df = df[df["Age"].between(20, 40)]
`, titanicSources(t))
	if res.Main.NumRows() != 5 {
		t.Fatalf("rows = %d, want 5", res.Main.NumRows())
	}
	res2 := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df = df[df["Fare"] < 10]
df = df[df["Sex"] == "male"]
`, titanicSources(t))
	if res2.Main.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", res2.Main.NumRows())
	}
}

func TestCompoundMasks(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df = df[(df["Pclass"] == 1) | (df["Pclass"] == 2)]
`, titanicSources(t))
	if res.Main.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", res.Main.NumRows())
	}
	res2 := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df = df[(df["Sex"] == "female") & (df["Fare"] > 50)]
`, titanicSources(t))
	if res2.Main.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", res2.Main.NumRows())
	}
	res3 := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df = df[~(df["Fare"] > 50)]
`, titanicSources(t))
	if res3.Main.NumRows() != 5 {
		t.Fatalf("rows = %d, want 5", res3.Main.NumRows())
	}
}

func TestDropAndSelect(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
X = df.drop("Survived", axis=1)
y = df["Survived"]
`, titanicSources(t))
	if res.X == nil || res.X.HasColumn("Survived") {
		t.Fatal("X should drop Survived")
	}
	if res.Y == nil || res.Y.Len() != 8 {
		t.Fatal("y missing")
	}
	res2 := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df = df.drop(["Fare", "Embarked"], axis=1)
`, titanicSources(t))
	if res2.Main.NumCols() != 4 {
		t.Fatalf("cols = %d", res2.Main.NumCols())
	}
	res3 := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df = df[["Age", "Fare"]]
`, titanicSources(t))
	if res3.Main.NumCols() != 2 {
		t.Fatal("column-list select failed")
	}
}

func TestGetDummies(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df = pd.get_dummies(df)
`, titanicSources(t))
	if !res.Main.HasColumn("Sex_male") || !res.Main.HasColumn("Embarked_S") {
		t.Fatalf("dummies missing: %v", res.Main.ColumnNames())
	}
}

func TestDeriveColumnsArith(t *testing.T) {
	res := run(t, `import pandas as pd
import numpy as np
df = pd.read_csv("train.csv")
df["FarePerClass"] = df["Fare"] / df["Pclass"]
df["LogFare"] = np.log1p(df["Fare"])
df["Old"] = np.where(df["Age"] > 30, 1, 0)
`, titanicSources(t))
	fpc, _ := res.Main.Column("FarePerClass")
	if math.Abs(fpc.Float(0)-7.25/3) > 1e-9 {
		t.Fatalf("FarePerClass = %v", fpc.Float(0))
	}
	lf, _ := res.Main.Column("LogFare")
	if math.Abs(lf.Float(0)-math.Log1p(7.25)) > 1e-9 {
		t.Fatalf("LogFare = %v", lf.Float(0))
	}
	old, _ := res.Main.Column("Old")
	if old.Float(1) != 1 || old.Float(0) != 0 {
		t.Fatal("np.where wrong")
	}
}

func TestMapAndStrOps(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df["Sex"] = df["Sex"].map({"male": 0, "female": 1})
df["Embarked"] = df["Embarked"].str.lower()
`, titanicSources(t))
	sex, _ := res.Main.Column("Sex")
	if !sex.IsNumeric() || sex.Float(0) != 0 || sex.Float(1) != 1 {
		t.Fatal("map failed")
	}
	emb, _ := res.Main.Column("Embarked")
	if emb.StringAt(0) != "s" {
		t.Fatalf("lower = %q", emb.StringAt(0))
	}
	if emb.NullCount() != 1 {
		t.Fatal("str.lower should preserve nulls")
	}
}

func TestDropna(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df = df.dropna()
`, titanicSources(t))
	if res.Main.NumRows() != 7 {
		t.Fatalf("rows = %d, want 7", res.Main.NumRows())
	}
}

func TestSampleIndexLocPattern(t *testing.T) {
	// The Figure 8 target-leakage pattern.
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df["Survived_dup"] = df["Survived"]
update = df.sample(3).index
df.loc[update, "Survived_dup"] = 0
`, titanicSources(t))
	dup, _ := res.Main.Column("Survived_dup")
	orig, _ := res.Main.Column("Survived")
	diffs := 0
	for i := 0; i < dup.Len(); i++ {
		if dup.Float(i) != orig.Float(i) {
			diffs++
		}
	}
	// 3 sampled rows forced to 0; some may already be 0.
	if diffs > 3 {
		t.Fatalf("diffs = %d", diffs)
	}
	if dup.NullCount() != 0 {
		t.Fatal("dup column should be fully set")
	}
}

func TestLocCreatesMissingColumn(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
update = df.sample(2).index
df.loc[update, "flag"] = 1
`, titanicSources(t))
	flag, _ := res.Main.Column("flag")
	if flag.NullCount() != 6 {
		t.Fatalf("flag nulls = %d, want 6", flag.NullCount())
	}
}

func TestLocMaskAssignment(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df.loc[df["Age"] > 50, "Age"] = 50
`, titanicSources(t))
	age, _ := res.Main.Column("Age")
	if age.Max() > 50 {
		t.Fatalf("cap failed: max = %v", age.Max())
	}
}

func TestSortValuesAndHead(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df = df.sort_values("Fare", ascending=False)
df = df.head(2)
`, titanicSources(t))
	fare, _ := res.Main.Column("Fare")
	if fare.Float(0) < fare.Float(1) || res.Main.NumRows() != 2 {
		t.Fatal("sort/head failed")
	}
}

func TestGroupByMean(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
agg = df.groupby("Sex")["Fare"].mean()
`, titanicSources(t))
	v, ok := res.Env.Get("agg")
	if !ok {
		t.Fatal("agg missing")
	}
	adf := v.(*DF)
	if adf.F.NumRows() != 2 {
		t.Fatalf("groups = %d", adf.F.NumRows())
	}
}

func TestAstypeAndToNumeric(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df["Pclass"] = df["Pclass"].astype("str")
df["Pclass"] = pd.to_numeric(df["Pclass"])
df["Age"] = df["Age"].astype("float")
`, titanicSources(t))
	pc, _ := res.Main.Column("Pclass")
	if !pc.IsNumeric() {
		t.Fatal("round-trip astype failed")
	}
}

func TestCutBinning(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df["FareBin"] = pd.cut(df["Fare"], 4)
df["FareQ"] = pd.qcut(df["Fare"], 4)
`, titanicSources(t))
	fb, _ := res.Main.Column("FareBin")
	if fb.Kind() != frame.String || len(fb.Unique()) < 2 {
		t.Fatalf("cut produced %v", fb.Unique())
	}
	fq, _ := res.Main.Column("FareQ")
	if len(fq.Unique()) != 4 {
		t.Fatalf("qcut bins = %v", fq.Unique())
	}
}

func TestDropDuplicates(t *testing.T) {
	src := map[string]*frame.Frame{}
	f, _ := frame.ReadCSVString("a,b\n1,2\n1,2\n3,4\n")
	src["d.csv"] = f
	res := run(t, `import pandas as pd
df = pd.read_csv("d.csv")
df = df.drop_duplicates()
`, src)
	if res.Main.NumRows() != 2 {
		t.Fatalf("rows = %d", res.Main.NumRows())
	}
}

func TestSeriesAggregates(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
m = df["Fare"].mean()
s = df["Fare"].sum()
n = df["Fare"].nunique()
c = df["Age"].count()
`, titanicSources(t))
	if v, _ := res.Env.Get("m"); v.(float64) <= 0 {
		t.Fatal("mean")
	}
	if v, _ := res.Env.Get("c"); v.(float64) != 7 {
		t.Fatalf("count = %v", v)
	}
}

func TestIsinAndIsnull(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df = df[df["Embarked"].isin(["S"])]
`, titanicSources(t))
	if res.Main.NumRows() != 5 {
		t.Fatalf("rows = %d, want 5", res.Main.NumRows())
	}
	res2 := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df = df[df["Age"].notnull()]
`, titanicSources(t))
	if res2.Main.NumRows() != 7 {
		t.Fatalf("rows = %d, want 7", res2.Main.NumRows())
	}
}

func TestExprStmtNoOp(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df["Survived"]
`, titanicSources(t))
	if res.Main.NumRows() != 8 {
		t.Fatal("no-op expression changed the frame")
	}
}

func TestSamplingOption(t *testing.T) {
	s := script.MustParse(`import pandas as pd
df = pd.read_csv("train.csv")
`)
	res, err := Run(s, titanicSources(t), Options{Seed: 3, MaxRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Main.NumRows() != 4 {
		t.Fatalf("sampled rows = %d", res.Main.NumRows())
	}
}

func TestDeterministicSample(t *testing.T) {
	src := `import pandas as pd
df = pd.read_csv("train.csv")
df = df.sample(4)
`
	a := run(t, src, titanicSources(t)).Main
	b := run(t, src, titanicSources(t)).Main
	for i := 0; i < a.NumRows(); i++ {
		if a.RowString(i) != b.RowString(i) {
			t.Fatal("sample not deterministic under fixed seed")
		}
	}
}

func TestExecutionErrors(t *testing.T) {
	srcs := titanicSources(t)
	mustFail(t, `df = pd.read_csv("train.csv")`, srcs, "not defined")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"nope.csv\")", srcs, "no such data file")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\nx = df[\"Nope\"]", srcs, "no column")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\ndf = df.drop(\"Nope\", axis=1)", srcs, "")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\ndf = df.drop(\"Fare\")", srcs, "axis")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\ndf = df.frobnicate()", srcs, "no method")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\nx = df[\"Age\"] & df[\"Fare\"]", srcs, "needs masks")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\nx = 1 / 0", srcs, "division by zero")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\ndf[\"Embarked\"] = df[\"Age\"].str.lower()", srcs, "non-string")
	mustFail(t, "x = unknown_module.f()", srcs, "not defined")
}

func TestErrorMentionsLine(t *testing.T) {
	s := script.MustParse(`import pandas as pd
df = pd.read_csv("train.csv")
x = df["Nope"]
`)
	_, err := Run(s, titanicSources(t), Options{})
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error should name line 3: %v", err)
	}
}

func TestCheckExecutes(t *testing.T) {
	good := script.MustParse("import pandas as pd\ndf = pd.read_csv(\"train.csv\")\n")
	if err := CheckExecutes(good, titanicSources(t), Options{}); err != nil {
		t.Fatal(err)
	}
	bad := script.MustParse("import pandas as pd\ndf = pd.read_csv(\"train.csv\")\nx = df[\"Nope\"]\n")
	if err := CheckExecutes(bad, titanicSources(t), Options{}); err == nil {
		t.Fatal("bad script should fail")
	}
}

func TestRenameColumns(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df = df.rename(columns={"Fare": "Price"})
`, titanicSources(t))
	if !res.Main.HasColumn("Price") || res.Main.HasColumn("Fare") {
		t.Fatal("rename failed")
	}
}

func TestIndexPreservedThroughFilter(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df = df[df["Pclass"] == 1]
idx = df.index
`, titanicSources(t))
	v, _ := res.Env.Get("idx")
	labels := v.(indexVal).labels
	want := []int{1, 3, 6}
	if len(labels) != 3 {
		t.Fatalf("labels = %v", labels)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

func TestScalarComparisonsAndArith(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
a = 2 + 3 * 4
b = 10 - df["Pclass"]
`, titanicSources(t))
	if v, _ := res.Env.Get("a"); v.(float64) != 14 {
		t.Fatalf("a = %v", v)
	}
	bs, _ := res.Env.Get("b")
	if bs.(*frame.Series).Float(0) != 7 {
		t.Fatal("reversed scalar-series subtraction")
	}
}

func TestMinMaxScalingViaArith(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df["Fare"] = (df["Fare"] - df["Fare"].min()) / (df["Fare"].max() - df["Fare"].min())
`, titanicSources(t))
	fare, _ := res.Main.Column("Fare")
	if fare.Min() < 0 || fare.Max() > 1+1e-9 {
		t.Fatalf("scaled range [%v, %v]", fare.Min(), fare.Max())
	}
}

func multiFileSources(t *testing.T) map[string]*frame.Frame {
	t.Helper()
	sales, err := frame.ReadCSVString(`item_id,item_price,item_cnt_day
1,100,2
2,250,1
3,80,5
1,110,3
9,999,1
`)
	if err != nil {
		t.Fatal(err)
	}
	items, err := frame.ReadCSVString(`item_id,item_category_id
1,10
2,11
3,10
`)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*frame.Frame{"sales.csv": sales, "items.csv": items}
}

func TestMergeMethod(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("sales.csv")
items = pd.read_csv("items.csv")
df = df.merge(items, on="item_id")
`, multiFileSources(t))
	if res.Main.NumRows() != 4 {
		t.Fatalf("inner merge rows = %d, want 4", res.Main.NumRows())
	}
	if !res.Main.HasColumn("item_category_id") {
		t.Fatal("merge lost right column")
	}
}

func TestMergeFunctionAndHowLeft(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("sales.csv")
items = pd.read_csv("items.csv")
df = pd.merge(df, items, on="item_id", how="left")
`, multiFileSources(t))
	if res.Main.NumRows() != 5 {
		t.Fatalf("left merge rows = %d, want 5", res.Main.NumRows())
	}
	cat, _ := res.Main.Column("item_category_id")
	if cat.NullCount() != 1 {
		t.Fatalf("unmatched row nulls = %d, want 1", cat.NullCount())
	}
}

func TestMergeErrors(t *testing.T) {
	srcs := multiFileSources(t)
	mustFail(t, `import pandas as pd
df = pd.read_csv("sales.csv")
items = pd.read_csv("items.csv")
df = df.merge(items)
`, srcs, "on=")
	mustFail(t, `import pandas as pd
df = pd.read_csv("sales.csv")
items = pd.read_csv("items.csv")
df = df.merge(items, on="nope")
`, srcs, "")
	mustFail(t, `import pandas as pd
df = pd.read_csv("sales.csv")
items = pd.read_csv("items.csv")
df = df.merge(items, on="item_id", how="outer")
`, srcs, "not supported")
}

func TestConcatFrames(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("sales.csv")
df2 = pd.read_csv("sales.csv")
df = pd.concat([df, df2])
`, multiFileSources(t))
	if res.Main.NumRows() != 10 {
		t.Fatalf("concat rows = %d, want 10", res.Main.NumRows())
	}
	mustFail(t, `import pandas as pd
df = pd.read_csv("sales.csv")
df = pd.concat(df)
`, multiFileSources(t), "needs a list")
}
