// Package interp executes LSL scripts (internal/script) against the
// dataframe engine (internal/frame). It is the substrate behind the
// paper's execution constraint: a candidate script is valid only if it
// runs without error, and the outputs it produces feed the user-intent
// measures (table Jaccard and downstream model accuracy).
package interp

import (
	"fmt"

	"lucidscript/internal/frame"
)

// Value is any runtime value an LSL expression can produce.
type Value interface{}

// DF is a dataframe value with pandas-style row labels. Labels let
// patterns like `update = df.sample(20).index; df.loc[update, "c"] = 0`
// address rows of the original frame after sampling or filtering.
type DF struct {
	F     *frame.Frame
	Index []int // row labels, parallel to F's rows
}

// NewDF wraps a frame with fresh labels 0..n-1.
func NewDF(f *frame.Frame) *DF {
	idx := make([]int, f.NumRows())
	for i := range idx {
		idx[i] = i
	}
	return &DF{F: f, Index: idx}
}

// Clone deep-copies the dataframe value.
func (d *DF) Clone() *DF {
	return &DF{F: d.F.Clone(), Index: append([]int(nil), d.Index...)}
}

// take returns the sub-dataframe at the given row positions.
func (d *DF) take(pos []int) (*DF, error) {
	f, err := d.F.Take(pos)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(pos))
	for i, p := range pos {
		idx[i] = d.Index[p]
	}
	return &DF{F: f, Index: idx}, nil
}

// filter returns the sub-dataframe where the mask is true.
func (d *DF) filter(m frame.Mask) (*DF, error) {
	if len(m) != d.F.NumRows() {
		return nil, fmt.Errorf("interp: mask length %d does not match %d rows", len(m), d.F.NumRows())
	}
	pos := make([]int, 0, m.Count())
	for i, keep := range m {
		if keep {
			pos = append(pos, i)
		}
	}
	return d.take(pos)
}

// moduleVal represents an imported module (pandas / numpy).
type moduleVal struct {
	name string
}

// statVal is the result of df.mean() / df.median() / df.mode(): a deferred
// per-column statistic, consumed by df.fillna(...).
type statVal struct {
	stat frame.FillStat
}

// strVal is the .str accessor over a string series.
type strVal struct {
	s *frame.Series
}

// indexVal is a row-label list, produced by `df.index` or `df.sample(n).index`.
type indexVal struct {
	labels []int
}

// dictVal is a dict literal rendered to string keys/values.
type dictVal struct {
	m map[string]string
}

// listVal is a list literal.
type listVal struct {
	elems []Value
}

// groupVal is `df.groupby(key)`.
type groupVal struct {
	df  *DF
	key string
}

// groupColVal is `df.groupby(key)[value]`.
type groupColVal struct {
	df       *DF
	key, col string
}

// boundMethod defers a method call: evaluating `x.attr` where attr names a
// method yields a boundMethod that the call evaluator invokes.
type boundMethod struct {
	recv Value
	name string
}

// typeName names a value's LSL-visible type for error messages.
func typeName(v Value) string {
	switch v.(type) {
	case *DF:
		return "DataFrame"
	case *frame.Series:
		return "Series"
	case frame.Mask:
		return "Mask"
	case float64:
		return "number"
	case string:
		return "str"
	case bool:
		return "bool"
	case moduleVal:
		return "module"
	case statVal:
		return "column-statistic"
	case strVal:
		return "str-accessor"
	case dtVal:
		return "dt-accessor"
	case indexVal:
		return "Index"
	case dictVal:
		return "dict"
	case listVal:
		return "list"
	case groupVal:
		return "GroupBy"
	case groupColVal:
		return "GroupBy-column"
	case boundMethod:
		return "method"
	case nil:
		return "None"
	}
	return fmt.Sprintf("%T", v)
}
