package interp

import (
	"fmt"
	"math"
	"time"

	"lucidscript/internal/frame"
)

// dtVal is the .dt accessor over a datetime series (stored as fractional
// days since the Unix epoch in a Float series).
type dtVal struct {
	s *frame.Series
}

// dateLayouts are the string formats pd.to_datetime accepts, tried in order.
var dateLayouts = []string{
	"2006-01-02",
	"02.01.2006", // the Kaggle sales format (DD.MM.YYYY)
	"01/02/2006",
	"2006-01-02 15:04:05",
}

// toDatetime converts a series to fractional days since the Unix epoch.
// String cells are parsed against the known layouts; numeric cells pass
// through (already-converted columns); unparseable cells become null.
func toDatetime(s *frame.Series) *frame.Series {
	out := make([]float64, s.Len())
	for i := range out {
		out[i] = math.NaN()
		if !s.IsValid(i) {
			continue
		}
		if s.IsNumeric() {
			out[i] = s.Float(i)
			continue
		}
		raw := s.StringAt(i)
		for _, layout := range dateLayouts {
			if t, err := time.Parse(layout, raw); err == nil {
				out[i] = float64(t.Unix()) / 86400.0
				break
			}
		}
	}
	return frame.NewFloatSeries(s.Name(), out)
}

// callDt dispatches .dt.year / .dt.month / .dt.day / .dt.dayofweek.
func (e *Env) callDt(dv dtVal, name string, c *call) (Value, error) {
	if !dv.s.IsNumeric() {
		return nil, fmt.Errorf(".dt accessor needs a datetime column (apply pd.to_datetime first)")
	}
	extract := func(f func(time.Time) float64) Value {
		out := make([]float64, dv.s.Len())
		for i := range out {
			v := dv.s.Float(i)
			if math.IsNaN(v) {
				out[i] = math.NaN()
				continue
			}
			t := time.Unix(int64(v*86400), 0).UTC()
			out[i] = f(t)
		}
		return frame.NewFloatSeries(dv.s.Name(), out)
	}
	switch name {
	case "year":
		return extract(func(t time.Time) float64 { return float64(t.Year()) }), nil
	case "month":
		return extract(func(t time.Time) float64 { return float64(t.Month()) }), nil
	case "day":
		return extract(func(t time.Time) float64 { return float64(t.Day()) }), nil
	case "dayofweek":
		// pandas: Monday=0 … Sunday=6.
		return extract(func(t time.Time) float64 { return float64((int(t.Weekday()) + 6) % 7) }), nil
	default:
		return nil, fmt.Errorf(".dt has no attribute %q", name)
	}
}
