package interp

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"lucidscript/internal/faults"
	"lucidscript/internal/script"
)

func mustParse(t *testing.T, src string) *script.Script {
	t.Helper()
	s, err := script.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return s
}

// wantExhaustedAt runs the script and asserts it fails with
// ErrResourceExhausted as a *StmtError at the given 1-based line.
func wantExhaustedAt(t *testing.T, s *script.Script, opts Options, line int) {
	t.Helper()
	_, err := Run(s, titanicSources(t), opts)
	if !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("err = %v, want ErrResourceExhausted", err)
	}
	var se *StmtError
	if !errors.As(err, &se) {
		t.Fatalf("err %v is not a *StmtError", err)
	}
	if se.Line != line {
		t.Fatalf("failed at line %d (%s), want line %d", se.Line, se.Stmt, line)
	}
}

func TestMaxColsQuarantinesGetDummies(t *testing.T) {
	s := mustParse(t, "import pandas as pd\n"+
		`df = pd.read_csv("train.csv")`+"\n"+
		`df = pd.get_dummies(df)`+"\n")
	// The fixture explodes well past 6 columns under get_dummies.
	wantExhaustedAt(t, s, Options{Seed: 7, Limits: &Limits{MaxCols: 6}}, 3)
	// Generous budget: same script runs clean.
	if _, err := Run(s, titanicSources(t), Options{Seed: 7, Limits: DefaultLimits()}); err != nil {
		t.Fatalf("default limits rejected a healthy script: %v", err)
	}
}

func TestMaxRowsAndCellsBudgets(t *testing.T) {
	s := mustParse(t, "import pandas as pd\n"+
		`df = pd.read_csv("train.csv")`+"\n")
	wantExhaustedAt(t, s, Options{Seed: 7, Limits: &Limits{MaxRows: 3}}, 2)
	wantExhaustedAt(t, s, Options{Seed: 7, Limits: &Limits{MaxCells: 10}}, 2)
}

func TestMaxStringBytesBudget(t *testing.T) {
	// The fixture's Sex+Embarked columns carry well over 16 bytes of string
	// payload, so materializing the frame itself trips the budget.
	src := "import pandas as pd\n" +
		`df = pd.read_csv("train.csv")` + "\n"
	s := mustParse(t, src)
	wantExhaustedAt(t, s, Options{Seed: 7, Limits: &Limits{MaxStringBytes: 16}}, 2)
	// Scalar strings are budgeted too.
	s2 := mustParse(t, `x = "0123456789abcdef-overflow"`+"\n")
	wantExhaustedAt(t, s2, Options{Seed: 7, Limits: &Limits{MaxStringBytes: 16}}, 1)
}

// MaxSteps is positional: a run through a warm prefix cache must fail at
// exactly the same statement as an uncached run, because the check counts
// the statement index, not executed (non-cached) statements.
func TestMaxStepsPositionalAndCacheIndependent(t *testing.T) {
	src := "import pandas as pd\n" +
		`df = pd.read_csv("train.csv")` + "\n" +
		`df = df.dropna()` + "\n" +
		`df = df.head(3)` + "\n"
	s := mustParse(t, src)
	sources := titanicSources(t)
	opts := Options{Seed: 7, Limits: &Limits{MaxSteps: 3}}

	_, plainErr := Run(s, sources, opts)
	if !errors.Is(plainErr, ErrResourceExhausted) {
		t.Fatalf("plain err = %v, want ErrResourceExhausted", plainErr)
	}
	var se *StmtError
	if !errors.As(plainErr, &se) || se.Line != 4 {
		t.Fatalf("plain run failed at %v, want line 4", plainErr)
	}

	cache := NewSessionCache(sources, opts, 0)
	// Warm the full prefix with a script under the step budget.
	warm := mustParse(t, "import pandas as pd\n"+
		`df = pd.read_csv("train.csv")`+"\n"+
		`df = df.dropna()`+"\n")
	if _, err := cache.Run(warm); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	_, cachedErr := cache.Run(s)
	if cachedErr == nil || plainErr.Error() != cachedErr.Error() {
		t.Fatalf("cache-on error mismatch\nplain:  %v\ncached: %v", plainErr, cachedErr)
	}
}

func TestStatementPanicContained(t *testing.T) {
	inj := faults.New(1, faults.Rule{
		Site: faults.SiteInterpExec, Key: "df = df.dropna()", Kind: faults.KindPanic, Prob: 1,
	})
	s := mustParse(t, "import pandas as pd\n"+
		`df = pd.read_csv("train.csv")`+"\n"+
		`df = df.dropna()`+"\n")
	_, err := Run(s, titanicSources(t), Options{Seed: 7, Faults: inj})
	if !errors.Is(err, ErrStatementPanicked) {
		t.Fatalf("err = %v, want ErrStatementPanicked", err)
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, should still wrap faults.ErrInjected through the panic", err)
	}
	var se *StmtError
	if !errors.As(err, &se) {
		t.Fatalf("err %v is not a *StmtError", err)
	}
	if se.Line != 3 || se.Stmt != "df = df.dropna()" {
		t.Fatalf("position = line %d (%s), want line 3 (df = df.dropna())", se.Line, se.Stmt)
	}
}

func TestStmtErrorFormatMatchesHistoricalText(t *testing.T) {
	s := mustParse(t, "import pandas as pd\n"+
		`df = pd.read_csv("nope.csv")`+"\n")
	_, err := Run(s, titanicSources(t), Options{Seed: 7})
	if err == nil {
		t.Fatal("expected missing-source error")
	}
	want := `interp: line 2 (df = pd.read_csv("nope.csv")): `
	if !strings.HasPrefix(err.Error(), want) {
		t.Fatalf("error %q does not keep the historical %q prefix", err, want)
	}
	var se *StmtError
	if !errors.As(err, &se) {
		t.Fatalf("err %v is not a *StmtError", err)
	}
}

// An injected fault must never enter the trie: the faulted statement leaves
// no node behind, the invariant checker passes, and the un-faulted prefix
// stays reusable by later scripts.
func TestInjectedFaultNeverPoisonsTrie(t *testing.T) {
	for _, kind := range []faults.Kind{faults.KindError, faults.KindPanic, faults.KindExhaust} {
		t.Run(kind.String(), func(t *testing.T) {
			inj := faults.New(1, faults.Rule{
				Site: faults.SiteCacheStep, Key: "df = df.dropna()", Kind: kind, Prob: 1,
			})
			sources := titanicSources(t)
			opts := Options{Seed: 7, Faults: inj}
			cache := NewSessionCache(sources, opts, 0)
			bad := mustParse(t, "import pandas as pd\n"+
				`df = pd.read_csv("train.csv")`+"\n"+
				`df = df.dropna()`+"\n")
			_, err := cache.Run(bad)
			if !errors.Is(err, faults.ErrInjected) {
				t.Fatalf("err = %v, want wrapped faults.ErrInjected", err)
			}
			if err := cache.CheckInvariants(); err != nil {
				t.Fatalf("trie invariants violated after injected %s: %v", kind, err)
			}
			// The shared prefix (import + read_csv) must still be cached and
			// clean: a sibling script reuses it and succeeds.
			good := mustParse(t, "import pandas as pd\n"+
				`df = pd.read_csv("train.csv")`+"\n"+
				`df = df.head(3)`+"\n")
			res, err := cache.Run(good)
			if err != nil {
				t.Fatalf("sibling script failed after injected fault: %v", err)
			}
			if res.Main == nil || res.Main.NumRows() != 3 {
				t.Fatalf("sibling result corrupted: %+v", res.Main)
			}
			st := cache.Stats()
			if st.Hits < 2 {
				t.Fatalf("sibling did not reuse the prefix (hits=%d)", st.Hits)
			}
		})
	}
}

// A genuine (non-injected) failure IS cached: re-running the failing script
// hits the error node instead of re-executing, and the error is identical.
func TestGenuineFailureIsCachedDeterministically(t *testing.T) {
	sources := titanicSources(t)
	opts := Options{Seed: 7, Limits: &Limits{MaxCols: 6}}
	cache := NewSessionCache(sources, opts, 0)
	s := mustParse(t, "import pandas as pd\n"+
		`df = pd.read_csv("train.csv")`+"\n"+
		`df = pd.get_dummies(df)`+"\n")
	_, err1 := cache.Run(s)
	if !errors.Is(err1, ErrResourceExhausted) {
		t.Fatalf("first run err = %v, want ErrResourceExhausted", err1)
	}
	miss1 := cache.Stats().Misses
	_, err2 := cache.Run(s)
	if err2 == nil || err1.Error() != err2.Error() {
		t.Fatalf("cached failure mismatch:\nfirst:  %v\nsecond: %v", err1, err2)
	}
	if got := cache.Stats().Misses; got != miss1 {
		t.Fatalf("second run re-executed (misses %d -> %d); want pure hits", miss1, got)
	}
	if err := cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHeadAndSampleClampNegative(t *testing.T) {
	for _, stmt := range []string{"df = df.head(-3)", "df = df.sample(-1)"} {
		s := mustParse(t, "import pandas as pd\n"+
			`df = pd.read_csv("train.csv")`+"\n"+stmt+"\n")
		res, err := Run(s, titanicSources(t), Options{Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
		if res.Main == nil || res.Main.NumRows() != 0 {
			t.Fatalf("%s: want empty frame, got %v rows", stmt, res.Main.NumRows())
		}
	}
}

// Governed execution must be byte-identical between cache-on and cache-off
// for clean scripts under limits, including the RunContext cancellation path.
func TestLimitsPreserveCacheEquivalence(t *testing.T) {
	sources := titanicSources(t)
	opts := Options{Seed: 5, Limits: DefaultLimits()}
	pool := propScripts(t)
	cache := NewSessionCache(sources, opts, 0)
	for i, s := range pool {
		plain, plainErr := Run(s, sources, opts)
		cached, cachedErr := cache.Run(s)
		assertSameResult(t, fmt.Sprintf("script %d under limits", i), plain, plainErr, cached, cachedErr)
	}
	if err := cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Cancellation before any statement still reports position without
	// touching the trie.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cache.RunContext(ctx, pool[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if err := cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
