package interp

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"lucidscript/internal/faults"
	"lucidscript/internal/frame"
	"lucidscript/internal/script"
)

// CacheStats counts what a SessionCache did. Hits/Misses are per-statement
// trie lookups; StmtsSkipped/StmtsExecuted mirror them so the search layer
// can report how much interpreter work the prefix cache avoided.
type CacheStats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	StmtsExecuted int64
	StmtsSkipped  int64
	// ExecTime is the wall time spent actually executing statements
	// (cache misses only).
	ExecTime time.Duration
}

// EstSavedTime extrapolates the execution time the cache avoided, assuming
// skipped statements would have cost the mean observed per-statement time.
func (c CacheStats) EstSavedTime() time.Duration {
	if c.StmtsExecuted == 0 {
		return 0
	}
	per := float64(c.ExecTime) / float64(c.StmtsExecuted)
	return time.Duration(per * float64(c.StmtsSkipped))
}

// Session is the execution surface the search layer runs candidates
// through: either a *SessionCache itself or a per-job *CacheView of one.
// Both are safe for concurrent use.
type Session interface {
	RunContext(ctx context.Context, s *script.Script) (*Result, error)
	CheckContext(ctx context.Context, s *script.Script) error
	Stats() CacheStats
}

// trieNode is one executed statement prefix. The path from the root spells
// the exact statement texts executed so far; env is the (immutable) forked
// environment after executing that prefix, or nil when the prefix fails,
// in which case err holds the failure.
type trieNode struct {
	key      string
	parent   *trieNode
	children map[string]*trieNode
	env      *Env
	err      error
	lastUsed int64
}

// SessionCache executes scripts statement-by-statement through a trie of
// previously executed prefixes: a candidate script only pays for the
// statements after its first divergence from any earlier candidate. Safe for
// concurrent use; statement execution happens outside the lock.
//
// Correctness rests on two properties the interpreter now guarantees:
// execution is deterministic (fixed sources, seeded replayable RNG), and no
// operation mutates a frame or series reachable from an earlier environment
// (assignments rebind variables to fresh frames instead). Equal prefix text
// therefore implies an equal environment, and cached environments stay valid
// forever.
type SessionCache struct {
	mu       sync.Mutex
	root     *trieNode
	maxNodes int
	nodes    int
	clock    int64
	stats    CacheStats
	// limits mirrors the root environment's governor for the per-run
	// MaxSteps check (which is positional, not per-statement, and so
	// cannot live inside exec).
	limits *Limits
}

// DefaultCacheSize bounds the trie when the caller passes maxNodes <= 0.
const DefaultCacheSize = 8192

// NewSessionCache builds a cache over the given sources. MaxRows sampling
// is applied once here (not per run); opts.Seed seeds every execution.
func NewSessionCache(sources map[string]*frame.Frame, opts Options, maxNodes int) *SessionCache {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if maxNodes <= 0 {
		maxNodes = DefaultCacheSize
	}
	srcs := SampleSources(sources, opts.MaxRows, opts.Seed)
	return &SessionCache{
		root:     &trieNode{env: newEnv(srcs, opts.Seed, opts.Limits, opts.Faults)},
		maxNodes: maxNodes,
		limits:   opts.Limits,
	}
}

// Run executes the script, reusing every previously executed prefix.
// The result is identical to interp.Run with the same sources and options.
func (c *SessionCache) Run(s *script.Script) (*Result, error) {
	return c.RunContext(context.Background(), s)
}

// RunContext is Run with statement-granularity cancellation: the context is
// checked before every statement, so a deadline aborts mid-candidate. A
// canceled run returns an error wrapping ctx.Err() and never writes a
// cancellation into the trie — every cached prefix node always holds a
// fully executed (or genuinely failed) statement, so the cache stays
// consistent and reusable after an abort.
func (c *SessionCache) RunContext(ctx context.Context, s *script.Script) (*Result, error) {
	return c.runContext(ctx, s, nil)
}

// runContext is RunContext with optional per-view stats attribution: when
// view is non-nil, every statement's hit/miss delta is also folded into the
// view's private counters (the shared totals always accumulate).
func (c *SessionCache) runContext(ctx context.Context, s *script.Script, view *CacheView) (*Result, error) {
	node := c.root
	for i, st := range s.Stmts {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("interp: canceled before line %d (%s): %w", i+1, st.Source(), err)
		}
		if err := c.limits.checkStep(i); err != nil {
			return nil, &StmtError{Line: i + 1, Stmt: st.Source(), Err: err}
		}
		next, delta, err := c.step(node, i, st)
		if view != nil {
			view.add(delta)
		}
		if err != nil {
			return nil, err
		}
		node = next
	}
	// Fork so the caller never holds a reference to a cached environment.
	c.mu.Lock()
	env := node.env.fork()
	c.mu.Unlock()
	return env.result(), nil
}

// Check reports whether the script runs without error (the execution
// constraint), through the cache.
func (c *SessionCache) Check(s *script.Script) error {
	_, err := c.Run(s)
	return err
}

// CheckContext is Check with statement-granularity cancellation.
func (c *SessionCache) CheckContext(ctx context.Context, s *script.Script) error {
	_, err := c.RunContext(ctx, s)
	return err
}

// Stats returns a snapshot of the counters.
func (c *SessionCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// step advances one statement from node, returning the child node for st and
// the per-statement stats delta (one hit or one miss with its exec time).
// On a hit the cached child is returned; on a miss the parent environment is
// forked and the statement executed outside the lock, then inserted. When two
// goroutines race on the same miss, the first insert wins and the loser's
// result is discarded — determinism makes them interchangeable.
func (c *SessionCache) step(node *trieNode, line int, st script.Stmt) (*trieNode, CacheStats, error) {
	key := st.Source()
	c.mu.Lock()
	c.clock++
	if child, ok := node.children[key]; ok {
		child.lastUsed = c.clock
		c.stats.Hits++
		c.stats.StmtsSkipped++
		c.mu.Unlock()
		return child, CacheStats{Hits: 1, StmtsSkipped: 1}, child.err
	}
	c.stats.Misses++
	c.stats.StmtsExecuted++
	env := node.env.fork()
	c.mu.Unlock()

	start := time.Now()
	execErr := env.execGoverned(faults.SiteCacheStep, st)
	elapsed := time.Since(start)
	if execErr != nil {
		execErr = &StmtError{Line: line + 1, Stmt: key, Err: execErr}
		env = nil
	}
	delta := CacheStats{Misses: 1, StmtsExecuted: 1, ExecTime: elapsed}

	// An injected fault must never be memoized: unlike a genuine failure it
	// is not a property of the statement, so caching it would poison the
	// prefix for every later candidate (the same rule that keeps context
	// cancellations out of the trie). Genuine panics and budget violations
	// ARE cached — execution is deterministic, so the statement would fail
	// identically on every re-run.
	if execErr != nil && errors.Is(execErr, faults.ErrInjected) {
		c.mu.Lock()
		c.stats.ExecTime += elapsed
		c.mu.Unlock()
		return nil, delta, execErr
	}

	c.mu.Lock()
	c.stats.ExecTime += elapsed
	c.clock++
	if child, ok := node.children[key]; ok {
		// Lost the race; keep the first-inserted node.
		child.lastUsed = c.clock
		c.mu.Unlock()
		return child, delta, child.err
	}
	child := &trieNode{key: key, parent: node, env: env, err: execErr, lastUsed: c.clock}
	if node.children == nil {
		node.children = make(map[string]*trieNode)
	}
	node.children[key] = child
	c.nodes++
	if c.nodes > c.maxNodes {
		c.evictLocked()
	}
	c.mu.Unlock()
	return child, delta, child.err
}

// CacheView is a per-caller handle on a shared SessionCache: runs through a
// view hit the same trie (so concurrent batch jobs share each other's
// prefixes) while the view's Stats only count this caller's traffic.
// Evictions are a property of the shared cache, not of any one view, so a
// view's Evictions stays 0 — read the underlying cache's Stats for them.
type CacheView struct {
	c     *SessionCache
	mu    sync.Mutex
	stats CacheStats
}

// NewView returns a view whose Stats attribute traffic to this caller only.
func (c *SessionCache) NewView() *CacheView { return &CacheView{c: c} }

func (v *CacheView) add(d CacheStats) {
	v.mu.Lock()
	v.stats.Hits += d.Hits
	v.stats.Misses += d.Misses
	v.stats.StmtsExecuted += d.StmtsExecuted
	v.stats.StmtsSkipped += d.StmtsSkipped
	v.stats.ExecTime += d.ExecTime
	v.mu.Unlock()
}

// RunContext executes the script through the shared cache, attributing the
// per-statement traffic to this view.
func (v *CacheView) RunContext(ctx context.Context, s *script.Script) (*Result, error) {
	return v.c.runContext(ctx, s, v)
}

// CheckContext reports whether the script runs without error, through the
// shared cache, attributing traffic to this view.
func (v *CacheView) CheckContext(ctx context.Context, s *script.Script) error {
	_, err := v.c.runContext(ctx, s, v)
	return err
}

// Stats returns a snapshot of this view's traffic counters.
func (v *CacheView) Stats() CacheStats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.stats
}

// evictLocked drops least-recently-used leaves until the trie is at 90% of
// capacity. Only leaves are evicted (an interior node's environment is still
// the fork source for its children); the root never goes away. Called with
// c.mu held.
func (c *SessionCache) evictLocked() {
	target := c.maxNodes * 9 / 10
	for c.nodes > target {
		var leaves []*trieNode
		c.walkLeaves(c.root, func(n *trieNode) { leaves = append(leaves, n) })
		if len(leaves) == 0 {
			return
		}
		sort.Slice(leaves, func(i, j int) bool { return leaves[i].lastUsed < leaves[j].lastUsed })
		for _, v := range leaves {
			if c.nodes <= target {
				break
			}
			delete(v.parent.children, v.key)
			c.nodes--
			c.stats.Evictions++
		}
		// Evicting leaves can expose new leaves; loop until at target.
	}
}

// CheckInvariants walks the whole trie under the cache lock and verifies
// the structural invariants every operation must preserve:
//
//  1. every node holds an environment XOR an error — a fully executed
//     statement or a genuine deterministic failure, never both or neither;
//  2. no cached error is a context cancellation or an injected fault
//     (aborted runs and chaos injections must never poison the trie);
//  3. parent/key links are consistent and the node-count bookkeeping
//     matches the walked trie and respects the configured cap.
//
// It returns the first violation found, or nil. Chaos and property tests
// call it after hammering a shared cache; it is exported (rather than
// test-local) so tests in other packages can assert the same invariants.
func (c *SessionCache) CheckInvariants() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	walked := 0
	var walk func(n *trieNode) error
	walk = func(n *trieNode) error {
		if n != c.root {
			walked++
			if (n.env == nil) == (n.err == nil) {
				return fmt.Errorf("node %q: env=%v err=%v, want exactly one", n.key, n.env != nil, n.err)
			}
			if n.err != nil && (errors.Is(n.err, context.Canceled) || errors.Is(n.err, context.DeadlineExceeded)) {
				return fmt.Errorf("node %q caches a context error: %v", n.key, n.err)
			}
			if n.err != nil && errors.Is(n.err, faults.ErrInjected) {
				return fmt.Errorf("node %q caches an injected fault: %v", n.key, n.err)
			}
		}
		for key, ch := range n.children {
			if ch.key != key || ch.parent != n {
				return fmt.Errorf("node %q: broken parent/key links", key)
			}
			if err := walk(ch); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(c.root); err != nil {
		return err
	}
	if walked != c.nodes {
		return fmt.Errorf("walked %d nodes, bookkeeping says %d", walked, c.nodes)
	}
	if c.nodes > c.maxNodes {
		return fmt.Errorf("trie holds %d nodes, cap is %d", c.nodes, c.maxNodes)
	}
	return nil
}

func (c *SessionCache) walkLeaves(n *trieNode, fn func(*trieNode)) {
	if len(n.children) == 0 {
		if n != c.root {
			fn(n)
		}
		return
	}
	for _, ch := range n.children {
		c.walkLeaves(ch, fn)
	}
}
