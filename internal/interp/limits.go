package interp

import (
	"errors"
	"fmt"

	"lucidscript/internal/faults"
	"lucidscript/internal/frame"
	"lucidscript/internal/script"
)

// ErrResourceExhausted reports that a run tripped one of its Limits budgets.
// The search layer treats it as a quarantine signal: the candidate is
// dropped and tallied, never allowed to abort the surrounding search.
var ErrResourceExhausted = errors.New("interp: resource budget exhausted")

// ErrStatementPanicked reports that a statement panicked and the panic was
// contained by the per-statement recover. Like ErrResourceExhausted it is a
// quarantine signal: deterministic execution means the same statement would
// panic again, so the candidate is dropped rather than retried.
var ErrStatementPanicked = errors.New("interp: statement panicked")

// StmtError attaches the script position to a statement failure: the
// 1-based line, the statement source text, and the underlying cause.
// Every error surfaced by Run/RunContext and SessionCache execution is a
// *StmtError, so callers can recover the failing statement with errors.As
// and classify the cause with errors.Is (ErrResourceExhausted,
// ErrStatementPanicked, context.Canceled, faults.ErrInjected, ...).
type StmtError struct {
	// Line is the 1-based statement position in the script.
	Line int
	// Stmt is the statement's source text.
	Stmt string
	// Err is the underlying failure.
	Err error
}

func (e *StmtError) Error() string {
	return fmt.Sprintf("interp: line %d (%s): %v", e.Line, e.Stmt, e.Err)
}

func (e *StmtError) Unwrap() error { return e.Err }

// Limits is the per-run resource governor: budgets on what any single
// statement may materialize and on how many statements a run may execute.
// The zero value of any field means unlimited; a nil *Limits disables the
// governor entirely (the checks reduce to one pointer comparison, keeping
// the no-limits path benchmark-neutral).
//
// Cell/row/column/string budgets are enforced per materialized value — at
// call results, assigned values, and rebound frames — not cumulatively
// across the run. Per-value enforcement is what keeps cached and uncached
// execution byte-identical: the prefix cache skips statements it has seen,
// so any budget that accumulated across executed statements would depend on
// cache state. MaxSteps is cumulative but counts the statement index, which
// is identical whether or not a prefix came from the cache.
type Limits struct {
	// MaxCells bounds rows × columns of any materialized frame.
	MaxCells int
	// MaxRows bounds the rows of any materialized frame or series.
	MaxRows int
	// MaxCols bounds the columns of any materialized frame (the
	// get_dummies explosion vector).
	MaxCols int
	// MaxStringBytes bounds the total string payload of any materialized
	// frame, series, or scalar string (the runaway-concat vector).
	MaxStringBytes int
	// MaxSteps bounds how many statements a single run may execute.
	MaxSteps int
}

// DefaultLimits returns budgets generous enough for every legitimate
// corpus or candidate script while still catching pathological blowups
// well before they threaten the process.
func DefaultLimits() *Limits {
	return &Limits{
		MaxCells:       50_000_000,
		MaxRows:        10_000_000,
		MaxCols:        10_000,
		MaxStringBytes: 1 << 30, // 1 GiB
		MaxSteps:       10_000,
	}
}

func exhausted(what string, got, max int) error {
	return fmt.Errorf("%w: %s %d exceeds limit %d", ErrResourceExhausted, what, got, max)
}

// checkFrame enforces the materialization budgets on one frame.
func (l *Limits) checkFrame(f *frame.Frame) error {
	if l == nil || f == nil {
		return nil
	}
	rows, cols := f.NumRows(), f.NumCols()
	if l.MaxRows > 0 && rows > l.MaxRows {
		return exhausted("rows", rows, l.MaxRows)
	}
	if l.MaxCols > 0 && cols > l.MaxCols {
		return exhausted("columns", cols, l.MaxCols)
	}
	if l.MaxCells > 0 && rows*cols > l.MaxCells {
		return exhausted("cells", rows*cols, l.MaxCells)
	}
	if l.MaxStringBytes > 0 {
		var bytes int
		for i := 0; i < cols; i++ {
			bytes += f.ColumnAt(i).StringBytes()
			if bytes > l.MaxStringBytes {
				return exhausted("string bytes", bytes, l.MaxStringBytes)
			}
		}
	}
	return nil
}

// checkSeries enforces the materialization budgets on one series.
func (l *Limits) checkSeries(s *frame.Series) error {
	if l == nil || s == nil {
		return nil
	}
	if l.MaxRows > 0 && s.Len() > l.MaxRows {
		return exhausted("rows", s.Len(), l.MaxRows)
	}
	if l.MaxCells > 0 && s.Len() > l.MaxCells {
		return exhausted("cells", s.Len(), l.MaxCells)
	}
	if l.MaxStringBytes > 0 {
		if bytes := s.StringBytes(); bytes > l.MaxStringBytes {
			return exhausted("string bytes", bytes, l.MaxStringBytes)
		}
	}
	return nil
}

// checkValue enforces the budgets on any value a statement materializes.
// Non-container values (numbers, bools, masks, modules, ...) are free.
func (e *Env) checkValue(v Value) error {
	if e.limits == nil {
		return nil
	}
	switch val := v.(type) {
	case *DF:
		return e.limits.checkFrame(val.F)
	case *frame.Series:
		return e.limits.checkSeries(val)
	case string:
		if e.limits.MaxStringBytes > 0 && len(val) > e.limits.MaxStringBytes {
			return exhausted("string bytes", len(val), e.limits.MaxStringBytes)
		}
	}
	return nil
}

// checkStep enforces MaxSteps against the 0-based statement index. It is
// keyed on position, not on executed-statement count, so a run through the
// prefix cache (which skips cached statements) fails at exactly the same
// statement as an uncached run.
func (l *Limits) checkStep(i int) error {
	if l == nil || l.MaxSteps <= 0 || i < l.MaxSteps {
		return nil
	}
	return exhausted("statement steps", i+1, l.MaxSteps)
}

// execGoverned runs one statement under the fault-isolation envelope: the
// injector's site hook fires first (keyed by statement text), the statement
// executes with panics contained to a typed error, and limit violations
// surface as ErrResourceExhausted. This is the single execution entry used
// by both the plain run loop and the session-cache miss path, so governed
// semantics are identical with and without the cache.
func (e *Env) execGoverned(site string, st script.Stmt) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if perr, ok := r.(error); ok {
				err = fmt.Errorf("%w: %w", ErrStatementPanicked, perr)
			} else {
				err = fmt.Errorf("%w: %v", ErrStatementPanicked, r)
			}
		}
	}()
	if f := e.faults.Fire(site, st.Source()); f != nil {
		if f.Kind == faults.KindExhaust {
			return fmt.Errorf("%w: %w", ErrResourceExhausted, f.Err)
		}
		return f.Err
	}
	return e.exec(st)
}
