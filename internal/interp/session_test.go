package interp

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"lucidscript/internal/corpusgen"
	"lucidscript/internal/frame"
	"lucidscript/internal/script"
)

// frameRepr renders a frame (or nil) for equality checks.
func frameRepr(f *frame.Frame) string {
	if f == nil {
		return "<nil>"
	}
	return f.String()
}

func seriesRepr(s *frame.Series) string {
	if s == nil {
		return "<nil>"
	}
	var b strings.Builder
	b.WriteString(s.Name())
	for i := 0; i < s.Len(); i++ {
		b.WriteByte('\n')
		if !s.IsValid(i) {
			b.WriteString("<null>")
			continue
		}
		b.WriteString(s.StringAt(i))
	}
	return b.String()
}

// assertSameResult compares a cached run against a plain Run: identical
// error strings, or identical Main/X/Y contents.
func assertSameResult(t *testing.T, label string, plain *Result, plainErr error, cached *Result, cachedErr error) {
	t.Helper()
	if (plainErr == nil) != (cachedErr == nil) {
		t.Fatalf("%s: plain err=%v, cached err=%v", label, plainErr, cachedErr)
	}
	if plainErr != nil {
		if plainErr.Error() != cachedErr.Error() {
			t.Fatalf("%s: error mismatch\nplain:  %v\ncached: %v", label, plainErr, cachedErr)
		}
		return
	}
	if got, want := frameRepr(cached.Main), frameRepr(plain.Main); got != want {
		t.Fatalf("%s: Main mismatch\nplain:\n%s\ncached:\n%s", label, want, got)
	}
	if got, want := frameRepr(cached.X), frameRepr(plain.X); got != want {
		t.Fatalf("%s: X mismatch\nplain:\n%s\ncached:\n%s", label, want, got)
	}
	if got, want := seriesRepr(cached.Y), seriesRepr(plain.Y); got != want {
		t.Fatalf("%s: Y mismatch\nplain:\n%s\ncached:\n%s", label, want, got)
	}
}

// TestSessionCacheMatchesRunCorpus pushes a whole generated Titanic corpus
// (heavy prefix sharing: every script starts with the same read_csv) through
// one shared cache and checks each result against a fresh plain Run.
func TestSessionCacheMatchesRunCorpus(t *testing.T) {
	comp, err := corpusgen.Get("Titanic")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := comp.Generate(corpusgen.GenOptions{Seed: 3, RowScale: 0.01, MinRows: 60})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Seed: 5, MaxRows: 40} // exercise pre-sampling too
	cache := NewSessionCache(gen.Sources, opts, 0)
	for i, gs := range gen.Scripts {
		plain, plainErr := Run(gs.Script, gen.Sources, opts)
		cached, cachedErr := cache.Run(gs.Script)
		assertSameResult(t, fmt.Sprintf("script %d", i), plain, plainErr, cached, cachedErr)
	}
	st := cache.Stats()
	if st.Hits == 0 {
		t.Fatalf("corpus scripts share prefixes but cache recorded no hits: %+v", st)
	}
	if st.StmtsExecuted+st.StmtsSkipped != st.Hits+st.Misses {
		t.Fatalf("counter mismatch: %+v", st)
	}
}

// TestSessionCacheRNG checks that RNG-dependent ops (df.sample) behave
// identically through the cache: forked environments must replay the seeded
// stream from the exact draw count of their prefix.
func TestSessionCacheRNG(t *testing.T) {
	sources := titanicSources(t)
	prefix := `import pandas as pd
df = pd.read_csv("train.csv")
df = df.sample(frac=0.5)
`
	variants := []string{
		prefix + `df["Fare"] = df["Fare"].fillna(0)
df = df.sample(frac=0.5)
`,
		prefix + `df = df.sample(frac=0.5)
`,
		prefix + `df["Age"] = df["Age"].fillna(df["Age"].mean())
df = df.sample(frac=0.5)
`,
	}
	opts := Options{Seed: 7}
	cache := NewSessionCache(sources, opts, 0)
	// Run twice: second pass is all hits and must reproduce the first.
	for pass := 0; pass < 2; pass++ {
		for i, src := range variants {
			s, err := script.Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			plain, plainErr := Run(s, sources, opts)
			cached, cachedErr := cache.Run(s)
			assertSameResult(t, fmt.Sprintf("pass %d variant %d", pass, i), plain, plainErr, cached, cachedErr)
		}
	}
}

// TestSessionCacheForkIsolation diverges two scripts after a shared prefix
// with in-place-looking assignments (df["c"] = ..., df.loc[...] = ...) and
// re-runs the first: if any op mutated a frame reachable from the shared
// prefix, the re-run would observe the other branch's writes.
func TestSessionCacheForkIsolation(t *testing.T) {
	sources := titanicSources(t)
	prefix := `import pandas as pd
df = pd.read_csv("train.csv")
df["Age"] = df["Age"].fillna(0)
`
	a := prefix + `df["Flag"] = 1.0
`
	b := prefix + `df["Flag"] = 2.0
df.loc[df["Age"] > 30, "Age"] = 99
`
	opts := Options{Seed: 1}
	cache := NewSessionCache(sources, opts, 0)
	parse := func(src string) *script.Script {
		s, err := script.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	first, err := cache.Run(parse(a))
	if err != nil {
		t.Fatal(err)
	}
	want := frameRepr(first.Main)
	if _, err := cache.Run(parse(b)); err != nil {
		t.Fatal(err)
	}
	again, err := cache.Run(parse(a))
	if err != nil {
		t.Fatal(err)
	}
	if got := frameRepr(again.Main); got != want {
		t.Fatalf("branch b leaked into cached prefix of a\nbefore:\n%s\nafter:\n%s", want, got)
	}
	// The prefix statements must not re-execute on the re-run.
	st := cache.Stats()
	if st.Hits == 0 {
		t.Fatalf("expected prefix hits, got %+v", st)
	}
}

// TestSessionCacheErrors checks failing statements are cached with the same
// error text a plain Run produces, and that repeats are hits not re-runs.
func TestSessionCacheErrors(t *testing.T) {
	sources := titanicSources(t)
	src := `import pandas as pd
df = pd.read_csv("train.csv")
df["Oops"] = df["Missing"].fillna(0)
`
	s, err := script.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Seed: 1}
	cache := NewSessionCache(sources, opts, 0)
	_, plainErr := Run(s, sources, opts)
	if plainErr == nil {
		t.Fatal("script should fail")
	}
	_, err1 := cache.Run(s)
	if err1 == nil || err1.Error() != plainErr.Error() {
		t.Fatalf("cached error = %v, want %v", err1, plainErr)
	}
	before := cache.Stats()
	_, err2 := cache.Run(s)
	if err2 == nil || err2.Error() != plainErr.Error() {
		t.Fatalf("repeat cached error = %v, want %v", err2, plainErr)
	}
	after := cache.Stats()
	if after.Misses != before.Misses {
		t.Fatalf("repeat of failing script re-executed: before %+v after %+v", before, after)
	}
}

// TestSessionCacheEviction bounds the trie very tightly and checks the cache
// stays correct while evicting.
func TestSessionCacheEviction(t *testing.T) {
	sources := titanicSources(t)
	opts := Options{Seed: 1}
	cache := NewSessionCache(sources, opts, 6)
	for i := 0; i < 8; i++ {
		src := fmt.Sprintf(`import pandas as pd
df = pd.read_csv("train.csv")
df["V%d"] = %d
`, i, i)
		s, err := script.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		plain, plainErr := Run(s, sources, opts)
		cached, cachedErr := cache.Run(s)
		assertSameResult(t, fmt.Sprintf("script %d", i), plain, plainErr, cached, cachedErr)
	}
	st := cache.Stats()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions with maxNodes=6: %+v", st)
	}
	// Evicted prefixes must still produce correct results when re-run.
	src := `import pandas as pd
df = pd.read_csv("train.csv")
df["V0"] = 0
`
	s, err := script.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	plain, plainErr := Run(s, sources, opts)
	cached, cachedErr := cache.Run(s)
	assertSameResult(t, "re-run after eviction", plain, plainErr, cached, cachedErr)
}

// TestSessionCacheConcurrent hammers one cache from many goroutines (run
// under -race); every result must still match a plain Run.
func TestSessionCacheConcurrent(t *testing.T) {
	sources := titanicSources(t)
	opts := Options{Seed: 7}
	variants := []string{
		`import pandas as pd
df = pd.read_csv("train.csv")
df["Age"] = df["Age"].fillna(0)
df["Fare"] = df["Fare"].fillna(df["Fare"].mean())
`,
		`import pandas as pd
df = pd.read_csv("train.csv")
df["Age"] = df["Age"].fillna(0)
df = df.sample(frac=0.5)
`,
		`import pandas as pd
df = pd.read_csv("train.csv")
df["Age"] = df["Age"].fillna(0)
df.loc[df["Age"] > 30, "Age"] = 99
`,
		`import pandas as pd
df = pd.read_csv("train.csv")
df["Oops"] = df["Missing"].fillna(0)
`,
	}
	scripts := make([]*script.Script, len(variants))
	plains := make([]*Result, len(variants))
	plainErrs := make([]error, len(variants))
	for i, src := range variants {
		s, err := script.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		scripts[i] = s
		plains[i], plainErrs[i] = Run(s, sources, opts)
	}
	cache := NewSessionCache(sources, opts, 0)
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 8; rep++ {
				i := (g + rep) % len(scripts)
				cached, cachedErr := cache.Run(scripts[i])
				if (plainErrs[i] == nil) != (cachedErr == nil) {
					errc <- fmt.Errorf("script %d: plain err=%v cached err=%v", i, plainErrs[i], cachedErr)
					return
				}
				if cachedErr != nil {
					if cachedErr.Error() != plainErrs[i].Error() {
						errc <- fmt.Errorf("script %d: error mismatch: %v vs %v", i, cachedErr, plainErrs[i])
					}
					continue
				}
				if frameRepr(cached.Main) != frameRepr(plains[i].Main) {
					errc <- fmt.Errorf("script %d: Main mismatch under concurrency", i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestEstSavedTime sanity-checks the extrapolation arithmetic.
func TestEstSavedTime(t *testing.T) {
	st := CacheStats{StmtsExecuted: 4, StmtsSkipped: 8, ExecTime: 400}
	if got := st.EstSavedTime(); got != 800 {
		t.Fatalf("EstSavedTime = %d, want 800", got)
	}
	if got := (CacheStats{}).EstSavedTime(); got != 0 {
		t.Fatalf("zero stats EstSavedTime = %d, want 0", got)
	}
}
