package interp

import (
	"fmt"
	"sync"
	"testing"

	"lucidscript/internal/frame"
	"lucidscript/internal/gen"
)

// resultSnapshot serializes a run result for byte-exact comparison.
func resultSnapshot(res *Result) string {
	out := ""
	if res.Main != nil {
		out += "main:\n" + res.Main.CSVString()
	}
	if res.X != nil {
		out += "x:\n" + res.X.CSVString()
	}
	if res.Y != nil {
		yf := frame.New()
		_ = yf.AddColumn(res.Y)
		out += "y:\n" + yf.CSVString()
	}
	return out
}

// TestStructuralSharingEquivalence pins the frame immutability contract
// (DESIGN.md §9) against the seeded generative corpus: with Clone, Drop,
// Select, filters, and friends sharing *Series pointers across frames,
// every execution arm must still produce byte-identical output —
//
//  1. plain interp.Run over the shared sources,
//  2. interp.Run over deep-copied sources (the old deep-copy semantics),
//  3. a sequential SessionCache,
//  4. a shared SessionCache hammered concurrently (run under -race, this
//     is also the aliasing detector for shared column storage),
//
// and the source frames must remain byte-identical afterward: no run may
// write into a frame another run (or the cache) can reach.
func TestStructuralSharingEquivalence(t *testing.T) {
	g := gen.New(1234)
	scripts := g.Scripts(30)
	sources := g.Sources(300)

	pristine := map[string]string{}
	deepSources := map[string]*frame.Frame{}
	for name, f := range sources {
		pristine[name] = f.CSVString()
		deepSources[name] = f.DeepClone()
	}
	opts := Options{Seed: 3}

	// Arm 1: plain runs over the shared sources — the reference outputs.
	want := make([]string, len(scripts))
	for i, s := range scripts {
		res, err := Run(s, sources, opts)
		if err != nil {
			t.Fatalf("script %d: %v\n%s", i, err, s.Source())
		}
		want[i] = resultSnapshot(res)
	}

	// Arm 2: the same runs over deep-copied sources. Sharing series between
	// frames must be observationally identical to owning deep copies.
	for i, s := range scripts {
		res, err := Run(s, deepSources, opts)
		if err != nil {
			t.Fatalf("deep-copy script %d: %v", i, err)
		}
		if got := resultSnapshot(res); got != want[i] {
			t.Fatalf("script %d: deep-copy sources diverge from shared sources\n%s", i, s.Source())
		}
	}

	// Arm 3: sequential session cache (exec-prefix cache on).
	sc := NewSessionCache(sources, opts, 0)
	for i, s := range scripts {
		res, err := sc.Run(s)
		if err != nil {
			t.Fatalf("cached script %d: %v", i, err)
		}
		if got := resultSnapshot(res); got != want[i] {
			t.Fatalf("script %d: cached run diverges from plain run\n%s", i, s.Source())
		}
	}

	// Arm 4: shared cache, concurrent clients. Under -race this doubles as
	// an aliasing detector: any in-place write to shared column storage is
	// a data race across workers replaying the same prefixes.
	shared := NewSessionCache(sources, opts, 0)
	const workers = 4
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, s := range scripts {
				res, err := shared.Run(s)
				if err != nil {
					errs <- fmt.Errorf("worker %d script %d: %w", w, i, err)
					return
				}
				if got := resultSnapshot(res); got != want[i] {
					errs <- fmt.Errorf("worker %d script %d: concurrent cached run diverges", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every arm done: the sources must be byte-identical to the start.
	for name, f := range sources {
		if f.CSVString() != pristine[name] {
			t.Fatalf("source %s mutated by execution", name)
		}
	}
	for name, f := range deepSources {
		if f.CSVString() != pristine[name] {
			t.Fatalf("deep-copy source %s mutated by execution", name)
		}
	}
}
