package interp

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"lucidscript/internal/faults"
	"lucidscript/internal/frame"
	"lucidscript/internal/script"
)

// Env is the mutable execution environment of one script run.
type Env struct {
	sources map[string]*frame.Frame
	vars    map[string]Value
	// dfOrder records the assignment order of DataFrame-valued variables so
	// the "output dataset" of a script can be recovered (see Result).
	dfOrder []string
	rsrc    *replaySource
	rng     *rand.Rand
	// limits is the resource governor; nil disables every check.
	limits *Limits
	// faults is the chaos-injection hook; nil (the production default)
	// makes each site a single pointer comparison.
	faults *faults.Injector
}

// replaySource is a rand.Source whose exact state can be reconstructed: it
// records the seed and how many values have been drawn, so a fork replays a
// fresh source to the same position. The Int63 stream is identical to using
// rand.NewSource(seed) directly, keeping historical run outputs stable.
type replaySource struct {
	seed int64
	n    int64
	src  rand.Source
}

func newReplaySource(seed int64) *replaySource {
	return &replaySource{seed: seed, src: rand.NewSource(seed)}
}

func (r *replaySource) Int63() int64 {
	r.n++
	return r.src.Int63()
}

func (r *replaySource) Seed(seed int64) {
	r.seed, r.n = seed, 0
	r.src.Seed(seed)
}

func (r *replaySource) fork() *replaySource {
	src := rand.NewSource(r.seed)
	for i := int64(0); i < r.n; i++ {
		src.Int63()
	}
	return &replaySource{seed: r.seed, n: r.n, src: src}
}

// newEnv builds a fresh environment over already-sampled sources.
func newEnv(sources map[string]*frame.Frame, seed int64, limits *Limits, inj *faults.Injector) *Env {
	rsrc := newReplaySource(seed)
	return &Env{
		sources: sources,
		vars:    map[string]Value{},
		rsrc:    rsrc,
		rng:     rand.New(rsrc),
		limits:  limits,
		faults:  inj,
	}
}

// fork returns an independent copy of the environment: the variable map and
// dfOrder are copied, the RNG is replayed to the same position, and the
// bound values themselves are shared. Sharing is safe because statement
// execution is functional over frames and series — an operation never
// mutates a value created by an earlier statement (column and .loc
// assignment rebind their variable to a new frame instead of writing into
// the old one) — so two environments can hold the same *DF.
func (e *Env) fork() *Env {
	vars := make(map[string]Value, len(e.vars))
	for k, v := range e.vars {
		vars[k] = v
	}
	rsrc := e.rsrc.fork()
	return &Env{
		sources: e.sources,
		vars:    vars,
		dfOrder: append([]string(nil), e.dfOrder...),
		rsrc:    rsrc,
		rng:     rand.New(rsrc),
		limits:  e.limits,
		faults:  e.faults,
	}
}

// Result is what a completed script run produced: the output dataset
// (D_OUT in the paper) plus the conventional X/y variables when present.
type Result struct {
	// Main is the primary output frame: the value of `df` when bound,
	// otherwise the most recently assigned DataFrame variable.
	Main *frame.Frame
	// X is the value of `X` or `X_train` when the script separates features.
	X *frame.Frame
	// Y is the value of `y` or `y_train` when the script separates the target.
	Y *frame.Series
	// Env exposes the final variable bindings for inspection.
	Env *Env
}

// Options configures a run.
type Options struct {
	// Seed drives df.sample for deterministic runs. Defaults to 1.
	Seed int64
	// MaxRows, when positive, samples each source frame down to at most
	// MaxRows rows before execution (the paper's optimization 5).
	MaxRows int
	// Limits is the per-run resource governor; nil disables it.
	Limits *Limits
	// Faults is the deterministic chaos-injection hook; nil (the
	// production default) makes every injection site a pointer check.
	Faults *faults.Injector
}

// SampleSources applies the MaxRows input-sampling optimization once: every
// frame larger than maxRows is down-sampled deterministically with the seed.
// The input map is returned unchanged when maxRows is not positive. Callers
// that run many scripts against the same sources (the search loop) sample
// once up front instead of paying the loop on every Run.
func SampleSources(sources map[string]*frame.Frame, maxRows int, seed int64) map[string]*frame.Frame {
	if maxRows <= 0 {
		return sources
	}
	srcs := make(map[string]*frame.Frame, len(sources))
	for name, f := range sources {
		if f.NumRows() > maxRows {
			srcs[name] = f.Sample(maxRows, seed)
		} else {
			srcs[name] = f
		}
	}
	return srcs
}

// Run executes the script against the named data sources
// (file name → frame, standing in for the files read by pd.read_csv).
func Run(s *script.Script, sources map[string]*frame.Frame, opts Options) (*Result, error) {
	return RunContext(context.Background(), s, sources, opts)
}

// RunContext is Run with statement-granularity cancellation: the context is
// checked before every statement, so a deadline or cancellation aborts the
// run promptly with an error wrapping ctx.Err(). Statement failures —
// including contained panics (ErrStatementPanicked) and budget violations
// (ErrResourceExhausted) — surface as *StmtError carrying the line and
// statement text.
func RunContext(ctx context.Context, s *script.Script, sources map[string]*frame.Frame, opts Options) (*Result, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	env := newEnv(SampleSources(sources, opts.MaxRows, opts.Seed), opts.Seed, opts.Limits, opts.Faults)
	for i, st := range s.Stmts {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("interp: canceled before line %d (%s): %w", i+1, st.Source(), err)
		}
		if err := opts.Limits.checkStep(i); err != nil {
			return nil, &StmtError{Line: i + 1, Stmt: st.Source(), Err: err}
		}
		if err := env.execGoverned(faults.SiteInterpExec, st); err != nil {
			return nil, &StmtError{Line: i + 1, Stmt: st.Source(), Err: err}
		}
	}
	return env.result(), nil
}

// CheckExecutes reports whether the script runs without error
// (the paper's execution constraint).
func CheckExecutes(s *script.Script, sources map[string]*frame.Frame, opts Options) error {
	_, err := Run(s, sources, opts)
	return err
}

// CheckExecutesContext is CheckExecutes with statement-granularity
// cancellation.
func CheckExecutesContext(ctx context.Context, s *script.Script, sources map[string]*frame.Frame, opts Options) error {
	_, err := RunContext(ctx, s, sources, opts)
	return err
}

// Get returns the final value of a variable.
func (e *Env) Get(name string) (Value, bool) {
	v, ok := e.vars[name]
	return v, ok
}

func (e *Env) result() *Result {
	r := &Result{Env: e}
	if v, ok := e.vars["df"].(*DF); ok {
		r.Main = v.F
	} else {
		for i := len(e.dfOrder) - 1; i >= 0; i-- {
			if v, ok := e.vars[e.dfOrder[i]].(*DF); ok {
				r.Main = v.F
				break
			}
		}
	}
	for _, n := range []string{"X", "X_train"} {
		if v, ok := e.vars[n].(*DF); ok {
			r.X = v.F
			break
		}
	}
	for _, n := range []string{"y", "y_train"} {
		if v, ok := e.vars[n].(*frame.Series); ok {
			r.Y = v
			break
		}
	}
	return r
}

func (e *Env) exec(st script.Stmt) error {
	switch s := st.(type) {
	case *script.ImportStmt:
		alias := s.Alias
		if alias == "" {
			alias = s.Module
		}
		e.vars[alias] = moduleVal{name: s.Module}
		return nil
	case *script.ExprStmt:
		_, err := e.eval(s.X)
		return err
	case *script.AssignStmt:
		return e.execAssign(s)
	default:
		return fmt.Errorf("unsupported statement type %T", st)
	}
}

func (e *Env) execAssign(s *script.AssignStmt) error {
	val, err := e.eval(s.Value)
	if err != nil {
		return err
	}
	if err := e.checkValue(val); err != nil {
		return err
	}
	switch tgt := s.Target.(type) {
	case *script.Ident:
		e.vars[tgt.Name] = val
		if _, ok := val.(*DF); ok {
			e.dfOrder = append(e.dfOrder, tgt.Name)
		}
		return nil
	case *script.IndexExpr:
		return e.assignIndexed(tgt, val)
	default:
		return fmt.Errorf("cannot assign to %s", s.Target.Source())
	}
}

// assignIndexed handles df["col"] = v and df.loc[labels, "col"] = v.
// Both are functional: the frame bound to the variable is never written
// into; the variable is rebound to a new frame that shares every untouched
// column. This keeps environments forkable for the prefix cache — a frame
// captured by a cached environment can never change under it.
func (e *Env) assignIndexed(tgt *script.IndexExpr, val Value) error {
	// df.loc[labels, "col"] = v
	if attr, ok := tgt.X.(*script.AttrExpr); ok && attr.Attr == "loc" {
		return e.assignLoc(attr, tgt.Index, val)
	}
	base, err := e.eval(tgt.X)
	if err != nil {
		return err
	}
	df, ok := base.(*DF)
	if !ok {
		return fmt.Errorf("cannot index-assign into %s", typeName(base))
	}
	idx, err := e.eval(tgt.Index)
	if err != nil {
		return err
	}
	col, ok := idx.(string)
	if !ok {
		return fmt.Errorf("column assignment needs a string column name, got %s", typeName(idx))
	}
	series, err := e.broadcast(val, col, df.F.NumRows())
	if err != nil {
		return err
	}
	nf, err := df.F.WithColumn(series)
	if err != nil {
		return err
	}
	if e.limits != nil {
		if err := e.limits.checkFrame(nf); err != nil {
			return err
		}
	}
	e.rebind(tgt.X, &DF{F: nf, Index: df.Index})
	return nil
}

// rebind points the variable the assignment targeted at the updated frame.
// A non-variable target (a temporary such as df.head(5)["x"] = 1) has no
// binding to update; the assignment then has no observable effect, exactly
// like pandas' chained-assignment behavior.
func (e *Env) rebind(target script.Expr, df *DF) {
	if id, ok := target.(*script.Ident); ok {
		e.vars[id.Name] = df
	}
}

func (e *Env) assignLoc(attr *script.AttrExpr, index script.Expr, val Value) error {
	base, err := e.eval(attr.X)
	if err != nil {
		return err
	}
	df, ok := base.(*DF)
	if !ok {
		return fmt.Errorf(".loc on %s", typeName(base))
	}
	sl, ok := index.(*script.SliceExpr)
	if !ok || len(sl.Parts) != 2 {
		return fmt.Errorf(".loc assignment needs [rows, column]")
	}
	rowsV, err := e.eval(sl.Parts[0])
	if err != nil {
		return err
	}
	colV, err := e.eval(sl.Parts[1])
	if err != nil {
		return err
	}
	col, ok := colV.(string)
	if !ok {
		return fmt.Errorf(".loc column must be a string, got %s", typeName(colV))
	}
	// Resolve target row positions from labels or a mask.
	var pos []int
	switch rv := rowsV.(type) {
	case indexVal:
		want := make(map[int]bool, len(rv.labels))
		for _, l := range rv.labels {
			want[l] = true
		}
		for p, l := range df.Index {
			if want[l] {
				pos = append(pos, p)
			}
		}
	case frame.Mask:
		if len(rv) != df.F.NumRows() {
			return fmt.Errorf(".loc mask length %d != rows %d", len(rv), df.F.NumRows())
		}
		for p, keep := range rv {
			if keep {
				pos = append(pos, p)
			}
		}
	default:
		return fmt.Errorf(".loc rows must be an index or mask, got %s", typeName(rowsV))
	}
	target, err := df.F.Column(col)
	if err != nil {
		// pandas creates the column, null elsewhere.
		target = frame.NewEmptySeries(col, frame.Float, df.F.NumRows())
		if _, ok := val.(string); ok {
			target = frame.NewEmptySeries(col, frame.String, df.F.NumRows())
		}
	}
	// Build the updated column without writing into the bound frame (the
	// frame may be shared with forked environments), then rebind.
	var conv *frame.Series
	switch v := val.(type) {
	case float64:
		if target.Kind() == frame.String {
			conv = target.Clone()
			for _, p := range pos {
				conv.SetString(p, trimFloat(v))
			}
			break
		}
		if target.Kind() != frame.Float {
			conv = target.AsType(frame.Float)
		} else {
			conv = target.Clone()
		}
		for _, p := range pos {
			conv.SetFloat(p, v)
		}
	case string:
		if target.Kind() != frame.String {
			conv = target.AsType(frame.String)
		} else {
			conv = target.Clone()
		}
		for _, p := range pos {
			conv.SetString(p, v)
		}
	default:
		return fmt.Errorf(".loc assignment of %s not supported", typeName(val))
	}
	nf, err := df.F.WithColumn(conv)
	if err != nil {
		return err
	}
	if e.limits != nil {
		if err := e.limits.checkFrame(nf); err != nil {
			return err
		}
	}
	e.rebind(attr.X, &DF{F: nf, Index: df.Index})
	return nil
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// broadcast turns an assigned value into a column series of length n.
func (e *Env) broadcast(val Value, name string, n int) (*frame.Series, error) {
	switch v := val.(type) {
	case *frame.Series:
		if v.Len() != n {
			return nil, fmt.Errorf("column %q length %d != rows %d", name, v.Len(), n)
		}
		return v.Rename(name), nil
	case frame.Mask:
		bs := make([]bool, len(v))
		copy(bs, v)
		return frame.NewBoolSeries(name, bs), nil
	case float64:
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = v
		}
		return frame.NewFloatSeries(name, vals), nil
	case string:
		vals := make([]string, n)
		for i := range vals {
			vals[i] = v
		}
		return frame.NewStringSeries(name, vals), nil
	case bool:
		vals := make([]bool, n)
		for i := range vals {
			vals[i] = v
		}
		return frame.NewBoolSeries(name, vals), nil
	default:
		return nil, fmt.Errorf("cannot assign %s to column %q", typeName(val), name)
	}
}

func (e *Env) eval(expr script.Expr) (Value, error) {
	switch x := expr.(type) {
	case *script.Ident:
		v, ok := e.vars[x.Name]
		if !ok {
			return nil, fmt.Errorf("name %q is not defined", x.Name)
		}
		return v, nil
	case *script.NumberLit:
		return x.Value, nil
	case *script.StringLit:
		return x.Value, nil
	case *script.BoolLit:
		return x.Value, nil
	case *script.NoneLit:
		return nil, nil
	case *script.ListExpr:
		lv := listVal{}
		for _, el := range x.Elems {
			v, err := e.eval(el)
			if err != nil {
				return nil, err
			}
			lv.elems = append(lv.elems, v)
		}
		return lv, nil
	case *script.DictExpr:
		d := dictVal{m: map[string]string{}}
		for i := range x.Keys {
			k, err := e.eval(x.Keys[i])
			if err != nil {
				return nil, err
			}
			v, err := e.eval(x.Values[i])
			if err != nil {
				return nil, err
			}
			d.m[scalarString(k)] = scalarString(v)
		}
		return d, nil
	case *script.AttrExpr:
		return e.evalAttr(x)
	case *script.CallExpr:
		return e.evalCall(x)
	case *script.IndexExpr:
		return e.evalIndex(x)
	case *script.BinaryExpr:
		return e.evalBinary(x)
	case *script.UnaryExpr:
		return e.evalUnary(x)
	case *script.SliceExpr:
		return nil, fmt.Errorf("comma index only valid inside .loc")
	default:
		return nil, fmt.Errorf("unsupported expression %s", expr.Source())
	}
}

func scalarString(v Value) string {
	switch s := v.(type) {
	case string:
		return s
	case float64:
		return trimFloat(s)
	case bool:
		if s {
			return "True"
		}
		return "False"
	default:
		return fmt.Sprintf("%v", v)
	}
}

func (e *Env) evalAttr(x *script.AttrExpr) (Value, error) {
	recv, err := e.eval(x.X)
	if err != nil {
		return nil, err
	}
	switch r := recv.(type) {
	case *DF:
		switch x.Attr {
		case "index":
			return indexVal{labels: append([]int(nil), r.Index...)}, nil
		case "columns":
			lv := listVal{}
			for _, n := range r.F.ColumnNames() {
				lv.elems = append(lv.elems, n)
			}
			return lv, nil
		case "shape":
			return listVal{elems: []Value{float64(r.F.NumRows()), float64(r.F.NumCols())}}, nil
		case "loc":
			// Bare read access like df.loc[mask] is handled at index time.
			return boundMethod{recv: r, name: "loc"}, nil
		}
		return boundMethod{recv: r, name: x.Attr}, nil
	case *frame.Series:
		switch x.Attr {
		case "str":
			return strVal{s: r}, nil
		case "dt":
			return dtVal{s: r}, nil
		case "values":
			return r, nil
		}
		return boundMethod{recv: r, name: x.Attr}, nil
	case dtVal:
		// pandas exposes .dt fields as attributes (df["d"].dt.month).
		return e.callDt(r, x.Attr, nil)
	case moduleVal, strVal, groupVal, groupColVal:
		return boundMethod{recv: recv, name: x.Attr}, nil
	default:
		return nil, fmt.Errorf("%s has no attribute %q", typeName(recv), x.Attr)
	}
}

func (e *Env) evalIndex(x *script.IndexExpr) (Value, error) {
	recv, err := e.eval(x.X)
	if err != nil {
		return nil, err
	}
	// df.loc[mask] read access.
	if bm, ok := recv.(boundMethod); ok && bm.name == "loc" {
		df := bm.recv.(*DF)
		idx, err := e.eval(x.Index)
		if err != nil {
			return nil, err
		}
		if m, ok := idx.(frame.Mask); ok {
			return df.filter(m)
		}
		return nil, fmt.Errorf(".loc read supports only masks, got %s", typeName(idx))
	}
	idxV, err := e.eval(x.Index)
	if err != nil {
		return nil, err
	}
	switch r := recv.(type) {
	case *DF:
		switch idx := idxV.(type) {
		case string:
			s, err := r.F.Column(idx)
			if err != nil {
				return nil, err
			}
			return s, nil
		case listVal:
			names := make([]string, len(idx.elems))
			for i, el := range idx.elems {
				n, ok := el.(string)
				if !ok {
					return nil, fmt.Errorf("column list must contain strings")
				}
				names[i] = n
			}
			f, err := r.F.Select(names...)
			if err != nil {
				return nil, err
			}
			return &DF{F: f, Index: append([]int(nil), r.Index...)}, nil
		case frame.Mask:
			return r.filter(idx)
		default:
			return nil, fmt.Errorf("cannot index DataFrame with %s", typeName(idxV))
		}
	case *frame.Series:
		if m, ok := idxV.(frame.Mask); ok {
			if len(m) != r.Len() {
				return nil, fmt.Errorf("mask length %d != series length %d", len(m), r.Len())
			}
			pos := make([]int, 0, m.Count())
			for i, keep := range m {
				if keep {
					pos = append(pos, i)
				}
			}
			return r.Gather(pos), nil
		}
		return nil, fmt.Errorf("cannot index Series with %s", typeName(idxV))
	case groupVal:
		col, ok := idxV.(string)
		if !ok {
			return nil, fmt.Errorf("groupby column selector must be a string")
		}
		return groupColVal{df: r.df, key: r.key, col: col}, nil
	default:
		return nil, fmt.Errorf("cannot index %s", typeName(recv))
	}
}

func (e *Env) evalUnary(x *script.UnaryExpr) (Value, error) {
	v, err := e.eval(x.X)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "~":
		m, ok := v.(frame.Mask)
		if !ok {
			return nil, fmt.Errorf("~ needs a mask, got %s", typeName(v))
		}
		if ownedMask(x.X) {
			return m.NotInPlace(), nil
		}
		return m.Not(), nil
	case "-":
		switch n := v.(type) {
		case float64:
			return -n, nil
		case *frame.Series:
			return n.ArithScalar(frame.Mul, -1), nil
		}
		return nil, fmt.Errorf("- needs a number or Series, got %s", typeName(v))
	}
	return nil, fmt.Errorf("unsupported unary operator %q", x.Op)
}

// ownedMask reports whether a mask produced by evaluating expr is owned by
// the evaluator and may be combined in place. Only an identifier can yield
// a mask that something else still holds (the variable binding); every
// other mask-producing expression — a comparison, a ~, an isnull() call —
// allocates a fresh mask with no other reference. This keeps chained
// filters like df[(df.a > 1) & (df.b < 2) & ~df.c.isnull()] from paying
// one allocation per combinator without ever mutating a bound variable.
func ownedMask(expr script.Expr) bool {
	_, isIdent := expr.(*script.Ident)
	return !isIdent
}

var cmpFromString = map[string]frame.CmpOp{
	"<": frame.Lt, "<=": frame.Le, ">": frame.Gt, ">=": frame.Ge, "==": frame.Eq, "!=": frame.Ne,
}

var arithFromString = map[string]frame.ArithOp{
	"+": frame.Add, "-": frame.Sub, "*": frame.Mul, "/": frame.Div,
}

func (e *Env) evalBinary(x *script.BinaryExpr) (Value, error) {
	l, err := e.eval(x.X)
	if err != nil {
		return nil, err
	}
	r, err := e.eval(x.Y)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "&", "|":
		lm, lok := l.(frame.Mask)
		rm, rok := r.(frame.Mask)
		if !lok || !rok {
			return nil, fmt.Errorf("%s needs masks, got %s and %s", x.Op, typeName(l), typeName(r))
		}
		if len(lm) != len(rm) {
			return nil, fmt.Errorf("mask length mismatch %d vs %d", len(lm), len(rm))
		}
		if ownedMask(x.X) {
			if x.Op == "&" {
				return lm.AndInPlace(rm), nil
			}
			return lm.OrInPlace(rm), nil
		}
		if x.Op == "&" {
			return lm.And(rm), nil
		}
		return lm.Or(rm), nil
	}
	if op, ok := cmpFromString[x.Op]; ok {
		return e.compare(op, l, r)
	}
	if op, ok := arithFromString[x.Op]; ok {
		return e.arith(op, l, r)
	}
	return nil, fmt.Errorf("unsupported operator %q", x.Op)
}

func (e *Env) compare(op frame.CmpOp, l, r Value) (Value, error) {
	switch lv := l.(type) {
	case *frame.Series:
		switch rv := r.(type) {
		case float64, string, bool:
			return lv.Compare(op, rv)
		case *frame.Series:
			if lv.Len() != rv.Len() {
				return nil, fmt.Errorf("series length mismatch %d vs %d", lv.Len(), rv.Len())
			}
			m := make(frame.Mask, lv.Len())
			for i := 0; i < lv.Len(); i++ {
				if !lv.IsValid(i) || !rv.IsValid(i) {
					continue
				}
				if lv.IsNumeric() && rv.IsNumeric() {
					m[i] = cmpFloats(op, lv.Float(i), rv.Float(i))
				} else {
					m[i] = cmpStrings(op, lv.StringAt(i), rv.StringAt(i))
				}
			}
			return m, nil
		}
	case float64:
		if rv, ok := r.(*frame.Series); ok {
			return rv.Compare(flipCmp(op), lv)
		}
		if rv, ok := r.(float64); ok {
			return cmpFloats(op, lv, rv), nil
		}
	case string:
		if rv, ok := r.(string); ok {
			return cmpStrings(op, lv, rv), nil
		}
	}
	return nil, fmt.Errorf("cannot compare %s and %s", typeName(l), typeName(r))
}

func flipCmp(op frame.CmpOp) frame.CmpOp {
	switch op {
	case frame.Lt:
		return frame.Gt
	case frame.Le:
		return frame.Ge
	case frame.Gt:
		return frame.Lt
	case frame.Ge:
		return frame.Le
	}
	return op
}

func cmpFloats(op frame.CmpOp, a, b float64) bool {
	switch op {
	case frame.Lt:
		return a < b
	case frame.Le:
		return a <= b
	case frame.Gt:
		return a > b
	case frame.Ge:
		return a >= b
	case frame.Eq:
		return a == b
	case frame.Ne:
		return a != b
	}
	return false
}

func cmpStrings(op frame.CmpOp, a, b string) bool {
	switch op {
	case frame.Lt:
		return a < b
	case frame.Le:
		return a <= b
	case frame.Gt:
		return a > b
	case frame.Ge:
		return a >= b
	case frame.Eq:
		return a == b
	case frame.Ne:
		return a != b
	}
	return false
}

func (e *Env) arith(op frame.ArithOp, l, r Value) (Value, error) {
	switch lv := l.(type) {
	case *frame.Series:
		switch rv := r.(type) {
		case *frame.Series:
			return lv.Arith(op, rv)
		case float64:
			return lv.ArithScalar(op, rv), nil
		}
	case float64:
		switch rv := r.(type) {
		case float64:
			switch op {
			case frame.Add:
				return lv + rv, nil
			case frame.Sub:
				return lv - rv, nil
			case frame.Mul:
				return lv * rv, nil
			case frame.Div:
				if rv == 0 {
					return nil, fmt.Errorf("division by zero")
				}
				return lv / rv, nil
			}
		case *frame.Series:
			switch op {
			case frame.Add:
				return rv.ArithScalar(frame.Add, lv), nil
			case frame.Mul:
				return rv.ArithScalar(frame.Mul, lv), nil
			case frame.Sub:
				return rv.ArithScalar(frame.Mul, -1).ArithScalar(frame.Add, lv), nil
			case frame.Div:
				out := make([]float64, rv.Len())
				for i := range out {
					d := rv.Float(i)
					if d == 0 || math.IsNaN(d) {
						out[i] = math.NaN()
						continue
					}
					out[i] = lv / d
				}
				return frame.NewFloatSeries(rv.Name(), out), nil
			}
		}
	case string:
		if rv, ok := r.(string); ok && op == frame.Add {
			return lv + rv, nil
		}
	}
	return nil, fmt.Errorf("cannot apply %v to %s and %s", op, typeName(l), typeName(r))
}

// sortedKeys is a small helper for deterministic iteration.
func sortedKeys(m map[string]string) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
