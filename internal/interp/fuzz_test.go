package interp

import (
	"errors"
	"testing"

	"lucidscript/internal/frame"
	"lucidscript/internal/gen"
	"lucidscript/internal/script"
)

// FuzzInterpRun throws arbitrary scripts at arbitrary CSV inputs and asserts
// the interpreter's containment guarantees: no statement panic ever escapes
// (the per-statement recover turns real panics into ErrStatementPanicked,
// which — with no fault injector installed — can only mean an interpreter
// bug, so it fails the fuzz run), and the prefix cache stays byte-identical
// to plain execution on whatever the fuzzer invents.
//
// The seed corpus mixes internal/gen's always-valid generated scripts with
// handwritten edge cases that used to panic (negative head/sample sizes)
// plus empty-frame and divide-by-zero shapes.
func FuzzInterpRun(f *testing.F) {
	g := gen.New(11)
	csv := g.Frame(12).CSVString()
	for i := 0; i < 6; i++ {
		f.Add(g.ScriptSource(), csv, int64(i+1))
	}
	edge := []string{
		"import pandas as pd\ndf = pd.read_csv(\"data.csv\")\ndf = df.head(-1)\n",
		"import pandas as pd\ndf = pd.read_csv(\"data.csv\")\ndf = df.sample(-5)\n",
		"import pandas as pd\ndf = pd.read_csv(\"data.csv\")\nx = 1 / 0\n",
		"import pandas as pd\ndf = pd.read_csv(\"data.csv\")\ndf = df.head(0)\nm = df[\"Age\"].mean()\n",
		"import pandas as pd\ndf = pd.read_csv(\"data.csv\")\ndf = pd.get_dummies(df)\n",
	}
	for _, src := range edge {
		f.Add(src, csv, int64(7))
		f.Add(src, "A\n", int64(7))
	}
	f.Fuzz(func(t *testing.T, src, csvText string, seed int64) {
		s, err := script.Parse(src)
		if err != nil {
			t.Skip()
		}
		frm, err := frame.ReadCSVString(csvText)
		if err != nil {
			t.Skip()
		}
		sources := map[string]*frame.Frame{gen.SourceFile: frm, "train.csv": frm}
		// Tight budgets keep pathological fuzz inputs cheap; a budget trip is
		// a normal governed outcome, not a finding.
		opts := Options{Seed: seed, Limits: &Limits{
			MaxCells: 200_000, MaxRows: 50_000, MaxCols: 500,
			MaxStringBytes: 1 << 20, MaxSteps: 200,
		}}
		plain, plainErr := Run(s, sources, opts)
		if errors.Is(plainErr, ErrStatementPanicked) {
			t.Fatalf("interpreter panic contained but real: %v", plainErr)
		}
		if plainErr != nil {
			var se *StmtError
			if !errors.As(plainErr, &se) {
				t.Fatalf("run error %v is not a *StmtError", plainErr)
			}
		}
		// Differential check: the prefix cache must agree exactly.
		cache := NewSessionCache(sources, opts, 0)
		cached, cachedErr := cache.Run(s)
		assertSameResult(t, "fuzz cache-vs-plain", plain, plainErr, cached, cachedErr)
		if err := cache.CheckInvariants(); err != nil {
			t.Fatalf("trie invariants: %v", err)
		}
	})
}
