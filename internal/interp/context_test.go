package interp

import (
	"context"
	"errors"
	"testing"

	"lucidscript/internal/script"
)

const ctxTestScript = `import pandas as pd
df = pd.read_csv("train.csv")
df["Age"] = df["Age"].fillna(df["Age"].mean())
df = df[df["Fare"] < 60]
y = df["Survived"]
`

func TestRunContextCanceled(t *testing.T) {
	sources := titanicSources(t)
	s, err := script.Parse(ctxTestScript)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, s, sources, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext after cancel: %v, want context.Canceled", err)
	}
	if err := CheckExecutesContext(ctx, s, sources, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("CheckExecutesContext after cancel: %v", err)
	}
	// Background context still runs fine.
	if _, err := RunContext(context.Background(), s, sources, Options{}); err != nil {
		t.Fatalf("RunContext background: %v", err)
	}
}

// TestSessionCacheCanceledLeavesTrieConsistent cancels a cached run and
// then re-runs the same script: the abort must not have cached the
// cancellation, and the completed run must match a plain interpreter run.
func TestSessionCacheCanceledLeavesTrieConsistent(t *testing.T) {
	sources := titanicSources(t)
	s, err := script.Parse(ctxTestScript)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Seed: 7}
	cache := NewSessionCache(sources, opts, 0)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cache.RunContext(ctx, s); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled RunContext: %v", err)
	}
	if err := cache.CheckContext(ctx, s); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled CheckContext: %v", err)
	}

	// The canceled runs must not have inserted failure nodes: a subsequent
	// uncanceled run completes and matches a plain Run exactly.
	plain, plainErr := Run(s, sources, opts)
	cached, cachedErr := cache.Run(s)
	assertSameResult(t, "after cancel", plain, plainErr, cached, cachedErr)

	// And a second pass is pure hits — the trie holds only real statements.
	before := cache.Stats()
	if _, err := cache.Run(s); err != nil {
		t.Fatal(err)
	}
	after := cache.Stats()
	if after.Misses != before.Misses {
		t.Fatalf("re-run caused %d new misses; cancellation polluted the trie", after.Misses-before.Misses)
	}
}

// TestSessionCacheCancelMidRun cancels between statements via a context
// that trips after the first Err() poll, exercising the mid-script abort
// path rather than the pre-canceled fast path.
func TestSessionCacheCancelMidRun(t *testing.T) {
	sources := titanicSources(t)
	s, err := script.Parse(ctxTestScript)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewSessionCache(sources, Options{Seed: 7}, 0)
	ctx := &cancelAfter{Context: context.Background(), polls: 3}
	_, runErr := cache.RunContext(ctx, s)
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("mid-run cancel: %v", runErr)
	}
	// The statements executed before the trip stay cached and correct.
	plain, plainErr := Run(s, sources, Options{Seed: 7})
	cached, cachedErr := cache.Run(s)
	assertSameResult(t, "after mid-run cancel", plain, plainErr, cached, cachedErr)
}

// cancelAfter reports context.Canceled from Err after a fixed number of
// polls, deterministically simulating a cancellation racing the run loop.
type cancelAfter struct {
	context.Context
	polls int
}

func (c *cancelAfter) Err() error {
	if c.polls <= 0 {
		return context.Canceled
	}
	c.polls--
	return nil
}
