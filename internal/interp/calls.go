package interp

import (
	"fmt"
	"math"

	"lucidscript/internal/frame"
	"lucidscript/internal/script"
)

// call carries the evaluated arguments of one invocation.
type call struct {
	args   []Value
	kwargs map[string]Value
}

func (c *call) arg(i int) (Value, bool) {
	if i < len(c.args) {
		return c.args[i], true
	}
	return nil, false
}

func (c *call) kwarg(name string) (Value, bool) {
	v, ok := c.kwargs[name]
	return v, ok
}

func (c *call) floatArg(i int) (float64, error) {
	v, ok := c.arg(i)
	if !ok {
		return 0, fmt.Errorf("missing argument %d", i)
	}
	f, ok := v.(float64)
	if !ok {
		return 0, fmt.Errorf("argument %d must be a number, got %s", i, typeName(v))
	}
	return f, nil
}

func (c *call) stringArg(i int) (string, error) {
	v, ok := c.arg(i)
	if !ok {
		return "", fmt.Errorf("missing argument %d", i)
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("argument %d must be a string, got %s", i, typeName(v))
	}
	return s, nil
}

// evalCall dispatches the call, then runs the materialized result through
// the resource governor: method calls are where frames blow up (get_dummies
// column explosions, merges, concats), so every call result is budgeted
// even in expression position.
func (e *Env) evalCall(x *script.CallExpr) (Value, error) {
	v, err := e.evalCallDispatch(x)
	if err != nil {
		return nil, err
	}
	if e.limits != nil {
		if err := e.checkValue(v); err != nil {
			return nil, err
		}
	}
	return v, nil
}

func (e *Env) evalCallDispatch(x *script.CallExpr) (Value, error) {
	fnV, err := e.eval(x.Fn)
	if err != nil {
		return nil, err
	}
	bm, ok := fnV.(boundMethod)
	if !ok {
		return nil, fmt.Errorf("%s is not callable", typeName(fnV))
	}
	c := &call{kwargs: map[string]Value{}}
	for _, a := range x.Args {
		v, err := e.eval(a)
		if err != nil {
			return nil, err
		}
		c.args = append(c.args, v)
	}
	for _, k := range x.Kwargs {
		v, err := e.eval(k.Value)
		if err != nil {
			return nil, err
		}
		c.kwargs[k.Name] = v
	}
	switch recv := bm.recv.(type) {
	case moduleVal:
		return e.callModule(recv, bm.name, c)
	case *DF:
		return e.callDF(recv, bm.name, c)
	case *frame.Series:
		return e.callSeries(recv, bm.name, c)
	case strVal:
		return e.callStr(recv, bm.name, c)
	case groupColVal:
		return e.callGroupCol(recv, bm.name, c)
	default:
		return nil, fmt.Errorf("%s has no method %q", typeName(bm.recv), bm.name)
	}
}

func (e *Env) callModule(m moduleVal, name string, c *call) (Value, error) {
	switch m.name {
	case "pandas":
		return e.callPandas(name, c)
	case "numpy":
		return e.callNumpy(name, c)
	default:
		return nil, fmt.Errorf("module %q has no callable %q", m.name, name)
	}
}

func (e *Env) callPandas(name string, c *call) (Value, error) {
	switch name {
	case "read_csv":
		path, err := c.stringArg(0)
		if err != nil {
			return nil, err
		}
		f, ok := e.sources[path]
		if !ok {
			// Fall back to the base name so "/data/titanic/train.csv" and
			// "train.csv" resolve to the same source.
			base := path
			for i := len(path) - 1; i >= 0; i-- {
				if path[i] == '/' {
					base = path[i+1:]
					break
				}
			}
			f, ok = e.sources[base]
			if !ok {
				return nil, fmt.Errorf("no such data file %q", path)
			}
		}
		return NewDF(f.Clone()), nil
	case "get_dummies":
		v, ok := c.arg(0)
		if !ok {
			return nil, fmt.Errorf("get_dummies needs a DataFrame")
		}
		df, ok := v.(*DF)
		if !ok {
			return nil, fmt.Errorf("get_dummies needs a DataFrame, got %s", typeName(v))
		}
		// Index slices follow the same functional discipline as frames
		// (never written in place), so row-preserving ops share them.
		return &DF{F: df.F.GetDummies(), Index: df.Index}, nil
	case "to_datetime":
		v, ok := c.arg(0)
		if !ok {
			return nil, fmt.Errorf("to_datetime needs a Series")
		}
		sv, ok := v.(*frame.Series)
		if !ok {
			return nil, fmt.Errorf("to_datetime needs a Series, got %s", typeName(v))
		}
		return toDatetime(sv), nil
	case "to_numeric":
		v, ok := c.arg(0)
		if !ok {
			return nil, fmt.Errorf("to_numeric needs a Series")
		}
		s, ok := v.(*frame.Series)
		if !ok {
			return nil, fmt.Errorf("to_numeric needs a Series, got %s", typeName(v))
		}
		return s.AsType(frame.Float), nil
	case "merge":
		lv, ok := c.arg(0)
		if !ok {
			return nil, fmt.Errorf("pd.merge needs two DataFrames")
		}
		rv, ok := c.arg(1)
		if !ok {
			return nil, fmt.Errorf("pd.merge needs two DataFrames")
		}
		ldf, lok := lv.(*DF)
		rdf, rok := rv.(*DF)
		if !lok || !rok {
			return nil, fmt.Errorf("pd.merge needs DataFrames, got %s and %s", typeName(lv), typeName(rv))
		}
		return e.mergeFrames(ldf, rdf, c)
	case "concat":
		v, ok := c.arg(0)
		if !ok {
			return nil, fmt.Errorf("pd.concat needs a list of DataFrames")
		}
		lst, ok := v.(listVal)
		if !ok {
			return nil, fmt.Errorf("pd.concat needs a list, got %s", typeName(v))
		}
		var frames []*frame.Frame
		for _, el := range lst.elems {
			df, ok := el.(*DF)
			if !ok {
				return nil, fmt.Errorf("pd.concat list must contain DataFrames")
			}
			frames = append(frames, df.F)
		}
		out, err := frame.Concat(frames...)
		if err != nil {
			return nil, err
		}
		return NewDF(out), nil
	case "cut", "qcut":
		v, ok := c.arg(0)
		if !ok {
			return nil, fmt.Errorf("%s needs a Series", name)
		}
		s, ok := v.(*frame.Series)
		if !ok {
			return nil, fmt.Errorf("%s needs a Series, got %s", name, typeName(v))
		}
		bins, err := c.floatArg(1)
		if err != nil {
			return nil, err
		}
		if bins < 1 {
			return nil, fmt.Errorf("%s needs at least one bin", name)
		}
		if name == "cut" {
			return binEqualWidth(s, int(bins)), nil
		}
		return binEqualFreq(s, int(bins)), nil
	default:
		return nil, fmt.Errorf("pandas has no callable %q", name)
	}
}

func binEqualWidth(s *frame.Series, bins int) *frame.Series {
	lo, hi := s.Min(), s.Max()
	out := frame.NewEmptySeries(s.Name(), frame.String, s.Len())
	if math.IsNaN(lo) || lo == hi {
		for i := 0; i < s.Len(); i++ {
			if s.IsValid(i) {
				out.SetString(i, "bin0")
			}
		}
		return out
	}
	width := (hi - lo) / float64(bins)
	for i := 0; i < s.Len(); i++ {
		if !s.IsValid(i) {
			continue
		}
		v := s.Float(i)
		if math.IsNaN(v) {
			continue
		}
		b := int((v - lo) / width)
		if b >= bins {
			b = bins - 1
		}
		out.SetString(i, fmt.Sprintf("bin%d", b))
	}
	return out
}

func binEqualFreq(s *frame.Series, bins int) *frame.Series {
	// Rank-based quantile binning.
	var ps []rankPair
	for i := 0; i < s.Len(); i++ {
		if s.IsValid(i) {
			v := s.Float(i)
			if !math.IsNaN(v) {
				ps = append(ps, rankPair{i, v})
			}
		}
	}
	out := frame.NewEmptySeries(s.Name(), frame.String, s.Len())
	if len(ps) == 0 {
		return out
	}
	sortPairs(ps)
	per := (len(ps) + bins - 1) / bins
	for rank, p := range ps {
		b := rank / per
		if b >= bins {
			b = bins - 1
		}
		out.SetString(p.pos, fmt.Sprintf("q%d", b))
	}
	return out
}

type rankPair struct {
	pos int
	v   float64
}

func sortPairs(ps []rankPair) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].v < ps[j-1].v; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func (e *Env) callNumpy(name string, c *call) (Value, error) {
	switch name {
	case "log1p", "log", "sqrt", "abs", "exp":
		v, ok := c.arg(0)
		if !ok {
			return nil, fmt.Errorf("np.%s needs an argument", name)
		}
		switch a := v.(type) {
		case *frame.Series:
			return applyElementwise(a, name)
		case float64:
			return applyScalar(a, name)
		}
		return nil, fmt.Errorf("np.%s needs a Series or number, got %s", name, typeName(v))
	case "where":
		mv, ok := c.arg(0)
		if !ok {
			return nil, fmt.Errorf("np.where needs (mask, a, b)")
		}
		m, ok := mv.(frame.Mask)
		if !ok {
			return nil, fmt.Errorf("np.where condition must be a mask, got %s", typeName(mv))
		}
		av, aok := c.arg(1)
		bv, bok := c.arg(2)
		if !aok || !bok {
			return nil, fmt.Errorf("np.where needs (mask, a, b)")
		}
		return whereSelect(m, av, bv)
	default:
		return nil, fmt.Errorf("numpy has no callable %q", name)
	}
}

func applyScalar(v float64, fn string) (Value, error) {
	switch fn {
	case "log1p":
		return math.Log1p(v), nil
	case "log":
		return math.Log(v), nil
	case "sqrt":
		return math.Sqrt(v), nil
	case "abs":
		return math.Abs(v), nil
	case "exp":
		return math.Exp(v), nil
	}
	return nil, fmt.Errorf("unknown function %q", fn)
}

func applyElementwise(s *frame.Series, fn string) (Value, error) {
	out := make([]float64, s.Len())
	for i := range out {
		v := s.Float(i)
		if math.IsNaN(v) {
			out[i] = math.NaN()
			continue
		}
		r, err := applyScalar(v, fn)
		if err != nil {
			return nil, err
		}
		out[i] = r.(float64)
	}
	return frame.NewFloatSeries(s.Name(), out), nil
}

func whereSelect(m frame.Mask, a, b Value) (Value, error) {
	switch av := a.(type) {
	case float64:
		switch bv := b.(type) {
		case float64:
			out := make([]float64, len(m))
			for i, keep := range m {
				if keep {
					out[i] = av
				} else {
					out[i] = bv
				}
			}
			return frame.NewFloatSeries("where", out), nil
		case *frame.Series:
			if bv.Len() != len(m) {
				return nil, fmt.Errorf("np.where length mismatch")
			}
			out := bv.AsType(frame.Float)
			for i, keep := range m {
				if keep {
					out.SetFloat(i, av)
				}
			}
			return out, nil
		}
		return nil, fmt.Errorf("np.where branches must share a type")
	case string:
		bs, ok := b.(string)
		if !ok {
			return nil, fmt.Errorf("np.where branches must share a type")
		}
		out := make([]string, len(m))
		for i, keep := range m {
			if keep {
				out[i] = av
			} else {
				out[i] = bs
			}
		}
		return frame.NewStringSeries("where", out), nil
	case *frame.Series:
		out := av.Clone()
		switch bv := b.(type) {
		case *frame.Series:
			if bv.Len() != len(m) || av.Len() != len(m) {
				return nil, fmt.Errorf("np.where length mismatch")
			}
			for i, keep := range m {
				if !keep {
					if bv.IsValid(i) {
						if out.Kind() == frame.Float {
							out.SetFloat(i, bv.Float(i))
						} else if out.Kind() == frame.String {
							out.SetString(i, bv.StringAt(i))
						}
					} else {
						out.SetNull(i)
					}
				}
			}
			return out, nil
		case float64:
			conv := out.AsType(frame.Float)
			for i, keep := range m {
				if !keep {
					conv.SetFloat(i, bv)
				}
			}
			return conv, nil
		}
	}
	return nil, fmt.Errorf("np.where arguments not supported")
}

func (e *Env) callDF(df *DF, name string, c *call) (Value, error) {
	switch name {
	case "fillna":
		return e.dfFillna(df, c)
	case "dropna":
		m := make(frame.Mask, df.F.NumRows())
		for i := range m {
			m[i] = true
			for j := 0; j < df.F.NumCols(); j++ {
				if !df.F.ColumnAt(j).IsValid(i) {
					m[i] = false
					break
				}
			}
		}
		return df.filter(m)
	case "drop":
		return e.dfDrop(df, c)
	case "sample":
		rows := df.F.NumRows()
		n := 1.0
		if v, ok := c.arg(0); ok {
			f, ok := v.(float64)
			if !ok {
				return nil, fmt.Errorf("sample needs a number, got %s", typeName(v))
			}
			n = f
		} else if v, ok := c.kwarg("n"); ok {
			if f, ok := v.(float64); ok {
				n = f
			}
		} else if v, ok := c.kwarg("frac"); ok {
			f, ok := v.(float64)
			if !ok || f < 0 || f > 1 {
				return nil, fmt.Errorf("sample frac must be in [0,1]")
			}
			n = f * float64(rows)
		}
		k := int(n)
		if k > rows {
			k = rows
		}
		if k < 0 {
			// pandas raises on negative n; clamping to the empty sample keeps
			// generated candidates executable instead of panicking on perm[:k].
			k = 0
		}
		perm := e.rng.Perm(rows)
		pos := append([]int(nil), perm[:k]...)
		sortInts(pos)
		return df.take(pos)
	case "head":
		n := 5.0
		if v, ok := c.arg(0); ok {
			if f, ok := v.(float64); ok {
				n = f
			}
		}
		k := int(n)
		if k > df.F.NumRows() {
			k = df.F.NumRows()
		}
		if k < 0 {
			// head(-n) in pandas drops the last n rows; the subset semantics
			// here clamp to empty rather than panic on a negative make().
			k = 0
		}
		pos := make([]int, k)
		for i := range pos {
			pos[i] = i
		}
		return df.take(pos)
	case "sort_values":
		col, err := c.stringArg(0)
		if err != nil {
			if v, ok := c.kwarg("by"); ok {
				if s, ok := v.(string); ok {
					col = s
					err = nil
				}
			}
			if err != nil {
				return nil, err
			}
		}
		asc := true
		if v, ok := c.kwarg("ascending"); ok {
			if b, ok := v.(bool); ok {
				asc = b
			}
		}
		colS, err := df.F.Column(col)
		if err != nil {
			return nil, err
		}
		pos := sortPositions(colS, asc)
		return df.take(pos)
	case "groupby":
		key, err := c.stringArg(0)
		if err != nil {
			return nil, err
		}
		if !df.F.HasColumn(key) {
			return nil, fmt.Errorf("groupby: no column %q", key)
		}
		return groupVal{df: df, key: key}, nil
	case "copy":
		return df.Clone(), nil
	case "describe":
		return NewDF(df.F.Describe()), nil
	case "merge":
		v, ok := c.arg(0)
		if !ok {
			return nil, fmt.Errorf("merge needs a DataFrame")
		}
		other, ok := v.(*DF)
		if !ok {
			return nil, fmt.Errorf("merge needs a DataFrame, got %s", typeName(v))
		}
		return e.mergeFrames(df, other, c)
	case "reset_index":
		return NewDF(df.F.Clone()), nil
	case "rename":
		v, ok := c.kwarg("columns")
		if !ok {
			return nil, fmt.Errorf("rename needs columns={...}")
		}
		d, ok := v.(dictVal)
		if !ok {
			return nil, fmt.Errorf("rename columns must be a dict")
		}
		out := df.F
		for _, old := range sortedKeys(d.m) {
			renamed, err := out.RenameColumn(old, d.m[old])
			if err != nil {
				return nil, err
			}
			out = renamed
		}
		return &DF{F: out, Index: df.Index}, nil
	case "mean":
		return statVal{stat: frame.FillMean}, nil
	case "median":
		return statVal{stat: frame.FillMedian}, nil
	case "mode":
		return statVal{stat: frame.FillMode}, nil
	case "duplicated":
		seen := map[string]bool{}
		m := make(frame.Mask, df.F.NumRows())
		for i, key := range df.F.RowStrings() {
			if seen[key] {
				m[i] = true
			}
			seen[key] = true
		}
		return m, nil
	case "drop_duplicates":
		seen := map[string]bool{}
		var pos []int
		for i, key := range df.F.RowStrings() {
			if !seen[key] {
				pos = append(pos, i)
			}
			seen[key] = true
		}
		return df.take(pos)
	default:
		return nil, fmt.Errorf("DataFrame has no method %q", name)
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func sortPositions(s *frame.Series, asc bool) []int {
	pos := make([]int, s.Len())
	for i := range pos {
		pos[i] = i
	}
	numeric := s.IsNumeric() || s.Kind() == frame.Bool
	less := func(a, b int) bool {
		av, bv := s.IsValid(a), s.IsValid(b)
		if av != bv {
			return av
		}
		if !av {
			return false
		}
		var l bool
		if numeric {
			l = s.Float(a) < s.Float(b)
		} else {
			l = s.StringAt(a) < s.StringAt(b)
		}
		if asc {
			return l
		}
		var g bool
		if numeric {
			g = s.Float(a) > s.Float(b)
		} else {
			g = s.StringAt(a) > s.StringAt(b)
		}
		return g
	}
	// Stable insertion sort (corpus frames are small at check time).
	for i := 1; i < len(pos); i++ {
		for j := i; j > 0 && less(pos[j], pos[j-1]); j-- {
			pos[j], pos[j-1] = pos[j-1], pos[j]
		}
	}
	return pos
}

func (e *Env) dfFillna(df *DF, c *call) (Value, error) {
	v, ok := c.arg(0)
	if !ok {
		return nil, fmt.Errorf("fillna needs an argument")
	}
	out := df.F
	switch a := v.(type) {
	case statVal:
		out = out.FillNA(a.stat)
	case float64:
		out = out.Clone()
		for i := 0; i < out.NumCols(); i++ {
			col := out.ColumnAt(i)
			if col.IsNumeric() || col.Kind() == frame.Bool {
				_ = out.SetColumn(col.FillNAFloat(a))
			}
		}
	case string:
		out = out.Clone()
		for i := 0; i < out.NumCols(); i++ {
			col := out.ColumnAt(i)
			if col.Kind() == frame.String {
				_ = out.SetColumn(col.FillNAString(a))
			}
		}
	default:
		return nil, fmt.Errorf("fillna argument must be a statistic or scalar, got %s", typeName(v))
	}
	return &DF{F: out, Index: df.Index}, nil
}

func (e *Env) dfDrop(df *DF, c *call) (Value, error) {
	v, ok := c.arg(0)
	if !ok {
		if kv, kok := c.kwarg("columns"); kok {
			v = kv
		} else {
			return nil, fmt.Errorf("drop needs columns")
		}
	} else {
		ax, axOK := c.kwarg("axis")
		if !axOK {
			return nil, fmt.Errorf("drop requires axis=1 for column drops")
		}
		if f, ok := ax.(float64); !ok || f != 1 {
			return nil, fmt.Errorf("only axis=1 drops are supported")
		}
	}
	var names []string
	switch a := v.(type) {
	case string:
		names = []string{a}
	case listVal:
		for _, el := range a.elems {
			s, ok := el.(string)
			if !ok {
				return nil, fmt.Errorf("drop list must contain strings")
			}
			names = append(names, s)
		}
	default:
		return nil, fmt.Errorf("drop needs a column name or list, got %s", typeName(v))
	}
	out, err := df.F.Drop(names...)
	if err != nil {
		return nil, err
	}
	return &DF{F: out, Index: df.Index}, nil
}

// mergeFrames implements df.merge(other, on=..., how=...) and
// pd.merge(a, b, on=..., how=...). The `on` key is required; `how`
// defaults to inner.
func (e *Env) mergeFrames(left, right *DF, c *call) (Value, error) {
	onV, ok := c.kwarg("on")
	if !ok {
		// pd.merge(a, b, "key") positional form: the key is the argument
		// after the two frames (or after the one frame for the method form).
		for _, i := range []int{2, 1} {
			if v, has := c.arg(i); has {
				if s, isStr := v.(string); isStr {
					onV, ok = s, true
					break
				}
			}
		}
		if !ok {
			return nil, fmt.Errorf("merge requires on=\"column\"")
		}
	}
	on, ok := onV.(string)
	if !ok {
		return nil, fmt.Errorf("merge on= must be a string, got %s", typeName(onV))
	}
	kind := frame.InnerJoin
	if hv, has := c.kwarg("how"); has {
		how, isStr := hv.(string)
		if !isStr {
			return nil, fmt.Errorf("merge how= must be a string")
		}
		switch how {
		case "inner":
			kind = frame.InnerJoin
		case "left":
			kind = frame.LeftJoin
		default:
			return nil, fmt.Errorf("merge how=%q not supported (inner, left)", how)
		}
	}
	out, err := frame.Merge(left.F, right.F, on, kind)
	if err != nil {
		return nil, err
	}
	return NewDF(out), nil
}

func (e *Env) callSeries(s *frame.Series, name string, c *call) (Value, error) {
	switch name {
	case "fillna":
		v, ok := c.arg(0)
		if !ok {
			return nil, fmt.Errorf("fillna needs an argument")
		}
		switch a := v.(type) {
		case float64:
			return s.FillNAFloat(a), nil
		case string:
			return s.FillNAString(a), nil
		default:
			return nil, fmt.Errorf("fillna argument must be a scalar, got %s", typeName(v))
		}
	case "mean":
		return s.Mean(), nil
	case "median":
		return s.Median(), nil
	case "std":
		return s.Std(), nil
	case "min":
		return s.Min(), nil
	case "max":
		return s.Max(), nil
	case "sum":
		return s.Sum(), nil
	case "count":
		return float64(s.Len() - s.NullCount()), nil
	case "mode":
		m, ok := s.Mode()
		if !ok {
			return nil, fmt.Errorf("mode of an all-null series")
		}
		if s.IsNumeric() {
			var f float64
			if _, err := fmt.Sscanf(m, "%g", &f); err == nil {
				return f, nil
			}
		}
		return m, nil
	case "between":
		lo, err := c.floatArg(0)
		if err != nil {
			return nil, err
		}
		hi, err := c.floatArg(1)
		if err != nil {
			return nil, err
		}
		return s.Between(lo, hi), nil
	case "map", "replace":
		v, ok := c.arg(0)
		if !ok {
			return nil, fmt.Errorf("%s needs a dict", name)
		}
		d, ok := v.(dictVal)
		if !ok {
			return nil, fmt.Errorf("%s needs a dict, got %s", name, typeName(v))
		}
		return s.MapValues(d.m), nil
	case "astype":
		t, err := c.stringArg(0)
		if err != nil {
			return nil, err
		}
		switch t {
		case "int", "int64", "int32":
			return s.AsType(frame.Int), nil
		case "float", "float64", "float32":
			return s.AsType(frame.Float), nil
		case "str", "object", "string", "category":
			return s.AsType(frame.String), nil
		case "bool":
			return s.AsType(frame.Bool), nil
		default:
			return nil, fmt.Errorf("astype: unsupported type %q", t)
		}
	case "isnull", "isna":
		return s.IsNull(), nil
	case "notnull", "notna":
		return s.NotNull(), nil
	case "isin":
		v, ok := c.arg(0)
		if !ok {
			return nil, fmt.Errorf("isin needs a list")
		}
		lv, ok := v.(listVal)
		if !ok {
			return nil, fmt.Errorf("isin needs a list, got %s", typeName(v))
		}
		vals := make([]string, len(lv.elems))
		for i, el := range lv.elems {
			vals[i] = scalarString(el)
		}
		return s.IsIn(vals), nil
	case "clip":
		lo, err := c.floatArg(0)
		if err != nil {
			return nil, err
		}
		hi, err := c.floatArg(1)
		if err != nil {
			return nil, err
		}
		return s.Clip(lo, hi), nil
	case "round":
		return s.Round(), nil
	case "abs":
		return s.Abs(), nil
	case "nunique":
		return float64(len(s.Unique())), nil
	default:
		return nil, fmt.Errorf("Series has no method %q", name)
	}
}

func (e *Env) callStr(sv strVal, name string, c *call) (Value, error) {
	if sv.s.Kind() != frame.String {
		return nil, fmt.Errorf(".str accessor on non-string series %q", sv.s.Name())
	}
	switch name {
	case "lower":
		return sv.s.Lower(), nil
	case "upper":
		return sv.s.Upper(), nil
	case "strip":
		return sv.s.Strip(), nil
	case "replace":
		old, err := c.stringArg(0)
		if err != nil {
			return nil, err
		}
		nw, err := c.stringArg(1)
		if err != nil {
			return nil, err
		}
		return sv.s.ReplaceString(old, nw), nil
	case "contains":
		sub, err := c.stringArg(0)
		if err != nil {
			return nil, err
		}
		m := make(frame.Mask, sv.s.Len())
		for i := 0; i < sv.s.Len(); i++ {
			if sv.s.IsValid(i) && containsStr(sv.s.StringAt(i), sub) {
				m[i] = true
			}
		}
		return m, nil
	case "len":
		out := make([]float64, sv.s.Len())
		for i := range out {
			if sv.s.IsValid(i) {
				out[i] = float64(len(sv.s.StringAt(i)))
			} else {
				out[i] = math.NaN()
			}
		}
		return frame.NewFloatSeries(sv.s.Name(), out), nil
	default:
		return nil, fmt.Errorf(".str has no method %q", name)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func (e *Env) callGroupCol(g groupColVal, name string, c *call) (Value, error) {
	var agg frame.GroupAgg
	switch name {
	case "mean":
		agg = frame.AggMean
	case "sum":
		agg = frame.AggSum
	case "count":
		agg = frame.AggCount
	default:
		return nil, fmt.Errorf("groupby aggregate %q not supported", name)
	}
	out, err := g.df.F.GroupBy(g.key, g.col, agg)
	if err != nil {
		return nil, err
	}
	return NewDF(out), nil
}
