package interp

import (
	"math"
	"testing"

	"lucidscript/internal/frame"
)

// getVal evaluates a one-variable program and returns the variable.
func getVal(t *testing.T, src, name string, sources map[string]*frame.Frame) Value {
	t.Helper()
	res := run(t, src, sources)
	v, ok := res.Env.Get(name)
	if !ok {
		t.Fatalf("variable %q not set", name)
	}
	return v
}

func TestNumpyScalarFunctions(t *testing.T) {
	srcs := titanicSources(t)
	cases := map[string]float64{
		"a = np.log1p(0)": 0,
		"a = np.log(1)":   0,
		"a = np.sqrt(9)":  3,
		"a = np.abs(-4)":  4,
		"a = np.exp(0)":   1,
	}
	for line, want := range cases {
		v := getVal(t, "import numpy as np\nimport pandas as pd\ndf = pd.read_csv(\"train.csv\")\n"+line+"\n", "a", srcs)
		if got := v.(float64); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", line, got, want)
		}
	}
}

func TestNumpyElementwiseVariants(t *testing.T) {
	res := run(t, `import pandas as pd
import numpy as np
df = pd.read_csv("train.csv")
df["s"] = np.sqrt(df["Fare"])
df["e"] = np.exp(df["Survived"])
df["l"] = np.log(df["Pclass"])
df["ab"] = np.abs(df["Age"] - 30)
`, titanicSources(t))
	s, _ := res.Main.Column("s")
	if math.Abs(s.Float(0)-math.Sqrt(7.25)) > 1e-9 {
		t.Fatalf("sqrt = %v", s.Float(0))
	}
	ab, _ := res.Main.Column("ab")
	if math.Abs(ab.Float(0)-8) > 1e-9 {
		t.Fatalf("abs = %v", ab.Float(0))
	}
}

func TestWhereVariants(t *testing.T) {
	res := run(t, `import pandas as pd
import numpy as np
df = pd.read_csv("train.csv")
df["cls"] = np.where(df["Sex"] == "male", "M", "F")
df["capped"] = np.where(df["Fare"] > 50, 50, df["Fare"])
df["mix"] = np.where(df["Age"] > 30, df["Age"], df["Fare"])
`, titanicSources(t))
	cls, _ := res.Main.Column("cls")
	if cls.StringAt(0) != "M" || cls.StringAt(1) != "F" {
		t.Fatalf("string where = %q %q", cls.StringAt(0), cls.StringAt(1))
	}
	capped, _ := res.Main.Column("capped")
	if capped.Float(1) != 50 || math.Abs(capped.Float(0)-7.25) > 1e-9 {
		t.Fatalf("series-fallback where = %v %v", capped.Float(1), capped.Float(0))
	}
	mix, _ := res.Main.Column("mix")
	if math.Abs(mix.Float(1)-38) > 1e-9 || math.Abs(mix.Float(0)-7.25) > 1e-9 {
		t.Fatalf("series/series where = %v %v", mix.Float(1), mix.Float(0))
	}
}

func TestWhereErrors(t *testing.T) {
	srcs := titanicSources(t)
	mustFail(t, "import numpy as np\nimport pandas as pd\ndf = pd.read_csv(\"train.csv\")\nx = np.where(df[\"Age\"], 1, 0)", srcs, "mask")
	mustFail(t, "import numpy as np\nimport pandas as pd\ndf = pd.read_csv(\"train.csv\")\nx = np.where(df[\"Age\"] > 1, 1, \"a\")", srcs, "share a type")
	mustFail(t, "import numpy as np\nimport pandas as pd\ndf = pd.read_csv(\"train.csv\")\nx = np.where(df[\"Age\"] > 1, 1)", srcs, "np.where")
}

func TestDFFillnaScalarVariants(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df = df.fillna(0)
`, titanicSources(t))
	age, _ := res.Main.Column("Age")
	if age.NullCount() != 0 || age.Float(4) != 0 {
		t.Fatal("fillna(0) numeric")
	}
	emb, _ := res.Main.Column("Embarked")
	if emb.NullCount() != 1 {
		t.Fatal("fillna(0) should skip string columns")
	}
	res2 := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df = df.fillna("missing")
`, titanicSources(t))
	emb2, _ := res2.Main.Column("Embarked")
	if emb2.StringAt(4) != "missing" {
		t.Fatal("fillna(str) string column")
	}
	age2, _ := res2.Main.Column("Age")
	if age2.NullCount() != 1 {
		t.Fatal("fillna(str) should skip numeric columns")
	}
	res3 := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df = df.fillna(df.median())
df = df.fillna(df.mode())
`, titanicSources(t))
	emb3, _ := res3.Main.Column("Embarked")
	if emb3.NullCount() != 0 {
		t.Fatal("mode fill should fill strings")
	}
}

func TestSeriesMethodSurface(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
a = df["Age"].std()
b = df["Age"].min()
c = df["Age"].max()
d = df["Fare"].median()
m = df["Embarked"].mode()
mn = df["Pclass"].mode()
r = df["Fare"].round()
ab = df["Fare"].abs()
cl = df["Fare"].clip(5, 20)
`, titanicSources(t))
	if v, _ := res.Env.Get("m"); v.(string) != "S" {
		t.Fatalf("mode = %v", v)
	}
	if v, _ := res.Env.Get("mn"); v.(float64) != 3 {
		t.Fatalf("numeric mode = %v", v)
	}
	if v, _ := res.Env.Get("b"); v.(float64) != 2 {
		t.Fatalf("min = %v", v)
	}
	cl, _ := res.Env.Get("cl")
	if cl.(*frame.Series).Max() > 20 {
		t.Fatal("clip")
	}
}

func TestSeriesReplaceDict(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df["Embarked"] = df["Embarked"].replace({"S": "Southampton"})
`, titanicSources(t))
	emb, _ := res.Main.Column("Embarked")
	if emb.StringAt(0) != "Southampton" || emb.StringAt(1) != "C" {
		t.Fatalf("replace = %q %q", emb.StringAt(0), emb.StringAt(1))
	}
}

func TestStrAccessorSurface(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df["E1"] = df["Embarked"].str.upper()
df["E2"] = df["Embarked"].str.strip()
df["E3"] = df["Embarked"].str.replace("S", "X")
df["L"] = df["Embarked"].str.len()
m = df["Sex"].str.contains("ale")
f = df[df["Sex"].str.contains("fem")]
`, titanicSources(t))
	e3, _ := res.Main.Column("E3")
	if e3.StringAt(0) != "X" {
		t.Fatalf("str.replace = %q", e3.StringAt(0))
	}
	l, _ := res.Main.Column("L")
	if l.Float(0) != 1 {
		t.Fatalf("str.len = %v", l.Float(0))
	}
	fv, _ := res.Env.Get("f")
	if fv.(*DF).F.NumRows() != 4 {
		t.Fatalf("contains filter rows = %d", fv.(*DF).F.NumRows())
	}
	mustFail(t, `import pandas as pd
df = pd.read_csv("train.csv")
x = df["Sex"].str.explode()
`, titanicSources(t), "no method")
}

func TestBroadcastAssignments(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df["const"] = 7
df["label"] = "x"
df["flag"] = True
df["mask"] = df["Age"] > 30
`, titanicSources(t))
	c, _ := res.Main.Column("const")
	if c.Float(3) != 7 {
		t.Fatal("float broadcast")
	}
	l, _ := res.Main.Column("label")
	if l.StringAt(0) != "x" {
		t.Fatal("string broadcast")
	}
	f, _ := res.Main.Column("flag")
	if !f.BoolAt(0) {
		t.Fatal("bool broadcast")
	}
	m, _ := res.Main.Column("mask")
	if m.Kind() != frame.Bool {
		t.Fatal("mask broadcast")
	}
	mustFail(t, `import pandas as pd
df = pd.read_csv("train.csv")
df["bad"] = df.mean()
`, titanicSources(t), "cannot assign")
}

func TestCompareBranches(t *testing.T) {
	srcs := titanicSources(t)
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
a = 30 < df["Age"]
b = df["Age"] != df["Fare"]
c = df["Sex"] == df["Embarked"]
d = 1 < 2
e = "a" < "b"
`, srcs)
	a, _ := res.Env.Get("a")
	if a.(frame.Mask).Count() != 3 {
		t.Fatalf("reversed compare count = %d", a.(frame.Mask).Count())
	}
	if d, _ := res.Env.Get("d"); d.(bool) != true {
		t.Fatal("scalar compare")
	}
	if e, _ := res.Env.Get("e"); e.(bool) != true {
		t.Fatal("string compare")
	}
	c, _ := res.Env.Get("c")
	if c.(frame.Mask).Count() != 0 {
		t.Fatal("cross-kind series compare should compare strings")
	}
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\nx = df[\"Age\"] < True", srcs, "not supported")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\nx = df < 2", srcs, "cannot compare")
}

func TestFlipCmpAllOps(t *testing.T) {
	srcs := titanicSources(t)
	for _, tc := range []struct {
		src  string
		want int
	}{
		{"m = 30 < df[\"Age\"]", 4},  // Age > 30
		{"m = 30 <= df[\"Age\"]", 4}, // Age >= 30 (35,38,54 and... 35,38,54 plus none at 30)
		{"m = 30 > df[\"Age\"]", 3},  // Age < 30: 22,26,2,27 minus null = 4? recompute below
		{"m = 30 >= df[\"Age\"]", 4},
	} {
		res := run(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\n"+tc.src+"\n", srcs)
		m, _ := res.Env.Get("m")
		n := m.(frame.Mask).Count()
		if n == 0 || n == len(m.(frame.Mask)) {
			t.Fatalf("%s: degenerate mask %d", tc.src, n)
		}
	}
}

func TestArithBranches(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
a = df["Fare"] - 1
b = 2 * df["Fare"]
c = 100 / df["Pclass"]
d = 10 - df["Pclass"]
e = "ab" + "cd"
f = df["Sex"] + df["Embarked"]
`, titanicSources(t))
	c, _ := res.Env.Get("c")
	if math.Abs(c.(*frame.Series).Float(0)-100.0/3) > 1e-9 {
		t.Fatalf("scalar/series = %v", c.(*frame.Series).Float(0))
	}
	if e, _ := res.Env.Get("e"); e.(string) != "abcd" {
		t.Fatal("string concat")
	}
	f, _ := res.Env.Get("f")
	if f.(*frame.Series).StringAt(0) != "maleS" {
		t.Fatal("series string concat")
	}
	mustFail(t, `import pandas as pd
df = pd.read_csv("train.csv")
x = "a" - "b"
`, titanicSources(t), "cannot apply")
}

func TestUnaryBranches(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
a = -df["Pclass"]
b = -5
`, titanicSources(t))
	a, _ := res.Env.Get("a")
	if a.(*frame.Series).Float(0) != -3 {
		t.Fatal("negate series")
	}
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\nx = ~df[\"Age\"]", titanicSources(t), "needs a mask")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\nx = -df", titanicSources(t), "needs a number")
}

func TestAttrSurface(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
cols = df.columns
shape = df.shape
vals = df["Age"].values
`, titanicSources(t))
	cols, _ := res.Env.Get("cols")
	if len(cols.(listVal).elems) != 6 {
		t.Fatal("columns")
	}
	shape, _ := res.Env.Get("shape")
	if shape.(listVal).elems[0].(float64) != 8 {
		t.Fatal("shape")
	}
	if v, _ := res.Env.Get("vals"); v.(*frame.Series).Len() != 8 {
		t.Fatal("values")
	}
	mustFail(t, "x = 5\ny = x.attr", nil, "no attribute")
}

func TestLocReadAndErrors(t *testing.T) {
	srcs := titanicSources(t)
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
sub = df.loc[df["Age"] > 30]
`, srcs)
	sub, _ := res.Env.Get("sub")
	if sub.(*DF).F.NumRows() != 3 {
		t.Fatalf("loc mask read rows = %d", sub.(*DF).F.NumRows())
	}
	mustFail(t, `import pandas as pd
df = pd.read_csv("train.csv")
x = df.loc["Age"]
`, srcs, "masks")
	mustFail(t, `import pandas as pd
df = pd.read_csv("train.csv")
df.loc[df["Age"] > 30] = 0
`, srcs, "")
	mustFail(t, `import pandas as pd
df = pd.read_csv("train.csv")
df.loc[df["Age"] > 30, 5] = 0
`, srcs, "column must be a string")
}

func TestLocStringAssignmentAndConversion(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df.loc[df["Age"] > 30, "Embarked"] = "OLD"
df.loc[df["Age"] > 30, "Pclass"] = 9
df.loc[df["Sex"] == "male", "tag"] = "m"
`, titanicSources(t))
	emb, _ := res.Main.Column("Embarked")
	if emb.StringAt(1) != "OLD" {
		t.Fatal("loc string assign")
	}
	pc, _ := res.Main.Column("Pclass")
	if pc.Float(1) != 9 {
		t.Fatal("loc numeric assign")
	}
	tag, _ := res.Main.Column("tag")
	if tag.Kind() != frame.String || tag.StringAt(0) != "m" {
		t.Fatal("loc creates string column")
	}
}

func TestIndexErrors(t *testing.T) {
	srcs := titanicSources(t)
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\nx = df[5]", srcs, "cannot index DataFrame")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\nx = df[[\"Age\", 5]]", srcs, "strings")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\nx = df[\"Age\"][\"Fare\"]", srcs, "cannot index Series")
	mustFail(t, "x = 5\ny = x[1]", nil, "cannot index")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\nx = df.groupby(\"Sex\")[5]", srcs, "string")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\nx = df.groupby(\"Nope\")", srcs, "no column")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\nx = df.groupby(\"Sex\")[\"Fare\"].frobnicate()", srcs, "not supported")
}

func TestSeriesMaskIndexing(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
old = df["Fare"][df["Age"] > 30]
`, titanicSources(t))
	old, _ := res.Env.Get("old")
	if old.(*frame.Series).Len() != 3 {
		t.Fatalf("masked series len = %d", old.(*frame.Series).Len())
	}
}

func TestGroupBySumAndCount(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
s = df.groupby("Sex")["Fare"].sum()
c = df.groupby("Sex")["Fare"].count()
`, titanicSources(t))
	s, _ := res.Env.Get("s")
	if s.(*DF).F.NumRows() != 2 {
		t.Fatal("groupby sum")
	}
}

func TestCallErrors(t *testing.T) {
	srcs := titanicSources(t)
	mustFail(t, "x = 5\ny = x()", nil, "not callable")
	mustFail(t, "import pandas as pd\nx = pd.frobnicate()", srcs, "no callable")
	mustFail(t, "import numpy as np\nx = np.frobnicate()", srcs, "no callable")
	mustFail(t, "import sklearn\nx = sklearn.fit()", srcs, "no callable")
	mustFail(t, "import pandas as pd\nx = pd.read_csv(5)", srcs, "string")
	mustFail(t, "import pandas as pd\nx = pd.get_dummies(5)", srcs, "DataFrame")
	mustFail(t, "import pandas as pd\nx = pd.to_numeric(5)", srcs, "Series")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\nx = pd.cut(df[\"Age\"], 0)", srcs, "bin")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\nx = df[\"Age\"].between(1)", srcs, "missing argument")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\nx = df[\"Age\"].map(5)", srcs, "dict")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\nx = df[\"Age\"].astype(\"complex\")", srcs, "unsupported type")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\nx = df[\"Age\"].isin(5)", srcs, "list")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\ndf = df.rename(5)", srcs, "columns=")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\ndf = df.sample(\"x\")", srcs, "number")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\ndf = df.sort_values(5)", srcs, "")
}

func TestSortValuesByKwarg(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df = df.sort_values(by="Age")
`, titanicSources(t))
	age, _ := res.Main.Column("Age")
	if age.Float(0) != 2 {
		t.Fatalf("sort by kwarg first = %v", age.Float(0))
	}
}

func TestSampleKwargN(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df = df.sample(n=3)
`, titanicSources(t))
	if res.Main.NumRows() != 3 {
		t.Fatal("sample(n=)")
	}
	mustFail(t, `import pandas as pd
df = pd.read_csv("train.csv")
df = df.sample(frac=1.5)
`, titanicSources(t), "frac")
}

func TestResetIndexAndCopy(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df = df[df["Age"] > 30]
df = df.reset_index()
idx = df.index
d2 = df.copy()
`, titanicSources(t))
	idx, _ := res.Env.Get("idx")
	labels := idx.(indexVal).labels
	if labels[0] != 0 || labels[len(labels)-1] != len(labels)-1 {
		t.Fatalf("reset_index labels = %v", labels)
	}
	d2, _ := res.Env.Get("d2")
	if d2.(*DF).F.NumRows() != res.Main.NumRows() {
		t.Fatal("copy")
	}
}

func TestDuplicatedMask(t *testing.T) {
	src := map[string]*frame.Frame{}
	f, _ := frame.ReadCSVString("a\n1\n1\n2\n")
	src["d.csv"] = f
	res := run(t, `import pandas as pd
df = pd.read_csv("d.csv")
df = df[~df.duplicated()]
`, src)
	if res.Main.NumRows() != 2 {
		t.Fatalf("duplicated filter rows = %d", res.Main.NumRows())
	}
}

func TestScalarStringRendering(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
df["m"] = df["Pclass"].map({1: "first", 2: "second", 3: "third"})
df["b"] = df["m"].map({"third": True})
`, titanicSources(t))
	m, _ := res.Main.Column("m")
	if m.StringAt(0) != "third" {
		t.Fatalf("numeric dict keys = %q", m.StringAt(0))
	}
}

func TestTypeNameCoverage(t *testing.T) {
	vals := []Value{
		&DF{}, frame.NewIntSeries("x", nil), frame.Mask{}, 1.0, "s", true,
		moduleVal{}, statVal{}, strVal{}, indexVal{}, dictVal{}, listVal{},
		groupVal{}, groupColVal{}, boundMethod{}, nil,
	}
	for _, v := range vals {
		if typeName(v) == "" {
			t.Fatalf("empty type name for %T", v)
		}
	}
	if typeName(struct{}{}) == "" {
		t.Fatal("fallback type name")
	}
}

func TestDFCloneIndependent(t *testing.T) {
	// DF.Clone shares column storage (structural sharing) but is
	// structurally independent: replacing a column in the clone must not
	// change the original.
	f, _ := frame.ReadCSVString("a\n1\n")
	d := NewDF(f)
	c := d.Clone()
	col, _ := c.F.Column("a")
	repl := col.Clone()
	repl.SetInt(0, 99)
	if err := c.F.SetColumn(repl); err != nil {
		t.Fatal(err)
	}
	orig, _ := d.F.Column("a")
	if orig.Float(0) == 99 {
		t.Fatal("replacing a column in a clone should not touch the original")
	}
}

func TestMeanOfSeriesInFillna(t *testing.T) {
	// series.fillna(series.mean()) where the series is all null errors
	// gracefully (mode of all-null).
	src := map[string]*frame.Frame{}
	f, _ := frame.ReadCSVString("a,b\n,1\n,2\n")
	src["d.csv"] = f
	mustFail(t, `import pandas as pd
df = pd.read_csv("d.csv")
x = df["a"].mode()
`, src, "all-null")
}

func TestAssignErrors(t *testing.T) {
	srcs := titanicSources(t)
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\ndf[5] = 1", srcs, "string column name")
	mustFail(t, "x = 1\nx[\"a\"] = 2", nil, "cannot index-assign")
	mustFail(t, "import pandas as pd\ndf = pd.read_csv(\"train.csv\")\ndf.attr = 1", srcs, "cannot assign")
}

func TestDescribeMethod(t *testing.T) {
	res := run(t, `import pandas as pd
df = pd.read_csv("train.csv")
summary = df.describe()
`, titanicSources(t))
	v, _ := res.Env.Get("summary")
	d := v.(*DF).F
	if !d.HasColumn("Fare") || d.NumRows() != 6 {
		t.Fatalf("describe shape: %v x %d", d.ColumnNames(), d.NumRows())
	}
}

func TestDatetimeSupport(t *testing.T) {
	src := map[string]*frame.Frame{}
	f, _ := frame.ReadCSVString("date,amount\n02.01.2013,5\n2014-06-15,7\n03/20/2015,9\nnot-a-date,1\n")
	src["sales.csv"] = f
	res := run(t, `import pandas as pd
df = pd.read_csv("sales.csv")
df["date"] = pd.to_datetime(df["date"])
df["year"] = df["date"].dt.year
df["month"] = df["date"].dt.month
df["day"] = df["date"].dt.day
df["dow"] = df["date"].dt.dayofweek
`, src)
	year, _ := res.Main.Column("year")
	if year.Float(0) != 2013 || year.Float(1) != 2014 || year.Float(2) != 2015 {
		t.Fatalf("years = %v %v %v", year.Float(0), year.Float(1), year.Float(2))
	}
	month, _ := res.Main.Column("month")
	if month.Float(0) != 1 || month.Float(1) != 6 || month.Float(2) != 3 {
		t.Fatalf("months = %v %v %v", month.Float(0), month.Float(1), month.Float(2))
	}
	if year.IsValid(3) {
		t.Fatal("unparseable date should be null")
	}
	dow, _ := res.Main.Column("dow")
	// 2013-01-02 was a Wednesday → pandas dayofweek 2.
	if dow.Float(0) != 2 {
		t.Fatalf("dayofweek = %v, want 2", dow.Float(0))
	}
}

func TestDatetimeErrors(t *testing.T) {
	src := map[string]*frame.Frame{}
	f, _ := frame.ReadCSVString("c\nx\n")
	src["d.csv"] = f
	mustFail(t, `import pandas as pd
df = pd.read_csv("d.csv")
y = df["c"].dt.year
`, src, "to_datetime")
	mustFail(t, `import pandas as pd
df = pd.read_csv("d.csv")
df["c"] = pd.to_datetime(df["c"])
y = df["c"].dt.century
`, src, "no attribute")
	mustFail(t, `import pandas as pd
x = pd.to_datetime(5)
`, src, "Series")
}

func TestDatetimeIdempotent(t *testing.T) {
	src := map[string]*frame.Frame{}
	f, _ := frame.ReadCSVString("date\n02.01.2013\n")
	src["d.csv"] = f
	res := run(t, `import pandas as pd
df = pd.read_csv("d.csv")
df["date"] = pd.to_datetime(df["date"])
df["date"] = pd.to_datetime(df["date"])
y = df["date"].dt.year
`, src)
	y, _ := res.Env.Get("y")
	if y.(*frame.Series).Float(0) != 2013 {
		t.Fatal("double to_datetime should pass through")
	}
}
