package interp

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"lucidscript/internal/script"
)

// propScripts builds a pool of scripts over the titanic fixture sharing many
// prefixes (to provoke hit/miss races), including failing ones (unknown
// column) so error nodes enter the trie too.
func propScripts(t *testing.T) []*script.Script {
	t.Helper()
	stmts := [][]string{
		{`df = pd.read_csv("train.csv")`},
		{
			`df = df.fillna(df.mean())`,
			`df = df.dropna()`,
			``,
		},
		{
			`df = df[df["Fare"] < 60]`,
			`df = df[df["Age"] > 20]`,
			`df = df[df["Nope"] > 3]`, // fails: unknown column
			``,
		},
		{
			`df = pd.get_dummies(df)`,
			`y = df["Survived"]`,
			``,
		},
	}
	base := "import pandas as pd\n"
	srcs := []string{}
	var build func(prefix string, level int)
	build = func(prefix string, level int) {
		if level == len(stmts) {
			srcs = append(srcs, prefix)
			return
		}
		for _, s := range stmts[level] {
			next := prefix
			if s != "" {
				next += s + "\n"
			}
			build(next, level+1)
		}
	}
	build(base, 0)
	out := make([]*script.Script, len(srcs))
	for i, s := range srcs {
		out[i] = script.MustParse(s)
	}
	return out
}

// TestSessionCacheInvariantsUnderLoad hammers one small shared cache from
// many goroutines — through per-goroutine views, with randomly injected
// per-run cancellation and a maxNodes low enough to force evictions — then
// checks the structural invariants:
//
//  1. every trie node holds an environment XOR an error (a fully executed
//     statement or a genuine failure, never both or neither);
//  2. no cached error is a context cancellation (aborted runs must not
//     poison the trie);
//  3. the node count bookkeeping matches the walked trie and respects
//     maxNodes;
//  4. per-view accounting: Hits==StmtsSkipped, Misses==StmtsExecuted, view
//     Evictions stay zero, and the views sum to the shared totals;
//  5. after the storm, cached results still equal plain interp.Run.
func TestSessionCacheInvariantsUnderLoad(t *testing.T) {
	sources := titanicSources(t)
	opts := Options{Seed: 5}
	pool := propScripts(t)

	const (
		goroutines = 8
		iters      = 60
		maxNodes   = 12 // far below the pool's distinct-prefix count
	)
	cache := NewSessionCache(sources, opts, maxNodes)

	views := make([]*CacheView, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		views[g] = cache.NewView()
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 100))
			for i := 0; i < iters; i++ {
				s := pool[rng.Intn(len(pool))]
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if rng.Intn(3) == 0 {
					// Inject a deadline that can strike mid-run.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(40))*time.Microsecond)
				}
				_, _ = views[g].RunContext(ctx, s)
				cancel()
			}
		}(g)
	}
	wg.Wait()

	// A serial, uncancelable pass over the whole pool: with more distinct
	// prefixes than maxNodes this forces evictions deterministically (the
	// concurrent phase alone might not insert enough nodes when injected
	// deadlines strike early). Routed through a view so the per-view sums
	// still cover all traffic.
	flush := cache.NewView()
	views = append(views, flush)
	for _, s := range pool {
		_, _ = flush.RunContext(context.Background(), s)
	}

	// Invariants 1-3: the exported checker walks the trie under the lock
	// (env XOR err, no cached context/injected errors, links, bookkeeping).
	if err := cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	cache.mu.Lock()
	shared := cache.stats
	cache.mu.Unlock()

	// Invariant 4: per-view and shared accounting.
	var sum CacheStats
	for g, v := range views {
		st := v.Stats()
		if st.Hits != st.StmtsSkipped {
			t.Errorf("view %d: Hits=%d != StmtsSkipped=%d", g, st.Hits, st.StmtsSkipped)
		}
		if st.Misses != st.StmtsExecuted {
			t.Errorf("view %d: Misses=%d != StmtsExecuted=%d", g, st.Misses, st.StmtsExecuted)
		}
		if st.Evictions != 0 {
			t.Errorf("view %d: Evictions=%d, want 0 (evictions are global)", g, st.Evictions)
		}
		sum.Hits += st.Hits
		sum.Misses += st.Misses
	}
	if sum.Hits != shared.Hits || sum.Misses != shared.Misses {
		t.Errorf("views sum to %d hits / %d misses, shared cache counted %d / %d",
			sum.Hits, sum.Misses, shared.Hits, shared.Misses)
	}
	if shared.Evictions == 0 {
		t.Error("no evictions despite maxNodes below the distinct-prefix count")
	}

	// Invariant 5: the storm must not have corrupted cached results.
	for i, s := range pool {
		plain, plainErr := Run(s, sources, opts)
		cached, cachedErr := cache.Run(s)
		assertSameResult(t, fmt.Sprintf("script %d after load", i), plain, plainErr, cached, cachedErr)
	}
}
