package faults

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if f := in.Fire(SiteInterpExec, "x = 1"); f != nil {
		t.Fatalf("nil injector fired: %+v", f)
	}
	if got := in.Counts(); got != nil {
		t.Fatalf("nil injector Counts = %v, want nil", got)
	}
	if got := in.Total(); got != 0 {
		t.Fatalf("nil injector Total = %d, want 0", got)
	}
	if got := in.Sites(); got != nil {
		t.Fatalf("nil injector Sites = %v, want nil", got)
	}
}

func TestExactKeyRuleFires(t *testing.T) {
	in := New(1, Rule{Site: SiteInterpExec, Key: "bad", Kind: KindError, Prob: 1})
	if f := in.Fire(SiteInterpExec, "good"); f != nil {
		t.Fatalf("rule fired on wrong key: %+v", f)
	}
	if f := in.Fire(SiteCacheStep, "bad"); f != nil {
		t.Fatalf("rule fired on wrong site: %+v", f)
	}
	f := in.Fire(SiteInterpExec, "bad")
	if f == nil {
		t.Fatal("rule did not fire on matching site+key")
	}
	if f.Kind != KindError {
		t.Fatalf("Kind = %v, want KindError", f.Kind)
	}
	if !errors.Is(f.Err, ErrInjected) {
		t.Fatalf("fault error %v does not wrap ErrInjected", f.Err)
	}
	if got := in.Counts()[SiteInterpExec]; got != 1 {
		t.Fatalf("fired count = %d, want 1", got)
	}
}

func TestPanicKindPanicsWithWrappedError(t *testing.T) {
	in := New(2, Rule{Site: SiteBatchJob, Kind: KindPanic, Prob: 1})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("KindPanic rule did not panic")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("panic value %T is not an error", r)
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("panic error %v does not wrap ErrInjected", err)
		}
	}()
	in.Fire(SiteBatchJob, "7")
}

func TestDelayKindSleepsThenReturnsNil(t *testing.T) {
	in := New(3, Rule{Kind: KindDelay, Prob: 1, Delay: 5 * time.Millisecond})
	start := time.Now()
	if f := in.Fire(SiteCurateScript, "0"); f != nil {
		t.Fatalf("delay fault returned non-nil: %+v", f)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("delay rule slept only %v", elapsed)
	}
	if got := in.Total(); got != 1 {
		t.Fatalf("Total = %d, want 1 (delay counts as fired)", got)
	}
}

// Decisions must be a pure function of (seed, site, key): the same injector
// config fires on exactly the same pairs regardless of call order or
// goroutine interleaving.
func TestDecisionsAreDeterministicAndOrderIndependent(t *testing.T) {
	keys := []string{"a = 1", "b = df.head(3)", "c = 2", "d = 3", "e = 4",
		"f = 5", "g = 6", "h = 7", "i = 8", "j = 9"}
	fireSet := func(in *Injector) map[string]bool {
		out := map[string]bool{}
		for _, k := range keys {
			if in.Fire(SiteInterpExec, k) != nil {
				out[k] = true
			}
		}
		return out
	}
	rule := Rule{Site: SiteInterpExec, Kind: KindError, Prob: 0.5}
	base := fireSet(New(42, rule))
	if len(base) == 0 || len(base) == len(keys) {
		t.Fatalf("Prob 0.5 over %d keys fired %d times; want a proper subset", len(keys), len(base))
	}
	// Same seed, reversed call order → identical set.
	in2 := New(42, rule)
	got := map[string]bool{}
	for i := len(keys) - 1; i >= 0; i-- {
		if in2.Fire(SiteInterpExec, keys[i]) != nil {
			got[keys[i]] = true
		}
	}
	for _, k := range keys {
		if base[k] != got[k] {
			t.Fatalf("key %q: order changed decision (forward %v, reverse %v)", k, base[k], got[k])
		}
	}
	// Different seed → (very likely) different set; assert decisions still
	// self-consistent across two fresh injectors.
	alt1, alt2 := fireSet(New(43, rule)), fireSet(New(43, rule))
	for _, k := range keys {
		if alt1[k] != alt2[k] {
			t.Fatalf("key %q: same seed disagreed across injectors", k)
		}
	}
}

func TestConcurrentFireIsSafeAndDeterministic(t *testing.T) {
	rule := Rule{Site: SiteCacheStep, Kind: KindError, Prob: 0.3}
	serial := New(7, rule)
	want := map[string]bool{}
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = string(rune('A' + i%26))
		if i >= 26 {
			keys[i] = keys[i%26] + keys[i/26]
		}
		want[keys[i]] = serial.Fire(SiteCacheStep, keys[i]) != nil
	}
	conc := New(7, rule)
	var mu sync.Mutex
	got := map[string]bool{}
	var wg sync.WaitGroup
	for _, k := range keys {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			fired := conc.Fire(SiteCacheStep, k) != nil
			mu.Lock()
			got[k] = fired
			mu.Unlock()
		}(k)
	}
	wg.Wait()
	for _, k := range keys {
		if want[k] != got[k] {
			t.Fatalf("key %q: concurrent decision %v != serial %v", k, got[k], want[k])
		}
	}
	if serial.Total() != conc.Total() {
		t.Fatalf("Total: concurrent %d != serial %d", conc.Total(), serial.Total())
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	in := New(9,
		Rule{Site: SiteInterpExec, Key: "x", Kind: KindExhaust, Prob: 1},
		Rule{Site: SiteInterpExec, Kind: KindError, Prob: 1},
	)
	f := in.Fire(SiteInterpExec, "x")
	if f == nil || f.Kind != KindExhaust {
		t.Fatalf("got %+v, want KindExhaust from first rule", f)
	}
	f = in.Fire(SiteInterpExec, "y")
	if f == nil || f.Kind != KindError {
		t.Fatalf("got %+v, want KindError fallthrough to second rule", f)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{KindError: "error", KindPanic: "panic",
		KindDelay: "delay", KindExhaust: "exhaust", Kind(99): "Kind(99)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
