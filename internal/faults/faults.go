// Package faults is a deterministic, seeded fault-injection hook for chaos
// testing the standardization pipeline. Production code threads a nil
// *Injector through its options (a nil receiver makes every Fire call a
// single pointer check), while chaos tests install an Injector with seeded
// rules that fire errors, panics, delays, or resource exhaustion at named
// sites in the interpreter, the execution-prefix cache, corpus curation,
// and the batch engine.
//
// Decisions are a pure function of (seed, site, key): whether a given
// Fire(site, key) call fires does not depend on timing, goroutine
// interleaving, or how many other sites fired before it. That makes chaos
// runs reproducible under -race and lets a test compare a faulted run
// against a fault-free run knowing exactly which work items were hit.
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"time"
)

// ErrInjected marks every error produced (or panicked) by an Injector, so
// isolation layers can distinguish injected chaos from genuine failures —
// the execution-prefix cache, for example, must never memoize an injected
// failure as if the statement were truly broken.
var ErrInjected = errors.New("faults: injected fault")

// The named injection sites wired into the pipeline. A Rule with an empty
// Site matches all of them.
const (
	// SiteInterpExec fires before each statement of an uncached interpreter
	// run; the key is the statement source text.
	SiteInterpExec = "interp.exec"
	// SiteCacheStep fires before each statement executed through a
	// SessionCache trie miss; the key is the statement source text.
	SiteCacheStep = "cache.step"
	// SiteCurateScript fires once per corpus script during curation; the
	// key is the script's decimal index.
	SiteCurateScript = "curate.script"
	// SiteBatchJob fires once per batch-engine job before it starts; the
	// key is the job's decimal index.
	SiteBatchJob = "batch.job"
)

// Kind selects what an injected fault does.
type Kind uint8

const (
	// KindError makes Fire return an error wrapping ErrInjected.
	KindError Kind = iota
	// KindPanic makes Fire panic with an error value wrapping ErrInjected,
	// exercising the real recover paths.
	KindPanic
	// KindDelay makes Fire sleep for the rule's Delay, then return nil —
	// for shaking out timeout and cancellation races.
	KindDelay
	// KindExhaust makes Fire return a Fault the site translates into its
	// resource-exhaustion error (the interpreter wraps it in
	// ErrResourceExhausted), exercising budget-quarantine paths without
	// actually burning memory.
	KindExhaust
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindExhaust:
		return "exhaust"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Rule arms one fault at a set of call sites. A rule fires for a given
// (site, key) pair when the pair's deterministic hash (salted by the
// injector seed and the rule's position) lands below Prob.
type Rule struct {
	// Site restricts the rule to one named site; empty matches every site.
	Site string
	// Key restricts the rule to one exact key; empty matches every key.
	Key string
	// Kind selects the fault behavior.
	Kind Kind
	// Prob is the firing probability per distinct (site, key) pair, in
	// [0, 1]. A Rule with an exact Key usually wants Prob 1.
	Prob float64
	// Delay is how long KindDelay sleeps.
	Delay time.Duration
}

// Fault describes one fired injection. Err always wraps ErrInjected.
type Fault struct {
	Kind Kind
	Err  error
}

// Injector evaluates rules at Fire call sites. The zero of *Injector (nil)
// is the production no-op: Fire on a nil receiver returns nil after a
// single comparison. Safe for concurrent use.
type Injector struct {
	seed  int64
	rules []Rule

	mu    sync.Mutex
	fired map[string]int64 // site → number of faults fired
}

// New returns an injector that evaluates the rules in order (the first
// matching rule that fires wins) with decisions salted by seed.
func New(seed int64, rules ...Rule) *Injector {
	return &Injector{seed: seed, rules: rules, fired: map[string]int64{}}
}

// Fire evaluates the rules for one (site, key) pair. It returns nil when no
// rule fires, panics for KindPanic, sleeps then returns nil for KindDelay,
// and returns a *Fault (whose Err wraps ErrInjected) for KindError and
// KindExhaust. A nil receiver always returns nil.
func (in *Injector) Fire(site, key string) *Fault {
	if in == nil {
		return nil
	}
	for ri, r := range in.rules {
		if r.Site != "" && r.Site != site {
			continue
		}
		if r.Key != "" && r.Key != key {
			continue
		}
		if !in.decide(ri, site, key, r.Prob) {
			continue
		}
		in.count(site)
		err := fmt.Errorf("%w: %s at %s (key %q)", ErrInjected, r.Kind, site, key)
		switch r.Kind {
		case KindPanic:
			panic(err)
		case KindDelay:
			time.Sleep(r.Delay)
			return nil
		default:
			return &Fault{Kind: r.Kind, Err: err}
		}
	}
	return nil
}

// decide maps (seed, rule index, site, key) onto [0,1) deterministically.
func (in *Injector) decide(rule int, site, key string, prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%d\x00%s\x00%s", in.seed, rule, site, key)
	u := float64(h.Sum64()>>11) / float64(uint64(1)<<53) // uniform in [0,1)
	if math.IsNaN(u) {
		return false
	}
	return u < prob
}

func (in *Injector) count(site string) {
	in.mu.Lock()
	in.fired[site]++
	in.mu.Unlock()
}

// Counts returns how many faults fired per site so far.
func (in *Injector) Counts() map[string]int64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, len(in.fired))
	for k, v := range in.fired {
		out[k] = v
	}
	return out
}

// Total returns the total number of faults fired across all sites.
func (in *Injector) Total() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, v := range in.fired {
		n += v
	}
	return n
}

// Sites returns the sites that fired at least once, sorted.
func (in *Injector) Sites() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.fired))
	for k := range in.fired {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
