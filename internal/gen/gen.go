// Package gen is a seeded generative test harness: it produces
// pseudo-random but always-valid LSL preparation scripts over one fixed
// synthetic schema, plus the matching CSV dataset. The batch stress test
// and the parser fuzz corpus both draw from it, so generated scripts must
// stay inside the grammar AND execute successfully against Sources —
// every template below uses only operations the interpreter supports.
//
// The package deliberately imports only frame and script, so any test in
// the tree (including script's own fuzz tests) can use it without an
// import cycle.
package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"lucidscript/internal/frame"
	"lucidscript/internal/script"
)

// SourceFile is the dataset name every generated script reads.
const SourceFile = "data.csv"

// Generator produces random scripts and datasets from one seeded stream.
// It is deterministic: two Generators with the same seed emit the same
// sequence. Not safe for concurrent use; give each goroutine its own.
type Generator struct {
	rng *rand.Rand
}

// New returns a Generator seeded with seed.
func New(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// template is one candidate statement; text may hold one %d slot, filled
// from the template's own consts so a drawn constant always keeps the
// statement executable (e.g. an Age filter never uses an Income bound that
// would empty the frame).
type template struct {
	text   string
	consts []int
}

// phase is one stage of the canonical preparation pipeline. Generated
// scripts draw 0..max templates per phase, in phase order, so every output
// is a plausible impute -> filter -> features -> encode -> split pipeline
// and statement order never violates a data dependency.
type phase struct {
	max       int // templates drawn from this phase: 0..max
	templates []template
}

// phases holds the generation grammar. Every template must execute against
// Frame's schema: ID, Age (nullable), Income, Score, City (nullable
// categorical), Gender (categorical), Target. Filter bounds are chosen to
// keep most rows, so no draw produces an empty frame downstream.
var phases = []phase{
	{ // impute / clean
		max: 3,
		templates: []template{
			{text: `df["Age"] = df["Age"].fillna(df["Age"].mean())`},
			{text: `df["Age"] = df["Age"].fillna(df["Age"].median())`},
			{text: `df["Income"] = df["Income"].fillna(df["Income"].median())`},
			{text: `df["Income"] = df["Income"].fillna(df["Income"].mean())`},
			{text: `df["City"] = df["City"].fillna("metro")`},
			{text: `df = df.dropna()`},
			{text: `df = df.drop_duplicates()`},
		},
	},
	{ // filter
		max: 2,
		templates: []template{
			{text: `df = df[df["Income"] < %d]`, consts: []int{150000, 200000, 300000}},
			{text: `df = df[df["Age"] < %d]`, consts: []int{70, 80, 90}},
			{text: `df = df[df["Score"] > %d]`, consts: []int{1, 5, 10}},
		},
	},
	{ // feature engineering
		max: 2,
		templates: []template{
			{text: `df["AgeScore"] = df["Age"] * df["Score"]`},
			{text: `df["IncomeK"] = df["Income"] / 1000`},
			{text: `df["Gender"] = df["Gender"].map({"m": 0, "f": 1})`},
			{text: `df["ScoreHalf"] = df["Score"] / 2 + %d`, consts: []int{0, 1, 10}},
		},
	},
	{ // encode
		max: 2,
		templates: []template{
			{text: `df = df.drop("ID", axis=1)`},
			{text: `df = pd.get_dummies(df)`},
		},
	},
	{ // split
		max: 2,
		templates: []template{
			{text: `y = df["Target"]`},
			{text: `X = df.drop("Target", axis=1)`},
		},
	},
}

// ScriptSource returns the text of one random valid script. Useful as a
// fuzz seed, where the raw bytes matter.
func (g *Generator) ScriptSource() string {
	var b strings.Builder
	b.WriteString("import pandas as pd\n")
	b.WriteString(`df = pd.read_csv("data.csv")` + "\n")
	for _, ph := range phases {
		n := g.rng.Intn(ph.max + 1)
		// Draw without replacement, preserving template order: a phase
		// never emits the same statement twice, and e.g. get_dummies
		// always follows the ID drop.
		picked := g.pick(len(ph.templates), n)
		for _, ti := range picked {
			tmpl := ph.templates[ti]
			line := tmpl.text
			if strings.Contains(line, "%d") {
				line = fmt.Sprintf(line, tmpl.consts[g.rng.Intn(len(tmpl.consts))])
			}
			b.WriteString(line + "\n")
		}
	}
	return b.String()
}

// pick draws n distinct indices from [0, k) and returns them ascending.
func (g *Generator) pick(k, n int) []int {
	perm := g.rng.Perm(k)
	if n > k {
		n = k
	}
	picked := append([]int(nil), perm[:n]...)
	for i := range picked { // insertion sort: n is tiny
		for j := i; j > 0 && picked[j] < picked[j-1]; j-- {
			picked[j], picked[j-1] = picked[j-1], picked[j]
		}
	}
	return picked
}

// Script returns one random valid parsed script. It panics if the
// generator emits something outside the grammar — that is a bug in this
// package, not in the caller.
func (g *Generator) Script() *script.Script {
	return script.MustParse(g.ScriptSource())
}

// Scripts returns n random valid scripts.
func (g *Generator) Scripts(n int) []*script.Script {
	out := make([]*script.Script, n)
	for i := range out {
		out[i] = g.Script()
	}
	return out
}

// Frame synthesizes the data.csv dataset matching the generation schema:
// nulls in Age and City, a skewed Income with outliers, and a Target
// correlated with Score so intent measures have signal.
func (g *Generator) Frame(rows int) *frame.Frame {
	var b strings.Builder
	b.WriteString("ID,Age,Income,Score,City,Gender,Target\n")
	cities := []string{"metro", "coast", "rural"}
	genders := []string{"m", "f"}
	for i := 0; i < rows; i++ {
		age := ""
		if g.rng.Float64() > 0.15 {
			age = fmt.Sprintf("%d", 18+g.rng.Intn(60))
		}
		income := 20000 + g.rng.Intn(90000)
		if g.rng.Float64() < 0.03 {
			income = 250000 + g.rng.Intn(200000) // outliers the filters cut
		}
		score := g.rng.Intn(100)
		city := cities[g.rng.Intn(len(cities))]
		if g.rng.Float64() < 0.05 {
			city = ""
		}
		target := 0
		if score > 50 || g.rng.Float64() < 0.1 {
			target = 1
		}
		fmt.Fprintf(&b, "%d,%s,%d,%d,%s,%s,%d\n",
			i+1, age, income, score, city, genders[g.rng.Intn(2)], target)
	}
	f, err := frame.ReadCSVString(b.String())
	if err != nil {
		panic(fmt.Sprintf("gen: generated CSV does not parse: %v", err))
	}
	return f
}

// Sources returns the dataset map every generated script runs against.
func (g *Generator) Sources(rows int) map[string]*frame.Frame {
	return map[string]*frame.Frame{SourceFile: g.Frame(rows)}
}
