package gen_test

import (
	"testing"

	"lucidscript/internal/gen"
	"lucidscript/internal/interp"
	"lucidscript/internal/script"
)

// TestGeneratedScriptsAreValid is the harness's core guarantee: every
// generated script parses, round-trips through the printer, and executes
// successfully against the generated dataset.
func TestGeneratedScriptsAreValid(t *testing.T) {
	g := gen.New(7)
	sources := g.Sources(200)
	for i := 0; i < 200; i++ {
		src := g.ScriptSource()
		s, err := script.Parse(src)
		if err != nil {
			t.Fatalf("script %d does not parse: %v\n%s", i, err, src)
		}
		if got := s.Source(); got != src {
			// The generator emits canonical form, so the printer must
			// reproduce the input byte for byte.
			t.Fatalf("script %d: print diverges from generated source:\n%s\nvs\n%s", i, got, src)
		}
		if _, err := interp.Run(s, sources, interp.Options{}); err != nil {
			t.Fatalf("script %d does not execute: %v\n%s", i, err, src)
		}
	}
}

func TestGeneratorIsDeterministic(t *testing.T) {
	a, b := gen.New(42), gen.New(42)
	for i := 0; i < 50; i++ {
		if sa, sb := a.ScriptSource(), b.ScriptSource(); sa != sb {
			t.Fatalf("same seed diverged at script %d:\n%s\nvs\n%s", i, sa, sb)
		}
	}
	fa, fb := gen.New(3).Frame(50), gen.New(3).Frame(50)
	if fa.NumRows() != fb.NumRows() || fa.NumCols() != fb.NumCols() {
		t.Fatal("same seed produced different frame shapes")
	}
}

func TestGeneratorCoversGrammar(t *testing.T) {
	// Over many draws the generator must produce scripts of varying length;
	// a constant-length stream means the phase sampling is broken.
	g := gen.New(11)
	lengths := map[int]bool{}
	for i := 0; i < 100; i++ {
		lengths[g.Script().NumStmts()] = true
	}
	if len(lengths) < 4 {
		t.Fatalf("only %d distinct script lengths in 100 draws", len(lengths))
	}
}
