// Package leakage implements the target-leakage case study of Section 6.6:
// deterministic injection of leakage snippets into scripts (the paper used
// GPT-4 to author them) and the detection bookkeeping used to measure how
// often standardization removes the injected ground truth.
package leakage

import (
	"fmt"
	"math/rand"

	"lucidscript/internal/script"
)

// Kind selects the injected leakage pattern.
type Kind int

// The leakage patterns.
const (
	// TargetCopy adds a verbatim copy of the target column.
	TargetCopy Kind = iota
	// NoisyDup adds a copy of the target and overwrites a sampled subset
	// with zeros (the paper's Figure 8 pattern). The heavy noising keeps
	// the downstream-accuracy impact of removal small, so the model
	// performance constraint can admit the fix.
	NoisyDup
	// Derived adds a column arithmetically derived from the target.
	Derived
)

// String names the leakage kind.
func (k Kind) String() string {
	switch k {
	case TargetCopy:
		return "target-copy"
	case NoisyDup:
		return "noisy-duplicate"
	case Derived:
		return "derived"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds lists all injection patterns.
func Kinds() []Kind { return []Kind{TargetCopy, NoisyDup, Derived} }

// Injection records one injected leakage instance.
type Injection struct {
	Kind Kind
	// Lines are the canonical sources of the injected statements — the
	// ground truth the detector must remove.
	Lines []string
	// Script is the modified script.
	Script *script.Script
}

// Inject inserts the leakage snippet into a copy of the script, before any
// target-split statements. target is the label column name.
func Inject(s *script.Script, target string, kind Kind, seed int64) (*Injection, error) {
	rng := rand.New(rand.NewSource(seed))
	var lines []string
	switch kind {
	case TargetCopy:
		lines = []string{fmt.Sprintf(`df["%s_copy"] = df["%s"]`, target, target)}
	case NoisyDup:
		// Most rows are overwritten so the leaked column's accuracy boost is
		// small enough that removing it stays within the Δ_M threshold (an
		// exact copy would be a perfect predictor whose removal no intent
		// constraint admits; see EXPERIMENTS.md).
		frac := 0.9 + 0.07*rng.Float64()
		lines = []string{
			fmt.Sprintf(`df["%s_dup"] = df["%s"]`, target, target),
			fmt.Sprintf(`update = df.sample(frac=%.2f).index`, frac),
			fmt.Sprintf(`df.loc[update, "%s_dup"] = 0`, target),
		}
	case Derived:
		k := 2 + rng.Intn(4)
		lines = []string{fmt.Sprintf(`df["leak_feature"] = df["%s"] * %d`, target, k)}
	default:
		return nil, fmt.Errorf("leakage: unknown kind %v", kind)
	}
	var stmts []script.Stmt
	var keys []string
	for _, l := range lines {
		st, err := script.ParseStmt(l)
		if err != nil {
			return nil, fmt.Errorf("leakage: snippet %q: %w", l, err)
		}
		stmts = append(stmts, st)
		keys = append(keys, st.Source())
	}
	out := s.Clone()
	pos := insertPos(out)
	merged := append([]script.Stmt(nil), out.Stmts[:pos]...)
	merged = append(merged, stmts...)
	merged = append(merged, out.Stmts[pos:]...)
	out.Stmts = merged
	return &Injection{Kind: kind, Lines: keys, Script: out}, nil
}

// insertPos places the snippet before target-split lines (y = ..., X = ...)
// so the leaked column reaches the feature set, as real leakage does.
func insertPos(s *script.Script) int {
	for i, st := range s.Stmts {
		as, ok := st.(*script.AssignStmt)
		if !ok {
			continue
		}
		if id, ok := as.Target.(*script.Ident); ok {
			switch id.Name {
			case "y", "X", "X_train", "y_train":
				return i
			}
		}
	}
	return len(s.Stmts)
}

// Removed reports whether the output script no longer contains any of the
// injected ground-truth lines (detection success for this instance).
func (inj *Injection) Removed(output *script.Script) bool {
	present := map[string]bool{}
	for _, st := range output.Stmts {
		present[st.Source()] = true
	}
	for _, l := range inj.Lines {
		if present[l] {
			return false
		}
	}
	return true
}

// RemovedCount returns how many of the injected lines are gone.
func (inj *Injection) RemovedCount(output *script.Script) int {
	present := map[string]bool{}
	for _, st := range output.Stmts {
		present[st.Source()] = true
	}
	n := 0
	for _, l := range inj.Lines {
		if !present[l] {
			n++
		}
	}
	return n
}
