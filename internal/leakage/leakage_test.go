package leakage

import (
	"strings"
	"testing"

	"lucidscript/internal/core"
	"lucidscript/internal/corpusgen"
	"lucidscript/internal/intent"
	"lucidscript/internal/interp"
	"lucidscript/internal/script"
)

const base = `import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.mean())
df = pd.get_dummies(df)
y = df["Outcome"]
X = df.drop("Outcome", axis=1)
`

func TestInjectKinds(t *testing.T) {
	s := script.MustParse(base)
	for _, k := range Kinds() {
		inj, err := Inject(s, "Outcome", k, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(inj.Lines) == 0 {
			t.Fatalf("%v: no ground-truth lines", k)
		}
		if inj.Script.NumStmts() != s.NumStmts()+len(inj.Lines) {
			t.Fatalf("%v: statement count %d", k, inj.Script.NumStmts())
		}
		// Snippet placed before the y assignment.
		src := inj.Script.Source()
		yPos := strings.Index(src, `y = df["Outcome"]`)
		for _, l := range inj.Lines {
			if p := strings.Index(src, l); p < 0 || p > yPos {
				t.Fatalf("%v: line %q not before target split", k, l)
			}
		}
	}
}

func TestInjectedScriptsExecute(t *testing.T) {
	c, _ := corpusgen.Get("Medical")
	gen, err := c.Generate(corpusgen.GenOptions{Seed: 3, RowScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	s := script.MustParse(base)
	for _, k := range Kinds() {
		inj, err := Inject(s, "Outcome", k, 5)
		if err != nil {
			t.Fatal(err)
		}
		if err := interp.CheckExecutes(inj.Script, gen.Sources, interp.Options{Seed: 1}); err != nil {
			t.Fatalf("%v: injected script does not execute: %v\n%s", k, err, inj.Script.Source())
		}
	}
}

func TestRemovedDetection(t *testing.T) {
	s := script.MustParse(base)
	inj, err := Inject(s, "Outcome", TargetCopy, 3)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Removed(inj.Script) {
		t.Fatal("unmodified injected script should not count as removed")
	}
	if !inj.Removed(s) {
		t.Fatal("original script has no injected lines")
	}
	if inj.RemovedCount(inj.Script) != 0 || inj.RemovedCount(s) != len(inj.Lines) {
		t.Fatal("RemovedCount wrong")
	}
}

func TestKindString(t *testing.T) {
	if TargetCopy.String() != "target-copy" || NoisyDup.String() != "noisy-duplicate" || Derived.String() != "derived" {
		t.Fatal("kind names")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

func TestInjectDeterministic(t *testing.T) {
	s := script.MustParse(base)
	a, _ := Inject(s, "Outcome", NoisyDup, 7)
	b, _ := Inject(s, "Outcome", NoisyDup, 7)
	if a.Script.Source() != b.Script.Source() {
		t.Fatal("injection not deterministic")
	}
	c, _ := Inject(s, "Outcome", NoisyDup, 8)
	if a.Script.Source() == c.Script.Source() {
		t.Fatal("seeds should vary the sample size")
	}
}

// End-to-end: LS standardization removes the injected leakage because the
// leaked atoms are absent from the corpus (high RE contribution).
func TestStandardizationDetectsLeakage(t *testing.T) {
	c, _ := corpusgen.Get("Medical")
	gen, err := c.Generate(corpusgen.GenOptions{Seed: 3, RowScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.SeqLength = 8
	cfg.Constraint = intent.Constraint{
		Measure: intent.MeasureModel,
		Tau:     5,
		Model:   intent.ModelConfig{Target: "Outcome"},
	}
	st := core.New(gen.ScriptsOnly(), gen.Sources, cfg)
	inj, err := Inject(script.MustParse(base), "Outcome", NoisyDup, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Standardize(inj.Script)
	if err != nil {
		t.Fatal(err)
	}
	if !inj.Removed(res.Output) {
		t.Fatalf("leakage not removed:\n%s", res.Output.Source())
	}
}
