package frame

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// ReadCSV parses CSV data with a header row into a frame, inferring column
// kinds: a column is Int if every non-empty cell parses as an integer,
// Float if every non-empty cell parses as a number, Bool if every non-empty
// cell is true/false, otherwise String. Empty cells become nulls.
func ReadCSV(r io.Reader) (*Frame, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("frame: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("frame: csv has no header row")
	}
	header := records[0]
	rows := records[1:]
	f := New()
	for j, name := range header {
		cells := make([]string, len(rows))
		for i, rec := range rows {
			if j < len(rec) {
				cells[i] = rec[j]
			}
		}
		if err := f.AddColumn(inferColumn(name, cells)); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// ReadCSVFile opens and parses the named CSV file.
func ReadCSVFile(path string) (*Frame, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return ReadCSV(fh)
}

// ReadCSVString parses CSV content held in a string.
func ReadCSVString(data string) (*Frame, error) {
	return ReadCSV(strings.NewReader(data))
}

func inferColumn(name string, cells []string) *Series {
	isInt, isFloat, isBool := true, true, true
	any := false
	for _, c := range cells {
		c = strings.TrimSpace(c)
		if c == "" {
			continue
		}
		any = true
		if _, err := strconv.ParseInt(c, 10, 64); err != nil {
			isInt = false
		}
		if _, err := strconv.ParseFloat(c, 64); err != nil {
			isFloat = false
		}
		lc := strings.ToLower(c)
		if lc != "true" && lc != "false" {
			isBool = false
		}
	}
	if !any {
		return NewEmptySeries(name, String, len(cells))
	}
	switch {
	case isInt:
		out := NewEmptySeries(name, Int, len(cells))
		for i, c := range cells {
			c = strings.TrimSpace(c)
			if c == "" {
				continue
			}
			v, _ := strconv.ParseInt(c, 10, 64)
			out.SetInt(i, v)
		}
		// Keep ints as Int only when no nulls; otherwise promote to Float so
		// nulls are representable as NaN (mirrors pandas int→float promotion).
		if out.NullCount() > 0 {
			return out.AsType(Float)
		}
		return out
	case isFloat:
		vals := make([]float64, len(cells))
		for i, c := range cells {
			c = strings.TrimSpace(c)
			if c == "" {
				vals[i] = math.NaN()
				continue
			}
			vals[i], _ = strconv.ParseFloat(c, 64)
		}
		return NewFloatSeries(name, vals)
	case isBool:
		out := NewEmptySeries(name, Bool, len(cells))
		for i, c := range cells {
			c = strings.ToLower(strings.TrimSpace(c))
			if c == "" {
				continue
			}
			out.SetBool(i, c == "true")
		}
		return out
	default:
		out := NewEmptySeries(name, String, len(cells))
		for i, c := range cells {
			if strings.TrimSpace(c) == "" {
				continue
			}
			out.SetString(i, c)
		}
		return out
	}
}

// WriteCSV serializes the frame as CSV with a header row. Nulls are written
// as empty cells. The row record is allocated once and reused — this runs
// over the full table for every OutputHash, so a per-row slice shows up.
func (f *Frame) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(f.ColumnNames()); err != nil {
		return err
	}
	rec := make([]string, f.NumCols())
	for i := 0; i < f.NumRows(); i++ {
		for j, c := range f.cols {
			if c.IsValid(i) {
				rec[j] = c.StringAt(i)
			} else {
				rec[j] = ""
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile serializes the frame to the named file.
func (f *Frame) WriteCSVFile(path string) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	return f.WriteCSV(fh)
}

// CSVString serializes the frame to a CSV string (for tests and fixtures).
func (f *Frame) CSVString() string {
	var b strings.Builder
	_ = f.WriteCSV(&b)
	return b.String()
}
