package frame

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// benchFrame builds an n-row mixed-type frame for operator benchmarks.
func benchFrame(b *testing.B, n int) *Frame {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	var sb strings.Builder
	sb.WriteString("num,cat,flag,price\n")
	cats := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < n; i++ {
		numCell := strconv.FormatFloat(rng.NormFloat64()*10, 'f', 3, 64)
		if rng.Float64() < 0.05 {
			numCell = "" // nulls for fillna paths
		}
		sb.WriteString(numCell)
		sb.WriteByte(',')
		sb.WriteString(cats[rng.Intn(len(cats))])
		sb.WriteByte(',')
		sb.WriteString(strconv.Itoa(rng.Intn(2)))
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatFloat(rng.Float64()*100, 'f', 2, 64))
		sb.WriteByte('\n')
	}
	f, err := ReadCSVString(sb.String())
	if err != nil {
		b.Fatal(err)
	}
	return f
}

func BenchmarkFillNAMean(b *testing.B) {
	f := benchFrame(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.FillNA(FillMean)
	}
}

func BenchmarkFilterMask(b *testing.B) {
	f := benchFrame(b, 10000)
	col, _ := f.Column("price")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := col.Compare(Gt, 50.0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Filter(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetDummies(b *testing.B) {
	f := benchFrame(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.GetDummies()
	}
}

func BenchmarkSortBy(b *testing.B) {
	f := benchFrame(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.SortBy("price", true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupByMean(b *testing.B) {
	f := benchFrame(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.GroupBy("cat", "price", AggMean); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMergeInner(b *testing.B) {
	left := benchFrame(b, 10000)
	key := NewEmptySeries("k", Int, left.NumRows())
	for i := 0; i < key.Len(); i++ {
		key.SetInt(i, int64(i%500))
	}
	_ = left.AddColumn(key)
	rightKeys := make([]int64, 500)
	names := make([]string, 500)
	for i := range rightKeys {
		rightKeys[i] = int64(i)
		names[i] = "name" + strconv.Itoa(i)
	}
	right, err := FromSeries(NewIntSeries("k", rightKeys), NewStringSeries("name", names))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Merge(left, right, "k", InnerJoin); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRowStrings(b *testing.B) {
	f := benchFrame(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.RowStrings()
	}
}
