package frame

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// benchFrame builds an n-row mixed-type frame for operator benchmarks.
func benchFrame(b *testing.B, n int) *Frame {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	var sb strings.Builder
	sb.WriteString("num,cat,flag,price\n")
	cats := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < n; i++ {
		numCell := strconv.FormatFloat(rng.NormFloat64()*10, 'f', 3, 64)
		if rng.Float64() < 0.05 {
			numCell = "" // nulls for fillna paths
		}
		sb.WriteString(numCell)
		sb.WriteByte(',')
		sb.WriteString(cats[rng.Intn(len(cats))])
		sb.WriteByte(',')
		sb.WriteString(strconv.Itoa(rng.Intn(2)))
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatFloat(rng.Float64()*100, 'f', 2, 64))
		sb.WriteByte('\n')
	}
	f, err := ReadCSVString(sb.String())
	if err != nil {
		b.Fatal(err)
	}
	return f
}

func BenchmarkFillNAMean(b *testing.B) {
	f := benchFrame(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.FillNA(FillMean)
	}
}

func BenchmarkFilterMask(b *testing.B) {
	f := benchFrame(b, 10000)
	col, _ := f.Column("price")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := col.Compare(Gt, 50.0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Filter(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetDummies(b *testing.B) {
	f := benchFrame(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.GetDummies()
	}
}

func BenchmarkSortBy(b *testing.B) {
	f := benchFrame(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.SortBy("price", true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupByMean(b *testing.B) {
	f := benchFrame(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.GroupBy("cat", "price", AggMean); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMergeInner(b *testing.B) {
	left := benchFrame(b, 10000)
	key := NewEmptySeries("k", Int, left.NumRows())
	for i := 0; i < key.Len(); i++ {
		key.SetInt(i, int64(i%500))
	}
	_ = left.AddColumn(key)
	rightKeys := make([]int64, 500)
	names := make([]string, 500)
	for i := range rightKeys {
		rightKeys[i] = int64(i)
		names[i] = "name" + strconv.Itoa(i)
	}
	right, err := FromSeries(NewIntSeries("k", rightKeys), NewStringSeries("name", names))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Merge(left, right, "k", InnerJoin); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRowStrings(b *testing.B) {
	f := benchFrame(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.RowStrings()
	}
}

func BenchmarkGather(b *testing.B) {
	f := benchFrame(b, 10000)
	// Half contiguous runs, half scattered: exercises both the bulk-copy
	// fast path and the fallback in gatherSlice.
	rng := rand.New(rand.NewSource(11))
	idx := make([]int, 0, f.NumRows())
	for i := 0; i < f.NumRows(); {
		if rng.Intn(2) == 0 {
			run := 1 + rng.Intn(64)
			for j := 0; j < run && i < f.NumRows(); j++ {
				idx = append(idx, i)
				i++
			}
		} else {
			idx = append(idx, rng.Intn(f.NumRows()))
			i++
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Take(idx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterChain(b *testing.B) {
	// The chained-combinator shape interp produces for
	// df[(a > x) & (b < y) | ~(c > z)], exercising the in-place mask ops.
	f := benchFrame(b, 10000)
	price, _ := f.Column("price")
	num, _ := f.Column("num")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m1, _ := price.Compare(Gt, 25.0)
		m2, _ := num.Compare(Lt, 5.0)
		m3, _ := price.Compare(Gt, 90.0)
		m := m1.AndInPlace(m2).OrInPlace(m3.NotInPlace())
		if _, err := f.Filter(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWithColumn(b *testing.B) {
	f := benchFrame(b, 10000)
	col := NewEmptySeries("derived", Float, f.NumRows())
	for i := 0; i < col.Len(); i++ {
		col.SetFloat(i, float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.WithColumn(col); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteCSV(b *testing.B) {
	f := benchFrame(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		if err := f.WriteCSV(&sb); err != nil {
			b.Fatal(err)
		}
	}
}
