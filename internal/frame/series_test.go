package frame

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) < 1e-9
}

func TestFloatSeriesBasics(t *testing.T) {
	s := NewFloatSeries("x", []float64{1, 2, math.NaN(), 4})
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if s.Kind() != Float {
		t.Fatalf("Kind = %v, want Float", s.Kind())
	}
	if s.NullCount() != 1 {
		t.Fatalf("NullCount = %d, want 1", s.NullCount())
	}
	if s.IsValid(2) {
		t.Fatal("row 2 should be null")
	}
	if !almostEq(s.Mean(), 7.0/3) {
		t.Fatalf("Mean = %v, want %v", s.Mean(), 7.0/3)
	}
	if !almostEq(s.Median(), 2) {
		t.Fatalf("Median = %v, want 2", s.Median())
	}
	if !almostEq(s.Min(), 1) || !almostEq(s.Max(), 4) {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if !almostEq(s.Sum(), 7) {
		t.Fatalf("Sum = %v, want 7", s.Sum())
	}
}

func TestMedianEvenCount(t *testing.T) {
	s := NewFloatSeries("x", []float64{4, 1, 3, 2})
	if !almostEq(s.Median(), 2.5) {
		t.Fatalf("Median = %v, want 2.5", s.Median())
	}
}

func TestEmptySeriesStats(t *testing.T) {
	s := NewEmptySeries("x", Float, 3)
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Median()) || !math.IsNaN(s.Min()) {
		t.Fatal("stats of all-null series should be NaN")
	}
	if _, ok := s.Mode(); ok {
		t.Fatal("Mode of all-null series should report !ok")
	}
}

func TestModeTieBreak(t *testing.T) {
	s := NewStringSeries("c", []string{"b", "a", "b", "a", "c"})
	m, ok := s.Mode()
	if !ok || m != "a" {
		t.Fatalf("Mode = %q (ok=%v), want a (lexicographic tie-break)", m, ok)
	}
}

func TestFillNAFloat(t *testing.T) {
	s := NewFloatSeries("x", []float64{1, math.NaN(), 3})
	filled := s.FillNAFloat(s.Mean())
	if filled.NullCount() != 0 {
		t.Fatal("FillNAFloat left nulls")
	}
	if !almostEq(filled.Float(1), 2) {
		t.Fatalf("filled value = %v, want 2", filled.Float(1))
	}
	// Original unchanged.
	if s.NullCount() != 1 {
		t.Fatal("FillNAFloat mutated receiver")
	}
}

func TestFillNAString(t *testing.T) {
	s := NewEmptySeries("e", String, 3)
	s.SetString(0, "S")
	filled := s.FillNAString("Q")
	if filled.StringAt(1) != "Q" || filled.StringAt(2) != "Q" {
		t.Fatalf("FillNAString = %q,%q want Q,Q", filled.StringAt(1), filled.StringAt(2))
	}
}

func TestStringOps(t *testing.T) {
	s := NewStringSeries("c", []string{" High Risk ", "BENIGN"})
	if got := s.Lower().StringAt(1); got != "benign" {
		t.Fatalf("Lower = %q", got)
	}
	if got := s.Upper().StringAt(1); got != "BENIGN" {
		t.Fatalf("Upper = %q", got)
	}
	if got := s.Strip().StringAt(0); got != "High Risk" {
		t.Fatalf("Strip = %q", got)
	}
	if got := s.ReplaceString(" ", "_").StringAt(0); got != "_High_Risk_" {
		t.Fatalf("Replace = %q", got)
	}
}

func TestMapValues(t *testing.T) {
	s := NewStringSeries("sex", []string{"male", "female", "male"})
	m := s.MapValues(map[string]string{"male": "0", "female": "1"})
	if m.Kind() != Int {
		t.Fatalf("mapped kind = %v, want Int after inference", m.Kind())
	}
	if m.Float(0) != 0 || m.Float(1) != 1 {
		t.Fatalf("mapped values wrong: %v %v", m.Float(0), m.Float(1))
	}
}

func TestMapValuesPreservesNull(t *testing.T) {
	s := NewEmptySeries("c", String, 2)
	s.SetString(0, "x")
	m := s.MapValues(map[string]string{"x": "y"})
	if m.IsValid(1) {
		t.Fatal("null should stay null through MapValues")
	}
	if m.StringAt(0) != "y" {
		t.Fatalf("mapped = %q, want y", m.StringAt(0))
	}
}

func TestAsType(t *testing.T) {
	s := NewStringSeries("x", []string{"1.5", "oops", "3"})
	f := s.AsType(Float)
	if !almostEq(f.Float(0), 1.5) {
		t.Fatalf("AsType(Float)[0] = %v", f.Float(0))
	}
	if f.IsValid(1) {
		t.Fatal("non-numeric string should become null")
	}
	i := s.AsType(Int)
	if i.Kind() != Int || i.Float(2) != 3 {
		t.Fatalf("AsType(Int) = kind %v val %v", i.Kind(), i.Float(2))
	}
	str := NewIntSeries("n", []int64{7}).AsType(String)
	if str.StringAt(0) != "7" {
		t.Fatalf("AsType(String) = %q", str.StringAt(0))
	}
}

func TestCompare(t *testing.T) {
	s := NewFloatSeries("age", []float64{15, 20, math.NaN(), 30})
	m, err := s.Compare(Ge, 18.0)
	if err != nil {
		t.Fatal(err)
	}
	want := Mask{false, true, false, true}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("Compare mask[%d] = %v, want %v", i, m[i], want[i])
		}
	}
}

func TestCompareStringEq(t *testing.T) {
	s := NewStringSeries("e", []string{"S", "C", "S"})
	m, err := s.Compare(Eq, "S")
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 2 {
		t.Fatalf("Eq count = %d, want 2", m.Count())
	}
}

func TestCompareIntValue(t *testing.T) {
	s := NewIntSeries("n", []int64{1, 5, 10})
	m, err := s.Compare(Lt, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 1 || !m[0] {
		t.Fatalf("Lt mask = %v", m)
	}
}

func TestCompareUnsupportedType(t *testing.T) {
	s := NewIntSeries("n", []int64{1})
	if _, err := s.Compare(Lt, struct{}{}); err == nil {
		t.Fatal("expected error for unsupported comparison type")
	}
}

func TestBetween(t *testing.T) {
	s := NewFloatSeries("age", []float64{17, 18, 25, 26, math.NaN()})
	m := s.Between(18, 25)
	want := Mask{false, true, true, false, false}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("Between[%d] = %v, want %v", i, m[i], want[i])
		}
	}
}

func TestIsInAndNulls(t *testing.T) {
	s := NewEmptySeries("c", String, 3)
	s.SetString(0, "a")
	s.SetString(2, "b")
	m := s.IsIn([]string{"a", "b"})
	if !m[0] || m[1] || !m[2] {
		t.Fatalf("IsIn mask = %v", m)
	}
	if s.IsNull().Count() != 1 || s.NotNull().Count() != 2 {
		t.Fatal("IsNull/NotNull counts wrong")
	}
}

func TestMaskCombinators(t *testing.T) {
	a := Mask{true, true, false}
	b := Mask{true, false, false}
	if and := a.And(b); and.Count() != 1 || !and[0] {
		t.Fatalf("And = %v", and)
	}
	if or := a.Or(b); or.Count() != 2 {
		t.Fatalf("Or = %v", or)
	}
	if not := a.Not(); not.Count() != 1 || !not[2] {
		t.Fatalf("Not = %v", not)
	}
}

func TestArith(t *testing.T) {
	a := NewFloatSeries("a", []float64{1, 2, 3})
	b := NewFloatSeries("b", []float64{10, 20, 30})
	sum, err := a.Arith(Add, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(sum.Float(2), 33) {
		t.Fatalf("Add = %v", sum.Float(2))
	}
	div, _ := a.Arith(Div, NewFloatSeries("z", []float64{0, 1, 1}))
	if div.IsValid(0) {
		t.Fatal("division by zero should be null")
	}
	if _, err := a.Arith(Add, NewFloatSeries("short", []float64{1})); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestArithStringConcat(t *testing.T) {
	a := NewStringSeries("a", []string{"x", "y"})
	b := NewStringSeries("b", []string{"1", "2"})
	c, err := a.Arith(Add, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.StringAt(0) != "x1" || c.StringAt(1) != "y2" {
		t.Fatalf("concat = %q,%q", c.StringAt(0), c.StringAt(1))
	}
}

func TestArithScalarAndUnary(t *testing.T) {
	a := NewFloatSeries("a", []float64{-1, 4})
	if got := a.ArithScalar(Mul, 2).Float(1); !almostEq(got, 8) {
		t.Fatalf("ArithScalar = %v", got)
	}
	if got := a.Abs().Float(0); !almostEq(got, 1) {
		t.Fatalf("Abs = %v", got)
	}
	if got := a.Clip(0, 3).Float(1); !almostEq(got, 3) {
		t.Fatalf("Clip = %v", got)
	}
	if got := NewFloatSeries("x", []float64{math.E - 1}).Log1p().Float(0); !almostEq(got, 1) {
		t.Fatalf("Log1p = %v", got)
	}
	if got := NewFloatSeries("x", []float64{2.5}).Round().Float(0); !almostEq(got, 3) {
		t.Fatalf("Round = %v", got)
	}
}

func TestScaling(t *testing.T) {
	s := NewFloatSeries("x", []float64{0, 5, 10})
	mm := s.MinMaxScale()
	if !almostEq(mm.Float(0), 0) || !almostEq(mm.Float(1), 0.5) || !almostEq(mm.Float(2), 1) {
		t.Fatalf("MinMaxScale = %v %v %v", mm.Float(0), mm.Float(1), mm.Float(2))
	}
	ss := s.StandardScale()
	if !almostEq(ss.Float(1), 0) {
		t.Fatalf("StandardScale mid = %v, want 0", ss.Float(1))
	}
	// Constant series.
	c := NewFloatSeries("c", []float64{3, 3}).MinMaxScale()
	if !almostEq(c.Float(0), 0) {
		t.Fatal("constant MinMaxScale should yield 0")
	}
}

func TestGather(t *testing.T) {
	s := NewFloatSeries("x", []float64{10, math.NaN(), 30})
	g := s.Gather([]int{2, 1})
	if !almostEq(g.Float(0), 30) || g.IsValid(1) {
		t.Fatalf("Gather wrong: %v valid=%v", g.Float(0), g.IsValid(1))
	}
}

func TestUniqueAndValueCounts(t *testing.T) {
	s := NewStringSeries("c", []string{"b", "a", "b"})
	u := s.Unique()
	if len(u) != 2 || u[0] != "a" || u[1] != "b" {
		t.Fatalf("Unique = %v", u)
	}
	vc := s.ValueCounts()
	if vc["b"] != 2 || vc["a"] != 1 {
		t.Fatalf("ValueCounts = %v", vc)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Float: "float", Int: "int", String: "string", Bool: "bool"} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

// Property: MinMaxScale output is always within [0,1] for valid entries.
func TestMinMaxScaleRangeProperty(t *testing.T) {
	f := func(vals []float64) bool {
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := NewFloatSeries("x", clean).MinMaxScale()
		for i := 0; i < s.Len(); i++ {
			v := s.Float(i)
			if v < -1e-9 || v > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: FillNAFloat never leaves nulls and never changes valid values.
func TestFillNAProperty(t *testing.T) {
	f := func(vals []float64, fill float64) bool {
		if math.IsNaN(fill) {
			fill = 0
		}
		s := NewFloatSeries("x", vals)
		filled := s.FillNAFloat(fill)
		if filled.NullCount() != 0 {
			return false
		}
		for i := 0; i < s.Len(); i++ {
			if s.IsValid(i) && filled.Float(i) != s.Float(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mask combinators obey De Morgan's law.
func TestMaskDeMorganProperty(t *testing.T) {
	f := func(a, b []bool) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		x, y := Mask(a[:n]), Mask(b[:n])
		lhs := x.And(y).Not()
		rhs := x.Not().Or(y.Not())
		for i := 0; i < n; i++ {
			if lhs[i] != rhs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
