package frame

import (
	"testing"
)

func TestMergeInner(t *testing.T) {
	left := mustCSVt(t, "item_id,qty\n1,10\n2,20\n3,30\n")
	right := mustCSVt(t, "item_id,name\n1,apple\n3,pear\n9,ghost\n")
	out, err := Merge(left, right, "item_id", InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", out.NumRows())
	}
	name, _ := out.Column("name")
	if name.StringAt(0) != "apple" || name.StringAt(1) != "pear" {
		t.Fatalf("joined names = %q %q", name.StringAt(0), name.StringAt(1))
	}
	if out.HasColumn("item_id_y") {
		t.Fatal("key column should not duplicate")
	}
}

func TestMergeLeft(t *testing.T) {
	left := mustCSVt(t, "k,v\n1,a\n2,b\n")
	right := mustCSVt(t, "k,w\n1,x\n")
	out, err := Merge(left, right, "k", LeftJoin)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	w, _ := out.Column("w")
	if !w.IsValid(0) || w.IsValid(1) {
		t.Fatal("unmatched left row should get null")
	}
}

func TestMergeFirstMatchWins(t *testing.T) {
	left := mustCSVt(t, "k\n1\n")
	right := mustCSVt(t, "k,w\n1,first\n1,second\n")
	out, err := Merge(left, right, "k", InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := out.Column("w")
	if out.NumRows() != 1 || w.StringAt(0) != "first" {
		t.Fatalf("merge = %d rows, w=%q", out.NumRows(), w.StringAt(0))
	}
}

func TestMergeColumnCollision(t *testing.T) {
	left := mustCSVt(t, "k,v\n1,a\n")
	right := mustCSVt(t, "k,v\n1,b\n")
	out, err := Merge(left, right, "k", InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	if !out.HasColumn("v") || !out.HasColumn("v_y") {
		t.Fatalf("columns = %v", out.ColumnNames())
	}
}

func TestMergeMissingKey(t *testing.T) {
	left := mustCSVt(t, "k\n1\n")
	right := mustCSVt(t, "x\n1\n")
	if _, err := Merge(left, right, "k", InnerJoin); err == nil {
		t.Fatal("missing right key should error")
	}
	if _, err := Merge(right, left, "k", InnerJoin); err == nil {
		t.Fatal("missing left key should error")
	}
}

func TestMergeNullKeys(t *testing.T) {
	left := mustCSVt(t, "k,v\n1,a\n,b\n")
	right := mustCSVt(t, "k,w\n1,x\n")
	inner, _ := Merge(left, right, "k", InnerJoin)
	if inner.NumRows() != 1 {
		t.Fatalf("null keys must not match: %d rows", inner.NumRows())
	}
	lj, _ := Merge(left, right, "k", LeftJoin)
	if lj.NumRows() != 2 {
		t.Fatalf("left join keeps null-key rows: %d rows", lj.NumRows())
	}
}

func TestConcat(t *testing.T) {
	a := mustCSVt(t, "x,y\n1,2\n3,4\n")
	b := mustCSVt(t, "x,z\n5,9\n")
	out, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 || out.NumCols() != 3 {
		t.Fatalf("shape = %dx%d", out.NumRows(), out.NumCols())
	}
	y, _ := out.Column("y")
	if y.IsValid(2) {
		t.Fatal("missing column cells should be null")
	}
	z, _ := out.Column("z")
	if !z.IsValid(2) || z.Float(2) != 9 {
		t.Fatal("concat lost values")
	}
}

func TestConcatEmpty(t *testing.T) {
	out, err := Concat()
	if err != nil || out.NumRows() != 0 {
		t.Fatal("empty concat")
	}
}

func TestJoinKindString(t *testing.T) {
	if InnerJoin.String() != "inner" || LeftJoin.String() != "left" {
		t.Fatal("join kind names")
	}
}

func mustCSVt(t *testing.T, s string) *Frame {
	t.Helper()
	f, err := ReadCSVString(s)
	if err != nil {
		t.Fatal(err)
	}
	return f
}
