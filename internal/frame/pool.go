package frame

import "sync"

// idxPool recycles row-index scratch slices. A beam-search candidate
// executes thousands of filter/head/dropna calls per standardization, each
// of which needs a transient []int of gather positions; pooling keeps those
// allocations out of the steady state. A slice may be returned to the pool
// only by the operation that allocated it, after the gather that consumes
// it has returned — Series.Gather never retains its index argument.
var idxPool = sync.Pool{New: func() interface{} { return new([]int) }}

// getIdx returns an empty index scratch slice with capacity for n entries.
func getIdx(n int) *[]int {
	p := idxPool.Get().(*[]int)
	if cap(*p) < n {
		*p = make([]int, 0, n)
	}
	*p = (*p)[:0]
	return p
}

// putIdx returns a scratch slice obtained from getIdx to the pool.
func putIdx(p *[]int) { idxPool.Put(p) }
