package frame

import (
	"math"
	"strings"
	"testing"
)

func sampleFrame(t *testing.T) *Frame {
	t.Helper()
	f, err := ReadCSVString(`Age,Sex,Fare,Survived
22,male,7.25,0
38,female,71.28,1
,female,8.05,1
35,male,,0
`)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestReadCSVInference(t *testing.T) {
	f := sampleFrame(t)
	if f.NumRows() != 4 || f.NumCols() != 4 {
		t.Fatalf("shape = %dx%d", f.NumRows(), f.NumCols())
	}
	age, _ := f.Column("Age")
	if age.Kind() != Float {
		t.Fatalf("Age kind = %v, want Float (has nulls)", age.Kind())
	}
	if age.NullCount() != 1 {
		t.Fatalf("Age nulls = %d", age.NullCount())
	}
	sex, _ := f.Column("Sex")
	if sex.Kind() != String {
		t.Fatalf("Sex kind = %v", sex.Kind())
	}
	surv, _ := f.Column("Survived")
	if surv.Kind() != Int {
		t.Fatalf("Survived kind = %v, want Int (no nulls)", surv.Kind())
	}
}

func TestReadCSVBoolAndEmpty(t *testing.T) {
	f, err := ReadCSVString("flag,empty\ntrue,\nfalse,\n")
	if err != nil {
		t.Fatal(err)
	}
	fl, _ := f.Column("flag")
	if fl.Kind() != Bool || !fl.BoolAt(0) || fl.BoolAt(1) {
		t.Fatalf("bool column wrong: kind=%v", fl.Kind())
	}
	e, _ := f.Column("empty")
	if e.NullCount() != 2 {
		t.Fatal("all-empty column should be all null")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSVString(""); err == nil {
		t.Fatal("empty csv should error")
	}
	if _, err := ReadCSVString("a,b\n1"); err == nil {
		t.Fatal("ragged csv should error")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := sampleFrame(t)
	out := f.CSVString()
	g, err := ReadCSVString(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != f.NumRows() || g.NumCols() != f.NumCols() {
		t.Fatalf("round trip shape mismatch: %dx%d", g.NumRows(), g.NumCols())
	}
	for i := 0; i < f.NumRows(); i++ {
		if f.RowString(i) != g.RowString(i) {
			t.Fatalf("row %d differs:\n%s\n%s", i, f.RowString(i), g.RowString(i))
		}
	}
}

func TestAddColumnErrors(t *testing.T) {
	f := sampleFrame(t)
	if err := f.AddColumn(NewIntSeries("Age", []int64{1, 2, 3, 4})); err == nil {
		t.Fatal("duplicate column should error")
	}
	if err := f.AddColumn(NewIntSeries("Short", []int64{1})); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestSetColumnReplaces(t *testing.T) {
	f := sampleFrame(t)
	if err := f.SetColumn(NewIntSeries("Age", []int64{1, 2, 3, 4})); err != nil {
		t.Fatal(err)
	}
	age, _ := f.Column("Age")
	if age.Kind() != Int {
		t.Fatal("SetColumn did not replace")
	}
	if f.NumCols() != 4 {
		t.Fatal("SetColumn should not add a new column")
	}
}

func TestDropSelectRename(t *testing.T) {
	f := sampleFrame(t)
	d, err := f.Drop("Sex", "Fare")
	if err != nil {
		t.Fatal(err)
	}
	if d.NumCols() != 2 || d.HasColumn("Sex") {
		t.Fatalf("Drop left %v", d.ColumnNames())
	}
	if _, err := f.Drop("Nope"); err == nil {
		t.Fatal("dropping missing column should error")
	}
	s, err := f.Select("Fare", "Age")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ColumnNames(); got[0] != "Fare" || got[1] != "Age" {
		t.Fatalf("Select order = %v", got)
	}
	r, err := f.RenameColumn("Sex", "Gender")
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasColumn("Gender") || r.HasColumn("Sex") {
		t.Fatal("rename failed")
	}
	if _, err := f.RenameColumn("Nope", "X"); err == nil {
		t.Fatal("renaming missing column should error")
	}
}

func TestFilter(t *testing.T) {
	f := sampleFrame(t)
	age, _ := f.Column("Age")
	m, _ := age.Compare(Gt, 30.0)
	g, err := f.Filter(m)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != 2 {
		t.Fatalf("filtered rows = %d, want 2", g.NumRows())
	}
	if _, err := f.Filter(Mask{true}); err == nil {
		t.Fatal("mask length mismatch should error")
	}
}

func TestHeadAndSample(t *testing.T) {
	f := sampleFrame(t)
	if f.Head(2).NumRows() != 2 {
		t.Fatal("Head(2)")
	}
	if f.Head(100).NumRows() != 4 {
		t.Fatal("Head over-length should clamp")
	}
	s1 := f.Sample(2, 42)
	s2 := f.Sample(2, 42)
	if s1.NumRows() != 2 {
		t.Fatal("Sample size")
	}
	for i := 0; i < 2; i++ {
		if s1.RowString(i) != s2.RowString(i) {
			t.Fatal("Sample with same seed should be deterministic")
		}
	}
}

func TestDropNA(t *testing.T) {
	f := sampleFrame(t)
	g := f.DropNA()
	if g.NumRows() != 2 {
		t.Fatalf("DropNA rows = %d, want 2", g.NumRows())
	}
}

func TestFillNAFrame(t *testing.T) {
	f := sampleFrame(t)
	mean := f.FillNA(FillMean)
	age, _ := mean.Column("Age")
	if age.NullCount() != 0 {
		t.Fatal("FillMean left nulls in Age")
	}
	if !almostEq(age.Float(2), (22.0+38+35)/3) {
		t.Fatalf("mean fill = %v", age.Float(2))
	}
	med := f.FillNA(FillMedian)
	fare, _ := med.Column("Fare")
	if !almostEq(fare.Float(3), 8.05) {
		t.Fatalf("median fill = %v", fare.Float(3))
	}
	z := f.FillNA(FillZero)
	age2, _ := z.Column("Age")
	if !almostEq(age2.Float(2), 0) {
		t.Fatal("zero fill")
	}
}

func TestFillNAModeFillsStrings(t *testing.T) {
	f, _ := ReadCSVString("e,x\nS,1\nS,2\n,3\nC,4\n")
	g := f.FillNA(FillMode)
	e, _ := g.Column("e")
	if e.NullCount() != 0 || e.StringAt(2) != "S" {
		t.Fatalf("mode fill = %q nulls=%d", e.StringAt(2), e.NullCount())
	}
	// Mean fill must NOT touch string columns.
	h := f.FillNA(FillMean)
	e2, _ := h.Column("e")
	if e2.NullCount() != 1 {
		t.Fatal("mean fill should leave string nulls")
	}
}

func TestGetDummies(t *testing.T) {
	f := sampleFrame(t)
	g := f.GetDummies()
	if g.HasColumn("Sex") {
		t.Fatal("source column should be removed")
	}
	if !g.HasColumn("Sex_male") || !g.HasColumn("Sex_female") {
		t.Fatalf("dummies missing: %v", g.ColumnNames())
	}
	male, _ := g.Column("Sex_male")
	if male.Float(0) != 1 || male.Float(1) != 0 {
		t.Fatal("dummy values wrong")
	}
	// Numeric columns untouched.
	if !g.HasColumn("Age") {
		t.Fatal("numeric column dropped")
	}
}

func TestSortBy(t *testing.T) {
	f := sampleFrame(t)
	asc, err := f.SortBy("Age", true)
	if err != nil {
		t.Fatal(err)
	}
	age, _ := asc.Column("Age")
	if !almostEq(age.Float(0), 22) {
		t.Fatalf("sorted first = %v", age.Float(0))
	}
	if age.IsValid(3) {
		t.Fatal("nulls should sort last")
	}
	desc, _ := f.SortBy("Age", false)
	aged, _ := desc.Column("Age")
	if !almostEq(aged.Float(0), 38) {
		t.Fatalf("desc first = %v", aged.Float(0))
	}
	if _, err := f.SortBy("Nope", true); err == nil {
		t.Fatal("sorting missing column should error")
	}
}

func TestGroupBy(t *testing.T) {
	f := sampleFrame(t)
	g, err := f.GroupBy("Sex", "Fare", AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != 2 {
		t.Fatalf("groups = %d", g.NumRows())
	}
	sex, _ := g.Column("Sex")
	fare, _ := g.Column("Fare")
	for i := 0; i < 2; i++ {
		if sex.StringAt(i) == "female" && !almostEq(fare.Float(i), (71.28+8.05)/2) {
			t.Fatalf("female mean fare = %v", fare.Float(i))
		}
	}
	cnt, _ := f.GroupBy("Sex", "Fare", AggCount)
	cf, _ := cnt.Column("Fare")
	if !almostEq(cf.Float(0)+cf.Float(1), 4) {
		t.Fatal("counts should total rows")
	}
	if _, err := f.GroupBy("Nope", "Fare", AggSum); err == nil {
		t.Fatal("missing key should error")
	}
}

func TestRowStringOrderInsensitive(t *testing.T) {
	a, _ := ReadCSVString("x,y\n1,2\n")
	b, _ := ReadCSVString("y,x\n2,1\n")
	if a.RowString(0) != b.RowString(0) {
		t.Fatalf("RowString should be column-order insensitive:\n%s\n%s", a.RowString(0), b.RowString(0))
	}
}

func TestNumericMatrix(t *testing.T) {
	f := sampleFrame(t)
	m, names := f.NumericMatrix("Survived")
	if len(m) != 4 {
		t.Fatalf("rows = %d", len(m))
	}
	for _, n := range names {
		if n == "Survived" || n == "Sex" {
			t.Fatalf("matrix should exclude %q", n)
		}
	}
	// Null Age becomes 0.
	if m[2][0] != 0 {
		t.Fatalf("null should map to 0, got %v", m[2][0])
	}
}

func TestCloneIndependence(t *testing.T) {
	// Clone shares column storage but is structurally independent: swapping
	// a column in the clone must not affect the original.
	f := sampleFrame(t)
	g := f.Clone()
	age, _ := g.Column("Age")
	orig, _ := f.Column("Age")
	if age != orig {
		t.Fatal("Clone should share column storage")
	}
	repl := age.Clone()
	repl.SetFloat(0, 99)
	if err := g.SetColumn(repl); err != nil {
		t.Fatal(err)
	}
	if almostEq(orig.Float(0), 99) {
		t.Fatal("replacing a column in a clone should not touch the original")
	}
	// DeepClone preserves the old cell-level independence.
	h := f.DeepClone()
	hAge, _ := h.Column("Age")
	hAge.SetFloat(0, 99)
	if almostEq(orig.Float(0), 99) {
		t.Fatal("DeepClone should deep-copy")
	}
}

func TestFrameString(t *testing.T) {
	f := sampleFrame(t)
	s := f.String()
	if !strings.Contains(s, "4 rows x 4 cols") || !strings.Contains(s, "NaN") {
		t.Fatalf("String() = %q", s)
	}
}

func TestColumnErrors(t *testing.T) {
	f := sampleFrame(t)
	if _, err := f.Column("Nope"); err == nil {
		t.Fatal("missing column should error")
	}
	if _, err := f.Select("Nope"); err == nil {
		t.Fatal("Select missing should error")
	}
}

func TestFromSeriesError(t *testing.T) {
	if _, err := FromSeries(NewIntSeries("a", []int64{1}), NewIntSeries("b", []int64{1, 2})); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestFloatConversions(t *testing.T) {
	b := NewBoolSeries("b", []bool{true, false})
	if b.Float(0) != 1 || b.Float(1) != 0 {
		t.Fatal("bool Float conversion")
	}
	s := NewStringSeries("s", []string{"2.5", "x"})
	if !almostEq(s.Float(0), 2.5) || !math.IsNaN(s.Float(1)) {
		t.Fatal("string Float conversion")
	}
	if !b.BoolAt(0) || b.BoolAt(1) {
		t.Fatal("BoolAt")
	}
}

func TestDescribe(t *testing.T) {
	f := sampleFrame(t)
	d := f.Describe()
	if !d.HasColumn("stat") || !d.HasColumn("Age") || d.HasColumn("Sex") {
		t.Fatalf("describe columns = %v", d.ColumnNames())
	}
	if d.NumRows() != 6 {
		t.Fatalf("describe rows = %d", d.NumRows())
	}
	age, _ := d.Column("Age")
	if !almostEq(age.Float(0), 3) { // count of non-null Ages
		t.Fatalf("count = %v", age.Float(0))
	}
}
