package frame

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Frame is an ordered collection of equal-length named series.
type Frame struct {
	cols  []*Series
	index map[string]int
}

// New returns an empty frame.
func New() *Frame {
	return &Frame{index: map[string]int{}}
}

// FromSeries builds a frame from the given columns, which must share a length.
func FromSeries(cols ...*Series) (*Frame, error) {
	f := New()
	for _, c := range cols {
		if err := f.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// NumRows returns the row count (0 for an empty frame).
func (f *Frame) NumRows() int {
	if len(f.cols) == 0 {
		return 0
	}
	return f.cols[0].Len()
}

// NumCols returns the column count.
func (f *Frame) NumCols() int { return len(f.cols) }

// ColumnNames returns the column names in order.
func (f *Frame) ColumnNames() []string {
	names := make([]string, len(f.cols))
	for i, c := range f.cols {
		names[i] = c.name
	}
	return names
}

// HasColumn reports whether a column with the given name exists.
func (f *Frame) HasColumn(name string) bool {
	_, ok := f.index[name]
	return ok
}

// Column returns the named column.
func (f *Frame) Column(name string) (*Series, error) {
	i, ok := f.index[name]
	if !ok {
		return nil, fmt.Errorf("frame: no column %q", name)
	}
	return f.cols[i], nil
}

// ColumnAt returns the column at position i.
func (f *Frame) ColumnAt(i int) *Series { return f.cols[i] }

// AddColumn appends a column; its length must match existing columns.
func (f *Frame) AddColumn(s *Series) error {
	if len(f.cols) > 0 && s.Len() != f.NumRows() {
		return fmt.Errorf("frame: column %q has %d rows, frame has %d", s.name, s.Len(), f.NumRows())
	}
	if _, ok := f.index[s.name]; ok {
		return fmt.Errorf("frame: duplicate column %q", s.name)
	}
	f.index[s.name] = len(f.cols)
	f.cols = append(f.cols, s)
	return nil
}

// SetColumn adds the column or replaces an existing column of the same name.
func (f *Frame) SetColumn(s *Series) error {
	if i, ok := f.index[s.name]; ok {
		if s.Len() != f.NumRows() {
			return fmt.Errorf("frame: column %q has %d rows, frame has %d", s.name, s.Len(), f.NumRows())
		}
		f.cols[i] = s
		return nil
	}
	return f.AddColumn(s)
}

// WithColumn returns a new frame with the column set or appended, sharing
// every other column with the receiver. It is the functional counterpart of
// SetColumn: the receiver is not modified, so frames captured by forked
// interpreter environments (internal/interp's prefix cache) stay valid.
func (f *Frame) WithColumn(s *Series) (*Frame, error) {
	if len(f.cols) > 0 && s.Len() != f.NumRows() {
		return nil, fmt.Errorf("frame: column %q has %d rows, frame has %d", s.name, s.Len(), f.NumRows())
	}
	out := &Frame{
		cols:  make([]*Series, len(f.cols), len(f.cols)+1),
		index: make(map[string]int, len(f.index)+1),
	}
	copy(out.cols, f.cols)
	for name, i := range f.index {
		out.index[name] = i
	}
	if i, ok := out.index[s.name]; ok {
		out.cols[i] = s
	} else {
		out.index[s.name] = len(out.cols)
		out.cols = append(out.cols, s)
	}
	return out, nil
}

// Clone returns a copy of the frame that shares every column with the
// receiver. Sharing is safe under the engine's immutability contract
// (DESIGN.md §9): a *Series reachable from a frame is never written in
// place — operations that change cells allocate a fresh column first — so a
// shared column can never change under either frame. The copy owns its
// column slice and name index, so structural edits (AddColumn, SetColumn)
// on one frame never affect the other. Use DeepClone for an owned copy
// whose cells may be mutated.
func (f *Frame) Clone() *Frame {
	out := &Frame{
		cols:  append([]*Series(nil), f.cols...),
		index: make(map[string]int, len(f.index)),
	}
	for name, i := range f.index {
		out.index[name] = i
	}
	return out
}

// DeepClone returns a copy whose columns are themselves deep copies: the
// pre-structural-sharing Clone semantics, for callers that need to write
// cells into the result (and for tests that snapshot frame state).
func (f *Frame) DeepClone() *Frame {
	out := New()
	for _, c := range f.cols {
		_ = out.AddColumn(c.Clone())
	}
	return out
}

// Drop returns a copy without the named columns, sharing the kept columns
// with the receiver. Unknown names are an error.
func (f *Frame) Drop(names ...string) (*Frame, error) {
	dropSet := map[string]bool{}
	for _, n := range names {
		if !f.HasColumn(n) {
			return nil, fmt.Errorf("frame: cannot drop missing column %q", n)
		}
		dropSet[n] = true
	}
	out := New()
	for _, c := range f.cols {
		if !dropSet[c.name] {
			_ = out.AddColumn(c)
		}
	}
	return out, nil
}

// Select returns a copy with only the named columns, in the given order,
// sharing them with the receiver.
func (f *Frame) Select(names ...string) (*Frame, error) {
	out := New()
	for _, n := range names {
		c, err := f.Column(n)
		if err != nil {
			return nil, err
		}
		if err := out.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RenameColumn returns a copy with column old renamed to new; every other
// column is shared with the receiver, and the renamed column shares its
// backing storage (Series.Rename is a shallow copy).
func (f *Frame) RenameColumn(old, new string) (*Frame, error) {
	if !f.HasColumn(old) {
		return nil, fmt.Errorf("frame: cannot rename missing column %q", old)
	}
	out := New()
	for _, c := range f.cols {
		if c.name == old {
			c = c.Rename(new)
		}
		if err := out.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Filter returns the rows where the mask is true.
func (f *Frame) Filter(m Mask) (*Frame, error) {
	if len(m) != f.NumRows() {
		return nil, fmt.Errorf("frame: mask length %d != rows %d", len(m), f.NumRows())
	}
	p := getIdx(len(m))
	idx := *p
	for i, keep := range m {
		if keep {
			idx = append(idx, i)
		}
	}
	out := f.gather(idx)
	*p = idx
	putIdx(p)
	return out, nil
}

// Take returns a new frame holding the rows at the given positions, in order.
func (f *Frame) Take(idx []int) (*Frame, error) {
	rows := f.NumRows()
	for _, i := range idx {
		if i < 0 || i >= rows {
			return nil, fmt.Errorf("frame: take position %d out of range [0,%d)", i, rows)
		}
	}
	return f.gather(idx), nil
}

func (f *Frame) gather(idx []int) *Frame {
	out := New()
	for _, c := range f.cols {
		_ = out.AddColumn(c.Gather(idx))
	}
	return out
}

// Head returns the first n rows (all rows when n exceeds the row count).
func (f *Frame) Head(n int) *Frame {
	if n > f.NumRows() {
		n = f.NumRows()
	}
	p := getIdx(n)
	idx := (*p)[:n]
	for i := range idx {
		idx[i] = i
	}
	out := f.gather(idx)
	*p = idx
	putIdx(p)
	return out
}

// Sample returns n rows drawn without replacement using the given seed.
// When n exceeds the row count all rows are returned (shuffled).
func (f *Frame) Sample(n int, seed int64) *Frame {
	rows := f.NumRows()
	if n > rows {
		n = rows
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(rows)
	idx := perm[:n]
	sort.Ints(idx)
	return f.gather(idx)
}

// DropNA returns a copy keeping only rows with no nulls in any column.
func (f *Frame) DropNA() *Frame {
	rows := f.NumRows()
	p := getIdx(rows)
	idx := *p
	for i := 0; i < rows; i++ {
		ok := true
		for _, c := range f.cols {
			if !c.valid[i] {
				ok = false
				break
			}
		}
		if ok {
			idx = append(idx, i)
		}
	}
	out := f.gather(idx)
	*p = idx
	putIdx(p)
	return out
}

// FillStat selects the per-column imputation statistic for FillNA.
type FillStat int

// Imputation statistics.
const (
	FillMean FillStat = iota
	FillMedian
	FillMode
	FillZero
)

// FillNA returns a copy where nulls in each column are replaced by the
// per-column statistic; untouched columns are shared with the receiver.
// Non-numeric columns use the mode regardless of stat (matching pandas'
// df.fillna(df.mean()) leaving strings untouched, we fill string columns
// only when stat is FillMode).
func (f *Frame) FillNA(stat FillStat) *Frame {
	out := New()
	for _, c := range f.cols {
		switch {
		case c.IsNumeric() || c.Kind() == Bool:
			var v float64
			switch stat {
			case FillMean:
				v = c.Mean()
			case FillMedian:
				v = c.Median()
			case FillMode:
				if m, ok := c.Mode(); ok {
					_ = out.AddColumn(c.FillNAString(m))
					continue
				}
				v = math.NaN()
			case FillZero:
				v = 0
			}
			if math.IsNaN(v) {
				_ = out.AddColumn(c)
			} else {
				_ = out.AddColumn(c.FillNAFloat(v))
			}
		case stat == FillMode:
			if m, ok := c.Mode(); ok {
				_ = out.AddColumn(c.FillNAString(m))
			} else {
				_ = out.AddColumn(c)
			}
		default:
			_ = out.AddColumn(c)
		}
	}
	return out
}

// GetDummies one-hot encodes every string column (pandas pd.get_dummies):
// each distinct value v of column C becomes an int column "C_v"; the source
// column is removed. Numeric and bool columns pass through shared with the
// receiver. Null rows get 0 in every dummy column.
func (f *Frame) GetDummies() *Frame {
	out := New()
	for _, c := range f.cols {
		if c.Kind() != String {
			_ = out.AddColumn(c)
			continue
		}
		for _, v := range c.Unique() {
			d := &Series{name: c.name + "_" + v, kind: Int,
				is: make([]int64, c.Len()), valid: make([]bool, c.Len())}
			for i, ok := range c.valid {
				d.valid[i] = true
				if ok && c.ss[i] == v {
					d.is[i] = 1
				}
			}
			_ = out.AddColumn(d)
		}
	}
	return out
}

// SortBy returns a copy sorted by the named column (stable).
func (f *Frame) SortBy(name string, ascending bool) (*Frame, error) {
	c, err := f.Column(name)
	if err != nil {
		return nil, err
	}
	idx := make([]int, f.NumRows())
	for i := range idx {
		idx[i] = i
	}
	less := func(a, b int) bool {
		if c.IsNumeric() || c.Kind() == Bool {
			return c.Float(a) < c.Float(b)
		}
		return c.StringAt(a) < c.StringAt(b)
	}
	sort.SliceStable(idx, func(i, j int) bool {
		a, b := idx[i], idx[j]
		av, bv := c.IsValid(a), c.IsValid(b)
		if av != bv {
			return av // nulls sort last regardless of direction
		}
		if !av {
			return false
		}
		if ascending {
			return less(a, b)
		}
		return less(b, a)
	})
	return f.gather(idx), nil
}

// GroupAgg identifies the aggregate applied by GroupBy.
type GroupAgg int

// Aggregations supported by GroupBy.
const (
	AggMean GroupAgg = iota
	AggSum
	AggCount
)

// GroupBy groups rows by the key column and aggregates the value column.
// The result has two columns: the key (string rendering) and the aggregate.
func (f *Frame) GroupBy(key, value string, agg GroupAgg) (*Frame, error) {
	kc, err := f.Column(key)
	if err != nil {
		return nil, err
	}
	vc, err := f.Column(value)
	if err != nil {
		return nil, err
	}
	sums := map[string]float64{}
	counts := map[string]int{}
	var order []string
	for i := 0; i < f.NumRows(); i++ {
		if !kc.IsValid(i) {
			continue
		}
		k := kc.StringAt(i)
		if _, seen := counts[k]; !seen {
			order = append(order, k)
		}
		counts[k]++
		v := vc.Float(i)
		if !math.IsNaN(v) {
			sums[k] += v
		}
	}
	sort.Strings(order)
	keys := make([]string, len(order))
	vals := make([]float64, len(order))
	for i, k := range order {
		keys[i] = k
		switch agg {
		case AggMean:
			if counts[k] > 0 {
				vals[i] = sums[k] / float64(counts[k])
			}
		case AggSum:
			vals[i] = sums[k]
		case AggCount:
			vals[i] = float64(counts[k])
		}
	}
	return FromSeries(NewStringSeries(key, keys), NewFloatSeries(value, vals))
}

// Describe returns summary statistics of the numeric columns, one row per
// statistic (count, mean, std, min, 50%, max) with a leading "stat" column
// — a compact analogue of pandas df.describe().
func (f *Frame) Describe() *Frame {
	stats := []string{"count", "mean", "std", "min", "50%", "max"}
	out := New()
	_ = out.AddColumn(NewStringSeries("stat", stats))
	for _, c := range f.cols {
		if !c.IsNumeric() && c.Kind() != Bool {
			continue
		}
		vals := []float64{
			float64(c.Len() - c.NullCount()),
			c.Mean(), c.Std(), c.Min(), c.Median(), c.Max(),
		}
		_ = out.AddColumn(NewFloatSeries(c.name, vals))
	}
	return out
}

// sortedCols returns the columns ordered by name, the canonical order
// RowString renders in.
func (f *Frame) sortedCols() []*Series {
	cols := make([]*Series, len(f.cols))
	copy(cols, f.cols)
	sort.Slice(cols, func(i, j int) bool { return cols[i].name < cols[j].name })
	return cols
}

// appendRow appends row i rendered through the given column order:
// name=value cells joined by tabs, nulls as "<null>".
func appendRow(buf []byte, cols []*Series, i int) []byte {
	for j, c := range cols {
		if j > 0 {
			buf = append(buf, '\t')
		}
		buf = append(buf, c.name...)
		buf = append(buf, '=')
		if c.valid[i] {
			buf = c.appendCell(buf, i)
		} else {
			buf = append(buf, "<null>"...)
		}
	}
	return buf
}

// RowString renders row i as a canonical tab-joined string across columns
// (used by the table Jaccard measure). Column order follows sorted names so
// scripts that merely reorder columns compare equal.
func (f *Frame) RowString(i int) string {
	return string(appendRow(nil, f.sortedCols(), i))
}

// RowStrings renders every row via RowString, hoisting the column sort and
// reusing one render buffer across rows — this feeds the Jaccard row-count
// maps on every candidate verification, so the per-row name sort that used
// to dominate it matters.
func (f *Frame) RowStrings() []string {
	cols := f.sortedCols()
	out := make([]string, f.NumRows())
	var buf []byte
	for i := range out {
		buf = appendRow(buf[:0], cols, i)
		out[i] = string(buf)
	}
	return out
}

// String renders a short preview of the frame (up to 10 rows) for debugging.
func (f *Frame) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Frame[%d rows x %d cols]\n", f.NumRows(), f.NumCols())
	b.WriteString(strings.Join(f.ColumnNames(), "\t"))
	b.WriteByte('\n')
	n := f.NumRows()
	if n > 10 {
		n = 10
	}
	for i := 0; i < n; i++ {
		cells := make([]string, len(f.cols))
		for j, c := range f.cols {
			if c.IsValid(i) {
				cells[j] = c.StringAt(i)
			} else {
				cells[j] = "NaN"
			}
		}
		b.WriteString(strings.Join(cells, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

// NumericMatrix extracts all numeric and bool columns except those named in
// exclude, as a dense row-major matrix plus the used column names. Null cells
// become 0. It is the feature-extraction step before model training.
func (f *Frame) NumericMatrix(exclude ...string) ([][]float64, []string) {
	ex := map[string]bool{}
	for _, e := range exclude {
		ex[e] = true
	}
	var used []string
	var cols []*Series
	for _, c := range f.cols {
		if ex[c.name] {
			continue
		}
		if c.IsNumeric() || c.Kind() == Bool {
			used = append(used, c.name)
			cols = append(cols, c)
		}
	}
	m := make([][]float64, f.NumRows())
	for i := range m {
		row := make([]float64, len(cols))
		for j, c := range cols {
			v := c.Float(i)
			if math.IsNaN(v) {
				v = 0
			}
			row[j] = v
		}
		m[i] = row
	}
	return m, used
}
