package frame

import (
	"fmt"
	"math"
)

// Mask is a boolean row selector produced by comparison operations.
type Mask []bool

// And returns the element-wise conjunction of two masks.
func (m Mask) And(o Mask) Mask {
	out := make(Mask, len(m))
	for i := range m {
		out[i] = m[i] && o[i]
	}
	return out
}

// AndInPlace folds o into m element-wise and returns m. The receiver must
// be owned by the caller (a freshly computed temporary): masks that may be
// aliased — e.g. bound to an interpreter variable — must use And, which
// allocates. The interpreter proves ownership syntactically (a mask produced
// by a non-identifier expression has no other holder) before choosing the
// in-place form, so chained filters combine without one allocation per
// combinator.
func (m Mask) AndInPlace(o Mask) Mask {
	for i := range m {
		m[i] = m[i] && o[i]
	}
	return m
}

// Or returns the element-wise disjunction of two masks.
func (m Mask) Or(o Mask) Mask {
	out := make(Mask, len(m))
	for i := range m {
		out[i] = m[i] || o[i]
	}
	return out
}

// OrInPlace folds o into m element-wise and returns m. See AndInPlace for
// the ownership requirement.
func (m Mask) OrInPlace(o Mask) Mask {
	for i := range m {
		m[i] = m[i] || o[i]
	}
	return m
}

// Not returns the element-wise negation of the mask.
func (m Mask) Not() Mask {
	out := make(Mask, len(m))
	for i := range m {
		out[i] = !m[i]
	}
	return out
}

// NotInPlace negates the mask in place and returns it. See AndInPlace for
// the ownership requirement.
func (m Mask) NotInPlace() Mask {
	for i := range m {
		m[i] = !m[i]
	}
	return m
}

// Count returns the number of true entries.
func (m Mask) Count() int {
	n := 0
	for _, v := range m {
		if v {
			n++
		}
	}
	return n
}

// CmpOp identifies a scalar comparison operator.
type CmpOp int

// The comparison operators supported by Series.Compare.
const (
	Lt CmpOp = iota
	Le
	Gt
	Ge
	Eq
	Ne
)

// String renders the operator in source form.
func (op CmpOp) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Eq:
		return "=="
	case Ne:
		return "!="
	}
	return "?"
}

// Compare evaluates `series op value` row-wise and returns the mask.
// Numeric series compare numerically; string series compare for Eq/Ne
// against the string rendering and lexicographically otherwise.
// Null rows always yield false. The numeric and string paths run as
// kind-specialized loops over the backing slices — comparisons seed every
// filter a beam-search candidate executes, so the per-row kind dispatch of
// Series.Float is hoisted out of the inner loop.
func (s *Series) Compare(op CmpOp, value interface{}) (Mask, error) {
	out := make(Mask, s.Len())
	switch v := value.(type) {
	case float64:
		switch s.kind {
		case Float:
			for i, f := range s.fs {
				if s.valid[i] && !math.IsNaN(f) {
					out[i] = cmpFloat(op, f, v)
				}
			}
		case Int:
			for i, n := range s.is {
				if s.valid[i] {
					out[i] = cmpFloat(op, float64(n), v)
				}
			}
		case Bool:
			for i, b := range s.bs {
				if s.valid[i] {
					f := 0.0
					if b {
						f = 1
					}
					out[i] = cmpFloat(op, f, v)
				}
			}
		default:
			for i := 0; i < s.Len(); i++ {
				if !s.valid[i] {
					continue
				}
				f := s.Float(i)
				if math.IsNaN(f) {
					continue
				}
				out[i] = cmpFloat(op, f, v)
			}
		}
		return out, nil
	case int:
		return s.Compare(op, float64(v))
	case int64:
		return s.Compare(op, float64(v))
	case string:
		if s.kind == String {
			for i, sv := range s.ss {
				if s.valid[i] {
					out[i] = cmpString(op, sv, v)
				}
			}
			return out, nil
		}
		for i := 0; i < s.Len(); i++ {
			if !s.valid[i] {
				continue
			}
			out[i] = cmpString(op, s.StringAt(i), v)
		}
		return out, nil
	case bool:
		for i := 0; i < s.Len(); i++ {
			if !s.valid[i] {
				continue
			}
			b := s.BoolAt(i)
			switch op {
			case Eq:
				out[i] = b == v
			case Ne:
				out[i] = b != v
			default:
				return nil, fmt.Errorf("frame: operator %v not supported for bool comparison", op)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("frame: unsupported comparison value type %T", value)
	}
}

func cmpFloat(op CmpOp, a, b float64) bool {
	switch op {
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	case Eq:
		return a == b
	case Ne:
		return a != b
	}
	return false
}

func cmpString(op CmpOp, a, b string) bool {
	switch op {
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	case Eq:
		return a == b
	case Ne:
		return a != b
	}
	return false
}

// Between returns the mask of rows whose numeric value lies in [lo, hi].
// Null and non-numeric rows yield false.
func (s *Series) Between(lo, hi float64) Mask {
	out := make(Mask, s.Len())
	for i := 0; i < s.Len(); i++ {
		if !s.valid[i] {
			continue
		}
		v := s.Float(i)
		if math.IsNaN(v) {
			continue
		}
		out[i] = v >= lo && v <= hi
	}
	return out
}

// IsIn returns the mask of rows whose string rendering appears in vals.
func (s *Series) IsIn(vals []string) Mask {
	set := make(map[string]bool, len(vals))
	for _, v := range vals {
		set[v] = true
	}
	out := make(Mask, s.Len())
	for i := 0; i < s.Len(); i++ {
		if s.valid[i] && set[s.StringAt(i)] {
			out[i] = true
		}
	}
	return out
}

// IsNull returns the mask of null rows.
func (s *Series) IsNull() Mask {
	out := make(Mask, s.Len())
	for i := range out {
		out[i] = !s.valid[i]
	}
	return out
}

// NotNull returns the mask of non-null rows in a single pass (it used to be
// IsNull().Not(), one allocation and one traversal more).
func (s *Series) NotNull() Mask {
	out := make(Mask, s.Len())
	copy(out, s.valid)
	return out
}

// ArithOp identifies an element-wise arithmetic operator.
type ArithOp int

// The arithmetic operators supported by Arith and ArithScalar.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

// String renders the operator in source form.
func (op ArithOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	}
	return "?"
}

func applyArith(op ArithOp, a, b float64) float64 {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	case Div:
		if b == 0 {
			return math.NaN()
		}
		return a / b
	}
	return math.NaN()
}

// Arith returns the element-wise result of `s op o` as a float series.
// Rows where either operand is null or non-numeric become null.
func (s *Series) Arith(op ArithOp, o *Series) (*Series, error) {
	if s.Len() != o.Len() {
		return nil, fmt.Errorf("frame: series length mismatch %d vs %d", s.Len(), o.Len())
	}
	if s.kind == String && op == Add && o.kind == String {
		out := NewEmptySeries(s.name, String, s.Len())
		for i := 0; i < s.Len(); i++ {
			if s.valid[i] && o.valid[i] {
				out.SetString(i, s.ss[i]+o.ss[i])
			}
		}
		return out, nil
	}
	vals := make([]float64, s.Len())
	for i := range vals {
		vals[i] = applyArith(op, s.Float(i), o.Float(i))
	}
	return NewFloatSeries(s.name, vals), nil
}

// ArithScalar returns the element-wise result of `s op v` as a float series.
func (s *Series) ArithScalar(op ArithOp, v float64) *Series {
	vals := make([]float64, s.Len())
	for i := range vals {
		vals[i] = applyArith(op, s.Float(i), v)
	}
	return NewFloatSeries(s.name, vals)
}

// Log1p returns log(1+x) applied element-wise; non-positive 1+x yields null.
func (s *Series) Log1p() *Series {
	vals := make([]float64, s.Len())
	for i := range vals {
		v := s.Float(i)
		if math.IsNaN(v) || v <= -1 {
			vals[i] = math.NaN()
			continue
		}
		vals[i] = math.Log1p(v)
	}
	return NewFloatSeries(s.name, vals)
}

// Abs returns the element-wise absolute value.
func (s *Series) Abs() *Series {
	vals := make([]float64, s.Len())
	for i := range vals {
		vals[i] = math.Abs(s.Float(i))
	}
	return NewFloatSeries(s.name, vals)
}

// Round returns the element-wise rounding to the nearest integer.
func (s *Series) Round() *Series {
	vals := make([]float64, s.Len())
	for i := range vals {
		vals[i] = math.Round(s.Float(i))
	}
	return NewFloatSeries(s.name, vals)
}

// Clip returns a copy with numeric values clamped to [lo, hi].
func (s *Series) Clip(lo, hi float64) *Series {
	vals := make([]float64, s.Len())
	for i := range vals {
		v := s.Float(i)
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		vals[i] = v
	}
	return NewFloatSeries(s.name, vals)
}

// MinMaxScale returns (x - min) / (max - min); constant series become 0.
func (s *Series) MinMaxScale() *Series {
	lo, hi := s.Min(), s.Max()
	span := hi - lo
	vals := make([]float64, s.Len())
	for i := range vals {
		v := s.Float(i)
		if math.IsNaN(v) {
			vals[i] = math.NaN()
			continue
		}
		if span == 0 {
			vals[i] = 0
			continue
		}
		vals[i] = (v - lo) / span
	}
	return NewFloatSeries(s.name, vals)
}

// StandardScale returns (x - mean) / std; zero-variance series become 0.
func (s *Series) StandardScale() *Series {
	m, sd := s.Mean(), s.Std()
	vals := make([]float64, s.Len())
	for i := range vals {
		v := s.Float(i)
		if math.IsNaN(v) {
			vals[i] = math.NaN()
			continue
		}
		if sd == 0 {
			vals[i] = 0
			continue
		}
		vals[i] = (v - m) / sd
	}
	return NewFloatSeries(s.name, vals)
}
