// Package frame implements a small columnar dataframe engine with
// null-aware typed series and the data-preparation operators that
// LucidScript scripts use: CSV I/O, imputation, filtering, one-hot
// encoding, string normalization, scaling, sampling and more.
//
// The engine is the execution substrate for the interpreter in
// internal/interp; the paper's prototype used pandas for the same role.
package frame

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the element type of a Series.
type Kind int

// The supported series element kinds.
const (
	Float Kind = iota
	Int
	String
	Bool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case Float:
		return "float"
	case Int:
		return "int"
	case String:
		return "string"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Series is a named, typed, null-aware column of values.
// Exactly one of the backing slices is populated, chosen by kind.
// valid[i] reports whether row i holds a value (false means null/NaN).
type Series struct {
	name  string
	kind  Kind
	fs    []float64
	is    []int64
	ss    []string
	bs    []bool
	valid []bool
}

// NewFloatSeries builds a float series. A NaN value marks a null.
func NewFloatSeries(name string, vals []float64) *Series {
	s := &Series{name: name, kind: Float, fs: append([]float64(nil), vals...), valid: make([]bool, len(vals))}
	for i, v := range vals {
		s.valid[i] = !math.IsNaN(v)
	}
	return s
}

// NewIntSeries builds an int series with all values present.
func NewIntSeries(name string, vals []int64) *Series {
	s := &Series{name: name, kind: Int, is: append([]int64(nil), vals...), valid: make([]bool, len(vals))}
	for i := range s.valid {
		s.valid[i] = true
	}
	return s
}

// NewStringSeries builds a string series. Empty strings are stored as
// values, not nulls; use SetNull to mark nulls explicitly.
func NewStringSeries(name string, vals []string) *Series {
	s := &Series{name: name, kind: String, ss: append([]string(nil), vals...), valid: make([]bool, len(vals))}
	for i := range s.valid {
		s.valid[i] = true
	}
	return s
}

// NewBoolSeries builds a bool series with all values present.
func NewBoolSeries(name string, vals []bool) *Series {
	s := &Series{name: name, kind: Bool, bs: append([]bool(nil), vals...), valid: make([]bool, len(vals))}
	for i := range s.valid {
		s.valid[i] = true
	}
	return s
}

// NewEmptySeries builds an all-null series of n rows with the given kind.
func NewEmptySeries(name string, kind Kind, n int) *Series {
	s := &Series{name: name, kind: kind, valid: make([]bool, n)}
	switch kind {
	case Float:
		s.fs = make([]float64, n)
		for i := range s.fs {
			s.fs[i] = math.NaN()
		}
	case Int:
		s.is = make([]int64, n)
	case String:
		s.ss = make([]string, n)
	case Bool:
		s.bs = make([]bool, n)
	}
	return s
}

// Name returns the column name.
func (s *Series) Name() string { return s.name }

// Kind returns the element kind.
func (s *Series) Kind() Kind { return s.kind }

// Len returns the number of rows.
func (s *Series) Len() int { return len(s.valid) }

// StringBytes returns the total byte length of the stored string values.
// Non-string series hold no string payload and report 0. The interpreter's
// resource governor uses this to bound runaway string growth.
func (s *Series) StringBytes() int {
	var n int
	for _, v := range s.ss {
		n += len(v)
	}
	return n
}

// Rename returns a shallow copy of the series under a new name.
func (s *Series) Rename(name string) *Series {
	c := *s
	c.name = name
	return &c
}

// Clone returns a deep copy of the series. It is the ownership primitive of
// the immutability contract (DESIGN.md §9): code that needs to write cells
// into a series reachable from a frame must Clone (or AsType) first, because
// frames share column pointers freely.
func (s *Series) Clone() *Series {
	c := &Series{name: s.name, kind: s.kind}
	c.fs = append([]float64(nil), s.fs...)
	c.is = append([]int64(nil), s.is...)
	c.ss = append([]string(nil), s.ss...)
	c.bs = append([]bool(nil), s.bs...)
	c.valid = append([]bool(nil), s.valid...)
	return c
}

// IsValid reports whether row i holds a non-null value.
func (s *Series) IsValid(i int) bool { return s.valid[i] }

// SetNull marks row i as null.
func (s *Series) SetNull(i int) {
	s.valid[i] = false
	if s.kind == Float {
		s.fs[i] = math.NaN()
	}
}

// NullCount returns the number of null rows.
func (s *Series) NullCount() int {
	n := 0
	for _, v := range s.valid {
		if !v {
			n++
		}
	}
	return n
}

// hasNulls reports whether any row is null, without counting them all.
func (s *Series) hasNulls() bool {
	for _, v := range s.valid {
		if !v {
			return true
		}
	}
	return false
}

// Float returns the value at row i as a float64. Null rows and
// non-numeric strings yield NaN; bools map to 0/1.
func (s *Series) Float(i int) float64 {
	if !s.valid[i] {
		return math.NaN()
	}
	switch s.kind {
	case Float:
		return s.fs[i]
	case Int:
		return float64(s.is[i])
	case Bool:
		if s.bs[i] {
			return 1
		}
		return 0
	case String:
		v, err := strconv.ParseFloat(strings.TrimSpace(s.ss[i]), 64)
		if err != nil {
			return math.NaN()
		}
		return v
	}
	return math.NaN()
}

// StringAt returns the value at row i rendered as a string.
// Null rows render as the empty string.
func (s *Series) StringAt(i int) string {
	if !s.valid[i] {
		return ""
	}
	switch s.kind {
	case Float:
		return strconv.FormatFloat(s.fs[i], 'g', -1, 64)
	case Int:
		return strconv.FormatInt(s.is[i], 10)
	case Bool:
		return strconv.FormatBool(s.bs[i])
	case String:
		return s.ss[i]
	}
	return ""
}

// appendCell appends StringAt(i) to buf without the intermediate string
// allocation for numeric and bool kinds. Null rows append nothing, exactly
// like StringAt rendering the empty string.
func (s *Series) appendCell(buf []byte, i int) []byte {
	if !s.valid[i] {
		return buf
	}
	switch s.kind {
	case Float:
		return strconv.AppendFloat(buf, s.fs[i], 'g', -1, 64)
	case Int:
		return strconv.AppendInt(buf, s.is[i], 10)
	case Bool:
		return strconv.AppendBool(buf, s.bs[i])
	case String:
		return append(buf, s.ss[i]...)
	}
	return buf
}

// BoolAt returns the value at row i as a bool (only meaningful for Bool kind;
// for other kinds any non-zero / non-empty value is true).
func (s *Series) BoolAt(i int) bool {
	if !s.valid[i] {
		return false
	}
	switch s.kind {
	case Bool:
		return s.bs[i]
	case Float:
		return s.fs[i] != 0
	case Int:
		return s.is[i] != 0
	case String:
		return s.ss[i] != ""
	}
	return false
}

// SetFloat stores a float value at row i; the series must be Float kind.
func (s *Series) SetFloat(i int, v float64) {
	s.fs[i] = v
	s.valid[i] = !math.IsNaN(v)
}

// SetString stores a string value at row i; the series must be String kind.
func (s *Series) SetString(i int, v string) {
	s.ss[i] = v
	s.valid[i] = true
}

// SetInt stores an int value at row i; the series must be Int kind.
func (s *Series) SetInt(i int, v int64) {
	s.is[i] = v
	s.valid[i] = true
}

// SetBool stores a bool value at row i; the series must be Bool kind.
func (s *Series) SetBool(i int, v bool) {
	s.bs[i] = v
	s.valid[i] = true
}

// IsNumeric reports whether the series kind is Float or Int.
func (s *Series) IsNumeric() bool { return s.kind == Float || s.kind == Int }

// validFloats collects the non-null values of a numeric series.
func (s *Series) validFloats() []float64 {
	out := make([]float64, 0, s.Len())
	for i := 0; i < s.Len(); i++ {
		if !s.valid[i] {
			continue
		}
		v := s.Float(i)
		if !math.IsNaN(v) {
			out = append(out, v)
		}
	}
	return out
}

// Mean returns the arithmetic mean of the non-null values, or NaN if none.
func (s *Series) Mean() float64 {
	vs := s.validFloats()
	if len(vs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Median returns the median of the non-null values, or NaN if none.
func (s *Series) Median() float64 {
	vs := s.validFloats()
	if len(vs) == 0 {
		return math.NaN()
	}
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// Std returns the population standard deviation of the non-null values.
func (s *Series) Std() float64 {
	vs := s.validFloats()
	if len(vs) == 0 {
		return math.NaN()
	}
	m := s.Mean()
	acc := 0.0
	for _, v := range vs {
		d := v - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(vs)))
}

// Min returns the minimum non-null value, or NaN if none.
func (s *Series) Min() float64 {
	vs := s.validFloats()
	if len(vs) == 0 {
		return math.NaN()
	}
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum non-null value, or NaN if none.
func (s *Series) Max() float64 {
	vs := s.validFloats()
	if len(vs) == 0 {
		return math.NaN()
	}
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Sum returns the sum of the non-null values (0 if none).
func (s *Series) Sum() float64 {
	sum := 0.0
	for _, v := range s.validFloats() {
		sum += v
	}
	return sum
}

// Mode returns the most frequent non-null value rendered as a string,
// breaking ties by lexicographic order. ok is false when all rows are null.
func (s *Series) Mode() (string, bool) {
	counts := map[string]int{}
	for i := 0; i < s.Len(); i++ {
		if s.valid[i] {
			counts[s.StringAt(i)]++
		}
	}
	if len(counts) == 0 {
		return "", false
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	best, bestN := keys[0], counts[keys[0]]
	for _, k := range keys[1:] {
		if counts[k] > bestN {
			best, bestN = k, counts[k]
		}
	}
	return best, true
}

// Unique returns the distinct non-null values as strings, sorted.
func (s *Series) Unique() []string {
	seen := map[string]bool{}
	for i := 0; i < s.Len(); i++ {
		if s.valid[i] {
			seen[s.StringAt(i)] = true
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ValueCounts returns value → occurrence count over non-null rows.
func (s *Series) ValueCounts() map[string]int {
	counts := map[string]int{}
	for i := 0; i < s.Len(); i++ {
		if s.valid[i] {
			counts[s.StringAt(i)]++
		}
	}
	return counts
}

// FillNAFloat returns a series with nulls replaced by v (numeric series
// only). A series with no nulls is returned as-is — safe under the
// immutability contract, since no caller writes into a fill result.
func (s *Series) FillNAFloat(v float64) *Series {
	if !s.hasNulls() {
		return s
	}
	c := s.Clone()
	if c.kind == String {
		for i := range c.valid {
			if !c.valid[i] {
				c.SetString(i, strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		return c
	}
	if c.kind == Int {
		for i := range c.valid {
			if !c.valid[i] {
				c.SetInt(i, int64(v))
			}
		}
		return c
	}
	if c.kind == Bool {
		for i := range c.valid {
			if !c.valid[i] {
				c.SetBool(i, v != 0)
			}
		}
		return c
	}
	for i := range c.valid {
		if !c.valid[i] {
			c.SetFloat(i, v)
		}
	}
	return c
}

// FillNAString returns a series with nulls replaced by v (string series
// only; for non-string series the value is parsed where possible). A series
// with no nulls is returned as-is, like FillNAFloat.
func (s *Series) FillNAString(v string) *Series {
	if !s.hasNulls() {
		return s
	}
	c := s.Clone()
	switch c.kind {
	case String:
		for i := range c.valid {
			if !c.valid[i] {
				c.SetString(i, v)
			}
		}
	default:
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return s.FillNAFloat(f)
		}
	}
	return c
}

// Lower returns a copy with string values lower-cased.
func (s *Series) Lower() *Series {
	c := s.Clone()
	if c.kind != String {
		return c
	}
	for i := range c.ss {
		if c.valid[i] {
			c.ss[i] = strings.ToLower(c.ss[i])
		}
	}
	return c
}

// Upper returns a copy with string values upper-cased.
func (s *Series) Upper() *Series {
	c := s.Clone()
	if c.kind != String {
		return c
	}
	for i := range c.ss {
		if c.valid[i] {
			c.ss[i] = strings.ToUpper(c.ss[i])
		}
	}
	return c
}

// Strip returns a copy with surrounding whitespace removed from string values.
func (s *Series) Strip() *Series {
	c := s.Clone()
	if c.kind != String {
		return c
	}
	for i := range c.ss {
		if c.valid[i] {
			c.ss[i] = strings.TrimSpace(c.ss[i])
		}
	}
	return c
}

// ReplaceString returns a copy with all occurrences of old replaced by new
// in string values.
func (s *Series) ReplaceString(old, new string) *Series {
	c := s.Clone()
	if c.kind != String {
		return c
	}
	for i := range c.ss {
		if c.valid[i] {
			c.ss[i] = strings.ReplaceAll(c.ss[i], old, new)
		}
	}
	return c
}

// MapValues returns a copy where values found in m (by string rendering)
// are replaced by the mapped value; unmapped values are kept.
func (s *Series) MapValues(m map[string]string) *Series {
	out := NewStringSeries(s.name, make([]string, s.Len()))
	anyNull := false
	for i := 0; i < s.Len(); i++ {
		if !s.valid[i] {
			out.SetNull(i)
			anyNull = true
			continue
		}
		v := s.StringAt(i)
		if nv, ok := m[v]; ok {
			out.SetString(i, nv)
		} else {
			out.SetString(i, v)
		}
	}
	_ = anyNull
	return out.inferKind()
}

// inferKind attempts to downcast a string series to numeric when every
// non-null value parses as a number.
func (s *Series) inferKind() *Series {
	if s.kind != String {
		return s
	}
	allNum, any := true, false
	allInt := true
	for i := 0; i < s.Len(); i++ {
		if !s.valid[i] {
			continue
		}
		any = true
		v := strings.TrimSpace(s.ss[i])
		if _, err := strconv.ParseInt(v, 10, 64); err != nil {
			allInt = false
		}
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			allNum = false
			break
		}
	}
	if !any || !allNum {
		return s
	}
	if allInt && s.NullCount() == 0 {
		vals := make([]int64, s.Len())
		for i := range vals {
			vals[i], _ = strconv.ParseInt(strings.TrimSpace(s.ss[i]), 10, 64)
		}
		return NewIntSeries(s.name, vals)
	}
	vals := make([]float64, s.Len())
	for i := range vals {
		if !s.valid[i] {
			vals[i] = math.NaN()
			continue
		}
		vals[i], _ = strconv.ParseFloat(strings.TrimSpace(s.ss[i]), 64)
	}
	return NewFloatSeries(s.name, vals)
}

// AsType converts the series to the requested kind, best-effort.
// Unconvertible values become null. The result is always freshly allocated
// — callers may mutate it — with the identity conversion reduced to a bulk
// Clone and the numeric conversions running as kind-specialized loops over
// the backing slices instead of per-row kind dispatch.
func (s *Series) AsType(kind Kind) *Series {
	if kind == s.kind {
		return s.Clone()
	}
	switch kind {
	case Float:
		vals := make([]float64, s.Len())
		switch s.kind {
		case Int:
			for i, v := range s.is {
				if s.valid[i] {
					vals[i] = float64(v)
				} else {
					vals[i] = math.NaN()
				}
			}
		case Bool:
			for i, v := range s.bs {
				switch {
				case !s.valid[i]:
					vals[i] = math.NaN()
				case v:
					vals[i] = 1
				}
			}
		default:
			for i := range vals {
				vals[i] = s.Float(i)
			}
		}
		return NewFloatSeries(s.name, vals)
	case Int:
		out := NewEmptySeries(s.name, Int, s.Len())
		for i := 0; i < s.Len(); i++ {
			v := s.Float(i)
			if math.IsNaN(v) {
				continue
			}
			out.SetInt(i, int64(v))
		}
		return out
	case String:
		out := NewEmptySeries(s.name, String, s.Len())
		for i := 0; i < s.Len(); i++ {
			if s.valid[i] {
				out.SetString(i, s.StringAt(i))
			}
		}
		return out
	case Bool:
		out := NewEmptySeries(s.name, Bool, s.Len())
		for i := 0; i < s.Len(); i++ {
			if s.valid[i] {
				out.SetBool(i, s.BoolAt(i))
			}
		}
		return out
	}
	return s.Clone()
}

// gatherSlice copies src[idx[j]] into position j of a fresh slice. Index
// runs that are contiguous in the source (the common case for filter masks,
// head, and sorted sample positions) are bulk-copied with copy instead of
// element-by-element.
func gatherSlice[T any](src []T, idx []int) []T {
	out := make([]T, len(idx))
	for j := 0; j < len(idx); {
		k := j + 1
		for k < len(idx) && idx[k] == idx[k-1]+1 {
			k++
		}
		copy(out[j:k], src[idx[j]:idx[j]+(k-j)])
		j = k
	}
	return out
}

// Gather returns a new series holding the rows at the given indices. The
// inner loop is kind-specialized: exactly one backing slice is gathered,
// with contiguous index runs bulk-copied. Cell payloads at null positions
// are copied verbatim rather than zeroed — reads go through the validity
// slice, so the payload of a null cell is never observable.
func (s *Series) Gather(idx []int) *Series {
	out := &Series{name: s.name, kind: s.kind, valid: gatherSlice(s.valid, idx)}
	switch s.kind {
	case Float:
		out.fs = gatherSlice(s.fs, idx)
	case Int:
		out.is = gatherSlice(s.is, idx)
	case String:
		out.ss = gatherSlice(s.ss, idx)
	case Bool:
		out.bs = gatherSlice(s.bs, idx)
	}
	return out
}
