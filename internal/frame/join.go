package frame

import "fmt"

// JoinKind selects the merge semantics.
type JoinKind int

// The supported join kinds.
const (
	// InnerJoin keeps rows whose key appears in both frames.
	InnerJoin JoinKind = iota
	// LeftJoin keeps every left row; unmatched right columns become null.
	LeftJoin
)

// String names the join kind in pandas terms.
func (k JoinKind) String() string {
	if k == LeftJoin {
		return "left"
	}
	return "inner"
}

// Merge joins two frames on the named key column, like pandas df.merge
// (how="inner"/"left"). When several right rows share a key, the first
// match wins (sufficient for the dimension-table lookups preparation
// scripts perform). Non-key right columns that collide with left column
// names are suffixed "_y".
func Merge(left, right *Frame, on string, kind JoinKind) (*Frame, error) {
	lk, err := left.Column(on)
	if err != nil {
		return nil, fmt.Errorf("frame: merge left: %w", err)
	}
	rk, err := right.Column(on)
	if err != nil {
		return nil, fmt.Errorf("frame: merge right: %w", err)
	}
	// Index the right side by key rendering, first match wins.
	rIndex := make(map[string]int, right.NumRows())
	for i := 0; i < right.NumRows(); i++ {
		if !rk.IsValid(i) {
			continue
		}
		key := rk.StringAt(i)
		if _, seen := rIndex[key]; !seen {
			rIndex[key] = i
		}
	}
	var leftPos, rightPos []int // rightPos −1 = no match (left join)
	for i := 0; i < left.NumRows(); i++ {
		if !lk.IsValid(i) {
			if kind == LeftJoin {
				leftPos = append(leftPos, i)
				rightPos = append(rightPos, -1)
			}
			continue
		}
		j, ok := rIndex[lk.StringAt(i)]
		switch {
		case ok:
			leftPos = append(leftPos, i)
			rightPos = append(rightPos, j)
		case kind == LeftJoin:
			leftPos = append(leftPos, i)
			rightPos = append(rightPos, -1)
		}
	}
	out := New()
	for c := 0; c < left.NumCols(); c++ {
		if err := out.AddColumn(left.ColumnAt(c).Gather(leftPos)); err != nil {
			return nil, err
		}
	}
	for c := 0; c < right.NumCols(); c++ {
		rc := right.ColumnAt(c)
		if rc.Name() == on {
			continue
		}
		name := rc.Name()
		if out.HasColumn(name) {
			name += "_y"
		}
		col := NewEmptySeries(name, rc.Kind(), len(leftPos))
		for i, rp := range rightPos {
			if rp < 0 || !rc.IsValid(rp) {
				continue
			}
			switch rc.Kind() {
			case Float:
				col.SetFloat(i, rc.Float(rp))
			case Int:
				col.SetInt(i, int64(rc.Float(rp)))
			case String:
				col.SetString(i, rc.StringAt(rp))
			case Bool:
				col.SetBool(i, rc.BoolAt(rp))
			}
		}
		if err := out.AddColumn(col); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Concat stacks frames vertically over the union of their columns; cells
// for columns a frame lacks become null (pandas pd.concat semantics).
func Concat(frames ...*Frame) (*Frame, error) {
	if len(frames) == 0 {
		return New(), nil
	}
	// Column order: first appearance across inputs.
	var names []string
	kinds := map[string]Kind{}
	for _, f := range frames {
		for c := 0; c < f.NumCols(); c++ {
			col := f.ColumnAt(c)
			if _, seen := kinds[col.Name()]; !seen {
				names = append(names, col.Name())
				kinds[col.Name()] = col.Kind()
			}
		}
	}
	total := 0
	for _, f := range frames {
		total += f.NumRows()
	}
	out := New()
	for _, name := range names {
		col := NewEmptySeries(name, kinds[name], total)
		row := 0
		for _, f := range frames {
			src, err := f.Column(name)
			if err != nil {
				row += f.NumRows()
				continue
			}
			for i := 0; i < src.Len(); i++ {
				if !src.IsValid(i) {
					row++
					continue
				}
				switch col.Kind() {
				case Float:
					col.SetFloat(row, src.Float(i))
				case Int:
					v := src.Float(i)
					col.SetInt(row, int64(v))
				case String:
					col.SetString(row, src.StringAt(i))
				case Bool:
					col.SetBool(row, src.BoolAt(i))
				}
				row++
			}
		}
		if err := out.AddColumn(col); err != nil {
			return nil, err
		}
	}
	return out, nil
}
