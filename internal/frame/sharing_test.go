package frame

import (
	"math/rand"
	"testing"
)

// TestColumnPreservingOpsShareStorage pins the structural-sharing
// optimization: ops that do not change a column's cells must return frames
// holding the same *Series pointers, not copies.
func TestColumnPreservingOpsShareStorage(t *testing.T) {
	f := sampleFrame(t)
	orig := map[string]*Series{}
	for _, name := range f.ColumnNames() {
		c, _ := f.Column(name)
		orig[name] = c
	}

	same := func(t *testing.T, g *Frame, name string) {
		t.Helper()
		c, err := g.Column(name)
		if err != nil {
			t.Fatal(err)
		}
		if c != orig[name] {
			t.Fatalf("column %q should be shared, got a copy", name)
		}
	}

	t.Run("Clone", func(t *testing.T) {
		g := f.Clone()
		for name := range orig {
			same(t, g, name)
		}
	})
	t.Run("Drop", func(t *testing.T) {
		g, err := f.Drop("Age")
		if err != nil {
			t.Fatal(err)
		}
		same(t, g, "Sex")
		same(t, g, "Survived")
	})
	t.Run("Select", func(t *testing.T) {
		g, err := f.Select("Age", "Sex")
		if err != nil {
			t.Fatal(err)
		}
		same(t, g, "Age")
		same(t, g, "Sex")
	})
	t.Run("RenameColumn", func(t *testing.T) {
		g, err := f.RenameColumn("Age", "Years")
		if err != nil {
			t.Fatal(err)
		}
		same(t, g, "Sex")
		renamed, _ := g.Column("Years")
		if renamed == orig["Age"] {
			t.Fatal("renamed column must be a fresh series (name differs)")
		}
	})
	t.Run("WithColumn", func(t *testing.T) {
		extra := NewIntSeries("Extra", make([]int64, f.NumRows()))
		g, err := f.WithColumn(extra)
		if err != nil {
			t.Fatal(err)
		}
		for name := range orig {
			same(t, g, name)
		}
	})
	t.Run("FillNAUntouched", func(t *testing.T) {
		g := f.FillNA(FillMean)
		// Sex and Survived have no nulls in sampleFrame; they must be shared.
		same(t, g, "Sex")
		same(t, g, "Survived")
	})
	t.Run("GetDummiesNonString", func(t *testing.T) {
		g := f.GetDummies()
		same(t, g, "Age")
		same(t, g, "Survived")
	})
}

// TestGatherMatchesNaive cross-checks the run-copying gather kernel against
// a per-element reference on randomized index patterns for every kind.
func TestGatherMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 257
	fvals := make([]float64, n)
	ivals := make([]int64, n)
	svals := make([]string, n)
	for i := range fvals {
		fvals[i] = rng.NormFloat64()
		ivals[i] = rng.Int63n(1000)
		svals[i] = string(rune('a' + rng.Intn(26)))
	}
	series := []*Series{
		NewFloatSeries("f", fvals),
		NewIntSeries("i", ivals),
		NewStringSeries("s", svals),
	}
	bs := NewEmptySeries("b", Bool, n)
	for i := 0; i < n; i++ {
		if rng.Intn(4) > 0 {
			bs.SetBool(i, rng.Intn(2) == 0)
		} // else leave null
	}
	series = append(series, bs)

	patterns := [][]int{
		{},           // empty
		{0}, {n - 1}, // singletons
		{5, 6, 7, 8},      // one contiguous run
		{3, 3, 3},         // repeats
		{n - 1, 0, n / 2}, // scattered
	}
	full := make([]int, n)
	reversed := make([]int, n)
	for i := range full {
		full[i] = i
		reversed[i] = n - 1 - i
	}
	patterns = append(patterns, full, reversed)
	for p := 0; p < 10; p++ {
		idx := make([]int, rng.Intn(2*n))
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		patterns = append(patterns, idx)
	}

	for _, s := range series {
		for pi, idx := range patterns {
			got := s.Gather(idx)
			if got.Len() != len(idx) {
				t.Fatalf("%s pattern %d: len %d want %d", s.Name(), pi, got.Len(), len(idx))
			}
			for j, src := range idx {
				if got.IsValid(j) != s.IsValid(src) {
					t.Fatalf("%s pattern %d row %d: valid mismatch", s.Name(), pi, j)
				}
				if !s.IsValid(src) {
					continue
				}
				if got.StringAt(j) != s.StringAt(src) {
					t.Fatalf("%s pattern %d row %d: %q want %q", s.Name(), pi, j, got.StringAt(j), s.StringAt(src))
				}
			}
		}
	}
}

// TestMaskInPlaceOps verifies the in-place combinators mutate the receiver
// with the same truth table as the allocating versions.
func TestMaskInPlaceOps(t *testing.T) {
	a := Mask{true, true, false, false}
	b := Mask{true, false, true, false}

	and := append(Mask(nil), a...).AndInPlace(b)
	if want := a.And(b); !maskEq(and, want) {
		t.Fatalf("AndInPlace = %v want %v", and, want)
	}
	or := append(Mask(nil), a...).OrInPlace(b)
	if want := a.Or(b); !maskEq(or, want) {
		t.Fatalf("OrInPlace = %v want %v", or, want)
	}
	not := append(Mask(nil), a...).NotInPlace()
	if want := a.Not(); !maskEq(not, want) {
		t.Fatalf("NotInPlace = %v want %v", not, want)
	}

	// The receiver itself is returned (no allocation).
	recv := append(Mask(nil), a...)
	if got := recv.AndInPlace(b); &got[0] != &recv[0] {
		t.Fatal("AndInPlace should return the receiver's storage")
	}
}

func maskEq(a, b Mask) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
