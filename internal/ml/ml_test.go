package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthLinear builds a linearly separable dataset with optional noise.
func synthLinear(n int, noise float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a := rng.NormFloat64()
		b := rng.NormFloat64()
		x[i] = []float64{a, b}
		score := 2*a - b + noise*rng.NormFloat64()
		if score > 0 {
			y[i] = 1
		}
	}
	d, _ := NewDataset(x, y)
	return d
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset(nil, nil); err == nil {
		t.Fatal("empty dataset should error")
	}
	if _, err := NewDataset([][]float64{{1}}, []int{0, 1}); err == nil {
		t.Fatal("label mismatch should error")
	}
	if _, err := NewDataset([][]float64{{1, 2}, {1}}, []int{0, 1}); err == nil {
		t.Fatal("ragged rows should error")
	}
	d, err := NewDataset([][]float64{{1, 2}}, []int{1})
	if err != nil || d.Len() != 1 || d.NumFeatures() != 2 {
		t.Fatal("valid dataset rejected")
	}
}

func TestLogisticLearnsSeparableData(t *testing.T) {
	d := synthLinear(400, 0.1, 1)
	train, test := d.Split(0.3, 7)
	lr, err := TrainLogistic(train, LogisticConfig{})
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(lr, test)
	if acc < 0.9 {
		t.Fatalf("logistic accuracy = %v, want >= 0.9", acc)
	}
}

func TestLogisticBeatsGuessingOnNoisy(t *testing.T) {
	d := synthLinear(600, 1.5, 2)
	train, test := d.Split(0.3, 7)
	lr, err := TrainLogistic(train, LogisticConfig{})
	if err != nil {
		t.Fatal(err)
	}
	maj := TrainMajority(train)
	if Accuracy(lr, test) <= Accuracy(maj, test) {
		t.Fatalf("logistic %v should beat majority %v", Accuracy(lr, test), Accuracy(maj, test))
	}
}

func TestTreeLearnsAxisAlignedData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 400
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		x[i] = []float64{a, b}
		if a > 0.5 {
			y[i] = 1
		}
	}
	d, _ := NewDataset(x, y)
	train, test := d.Split(0.3, 5)
	tree, err := TrainTree(train, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(tree, test); acc < 0.9 {
		t.Fatalf("tree accuracy = %v", acc)
	}
}

func TestTreePureLeaf(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []int{1, 1, 1, 1}
	d, _ := NewDataset(x, y)
	tree, err := TrainTree(d, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Predict([]float64{10}) != 1 {
		t.Fatal("pure dataset should predict the pure class")
	}
}

func TestSplitDeterministicAndDisjoint(t *testing.T) {
	d := synthLinear(500, 0.5, 4)
	tr1, te1 := d.Split(0.3, 42)
	tr2, te2 := d.Split(0.3, 42)
	if tr1.Len() != tr2.Len() || te1.Len() != te2.Len() {
		t.Fatal("split not deterministic")
	}
	if tr1.Len()+te1.Len() != d.Len() {
		t.Fatal("split loses rows")
	}
	frac := float64(te1.Len()) / float64(d.Len())
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("test fraction = %v, want ~0.3", frac)
	}
}

func TestSplitStableUnderRowReorder(t *testing.T) {
	d := synthLinear(200, 0.5, 9)
	// Reverse the rows; each row must keep its partition.
	rev := &Dataset{}
	for i := d.Len() - 1; i >= 0; i-- {
		rev.X = append(rev.X, d.X[i])
		rev.Y = append(rev.Y, d.Y[i])
	}
	_, te1 := d.Split(0.3, 42)
	_, te2 := rev.Split(0.3, 42)
	if te1.Len() != te2.Len() {
		t.Fatalf("hash split should be order independent: %d vs %d", te1.Len(), te2.Len())
	}
}

func TestTrainErrorsOnEmpty(t *testing.T) {
	if _, err := TrainLogistic(&Dataset{}, LogisticConfig{}); err == nil {
		t.Fatal("TrainLogistic on empty should error")
	}
	if _, err := TrainTree(&Dataset{}, TreeConfig{}); err == nil {
		t.Fatal("TrainTree on empty should error")
	}
}

func TestConstantFeatureNoNaN(t *testing.T) {
	x := [][]float64{{1, 5}, {1, 6}, {1, 7}, {1, 8}}
	y := []int{0, 0, 1, 1}
	d, _ := NewDataset(x, y)
	lr, err := TrainLogistic(d, LogisticConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range lr.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatal("constant feature produced NaN weight")
		}
	}
}

func TestF1Score(t *testing.T) {
	d, _ := NewDataset([][]float64{{0}, {0}, {1}, {1}}, []int{0, 0, 1, 1})
	perfect := MajorityClassifier{Class: 1}
	// Majority predicting all-1: tp=2, fp=2, fn=0 → P=0.5 R=1 F1=2/3.
	if got := F1(perfect, d); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("F1 = %v", got)
	}
	allZero := MajorityClassifier{Class: 0}
	if F1(allZero, d) != 0 {
		t.Fatal("no true positives should give F1 = 0")
	}
}

func TestAccuracyEmptySet(t *testing.T) {
	if Accuracy(MajorityClassifier{}, &Dataset{}) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestMajorityClassifier(t *testing.T) {
	d, _ := NewDataset([][]float64{{1}, {2}, {3}}, []int{1, 1, 0})
	if TrainMajority(d).Class != 1 {
		t.Fatal("majority should be 1")
	}
}

func TestSigmoidStability(t *testing.T) {
	if s := sigmoid(1000); s != 1 {
		t.Fatalf("sigmoid(1000) = %v", s)
	}
	if s := sigmoid(-1000); s != 0 {
		t.Fatalf("sigmoid(-1000) = %v", s)
	}
	if math.Abs(sigmoid(0)-0.5) > 1e-12 {
		t.Fatal("sigmoid(0)")
	}
}

// Property: accuracy is always within [0, 1].
func TestAccuracyRangeProperty(t *testing.T) {
	f := func(seed int64, noise float64) bool {
		d := synthLinear(50, math.Abs(noise), seed)
		lr, err := TrainLogistic(d, LogisticConfig{Epochs: 10})
		if err != nil {
			return false
		}
		acc := Accuracy(lr, d)
		return acc >= 0 && acc <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: the hash split keeps every row exactly once.
func TestSplitPartitionProperty(t *testing.T) {
	f := func(seed int64, frac float64) bool {
		frac = math.Mod(math.Abs(frac), 1)
		d := synthLinear(80, 0.5, seed)
		tr, te := d.Split(frac, uint64(seed))
		return tr.Len()+te.Len() == d.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossValAccuracyAndPredictions(t *testing.T) {
	d := synthLinear(300, 0.1, 10)
	acc, err := CrossValAccuracy(d, 4, func(train *Dataset) (Classifier, error) {
		return TrainLogistic(train, LogisticConfig{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("CV accuracy = %v", acc)
	}
	preds, err := CrossValPredictions(d, 4, func(train *Dataset) (Classifier, error) {
		return TrainLogistic(train, LogisticConfig{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != d.Len() {
		t.Fatalf("predictions = %d", len(preds))
	}
	// Prediction accuracy computed from the per-row predictions matches the
	// CV accuracy exactly (same folds).
	correct := 0
	for i, p := range preds {
		if p == d.Y[i] {
			correct++
		}
	}
	if got := float64(correct) / float64(d.Len()); math.Abs(got-acc) > 1e-12 {
		t.Fatalf("per-row accuracy %v != CV accuracy %v", got, acc)
	}
	if _, err := CrossValPredictions(&Dataset{}, 4, nil); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestFoldsRoundRobin(t *testing.T) {
	d := synthLinear(10, 0.1, 1)
	folds := d.Folds(3)
	if len(folds) != 3 {
		t.Fatal("fold count")
	}
	if folds[0].Len() != 4 || folds[1].Len() != 3 || folds[2].Len() != 3 {
		t.Fatalf("fold sizes = %d %d %d", folds[0].Len(), folds[1].Len(), folds[2].Len())
	}
	// Row 3 lands in fold 0 at position 1.
	if folds[0].X[1][0] != d.X[3][0] {
		t.Fatal("round-robin assignment broken")
	}
}
