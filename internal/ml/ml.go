// Package ml provides the downstream-model substrate for the model
// performance user-intent measure Δ_M: a from-scratch logistic-regression
// classifier and a small decision tree, with deterministic train/test
// splitting and accuracy/F1 metrics. The paper used scikit-learn models for
// the same role; Δ_M only requires an accuracy metric that responds to data
// preparation changes.
package ml

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
)

// ErrNoData is returned when a dataset has no usable rows or features.
var ErrNoData = errors.New("ml: empty dataset")

// Dataset is a dense feature matrix with binary labels.
type Dataset struct {
	X [][]float64
	Y []int // 0 or 1
}

// NewDataset validates shapes and returns a dataset.
func NewDataset(x [][]float64, y []int) (*Dataset, error) {
	if len(x) == 0 || len(y) != len(x) {
		return nil, fmt.Errorf("%w: %d rows, %d labels", ErrNoData, len(x), len(y))
	}
	w := len(x[0])
	for i, row := range x {
		if len(row) != w {
			return nil, fmt.Errorf("ml: ragged row %d (%d vs %d)", i, len(row), w)
		}
	}
	return &Dataset{X: x, Y: y}, nil
}

// Len returns the number of rows.
func (d *Dataset) Len() int { return len(d.X) }

// NumFeatures returns the feature count.
func (d *Dataset) NumFeatures() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Split partitions the dataset deterministically into train and test sets.
// Assignment is by a hash of the row contents and position, so the same
// rows land in the same partition across runs — independent of row order
// changes caused by filtering.
func (d *Dataset) Split(testFrac float64, seed uint64) (train, test *Dataset) {
	train, test = &Dataset{}, &Dataset{}
	threshold := uint64(testFrac * float64(math.MaxUint64))
	for i := range d.X {
		if d.rowHash(i, seed) < threshold {
			test.X = append(test.X, d.X[i])
			test.Y = append(test.Y, d.Y[i])
		} else {
			train.X = append(train.X, d.X[i])
			train.Y = append(train.Y, d.Y[i])
		}
	}
	return train, test
}

func (d *Dataset) rowHash(i int, seed uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	putUint64(b[:], seed)
	_, _ = h.Write(b[:])
	for _, v := range d.X[i] {
		putUint64(b[:], math.Float64bits(v))
		_, _ = h.Write(b[:])
	}
	putUint64(b[:], uint64(d.Y[i]))
	_, _ = h.Write(b[:])
	return h.Sum64()
}

// Folds partitions the dataset deterministically into k folds by position
// (round-robin), for cross-validated accuracy. Position-based assignment
// keeps fold membership nearly stable under small row additions/removals
// and exactly stable under column changes — important when accuracy deltas
// between two variants of the same prepared table must reflect the data
// change, not partition churn.
func (d *Dataset) Folds(k int) []*Dataset {
	if k < 2 {
		k = 2
	}
	folds := make([]*Dataset, k)
	for i := range folds {
		folds[i] = &Dataset{}
	}
	for i := range d.X {
		f := folds[i%k]
		f.X = append(f.X, d.X[i])
		f.Y = append(f.Y, d.Y[i])
	}
	return folds
}

// merge concatenates datasets.
func merge(parts []*Dataset) *Dataset {
	out := &Dataset{}
	for _, p := range parts {
		out.X = append(out.X, p.X...)
		out.Y = append(out.Y, p.Y...)
	}
	return out
}

// CrossValAccuracy trains the classifier produced by fit on k-1 folds and
// tests on the held-out fold, for every fold, returning overall accuracy
// (each row is tested exactly once). Folds with no training data are
// skipped.
func CrossValAccuracy(d *Dataset, k int, fit func(*Dataset) (Classifier, error)) (float64, error) {
	folds := d.Folds(k)
	correct, total := 0, 0
	for i := range folds {
		var trainParts []*Dataset
		for j := range folds {
			if j != i {
				trainParts = append(trainParts, folds[j])
			}
		}
		train := merge(trainParts)
		if train.Len() == 0 || folds[i].Len() == 0 {
			continue
		}
		clf, err := fit(train)
		if err != nil {
			return 0, err
		}
		for r := range folds[i].X {
			if clf.Predict(folds[i].X[r]) == folds[i].Y[r] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0, ErrNoData
	}
	return float64(correct) / float64(total), nil
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Classifier is a trained binary classifier.
type Classifier interface {
	// Predict returns the predicted class (0 or 1) for a feature row.
	Predict(x []float64) int
}

// Accuracy returns the fraction of correct predictions on the dataset.
func Accuracy(c Classifier, d *Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	correct := 0
	for i := range d.X {
		if c.Predict(d.X[i]) == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

// F1 returns the F1 score of class 1 on the dataset.
func F1(c Classifier, d *Dataset) float64 {
	var tp, fp, fn float64
	for i := range d.X {
		pred := c.Predict(d.X[i])
		switch {
		case pred == 1 && d.Y[i] == 1:
			tp++
		case pred == 1 && d.Y[i] == 0:
			fp++
		case pred == 0 && d.Y[i] == 1:
			fn++
		}
	}
	if tp == 0 {
		return 0
	}
	precision := tp / (tp + fp)
	recall := tp / (tp + fn)
	return 2 * precision * recall / (precision + recall)
}

// LogisticRegression is a binary logistic-regression classifier trained by
// full-batch gradient descent on standardized features.
type LogisticRegression struct {
	Weights []float64
	Bias    float64
	// means/stds standardize inputs at predict time.
	means, stds []float64
}

// LogisticConfig configures training.
type LogisticConfig struct {
	// Epochs is the number of full-batch gradient steps (default 200).
	Epochs int
	// LearningRate is the step size (default 0.5).
	LearningRate float64
	// L2 is the ridge penalty (default 1e-3).
	L2 float64
}

func (c *LogisticConfig) defaults() {
	if c.Epochs == 0 {
		c.Epochs = 200
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.5
	}
	if c.L2 == 0 {
		c.L2 = 1e-3
	}
}

// TrainLogistic fits a logistic-regression model on the dataset.
func TrainLogistic(d *Dataset, cfg LogisticConfig) (*LogisticRegression, error) {
	if d.Len() == 0 || d.NumFeatures() == 0 {
		return nil, ErrNoData
	}
	cfg.defaults()
	n, m := d.Len(), d.NumFeatures()
	means := make([]float64, m)
	stds := make([]float64, m)
	for j := 0; j < m; j++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += d.X[i][j]
		}
		means[j] = sum / float64(n)
		acc := 0.0
		for i := 0; i < n; i++ {
			dv := d.X[i][j] - means[j]
			acc += dv * dv
		}
		stds[j] = math.Sqrt(acc / float64(n))
		if stds[j] == 0 {
			stds[j] = 1
		}
	}
	z := make([][]float64, n)
	for i := range z {
		row := make([]float64, m)
		for j := 0; j < m; j++ {
			row[j] = (d.X[i][j] - means[j]) / stds[j]
		}
		z[i] = row
	}
	w := make([]float64, m)
	b := 0.0
	grad := make([]float64, m)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for j := range grad {
			grad[j] = 0
		}
		gb := 0.0
		for i := 0; i < n; i++ {
			s := b
			for j := 0; j < m; j++ {
				s += w[j] * z[i][j]
			}
			p := sigmoid(s)
			err := p - float64(d.Y[i])
			for j := 0; j < m; j++ {
				grad[j] += err * z[i][j]
			}
			gb += err
		}
		inv := 1.0 / float64(n)
		for j := 0; j < m; j++ {
			w[j] -= cfg.LearningRate * (grad[j]*inv + cfg.L2*w[j])
		}
		b -= cfg.LearningRate * gb * inv
	}
	return &LogisticRegression{Weights: w, Bias: b, means: means, stds: stds}, nil
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// PredictProba returns the probability of class 1.
func (lr *LogisticRegression) PredictProba(x []float64) float64 {
	s := lr.Bias
	for j := range lr.Weights {
		v := 0.0
		if j < len(x) {
			v = x[j]
		}
		s += lr.Weights[j] * (v - lr.means[j]) / lr.stds[j]
	}
	return sigmoid(s)
}

// Predict returns the class with probability threshold 0.5.
func (lr *LogisticRegression) Predict(x []float64) int {
	if lr.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// TreeConfig configures decision-tree training.
type TreeConfig struct {
	// MaxDepth bounds the tree height (default 3).
	MaxDepth int
	// MinLeaf is the minimum rows per leaf (default 5).
	MinLeaf int
}

func (c *TreeConfig) defaults() {
	if c.MaxDepth == 0 {
		c.MaxDepth = 3
	}
	if c.MinLeaf == 0 {
		c.MinLeaf = 5
	}
}

// DecisionTree is a binary classification tree split on Gini impurity.
type DecisionTree struct {
	root *treeNode
}

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	leafClass int
	isLeaf    bool
}

// TrainTree fits a decision tree on the dataset.
func TrainTree(d *Dataset, cfg TreeConfig) (*DecisionTree, error) {
	if d.Len() == 0 || d.NumFeatures() == 0 {
		return nil, ErrNoData
	}
	cfg.defaults()
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	return &DecisionTree{root: buildNode(d, idx, cfg.MaxDepth, cfg.MinLeaf)}, nil
}

func majority(d *Dataset, idx []int) int {
	ones := 0
	for _, i := range idx {
		ones += d.Y[i]
	}
	if 2*ones >= len(idx) {
		return 1
	}
	return 0
}

func gini(ones, total int) float64 {
	if total == 0 {
		return 0
	}
	p := float64(ones) / float64(total)
	return 2 * p * (1 - p)
}

func buildNode(d *Dataset, idx []int, depth, minLeaf int) *treeNode {
	node := &treeNode{isLeaf: true, leafClass: majority(d, idx)}
	if depth == 0 || len(idx) < 2*minLeaf {
		return node
	}
	ones := 0
	for _, i := range idx {
		ones += d.Y[i]
	}
	if ones == 0 || ones == len(idx) {
		return node
	}
	bestGain := 0.0
	bestF, bestT := -1, 0.0
	parent := gini(ones, len(idx))
	m := d.NumFeatures()
	for f := 0; f < m; f++ {
		// Candidate thresholds: deciles of the feature over idx.
		vals := make([]float64, 0, len(idx))
		for _, i := range idx {
			vals = append(vals, d.X[i][f])
		}
		sortFloats(vals)
		for q := 1; q < 10; q++ {
			thr := vals[q*len(vals)/10]
			lo, lo1, ho, ho1 := 0, 0, 0, 0
			for _, i := range idx {
				if d.X[i][f] <= thr {
					lo++
					lo1 += d.Y[i]
				} else {
					ho++
					ho1 += d.Y[i]
				}
			}
			if lo < minLeaf || ho < minLeaf {
				continue
			}
			gain := parent - (float64(lo)*gini(lo1, lo)+float64(ho)*gini(ho1, ho))/float64(len(idx))
			if gain > bestGain+1e-12 {
				bestGain, bestF, bestT = gain, f, thr
			}
		}
	}
	if bestF < 0 {
		return node
	}
	var li, ri []int
	for _, i := range idx {
		if d.X[i][bestF] <= bestT {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	node.isLeaf = false
	node.feature = bestF
	node.threshold = bestT
	node.left = buildNode(d, li, depth-1, minLeaf)
	node.right = buildNode(d, ri, depth-1, minLeaf)
	return node
}

func sortFloats(vals []float64) {
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
}

// Predict returns the predicted class for a feature row.
func (t *DecisionTree) Predict(x []float64) int {
	n := t.root
	for !n.isLeaf {
		v := 0.0
		if n.feature < len(x) {
			v = x[n.feature]
		}
		if v <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.leafClass
}

// CrossValPredictions returns one held-out prediction per row using k-fold
// cross-validation with the same round-robin folds as CrossValAccuracy:
// predictions[i] is made by a model that never saw row i.
func CrossValPredictions(d *Dataset, k int, fit func(*Dataset) (Classifier, error)) ([]int, error) {
	if d.Len() == 0 {
		return nil, ErrNoData
	}
	if k < 2 {
		k = 2
	}
	folds := d.Folds(k)
	preds := make([]int, d.Len())
	for i := range folds {
		if folds[i].Len() == 0 {
			continue
		}
		var trainParts []*Dataset
		for j := range folds {
			if j != i {
				trainParts = append(trainParts, folds[j])
			}
		}
		train := merge(trainParts)
		if train.Len() == 0 {
			return nil, ErrNoData
		}
		clf, err := fit(train)
		if err != nil {
			return nil, err
		}
		for r := range folds[i].X {
			// Fold i holds original rows i, i+k, i+2k, … in order.
			preds[i+r*k] = clf.Predict(folds[i].X[r])
		}
	}
	return preds, nil
}

// MajorityClassifier predicts the constant majority class; it is the
// fallback when a prepared dataset has no numeric features left.
type MajorityClassifier struct {
	Class int
}

// Predict returns the constant class.
func (m MajorityClassifier) Predict([]float64) int { return m.Class }

// TrainMajority fits the majority baseline.
func TrainMajority(d *Dataset) MajorityClassifier {
	ones := 0
	for _, y := range d.Y {
		ones += y
	}
	if 2*ones >= len(d.Y) {
		return MajorityClassifier{Class: 1}
	}
	return MajorityClassifier{Class: 0}
}
