package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"lucidscript"
	"lucidscript/internal/gen"
	"lucidscript/internal/registry"
)

// regScripts renders the generative corpus as registry members.
func regScripts(t testing.TB, seed int64, n int) []registry.Script {
	t.Helper()
	out := make([]registry.Script, n)
	for i, su := range gen.New(seed).Scripts(n) {
		out[i] = registry.Script{ID: fmt.Sprintf("gen-%03d", i), Source: su.Source()}
	}
	return out
}

// registryServer boots a reloadable server: dataset "gen" served from a
// corpus registry directory, with the reloader re-opening that directory.
// Returns the registry handle the test mutates to publish new versions.
func registryServer(t *testing.T, cfg Config) (*registry.Registry, *Server, *Client) {
	t.Helper()
	dir := t.TempDir()
	reg, err := registry.Create(dir, regScripts(t, 42, 8))
	if err != nil {
		t.Fatal(err)
	}
	sources := gen.New(42).Sources(120)
	newSys := func() (*lucidscript.System, int64, error) {
		r, err := registry.Open(dir)
		if err != nil {
			return nil, 0, err
		}
		sys, err := lucidscript.NewSystemFromRegistry(r, sources, genOptions())
		if err != nil {
			return nil, 0, err
		}
		return sys, r.Version(), nil
	}
	sys, _, err := newSys()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Reloaders == nil {
		cfg.Reloaders = map[string]Reloader{}
	}
	cfg.Reloaders["gen"] = newSys
	srv, client := startServer(t, map[string]*lucidscript.System{"gen": sys}, cfg)
	return reg, srv, client
}

func TestReloadAdminGateAndSwap(t *testing.T) {
	reg, _, client := registryServer(t, Config{Workers: 2, AdminToken: "sesame"})
	ctx := context.Background()

	if _, err := client.ReloadCorpus(ctx, "gen", "wrong"); !errors.Is(err, ErrForbidden) {
		t.Fatalf("bad token: err = %v, want ErrForbidden", err)
	}
	if _, err := client.ReloadCorpus(ctx, "nope", "sesame"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown dataset: err = %v, want ErrNotFound", err)
	}

	// Nothing new published: the reload is a no-op.
	resp, err := client.ReloadCorpus(ctx, "gen", "sesame")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Changed || resp.CorpusVersion != 1 || resp.Previous != 1 {
		t.Fatalf("no-op reload = %+v", resp)
	}

	// Publish version 2 and swap it in.
	extra := regScripts(t, 5, 10)[8:]
	if err := reg.Apply(extra, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish(); err != nil {
		t.Fatal(err)
	}
	resp, err = client.ReloadCorpus(ctx, "gen", "sesame")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Changed || resp.CorpusVersion != 2 || resp.Previous != 1 {
		t.Fatalf("swap reload = %+v", resp)
	}
	if resp.CorpusScripts != 10 {
		t.Fatalf("corpus scripts after swap = %d, want 10", resp.CorpusScripts)
	}
	h, err := client.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Datasets["gen"].CorpusVersion != 2 {
		t.Fatalf("healthz corpus_version = %d, want 2", h.Datasets["gen"].CorpusVersion)
	}

	// A job submitted now reports — and ran against — version 2.
	st, err := client.Submit(ctx, "gen", gen.New(7).ScriptSource(), nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err = client.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.CorpusVersion != 2 {
		t.Fatalf("job corpus_version = %d, want 2", st.CorpusVersion)
	}
}

func TestReloadDisabledWithoutTokenOrRegistry(t *testing.T) {
	// No AdminToken configured: the endpoint is off even with a registry.
	_, _, client := registryServer(t, Config{Workers: 1})
	if _, err := client.ReloadCorpus(context.Background(), "gen", ""); !errors.Is(err, ErrForbidden) {
		t.Fatalf("token unset: err = %v, want ErrForbidden", err)
	}

	// Token set but the dataset has no reloader: 409 reload_unavailable.
	sys := genSystem(t, 42, genOptions())
	_, client2 := startServer(t, map[string]*lucidscript.System{"gen": sys}, Config{Workers: 1, AdminToken: "sesame"})
	if _, err := client2.ReloadCorpus(context.Background(), "gen", "sesame"); !errors.Is(err, ErrConflict) {
		t.Fatalf("no registry: err = %v, want ErrConflict", err)
	}
}

// TestHotSwapSoak hammers one dataset with concurrent submissions while the
// corpus is re-published and hot-swapped in a loop. The invariant under
// race: every job lands on exactly one published corpus version, and its
// standardized script is byte-identical to what a direct System over that
// version produces — no torn reads, no job crossing generations mid-run.
func TestHotSwapSoak(t *testing.T) {
	reg, _, client := registryServer(t, Config{Workers: 4, QueueDepth: 32, AdminToken: "sesame"})
	ctx := context.Background()
	sources := gen.New(42).Sources(120)
	user := gen.New(7).ScriptSource()

	// oracle maps each published corpus version to the standardized source
	// a direct System over that version yields for the soak's script.
	oracle := map[int64]string{}
	var oracleMu sync.Mutex
	record := func() {
		sys, err := lucidscript.NewSystemFromRegistry(reg, sources, genOptions())
		if err != nil {
			t.Error(err)
			return
		}
		sc, err := lucidscript.ParseScript(user)
		if err != nil {
			t.Error(err)
			return
		}
		res, err := sys.Standardize(sc)
		if err != nil {
			t.Error(err)
			return
		}
		oracleMu.Lock()
		oracle[sys.CorpusVersion()] = res.Script.Source()
		oracleMu.Unlock()
	}
	record() // version 1

	swaps := 4
	jobsPerWorker := 6
	submitters := 3
	if testing.Short() {
		swaps, jobsPerWorker = 2, 3
	}

	var wg sync.WaitGroup
	ids := make(chan string, swaps*2+submitters*jobsPerWorker)

	// Publisher: grow the corpus, publish, record the oracle, hot-swap.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < swaps; i++ {
			add := registry.Script{
				ID:     fmt.Sprintf("swap-%03d", i),
				Source: gen.New(int64(100 + i)).ScriptSource(),
			}
			if err := reg.Apply([]registry.Script{add}, nil); err != nil {
				t.Error(err)
				return
			}
			if _, err := reg.Publish(); err != nil {
				t.Error(err)
				return
			}
			record()
			if _, err := client.ReloadCorpus(ctx, "gen", "sesame"); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// Submitters: hammer the dataset throughout the swaps, retrying the
	// retryable races (queue closed under a swap, queue full).
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < jobsPerWorker; i++ {
				for {
					st, err := client.Submit(ctx, "gen", user, nil)
					if err == nil {
						ids <- st.ID
						break
					}
					if errors.Is(err, ErrDraining) || errors.Is(err, ErrOverloaded) {
						time.Sleep(5 * time.Millisecond)
						continue
					}
					t.Errorf("submit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(ids)

	done := 0
	for id := range ids {
		st, err := client.Wait(ctx, id, 5*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if st.State != StateDone {
			t.Fatalf("job %s state = %q (error %q, code %q)", id, st.State, st.Error, st.Code)
		}
		oracleMu.Lock()
		want, ok := oracle[st.CorpusVersion]
		oracleMu.Unlock()
		if !ok {
			t.Fatalf("job %s reports corpus version %d, which was never published", id, st.CorpusVersion)
		}
		if st.Result == nil || st.Result.Script != want {
			t.Fatalf("job %s (corpus v%d) result diverges from that version's direct standardization", id, st.CorpusVersion)
		}
		done++
	}
	if done != submitters*jobsPerWorker {
		t.Fatalf("completed %d jobs, want %d", done, submitters*jobsPerWorker)
	}
}
