package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"lucidscript"
	"lucidscript/internal/faults"
	"lucidscript/internal/gen"
)

// TestServeConcurrentClientsStress is the served counterpart of the batch
// generative stress test: several independent serve.Clients hammer one
// dataset concurrently with seeded random scripts, and every served result
// must come out byte-identical to a direct sequential Standardize of the
// same script on an identically-built System. Run under -race this is the
// data-race gate for the whole HTTP → queue → engine → shared-cache path.
func TestServeConcurrentClientsStress(t *testing.T) {
	const (
		clients       = 4
		jobsPerClient = 4
	)
	sys := genSystem(t, 42, genOptions())
	_, client := startServer(t, map[string]*lucidscript.System{"gen": sys},
		Config{Workers: 4, QueueDepth: clients * jobsPerClient})

	// One generator stream hands each client its own distinct scripts.
	jobs := gen.New(99).Scripts(clients * jobsPerClient)

	direct := genSystem(t, 42, genOptions())
	want := make([]string, len(jobs))
	for i, su := range jobs {
		res, err := direct.Standardize(su)
		if err != nil {
			t.Fatalf("direct %d: %v", i, err)
		}
		want[i] = res.Script.Source()
	}

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctx := context.Background()
			for k := 0; k < jobsPerClient; k++ {
				i := c*jobsPerClient + k
				sub, err := client.Submit(ctx, "gen", jobs[i].Source(), nil)
				if err != nil {
					errs[c] = err
					return
				}
				st, err := client.Wait(ctx, sub.ID, 5*time.Millisecond)
				if err != nil {
					errs[c] = err
					return
				}
				if st.State != StateDone {
					t.Errorf("client %d job %d state = %q (error %q, code %q)", c, i, st.State, st.Error, st.Code)
					continue
				}
				if st.Result.Script != want[i] {
					t.Errorf("client %d job %d served script diverges from direct sequential", c, i)
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", c, err)
		}
	}
}

// TestServeStressWithFaultArm re-runs a served workload with a
// deterministic fault armed at the batch.job site for exactly one queue id:
// that job alone must fail, with the fault_injected code, while every other
// job still comes out byte-identical to a direct sequential run.
func TestServeStressWithFaultArm(t *testing.T) {
	const jobCount = 8
	const faultedID = "5" // queue ids are dense, so the 6th admitted job

	opts := genOptions()
	opts.Faults = faults.New(17, faults.Rule{
		Site: faults.SiteBatchJob, Key: faultedID, Kind: faults.KindError, Prob: 1,
	})
	sys := genSystem(t, 42, opts)
	_, client := startServer(t, map[string]*lucidscript.System{"gen": sys},
		Config{Workers: 3, QueueDepth: jobCount})

	jobs := gen.New(99).Scripts(jobCount)
	direct := genSystem(t, 42, genOptions()) // fault-free reference
	want := make([]string, len(jobs))
	for i, su := range jobs {
		res, err := direct.Standardize(su)
		if err != nil {
			t.Fatalf("direct %d: %v", i, err)
		}
		want[i] = res.Script.Source()
	}

	// Submit sequentially so submission order == queue id, making the
	// faulted HTTP job deterministic; jobs still run concurrently on the
	// 3-worker pool.
	ctx := context.Background()
	ids := make([]string, len(jobs))
	for i, su := range jobs {
		sub, err := client.Submit(ctx, "gen", su.Source(), nil)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids[i] = sub.ID
	}

	var wg sync.WaitGroup
	final := make([]*JobStatus, len(jobs))
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := client.Wait(ctx, ids[i], 5*time.Millisecond)
			if err != nil {
				t.Errorf("Wait %d: %v", i, err)
				return
			}
			final[i] = st
		}(i)
	}
	wg.Wait()

	failed := 0
	for i, st := range final {
		if st == nil {
			continue
		}
		if i == 5 {
			if st.State != StateFailed || st.Code != CodeFaultInjected {
				t.Errorf("faulted job state/code = %q/%q, want %q/%q",
					st.State, st.Code, StateFailed, CodeFaultInjected)
			}
			if st.Error == "" {
				t.Error("faulted job has empty error")
			}
			failed++
			continue
		}
		if st.State != StateDone {
			t.Errorf("job %d state = %q (error %q, code %q)", i, st.State, st.Error, st.Code)
			failed++
			continue
		}
		if st.Result.Script != want[i] {
			t.Errorf("job %d served script diverges from fault-free direct run", i)
		}
	}
	if failed != 1 {
		t.Errorf("%d jobs failed, want exactly the faulted one", failed)
	}
}
