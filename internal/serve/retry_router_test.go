package serve

// RetryPolicy against router-shaped failures: the 503 no_replica a
// router emits during a failover window, the 429 router_shed of its
// load-shedding tier, and the Retry-After hints riding on both. The
// server side is scripted — these tests pin the client loop's behavior,
// not the router's.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// scriptedServer answers POST /v1/jobs from a queue of canned responses,
// repeating the last one forever, and counts what it served.
type scriptedServer struct {
	mu       sync.Mutex
	script   []func(w http.ResponseWriter)
	requests int
}

func (s *scriptedServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		step := s.script[0]
		if len(s.script) > 1 {
			s.script = s.script[1:]
		}
		s.requests++
		s.mu.Unlock()
		step(w)
	})
	return mux
}

func (s *scriptedServer) served() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests
}

// respondError writes one router/replica error shape, Retry-After header
// included when the hint is set.
func respondError(status int, code string, retryAfter time.Duration) func(http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/json")
		if retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(int((retryAfter+time.Second-1)/time.Second)))
		}
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(ErrorResponse{
			Code: code, Message: "scripted", Retryable: RetryableCode(code),
			RetryAfterMS: retryAfter.Milliseconds(),
		})
	}
}

// respondAccepted writes the 202 a successful submission produces.
func respondAccepted(id string) func(http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(JobStatus{ID: id, Dataset: "gen", State: StateQueued})
	}
}

func scriptedClient(t *testing.T, steps ...func(http.ResponseWriter)) (*Client, *scriptedServer) {
	t.Helper()
	ss := &scriptedServer{script: steps}
	hs := httptest.NewServer(ss.handler())
	t.Cleanup(hs.Close)
	return NewClient(hs.URL, nil), ss
}

// TestRetryRidesOutFailoverWindow: two 503 no_replica responses — the
// shape a router emits between a replica dying and its shards failing
// over — then success. The keyed retry loop must absorb the window and
// return the accepted job.
func TestRetryRidesOutFailoverWindow(t *testing.T) {
	client, ss := scriptedClient(t,
		respondError(http.StatusServiceUnavailable, CodeNoReplica, 10*time.Millisecond),
		respondError(http.StatusServiceUnavailable, CodeNoReplica, 10*time.Millisecond),
		respondAccepted("j-00000042"),
	)
	policy := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond}
	st, err := client.SubmitRetry(context.Background(), "gen", "x = 1", nil, "fo-key", policy)
	if err != nil {
		t.Fatalf("SubmitRetry across failover window: %v", err)
	}
	if st.ID != "j-00000042" {
		t.Errorf("got job %q", st.ID)
	}
	if got := ss.served(); got != 3 {
		t.Errorf("server saw %d attempts, want 3 (two 503s + success)", got)
	}
}

// TestRetryAbsorbsRouterShed: the router's load-shedding 429 is marked
// retryable and must be retried like the replica's own queue-full.
func TestRetryAbsorbsRouterShed(t *testing.T) {
	client, ss := scriptedClient(t,
		respondError(http.StatusTooManyRequests, CodeRouterShed, 10*time.Millisecond),
		respondAccepted("j-00000001"),
	)
	policy := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}
	if _, err := client.SubmitRetry(context.Background(), "gen", "x = 1", nil, "shed-key", policy); err != nil {
		t.Fatalf("SubmitRetry across shed: %v", err)
	}
	if got := ss.served(); got != 2 {
		t.Errorf("server saw %d attempts, want 2", got)
	}
}

// TestRetryRefusesKeylessSubmit: retrying without an idempotency key
// could execute a job twice across a failover, so SubmitRetry must refuse
// outright rather than degrade.
func TestRetryRefusesKeylessSubmit(t *testing.T) {
	client, _ := scriptedClient(t, respondAccepted("j-00000001"))
	defer func() {
		if recover() == nil {
			t.Fatal("keyless SubmitRetry did not panic")
		}
	}()
	client.SubmitRetry(context.Background(), "gen", "x = 1", nil, "", RetryPolicy{})
}

// TestRetryHonorsServerHint: a Retry-After hint longer than the computed
// backoff wins — the client must not hammer a server that named its
// recovery window.
func TestRetryHonorsServerHint(t *testing.T) {
	const hint = 300 * time.Millisecond
	client, _ := scriptedClient(t,
		respondError(http.StatusServiceUnavailable, CodeNoReplica, hint),
		respondAccepted("j-00000001"),
	)
	policy := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Second}
	start := time.Now()
	if _, err := client.SubmitRetry(context.Background(), "gen", "x = 1", nil, "hint-key", policy); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < hint {
		t.Errorf("retried after %v, before the server's %v Retry-After hint", elapsed, hint)
	}
}

// TestRetryCapsRunawayHint: MaxDelay bounds even an enormous server hint,
// so one bad Retry-After cannot stall a client for minutes.
func TestRetryCapsRunawayHint(t *testing.T) {
	client, ss := scriptedClient(t,
		respondError(http.StatusServiceUnavailable, CodeNoReplica, 10*time.Second),
	)
	policy := RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 100 * time.Millisecond}
	start := time.Now()
	_, err := client.SubmitRetry(context.Background(), "gen", "x = 1", nil, "cap-key", policy)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected the final 503 to surface")
	}
	if !Retryable(err) {
		t.Errorf("surfaced error lost its retryable verdict: %v", err)
	}
	if elapsed < 100*time.Millisecond || elapsed > 5*time.Second {
		t.Errorf("two attempts took %v, want one ~100ms capped wait", elapsed)
	}
	if got := ss.served(); got != 2 {
		t.Errorf("server saw %d attempts, want exactly MaxAttempts=2", got)
	}
}

// TestRetryStopsOnNonRetryable: a 400 must surface immediately — no
// backoff loop around a request the server called malformed.
func TestRetryStopsOnNonRetryable(t *testing.T) {
	client, ss := scriptedClient(t,
		respondError(http.StatusBadRequest, CodeBadRequest, 0),
		respondAccepted("j-00000001"),
	)
	policy := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	_, err := client.SubmitRetry(context.Background(), "gen", "x = 1", nil, "bad-key", policy)
	if err == nil {
		t.Fatal("400 did not surface")
	}
	if got := ss.served(); got != 1 {
		t.Errorf("server saw %d attempts for a non-retryable error, want 1", got)
	}
}
