// Package serve exposes the standardization engine as a long-running HTTP
// service: POST /v1/jobs submits a script against a named dataset (with
// optional Idempotency-Key dedup), GET /v1/jobs lists jobs with cursor
// pagination, GET /v1/jobs/{id} polls status and result, DELETE
// /v1/jobs/{id} cancels via the engine's context plumbing, and /healthz +
// /metrics expose readiness and the obs counters in Prometheus text
// format.
//
// The server keeps one lucidscript.System per named dataset, so corpus
// curation is paid exactly once per dataset for the life of the process,
// and every request's job shares that System's execution-prefix session
// cache through a bounded, admission-controlled JobQueue: overload is shed
// with 429 + Retry-After instead of stacked goroutines, and SIGTERM drains
// in-flight jobs before the listener closes.
//
// With Config.DataDir set the server is durable: every submission, state
// transition, and terminal result is appended to a per-data-dir
// write-ahead log (internal/serve/store) with periodic snapshots, so a
// restart against the same directory replays the full job history —
// finished jobs stay retrievable with their original results and output
// hashes, queued jobs are deterministically re-enqueued, and jobs that
// were mid-run are marked interrupted for the client to resubmit (their
// idempotency keys are released for exactly that).
//
// This file defines the JSON wire types, shared verbatim by Server and
// Client so the two cannot drift.
package serve

import (
	"time"

	"lucidscript"
)

// The machine-readable failure codes carried by ErrorResponse.Code and
// JobStatus.Code. HTTP status alone cannot distinguish, say, a canceled
// job from a fault-injected one, so every error payload carries one of
// these.
const (
	// CodeBadRequest marks a malformed submission (bad JSON, unparseable
	// script, unknown option).
	CodeBadRequest = "bad_request"
	// CodeUnknownDataset marks a submission naming a dataset the server
	// does not host.
	CodeUnknownDataset = "unknown_dataset"
	// CodeNotFound marks a job id the server has no record of.
	CodeNotFound = "not_found"
	// CodeQueueFull marks an admission-control rejection (HTTP 429); the
	// Retry-After header says when to come back.
	CodeQueueFull = "queue_full"
	// CodeShuttingDown marks work refused or drained because the server is
	// stopping (HTTP 503).
	CodeShuttingDown = "shutting_down"
	// CodeCanceled marks a job stopped by DELETE /v1/jobs/{id} or by its
	// submitter's context.
	CodeCanceled = "canceled"
	// CodeDeadlineExceeded marks a job stopped by the per-job timeout.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeJobPanicked marks a job whose standardization panicked; the
	// panic was contained to the job.
	CodeJobPanicked = "job_panicked"
	// CodeFaultInjected marks a job failed by the deterministic
	// chaos-injection hook (test deployments only).
	CodeFaultInjected = "fault_injected"
	// CodeInputScriptFails marks a job whose input script does not execute
	// against the dataset.
	CodeInputScriptFails = "input_script_fails"
	// CodeInterrupted marks a job that was queued or running when the
	// server stopped and could not be carried across the restart. It is
	// the one retryable terminal state: resubmitting with the same
	// idempotency key starts a fresh job instead of replaying this one.
	CodeInterrupted = "interrupted"
	// CodeIdempotencyConflict marks a submission whose Idempotency-Key is
	// already bound to a different request (other dataset or script), or a
	// request whose header and body keys disagree (HTTP 409).
	CodeIdempotencyConflict = "idempotency_conflict"
	// CodeNotReady marks a request refused because the server is still
	// booting — curating datasets or replaying its write-ahead log (HTTP
	// 503, see GET /readyz). Retry after the hint.
	CodeNotReady = "not_ready"
	// CodeNoReplica marks a router-originated 503: no ready replica
	// currently owns the requested shard (a failover is in progress) or
	// the owning replica could not be reached. Retry after the hint —
	// the prober ejects the replica and the ring fails the shard over.
	CodeNoReplica = "no_replica"
	// CodeRouterShed marks a router-level load shed (HTTP 429): the
	// shard's owner reported a queue depth at or over the router's
	// threshold, so the router refused before the replica saturated.
	CodeRouterShed = "router_shed"
	// CodeForbidden marks an admin request without a valid bearer token
	// (HTTP 403) — corpus reloads are admin-gated. Not retryable.
	CodeForbidden = "forbidden"
	// CodeReloadUnavailable marks a corpus reload against a dataset with no
	// reload source configured (HTTP 409): the server was booted from an
	// in-process corpus, not a registry. Not retryable.
	CodeReloadUnavailable = "reload_unavailable"
	// CodeReloadFailed marks a corpus reload whose registry re-open failed
	// (HTTP 500). The previous corpus version stays active; retry once the
	// registry directory is healthy.
	CodeReloadFailed = "reload_failed"
	// CodeInternal marks any other failure.
	CodeInternal = "internal"
)

// RetryableCode reports whether an error code marks a failure the client
// should retry (with the same idempotency key, after backing off). The
// judgment is the server's (or router's), carried to clients in
// ErrorResponse.Retryable and JobStatus via the interrupted state.
func RetryableCode(code string) bool {
	switch code {
	case CodeQueueFull, CodeShuttingDown, CodeInterrupted, CodeInternal,
		CodeNotReady, CodeNoReplica, CodeRouterShed:
		return true
	}
	return false
}

// The JobStatus.State values, mirroring lucidscript.JobState plus the two
// terminal failure refinements the HTTP surface distinguishes.
const (
	// StateQueued: admitted, waiting for a worker.
	StateQueued = "queued"
	// StateRunning: a worker is standardizing the script now.
	StateRunning = "running"
	// StateDone: finished successfully; Result is populated.
	StateDone = "done"
	// StateFailed: finished with an error; Error and Code are populated
	// and Result may hold a partial result.
	StateFailed = "failed"
	// StateCanceled: stopped by cancellation; Result may hold the partial
	// result found before the cancel landed.
	StateCanceled = "canceled"
	// StateInterrupted: the job was alive (queued or running) when the
	// server stopped and was not carried across the restart. Terminal and
	// retryable — resubmit, reusing the idempotency key if one was set.
	StateInterrupted = "interrupted"
)

// States lists every JobStatus.State value, in lifecycle order — the
// vocabulary the list endpoint's state filter validates against.
var States = []string{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled, StateInterrupted}

// TerminalState reports whether a wire state is a resting state — one a
// job can never leave (interrupted included: the job itself is over; only
// a fresh submission continues the work).
func TerminalState(state string) bool {
	switch state {
	case StateDone, StateFailed, StateCanceled, StateInterrupted:
		return true
	}
	return false
}

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	// Dataset names the server-side dataset/corpus pair to standardize
	// against (see GET /healthz for the hosted names).
	Dataset string `json:"dataset"`
	// Script is the LSL (pandas-style) source to standardize.
	Script string `json:"script"`
	// Options tweaks this job only. Search-shaping options (tau, measure,
	// beam …) are fixed per dataset at server start — curation depends on
	// them — so per-job options are deliberately small.
	Options *JobOptions `json:"options,omitempty"`
	// IdempotencyKey is the body-side spelling of the Idempotency-Key
	// header (either works; when both are set they must agree). A retried
	// submission carrying the key of an already-accepted job returns that
	// job's status (HTTP 200, Idempotency-Replayed: true) instead of
	// executing the work twice. Keys are released only when their job is
	// evicted or lands interrupted.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// JobOptions are the per-job knobs a submission may set.
type JobOptions struct {
	// Timeout bounds this job (Go duration string, e.g. "30s"). Empty
	// inherits the server's per-job timeout. An expired timeout fails the
	// job with CodeDeadlineExceeded and keeps the best partial result.
	Timeout string `json:"timeout,omitempty"`
}

// JobStatus is the GET /v1/jobs/{id} payload (POST and DELETE return it
// too, so every job endpoint speaks one shape).
type JobStatus struct {
	ID      string `json:"id"`
	Dataset string `json:"dataset"`
	// State is one of the State* constants.
	State string `json:"state"`
	// Error and Code are set on failed/canceled jobs; Code is one of the
	// Code* constants.
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
	// Result is set once the job is done (and on cancellations that
	// salvaged a partial result).
	Result *JobResult `json:"result,omitempty"`
	// IdempotencyKey echoes the submission's key, when one was sent.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// CorpusVersion is the registry snapshot version of the corpus this
	// job was admitted against. Hot-swapping the dataset's corpus never
	// moves an in-flight job: it finishes — and hashes its output — on the
	// version reported here. Zero when the dataset's corpus is unversioned
	// (curated in-process, no registry).
	CorpusVersion int64 `json:"corpus_version,omitempty"`
	// SubmittedAt / FinishedAt are server-clock timestamps (RFC 3339).
	SubmittedAt time.Time  `json:"submitted_at"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// ReloadResponse is the POST /v1/corpus/{dataset}/reload payload.
type ReloadResponse struct {
	// Dataset echoes the reloaded dataset's name.
	Dataset string `json:"dataset"`
	// CorpusVersion is the version now active; Previous is the version it
	// replaced. Equal (with Changed false) when the registry had nothing
	// newer.
	CorpusVersion int64 `json:"corpus_version"`
	Previous      int64 `json:"previous"`
	// Changed reports whether a swap actually happened.
	Changed bool `json:"changed"`
	// CorpusScripts is the active corpus size after the reload.
	CorpusScripts int `json:"corpus_scripts"`
}

// ListResponse is the GET /v1/jobs payload: one page of job statuses in
// submission (id) order plus the cursor for the next page.
type ListResponse struct {
	Jobs []JobStatus `json:"jobs"`
	// NextCursor is passed back as ?cursor= to fetch the page after this
	// one; empty when this page reaches the end. The cursor is an opaque
	// position token — evictions and new submissions between pages are
	// handled (no duplicates, no skips among surviving jobs).
	NextCursor string `json:"next_cursor,omitempty"`
}

// JobResult is the standardization outcome carried by JobStatus.
type JobResult struct {
	// Script is the standardized LSL source.
	Script string `json:"script"`
	// OutputHash is the SHA-256 hex digest of the standardized script's
	// output table (CSV serialization over the full dataset) — compare it
	// against lsstd's "output hash" stderr line to confirm the service
	// and the CLI produce the same table.
	OutputHash string `json:"output_hash,omitempty"`
	// OutputHashError explains an absent OutputHash (e.g. the script
	// produces no output table), so a missing hash is never silent.
	OutputHashError string `json:"output_hash_error,omitempty"`
	// REBefore/REAfter/ImprovementPct/IntentValue mirror
	// lucidscript.Result.
	REBefore       float64 `json:"re_before"`
	REAfter        float64 `json:"re_after"`
	ImprovementPct float64 `json:"improvement_pct"`
	IntentValue    float64 `json:"intent_value"`
	// Transformations and Explanations describe the applied edits.
	Transformations []string `json:"transformations,omitempty"`
	Explanations    []string `json:"explanations,omitempty"`
	// Health is present when the run needed fault containment.
	Health *JobHealth `json:"health,omitempty"`
	// Timings is the per-phase wall-clock breakdown in milliseconds.
	Timings JobTimings `json:"timings"`
}

// JobHealth is the wire form of lucidscript.Health.
type JobHealth struct {
	Quarantined    int  `json:"quarantined"`
	Panicked       int  `json:"panicked"`
	Exhausted      int  `json:"exhausted"`
	CurateSkipped  int  `json:"curate_skipped"`
	VerifyDegraded bool `json:"verify_degraded"`
}

// JobTimings is the wire form of lucidscript.Timings, in milliseconds.
type JobTimings struct {
	CurateMS float64 `json:"curate_ms"`
	StepsMS  float64 `json:"get_steps_ms"`
	TopKMS   float64 `json:"top_k_beams_ms"`
	CheckMS  float64 `json:"check_executes_ms"`
	VerifyMS float64 `json:"verify_constraints_ms"`
	TotalMS  float64 `json:"total_ms"`
}

// ErrorResponse is the body of every non-2xx response — one uniform
// shape: a machine-readable code, a human-readable message, whether the
// failure is worth retrying, and (when it is) how long to wait.
type ErrorResponse struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is the human-readable error.
	Message string `json:"message"`
	// Retryable reports whether the same request may succeed later; the
	// client's backoff helper keys off it (see Client and RetryPolicy).
	Retryable bool `json:"retryable"`
	// RetryAfterMS hints when to retry (429/503 only); the same value is
	// in the Retry-After header in seconds.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// ReadyResponse is the GET /readyz 200 payload. Readiness is a separate
// endpoint from /healthz on purpose: /healthz answers 200 for as long as
// the process is alive (liveness, with diagnostic payload), while
// /readyz flips to 503 whenever the server should not receive new work —
// while draining, and while a restarting daemon is still curating
// datasets or replaying its write-ahead log. The router's prober keys
// exclusively off /readyz.
type ReadyResponse struct {
	// Status is "ready" (200) or, on the boot surface's 503 path, the
	// uniform ErrorResponse is returned instead.
	Status string `json:"status"`
}

// HealthResponse is the GET /healthz payload: machine-readable liveness
// diagnostics for pollers and the multi-replica router's prober (which
// lifts queue depths and the drain flag from it; the go/no-go readiness
// bit itself comes from GET /readyz).
type HealthResponse struct {
	// Status is "ok" while serving and "draining" once shutdown began;
	// Draining is the same signal as a bool.
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	// QueueDepth and Running aggregate the per-dataset queued and
	// executing job counts.
	QueueDepth int `json:"queue_depth"`
	Running    int `json:"running"`
	// Datasets maps each hosted dataset to its queue snapshot.
	Datasets map[string]DatasetHealth `json:"datasets"`
	// Store reports write-ahead-log health when the server is durable
	// (Config.DataDir set); nil otherwise.
	Store *StoreHealth `json:"store,omitempty"`
}

// DatasetHealth is one dataset's queue snapshot inside HealthResponse.
type DatasetHealth struct {
	// QueueDepth is the admitted-but-waiting count; Running is how many
	// jobs this dataset's workers are executing right now.
	QueueDepth    int   `json:"queue_depth"`
	QueueCapacity int   `json:"queue_capacity"`
	Workers       int   `json:"workers"`
	Running       int   `json:"running"`
	Submitted     int64 `json:"submitted"`
	Rejected      int64 `json:"rejected"`
	Completed     int64 `json:"completed"`
	Failed        int64 `json:"failed"`
	// CorpusScripts is the curated corpus size backing this dataset.
	CorpusScripts int `json:"corpus_scripts"`
	// CorpusVersion is the active registry snapshot version (0 when the
	// corpus is unversioned). Watch it across POST /v1/corpus/…/reload to
	// confirm a hot-swap landed.
	CorpusVersion int64 `json:"corpus_version,omitempty"`
}

// StoreHealth is the durable store's snapshot inside HealthResponse.
type StoreHealth struct {
	// WALLagEntries/WALLagBytes measure how far the write-ahead log has
	// run ahead of the last snapshot — the recovery debt a restart would
	// replay.
	WALLagEntries int64 `json:"wal_lag_entries"`
	WALLagBytes   int64 `json:"wal_lag_bytes"`
	// Compactions counts snapshot rewrites since this process started.
	Compactions int64 `json:"compactions"`
	// Jobs is how many job records the store currently holds.
	Jobs int `json:"jobs"`
}

// toWireResult converts a facade Result (possibly a partial one) plus its
// output hash into the wire shape.
func toWireResult(res *lucidscript.Result, outputHash string) *JobResult {
	if res == nil {
		return nil
	}
	jr := &JobResult{
		Script:          res.Script.Source(),
		OutputHash:      outputHash,
		REBefore:        res.REBefore,
		REAfter:         res.REAfter,
		ImprovementPct:  res.ImprovementPct,
		IntentValue:     res.IntentValue,
		Transformations: res.Transformations,
		Explanations:    res.Explanations,
		Timings: JobTimings{
			CurateMS: ms(res.Timings.CurateSearchSpace),
			StepsMS:  ms(res.Timings.GetSteps),
			TopKMS:   ms(res.Timings.GetTopKBeams),
			CheckMS:  ms(res.Timings.CheckIfExecutes),
			VerifyMS: ms(res.Timings.VerifyConstraints),
			TotalMS:  ms(res.Timings.Total),
		},
	}
	if res.Health.Degraded() {
		jr.Health = &JobHealth{
			Quarantined:    res.Health.Total(),
			Panicked:       res.Health.Check.Panicked + res.Health.Verify.Panicked,
			Exhausted:      res.Health.Check.Exhausted + res.Health.Verify.Exhausted,
			CurateSkipped:  res.Health.CurateSkipped,
			VerifyDegraded: res.Health.VerifyDegraded,
		}
	}
	return jr
}

// ms converts a duration to fractional milliseconds for the wire.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
