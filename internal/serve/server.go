package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lucidscript"
	"lucidscript/internal/faults"
	"lucidscript/internal/obs"
)

// Config tunes a Server. The zero value is serviceable: every field
// resolves to the default documented on it.
type Config struct {
	// Workers is each dataset's worker-pool size; ≤ 0 resolves to the
	// System's Options.BatchWorkers (itself defaulting to GOMAXPROCS).
	Workers int
	// QueueDepth bounds each dataset's admitted-but-waiting jobs; ≤ 0
	// resolves to 2× the resolved worker count. A full queue rejects
	// submissions with 429 + Retry-After.
	QueueDepth int
	// RetryAfter is the client back-off hint on 429/503 responses; ≤ 0
	// resolves to 1s.
	RetryAfter time.Duration
	// JobRetention is how long a finished job's record (status, result,
	// output hash) stays pollable before it is evicted and GET/DELETE on
	// its id return 404; ≤ 0 resolves to 15m. Without eviction the job map
	// would grow with every submission for the life of the server.
	JobRetention time.Duration
	// Metrics receives queue and HTTP counters and backs GET /metrics.
	// Nil resolves to a fresh private registry. To fold the search's own
	// counters into the same exposition, pass the registry the Systems
	// were built with (Options.Metrics).
	Metrics *lucidscript.Metrics
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 15 * time.Minute
	}
	if c.Metrics == nil {
		c.Metrics = lucidscript.NewMetrics()
	}
	return c
}

// dataset is one hosted dataset/corpus pair: the curated System and its
// long-lived job queue. hashSem bounds concurrent output-hash executions
// to the queue's worker count, so a burst of completions cannot run more
// full-data passes at once than the queue itself would admit.
type dataset struct {
	name    string
	sys     *lucidscript.System
	queue   *lucidscript.JobQueue
	hashSem chan struct{}
}

// jobRecord tracks one submitted job until its retention window expires.
type jobRecord struct {
	id        string
	dataset   *dataset
	job       *lucidscript.QueuedJob
	submitted time.Time

	// finalized is closed by the per-job finalizer goroutine once
	// finished, hash, and hashErr are recorded; status only reads them
	// after the close, so no lock is needed.
	finalized chan struct{}
	finished  time.Time
	hash      string
	hashErr   error
}

// Server hosts the standardization service. Build it with NewServer, mount
// Handler on an http.Server, and call Shutdown to drain.
type Server struct {
	cfg      Config
	datasets map[string]*dataset
	draining atomic.Bool

	mu   sync.RWMutex
	jobs map[string]*jobRecord
	seq  atomic.Int64
}

// NewServer builds a server hosting one System per named dataset. Each
// System's corpus was curated when the caller built it — NewServer starts
// the per-dataset worker pools, so the server is serving-ready on return.
func NewServer(systems map[string]*lucidscript.System, cfg Config) (*Server, error) {
	if len(systems) == 0 {
		return nil, errors.New("serve: no datasets configured")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		datasets: make(map[string]*dataset, len(systems)),
		jobs:     map[string]*jobRecord{},
	}
	for name, sys := range systems {
		if sys == nil {
			return nil, fmt.Errorf("serve: dataset %q has a nil System", name)
		}
		d := &dataset{
			name:  name,
			sys:   sys,
			queue: sys.NewJobQueue(cfg.Workers, cfg.QueueDepth),
		}
		d.hashSem = make(chan struct{}, d.queue.Stats().Workers)
		s.datasets[name] = d
	}
	return s, nil
}

// Handler returns the service's routes. Mount it as an http.Server's (or
// httptest.Server's) handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.instrument(s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument(s.handleGet))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument(s.handleCancel))
	mux.HandleFunc("GET /healthz", s.instrument(s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument(s.handleMetrics))
	return mux
}

// Shutdown drains the service: new submissions are refused with 503,
// in-flight jobs finish, and still-queued jobs fail with
// CodeShuttingDown. If ctx expires first, in-flight jobs are canceled and
// complete with their partial-result-on-cancel semantics; Shutdown still
// waits for them to land — including their finalizers (output hash) — so
// every recorded job reads as terminal before this returns. Job status
// stays readable afterward (until its retention window expires); closing
// the HTTP listener is the caller's move (http.Server.Shutdown), made
// after this returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, d := range s.datasets {
			d.queue.Close()
		}
		s.mu.RLock()
		recs := make([]*jobRecord, 0, len(s.jobs))
		for _, rec := range s.jobs {
			recs = append(recs, rec)
		}
		s.mu.RUnlock()
		for _, rec := range recs {
			<-rec.finalized
		}
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.RLock()
		for _, rec := range s.jobs {
			rec.job.Cancel()
		}
		s.mu.RUnlock()
		<-done
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// instrument wraps a handler with the HTTP request/error counters.
func (s *Server) instrument(h func(http.ResponseWriter, *http.Request)) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metric(obs.MHTTPRequests, 1)
		h(w, r)
	}
}

// handleSubmit admits one job: parse, resolve the dataset, enqueue, 202.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeUnavailable(w)
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("decoding request body: %v", err))
		return
	}
	d, ok := s.datasets[req.Dataset]
	if !ok {
		s.writeError(w, http.StatusNotFound, CodeUnknownDataset, fmt.Sprintf("unknown dataset %q", req.Dataset))
		return
	}
	sc, err := lucidscript.ParseScript(req.Script)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("parsing script: %v", err))
		return
	}
	ctx, cancel, err := jobContext(req.Options)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	job, err := d.queue.Submit(ctx, sc)
	if err != nil {
		cancel()
	}
	switch {
	case errors.Is(err, lucidscript.ErrQueueFull):
		s.writeError(w, http.StatusTooManyRequests, CodeQueueFull,
			fmt.Sprintf("dataset %q queue is full", req.Dataset))
		return
	case errors.Is(err, lucidscript.ErrQueueClosed):
		s.writeUnavailable(w)
		return
	case err != nil:
		s.writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	rec := &jobRecord{
		id:        fmt.Sprintf("j-%08d", s.seq.Add(1)),
		dataset:   d,
		job:       job,
		submitted: time.Now().UTC(),
		finalized: make(chan struct{}),
	}
	s.mu.Lock()
	s.jobs[rec.id] = rec
	s.mu.Unlock()
	go s.finalizeJob(rec, cancel)
	s.writeJSON(w, http.StatusAccepted, s.status(rec))
}

// finalizeJob is each job's completion path, run on a per-job goroutine:
// it waits for the job to land, releases the per-job timeout context,
// computes the output hash off the HTTP handlers (bounded by the
// dataset's hashSem so completions cannot out-run the queue's admission
// control), publishes the terminal fields by closing rec.finalized, and
// schedules the record's eviction after the retention window.
func (s *Server) finalizeJob(rec *jobRecord, cancel context.CancelFunc) {
	<-rec.job.Done()
	cancel()
	res, err := rec.job.Result()
	if err == nil && res != nil {
		rec.dataset.hashSem <- struct{}{}
		rec.hash, rec.hashErr = rec.dataset.sys.OutputHash(res.Script)
		<-rec.dataset.hashSem
	}
	rec.finished = time.Now().UTC()
	close(rec.finalized)
	time.AfterFunc(s.cfg.JobRetention, func() {
		s.mu.Lock()
		delete(s.jobs, rec.id)
		s.mu.Unlock()
	})
}

// jobContext builds the submission-scoped context from per-job options.
// The context is deliberately detached from the HTTP request's — the job
// outlives the POST that created it — so the returned cancel must be
// called when the job lands (or the submission fails).
func jobContext(opts *JobOptions) (context.Context, context.CancelFunc, error) {
	ctx := context.Background()
	if opts == nil || opts.Timeout == "" {
		return ctx, func() {}, nil
	}
	d, err := time.ParseDuration(opts.Timeout)
	if err != nil {
		return nil, func() {}, fmt.Errorf("invalid options.timeout %q: %v", opts.Timeout, err)
	}
	if d <= 0 {
		return nil, func() {}, fmt.Errorf("invalid options.timeout %q: must be positive", opts.Timeout)
	}
	ctx, cancel := context.WithTimeout(ctx, d)
	return ctx, cancel, nil
}

// handleGet reports one job's status.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	rec := s.lookup(r.PathValue("id"))
	if rec == nil {
		s.writeError(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	s.writeJSON(w, http.StatusOK, s.status(rec))
}

// handleCancel cancels one job and returns its (possibly already final)
// status. Canceling a finished job is a no-op, not an error.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	rec := s.lookup(r.PathValue("id"))
	if rec == nil {
		s.writeError(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	rec.job.Cancel()
	s.writeJSON(w, http.StatusOK, s.status(rec))
}

// handleHealthz reports liveness and per-dataset queue snapshots.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{Status: "ok", Datasets: map[string]DatasetHealth{}}
	if s.draining.Load() {
		resp.Status = "draining"
	}
	for name, d := range s.datasets {
		st := d.queue.Stats()
		resp.Datasets[name] = DatasetHealth{
			QueueDepth:    st.Depth,
			QueueCapacity: st.Capacity,
			Workers:       st.Workers,
			Submitted:     st.Submitted,
			Rejected:      st.Rejected,
			Completed:     st.Completed,
			Failed:        st.Failed,
			CorpusScripts: d.sys.Stats().Scripts,
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleMetrics dumps the configured registry in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.cfg.Metrics.WritePrometheus(w)
}

// lookup resolves a job id to its record.
func (s *Server) lookup(id string) *jobRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.jobs[id]
}

// status builds the wire status of one job from its live state. The
// terminal branch is gated on rec.finalized — not the job's own State —
// so a status read can never observe a half-published completion: until
// the finalizer has recorded the finish time and output hash, the job
// reports queued/running.
func (s *Server) status(rec *jobRecord) JobStatus {
	st := JobStatus{
		ID:          rec.id,
		Dataset:     rec.dataset.name,
		SubmittedAt: rec.submitted,
	}
	select {
	case <-rec.finalized:
	default:
		if rec.job.State() == lucidscript.JobRunning {
			st.State = StateRunning
		} else {
			st.State = StateQueued
		}
		return st
	}
	res, err := rec.job.Result()
	st.FinishedAt = &rec.finished
	st.Result = toWireResult(res, rec.hash)
	if rec.hashErr != nil && st.Result != nil {
		st.Result.OutputHashError = rec.hashErr.Error()
	}
	if err == nil {
		st.State = StateDone
		return st
	}
	st.Error = err.Error()
	st.Code = errorCode(err)
	if st.Code == CodeCanceled {
		st.State = StateCanceled
	} else {
		st.State = StateFailed
	}
	return st
}

// errorCode maps a job error chain to its machine-readable code. Order
// matters: an injected fault wrapped by the job layer should read as
// fault_injected, not job_panicked.
func errorCode(err error) string {
	switch {
	case errors.Is(err, faults.ErrInjected):
		return CodeFaultInjected
	case errors.Is(err, lucidscript.ErrQueueClosed):
		return CodeShuttingDown
	case errors.Is(err, lucidscript.ErrDeadlineExceeded):
		return CodeDeadlineExceeded
	case errors.Is(err, lucidscript.ErrCanceled):
		return CodeCanceled
	case errors.Is(err, lucidscript.ErrJobPanicked):
		return CodeJobPanicked
	case errors.Is(err, lucidscript.ErrInputScriptFails):
		return CodeInputScriptFails
	}
	return CodeInternal
}

// writeUnavailable is the draining 503.
func (s *Server) writeUnavailable(w http.ResponseWriter) {
	w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
	s.writeErrorBody(w, http.StatusServiceUnavailable, ErrorResponse{
		Error:        "server is shutting down",
		Code:         CodeShuttingDown,
		RetryAfterMS: s.cfg.RetryAfter.Milliseconds(),
	})
}

// writeError writes a non-2xx JSON error, attaching Retry-After on 429.
func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	resp := ErrorResponse{Error: msg, Code: code}
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		resp.RetryAfterMS = s.cfg.RetryAfter.Milliseconds()
	}
	s.writeErrorBody(w, status, resp)
}

func (s *Server) writeErrorBody(w http.ResponseWriter, status int, resp ErrorResponse) {
	s.metric(obs.MHTTPErrors, 1)
	s.writeJSON(w, status, resp)
}

// writeJSON writes one JSON response.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// metric updates the server registry.
func (s *Server) metric(name string, delta int64) {
	s.cfg.Metrics.Counter(name).Add(delta)
}

// retryAfterSeconds renders a duration as the Retry-After header's integer
// seconds, rounding up so "500ms" does not become "0".
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
