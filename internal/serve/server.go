package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lucidscript"
	"lucidscript/internal/faults"
	"lucidscript/internal/obs"
	"lucidscript/internal/serve/store"
)

// Config tunes a Server. The zero value is serviceable: every field
// resolves to the default documented on it.
type Config struct {
	// Workers is each dataset's worker-pool size; ≤ 0 resolves to the
	// System's Options.BatchWorkers (itself defaulting to GOMAXPROCS).
	Workers int
	// QueueDepth bounds each dataset's admitted-but-waiting jobs; ≤ 0
	// resolves to 2× the resolved worker count. A full queue rejects
	// submissions with 429 + Retry-After.
	QueueDepth int
	// RetryAfter is the client back-off hint on 429/503 responses; ≤ 0
	// resolves to 1s.
	RetryAfter time.Duration
	// JobRetention is how long a finished job's record (status, result,
	// output hash) stays pollable before it is evicted and GET/DELETE on
	// its id return 404; ≤ 0 resolves to 15m. Without eviction the job map
	// would grow with every submission for the life of the server. On a
	// durable server eviction also removes the record from the store.
	JobRetention time.Duration
	// DataDir, when non-empty, makes the server durable: jobs are recorded
	// in a write-ahead log + snapshot under this directory
	// (internal/serve/store) and survive a restart against the same path —
	// finished jobs keep their results and output hashes, queued jobs are
	// re-enqueued in submission order, and jobs that were mid-run land in
	// the interrupted state. Empty keeps the old in-memory behavior.
	DataDir string
	// SnapshotEvery is the WAL-appends-per-snapshot compaction cadence of
	// the durable store; ≤ 0 resolves to the store's default (512).
	// Ignored without DataDir.
	SnapshotEvery int
	// Metrics receives queue and HTTP counters and backs GET /metrics.
	// Nil resolves to a fresh private registry. To fold the search's own
	// counters into the same exposition, pass the registry the Systems
	// were built with (Options.Metrics).
	Metrics *lucidscript.Metrics
	// AdminToken gates POST /v1/corpus/{dataset}/reload: requests must
	// carry it as "Authorization: Bearer <token>". Empty disables the
	// endpoint entirely (every reload is 403) — hot-swap is opt-in.
	AdminToken string
	// Reloaders supplies each dataset's corpus-reload source: the function
	// re-opens the dataset's registry and returns a System over the newest
	// published snapshot plus that snapshot's version. Datasets without an
	// entry reject reloads with CodeReloadUnavailable. A daemon booted from
	// a registry directory wires one per dataset (see cmd/lsserved).
	Reloaders map[string]Reloader
}

// Reloader rebuilds one dataset's System from its corpus source's newest
// published version, returning that version. Called with the dataset's
// reload mutex held — at most one reload per dataset runs at a time.
type Reloader func() (*lucidscript.System, int64, error)

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 15 * time.Minute
	}
	if c.Metrics == nil {
		c.Metrics = lucidscript.NewMetrics()
	}
	return c
}

// corpusState is one corpus generation of a dataset: the System curated
// (or registry-loaded) at that version, its job queue, and the hash
// semaphore bounding concurrent output-hash executions to the queue's
// worker count. A hot-swap builds a whole new corpusState and swings the
// dataset's active pointer; jobs hold the corpusState they were admitted
// against, so they execute and hash on the corpus version they started
// with no matter how many swaps happen while they run.
type corpusState struct {
	version int64
	sys     *lucidscript.System
	queue   *lucidscript.JobQueue
	hashSem chan struct{}
}

// dataset is one hosted dataset name: the atomically swappable active
// corpus plus the reload source. reloadMu serializes reloads per dataset;
// the active pointer is what the submit path reads, lock-free.
type dataset struct {
	name     string
	active   atomic.Pointer[corpusState]
	reload   Reloader
	reloadMu sync.Mutex
}

// jobRecord tracks one submitted job until its retention window expires.
type jobRecord struct {
	id          string
	datasetName string
	idemKey     string
	script      string
	submitted   time.Time

	// corpus and job are nil for records recovered from the store in a
	// terminal state — there is nothing left to execute or hash. corpus is
	// the generation the job was admitted against, pinned across swaps.
	corpus *corpusState
	job    *lucidscript.QueuedJob

	// finalized is closed once terminal holds the job's final wire status;
	// status only reads terminal after the close, so no lock is needed. It
	// is closed at construction for recovered-terminal records.
	finalized chan struct{}
	terminal  *JobStatus
}

// RecoveryStats summarizes what a durable server replayed at startup.
type RecoveryStats struct {
	// Terminal counts jobs recovered in a resting state (done, failed,
	// canceled, interrupted) with their original results intact.
	Terminal int
	// Requeued counts jobs found queued in the log and deterministically
	// re-enqueued, in original submission order.
	Requeued int
	// Interrupted counts jobs that were queued or running at the crash and
	// could not be carried over — marked with the interrupted state for
	// clients to resubmit.
	Interrupted int
}

// Server hosts the standardization service. Build it with NewServer, mount
// Handler on an http.Server, and call Shutdown to drain.
type Server struct {
	cfg      Config
	datasets map[string]*dataset
	draining atomic.Bool
	store    *store.Store
	recovery RecoveryStats

	mu   sync.RWMutex
	jobs map[string]*jobRecord
	idem map[string]*jobRecord
	seq  atomic.Int64
}

// NewServer builds a server hosting one System per named dataset. Each
// System's corpus was curated when the caller built it — NewServer starts
// the per-dataset worker pools, so the server is serving-ready on return.
// With cfg.DataDir set it first replays the durable store: terminal jobs
// are restored as-is, queued jobs re-enqueued (they may begin executing
// before NewServer returns), and mid-run jobs marked interrupted.
func NewServer(systems map[string]*lucidscript.System, cfg Config) (*Server, error) {
	if len(systems) == 0 {
		return nil, errors.New("serve: no datasets configured")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		datasets: make(map[string]*dataset, len(systems)),
		jobs:     map[string]*jobRecord{},
		idem:     map[string]*jobRecord{},
	}
	for name, sys := range systems {
		if sys == nil {
			return nil, fmt.Errorf("serve: dataset %q has a nil System", name)
		}
		d := &dataset{name: name, reload: cfg.Reloaders[name]}
		d.active.Store(s.newCorpusState(sys))
		s.datasets[name] = d
	}
	for name := range cfg.Reloaders {
		if _, ok := s.datasets[name]; !ok {
			return nil, fmt.Errorf("serve: reloader configured for unhosted dataset %q", name)
		}
	}
	if cfg.DataDir != "" {
		st, err := store.Open(cfg.DataDir, store.Options{SnapshotEvery: cfg.SnapshotEvery})
		if err != nil {
			return nil, err
		}
		s.store = st
		if err := s.recover(); err != nil {
			st.Close()
			return nil, err
		}
	}
	return s, nil
}

// newCorpusState wraps a System into a running corpus generation: a fresh
// job queue and a hash semaphore sized to its worker pool. The version
// comes from the System itself (0 for in-process corpora).
func (s *Server) newCorpusState(sys *lucidscript.System) *corpusState {
	cs := &corpusState{
		version: sys.CorpusVersion(),
		sys:     sys,
		queue:   sys.NewJobQueue(s.cfg.Workers, s.cfg.QueueDepth),
	}
	cs.hashSem = make(chan struct{}, cs.queue.Stats().Workers)
	return cs
}

// recover replays the durable store into live server state: the id
// sequence resumes past all recorded history, terminal records become
// readable job statuses again, queued records are re-enqueued in original
// submission order, and records caught queued-but-unrequeueable or running
// are finished as interrupted.
func (s *Server) recover() error {
	s.seq.Store(s.store.MaxSeq())
	for _, rec := range s.store.Records() {
		switch {
		case store.Terminal(rec.State):
			s.adoptTerminal(rec)
			s.recovery.Terminal++
		case rec.State == store.StateRunning:
			s.interruptRecord(rec, "job was running when the server stopped; resubmit to re-execute")
		default: // queued
			s.requeueRecord(rec)
		}
	}
	return nil
}

// adoptTerminal rebuilds the in-memory record of a job that finished in a
// previous life, scheduling its eviction relative to its original finish
// time so retention spans restarts.
func (s *Server) adoptTerminal(rec *store.Record) {
	st := statusFromRecord(rec)
	jr := &jobRecord{
		id:          rec.ID,
		datasetName: rec.Dataset,
		idemKey:     rec.IdempotencyKey,
		script:      rec.Script,
		submitted:   rec.SubmittedAt,
		finalized:   closedChan(),
		terminal:    st,
	}
	s.jobs[jr.id] = jr
	if jr.idemKey != "" && st.State != StateInterrupted {
		s.idem[jr.idemKey] = jr
	}
	retain := s.cfg.JobRetention
	if !rec.FinishedAt.IsZero() {
		retain = time.Until(rec.FinishedAt.Add(s.cfg.JobRetention))
		if retain < 0 {
			retain = 0
		}
	}
	s.scheduleEviction(jr, retain)
}

// interruptRecord finishes a stranded job in the interrupted state — the
// retryable terminal state whose idempotency key is deliberately NOT
// re-bound, so a client resubmitting with the same key starts fresh work.
func (s *Server) interruptRecord(rec *store.Record, why string) {
	now := time.Now().UTC()
	_ = s.store.AppendFinish(rec.ID, store.StateInterrupted, CodeInterrupted, why, nil, now)
	rec.State, rec.Code, rec.Error = store.StateInterrupted, CodeInterrupted, why
	rec.Result, rec.FinishedAt = nil, now
	s.adoptTerminal(rec)
	s.recovery.Interrupted++
}

// requeueRecord resubmits a job the crash caught still queued. Failures to
// re-enqueue (dataset no longer hosted, script no longer parses, queue
// capacity shrank) finish the job as interrupted instead — deterministic
// either way, processed in original submission order.
func (s *Server) requeueRecord(rec *store.Record) {
	d, ok := s.datasets[rec.Dataset]
	if !ok {
		s.interruptRecord(rec, fmt.Sprintf("dataset %q is no longer hosted", rec.Dataset))
		return
	}
	sc, err := lucidscript.ParseScript(rec.Script)
	if err != nil {
		s.interruptRecord(rec, fmt.Sprintf("stored script no longer parses: %v", err))
		return
	}
	// A requeued job runs on the corpus active now — possibly newer than
	// the one it was originally admitted against; its terminal status
	// reports the version it actually executed on.
	cs := d.active.Load()
	job, err := cs.queue.SubmitObserved(context.Background(), sc, s.observer(rec.ID))
	if err != nil {
		s.interruptRecord(rec, fmt.Sprintf("re-enqueue failed: %v", err))
		return
	}
	jr := &jobRecord{
		id:          rec.ID,
		datasetName: rec.Dataset,
		idemKey:     rec.IdempotencyKey,
		script:      rec.Script,
		submitted:   rec.SubmittedAt,
		corpus:      cs,
		job:         job,
		finalized:   make(chan struct{}),
	}
	s.jobs[jr.id] = jr
	if jr.idemKey != "" {
		s.idem[jr.idemKey] = jr
	}
	s.recovery.Requeued++
	go s.finalizeJob(jr, func() {})
}

// Recovery reports what a durable server replayed at startup (zero value
// for in-memory servers).
func (s *Server) Recovery() RecoveryStats { return s.recovery }

// observer is the per-job durability hook: the queue calls it on the
// worker goroutine when the job starts running. (The done transition is
// persisted by the finalizer, which also has the result and output hash.)
func (s *Server) observer(id string) func(lucidscript.JobState) {
	if s.store == nil {
		return nil
	}
	return func(st lucidscript.JobState) {
		if st == lucidscript.JobRunning {
			_ = s.store.AppendRunning(id)
		}
	}
}

// Handler returns the service's routes. Mount it as an http.Server's (or
// httptest.Server's) handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.instrument(s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs", s.instrument(s.handleList))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument(s.handleGet))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument(s.handleCancel))
	mux.HandleFunc("POST /v1/corpus/{dataset}/reload", s.instrument(s.handleReload))
	mux.HandleFunc("GET /healthz", s.instrument(s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrument(s.handleReadyz))
	mux.HandleFunc("GET /metrics", s.instrument(s.handleMetrics))
	return mux
}

// Shutdown drains the service: new submissions are refused with 503,
// in-flight jobs finish, and still-queued jobs fail with
// CodeShuttingDown. If ctx expires first, in-flight jobs are canceled and
// complete with their partial-result-on-cancel semantics; Shutdown still
// waits for them to land — including their finalizers (output hash) — so
// every recorded job reads as terminal before this returns. On a durable
// server the store is then compacted and closed, making the shutdown a
// clean restart point. Job status stays readable afterward (until its
// retention window expires); closing the HTTP listener is the caller's
// move (http.Server.Shutdown), made after this returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, d := range s.datasets {
			// Retired corpus generations' queues are already draining (each
			// swap kicks one off); their jobs are tracked in s.jobs like any
			// other, so waiting on rec.finalized below covers them.
			d.active.Load().queue.Close()
		}
		s.mu.RLock()
		recs := make([]*jobRecord, 0, len(s.jobs))
		for _, rec := range s.jobs {
			recs = append(recs, rec)
		}
		s.mu.RUnlock()
		for _, rec := range recs {
			<-rec.finalized
		}
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.RLock()
		for _, rec := range s.jobs {
			if rec.job != nil {
				rec.job.Cancel()
			}
		}
		s.mu.RUnlock()
		<-done
		err = ctx.Err()
	}
	if s.store != nil {
		if cerr := s.store.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// instrument wraps a handler with the HTTP request/error counters.
func (s *Server) instrument(h func(http.ResponseWriter, *http.Request)) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metric(obs.MHTTPRequests, 1)
		h(w, r)
	}
}

// handleSubmit admits one job: parse, resolve the dataset and idempotency
// key, enqueue, persist, 202 — or replay the key's existing job with 200.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeUnavailable(w)
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("decoding request body: %v", err))
		return
	}
	key := r.Header.Get("Idempotency-Key")
	if req.IdempotencyKey != "" {
		if key != "" && key != req.IdempotencyKey {
			s.writeError(w, http.StatusConflict, CodeIdempotencyConflict,
				fmt.Sprintf("Idempotency-Key header %q disagrees with body idempotency_key %q", key, req.IdempotencyKey))
			return
		}
		key = req.IdempotencyKey
	}
	d, ok := s.datasets[req.Dataset]
	if !ok {
		s.writeError(w, http.StatusNotFound, CodeUnknownDataset, fmt.Sprintf("unknown dataset %q", req.Dataset))
		return
	}
	sc, err := lucidscript.ParseScript(req.Script)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("parsing script: %v", err))
		return
	}
	ctx, cancel, err := jobContext(req.Options)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}

	// Admission, idempotency binding, and the durable submit record are
	// one atomic step under mu: two racing submissions with the same key
	// cannot both enqueue, and a Close-drain pass cannot interleave.
	s.mu.Lock()
	if key != "" {
		if prior := s.idem[key]; prior != nil {
			if prior.datasetName != req.Dataset || prior.script != req.Script {
				s.mu.Unlock()
				cancel()
				s.writeError(w, http.StatusConflict, CodeIdempotencyConflict,
					fmt.Sprintf("idempotency key %q is already bound to job %s with a different request", key, prior.id))
				return
			}
			st := s.status(prior)
			s.mu.Unlock()
			cancel()
			w.Header().Set("Idempotency-Replayed", "true")
			s.writeJSON(w, http.StatusOK, st)
			return
		}
	}
	seq := s.seq.Add(1)
	id := fmt.Sprintf("j-%08d", seq)
	now := time.Now().UTC()
	// Pin the corpus generation before admission: the job joins this
	// generation's queue and keeps executing — and hashing — against it
	// even if a hot-swap retires it mid-flight. A swap racing this load
	// may close the old queue first; the ErrQueueClosed below then turns
	// into a retryable 503 and the retry lands on the new generation.
	cs := d.active.Load()
	if s.store != nil {
		// The submit record lands in the WAL before the queue can possibly
		// run the job, so a crash never leaves an executing job the log
		// has no record of. A rejected admission evicts it right back.
		err := s.store.AppendSubmit(&store.Record{
			ID: id, Seq: seq, Dataset: req.Dataset, Script: req.Script,
			IdempotencyKey: key, CorpusVersion: cs.version, SubmittedAt: now,
		})
		if err != nil {
			s.mu.Unlock()
			cancel()
			s.writeError(w, http.StatusInternalServerError, CodeInternal, fmt.Sprintf("persisting job: %v", err))
			return
		}
	}
	job, err := cs.queue.SubmitObserved(ctx, sc, s.observer(id))
	if err != nil {
		if s.store != nil {
			_ = s.store.AppendEvict(id)
		}
		s.mu.Unlock()
		cancel()
		switch {
		case errors.Is(err, lucidscript.ErrQueueFull):
			s.writeError(w, http.StatusTooManyRequests, CodeQueueFull,
				fmt.Sprintf("dataset %q queue is full", req.Dataset))
		case errors.Is(err, lucidscript.ErrQueueClosed):
			s.writeUnavailable(w)
		default:
			s.writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		}
		return
	}
	rec := &jobRecord{
		id:          id,
		datasetName: d.name,
		idemKey:     key,
		script:      req.Script,
		submitted:   now,
		corpus:      cs,
		job:         job,
		finalized:   make(chan struct{}),
	}
	s.jobs[rec.id] = rec
	if key != "" {
		s.idem[key] = rec
	}
	st := s.status(rec)
	s.mu.Unlock()
	go s.finalizeJob(rec, cancel)
	s.writeJSON(w, http.StatusAccepted, st)
}

// finalizeJob is each job's completion path, run on a per-job goroutine:
// it waits for the job to land, releases the per-job timeout context,
// computes the output hash off the HTTP handlers (bounded by the
// dataset's hashSem so completions cannot out-run the queue's admission
// control), persists the terminal record, publishes it by closing
// rec.finalized, and schedules the record's eviction after the retention
// window.
func (s *Server) finalizeJob(rec *jobRecord, cancel context.CancelFunc) {
	<-rec.job.Done()
	cancel()
	res, err := rec.job.Result()
	var hash string
	var hashErr error
	if err == nil && res != nil {
		// The hash runs on the generation the job was admitted against —
		// pinned in rec.corpus — so a hot-swap mid-job cannot make the
		// result's hash come from a different corpus than its search did.
		rec.corpus.hashSem <- struct{}{}
		hash, hashErr = rec.corpus.sys.OutputHash(res.Script)
		<-rec.corpus.hashSem
	}
	now := time.Now().UTC()
	st := &JobStatus{
		ID:             rec.id,
		Dataset:        rec.datasetName,
		IdempotencyKey: rec.idemKey,
		CorpusVersion:  rec.corpus.version,
		SubmittedAt:    rec.submitted,
		FinishedAt:     &now,
		Result:         toWireResult(res, hash),
	}
	if hashErr != nil && st.Result != nil {
		st.Result.OutputHashError = hashErr.Error()
	}
	if err == nil {
		st.State = StateDone
	} else {
		st.Error = err.Error()
		st.Code = errorCode(err)
		if st.Code == CodeCanceled {
			st.State = StateCanceled
		} else {
			st.State = StateFailed
		}
	}
	rec.terminal = st
	if s.store != nil {
		var raw json.RawMessage
		if st.Result != nil {
			raw, _ = json.Marshal(st.Result)
		}
		_ = s.store.AppendFinish(rec.id, st.State, st.Code, st.Error, raw, now)
	}
	close(rec.finalized)
	s.scheduleEviction(rec, s.cfg.JobRetention)
}

// scheduleEviction removes the job's record — memory and store — once its
// retention window expires. The idempotency key is released only if it
// still points at this record (a later job may have legitimately taken it
// over after an interruption).
func (s *Server) scheduleEviction(rec *jobRecord, after time.Duration) {
	time.AfterFunc(after, func() {
		s.mu.Lock()
		delete(s.jobs, rec.id)
		if rec.idemKey != "" && s.idem[rec.idemKey] == rec {
			delete(s.idem, rec.idemKey)
		}
		s.mu.Unlock()
		if s.store != nil {
			_ = s.store.AppendEvict(rec.id) // ErrClosed after shutdown: fine
		}
	})
}

// jobContext builds the submission-scoped context from per-job options.
// The context is deliberately detached from the HTTP request's — the job
// outlives the POST that created it — so the returned cancel must be
// called when the job lands (or the submission fails).
func jobContext(opts *JobOptions) (context.Context, context.CancelFunc, error) {
	ctx := context.Background()
	if opts == nil || opts.Timeout == "" {
		return ctx, func() {}, nil
	}
	d, err := time.ParseDuration(opts.Timeout)
	if err != nil {
		return nil, func() {}, fmt.Errorf("invalid options.timeout %q: %v", opts.Timeout, err)
	}
	if d <= 0 {
		return nil, func() {}, fmt.Errorf("invalid options.timeout %q: must be positive", opts.Timeout)
	}
	ctx, cancel := context.WithTimeout(ctx, d)
	return ctx, cancel, nil
}

// handleGet reports one job's status.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	rec := s.lookup(r.PathValue("id"))
	if rec == nil {
		s.writeError(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	s.writeJSON(w, http.StatusOK, s.status(rec))
}

// handleCancel cancels one job and returns its (possibly already final)
// status. Canceling a finished job is a no-op, not an error.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	rec := s.lookup(r.PathValue("id"))
	if rec == nil {
		s.writeError(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	if rec.job != nil {
		rec.job.Cancel()
	}
	s.writeJSON(w, http.StatusOK, s.status(rec))
}

// listLimits bound the page size of GET /v1/jobs.
const (
	defaultListLimit = 100
	maxListLimit     = 1000
)

// handleList is GET /v1/jobs?state=&dataset=&limit=&cursor=: one page of
// job statuses in id (submission) order. The cursor is the last returned
// id; pages are stable against eviction and new submissions in the sense
// that every job alive across the whole walk appears exactly once.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	stateFilter := q.Get("state")
	if stateFilter != "" && !validState(stateFilter) {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("unknown state %q (want one of %v)", stateFilter, States))
		return
	}
	datasetFilter := q.Get("dataset")
	limit := defaultListLimit
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n <= 0 {
			s.writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("invalid limit %q: want a positive integer", ls))
			return
		}
		limit = n
		if limit > maxListLimit {
			limit = maxListLimit
		}
	}
	cursor := q.Get("cursor")

	s.mu.RLock()
	recs := make([]*jobRecord, 0, len(s.jobs))
	for _, rec := range s.jobs {
		recs = append(recs, rec)
	}
	s.mu.RUnlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].id < recs[j].id })

	resp := ListResponse{Jobs: []JobStatus{}}
	for _, rec := range recs {
		if cursor != "" && rec.id <= cursor {
			continue
		}
		if datasetFilter != "" && rec.datasetName != datasetFilter {
			continue
		}
		st := s.status(rec)
		if stateFilter != "" && st.State != stateFilter {
			continue
		}
		if len(resp.Jobs) == limit {
			// One more match exists beyond the page: hand back a cursor.
			resp.NextCursor = resp.Jobs[limit-1].ID
			break
		}
		resp.Jobs = append(resp.Jobs, st)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// validState reports whether st names a wire job state.
func validState(st string) bool {
	for _, s := range States {
		if s == st {
			return true
		}
	}
	return false
}

// handleReload is POST /v1/corpus/{dataset}/reload: re-open the dataset's
// corpus registry and, when a newer version is published, hot-swap it in.
// The swap is a pointer swing: new submissions land on the new generation
// immediately, while jobs already admitted keep running — and hash their
// outputs — on the generation they started with; the retired generation's
// queue drains in the background. Admin-gated by Config.AdminToken.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.cfg.AdminToken == "" || r.Header.Get("Authorization") != "Bearer "+s.cfg.AdminToken {
		s.writeError(w, http.StatusForbidden, CodeForbidden, "corpus reload requires a valid admin bearer token")
		return
	}
	if s.draining.Load() {
		s.writeUnavailable(w)
		return
	}
	name := r.PathValue("dataset")
	d, ok := s.datasets[name]
	if !ok {
		s.writeError(w, http.StatusNotFound, CodeUnknownDataset, fmt.Sprintf("unknown dataset %q", name))
		return
	}
	if d.reload == nil {
		s.writeError(w, http.StatusConflict, CodeReloadUnavailable,
			fmt.Sprintf("dataset %q has no corpus registry to reload from", name))
		return
	}
	d.reloadMu.Lock()
	defer d.reloadMu.Unlock()
	prev := d.active.Load()
	sys, version, err := d.reload()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, CodeReloadFailed,
			fmt.Sprintf("reloading corpus for %q: %v (version %d stays active)", name, err, prev.version))
		return
	}
	resp := ReloadResponse{Dataset: name, Previous: prev.version}
	if version == prev.version {
		resp.CorpusVersion = prev.version
		resp.CorpusScripts = prev.sys.Stats().Scripts
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	next := s.newCorpusState(sys)
	// The reloader's version is authoritative (a System built straight
	// from the registry already agrees; this covers custom reloaders).
	next.version = version
	d.active.Store(next)
	// Retire the old generation gracefully: stop admission, but run every
	// already-admitted job to completion on its own corpus version.
	go prev.queue.Drain()
	resp.CorpusVersion = next.version
	resp.Changed = true
	resp.CorpusScripts = next.sys.Stats().Scripts
	s.writeJSON(w, http.StatusOK, resp)
}

// handleHealthz reports readiness: per-dataset queue snapshots, aggregate
// queued/running counts, the draining flag, and — on durable servers —
// write-ahead-log lag.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{Status: "ok", Datasets: map[string]DatasetHealth{}}
	if s.draining.Load() {
		resp.Status = "draining"
		resp.Draining = true
	}
	for name, d := range s.datasets {
		cs := d.active.Load()
		st := cs.queue.Stats()
		resp.QueueDepth += st.Depth
		resp.Running += st.Running
		resp.Datasets[name] = DatasetHealth{
			QueueDepth:    st.Depth,
			QueueCapacity: st.Capacity,
			Workers:       st.Workers,
			Running:       st.Running,
			Submitted:     st.Submitted,
			Rejected:      st.Rejected,
			Completed:     st.Completed,
			Failed:        st.Failed,
			CorpusScripts: cs.sys.Stats().Scripts,
			CorpusVersion: cs.version,
		}
	}
	if s.store != nil {
		lag := s.store.Lag()
		resp.Store = &StoreHealth{
			WALLagEntries: lag.Entries,
			WALLagBytes:   lag.Bytes,
			Compactions:   lag.Compactions,
			Jobs:          s.store.Len(),
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleReadyz is the readiness gate, split out of the always-200
// /healthz: 200 while the server should receive new work, 503 (with the
// uniform retryable error body) once draining began. The boot-time 503 —
// datasets still curating, WAL still replaying — is served by
// BootHandler, which daemons mount on the listener until NewServer
// returns (see cmd/lsserved).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeUnavailable(w)
		return
	}
	s.writeJSON(w, http.StatusOK, ReadyResponse{Status: "ready"})
}

// handleMetrics dumps the configured registry in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.cfg.Metrics.WritePrometheus(w)
}

// lookup resolves a job id to its record.
func (s *Server) lookup(id string) *jobRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.jobs[id]
}

// status builds the wire status of one job from its live state. The
// terminal branch is gated on rec.finalized — not the job's own State —
// so a status read can never observe a half-published completion: until
// the finalizer has recorded the finish time and output hash, the job
// reports queued/running.
func (s *Server) status(rec *jobRecord) JobStatus {
	select {
	case <-rec.finalized:
		return *rec.terminal
	default:
	}
	st := JobStatus{
		ID:             rec.id,
		Dataset:        rec.datasetName,
		IdempotencyKey: rec.idemKey,
		SubmittedAt:    rec.submitted,
	}
	if rec.corpus != nil {
		st.CorpusVersion = rec.corpus.version
	}
	if rec.job != nil && rec.job.State() == lucidscript.JobRunning {
		st.State = StateRunning
	} else {
		st.State = StateQueued
	}
	return st
}

// statusFromRecord rebuilds a terminal wire status from its durable form.
func statusFromRecord(rec *store.Record) *JobStatus {
	st := &JobStatus{
		ID:             rec.ID,
		Dataset:        rec.Dataset,
		State:          rec.State,
		Code:           rec.Code,
		Error:          rec.Error,
		IdempotencyKey: rec.IdempotencyKey,
		CorpusVersion:  rec.CorpusVersion,
		SubmittedAt:    rec.SubmittedAt,
	}
	if !rec.FinishedAt.IsZero() {
		fin := rec.FinishedAt
		st.FinishedAt = &fin
	}
	if len(rec.Result) > 0 {
		var res JobResult
		if err := json.Unmarshal(rec.Result, &res); err == nil {
			st.Result = &res
		}
	}
	return st
}

// errorCode maps a job error chain to its machine-readable code. Order
// matters: an injected fault wrapped by the job layer should read as
// fault_injected, not job_panicked.
func errorCode(err error) string {
	switch {
	case errors.Is(err, faults.ErrInjected):
		return CodeFaultInjected
	case errors.Is(err, lucidscript.ErrQueueClosed):
		return CodeShuttingDown
	case errors.Is(err, lucidscript.ErrDeadlineExceeded):
		return CodeDeadlineExceeded
	case errors.Is(err, lucidscript.ErrCanceled):
		return CodeCanceled
	case errors.Is(err, lucidscript.ErrJobPanicked):
		return CodeJobPanicked
	case errors.Is(err, lucidscript.ErrInputScriptFails):
		return CodeInputScriptFails
	}
	return CodeInternal
}

// writeUnavailable is the draining 503.
func (s *Server) writeUnavailable(w http.ResponseWriter) {
	w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
	s.writeErrorBody(w, http.StatusServiceUnavailable, ErrorResponse{
		Code:         CodeShuttingDown,
		Message:      "server is shutting down",
		Retryable:    true,
		RetryAfterMS: s.cfg.RetryAfter.Milliseconds(),
	})
}

// writeError writes a non-2xx JSON error in the uniform shape, deriving
// the retryable bit from the code and attaching Retry-After on 429.
func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	resp := ErrorResponse{Code: code, Message: msg, Retryable: RetryableCode(code)}
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		resp.RetryAfterMS = s.cfg.RetryAfter.Milliseconds()
	}
	s.writeErrorBody(w, status, resp)
}

func (s *Server) writeErrorBody(w http.ResponseWriter, status int, resp ErrorResponse) {
	s.metric(obs.MHTTPErrors, 1)
	s.writeJSON(w, status, resp)
}

// writeJSON writes one JSON response.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// metric updates the server registry.
func (s *Server) metric(name string, delta int64) {
	s.cfg.Metrics.Counter(name).Add(delta)
}

// retryAfterSeconds renders a duration as the Retry-After header's integer
// seconds, rounding up so "500ms" does not become "0".
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// closedChan returns an already-closed channel for records that are born
// terminal.
func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}
