package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// The sentinel errors a Client maps HTTP failures onto; match with
// errors.Is. The full server payload (code, message, retry hint) rides
// along as a wrapped *APIError.
var (
	// ErrNotFound: unknown job id or dataset (HTTP 404).
	ErrNotFound = errors.New("serve: not found")
	// ErrOverloaded: admission control rejected the submission (HTTP 429);
	// honor APIError.RetryAfter.
	ErrOverloaded = errors.New("serve: server overloaded")
	// ErrDraining: the server is shutting down (HTTP 503).
	ErrDraining = errors.New("serve: server draining")
)

// APIError is the decoded server error payload, reachable via errors.As on
// any Client error.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Code is the machine-readable Code* constant from the body.
	Code string
	// Message is the human-readable error.
	Message string
	// RetryAfter is the server's back-off hint (zero when absent).
	RetryAfter time.Duration
}

// Error renders the payload.
func (e *APIError) Error() string {
	return fmt.Sprintf("serve: HTTP %d (%s): %s", e.StatusCode, e.Code, e.Message)
}

// Client is a typed wrapper over the HTTP API — the one client the e2e
// tests, the stress harness, and future tooling share.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for a server rooted at base (e.g.
// "http://127.0.0.1:8080"). hc nil uses http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// Submit enqueues one standardization and returns its accepted status
// (state "queued"); poll Job or call Wait with the returned ID.
func (c *Client) Submit(ctx context.Context, dataset, scriptSrc string, opts *JobOptions) (*JobStatus, error) {
	body, err := json.Marshal(SubmitRequest{Dataset: dataset, Script: scriptSrc, Options: opts})
	if err != nil {
		return nil, err
	}
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", body, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches one job's current status.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel asks the server to stop a job and returns its status afterward.
// Canceling an already-finished job is a no-op.
func (c *Client) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls the job every poll interval (≤ 0 defaults to 10ms) until it
// reaches a terminal state or ctx is canceled.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

// Healthz fetches the liveness and queue snapshot.
func (c *Client) Healthz(ctx context.Context) (*HealthResponse, error) {
	var h HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Metrics fetches the Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("serve: GET /metrics: HTTP %d", resp.StatusCode)
	}
	return string(data), nil
}

// do performs one JSON round trip, mapping non-2xx responses to the typed
// sentinels.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out interface{}) error {
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rdr)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	apiErr := &APIError{StatusCode: resp.StatusCode}
	var er ErrorResponse
	if derr := json.NewDecoder(resp.Body).Decode(&er); derr == nil {
		apiErr.Code, apiErr.Message = er.Code, er.Error
		apiErr.RetryAfter = time.Duration(er.RetryAfterMS) * time.Millisecond
	}
	switch resp.StatusCode {
	case http.StatusNotFound:
		return fmt.Errorf("%w: %w", ErrNotFound, apiErr)
	case http.StatusTooManyRequests:
		return fmt.Errorf("%w: %w", ErrOverloaded, apiErr)
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w: %w", ErrDraining, apiErr)
	}
	return apiErr
}
