package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// The sentinel errors a Client maps HTTP failures onto; match with
// errors.Is. Every non-2xx response wraps one of these, and the full
// server payload (code, message, retry hint) rides along as a wrapped
// *APIError — so callers choose their granularity: errors.Is for the
// class, errors.As for the code.
var (
	// ErrBadRequest: the server rejected the request as malformed (HTTP
	// 400) — bad script, bad options, bad query parameter. Not retryable.
	ErrBadRequest = errors.New("serve: bad request")
	// ErrNotFound: unknown job id or dataset (HTTP 404).
	ErrNotFound = errors.New("serve: not found")
	// ErrConflict: an idempotency key is already bound to a different
	// request (HTTP 409). Not retryable — the caller's key reuse is a bug.
	ErrConflict = errors.New("serve: conflict")
	// ErrForbidden: an admin endpoint rejected the request's bearer token
	// (HTTP 403). Not retryable.
	ErrForbidden = errors.New("serve: forbidden")
	// ErrOverloaded: admission control rejected the submission (HTTP 429);
	// honor APIError.RetryAfter.
	ErrOverloaded = errors.New("serve: server overloaded")
	// ErrDraining: the server is shutting down (HTTP 503).
	ErrDraining = errors.New("serve: server draining")
	// ErrInternal: the server failed internally (HTTP 5xx other than 503).
	ErrInternal = errors.New("serve: internal server error")
)

// APIError is the decoded server error payload, reachable via errors.As on
// any Client error.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Code is the machine-readable Code* constant from the body.
	Code string
	// Message is the human-readable error.
	Message string
	// Retryable is the server's verdict on whether the same request can
	// simply be retried (after RetryAfter, when set).
	Retryable bool
	// RetryAfter is the server's back-off hint (zero when absent).
	RetryAfter time.Duration
}

// Error renders the payload.
func (e *APIError) Error() string {
	return fmt.Sprintf("serve: HTTP %d (%s): %s", e.StatusCode, e.Code, e.Message)
}

// Retryable reports whether err is a server response marked safe to retry
// verbatim. Transport-level failures (no HTTP response at all) are not —
// the caller cannot know whether the submission was admitted; resubmit
// with an idempotency key instead.
func Retryable(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Retryable
}

// Client is a typed wrapper over the HTTP API — the one client the e2e
// tests, the stress harness, and future tooling share.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for a server rooted at base (e.g.
// "http://127.0.0.1:8080"). hc nil uses http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// Submit enqueues one standardization and returns its accepted status
// (state "queued"); poll Job or call Wait with the returned ID.
func (c *Client) Submit(ctx context.Context, dataset, scriptSrc string, opts *JobOptions) (*JobStatus, error) {
	return c.SubmitIdempotent(ctx, dataset, scriptSrc, opts, "")
}

// SubmitIdempotent is Submit with an idempotency key: a retry carrying
// the same key returns the original job (whatever state it has reached)
// instead of enqueueing a duplicate — the server signals a replay with
// the Idempotency-Replayed response header and HTTP 200 instead of 202.
// An empty key degrades to plain Submit.
func (c *Client) SubmitIdempotent(ctx context.Context, dataset, scriptSrc string, opts *JobOptions, key string) (*JobStatus, error) {
	body, err := json.Marshal(SubmitRequest{Dataset: dataset, Script: scriptSrc, Options: opts, IdempotencyKey: key})
	if err != nil {
		return nil, err
	}
	var hdr http.Header
	if key != "" {
		hdr = http.Header{"Idempotency-Key": []string{key}}
	}
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", hdr, body, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches one job's current status.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// ListJobsQuery filters one GET /v1/jobs page. The zero value lists the
// first server-default page of every job.
type ListJobsQuery struct {
	// State keeps only jobs currently in this wire state ("" = all).
	State string
	// Dataset keeps only jobs submitted against this dataset ("" = all).
	Dataset string
	// Limit caps the page size (0 = server default of 100; server-capped
	// at 1000).
	Limit int
	// Cursor resumes a walk: pass the previous page's NextCursor.
	Cursor string
}

// ListJobs fetches one page of jobs in submission (id) order. A non-empty
// NextCursor on the response means more pages exist — pass it back via
// q.Cursor to continue.
func (c *Client) ListJobs(ctx context.Context, q ListJobsQuery) (*ListResponse, error) {
	v := url.Values{}
	if q.State != "" {
		v.Set("state", q.State)
	}
	if q.Dataset != "" {
		v.Set("dataset", q.Dataset)
	}
	if q.Limit > 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	if q.Cursor != "" {
		v.Set("cursor", q.Cursor)
	}
	path := "/v1/jobs"
	if enc := v.Encode(); enc != "" {
		path += "?" + enc
	}
	var resp ListResponse
	if err := c.do(ctx, http.MethodGet, path, nil, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// AllJobs walks every page of ListJobs and returns the concatenation.
func (c *Client) AllJobs(ctx context.Context, q ListJobsQuery) ([]JobStatus, error) {
	var all []JobStatus
	for {
		page, err := c.ListJobs(ctx, q)
		if err != nil {
			return nil, err
		}
		all = append(all, page.Jobs...)
		if page.NextCursor == "" {
			return all, nil
		}
		q.Cursor = page.NextCursor
	}
}

// Cancel asks the server to stop a job and returns its status afterward.
// Canceling an already-finished job is a no-op.
func (c *Client) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls the job every poll interval (≤ 0 defaults to 10ms) until it
// reaches a terminal state or ctx is canceled.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if TerminalState(st.State) {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

// Readyz checks the readiness gate: nil when the server answers 200 on
// GET /readyz, and the mapped error otherwise — ErrDraining-wrapped with
// code not_ready while the server is booting (curation, WAL replay) or
// shutting_down while it drains. A transport error (listener not bound
// yet, process dead) comes back as-is; both shapes mean "not ready".
func (c *Client) Readyz(ctx context.Context) error {
	var ready ReadyResponse
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil, &ready)
}

// ReloadCorpus asks the server to hot-swap dataset's corpus to its
// registry's newest published version (POST /v1/corpus/{dataset}/reload),
// authenticating with the server's admin token. The response reports the
// now-active version and whether a swap actually happened; in-flight jobs
// are unaffected either way (they finish on the version they started
// with). 403 maps to ErrForbidden, 409 (no registry behind the dataset) to
// ErrConflict.
func (c *Client) ReloadCorpus(ctx context.Context, dataset, adminToken string) (*ReloadResponse, error) {
	hdr := http.Header{}
	hdr.Set("Authorization", "Bearer "+adminToken)
	var resp ReloadResponse
	if err := c.do(ctx, http.MethodPost, "/v1/corpus/"+url.PathEscape(dataset)+"/reload", hdr, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Healthz fetches the liveness and queue snapshot.
func (c *Client) Healthz(ctx context.Context) (*HealthResponse, error) {
	var h HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Metrics fetches the Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("serve: GET /metrics: HTTP %d", resp.StatusCode)
	}
	return string(data), nil
}

// do performs one JSON round trip, mapping non-2xx responses to the typed
// sentinels.
func (c *Client) do(ctx context.Context, method, path string, hdr http.Header, body []byte, out interface{}) error {
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rdr)
	if err != nil {
		return err
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	apiErr := &APIError{StatusCode: resp.StatusCode}
	var er ErrorResponse
	if derr := json.NewDecoder(resp.Body).Decode(&er); derr == nil {
		apiErr.Code, apiErr.Message = er.Code, er.Message
		apiErr.Retryable = er.Retryable
		apiErr.RetryAfter = time.Duration(er.RetryAfterMS) * time.Millisecond
	}
	var class error
	switch resp.StatusCode {
	case http.StatusBadRequest:
		class = ErrBadRequest
	case http.StatusNotFound:
		class = ErrNotFound
	case http.StatusForbidden:
		class = ErrForbidden
	case http.StatusConflict:
		class = ErrConflict
	case http.StatusTooManyRequests:
		class = ErrOverloaded
	case http.StatusServiceUnavailable:
		class = ErrDraining
	default:
		if resp.StatusCode >= 500 {
			class = ErrInternal
		}
	}
	if class == nil {
		return apiErr
	}
	return fmt.Errorf("%w: %w", class, apiErr)
}
