package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// submitN appends n queued records j-00000001… and returns their ids.
func submitN(t *testing.T, s *Store, n int) []string {
	t.Helper()
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("j-%08d", i+1)
		ids[i] = id
		err := s.AppendSubmit(&Record{
			ID: id, Seq: int64(i + 1), Dataset: "gen",
			Script:         fmt.Sprintf("df = df.head(%d)\n", i),
			IdempotencyKey: fmt.Sprintf("key-%d", i),
			SubmittedAt:    time.Unix(int64(1000+i), 0).UTC(),
		})
		if err != nil {
			t.Fatalf("AppendSubmit %d: %v", i, err)
		}
	}
	return ids
}

// TestStoreRoundTrip is the basic durability contract: submit → running →
// finish, close, reopen, and every field survives byte-for-byte.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ids := submitN(t, s, 3)
	if err := s.AppendRunning(ids[0]); err != nil {
		t.Fatal(err)
	}
	result := json.RawMessage(`{"script":"df\n","output_hash":"abc123"}`)
	fin := time.Unix(2000, 0).UTC()
	if err := s.AppendFinish(ids[0], StateDone, "", "", result, fin); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRunning(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs := re.Records()
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
	if got := recs[0]; got.State != StateDone || string(got.Result) != string(result) ||
		!got.FinishedAt.Equal(fin) || got.IdempotencyKey != "key-0" {
		t.Errorf("record 0 after reopen = %+v", got)
	}
	if recs[1].State != StateRunning {
		t.Errorf("record 1 state = %q, want running", recs[1].State)
	}
	if recs[2].State != StateQueued {
		t.Errorf("record 2 state = %q, want queued", recs[2].State)
	}
	if recs[2].Script != "df = df.head(2)\n" {
		t.Errorf("record 2 script = %q", recs[2].Script)
	}
	if got := re.MaxSeq(); got != 3 {
		t.Errorf("MaxSeq = %d, want 3", got)
	}
}

// TestStoreCrashRecovery reopens without Close — the SIGKILL shape — and
// must still see every acknowledged append.
func TestStoreCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ids := submitN(t, s, 5)
	if err := s.AppendFinish(ids[2], StateFailed, "deadline_exceeded", "too slow", nil, time.Unix(3000, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	// No Close: drop the handle as a killed process would.

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs := re.Records()
	if len(recs) != 5 {
		t.Fatalf("recovered %d records, want 5", len(recs))
	}
	if recs[2].State != StateFailed || recs[2].Code != "deadline_exceeded" || recs[2].Error != "too slow" {
		t.Errorf("record 2 = %+v", recs[2])
	}
}

// TestStoreSnapshotCompaction forces frequent compactions and checks the
// WAL is truncated, the lag counters reset, and recovery reads through the
// snapshot + residual WAL correctly.
func TestStoreSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	ids := submitN(t, s, 10) // crosses the cadence repeatedly
	lag := s.Lag()
	if lag.Compactions == 0 {
		t.Fatalf("no compactions after 10 appends at cadence 4: %+v", lag)
	}
	if lag.Entries >= 4 {
		t.Errorf("lag entries = %d, want < cadence 4", lag.Entries)
	}
	if err := s.AppendFinish(ids[9], StateDone, "", "", nil, time.Unix(4000, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	// Crash-reopen: snapshot + whatever WAL remains must reconstruct all 10.
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := len(re.Records()); got != 10 {
		t.Fatalf("recovered %d records, want 10", got)
	}
	if re.Get(ids[9]).State != StateDone {
		t.Errorf("last record state = %q, want done", re.Get(ids[9]).State)
	}
}

// TestStoreEvict checks eviction removes the record durably while MaxSeq
// keeps the sequence burned, across snapshot and crash boundaries.
func TestStoreEvict(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ids := submitN(t, s, 3)
	if err := s.AppendEvict(ids[2]); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := len(re.Records()); got != 2 {
		t.Fatalf("recovered %d records after evict, want 2", got)
	}
	if re.Get(ids[2]) != nil {
		t.Error("evicted record still present")
	}
	if got := re.MaxSeq(); got != 3 {
		t.Errorf("MaxSeq after evicting the high record = %d, want 3 (sequence stays burned)", got)
	}
}

// TestStoreTornWrite truncates the WAL at every byte boundary inside the
// final record: recovery must keep every whole record before the tear,
// drop the torn tail, and leave the file truncated at the last good line.
func TestStoreTornWrite(t *testing.T) {
	build := func(t *testing.T, dir string) {
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ids := submitN(t, s, 3)
		if err := s.AppendFinish(ids[0], StateDone, "", "", json.RawMessage(`{"output_hash":"h"}`), time.Unix(5000, 0).UTC()); err != nil {
			t.Fatal(err)
		}
		// Drop without Close so the WAL holds 4 entries and no snapshot.
	}

	ref := t.TempDir()
	build(t, ref)
	walRef, err := os.ReadFile(filepath.Join(ref, walFile))
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	lastLineStart := 0
	for i, b := range walRef {
		if b == '\n' && i != len(walRef)-1 {
			lines++
			lastLineStart = i + 1
		}
	}
	if lines != 3 {
		t.Fatalf("reference WAL has %d interior newlines, want 3 (4 entries)", lines)
	}

	for cut := lastLineStart; cut < len(walRef); cut++ {
		dir := t.TempDir()
		build(t, dir)
		if err := os.Truncate(filepath.Join(dir, walFile), int64(cut)); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		recs := s.Records()
		if len(recs) != 3 {
			t.Fatalf("cut %d: recovered %d records, want 3 (torn finish dropped)", cut, len(recs))
		}
		if recs[0].State != StateQueued {
			t.Errorf("cut %d: record 0 state = %q, want queued (finish was torn)", cut, recs[0].State)
		}
		// The torn tail must be gone from disk: an immediate append and
		// reopen replays cleanly.
		if err := s.AppendRunning(recs[1].ID); err != nil {
			t.Fatalf("cut %d: append after torn recovery: %v", cut, err)
		}
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: second Open: %v", cut, err)
		}
		if got := s2.Get(recs[1].ID).State; got != StateRunning {
			t.Errorf("cut %d: post-tear append lost: state %q", cut, got)
		}
		s.Close()
		s2.Close()
	}
}

// TestStoreGarbageTail flips bytes in the last line (same length, bad
// checksum): recovery must reject it via the CRC, not parse luck.
func TestStoreGarbageTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, s, 2)
	path := filepath.Join(dir, walFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte inside the last line's payload.
	data[len(data)-5] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := len(re.Records()); got != 1 {
		t.Fatalf("recovered %d records, want 1 (corrupt line dropped)", got)
	}
}

// TestStoreClosed pins the post-Close contract: appends fail with
// ErrClosed, Close is idempotent.
func TestStoreClosed(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.AppendEvict("j-00000001"); !errors.Is(err, ErrClosed) {
		t.Errorf("append after Close = %v, want ErrClosed", err)
	}
	if err := s.Compact(); !errors.Is(err, ErrClosed) {
		t.Errorf("Compact after Close = %v, want ErrClosed", err)
	}
}

// TestStoreConcurrentAppends hammers the store from many goroutines with a
// tiny snapshot cadence, then verifies a reopen sees every record — the
// WAL/compaction interleaving must lose nothing.
func TestStoreConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SnapshotEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 25
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < per; i++ {
				id := fmt.Sprintf("j-%03d-%03d", w, i)
				r := &Record{ID: id, Seq: int64(w*per + i + 1), Dataset: "gen", Script: "df\n", SubmittedAt: time.Now().UTC()}
				if err := s.AppendSubmit(r); err != nil {
					errs <- err
					return
				}
				if err := s.AppendFinish(id, StateDone, "", "", nil, time.Now().UTC()); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs := re.Records()
	if len(recs) != workers*per {
		t.Fatalf("recovered %d records, want %d", len(recs), workers*per)
	}
	for _, r := range recs {
		if r.State != StateDone {
			t.Fatalf("record %s state = %q, want done", r.ID, r.State)
		}
	}
	s.Close()
}
