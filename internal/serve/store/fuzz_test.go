package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// FuzzWALReplay feeds arbitrary bytes to the WAL replay path: Open must
// never panic or error on garbage (a damaged log degrades to the longest
// valid prefix), and the store must be fully usable afterward — appends
// land and a reopen sees them, proving the truncation left a clean tail.
func FuzzWALReplay(f *testing.F) {
	// Seed with realistic shapes: a valid log, a torn tail, checksum
	// damage, oversized lines, and pure noise.
	s, err := Open(f.TempDir(), Options{})
	if err != nil {
		f.Fatal(err)
	}
	if err := s.AppendSubmit(&Record{ID: "j-00000001", Seq: 1, Dataset: "d", Script: "df\n", SubmittedAt: time.Unix(1, 0)}); err != nil {
		f.Fatal(err)
	}
	if err := s.AppendFinish("j-00000001", StateDone, "", "", nil, time.Unix(2, 0)); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(s.dir, walFile))
	if err != nil {
		f.Fatal(err)
	}
	s.Close()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("deadbeef {\"op\":\"submit\"}\n"))
	f.Add([]byte("not a wal at all\x00\xff\n\n\n"))
	f.Add(append(append([]byte{}, valid...), "00000000 {}\n"...))

	f.Fuzz(func(t *testing.T, wal []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFile), wal, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open on fuzzed WAL: %v", err)
		}
		before := len(st.Records())
		seq := st.MaxSeq() + 1
		id := fmt.Sprintf("j-%08d", seq)
		if err := st.AppendSubmit(&Record{ID: id, Seq: seq, Dataset: "d", Script: "df\n", SubmittedAt: time.Unix(3, 0)}); err != nil {
			t.Fatalf("append after fuzzed recovery: %v", err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		re, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer re.Close()
		if got := len(re.Records()); got < before+1 && re.Get(id) == nil {
			t.Fatalf("post-recovery append lost: %d records, new id missing", got)
		}
		if re.Get(id) == nil {
			t.Fatal("appended record missing after reopen")
		}
	})
}
