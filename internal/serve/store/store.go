// Package store is the durable job store behind a persistent lsserved:
// a per-data-dir write-ahead log plus periodic snapshot that records every
// job's submission, state transitions, terminal outcome, and output hash,
// so a server restarted against the same directory can replay its full job
// history — completed jobs stay retrievable with their original results,
// and jobs that never finished are surfaced for deterministic re-enqueue
// or interruption by the serving layer.
//
// Layout inside the data dir:
//
//	snapshot.json — the full record set as of the last compaction
//	wal.log       — one CRC-guarded JSON entry per line since the snapshot
//
// Durability model: WAL appends are unbuffered os.File writes, so every
// acknowledged append survives a SIGKILL of the process (the bytes are in
// the kernel page cache); surviving a whole-machine crash additionally
// needs an fsync policy the serving tier does not require today. The
// snapshot is written to a temp file and atomically renamed, and replay is
// idempotent, so a crash between snapshot and WAL truncation converges to
// the same state. A torn tail — the half-written line a SIGKILL can leave —
// is detected by its checksum (or missing newline) and truncated away on
// Open; everything before it is recovered.
package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The job states a Record can hold. Queued and Running are the two
// non-terminal states a crash can strand a job in; everything else is
// terminal. Interrupted is the store-specific terminal state: the job was
// alive when the server stopped and could not be deterministically
// re-enqueued, so a client must resubmit it (its idempotency key is
// released for exactly that purpose).
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCanceled    = "canceled"
	StateInterrupted = "interrupted"
)

// Terminal reports whether state is a resting state a restart preserves
// as-is (as opposed to queued/running, which a restart must resolve).
func Terminal(state string) bool {
	switch state {
	case StateQueued, StateRunning:
		return false
	}
	return true
}

// ErrClosed reports an append on a store that has been closed. Late
// callers (retention timers firing after shutdown) treat it as a no-op.
var ErrClosed = errors.New("store: closed")

// Record is one job's durable state. Result is the serving layer's wire
// JSON, kept opaque here so the store does not depend on the HTTP types.
type Record struct {
	// ID is the serving layer's job id (e.g. "j-00000042"); Seq is its
	// monotonic sequence number, preserved across restarts and evictions
	// so ids are never reused.
	ID  string `json:"id"`
	Seq int64  `json:"seq"`
	// Dataset and Script are the submission itself — enough to re-enqueue
	// a queued job after a restart.
	Dataset string `json:"dataset"`
	Script  string `json:"script"`
	// IdempotencyKey is the client's dedup key, empty when none was sent.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// CorpusVersion is the registry snapshot version the job was admitted
	// against, 0 for unversioned corpora. Absent in logs written before
	// corpus versioning existed, which decodes as 0 — the same meaning.
	CorpusVersion int64 `json:"corpus_version,omitempty"`
	// State is one of the State* constants; Code and Error qualify the
	// failed/canceled/interrupted states.
	State string `json:"state"`
	Code  string `json:"code,omitempty"`
	Error string `json:"error,omitempty"`
	// Result is the terminal wire result (including the output hash),
	// opaque to the store.
	Result json.RawMessage `json:"result,omitempty"`
	// SubmittedAt and FinishedAt are server-clock timestamps.
	SubmittedAt time.Time `json:"submitted_at"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`
}

// clone copies a record so callers can't alias the store's own state.
func (r *Record) clone() *Record {
	c := *r
	if r.Result != nil {
		c.Result = append(json.RawMessage(nil), r.Result...)
	}
	return &c
}

// entry is one WAL line. Op selects which fields matter.
type entry struct {
	// Op is "submit", "running", "finish", or "evict".
	Op string `json:"op"`
	// Record rides on submit entries.
	Record *Record `json:"record,omitempty"`
	// ID targets running/finish/evict entries.
	ID string `json:"id,omitempty"`
	// The finish payload.
	State      string          `json:"state,omitempty"`
	Code       string          `json:"code,omitempty"`
	Error      string          `json:"error,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
	FinishedAt time.Time       `json:"finished_at,omitempty"`
}

// snapshot is the compacted on-disk form: every live record plus the
// high-water sequence number (which must survive even when all records
// holding it have been evicted).
type snapshot struct {
	MaxSeq  int64     `json:"max_seq"`
	Records []*Record `json:"records"`
}

// Options tunes a Store. The zero value is serviceable.
type Options struct {
	// SnapshotEvery is how many WAL appends accumulate before an automatic
	// compaction folds them into the snapshot and truncates the log; ≤ 0
	// resolves to 512.
	SnapshotEvery int
}

// Lag reports how far the WAL has run ahead of the snapshot — the
// recovery debt a restart would replay.
type Lag struct {
	// Entries and Bytes count WAL appends since the last compaction.
	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Compactions counts snapshot rewrites over the store's life (this
	// process only).
	Compactions int64 `json:"compactions"`
}

// Store is the durable job store for one data directory. All methods are
// safe for concurrent use.
type Store struct {
	dir           string
	snapshotEvery int

	mu          sync.Mutex
	wal         *os.File
	recs        map[string]*Record
	maxSeq      int64
	lagEntries  int64
	lagBytes    int64
	compactions int64
	closed      bool
}

const (
	snapshotFile = "snapshot.json"
	walFile      = "wal.log"
)

// Open loads (or creates) the store rooted at dir: the snapshot is read,
// the WAL replayed on top of it — truncating a torn tail if the last
// append was cut mid-write — and the log left open for appends.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = 512
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{
		dir:           dir,
		snapshotEvery: opts.SnapshotEvery,
		recs:          map[string]*Record{},
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening WAL: %w", err)
	}
	s.wal = wal
	return s, nil
}

// loadSnapshot reads snapshot.json when present.
func (s *Store) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(s.dir, snapshotFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading snapshot: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("store: corrupt snapshot (refusing to guess): %w", err)
	}
	for _, r := range snap.Records {
		s.recs[r.ID] = r
		if r.Seq > s.maxSeq {
			s.maxSeq = r.Seq
		}
	}
	if snap.MaxSeq > s.maxSeq {
		s.maxSeq = snap.MaxSeq
	}
	return nil
}

// replayWAL applies every complete, checksum-valid line of wal.log and
// truncates the file at the first damaged or torn one. Damage is expected
// only at the tail (a SIGKILL mid-append); anything after it is
// unreachable state the store deliberately drops, logging nothing —
// recovery must be deterministic, not best-effort-parse-the-garbage.
func (s *Store) replayWAL() error {
	path := filepath.Join(s.dir, walFile)
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: opening WAL for replay: %w", err)
	}
	defer f.Close()

	var good int64 // byte offset of the end of the last valid line
	rd := bufio.NewReaderSize(f, 1<<16)
	var offset int64
	for {
		line, err := rd.ReadString('\n')
		if err == io.EOF {
			// A line without a trailing newline is a torn write by
			// definition — the append never completed.
			break
		}
		if err != nil {
			return fmt.Errorf("store: reading WAL: %w", err)
		}
		offset += int64(len(line))
		e, ok := decodeLine(line)
		if !ok {
			break
		}
		s.apply(e)
		good = offset
		s.lagEntries++
	}
	s.lagBytes = good
	if info, err := os.Stat(path); err == nil && info.Size() > good {
		if err := os.Truncate(path, good); err != nil {
			return fmt.Errorf("store: truncating torn WAL tail: %w", err)
		}
	}
	return nil
}

// apply folds one entry into the record map. Every op is idempotent and
// tolerant of missing targets, because a crash between snapshot and WAL
// truncation replays entries the snapshot already contains.
func (s *Store) apply(e *entry) {
	switch e.Op {
	case "submit":
		if e.Record == nil || e.Record.ID == "" {
			return
		}
		r := e.Record.clone()
		if r.State == "" {
			r.State = StateQueued
		}
		s.recs[r.ID] = r
		if r.Seq > s.maxSeq {
			s.maxSeq = r.Seq
		}
	case "running":
		if r := s.recs[e.ID]; r != nil && r.State == StateQueued {
			r.State = StateRunning
		}
	case "finish":
		r := s.recs[e.ID]
		if r == nil {
			return
		}
		r.State, r.Code, r.Error = e.State, e.Code, e.Error
		r.Result = e.Result
		r.FinishedAt = e.FinishedAt
	case "evict":
		delete(s.recs, e.ID)
	}
}

// Records returns every live record, sorted by sequence number, as
// independent copies.
func (s *Store) Records() []*Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Record, 0, len(s.recs))
	for _, r := range s.recs {
		out = append(out, r.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Get returns a copy of one record, or nil.
func (s *Store) Get(id string) *Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r := s.recs[id]; r != nil {
		return r.clone()
	}
	return nil
}

// Len is the number of live (non-evicted) records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// MaxSeq is the highest sequence number the store has ever recorded —
// the restart resumes its id counter from here so ids never collide with
// evicted history.
func (s *Store) MaxSeq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxSeq
}

// Lag snapshots the WAL-vs-snapshot debt for health reporting.
func (s *Store) Lag() Lag {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Lag{Entries: s.lagEntries, Bytes: s.lagBytes, Compactions: s.compactions}
}

// AppendSubmit records a new job. The record's State defaults to queued.
func (s *Store) AppendSubmit(r *Record) error {
	rc := r.clone()
	if rc.State == "" {
		rc.State = StateQueued
	}
	return s.append(&entry{Op: "submit", Record: rc})
}

// AppendRunning records a queued job's pickup by a worker.
func (s *Store) AppendRunning(id string) error {
	return s.append(&entry{Op: "running", ID: id})
}

// AppendFinish records a job's terminal outcome.
func (s *Store) AppendFinish(id, state, code, errMsg string, result json.RawMessage, finishedAt time.Time) error {
	return s.append(&entry{
		Op: "finish", ID: id,
		State: state, Code: code, Error: errMsg,
		Result: result, FinishedAt: finishedAt,
	})
}

// AppendEvict records a retention eviction: the job's record is removed
// from the store entirely (its sequence number stays burned via MaxSeq).
func (s *Store) AppendEvict(id string) error {
	return s.append(&entry{Op: "evict", ID: id})
}

// append writes one WAL line and applies it to the in-memory state,
// compacting when the log has grown past the snapshot cadence.
func (s *Store) append(e *entry) error {
	line, err := encodeLine(e)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, err := s.wal.Write(line); err != nil {
		return fmt.Errorf("store: WAL append: %w", err)
	}
	s.apply(e)
	s.lagEntries++
	s.lagBytes += int64(len(line))
	if s.lagEntries >= int64(s.snapshotEvery) {
		if err := s.compactLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Compact folds the WAL into a fresh snapshot and truncates the log.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

// compactLocked writes snapshot.json atomically (temp file + rename,
// fsynced before the rename so the rename never publishes a hollow file),
// then truncates the WAL. Replay idempotence covers the crash window
// between the two steps.
func (s *Store) compactLocked() error {
	snap := snapshot{MaxSeq: s.maxSeq, Records: make([]*Record, 0, len(s.recs))}
	for _, r := range s.recs {
		snap.Records = append(snap.Records, r)
	}
	sort.Slice(snap.Records, func(i, j int) bool { return snap.Records[i].Seq < snap.Records[j].Seq })
	data, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, snapshotFile+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, snapshotFile)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: publishing snapshot: %w", err)
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: truncating WAL: %w", err)
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: rewinding WAL: %w", err)
	}
	s.lagEntries, s.lagBytes = 0, 0
	s.compactions++
	return nil
}

// Close compacts one last time and releases the WAL. Appends after Close
// return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.compactLocked()
	s.closed = true
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

// encodeLine renders one WAL line: "crc32(payload-hex) payload\n". JSON
// never contains raw newlines, so the line framing is unambiguous, and the
// checksum turns any torn or bit-damaged tail into a clean truncation
// point instead of silently corrupt state.
func encodeLine(e *entry) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("store: encoding WAL entry: %w", err)
	}
	sum := crc32.ChecksumIEEE(payload)
	line := make([]byte, 0, 10+len(payload))
	line = append(line, fmt.Sprintf("%08x ", sum)...)
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// decodeLine parses one WAL line, reporting ok=false on any damage.
func decodeLine(line string) (*entry, bool) {
	line = strings.TrimSuffix(line, "\n")
	sumHex, payload, found := strings.Cut(line, " ")
	if !found || len(sumHex) != 8 {
		return nil, false
	}
	want, err := strconv.ParseUint(sumHex, 16, 32)
	if err != nil {
		return nil, false
	}
	if crc32.ChecksumIEEE([]byte(payload)) != uint32(want) {
		return nil, false
	}
	var e entry
	if err := json.Unmarshal([]byte(payload), &e); err != nil {
		return nil, false
	}
	return &e, true
}
