package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"lucidscript"
)

// TestReadyzLivenessSplit pins the liveness/readiness contract: a serving
// server answers 200 on both endpoints; a draining server keeps /healthz
// at 200 (the process is alive and pollable) while /readyz flips to a
// retryable 503 shutting_down — the signal a router's prober uses to
// eject the replica before its listener closes.
func TestReadyzLivenessSplit(t *testing.T) {
	sys := genSystem(t, 42, genOptions())
	srv, client := startServer(t, map[string]*lucidscript.System{"gen": sys}, Config{Workers: 1})
	ctx := context.Background()

	if err := client.Readyz(ctx); err != nil {
		t.Fatalf("Readyz on a serving server: %v", err)
	}
	h, err := client.Healthz(ctx)
	if err != nil || h.Status != "ok" || h.Draining {
		t.Fatalf("Healthz on a serving server = %+v, %v", h, err)
	}

	shutCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	err = client.Readyz(ctx)
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("Readyz while draining = %v, want 503", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeShuttingDown || !ae.Retryable {
		t.Fatalf("readyz drain error = %+v, want retryable shutting_down", ae)
	}
	// Liveness must NOT flip: the drained server still answers status
	// polls, and /healthz says so.
	h, err = client.Healthz(ctx)
	if err != nil {
		t.Fatalf("Healthz while draining: %v", err)
	}
	if !h.Draining || h.Status != "draining" {
		t.Fatalf("draining Healthz = %+v, want status=draining", h)
	}
}

// TestBootHandler pins the boot surface lsserved serves between binding
// its listener and finishing curation/WAL replay: /healthz is alive
// ("booting"), /readyz and the whole API are retryable 503 not_ready
// with a Retry-After hint.
func TestBootHandler(t *testing.T) {
	hs := httptest.NewServer(BootHandler(700 * time.Millisecond))
	defer hs.Close()
	client := NewClient(hs.URL, nil)
	ctx := context.Background()

	h, err := client.Healthz(ctx)
	if err != nil {
		t.Fatalf("Healthz on boot surface: %v", err)
	}
	if h.Status != "booting" {
		t.Fatalf("boot Healthz status %q, want booting", h.Status)
	}

	checkNotReady := func(err error, what string) {
		t.Helper()
		if !errors.Is(err, ErrDraining) {
			t.Fatalf("%s on boot surface = %v, want 503", what, err)
		}
		var ae *APIError
		if !errors.As(err, &ae) || ae.Code != CodeNotReady || !ae.Retryable {
			t.Fatalf("%s boot error = %+v, want retryable not_ready", what, ae)
		}
		// A sub-second hint must still round up to a whole Retry-After
		// second on the wire, and ride in RetryAfterMS exactly.
		if ae.RetryAfter != 700*time.Millisecond {
			t.Fatalf("%s RetryAfter = %v, want 700ms", what, ae.RetryAfter)
		}
	}
	checkNotReady(client.Readyz(ctx), "Readyz")
	_, err = client.Submit(ctx, "gen", "x = read_csv(\"gen.csv\")", nil)
	checkNotReady(err, "Submit")
	_, err = client.Job(ctx, "j-00000001")
	checkNotReady(err, "Job")

	resp, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("boot Retry-After header %q, want \"1\" (rounded up)", got)
	}
}
