package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lucidscript"
	"lucidscript/internal/gen"
	"lucidscript/internal/serve/store"
)

// TestServeIdempotencyReplay pins the POST /v1/jobs idempotency contract:
// a retried submission with the same key returns the original job (HTTP
// 200 + Idempotency-Replayed instead of 202), the same key with a
// different request is a 409, and a disagreeing header/body pair is a 409
// before any work is admitted.
func TestServeIdempotencyReplay(t *testing.T) {
	sys := genSystem(t, 42, genOptions())
	srv, client := startServer(t, map[string]*lucidscript.System{"gen": sys}, Config{Workers: 2})
	ctx := context.Background()
	src := gen.New(3).ScriptSource()

	first, err := client.SubmitIdempotent(ctx, "gen", src, nil, "key-1")
	if err != nil {
		t.Fatal(err)
	}
	if first.IdempotencyKey != "key-1" {
		t.Errorf("status echoes key %q, want key-1", first.IdempotencyKey)
	}
	// Retry while possibly still in flight: same job, not a new one.
	again, err := client.SubmitIdempotent(ctx, "gen", src, nil, "key-1")
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != first.ID {
		t.Fatalf("replayed submit returned job %s, want original %s", again.ID, first.ID)
	}
	// And again after completion: now the replay carries the full result.
	done, err := client.Wait(ctx, first.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("state = %q (error %q)", done.State, done.Error)
	}
	replay, err := client.SubmitIdempotent(ctx, "gen", src, nil, "key-1")
	if err != nil {
		t.Fatal(err)
	}
	if replay.ID != first.ID || replay.State != StateDone || replay.Result == nil {
		t.Fatalf("post-completion replay = %+v, want done job %s with result", replay, first.ID)
	}

	// Same key, different script: the key reuse is the caller's bug — 409.
	other := gen.New(5).ScriptSource()
	_, err = client.SubmitIdempotent(ctx, "gen", other, nil, "key-1")
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting reuse err = %v, want ErrConflict", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != CodeIdempotencyConflict {
		t.Fatalf("conflict APIError = %+v, want code %q", apiErr, CodeIdempotencyConflict)
	}
	if Retryable(err) {
		t.Error("idempotency conflict marked retryable")
	}

	// Raw wire check: the replay is a 200 with the Idempotency-Replayed
	// header, and a header/body key mismatch is rejected outright.
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	body := `{"dataset":"gen","script":` + jsonString(src) + `,"idempotency_key":"key-1"}`
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/jobs", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", "key-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Idempotency-Replayed") != "true" {
		t.Errorf("replay = HTTP %d, Idempotency-Replayed=%q; want 200/true",
			resp.StatusCode, resp.Header.Get("Idempotency-Replayed"))
	}
	req, _ = http.NewRequest(http.MethodPost, hs.URL+"/v1/jobs", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", "a-different-key")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("header/body key mismatch = HTTP %d, want 409", resp.StatusCode)
	}
}

// TestServeDurableRestart is the in-process half of the durability
// acceptance criterion: run jobs against a DataDir server, shut it down,
// bring a new server up on the same directory, and check every finished
// job is still there — same states, same results, same output hashes,
// same finish timestamps (the proof nothing re-executed) — and that
// idempotency keys still replay instead of duplicating work.
func TestServeDurableRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	jobs := gen.New(7).Scripts(4)

	sys := genSystem(t, 42, genOptions())
	srv1, client1 := startServer(t, map[string]*lucidscript.System{"gen": sys},
		Config{Workers: 2, DataDir: dir})

	before := make(map[string]*JobStatus)
	for i, su := range jobs {
		key := ""
		if i%2 == 0 {
			key = fmt.Sprintf("restart-key-%d", i)
		}
		sub, err := client1.SubmitIdempotent(ctx, "gen", su.Source(), nil, key)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		st, err := client1.Wait(ctx, sub.ID, 5*time.Millisecond)
		if err != nil {
			t.Fatalf("Wait %d: %v", i, err)
		}
		if st.State != StateDone || st.Result == nil || st.Result.OutputHash == "" {
			t.Fatalf("job %d = %q (error %q), want done with hash", i, st.State, st.Error)
		}
		before[st.ID] = st
	}
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Same directory, fresh process-equivalent: identically-curated System.
	sys2 := genSystem(t, 42, genOptions())
	srv2, client2 := startServer(t, map[string]*lucidscript.System{"gen": sys2},
		Config{Workers: 2, DataDir: dir})
	rec := srv2.Recovery()
	if rec.Terminal != len(jobs) || rec.Requeued != 0 || rec.Interrupted != 0 {
		t.Fatalf("recovery = %+v, want %d terminal", rec, len(jobs))
	}

	for id, want := range before {
		got, err := client2.Job(ctx, id)
		if err != nil {
			t.Fatalf("job %s lost across restart: %v", id, err)
		}
		if got.State != want.State || got.Dataset != want.Dataset || got.IdempotencyKey != want.IdempotencyKey {
			t.Errorf("job %s after restart = %+v, want %+v", id, got, want)
		}
		if got.Result == nil || got.Result.Script != want.Result.Script || got.Result.OutputHash != want.Result.OutputHash {
			t.Errorf("job %s result drifted across restart", id)
		}
		if got.FinishedAt == nil || !got.FinishedAt.Equal(*want.FinishedAt) {
			t.Errorf("job %s finished_at = %v, want %v (a changed timestamp means it re-executed)",
				id, got.FinishedAt, want.FinishedAt)
		}
	}

	// The listing shows exactly the recovered jobs, and an idempotent
	// resubmit with an original key replays the recovered job.
	all, err := client2.AllJobs(ctx, ListJobsQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(jobs) {
		t.Errorf("list after restart = %d jobs, want %d", len(all), len(jobs))
	}
	otherSrc := gen.New(99).ScriptSource()
	for id, want := range before {
		if want.IdempotencyKey == "" {
			continue
		}
		// A recovered key guards against drifted retries too: the same key
		// with a different (still valid) script is a conflict…
		replay, err := client2.SubmitIdempotent(ctx, "gen", otherSrc, nil, want.IdempotencyKey)
		if !errors.Is(err, ErrConflict) {
			t.Fatalf("key %q with different script: err = %v (status %+v), want ErrConflict",
				want.IdempotencyKey, err, replay)
		}
		// …and with the original script it replays the recovered job.
		replay, err = client2.SubmitIdempotent(ctx, "gen", jobSourceOf(t, jobs, want), nil, want.IdempotencyKey)
		if err != nil {
			t.Fatalf("replay key %q: %v", want.IdempotencyKey, err)
		}
		if replay.ID != id {
			t.Errorf("replay with key %q = job %s, want %s", want.IdempotencyKey, replay.ID, id)
		}
	}
	if err := srv2.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// jobSourceOf recovers which submitted source produced a job status by
// matching the recorded result script against nothing — the original
// submission source is not in JobStatus, so match by re-submission order:
// the durable store keeps submission order in the id, and jobs were
// submitted in slice order.
func jobSourceOf(t *testing.T, jobs []*lucidscript.Script, st *JobStatus) string {
	t.Helper()
	var idx int
	if n, err := parseJobIndex(st.ID); err == nil {
		idx = n - 1
	} else {
		t.Fatalf("unparseable job id %q: %v", st.ID, err)
	}
	if idx < 0 || idx >= len(jobs) {
		t.Fatalf("job id %q outside submission range", st.ID)
	}
	return jobs[idx].Source()
}

// parseJobIndex extracts the sequence number from a j-%08d id.
func parseJobIndex(id string) (int, error) {
	var n int
	if _, err := fmt.Sscanf(id, "j-%d", &n); err != nil {
		return 0, err
	}
	return n, nil
}

// TestServeRecoveryPolicies drives every recovery branch through a
// hand-built store — the deterministic in-process stand-in for a crash:
// terminal records are adopted verbatim, queued records re-enqueue and
// run to completion, running records land interrupted with their
// idempotency keys released, and queued records that can no longer be
// re-enqueued (unknown dataset, unparseable script) also land
// interrupted.
func TestServeRecoveryPolicies(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	src := gen.New(3).ScriptSource()
	// The finish timestamp must be within the retention window, or the
	// adopted record is (correctly) evicted the moment it is recovered.
	base := time.Now().UTC().Add(-time.Minute).Truncate(time.Second)

	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// j-1: finished, with a (fabricated) result payload.
	must(t, st.AppendSubmit(&store.Record{ID: "j-00000001", Seq: 1, Dataset: "gen", Script: src, IdempotencyKey: "done-key", SubmittedAt: base}))
	must(t, st.AppendFinish("j-00000001", store.StateDone, "", "", []byte(`{"script":"x","output_hash":"abc","re_before":1,"re_after":0,"improvement_pct":100,"intent_value":1,"timings":{"curate_ms":0,"get_steps_ms":0,"top_k_beams_ms":0,"check_executes_ms":0,"verify_constraints_ms":0,"total_ms":1}}`), base.Add(time.Second)))
	// j-2: still queued — must re-enqueue and complete for real.
	must(t, st.AppendSubmit(&store.Record{ID: "j-00000002", Seq: 2, Dataset: "gen", Script: src, SubmittedAt: base}))
	// j-3: was running — must come back interrupted, key released.
	must(t, st.AppendSubmit(&store.Record{ID: "j-00000003", Seq: 3, Dataset: "gen", Script: src, IdempotencyKey: "running-key", SubmittedAt: base}))
	must(t, st.AppendRunning("j-00000003"))
	// j-4: queued against a dataset this server no longer hosts.
	must(t, st.AppendSubmit(&store.Record{ID: "j-00000004", Seq: 4, Dataset: "gone", Script: src, SubmittedAt: base}))
	// j-5: queued but its stored script no longer parses.
	must(t, st.AppendSubmit(&store.Record{ID: "j-00000005", Seq: 5, Dataset: "gen", Script: "df = df.((broken", SubmittedAt: base}))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	sys := genSystem(t, 42, genOptions())
	srv, client := startServer(t, map[string]*lucidscript.System{"gen": sys},
		Config{Workers: 2, DataDir: dir})
	rec := srv.Recovery()
	if rec.Terminal != 1 || rec.Requeued != 1 || rec.Interrupted != 3 {
		t.Fatalf("recovery = %+v, want 1 terminal / 1 requeued / 3 interrupted", rec)
	}

	// Adopted terminal: result intact.
	done, err := client.Job(ctx, "j-00000001")
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone || done.Result == nil || done.Result.OutputHash != "abc" {
		t.Errorf("adopted job = %+v, want done with original hash", done)
	}

	// Requeued: runs to done on the new server.
	requeued, err := client.Wait(ctx, "j-00000002", 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if requeued.State != StateDone || requeued.Result == nil {
		t.Errorf("requeued job = %q (error %q), want done", requeued.State, requeued.Error)
	}

	// Interrupted trio: terminal, retryable code, reasons attached.
	for _, id := range []string{"j-00000003", "j-00000004", "j-00000005"} {
		st, err := client.Job(ctx, id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if st.State != StateInterrupted || st.Code != CodeInterrupted || st.Error == "" {
			t.Errorf("job %s = %q/%q (%q), want interrupted with reason", id, st.State, st.Code, st.Error)
		}
		if st.FinishedAt == nil {
			t.Errorf("job %s interrupted without finished_at", id)
		}
	}

	// The running job's key was released: the same key now starts a fresh
	// job rather than replaying the interrupted one.
	fresh, err := client.SubmitIdempotent(ctx, "gen", src, nil, "running-key")
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID == "j-00000003" {
		t.Error("interrupted job's key replayed instead of starting fresh work")
	}
	// Ids never collide with recovered history: the new job is past seq 5.
	if n, err := parseJobIndex(fresh.ID); err != nil || n <= 5 {
		t.Errorf("fresh job id %q did not resume past recovered MaxSeq", fresh.ID)
	}
	// The done job's key still replays.
	replay, err := client.SubmitIdempotent(ctx, "gen", src, nil, "done-key")
	if err != nil {
		t.Fatal(err)
	}
	if replay.ID != "j-00000001" {
		t.Errorf("done job's key replayed %s, want j-00000001", replay.ID)
	}
	if _, err := client.Wait(ctx, fresh.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// must fails the test on a store append error.
func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
