package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"lucidscript"
	"lucidscript/internal/gen"
)

// TestServeListJobs drives GET /v1/jobs end to end: full listing in id
// order, cursor pagination with a limit smaller than the population,
// state and dataset filters, and the 400 surface for bad parameters.
func TestServeListJobs(t *testing.T) {
	a := genSystem(t, 42, genOptions())
	b := genSystem(t, 1042, genOptions())
	_, client := startServer(t, map[string]*lucidscript.System{"alpha": a, "beta": b},
		Config{Workers: 2, QueueDepth: 16})
	ctx := context.Background()

	var want []string
	for i, su := range gen.New(7).Scripts(6) {
		name := "alpha"
		if i >= 4 {
			name = "beta"
		}
		st, err := client.Submit(ctx, name, su.Source(), nil)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		want = append(want, st.ID)
	}
	for _, id := range want {
		if _, err := client.Wait(ctx, id, 5*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(want)

	// One big page: every job, in id order.
	all, err := client.ListJobs(ctx, ListJobsQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if all.NextCursor != "" {
		t.Errorf("single page returned a cursor %q", all.NextCursor)
	}
	var got []string
	for _, st := range all.Jobs {
		got = append(got, st.ID)
	}
	if len(got) != len(want) {
		t.Fatalf("list = %d jobs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("list order = %v, want %v", got, want)
		}
	}

	// Cursor walk with limit 2: three pages, no duplicates, no skips.
	var walked []string
	q := ListJobsQuery{Limit: 2}
	pages := 0
	for {
		page, err := client.ListJobs(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		if len(page.Jobs) > 2 {
			t.Fatalf("page of %d jobs exceeds limit 2", len(page.Jobs))
		}
		for _, st := range page.Jobs {
			walked = append(walked, st.ID)
		}
		if page.NextCursor == "" {
			break
		}
		q.Cursor = page.NextCursor
	}
	if pages != 3 {
		t.Errorf("walk took %d pages, want 3", pages)
	}
	for i := range want {
		if i >= len(walked) || walked[i] != want[i] {
			t.Fatalf("cursor walk = %v, want %v", walked, want)
		}
	}

	// Filters compose: dataset narrows to beta's two jobs, state=done
	// matches everything (all jobs have finished), state=queued nothing.
	beta, err := client.AllJobs(ctx, ListJobsQuery{Dataset: "beta"})
	if err != nil {
		t.Fatal(err)
	}
	if len(beta) != 2 {
		t.Errorf("dataset=beta = %d jobs, want 2", len(beta))
	}
	done, err := client.AllJobs(ctx, ListJobsQuery{State: StateDone})
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != len(want) {
		t.Errorf("state=done = %d jobs, want %d", len(done), len(want))
	}
	queued, err := client.AllJobs(ctx, ListJobsQuery{State: StateQueued})
	if err != nil {
		t.Fatal(err)
	}
	if len(queued) != 0 {
		t.Errorf("state=queued = %d jobs, want 0", len(queued))
	}

	// Bad parameters are 400s with the bad_request code.
	for _, q := range []ListJobsQuery{{State: "bogus"}, {Limit: -1}} {
		_, err := client.ListJobs(ctx, q)
		if q.Limit < 0 {
			// The client drops non-positive limits; drive the raw query.
			err = rawList(client, "limit=-1")
		}
		if !errors.Is(err, ErrBadRequest) {
			t.Errorf("query %+v err = %v, want ErrBadRequest", q, err)
		}
	}
}

// rawList hits GET /v1/jobs with a raw query string through the client's
// error mapping.
func rawList(c *Client, rawQuery string) error {
	var resp ListResponse
	return c.do(context.Background(), http.MethodGet, "/v1/jobs?"+rawQuery, nil, nil, &resp)
}

// TestRetryPolicyBackoff scripts a server that rejects twice retryably
// before accepting, and checks the policy pushes through while honoring
// the server's own retryable verdict.
func TestRetryPolicyBackoff(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		if n <= 2 {
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(ErrorResponse{
				Code: CodeQueueFull, Message: "full", Retryable: true, RetryAfterMS: 1,
			})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(JobStatus{ID: "j-00000001", Dataset: "gen", State: StateQueued})
	}))
	defer hs.Close()

	client := NewClient(hs.URL, nil)
	st, err := client.SubmitRetry(context.Background(), "gen", "src", nil, "k",
		RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("SubmitRetry: %v", err)
	}
	if st.ID != "j-00000001" || calls.Load() != 3 {
		t.Errorf("got job %q after %d calls, want j-00000001 after 3", st.ID, calls.Load())
	}
}

// TestRetryPolicyStops pins the two ways the loop must NOT retry: a
// non-retryable error returns immediately, and exhausted attempts return
// the last retryable error.
func TestRetryPolicyStops(t *testing.T) {
	var calls atomic.Int64
	status := atomic.Int64{}
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		switch status.Load() {
		case 400:
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(ErrorResponse{Code: CodeBadRequest, Message: "nope"})
		default:
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(ErrorResponse{
				Code: CodeShuttingDown, Message: "draining", Retryable: true, RetryAfterMS: 1,
			})
		}
	}))
	defer hs.Close()
	client := NewClient(hs.URL, nil)
	policy := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}

	status.Store(400)
	_, err := client.SubmitRetry(context.Background(), "gen", "src", nil, "k", policy)
	if !errors.Is(err, ErrBadRequest) || calls.Load() != 1 {
		t.Errorf("non-retryable: err=%v after %d calls, want ErrBadRequest after 1", err, calls.Load())
	}
	if Retryable(err) {
		t.Error("bad_request reported retryable")
	}

	calls.Store(0)
	status.Store(503)
	_, err = client.SubmitRetry(context.Background(), "gen", "src", nil, "k", policy)
	if !errors.Is(err, ErrDraining) || calls.Load() != 3 {
		t.Errorf("exhausted: err=%v after %d calls, want ErrDraining after 3", err, calls.Load())
	}
	if !Retryable(err) {
		t.Error("draining error not reported retryable")
	}

	// A canceled context stops the loop between attempts.
	calls.Store(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = client.SubmitRetry(ctx, "gen", "src", nil, "k",
		RetryPolicy{MaxAttempts: 10, BaseDelay: time.Hour})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled ctx err = %v, want context.Canceled", err)
	}
}
