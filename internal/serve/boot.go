package serve

import (
	"encoding/json"
	"net/http"
	"time"
)

// BootHandler is the HTTP surface a daemon serves between binding its
// listener and finishing startup (dataset curation, WAL replay). It
// makes the not-yet-ready window observable instead of a connection
// refusal: GET /healthz answers 200 "booting" (the process is alive),
// GET /readyz and every other route answer a retryable 503 not_ready
// with a Retry-After hint. cmd/lsserved mounts it first and atomically
// swaps in Server.Handler once NewServer returns, which is what gives
// the router's prober a true readiness signal across a replica restart.
func BootHandler(retryAfter time.Duration) http.Handler {
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	notReady := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(ErrorResponse{
			Code:         CodeNotReady,
			Message:      "server is booting: datasets curating, write-ahead log replaying",
			Retryable:    true,
			RetryAfterMS: retryAfter.Milliseconds(),
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(w).Encode(HealthResponse{Status: "booting", Datasets: map[string]DatasetHealth{}})
	})
	mux.HandleFunc("/", notReady)
	return mux
}
