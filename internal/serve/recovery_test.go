package serve

// The kill -9 acceptance test: a real lsserved process with a durable
// data dir is loaded with a few hundred jobs, SIGKILLed mid-run, and
// restarted against the same directory. Every job the server ever
// acknowledged must be accounted for afterward — finished jobs with their
// original results and output hashes, stranded jobs as interrupted or
// re-enqueued — with no job lost and none duplicated, and idempotent
// resubmits honored across the restart.

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"lucidscript/internal/gen"
)

// recoveryJobs is the default kill-and-restart population; override with
// LSSERVE_RECOVERY_JOBS to stress harder (the CI durability job does).
const recoveryJobs = 200

// TestServeKillRecovery builds lsserved, runs it durably, kills it with
// SIGKILL while jobs are in flight, restarts it on the same data dir, and
// audits the ledger.
func TestServeKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills a real server process")
	}
	nJobs := recoveryJobs
	if env := os.Getenv("LSSERVE_RECOVERY_JOBS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n <= 0 {
			t.Fatalf("bad LSSERVE_RECOVERY_JOBS=%q", env)
		}
		nJobs = n
	}

	bin := buildLsserved(t)
	workDir := t.TempDir()
	corpusDir := filepath.Join(workDir, "corpus")
	dataDir := filepath.Join(workDir, "jobs")
	dataCSV := filepath.Join(workDir, "data.csv")
	writeCorpus(t, corpusDir, dataCSV)

	port := freePort(t)
	base := fmt.Sprintf("http://127.0.0.1:%d", port)
	args := []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-dataset", "gen=" + corpusDir + "," + dataCSV,
		"-data-dir", dataDir,
		"-tau", "0.9", "-seq", "4", "-beam", "3", "-max-rows", "80",
		"-serve-workers", "2",
		"-queue-depth", strconv.Itoa(2 * nJobs),
		"-job-retention", "1h",
	}
	proc := startLsserved(t, bin, args, base)
	client := NewClient(base, nil)
	ctx := context.Background()

	// Load the server from a background goroutine: every job carries an
	// idempotency key so the audit can exercise replay-vs-fresh across the
	// restart, and submitting concurrently with the kill is what leaves
	// queued and running jobs on the ledger when the process dies.
	var srcs []string
	for _, sc := range gen.New(7).Scripts(8) {
		srcs = append(srcs, sc.Source())
	}
	var mu sync.Mutex
	acked := make(map[string]string, nJobs) // job id → key
	submitterDone := make(chan struct{})
	go func() {
		defer close(submitterDone)
		for i := 0; i < nJobs; i++ {
			key := fmt.Sprintf("recov-%04d", i)
			st, err := client.SubmitIdempotent(ctx, "gen", srcs[i%len(srcs)], nil, key)
			if err != nil {
				return // the kill landed; everything acked so far is the audit set
			}
			mu.Lock()
			acked[st.ID] = key
			mu.Unlock()
		}
	}()

	// Kill -9 once a meaningful slice has finished but submissions are
	// (most likely) still flowing: the exact cut is timing-dependent, and
	// every interleaving is a valid durability scenario. Snapshot the
	// finished jobs just before the kill — those exact results must
	// survive.
	var doneBefore []JobStatus
	deadline := time.Now().Add(30 * time.Second)
	for {
		page, err := client.AllJobs(ctx, ListJobsQuery{State: StateDone})
		if err != nil {
			t.Fatalf("pre-kill list: %v", err)
		}
		doneBefore = page
		if len(page) >= nJobs/10 || time.Now().After(deadline) {
			break
		}
	}
	if err := proc.Process.Kill(); err != nil { // SIGKILL: no drain, no fsync, no goodbye
		t.Fatal(err)
	}
	proc.Wait()
	<-submitterDone
	mu.Lock()
	nAcked := len(acked)
	mu.Unlock()
	t.Logf("killed with %d/%d jobs acked, %d done", nAcked, nJobs, len(doneBefore))

	// Restart on the same directory and wait for the ledger to settle:
	// requeued jobs run to completion, the rest are already terminal.
	proc2 := startLsserved(t, bin, args, base)
	defer func() {
		proc2.Process.Signal(syscall.SIGTERM)
		proc2.Wait()
	}()

	all := waitAllTerminal(t, client, nAcked)

	// No acked job lost, none duplicated. The ledger may hold a few more
	// than the client saw acked — a submission whose 202 was in flight
	// when the kill landed is recorded server-side but never reached the
	// client; those are legitimate (and exactly what idempotency keys are
	// for), never fewer.
	seen := map[string]int{}
	for _, st := range all {
		seen[st.ID]++
	}
	for id := range acked {
		if seen[id] != 1 {
			t.Errorf("job %s appears %d times after restart, want exactly 1", id, seen[id])
		}
	}
	if len(all) < nAcked || len(all) > nJobs {
		t.Errorf("ledger holds %d jobs after restart, want between %d acked and %d submitted",
			len(all), nAcked, nJobs)
	}
	byID := map[string]JobStatus{}
	for _, st := range all {
		byID[st.ID] = st
	}

	// Jobs that were done before the kill survived byte-for-byte: same
	// hash, same finish instant (a changed timestamp would mean the
	// restart re-executed them).
	for _, want := range doneBefore {
		got, ok := byID[want.ID]
		if !ok {
			t.Errorf("finished job %s lost across kill", want.ID)
			continue
		}
		if got.State != StateDone || got.Result == nil {
			t.Errorf("finished job %s now %q (error %q)", want.ID, got.State, got.Error)
			continue
		}
		if got.Result.OutputHash != want.Result.OutputHash || got.Result.Script != want.Result.Script {
			t.Errorf("job %s result drifted across kill", want.ID)
		}
		if got.FinishedAt == nil || !got.FinishedAt.Equal(*want.FinishedAt) {
			t.Errorf("job %s finished_at %v → %v: it re-executed", want.ID, want.FinishedAt, got.FinishedAt)
		}
	}

	// Every job is in a coherent terminal state, and idempotent resubmits
	// behave per state: done/failed/canceled replay the original job;
	// interrupted keys were released and start fresh work.
	var interrupted, done int
	for id, st := range byID {
		key, haveKey := acked[id]
		switch st.State {
		case StateDone:
			done++
			if !haveKey {
				continue
			}
			replay, err := client.SubmitIdempotent(ctx, "gen", scriptOfKey(srcs, key), nil, key)
			if err != nil {
				t.Errorf("replay %s: %v", id, err)
			} else if replay.ID != id {
				t.Errorf("replay of done job %s returned %s: duplicated work", id, replay.ID)
			}
		case StateInterrupted:
			interrupted++
			if !haveKey {
				continue
			}
			fresh, err := client.SubmitIdempotent(ctx, "gen", scriptOfKey(srcs, key), nil, key)
			if err != nil {
				t.Errorf("resubmit %s: %v", id, err)
			} else if fresh.ID == id {
				t.Errorf("interrupted job %s replayed itself instead of starting fresh", id)
			} else if _, err := client.Wait(ctx, fresh.ID, 5*time.Millisecond); err != nil {
				t.Errorf("fresh job for %s: %v", id, err)
			}
		case StateFailed, StateCanceled:
			// Legitimate terminal outcomes (e.g. drained by the kill race);
			// nothing further to audit.
		default:
			t.Errorf("job %s non-terminal after settle: %q", id, st.State)
		}
	}
	t.Logf("after restart: %d done, %d interrupted", done, interrupted)
	if done < len(doneBefore) {
		t.Errorf("done count fell from %d to %d across the restart", len(doneBefore), done)
	}
}

// scriptOfKey maps an idempotency key (recov-%04d) back to the source it
// was submitted with.
func scriptOfKey(srcs []string, key string) string {
	var i int
	fmt.Sscanf(key, "recov-%d", &i)
	return srcs[i%len(srcs)]
}

// buildLsserved compiles cmd/lsserved into the test's temp space (the Go
// build cache makes repeat builds cheap).
func buildLsserved(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "lsserved")
	cmd := exec.Command("go", "build", "-o", bin, "lucidscript/cmd/lsserved")
	cmd.Dir = "../.." // module root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building lsserved: %v\n%s", err, out)
	}
	return bin
}

// writeCorpus materializes the seeded generative corpus and dataset as
// real files for the server process — the same seed the in-process tests
// curate from, so search behavior is identical.
func writeCorpus(t *testing.T, corpusDir, dataCSV string) {
	t.Helper()
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		t.Fatal(err)
	}
	g := gen.New(42)
	for i, sc := range g.Scripts(8) {
		path := filepath.Join(corpusDir, fmt.Sprintf("s%02d.ls", i))
		if err := os.WriteFile(path, []byte(sc.Source()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range g.Sources(120) {
		if err := f.WriteCSVFile(dataCSV); err != nil {
			t.Fatal(err)
		}
	}
}

// startLsserved launches the server and blocks until /healthz answers.
func startLsserved(t *testing.T, bin string, args []string, base string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	client := NewClient(base, nil)
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := client.Healthz(context.Background()); err == nil {
			return cmd
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("lsserved did not become healthy in 30s")
	return nil
}

// waitAllTerminal polls the list endpoint until every job reads terminal.
func waitAllTerminal(t *testing.T, client *Client, want int) []JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		all, err := client.AllJobs(context.Background(), ListJobsQuery{Limit: 1000})
		if err != nil {
			t.Fatalf("list: %v", err)
		}
		settled := len(all) >= want
		for _, st := range all {
			if !TerminalState(st.State) {
				settled = false
				break
			}
		}
		if settled {
			return all
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("jobs did not settle within 60s of the restart")
	return nil
}

// freePort grabs an ephemeral TCP port for the spawned server.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}
