package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lucidscript"
	"lucidscript/internal/core"
	"lucidscript/internal/faults"
	"lucidscript/internal/gen"
)

// genOptions is the fast-search option set every serve test builds its
// Systems with. Tests that need faults or timeouts copy and extend it.
func genOptions() lucidscript.Options {
	return lucidscript.Options{Tau: 0.9, SeqLength: 4, BeamSize: 3, MaxRows: 80}
}

// genSystem builds a System over the seeded generative corpus/dataset pair;
// every call with the same seed yields an identically-curated System, which
// is how tests compare served results against a direct in-process run.
func genSystem(t testing.TB, seed int64, opts lucidscript.Options) *lucidscript.System {
	t.Helper()
	g := gen.New(seed)
	sys, err := lucidscript.NewSystem(g.Scripts(8), g.Sources(120), opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// startServer mounts a Server on an httptest listener and returns it with a
// ready Client. The test server (not the job queues) is torn down on
// cleanup; tests that exercise Shutdown call it themselves.
func startServer(t testing.TB, systems map[string]*lucidscript.System, cfg Config) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer(systems, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, NewClient(hs.URL, hs.Client())
}

// TestServeLifecycle is the core e2e round trip: submit → poll → result,
// with the served result byte-identical to a direct System.Standardize on
// an identically-built System, and the served output hash equal to the
// direct OutputHash — the acceptance criterion that the service and the
// library produce the same standardized script AND the same output table.
func TestServeLifecycle(t *testing.T) {
	sys := genSystem(t, 42, genOptions())
	_, client := startServer(t, map[string]*lucidscript.System{"gen": sys}, Config{Workers: 2})

	direct := genSystem(t, 42, genOptions())
	jobs := gen.New(7).Scripts(3)
	ctx := context.Background()

	for i, su := range jobs {
		want, err := direct.Standardize(su)
		if err != nil {
			t.Fatalf("direct %d: %v", i, err)
		}
		wantHash, err := direct.OutputHash(want.Script)
		if err != nil {
			t.Fatalf("direct hash %d: %v", i, err)
		}

		sub, err := client.Submit(ctx, "gen", su.Source(), nil)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		if sub.ID == "" || sub.Dataset != "gen" {
			t.Fatalf("submit status = %+v", sub)
		}
		switch sub.State {
		case StateQueued, StateRunning, StateDone:
		default:
			t.Fatalf("submit state = %q", sub.State)
		}
		st, err := client.Wait(ctx, sub.ID, 5*time.Millisecond)
		if err != nil {
			t.Fatalf("Wait %d: %v", i, err)
		}
		if st.State != StateDone {
			t.Fatalf("job %d state = %q (error %q, code %q)", i, st.State, st.Error, st.Code)
		}
		if st.Result == nil {
			t.Fatalf("job %d done with nil result", i)
		}
		if st.Result.Script != want.Script.Source() {
			t.Errorf("job %d served script diverges from direct Standardize:\nserved:\n%s\ndirect:\n%s",
				i, st.Result.Script, want.Script.Source())
		}
		if st.Result.OutputHash != wantHash {
			t.Errorf("job %d output hash = %q, want %q", i, st.Result.OutputHash, wantHash)
		}
		if st.Result.REBefore != want.REBefore || st.Result.REAfter != want.REAfter {
			t.Errorf("job %d RE (%v → %v) != direct (%v → %v)",
				i, st.Result.REBefore, st.Result.REAfter, want.REBefore, want.REAfter)
		}
		if st.FinishedAt == nil || st.FinishedAt.Before(st.SubmittedAt) {
			t.Errorf("job %d finished_at = %v (submitted %v)", i, st.FinishedAt, st.SubmittedAt)
		}
		if st.Result.Timings.TotalMS <= 0 {
			t.Errorf("job %d total_ms = %v, want > 0", i, st.Result.Timings.TotalMS)
		}
	}
}

// TestServeCurationPaidOnce is the acceptance criterion that a served
// dataset pays corpus curation exactly once no matter how many requests
// arrive: eight submissions, one core.Curate call (the one NewSystem made).
func TestServeCurationPaidOnce(t *testing.T) {
	before := core.CurateCalls()
	sys := genSystem(t, 42, genOptions())
	_, client := startServer(t, map[string]*lucidscript.System{"gen": sys}, Config{Workers: 2, QueueDepth: 16})

	jobs := gen.New(9).Scripts(8)
	ctx := context.Background()
	ids := make([]string, len(jobs))
	for i, su := range jobs {
		st, err := client.Submit(ctx, "gen", su.Source(), nil)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids[i] = st.ID
	}
	for i, id := range ids {
		st, err := client.Wait(ctx, id, 5*time.Millisecond)
		if err != nil {
			t.Fatalf("Wait %d: %v", i, err)
		}
		if st.State != StateDone {
			t.Fatalf("job %d state = %q (error %q)", i, st.State, st.Error)
		}
	}
	if got := core.CurateCalls() - before; got != 1 {
		t.Errorf("%d requests cost %d curation passes, want exactly 1", len(jobs), got)
	}
}

// TestServeNotFound covers both 404 shapes: unknown job id and unknown
// dataset, each with its own machine-readable code.
func TestServeNotFound(t *testing.T) {
	sys := genSystem(t, 42, genOptions())
	_, client := startServer(t, map[string]*lucidscript.System{"gen": sys}, Config{})
	ctx := context.Background()

	_, err := client.Job(ctx, "j-no-such")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown job err = %v, want ErrNotFound", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != CodeNotFound {
		t.Fatalf("unknown job APIError = %+v, want code %q", apiErr, CodeNotFound)
	}

	if _, err := client.Cancel(ctx, "j-no-such"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown job err = %v, want ErrNotFound", err)
	}

	_, err = client.Submit(ctx, "nope", `import pandas as pd`+"\n"+`df = pd.read_csv("data.csv")`+"\n", nil)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown dataset err = %v, want ErrNotFound", err)
	}
	if !errors.As(err, &apiErr) || apiErr.Code != CodeUnknownDataset {
		t.Fatalf("unknown dataset APIError = %+v, want code %q", apiErr, CodeUnknownDataset)
	}
}

// TestServeBadRequest covers the 400 surface: malformed JSON, a script that
// does not parse, and an invalid per-job timeout.
func TestServeBadRequest(t *testing.T) {
	sys := genSystem(t, 42, genOptions())
	srv, client := startServer(t, map[string]*lucidscript.System{"gen": sys}, Config{})
	ctx := context.Background()

	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON status = %d, want 400", resp.StatusCode)
	}

	var apiErr *APIError
	_, err = client.Submit(ctx, "gen", "df = df.this_is_not_lsl(((", nil)
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest || apiErr.Code != CodeBadRequest {
		t.Errorf("unparseable script err = %v, want 400 %s", err, CodeBadRequest)
	}

	good := gen.New(3).ScriptSource()
	for _, timeout := range []string{"bogus", "-3s", "0s"} {
		_, err = client.Submit(ctx, "gen", good, &JobOptions{Timeout: timeout})
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
			t.Errorf("timeout %q err = %v, want 400", timeout, err)
		}
	}
}

// TestServeQueueFull429 drives admission control over the edge: one worker
// held by a delay fault, a one-slot buffer, and submissions until a 429
// with a Retry-After hint comes back.
func TestServeQueueFull429(t *testing.T) {
	opts := genOptions()
	opts.Faults = faults.New(5, faults.Rule{
		Site: faults.SiteBatchJob, Kind: faults.KindDelay, Prob: 1, Delay: 400 * time.Millisecond,
	})
	sys := genSystem(t, 42, opts)
	retryAfter := 1500 * time.Millisecond
	_, client := startServer(t, map[string]*lucidscript.System{"gen": sys},
		Config{Workers: 1, QueueDepth: 1, RetryAfter: retryAfter})

	ctx := context.Background()
	src := gen.New(3).ScriptSource()
	// Worker capacity 1 + buffer capacity 1: among three quick submissions
	// at least one must be shed. Poll a few times to absorb pickup timing.
	var overloaded error
	deadline := time.Now().Add(5 * time.Second)
	for overloaded == nil && time.Now().Before(deadline) {
		for i := 0; i < 3; i++ {
			if _, err := client.Submit(ctx, "gen", src, nil); err != nil {
				overloaded = err
				break
			}
		}
	}
	if !errors.Is(overloaded, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", overloaded)
	}
	var apiErr *APIError
	if !errors.As(overloaded, &apiErr) {
		t.Fatalf("no APIError in chain: %v", overloaded)
	}
	if apiErr.Code != CodeQueueFull {
		t.Errorf("code = %q, want %q", apiErr.Code, CodeQueueFull)
	}
	// The body's retry_after_ms carries the configured hint exactly; the
	// Retry-After header rounds it up to whole seconds (2 for 1.5s).
	if apiErr.RetryAfter != retryAfter {
		t.Errorf("RetryAfter = %v, want %v", apiErr.RetryAfter, retryAfter)
	}
}

// TestServeRetryAfterHeader pins the header form of the 429 (integer
// seconds, rounded up) straight off the wire.
func TestServeRetryAfterHeader(t *testing.T) {
	opts := genOptions()
	opts.Faults = faults.New(5, faults.Rule{
		Site: faults.SiteBatchJob, Kind: faults.KindDelay, Prob: 1, Delay: 400 * time.Millisecond,
	})
	sys := genSystem(t, 42, opts)
	srv, err := NewServer(map[string]*lucidscript.System{"gen": sys},
		Config{Workers: 1, QueueDepth: 1, RetryAfter: 1500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	src := gen.New(3).ScriptSource()
	body := `{"dataset":"gen","script":` + jsonString(src) + `}`
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if got := resp.Header.Get("Retry-After"); got != "2" {
				t.Errorf("Retry-After = %q, want %q (1.5s rounded up)", got, "2")
			}
			return
		}
	}
	t.Fatal("never saw a 429")
}

// TestServeCancelMidSearch submits a job held by a delay fault, waits for
// it to be running, cancels it over HTTP, and checks the terminal status is
// canceled with the canceled code.
func TestServeCancelMidSearch(t *testing.T) {
	opts := genOptions()
	opts.Faults = faults.New(5, faults.Rule{
		Site: faults.SiteBatchJob, Kind: faults.KindDelay, Prob: 1, Delay: 300 * time.Millisecond,
	})
	sys := genSystem(t, 42, opts)
	_, client := startServer(t, map[string]*lucidscript.System{"gen": sys}, Config{Workers: 1})

	ctx := context.Background()
	sub, err := client.Submit(ctx, "gen", gen.New(3).ScriptSource(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for {
		st, err := client.Job(ctx, sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			break
		}
		if st.State != StateQueued {
			t.Fatalf("state = %q before cancel", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := client.Cancel(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	st, err := client.Wait(ctx, sub.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled || st.Code != CodeCanceled {
		t.Fatalf("canceled job state/code = %q/%q, want %q/%q", st.State, st.Code, StateCanceled, CodeCanceled)
	}
	if st.Error == "" {
		t.Error("canceled job has empty error")
	}
	// Canceling a finished job is a no-op, not an error.
	again, err := client.Cancel(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if again.State != StateCanceled {
		t.Errorf("re-cancel state = %q", again.State)
	}
}

// TestServeJobTimeout sets a per-job deadline shorter than the injected
// delay and expects a failed job with the deadline code.
func TestServeJobTimeout(t *testing.T) {
	opts := genOptions()
	opts.Faults = faults.New(5, faults.Rule{
		Site: faults.SiteBatchJob, Kind: faults.KindDelay, Prob: 1, Delay: 200 * time.Millisecond,
	})
	sys := genSystem(t, 42, opts)
	_, client := startServer(t, map[string]*lucidscript.System{"gen": sys}, Config{Workers: 1})

	ctx := context.Background()
	sub, err := client.Submit(ctx, "gen", gen.New(3).ScriptSource(), &JobOptions{Timeout: "50ms"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.Wait(ctx, sub.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || st.Code != CodeDeadlineExceeded {
		t.Fatalf("timed-out job state/code = %q/%q, want %q/%q",
			st.State, st.Code, StateFailed, CodeDeadlineExceeded)
	}
}

// TestServeHealthzAndMetrics checks the observability surface: healthz
// reports per-dataset queue snapshots and corpus sizes, and /metrics speaks
// Prometheus text with the queue and HTTP counters present.
func TestServeHealthzAndMetrics(t *testing.T) {
	metrics := lucidscript.NewMetrics()
	opts := genOptions()
	opts.Metrics = metrics
	sys := genSystem(t, 42, opts)
	_, client := startServer(t, map[string]*lucidscript.System{"gen": sys},
		Config{Workers: 2, QueueDepth: 4, Metrics: metrics})

	ctx := context.Background()
	sub, err := client.Submit(ctx, "gen", gen.New(3).ScriptSource(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, sub.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	h, err := client.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("healthz status = %q, want ok", h.Status)
	}
	dh, ok := h.Datasets["gen"]
	if !ok {
		t.Fatalf("healthz datasets = %v, missing gen", h.Datasets)
	}
	if dh.Workers != 2 || dh.QueueCapacity != 4 {
		t.Errorf("dataset health = %+v, want 2 workers, capacity 4", dh)
	}
	if dh.Submitted < 1 || dh.Completed < 1 {
		t.Errorf("dataset health = %+v, want ≥1 submitted and completed", dh)
	}
	if dh.CorpusScripts == 0 {
		t.Error("corpus_scripts = 0")
	}

	text, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"lucidscript_queue_jobs_submitted_total",
		"lucidscript_queue_jobs_completed_total",
		"lucidscript_http_requests_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %s:\n%s", want, text)
		}
	}
}

// TestServeTwoDatasets hosts two independently-curated datasets and checks
// jobs route to the right one.
func TestServeTwoDatasets(t *testing.T) {
	a := genSystem(t, 42, genOptions())
	b := genSystem(t, 1042, genOptions())
	_, client := startServer(t, map[string]*lucidscript.System{"alpha": a, "beta": b}, Config{Workers: 1})

	ctx := context.Background()
	src := gen.New(3).ScriptSource()
	for _, name := range []string{"alpha", "beta"} {
		sub, err := client.Submit(ctx, name, src, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		st, err := client.Wait(ctx, sub.ID, 5*time.Millisecond)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.State != StateDone || st.Dataset != name {
			t.Errorf("%s: state=%q dataset=%q", name, st.State, st.Dataset)
		}
	}
	h, err := client.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Datasets) != 2 {
		t.Errorf("healthz datasets = %v, want alpha and beta", h.Datasets)
	}
}

// TestNewServerValidation pins the constructor's error paths.
func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, Config{}); err == nil {
		t.Error("NewServer(nil) did not error")
	}
	if _, err := NewServer(map[string]*lucidscript.System{"x": nil}, Config{}); err == nil {
		t.Error("NewServer with nil System did not error")
	}
}

// jsonString marshals a Go string as a JSON string literal.
func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
