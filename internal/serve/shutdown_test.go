package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"lucidscript"
	"lucidscript/internal/faults"
	"lucidscript/internal/gen"
)

// delayedSystem builds a System whose every job sleeps first, so tests can
// deterministically observe running and queued jobs.
func delayedSystem(t testing.TB, delay time.Duration) *lucidscript.System {
	t.Helper()
	opts := genOptions()
	opts.Faults = faults.New(5, faults.Rule{
		Site: faults.SiteBatchJob, Kind: faults.KindDelay, Prob: 1, Delay: delay,
	})
	return genSystem(t, 42, opts)
}

// TestServeGracefulShutdown is the drain contract end to end: with one
// worker busy and one job queued, Shutdown lets the in-flight job finish
// with a full result, fails the queued job with the shutting-down code,
// rejects new submissions with 503, flips healthz to draining, and keeps
// finished job statuses readable afterward.
func TestServeGracefulShutdown(t *testing.T) {
	sys := delayedSystem(t, 300*time.Millisecond)
	srv, client := startServer(t, map[string]*lucidscript.System{"gen": sys},
		Config{Workers: 1, QueueDepth: 2})

	ctx := context.Background()
	src := gen.New(3).ScriptSource()

	running, err := client.Submit(ctx, "gen", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick it up so the next submission is queued,
	// not running.
	for {
		st, err := client.Job(ctx, running.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	queued, err := client.Submit(ctx, "gen", src, nil)
	if err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(context.Background()) }()

	// While draining: new submissions bounce with 503 and healthz says so.
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}
	if _, err := client.Submit(ctx, "gen", src, nil); !errors.Is(err, ErrDraining) {
		t.Errorf("submit while draining err = %v, want ErrDraining", err)
	}
	h, err := client.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Errorf("healthz status = %q, want draining", h.Status)
	}

	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The in-flight job finished with a full result; the queued one was
	// drained with the shutting-down code. Both stay readable post-drain.
	st, err := client.Job(ctx, running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Result == nil {
		t.Errorf("in-flight job after drain: state=%q result=%v, want done with result", st.State, st.Result)
	}
	st, err = client.Job(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || st.Code != CodeShuttingDown {
		t.Errorf("queued job after drain: state=%q code=%q, want %q/%q",
			st.State, st.Code, StateFailed, CodeShuttingDown)
	}
}

// TestServeShutdownDeadline expires the drain context while a job is still
// in flight: Shutdown must cancel it, wait for it to land, and return the
// context's error; the job reports the canceled state.
func TestServeShutdownDeadline(t *testing.T) {
	sys := delayedSystem(t, 400*time.Millisecond)
	srv, client := startServer(t, map[string]*lucidscript.System{"gen": sys},
		Config{Workers: 1, QueueDepth: 1})

	ctx := context.Background()
	sub, err := client.Submit(ctx, "gen", gen.New(3).ScriptSource(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for {
		st, err := client.Job(ctx, sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(drainCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown err = %v, want DeadlineExceeded", err)
	}
	// Shutdown already waited for the canceled job to land, so its status
	// is terminal now.
	st, err := client.Job(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled || st.Code != CodeCanceled {
		t.Errorf("in-flight job after forced drain: state=%q code=%q, want %q/%q",
			st.State, st.Code, StateCanceled, CodeCanceled)
	}
}

// TestServeShutdownClosesListener is the full service teardown as lsserved
// performs it: drain the Server, then shut the http.Server; the port must
// actually stop accepting work.
func TestServeShutdownClosesListener(t *testing.T) {
	sys := genSystem(t, 42, genOptions())
	srv, err := NewServer(map[string]*lucidscript.System{"gen": sys}, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	client := NewClient(hs.URL, hs.Client())

	ctx := context.Background()
	sub, err := client.Submit(ctx, "gen", gen.New(3).ScriptSource(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, sub.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	hs.Close()
	if _, err := client.Healthz(ctx); err == nil {
		t.Error("healthz still answers after the listener closed")
	}
}
