package serve

import (
	"context"
	"errors"
	"time"
)

// RetryPolicy drives the client-side backoff loop for retryable API
// errors (ErrorResponse.Retryable — queue-full, draining, interrupted,
// internal). The zero value resolves to 4 attempts starting at 50ms and
// capped at 2s per wait.
type RetryPolicy struct {
	// MaxAttempts bounds total tries (first call included); ≤ 0 → 4.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (doubled each retry); ≤ 0 →
	// 50ms. A server Retry-After hint longer than the computed delay wins.
	BaseDelay time.Duration
	// MaxDelay caps any single wait; ≤ 0 → 2s.
	MaxDelay time.Duration
}

// withDefaults resolves the zero values.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// Do runs fn under the policy: a nil or non-retryable error returns
// immediately; a retryable one (per the server's own verdict — see
// Retryable) is retried with exponential backoff, honoring any
// Retry-After hint when it is longer than the computed delay. The last
// error is returned when attempts run out or ctx ends first.
func (p RetryPolicy) Do(ctx context.Context, fn func() error) error {
	p = p.withDefaults()
	delay := p.BaseDelay
	var err error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if err = fn(); err == nil || !Retryable(err) {
			return err
		}
		if attempt == p.MaxAttempts-1 {
			break
		}
		wait := delay
		if ra := retryAfterOf(err); ra > wait {
			wait = ra
		}
		if wait > p.MaxDelay {
			wait = p.MaxDelay
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
		delay *= 2
	}
	return err
}

// retryAfterOf extracts the server's Retry-After hint from an error chain.
func retryAfterOf(err error) time.Duration {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.RetryAfter
	}
	return 0
}

// SubmitRetry submits with an idempotency key under a retry policy: the
// key makes the retries safe (a duplicate delivery replays the original
// job rather than duplicating work), and the policy absorbs transient
// queue-full / draining rejections. key must be non-empty — retrying a
// keyless submission could execute the job twice.
func (c *Client) SubmitRetry(ctx context.Context, dataset, scriptSrc string, opts *JobOptions, key string, policy RetryPolicy) (*JobStatus, error) {
	if key == "" {
		panic("serve: SubmitRetry requires an idempotency key")
	}
	var st *JobStatus
	err := policy.Do(ctx, func() error {
		var ferr error
		st, ferr = c.SubmitIdempotent(ctx, dataset, scriptSrc, opts, key)
		return ferr
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}
