// Package baselines implements the competing methods of the paper's
// evaluation (Section 6.1.1) as offline behavioural stand-ins:
//
//   - SimGPT models GPT-3.5/GPT-4: a corpus-agnostic stochastic rewriter
//     that samples generic "plausible" preparation steps and occasionally
//     rewrites or removes user steps. It reproduces the published shape —
//     near-zero mean standardness improvement with high variance and
//     occasional large negative outliers — because it does not optimize
//     against the specific corpus distribution.
//   - Sourcery models the commercial code cleaner: syntax-only
//     normalization, never a semantic change (0% improvement).
//   - AutoSuggest and AutoTables model the academic predictors: they only
//     emit table-structural transformations (transpose/pivot/melt), which
//     never apply to feature-engineering corpora (0% improvement).
package baselines

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"lucidscript/internal/frame"
	"lucidscript/internal/script"
)

// Method is a competing script-rewriting method.
type Method interface {
	// Name returns the display name used in result tables.
	Name() string
	// Rewrite returns the method's output script for the given input.
	// The returned script always parses; it need not execute (GPT outputs
	// sometimes do not, mirroring the paper's negative results).
	Rewrite(su *script.Script) (*script.Script, error)
}

// Sourcery is the syntax-only cleaner: it reprints the script in canonical
// form and changes nothing semantic.
type Sourcery struct{}

// Name implements Method.
func (Sourcery) Name() string { return "Sourcery" }

// Rewrite implements Method: parse + canonical print (whitespace, quote and
// blank-line normalization only).
func (Sourcery) Rewrite(su *script.Script) (*script.Script, error) {
	return script.Parse(su.Source())
}

// AutoSuggest predicts a single next step from a fixed set of structural
// operators; none applies to feature-engineering scripts, so the input is
// returned unchanged.
type AutoSuggest struct{}

// Name implements Method.
func (AutoSuggest) Name() string { return "Auto-Suggest" }

// structuralOps is the operator family Auto-Suggest/Auto-Tables predict
// over (table reshaping). LSL corpora contain none of them.
var structuralOps = []string{"transpose", "pivot", "melt", "stack", "unstack", "explode", "wide_to_long"}

// Rewrite implements Method. The predictor scores each structural operator
// against the script and applies the best one only if the script already
// uses reshaping idioms — which feature-engineering corpora never do — so
// the input passes through unchanged.
func (AutoSuggest) Rewrite(su *script.Script) (*script.Script, error) {
	if op := bestStructuralOp(su); op != "" {
		st, err := script.ParseStmt(fmt.Sprintf("df = df.%s()", op))
		if err != nil {
			return nil, err
		}
		out := su.Clone()
		out.Stmts = append(out.Stmts, st)
		return out, nil
	}
	return su.Clone(), nil
}

// AutoTables predicts multi-step structural transformations; like
// Auto-Suggest it has no applicable operator on these corpora.
type AutoTables struct{}

// Name implements Method.
func (AutoTables) Name() string { return "Auto-Tables" }

// Rewrite implements Method.
func (AutoTables) Rewrite(su *script.Script) (*script.Script, error) {
	if op := bestStructuralOp(su); op != "" {
		out := su.Clone()
		for _, o := range []string{op, "reset_index"} {
			st, err := script.ParseStmt(fmt.Sprintf("df = df.%s()", o))
			if err != nil {
				return nil, err
			}
			out.Stmts = append(out.Stmts, st)
		}
		return out, nil
	}
	return su.Clone(), nil
}

// bestStructuralOp returns the structural operator already present in the
// script (the predictors' trigger condition), or "" when none applies.
func bestStructuralOp(su *script.Script) string {
	src := su.Source()
	for _, op := range structuralOps {
		if strings.Contains(src, "."+op+"(") {
			return op
		}
	}
	return ""
}

// GPTVersion selects the SimGPT variant.
type GPTVersion int

// The modelled GPT versions.
const (
	GPT35 GPTVersion = iota
	GPT4
)

// SimGPT is the stochastic LLM stand-in. It sees the script and the input
// dataset's column names (as an LLM prompt would) but not the corpus
// distribution, so its edits are generically plausible rather than
// corpus-standard.
type SimGPT struct {
	Version GPTVersion
	Seed    int64
	// Columns are the input dataset's column names, used to ground the
	// generated steps the way a prompt with a data sample would.
	Columns []string
	// Target is the label column (never dropped: prompts mention the task).
	Target string
	// Examples are corpus scripts included in the prompt — the paper's
	// best-performing prompt "randomly picks 4 scripts from the corpus".
	// The model sometimes copies a step from an example, which is where its
	// occasional genuine standardness improvements come from.
	Examples []*script.Script
}

// NewSimGPT builds a SimGPT grounded on the given dataset.
func NewSimGPT(version GPTVersion, seed int64, data *frame.Frame, target string) *SimGPT {
	var cols []string
	if data != nil {
		cols = data.ColumnNames()
	}
	sort.Strings(cols)
	return &SimGPT{Version: version, Seed: seed, Columns: cols, Target: target}
}

// WithExamples attaches up to four corpus scripts as prompt examples.
func (g *SimGPT) WithExamples(examples []*script.Script) *SimGPT {
	if len(examples) > 4 {
		examples = examples[:4]
	}
	g.Examples = examples
	return g
}

// Name implements Method.
func (g *SimGPT) Name() string {
	if g.Version == GPT4 {
		return "GPT-4"
	}
	return "GPT-3.5"
}

// Rewrite implements Method: apply 1–4 generic edits sampled from the
// global pandas-idiom pool. GPT-4 edits are fewer and more conservative
// than GPT-3.5's; neither consults the corpus.
func (g *SimGPT) Rewrite(su *script.Script) (*script.Script, error) {
	rng := rand.New(rand.NewSource(g.Seed*7919 + int64(len(su.Source()))))
	out := su.Clone()
	maxEdits := 2
	removeProb := 0.12
	passThrough := 0.35
	if g.Version == GPT4 {
		maxEdits = 1
		removeProb = 0.08
		passThrough = 0.5
	}
	if rng.Float64() < passThrough {
		// The model answers with a lightly polished copy of the input.
		return script.Parse(out.Source())
	}
	edits := 1 + rng.Intn(maxEdits)
	for e := 0; e < edits; e++ {
		r := rng.Float64()
		switch {
		case r < 0.45:
			g.appendGenericStep(out, rng)
		case r < 1-removeProb:
			g.rewriteStep(out, rng)
		default:
			g.removeStep(out, rng)
		}
	}
	// Rarely, the model hallucinates a column, yielding a non-executable
	// script (GPT-3.5 more often than GPT-4).
	hallucinate := 0.06
	if g.Version == GPT4 {
		hallucinate = 0.02
	}
	if rng.Float64() < hallucinate {
		st, err := script.ParseStmt(`df["quality_flag"] = df["data_quality"] * 2`)
		if err != nil {
			return nil, err
		}
		out.Stmts = append(out.Stmts, st)
	}
	return script.Parse(out.Source()) // re-parse for canonical form
}

// genericSteps is the global pool of plausible preparation idioms, with %s
// for a column name.
var genericSteps = []string{
	`df = df.dropna()`,
	`df = df.fillna(0)`,
	`df = pd.get_dummies(df)`,
	`df = df.drop_duplicates()`,
	`df["%s"] = df["%s"].fillna(df["%s"].mean())`,
	`df["%s"] = df["%s"].fillna(df["%s"].median())`,
	`df = df[df["%s"].notnull()]`,
	`df["%s"] = df["%s"].astype("float")`,
}

func (g *SimGPT) appendGenericStep(out *script.Script, rng *rand.Rand) {
	// With examples in the prompt, the model prefers copying one of their
	// steps (which tend to be corpus-standard) over inventing a generic one.
	var st script.Stmt
	if len(g.Examples) > 0 && rng.Float64() < 0.6 {
		ex := g.Examples[rng.Intn(len(g.Examples))]
		var pool []script.Stmt
		for _, s := range ex.Stmts {
			src := s.Source()
			if strings.Contains(src, "import ") || strings.Contains(src, "read_csv") {
				continue
			}
			pool = append(pool, s)
		}
		if len(pool) > 0 {
			st = pool[rng.Intn(len(pool))]
		}
	}
	if st == nil {
		tmpl := genericSteps[rng.Intn(len(genericSteps))]
		line := tmpl
		if strings.Contains(tmpl, "%s") {
			if len(g.Columns) == 0 {
				return
			}
			col := g.Columns[rng.Intn(len(g.Columns))]
			line = fmt.Sprintf(strings.ReplaceAll(tmpl, "%s", "%[1]s"), col)
		}
		parsed, err := script.ParseStmt(line)
		if err != nil {
			return
		}
		st = parsed
	}
	// The model does not duplicate a step it can already see.
	for _, s := range out.Stmts {
		if s.Source() == st.Source() {
			return
		}
	}
	// Insert before any target-split lines, else append.
	pos := len(out.Stmts)
	for i, s := range out.Stmts {
		if as, ok := s.(*script.AssignStmt); ok {
			if id, ok := as.Target.(*script.Ident); ok && (id.Name == "y" || id.Name == "X") {
				pos = i
				break
			}
		}
	}
	stmts := append([]script.Stmt(nil), out.Stmts[:pos]...)
	stmts = append(stmts, st)
	stmts = append(stmts, out.Stmts[pos:]...)
	out.Stmts = stmts
}

// rewriteStep swaps an imputation statistic, mimicking LLM paraphrase
// edits. The model "knows" mean imputation is the canonical pandas idiom,
// so median→mean dominates; only GPT-3.5 sometimes paraphrases the common
// form into the rarer one.
func (g *SimGPT) rewriteStep(out *script.Script, rng *rand.Rand) {
	idxs := rng.Perm(len(out.Stmts))
	for _, i := range idxs {
		src := out.Stmts[i].Source()
		var repl string
		switch {
		case strings.Contains(src, "median()"):
			repl = strings.ReplaceAll(src, "median()", "mean()")
		case strings.Contains(src, "mean()") && g.Version == GPT35 && rng.Float64() < 0.3:
			repl = strings.ReplaceAll(src, "mean()", "median()")
		default:
			continue
		}
		st, err := script.ParseStmt(repl)
		if err != nil {
			continue
		}
		out.Stmts[i] = st
		return
	}
}

// removeStep deletes a random non-import, non-read_csv statement.
func (g *SimGPT) removeStep(out *script.Script, rng *rand.Rand) {
	var removable []int
	for i, s := range out.Stmts {
		src := s.Source()
		if strings.Contains(src, "import ") || strings.Contains(src, "read_csv") {
			continue
		}
		removable = append(removable, i)
	}
	if len(removable) == 0 {
		return
	}
	i := removable[rng.Intn(len(removable))]
	out.Stmts = append(out.Stmts[:i], out.Stmts[i+1:]...)
}
