package baselines

import (
	"strings"
	"testing"

	"lucidscript/internal/corpusgen"
	"lucidscript/internal/dag"
	"lucidscript/internal/entropy"
	"lucidscript/internal/script"
)

const sample = `import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.median())
df = df[df["Age"].between(18, 25)]
df = pd.get_dummies(df)
y = df["Outcome"]
`

func TestSourceryNormalizesOnly(t *testing.T) {
	messy := "import pandas as pd\ndf  =  pd.read_csv( 'diabetes.csv' )\n\n\ndf=df.dropna()\n"
	su := script.MustParse(messy)
	out, err := Sourcery{}.Rewrite(su)
	if err != nil {
		t.Fatal(err)
	}
	if out.Source() != su.Source() {
		t.Fatal("canonical forms must match: Sourcery is syntax-only")
	}
	// Semantics identical → identical DAG → identical RE vs any corpus.
	if dag.Build(out).Script.Source() != dag.Build(su).Script.Source() {
		t.Fatal("Sourcery changed semantics")
	}
}

func TestAutoSuggestNoOpOnFeatureEngineering(t *testing.T) {
	su := script.MustParse(sample)
	out, err := AutoSuggest{}.Rewrite(su)
	if err != nil {
		t.Fatal(err)
	}
	if out.Source() != su.Source() {
		t.Fatalf("Auto-Suggest should pass through:\n%s", out.Source())
	}
}

func TestAutoTablesNoOpOnFeatureEngineering(t *testing.T) {
	su := script.MustParse(sample)
	out, err := AutoTables{}.Rewrite(su)
	if err != nil {
		t.Fatal(err)
	}
	if out.Source() != su.Source() {
		t.Fatal("Auto-Tables should pass through")
	}
}

func TestAutoSuggestFiresOnStructuralScript(t *testing.T) {
	su := script.MustParse("import pandas as pd\ndf = pd.read_csv(\"x.csv\")\ndf = df.pivot()\n")
	out, err := AutoSuggest{}.Rewrite(su)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumStmts() != su.NumStmts()+1 {
		t.Fatal("structural trigger should add a step")
	}
	out2, _ := AutoTables{}.Rewrite(su)
	if out2.NumStmts() != su.NumStmts()+2 {
		t.Fatal("Auto-Tables should add two steps")
	}
}

func TestSimGPTDeterministicPerSeed(t *testing.T) {
	su := script.MustParse(sample)
	g1 := &SimGPT{Version: GPT4, Seed: 3, Columns: []string{"Age", "Glucose"}}
	g2 := &SimGPT{Version: GPT4, Seed: 3, Columns: []string{"Age", "Glucose"}}
	a, err := g1.Rewrite(su)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g2.Rewrite(su)
	if err != nil {
		t.Fatal(err)
	}
	if a.Source() != b.Source() {
		t.Fatal("SimGPT not deterministic for fixed seed")
	}
}

func TestSimGPTChangesScripts(t *testing.T) {
	su := script.MustParse(sample)
	changed := 0
	for seed := int64(1); seed <= 20; seed++ {
		g := &SimGPT{Version: GPT35, Seed: seed, Columns: []string{"Age", "Glucose", "BMI"}}
		out, err := g.Rewrite(su)
		if err != nil {
			t.Fatal(err)
		}
		if out.Source() != su.Source() {
			changed++
		}
		// Output always parses (round-trip through Parse already proves it).
		if _, err := script.Parse(out.Source()); err != nil {
			t.Fatalf("unparseable output: %v", err)
		}
	}
	if changed < 10 {
		t.Fatalf("SimGPT changed only %d/20 scripts", changed)
	}
}

func TestSimGPTKeepsReadCSV(t *testing.T) {
	su := script.MustParse(sample)
	for seed := int64(1); seed <= 30; seed++ {
		g := &SimGPT{Version: GPT35, Seed: seed, Columns: []string{"Age"}}
		out, err := g.Rewrite(su)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out.Source(), "read_csv") {
			t.Fatalf("seed %d removed read_csv:\n%s", seed, out.Source())
		}
	}
}

func TestSimGPTNamesAndVersions(t *testing.T) {
	if (&SimGPT{Version: GPT4}).Name() != "GPT-4" || (&SimGPT{Version: GPT35}).Name() != "GPT-3.5" {
		t.Fatal("names")
	}
	if (Sourcery{}).Name() != "Sourcery" || (AutoSuggest{}).Name() != "Auto-Suggest" || (AutoTables{}).Name() != "Auto-Tables" {
		t.Fatal("baseline names")
	}
}

func TestNewSimGPTFromFrame(t *testing.T) {
	c, _ := corpusgen.Get("Medical")
	gen, err := c.Generate(corpusgen.GenOptions{Seed: 3, RowScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	g := NewSimGPT(GPT4, 1, gen.Sources[c.File], c.Target)
	if len(g.Columns) != 9 {
		t.Fatalf("columns = %v", g.Columns)
	}
}

// The headline behavioural property: across a corpus, SimGPT's mean RE
// improvement is near zero while LS-style corpus-aware edits would be
// positive. Here we check the baseline half: mean within ±15% and at least
// one negative outcome.
func TestSimGPTImprovementShapeNearZero(t *testing.T) {
	c, _ := corpusgen.Get("Medical")
	gen, err := c.Generate(corpusgen.GenOptions{Seed: 11, RowScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var graphs []*dag.Graph
	for _, s := range gen.ScriptsOnly() {
		graphs = append(graphs, dag.Build(s))
	}
	vocab := entropy.BuildVocab(graphs)
	g := NewSimGPT(GPT35, 5, gen.Sources[c.File], c.Target).WithExamples(gen.ScriptsOnly())
	sum := 0.0
	neg := false
	n := 0
	for i, gs := range gen.Scripts {
		if i >= 20 {
			break
		}
		out, err := g.Rewrite(gs.Script)
		if err != nil {
			t.Fatal(err)
		}
		before := vocab.RE(dag.Build(gs.Script))
		after := vocab.RE(dag.Build(out))
		imp := entropy.Improvement(before, after)
		sum += imp
		if imp < 0 {
			neg = true
		}
		n++
	}
	mean := sum / float64(n)
	if mean > 20 || mean < -20 {
		t.Fatalf("SimGPT mean improvement = %v, want near zero", mean)
	}
	if !neg {
		t.Fatal("expected at least one negative improvement (GPT unreliability)")
	}
}
