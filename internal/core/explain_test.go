package core

import (
	"math"
	"strings"
	"testing"

	"lucidscript/internal/dag"
	"lucidscript/internal/frame"
	"lucidscript/internal/intent"
	"lucidscript/internal/script"
)

func TestExplainResult(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeqLength = 8
	cfg.Constraint.Tau = 0.5
	st := newStandardizer(t, cfg)
	res, err := st.Standardize(script.MustParse(userScript))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Applied) == 0 {
		t.Skip("no transformations applied in this configuration")
	}
	exps := st.ExplainResult(res)
	if len(exps) != len(res.Applied) {
		t.Fatalf("explanations = %d, applied = %d", len(exps), len(res.Applied))
	}
	// The deltas must telescope to the overall RE change.
	total := 0.0
	for _, e := range exps {
		total += e.REDelta
		if e.CorpusFrequency < 0 || e.CorpusFrequency > 1 {
			t.Fatalf("frequency out of range: %+v", e)
		}
		if e.Rationale == "" {
			t.Fatalf("empty rationale: %+v", e)
		}
		if !strings.Contains(e.String(), "corpus frequency") {
			t.Fatalf("String() = %q", e.String())
		}
	}
	if math.Abs(total-(res.REAfter-res.REBefore)) > 1e-9 {
		t.Fatalf("deltas sum to %v, want %v", total, res.REAfter-res.REBefore)
	}
}

func TestExplainEmptyResult(t *testing.T) {
	st := newStandardizer(t, DefaultConfig())
	if exps := st.ExplainResult(&Result{}); exps != nil {
		t.Fatalf("explanations for empty result: %v", exps)
	}
}

func TestRationaleShapes(t *testing.T) {
	st := newStandardizer(t, DefaultConfig())
	cases := map[string]string{
		"df = df.fillna(df.mean())":         "imputation",
		"df = pd.get_dummies(df)":           "encoding",
		`y = df["Outcome"]`:                 "target split",
		`df = df[df["SkinThickness"] < 80]`: "filter",
		"import numpy as np":                "import",
		`df = df.drop("Outcome", axis=1)`:   "pruning",
	}
	for src, want := range cases {
		stmt := mustStmt(t, src)
		tr := Transformation{Type: TransformAdd, Atom: newLine(stmt)}
		got := st.rationale(tr)
		if !strings.Contains(got, want) {
			t.Errorf("rationale(%q) = %q, want mention of %q", src, got, want)
		}
	}
	// Delete of an unseen atom gets the out-of-the-ordinary rationale.
	del := Transformation{Type: TransformDelete, Atom: newLine(mustStmt(t, `df["leak"] = df["Outcome"] * 3`))}
	if got := st.rationale(del); !strings.Contains(got, "out-of-the-ordinary") {
		t.Fatalf("delete rationale = %q", got)
	}
}

func TestParetoFrontier(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeqLength = 6
	st := newStandardizer(t, cfg)
	taus := []float64{0.2, 0.5, 0.9, 1.0}
	pts, err := st.ParetoFrontier(script.MustParse(userScript), taus)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(taus) {
		t.Fatalf("points = %d", len(pts))
	}
	// Jaccard measure: improvement non-increasing as τ tightens.
	for i := 1; i < len(pts); i++ {
		if pts[i].ImprovementPct > pts[i-1].ImprovementPct+1e-9 {
			t.Fatalf("frontier not monotone: %+v", pts)
		}
	}
	for i, p := range pts {
		if p.Tau != taus[i] {
			t.Fatalf("tau mismatch: %+v", pts)
		}
	}
}

func TestStandardizeGridSeqPrefixExactness(t *testing.T) {
	// A grid run at seqs {2, 6} must give for seq=2 exactly what a plain
	// seq=2 run gives (the beam trajectory is budget-oblivious).
	cfg := DefaultConfig()
	cfg.SeqLength = 6
	cfg.Constraint.Tau = 0.5
	st := newStandardizer(t, cfg)
	su := script.MustParse(userScript)
	grid, err := st.StandardizeGrid(su, []int{2, 6}, []intent.Constraint{cfg.Constraint})
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.SeqLength = 2
	st2 := newStandardizer(t, cfg2)
	solo, err := st2.Standardize(su)
	if err != nil {
		t.Fatal(err)
	}
	if grid[0][0].Output.Source() != solo.Output.Source() {
		t.Fatalf("grid seq=2 differs from solo seq=2:\n%s\nvs\n%s",
			grid[0][0].Output.Source(), solo.Output.Source())
	}
	if grid[1][0].ImprovementPct < grid[0][0].ImprovementPct-1e-9 {
		t.Fatal("longer budget must not hurt")
	}
}

func TestNewWeightedChangesDistribution(t *testing.T) {
	sources := mapSources(t)
	rare := script.MustParse("import pandas as pd\ndf = pd.read_csv(\"diabetes.csv\")\ndf = df.dropna()\n")
	common := script.MustParse("import pandas as pd\ndf = pd.read_csv(\"diabetes.csv\")\ndf = df.fillna(df.mean())\n")
	corpus := []*script.Script{rare, common}
	plain := NewWeighted(corpus, nil, sources, DefaultConfig())
	weighted := NewWeighted(corpus, []int{10, 1}, sources, DefaultConfig())
	// Under the weighted corpus, the "rare" script's steps dominate, so its
	// RE must be lower there than under the unweighted corpus.
	g := script.MustParse(rare.Source())
	if weighted.Corpus.Vocab.RE(buildG(g)) >= plain.Corpus.Vocab.RE(buildG(g)) {
		t.Fatal("weighting should pull the distribution toward heavy scripts")
	}
	if weighted.Corpus.Vocab.NumScripts != 11 {
		t.Fatalf("weighted NumScripts = %d", weighted.Corpus.Vocab.NumScripts)
	}
}

// Helpers bridging test shorthand to the dag package.
func newLine(st script.Stmt) dag.LineInfo { return dag.NewLineInfo(st) }

func buildG(s *script.Script) *dag.Graph { return dag.Build(s) }

func mapSources(t *testing.T) map[string]*frame.Frame {
	t.Helper()
	return map[string]*frame.Frame{"diabetes.csv": diabetesFrame(t, 80)}
}
