package core

import (
	"strings"
	"testing"

	"lucidscript/internal/leakage"
	"lucidscript/internal/script"
)

func TestDetectAnomaliesFlagsRareSteps(t *testing.T) {
	st := newStandardizer(t, DefaultConfig())
	su := script.MustParse(userScript) // median fill + age filter are rare
	anomalies := st.DetectAnomalies(su, 0.2)
	if len(anomalies) < 2 {
		t.Fatalf("anomalies = %v", anomalies)
	}
	sources := map[string]bool{}
	for _, a := range anomalies {
		sources[a.Source] = true
		if a.CorpusFrequency >= 0.2 {
			t.Fatalf("frequent step flagged: %+v", a)
		}
	}
	if !sources["df = df.fillna(df.median())"] {
		t.Fatalf("median fill not flagged: %v", anomalies)
	}
	// Common steps are not flagged.
	if sources["df = pd.get_dummies(df)"] {
		t.Fatal("common encode step flagged")
	}
}

func TestDetectAnomaliesSortedByGain(t *testing.T) {
	st := newStandardizer(t, DefaultConfig())
	anomalies := st.DetectAnomalies(script.MustParse(userScript), 0.5)
	for i := 1; i < len(anomalies); i++ {
		if anomalies[i].REGain > anomalies[i-1].REGain+1e-12 {
			t.Fatalf("not sorted by gain: %v", anomalies)
		}
	}
}

func TestDetectAnomaliesOnLeakage(t *testing.T) {
	st := newStandardizer(t, DefaultConfig())
	inj, err := leakage.Inject(script.MustParse(userScript), "Outcome", leakage.TargetCopy, 1)
	if err != nil {
		t.Fatal(err)
	}
	anomalies := st.DetectAnomalies(inj.Script, 0.1)
	found := false
	for _, a := range anomalies {
		if strings.Contains(a.Source, "Outcome_copy") {
			found = true
		}
	}
	if !found {
		t.Fatalf("injected leakage not flagged: %v", anomalies)
	}
}

func TestDetectAnomaliesNeverFlagsLoad(t *testing.T) {
	st := newStandardizer(t, DefaultConfig())
	for _, a := range st.DetectAnomalies(script.MustParse(userScript), 1.0) {
		if strings.Contains(a.Source, "read_csv") || strings.HasPrefix(a.Source, "import") {
			t.Fatalf("load/import flagged: %+v", a)
		}
	}
}

func TestAnomalyReportRendering(t *testing.T) {
	st := newStandardizer(t, DefaultConfig())
	report := st.AnomalyReport(script.MustParse(userScript), 0.2)
	if !strings.Contains(report, "out-of-the-ordinary") || !strings.Contains(report, "line ") {
		t.Fatalf("report = %q", report)
	}
	clean := script.MustParse(`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.mean())
df = pd.get_dummies(df)
`)
	if got := st.AnomalyReport(clean, 0.2); !strings.Contains(got, "no out-of-the-ordinary") {
		t.Fatalf("clean report = %q", got)
	}
}
