package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"lucidscript/internal/dag"
	"lucidscript/internal/faults"
	"lucidscript/internal/frame"
	"lucidscript/internal/intent"
	"lucidscript/internal/script"
)

// addedStatements returns the statements the baseline standardization added
// to the user script — the exact texts a fault rule must key on to
// quarantine those candidates.
func addedStatements(input, output *script.Script) []string {
	in := map[string]bool{}
	for _, st := range input.Stmts {
		in[st.Source()] = true
	}
	var added []string
	for _, st := range output.Stmts {
		if !in[st.Source()] {
			added = append(added, st.Source())
		}
	}
	return added
}

// TestQuarantinedCandidateNeverAbortsSearch is the tentpole's acceptance
// check: arm a Prob-1 fault on every statement the fault-free search would
// add, for each fault kind, and assert the search still completes, reports
// the quarantines in Health, and produces exactly the candidate-absent
// output. KindError is the candidate-absent reference: an injected plain
// error is an ordinary prune (no quarantine), so the panic- and
// exhaust-injected runs must match its output byte for byte while tallying
// their quarantines.
func TestQuarantinedCandidateNeverAbortsSearch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeqLength = 8
	cfg.Constraint.Tau = 0.5 // lenient: the baseline accepts corpus-common steps
	base := newStandardizer(t, cfg)
	input := script.MustParse(userScript)

	baseline, err := base.Standardize(input)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Health.Degraded() {
		t.Fatalf("fault-free run reports degraded health: %+v", baseline.Health)
	}
	added := addedStatements(input, baseline.Output)
	if len(added) == 0 {
		t.Fatalf("baseline added no statements; nothing to quarantine:\n%s", baseline.Output.Source())
	}

	run := func(kind faults.Kind) *Result {
		t.Helper()
		var rules []faults.Rule
		for _, stmt := range added {
			rules = append(rules,
				faults.Rule{Site: faults.SiteCacheStep, Key: stmt, Kind: kind, Prob: 1},
				faults.Rule{Site: faults.SiteInterpExec, Key: stmt, Kind: kind, Prob: 1})
		}
		fcfg := cfg
		fcfg.Faults = faults.New(21, rules...)
		res, err := FromCorpus(base.Corpus, fcfg).Standardize(input)
		if err != nil {
			t.Fatalf("kind %v: search aborted: %v", kind, err)
		}
		for _, stmt := range added {
			if strings.Contains(res.Output.Source(), stmt) {
				t.Fatalf("kind %v: quarantined statement %q survived into the output:\n%s",
					kind, stmt, res.Output.Source())
			}
		}
		return res
	}

	panicked := run(faults.KindPanic)
	exhausted := run(faults.KindExhaust)
	errored := run(faults.KindError)

	// All three prune the same candidates, so the outputs must be
	// byte-identical: quarantining is prune-equivalent for the search result.
	if p, e := panicked.Output.Source(), errored.Output.Source(); p != e {
		t.Errorf("panic-quarantined output diverges from candidate-absent output:\n%s\nvs\n%s", p, e)
	}
	if x, e := exhausted.Output.Source(), errored.Output.Source(); x != e {
		t.Errorf("exhaust-quarantined output diverges from candidate-absent output:\n%s\nvs\n%s", x, e)
	}
	if panicked.REAfter != errored.REAfter || exhausted.REAfter != errored.REAfter {
		t.Errorf("quarantine changed scores: panic=%v exhaust=%v error=%v",
			panicked.REAfter, exhausted.REAfter, errored.REAfter)
	}

	// Only the quarantine kinds tally in Health; an injected plain error is
	// an ordinary prune.
	if panicked.Health.Check.Panicked == 0 {
		t.Errorf("panic-injected run tallied no panics: %+v", panicked.Health)
	}
	if panicked.Health.Check.Exhausted != 0 {
		t.Errorf("panic-injected run tallied exhaustions: %+v", panicked.Health)
	}
	if exhausted.Health.Check.Exhausted == 0 {
		t.Errorf("exhaust-injected run tallied no exhaustions: %+v", exhausted.Health)
	}
	if exhausted.Health.Check.Panicked != 0 {
		t.Errorf("exhaust-injected run tallied panics: %+v", exhausted.Health)
	}
	if errored.Health.Total() != 0 {
		t.Errorf("error-injected run tallied quarantines: %+v", errored.Health)
	}
	for _, res := range []*Result{panicked, exhausted} {
		if got, want := res.Health.Check.Quarantined, res.Health.Check.Panicked+res.Health.Check.Exhausted; got != want {
			t.Errorf("Quarantined=%d != Panicked+Exhausted=%d", got, want)
		}
	}
}

// TestCurationSkipsFailingScripts covers graceful curation degradation: a
// corpus script whose lemmatization fails (error or panic) is dropped with
// a diagnostic, its weight dropped alongside it, and the surviving corpus
// is exactly what curating without the script would have produced.
func TestCurationSkipsFailingScripts(t *testing.T) {
	corpus := medicalCorpus(t)
	sources := map[string]*frame.Frame{"diabetes.csv": diabetesFrame(t, 120)}
	weights := []int{1, 2, 3, 4, 5, 6}
	const skip = 2

	// The reference: the same corpus with script 2 (and its weight) removed.
	manualCorpus := append(append([]*script.Script{}, corpus[:skip]...), corpus[skip+1:]...)
	manualWeights := append(append([]int{}, weights[:skip]...), weights[skip+1:]...)
	manual := CurateWeighted(manualCorpus, manualWeights, sources)

	g := dag.Build(script.MustParse(userScript))
	for _, kind := range []faults.Kind{faults.KindError, faults.KindPanic} {
		inj := faults.New(5, faults.Rule{Site: faults.SiteCurateScript, Key: "2", Kind: kind, Prob: 1})
		cc := CurateWeightedFaults(corpus, weights, sources, inj)

		if len(cc.Diagnostics) != 1 {
			t.Fatalf("kind %v: %d diagnostics, want 1: %+v", kind, len(cc.Diagnostics), cc.Diagnostics)
		}
		d := cc.Diagnostics[0]
		if d.Index != skip {
			t.Errorf("kind %v: skipped index %d, want %d", kind, d.Index, skip)
		}
		if !errors.Is(d.Err, ErrCurateSkipped) {
			t.Errorf("kind %v: diagnostic does not wrap ErrCurateSkipped: %v", kind, d.Err)
		}
		if !errors.Is(d.Err, faults.ErrInjected) {
			t.Errorf("kind %v: diagnostic does not wrap faults.ErrInjected: %v", kind, d.Err)
		}
		if got, want := cc.Vocab.NumScripts, manual.Vocab.NumScripts; got != want {
			t.Errorf("kind %v: surviving corpus has %d scripts, want %d", kind, got, want)
		}
		// Weight realignment: the corpus distribution (and hence RE) must be
		// exactly the distribution of the manually filtered corpus.
		if got, want := cc.Vocab.RELines(g.Lines), manual.Vocab.RELines(g.Lines); got != want {
			t.Errorf("kind %v: RE over skip-curated corpus %v != manually filtered corpus %v", kind, got, want)
		}
	}
}

// TestCurationSkipSurfacesInHealth runs a full standardization over a
// corpus curated with one injected skip and asserts the Result reports it.
func TestCurationSkipSurfacesInHealth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeqLength = 4
	cfg.Faults = faults.New(5, faults.Rule{Site: faults.SiteCurateScript, Key: "1", Kind: faults.KindPanic, Prob: 1})
	st := newStandardizer(t, cfg)
	if len(st.Corpus.Diagnostics) != 1 {
		t.Fatalf("%d diagnostics, want 1", len(st.Corpus.Diagnostics))
	}
	res, err := st.Standardize(script.MustParse(userScript))
	if err != nil {
		t.Fatal(err)
	}
	if res.Health.CurateSkipped != 1 {
		t.Errorf("Health.CurateSkipped = %d, want 1", res.Health.CurateSkipped)
	}
	if !res.Health.Degraded() {
		t.Error("Health.Degraded() = false with a curation skip")
	}
}

// TestVerifyExhaustionFallsBackToSampledTuples drives verifyWith directly
// with a candidate whose full-data verification run exhausts its budget
// (injected at the cache site, so the uncached sampled-tuple re-run is
// unaffected) and asserts the degraded path produces a verdict: the
// candidate is accepted, the Result is flagged, and the injected failure
// never poisons the shared trie.
func TestVerifyExhaustionFallsBackToSampledTuples(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Constraint = intent.Constraint{Measure: intent.MeasureJaccard, Tau: 0.1}
	st := newStandardizer(t, cfg)

	gOrig := dag.Build(script.MustParse(userScript))
	gCand := dag.Build(script.MustParse(`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.median())
df = df[df["Age"].between(18, 25)]
df = df[df["SkinThickness"] < 80]
df = pd.get_dummies(df)
`))
	// Key the fault on the exact texts the candidate adds over the original,
	// as the interpreter will see them.
	var rules []faults.Rule
	for _, stmt := range addedStatements(dag.ToScript(gOrig.Lines), dag.ToScript(gCand.Lines)) {
		rules = append(rules, faults.Rule{Site: faults.SiteCacheStep, Key: stmt, Kind: faults.KindExhaust, Prob: 1})
	}
	if len(rules) == 0 {
		t.Fatal("candidate adds no statements over the original")
	}

	for _, tc := range []struct {
		name string
		kind faults.Kind
	}{{"exhaust", faults.KindExhaust}, {"panic", faults.KindPanic}} {
		t.Run(tc.name, func(t *testing.T) {
			armed := make([]faults.Rule, len(rules))
			for i, r := range rules {
				r.Kind = tc.kind
				armed[i] = r
			}
			st.Config.Faults = faults.New(9, armed...)
			sess := st.newSession()
			if sess == nil {
				t.Fatal("exec cache off; the test needs the cache site armed")
			}

			ctx := context.Background()
			origRun, err := st.runScript(ctx, sess, dag.ToScript(gOrig.Lines))
			if err != nil {
				t.Fatalf("original script failed: %v", err)
			}
			orig := &candidate{lines: gOrig.Lines, re: st.Corpus.Vocab.RELines(gOrig.Lines), checked: true}
			cand := &candidate{lines: gCand.Lines, re: orig.re - 1} // sorts ahead of orig

			res := &Result{}
			best, checked := st.verifyWith(ctx, newObsState(ctx, st.Config), sess,
				[]*candidate{cand}, orig, st.Config.Constraint, newVerifyCache(origRun.Main), res)
			if checked != 1 {
				t.Fatalf("checked %d candidates, want 1", checked)
			}

			switch tc.kind {
			case faults.KindExhaust:
				// Budget trip: the sampled-tuple fallback produces a verdict
				// and the lenient Jaccard constraint accepts the candidate.
				if best != cand {
					t.Errorf("degraded verification rejected the candidate (best = orig)")
				}
				if !res.Health.VerifyDegraded {
					t.Error("Health.VerifyDegraded not flagged")
				}
				if res.Health.Verify.Exhausted != 1 || res.Health.Verify.Panicked != 0 {
					t.Errorf("Verify health = %+v, want 1 exhaustion", res.Health.Verify)
				}
			case faults.KindPanic:
				// A contained panic earns no second chance: fall back to the
				// original script, no degraded verification.
				if best != orig {
					t.Errorf("panicking candidate won verification")
				}
				if res.Health.VerifyDegraded {
					t.Error("Health.VerifyDegraded flagged for a panic quarantine")
				}
				if res.Health.Verify.Panicked != 1 || res.Health.Verify.Exhausted != 0 {
					t.Errorf("Verify health = %+v, want 1 panic", res.Health.Verify)
				}
			}
			if err := sess.CheckInvariants(); err != nil {
				t.Errorf("injected %s fault poisoned the trie: %v", tc.name, err)
			}
		})
	}
}
