package core

import (
	"context"
	"errors"
	"fmt"
)

// The cancellation sentinels surfaced through the public facade. Both wrap
// the underlying context error as well, so callers can match either
// errors.Is(err, ErrCanceled) or errors.Is(err, context.Canceled).
var (
	// ErrCanceled reports that a standardization stopped because its
	// context was canceled mid-search.
	ErrCanceled = errors.New("lucidscript: standardization canceled")
	// ErrDeadlineExceeded reports that a standardization stopped because
	// its context deadline (Options.Timeout) expired mid-search.
	ErrDeadlineExceeded = errors.New("lucidscript: standardization deadline exceeded")
)

// ctxCause maps a terminated context to the package's sentinel errors,
// wrapping both the sentinel and the context error so errors.Is matches
// either. Returns nil while the context is live.
func ctxCause(ctx context.Context) error {
	err := ctx.Err()
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, err)
	default:
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
}
