package core

import (
	"context"
	"runtime/pprof"
	"time"

	"lucidscript/internal/interp"
	"lucidscript/internal/obs"
)

// obsState carries one standardization's observability plumbing: the tracer
// and metrics registry from the Config, the monotonic start time every
// event's Elapsed is stamped against, and pre-labeled pprof contexts so CPU
// profiles attribute samples to the curate/extend/check/verify phases.
//
// Everything degrades to near-zero cost when unused: emit returns on a nil
// tracer before building anything, and the pprof label contexts are plain
// derived contexts whose labels only matter while a profile is running.
type obsState struct {
	tr      obs.Tracer
	metrics *obs.Metrics
	start   time.Time

	// Phase-labeled contexts (cancellation chains through all of them).
	ctxExtend, ctxCheck, ctxVerify context.Context

	// Cache traffic already reported via EvCacheReport (main loop only).
	lastHits, lastMisses int64
}

func newObsState(ctx context.Context, cfg Config) *obsState {
	return &obsState{
		tr:        cfg.Tracer,
		metrics:   cfg.Metrics,
		start:     time.Now(),
		ctxExtend: pprof.WithLabels(ctx, pprof.Labels("ls_phase", obs.PhaseExtend)),
		ctxCheck:  pprof.WithLabels(ctx, pprof.Labels("ls_phase", obs.PhaseCheck)),
		ctxVerify: pprof.WithLabels(ctx, pprof.Labels("ls_phase", obs.PhaseVerify)),
	}
}

// enabled reports whether any tracer is installed; hot paths gate event
// construction on it.
func (o *obsState) enabled() bool { return o.tr != nil }

// emit stamps the event with the monotonic elapsed time and forwards it.
// Safe to call from parallel beam-extension workers (tracers are required
// to be concurrency-safe).
func (o *obsState) emit(e obs.Event) {
	if o.tr == nil {
		return
	}
	e.Elapsed = time.Since(o.start)
	o.tr.Emit(e)
}

// emitCacheDelta reports execution-prefix cache traffic accumulated since
// the previous report as one aggregated event (per-statement hit/miss
// events would dominate the stream). Main-loop only — not goroutine-safe.
func (o *obsState) emitCacheDelta(sess interp.Session, step int) {
	if o.tr == nil || sess == nil {
		return
	}
	s := sess.Stats()
	dh, dm := s.Hits-o.lastHits, s.Misses-o.lastMisses
	o.lastHits, o.lastMisses = s.Hits, s.Misses
	if dh == 0 && dm == 0 {
		return
	}
	o.emit(obs.Event{Kind: obs.EvCacheReport, Phase: obs.PhaseCheck, Step: step, N: int(dh), N2: int(dm)})
}

// gridStats accumulates one StandardizeGrid call's counts for the metrics
// registry.
type gridStats struct {
	execChecks     int    // interpreter runs (input + early checks + verify)
	admitted       int    // candidates admitted into the archive
	prunedChecks   int    // candidates rejected by the early execution check
	beamsPruned    int    // admitted candidates dropped by top-K selection
	verified       int    // candidates examined by VerifyAllConstraints
	canceled       bool   // the search stopped on a context cancellation
	health         Health // quarantines and curation skips, call-wide
	verifyDegraded int    // grid cells that fell back to sampled-tuple mode
}

// finalize folds one completed (or canceled) standardization into the
// metrics registry.
func (o *obsState) finalize(res *Result, cacheStats interp.CacheStats, gs gridStats) {
	m := o.metrics
	if m == nil {
		return
	}
	m.Counter(obs.MSearches).Inc()
	if gs.canceled {
		m.Counter(obs.MSearchesCanceled).Inc()
	}
	m.Counter(obs.MExecChecks).Add(int64(gs.execChecks))
	m.Counter(obs.MCandidatesAdmitted).Add(int64(gs.admitted))
	m.Counter(obs.MCandidatesPruned).Add(int64(gs.prunedChecks))
	m.Counter(obs.MBeamsPruned).Add(int64(gs.beamsPruned))
	m.Counter(obs.MVerifications).Add(int64(gs.verified))
	m.Counter(obs.MCandidatesQuarantined).Add(int64(gs.health.Total()))
	m.Counter(obs.MStatementPanics).Add(int64(gs.health.Check.Panicked + gs.health.Verify.Panicked))
	m.Counter(obs.MBudgetExhaustions).Add(int64(gs.health.Check.Exhausted + gs.health.Verify.Exhausted))
	m.Counter(obs.MVerifyDegraded).Add(int64(gs.verifyDegraded))
	m.Counter(obs.MCurateSkipped).Add(int64(gs.health.CurateSkipped))
	m.Counter(obs.MStatementsExecuted).Add(cacheStats.StmtsExecuted)
	m.Counter(obs.MStatementsSkipped).Add(cacheStats.StmtsSkipped)
	m.Counter(obs.MCacheHits).Add(cacheStats.Hits)
	m.Counter(obs.MCacheMisses).Add(cacheStats.Misses)
	m.Counter(obs.MCacheEvictions).Add(cacheStats.Evictions)
	t := res.Timings
	m.Counter(obs.MPhaseCurateNanos).AddDuration(t.CurateSearchSpace)
	m.Counter(obs.MPhaseGetStepsNanos).AddDuration(t.GetSteps)
	m.Counter(obs.MPhaseTopKNanos).AddDuration(t.GetTopKBeams)
	m.Counter(obs.MPhaseCheckNanos).AddDuration(t.CheckIfExecutes)
	m.Counter(obs.MPhaseVerifyNanos).AddDuration(t.VerifyConstraints)
	m.Counter(obs.MPhaseTotalNanos).AddDuration(t.Total)
}
