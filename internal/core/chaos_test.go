package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"lucidscript/internal/faults"
	"lucidscript/internal/interp"
)

// TestChaosBatch32 is the batch-engine chaos run: 32 jobs share one curated
// corpus and one execution-prefix trie while a seeded injector faults a
// subset of them — job-level panics and errors at the batch site, plus
// statement-level panics and budget exhaustions at the cache site keyed on
// two jobs' distinguishing filter statements. The contract under chaos:
//
//   - every fault is attributable: a faulted job either returns an error
//     whose chain reaches the injected sentinel, or completes with a
//     non-zero Health;
//   - every unaffected job's result is byte-identical to the same job in a
//     fault-free run over the same corpus;
//   - the shared trie's invariants hold afterwards (in particular, no
//     injected failure was memoized).
//
// Run it with -race: fault decisions are deterministic by construction, so
// the assertions hold under arbitrary goroutine interleaving.
func TestChaosBatch32(t *testing.T) {
	const nJobs = 32
	cfg := DefaultConfig()
	stClean := newStandardizer(t, cfg)
	jobs := batchJobs(t, nJobs)

	cleanRes, cleanErrs := NewEngine(stClean, 8, 0).standardizeBatchSession(
		context.Background(), stClean.newSessionScaled(nJobs), jobs)
	for i, err := range cleanErrs {
		if err != nil {
			t.Fatalf("fault-free job %d: %v", i, err)
		}
	}

	// Jobs 2 and 15 are faulted through their unique age-filter statement
	// (each batchJobs script differs only there), so the statement-level
	// faults hit exactly those jobs; every other statement key is shared by
	// all 32 jobs and must stay clean for the batch to have survivors.
	fcfg := cfg
	fcfg.Faults = faults.New(1,
		faults.Rule{Site: faults.SiteBatchJob, Key: "5", Kind: faults.KindPanic, Prob: 1},
		faults.Rule{Site: faults.SiteBatchJob, Key: "24", Kind: faults.KindError, Prob: 1},
		faults.Rule{Site: faults.SiteCacheStep, Key: fmt.Sprintf(ageFilterFmt, 25+2), Kind: faults.KindExhaust, Prob: 1},
		faults.Rule{Site: faults.SiteCacheStep, Key: fmt.Sprintf(ageFilterFmt, 25+15), Kind: faults.KindPanic, Prob: 1},
	)
	stFaulted := FromCorpus(stClean.Corpus, fcfg)
	shared := stFaulted.newSessionScaled(nJobs)
	res, errs := NewEngine(stFaulted, 8, 0).standardizeBatchSession(context.Background(), shared, jobs)

	wantFaulted := map[int]bool{2: true, 5: true, 15: true, 24: true}
	for i := range jobs {
		if errs[i] != nil {
			if !wantFaulted[i] {
				t.Errorf("unfaulted job %d failed: %v", i, errs[i])
			}
			if !errors.Is(errs[i], faults.ErrInjected) {
				t.Errorf("job %d error chain loses the injected sentinel: %v", i, errs[i])
			}
			continue
		}
		if res[i].Health.Total() > 0 {
			if !wantFaulted[i] {
				t.Errorf("unfaulted job %d reports quarantines: %+v", i, res[i].Health)
			}
			continue
		}
		if wantFaulted[i] {
			t.Errorf("faulted job %d reports neither an error nor quarantines", i)
			continue
		}
		// Unaffected: byte-identical to the fault-free run.
		if g, w := res[i].Output.Source(), cleanRes[i].Output.Source(); g != w {
			t.Errorf("job %d output diverges under chaos:\nchaos:\n%s\nclean:\n%s", i, g, w)
		}
		if res[i].REBefore != cleanRes[i].REBefore || res[i].REAfter != cleanRes[i].REAfter ||
			res[i].IntentValue != cleanRes[i].IntentValue {
			t.Errorf("job %d scores diverge under chaos: (%v,%v,%v) vs (%v,%v,%v)",
				i, res[i].REBefore, res[i].REAfter, res[i].IntentValue,
				cleanRes[i].REBefore, cleanRes[i].REAfter, cleanRes[i].IntentValue)
		}
		if len(res[i].Applied) != len(cleanRes[i].Applied) {
			t.Errorf("job %d applied %d transformations under chaos, clean %d",
				i, len(res[i].Applied), len(cleanRes[i].Applied))
		}
	}

	// Fault taxonomy per job: the batch-site panic is contained into
	// ErrJobPanicked; the statement-level faults surface as input-script
	// failures carrying the quarantine sentinel and statement position.
	if !errors.Is(errs[5], ErrJobPanicked) {
		t.Errorf("job 5 = %v, want ErrJobPanicked", errs[5])
	}
	if errs[24] == nil || errors.Is(errs[24], ErrJobPanicked) {
		t.Errorf("job 24 = %v, want a plain injected error", errs[24])
	}
	if !errors.Is(errs[2], ErrInputScriptFails) || !errors.Is(errs[2], interp.ErrResourceExhausted) {
		t.Errorf("job 2 = %v, want ErrInputScriptFails wrapping ErrResourceExhausted", errs[2])
	}
	if !errors.Is(errs[15], ErrInputScriptFails) || !errors.Is(errs[15], interp.ErrStatementPanicked) {
		t.Errorf("job 15 = %v, want ErrInputScriptFails wrapping ErrStatementPanicked", errs[15])
	}
	var stmtErr *interp.StmtError
	if !errors.As(errs[15], &stmtErr) {
		t.Errorf("job 15 error chain carries no *interp.StmtError: %v", errs[15])
	} else if stmtErr.Line != 4 {
		t.Errorf("job 15 failed at line %d, want 4 (the age filter)", stmtErr.Line)
	}

	if got := fcfg.Faults.Total(); got < int64(len(wantFaulted)) {
		t.Errorf("injector fired %d faults, want >= %d", got, len(wantFaulted))
	}
	if err := shared.CheckInvariants(); err != nil {
		t.Errorf("shared trie invariants violated after chaos batch: %v", err)
	}
}

// ageFilterFmt is the statement that distinguishes batchJobs job i
// (argument 25+i), as the interpreter sees it.
const ageFilterFmt = `df = df[df["Age"].between(18, %d)]`
