// Package core implements LucidScript's search framework (Section 5): the
// transformation space over line atoms, the beam search of Algorithm 1–2,
// the K-means transformation-diversity variant of Algorithm 3, monotonicity,
// early/late execution checking, and input sampling. Given a user script, a
// corpus, and a user-intent constraint, Standardize returns an executable
// script with minimal relative entropy w.r.t. the corpus.
package core

import (
	"time"

	"lucidscript/internal/faults"
	"lucidscript/internal/intent"
	"lucidscript/internal/interp"
	"lucidscript/internal/obs"
)

// Config holds the search parameters of Algorithm 1.
type Config struct {
	// SeqLength is the maximum number of transformations (stopping criterion).
	SeqLength int
	// BeamSize is K, the number of in-progress candidates retained.
	BeamSize int
	// Diversity enables the K-means diverse beam extension (Algorithm 3).
	Diversity bool
	// Clusters is M, the number of K-means clusters for diversity.
	Clusters int
	// EarlyCheck is α: verify the execution constraint after every
	// transformation (true) or only at the end (false).
	EarlyCheck bool
	// StepLimit bounds how many ranked transformations are examined per beam
	// extension; 0 means all. The ranked prefix is where beam entries come
	// from, so a moderate limit trades little quality for much less work.
	StepLimit int
	// MaxRows triggers input sampling (optimization 5) when a source frame
	// exceeds it; 0 disables sampling.
	MaxRows int
	// DisableLookahead turns off the chained-delete lookahead that ranks
	// deletes of corpus-unseen atom blocks by their full-block payoff
	// (an extension beyond the paper; see DESIGN.md).
	DisableLookahead bool
	// Workers > 1 extends the beams of each search step concurrently
	// (the parallelism the paper proposes in Section 6.5). Results are
	// deterministic for a fixed configuration, but candidate de-duplication
	// happens per beam rather than across beams, so outputs can differ
	// slightly from the sequential search.
	Workers int
	// VerifyLimit bounds how many final candidates are intent-verified;
	// 0 (the default) verifies the whole archive. Candidate outputs and
	// model accuracies are cached, and the archive is bounded by
	// seq × K², so unlimited verification stays cheap — a positive limit
	// is only useful to cap worst-case latency.
	VerifyLimit int
	// Seed drives sampling and any stochastic tie-breaking.
	Seed int64
	// ExecCache enables the prefix-memoized execution cache: candidate
	// scripts share the interpreter work of every previously executed
	// statement prefix. Results are identical with the cache on or off.
	ExecCache bool
	// ExecCacheSize bounds the cache trie's node count; 0 means the
	// interp.DefaultCacheSize default.
	ExecCacheSize int
	// Limits is the per-candidate resource governor applied to every
	// interpreter run (early checks, verification, batch jobs). A candidate
	// that trips a budget is quarantined — dropped and tallied in
	// Result.Health — never allowed to abort the search. Nil disables the
	// governor.
	Limits *interp.Limits
	// Faults is the deterministic chaos-injection hook threaded into the
	// interpreter, exec cache, curation, and batch engine. Nil (the
	// production default) reduces every injection site to a pointer check.
	Faults *faults.Injector
	// Constraint is the user-intent constraint (τ and measure).
	Constraint intent.Constraint
	// Tracer receives structured search events (see internal/obs); nil
	// disables tracing entirely — the search hot path never constructs an
	// event unless a tracer is installed.
	Tracer obs.Tracer
	// Metrics, when non-nil, accumulates the obs counters (statements
	// executed, cache traffic, beams pruned, verifications, per-phase wall
	// clock) across every standardization run with this config.
	Metrics *obs.Metrics
}

// DefaultConfig returns the paper's default LS configuration
// (Section 6.1.5): seq=16, K=3, diversity on, early checking on, τ_J=0.9.
func DefaultConfig() Config {
	return Config{
		SeqLength:   16,
		BeamSize:    3,
		Diversity:   true,
		Clusters:    3,
		EarlyCheck:  true,
		StepLimit:   64,
		MaxRows:     50000,
		VerifyLimit: 0,
		Seed:        1,
		ExecCache:   true,
		Constraint:  intent.Constraint{Measure: intent.MeasureJaccard, Tau: 0.9},
	}
}

// AutoConfig returns the recommended seq and K for a corpus, following the
// paper's Table 2: large corpora (>10 scripts) get seq=16, small get seq=8;
// diverse corpora (>300 unique edges) get K=3, otherwise K=1.
func AutoConfig(numScripts, uniqueEdges int) (seq, beam int) {
	seq = 8
	if numScripts > 10 {
		seq = 16
	}
	beam = 1
	if uniqueEdges > 300 {
		beam = 3
	}
	return seq, beam
}

// Timings is the per-phase runtime breakdown reported in Figure 7.
type Timings struct {
	CurateSearchSpace time.Duration
	GetSteps          time.Duration
	GetTopKBeams      time.Duration
	CheckIfExecutes   time.Duration
	VerifyConstraints time.Duration
	Total             time.Duration
}
