package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"lucidscript/internal/faults"
	"lucidscript/internal/intent"
	"lucidscript/internal/interp"
	"lucidscript/internal/obs"
	"lucidscript/internal/script"
)

// ErrJobPanicked reports that one batch job's standardization panicked; the
// panic is contained to that job's error and never kills the batch.
var ErrJobPanicked = errors.New("core: standardization job panicked")

// Engine fans standardization jobs across a bounded worker pool while
// sharing one curated corpus and one execution-prefix cache. The paper's
// workload is multi-tenant — one corpus serves every user script targeting
// the same dataset — so a batch of N jobs pays for curation exactly once
// and jobs reuse each other's executed statement prefixes.
//
// Results are deterministic and index-aligned with the submitted jobs:
// job i's result and error land at position i regardless of completion
// order, and each job's output is identical to a sequential
// Standardizer.Standardize of the same script.
type Engine struct {
	std        *Standardizer
	workers    int
	jobTimeout time.Duration
}

// NewEngine builds a batch engine over the standardizer's curated corpus.
// workers bounds the pool (<= 0 resolves to GOMAXPROCS); jobTimeout, when
// positive, bounds each job individually — an expired job returns
// ErrDeadlineExceeded with a partial result while the rest of the batch
// keeps running.
func NewEngine(st *Standardizer, workers int, jobTimeout time.Duration) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{std: st, workers: workers, jobTimeout: jobTimeout}
}

// Workers reports the resolved pool size.
func (e *Engine) Workers() int { return e.workers }

// StandardizeBatch standardizes every job, returning results and errors
// both parallel to jobs. A job's error is per-job: an execution failure,
// deadline, or panic in one job never affects the others, while canceling
// ctx stops the whole batch (each unfinished job returns ErrCanceled, with
// a partial result where one exists, mirroring StandardizeContext).
func (e *Engine) StandardizeBatch(ctx context.Context, jobs []*script.Script) ([]*Result, []error) {
	if len(jobs) == 0 {
		return []*Result{}, []error{}
	}
	// One shared session cache serves the whole batch, with its node
	// budget scaled to the job count; each job runs through its own view
	// so per-Result cache stats stay job-local.
	return e.standardizeBatchSession(ctx, e.std.newSessionScaled(len(jobs)), jobs)
}

// standardizeBatchSession is StandardizeBatch against a caller-supplied
// shared cache (nil = uncached). Split out so chaos tests can own the
// shared trie and check its invariants after the batch completes.
func (e *Engine) standardizeBatchSession(ctx context.Context, shared *interp.SessionCache, jobs []*script.Script) ([]*Result, []error) {
	results := make([]*Result, len(jobs))
	errs := make([]error, len(jobs))
	if len(jobs) == 0 {
		return results, errs
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.workers)
	for i, su := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, su *script.Script) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = e.runJob(ctx, shared, i, su)
		}(i, su)
	}
	wg.Wait()
	return results, errs
}

// jobFaultKey is the faults.SiteBatchJob key of batch/queue job i. With an
// unversioned corpus it stays the bare index ("3"), preserving every
// existing chaos fixture; a registry-backed corpus prefixes its snapshot
// version ("v7:3") so queue ids — dense per queue, and queues are rebuilt
// on every corpus hot-swap — cannot alias a fault rule across swaps.
func jobFaultKey(version int64, i int) string {
	if version == 0 {
		return strconv.Itoa(i)
	}
	return "v" + strconv.FormatInt(version, 10) + ":" + strconv.Itoa(i)
}

// runJob standardizes one job with panic isolation, a per-job deadline, and
// per-job trace attribution.
func (e *Engine) runJob(ctx context.Context, shared *interp.SessionCache, i int, su *script.Script) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			// An error panic value stays in the chain (%w), so callers can
			// reach the failing statement's position via errors.As on
			// *interp.StmtError, and chaos tests can match
			// faults.ErrInjected through the job wrapper.
			if perr, ok := r.(error); ok {
				res, err = nil, fmt.Errorf("%w: job %d: %w", ErrJobPanicked, i, perr)
			} else {
				res, err = nil, fmt.Errorf("%w: job %d: %v", ErrJobPanicked, i, r)
			}
		}
	}()
	if f := e.std.Config.Faults.Fire(faults.SiteBatchJob, jobFaultKey(e.std.Corpus.Version, i)); f != nil {
		return nil, fmt.Errorf("core: job %d: %w", i, f.Err)
	}
	if e.jobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.jobTimeout)
		defer cancel()
	}
	// A shallow per-job Standardizer shares the curated corpus but stamps
	// this job's index onto every trace event.
	jobStd := &Standardizer{Corpus: e.std.Corpus, Config: e.std.Config}
	jobStd.Config.Tracer = obs.JobTracer(e.std.Config.Tracer, i+1)
	var sess interp.Session
	if shared != nil {
		sess = shared.NewView()
	}
	grid, err := jobStd.standardizeGridSession(ctx, sess, su,
		[]int{jobStd.Config.SeqLength}, []intent.Constraint{jobStd.Config.Constraint})
	if grid == nil {
		return nil, err
	}
	return grid[0][0], err
}
