package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lucidscript/internal/faults"
	"lucidscript/internal/obs"
)

// TestQueueMatchesSequential is the queue's determinism contract: a job
// submitted through the long-lived queue returns byte-identical output to
// a direct sequential Standardize of the same script.
func TestQueueMatchesSequential(t *testing.T) {
	cfg := DefaultConfig()
	st := newStandardizer(t, cfg)
	q := NewEngine(st, 2, 0).NewQueue(8)
	defer q.Close()

	jobs := batchJobs(t, 4)
	want := make([]string, len(jobs))
	for i, su := range jobs {
		res, err := st.Standardize(su)
		if err != nil {
			t.Fatalf("sequential %d: %v", i, err)
		}
		want[i] = res.Output.Source()
	}

	handles := make([]*QueuedJob, len(jobs))
	for i, su := range jobs {
		h, err := q.Submit(context.Background(), su)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		if h.ID() != int64(i) {
			t.Fatalf("job %d got queue id %d", i, h.ID())
		}
		handles[i] = h
	}
	for i, h := range handles {
		res, err := h.Wait(context.Background())
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if res.Output.Source() != want[i] {
			t.Errorf("job %d queue output diverges from sequential", i)
		}
		if h.State() != JobDone {
			t.Errorf("job %d state = %v after Wait, want JobDone", i, h.State())
		}
	}

	st2 := q.Stats()
	if st2.Submitted != int64(len(jobs)) || st2.Completed != int64(len(jobs)) || st2.Failed != 0 {
		t.Errorf("stats = %+v, want %d submitted/completed, 0 failed", st2, len(jobs))
	}
}

// TestQueueFullRejects: admission control must reject, not block, when the
// buffer is at capacity — and a metrics registry must see the rejection.
func TestQueueFullRejects(t *testing.T) {
	cfg := DefaultConfig()
	// Stall the single worker deterministically so submitted jobs stay
	// buffered: every job sleeps before starting its search.
	cfg.Faults = faults.New(3, faults.Rule{
		Site: faults.SiteBatchJob, Kind: faults.KindDelay, Prob: 1, Delay: 200 * time.Millisecond,
	})
	cfg.Metrics = obs.NewMetrics()
	st := newStandardizer(t, cfg)
	q := NewEngine(st, 1, 0).NewQueue(1)
	defer q.Close()

	jobs := batchJobs(t, 3)
	first, err := q.Submit(context.Background(), jobs[0])
	if err != nil {
		t.Fatalf("Submit 0: %v", err)
	}
	// Wait until the worker picked the first job up, so the buffer is
	// empty and the second submission deterministically parks in it.
	for first.State() == JobQueued {
		time.Sleep(time.Millisecond)
	}
	if _, err := q.Submit(context.Background(), jobs[1]); err != nil {
		t.Fatalf("Submit 1: %v", err)
	}
	if _, err := q.Submit(context.Background(), jobs[2]); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit 2 err = %v, want ErrQueueFull", err)
	}
	if got := q.Stats().Rejected; got != 1 {
		t.Errorf("Stats().Rejected = %d, want 1", got)
	}
	if got := cfg.Metrics.Value(obs.MJobsRejected); got != 1 {
		t.Errorf("metric %s = %d, want 1", obs.MJobsRejected, got)
	}
}

// TestQueueCloseDrains: Close lets the in-flight job finish and fails the
// buffered one with ErrQueueClosed; later submissions see ErrQueueClosed.
func TestQueueCloseDrains(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = faults.New(3, faults.Rule{
		Site: faults.SiteBatchJob, Kind: faults.KindDelay, Prob: 1, Delay: 150 * time.Millisecond,
	})
	st := newStandardizer(t, cfg)
	q := NewEngine(st, 1, 0).NewQueue(2)

	jobs := batchJobs(t, 2)
	inflight, err := q.Submit(context.Background(), jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	for inflight.State() == JobQueued {
		time.Sleep(time.Millisecond)
	}
	queued, err := q.Submit(context.Background(), jobs[1])
	if err != nil {
		t.Fatal(err)
	}

	q.Close()

	if res, err := inflight.Result(); err != nil || res == nil {
		t.Fatalf("in-flight job after Close: res=%v err=%v, want completed result", res, err)
	}
	if _, err := queued.Result(); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("queued job after Close err = %v, want ErrQueueClosed", err)
	}
	if _, err := q.Submit(context.Background(), jobs[0]); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("Submit after Close err = %v, want ErrQueueClosed", err)
	}
	// Close is idempotent.
	q.Close()
}

// TestQueueCancelQueuedJob: canceling a job that is still buffered makes
// it complete with ErrCanceled without ever running.
func TestQueueCancelQueuedJob(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = faults.New(3, faults.Rule{
		Site: faults.SiteBatchJob, Kind: faults.KindDelay, Prob: 1, Delay: 150 * time.Millisecond,
	})
	st := newStandardizer(t, cfg)
	q := NewEngine(st, 1, 0).NewQueue(2)
	defer q.Close()

	jobs := batchJobs(t, 2)
	inflight, err := q.Submit(context.Background(), jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	for inflight.State() == JobQueued {
		time.Sleep(time.Millisecond)
	}
	queued, err := q.Submit(context.Background(), jobs[1])
	if err != nil {
		t.Fatal(err)
	}
	queued.Cancel()
	if _, err := queued.Wait(context.Background()); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled queued job err = %v, want ErrCanceled", err)
	}
	// The in-flight job is untouched.
	if _, err := inflight.Wait(context.Background()); err != nil {
		t.Fatalf("in-flight job: %v", err)
	}
}

// TestQueueWaitAbandonment: canceling the Wait context abandons only the
// wait; the job still completes.
func TestQueueWaitAbandonment(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = faults.New(3, faults.Rule{
		Site: faults.SiteBatchJob, Kind: faults.KindDelay, Prob: 1, Delay: 100 * time.Millisecond,
	})
	st := newStandardizer(t, cfg)
	q := NewEngine(st, 1, 0).NewQueue(2)
	defer q.Close()

	h, err := q.Submit(context.Background(), batchJobs(t, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := h.Wait(ctx); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("abandoned Wait err = %v, want ErrDeadlineExceeded", err)
	}
	if res, err := h.Wait(context.Background()); err != nil || res == nil {
		t.Fatalf("job after abandoned wait: res=%v err=%v", res, err)
	}
}

// TestQueueConcurrentSubmitClose hammers Submit from many goroutines while
// Close races them: every accepted job must land (done channel closed)
// exactly once, with either a result or a typed error.
func TestQueueConcurrentSubmitClose(t *testing.T) {
	cfg := DefaultConfig()
	st := newStandardizer(t, cfg)
	q := NewEngine(st, 2, 0).NewQueue(4)

	jobs := batchJobs(t, 1)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var accepted []*QueuedJob
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				h, err := q.Submit(context.Background(), jobs[0])
				if err != nil {
					if !errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrQueueClosed) {
						t.Errorf("Submit err = %v", err)
					}
					continue
				}
				mu.Lock()
				accepted = append(accepted, h)
				mu.Unlock()
			}
		}()
	}
	// Let some work start, then close concurrently with the submitters.
	time.Sleep(10 * time.Millisecond)
	q.Close()
	wg.Wait()

	for i, h := range accepted {
		select {
		case <-h.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("accepted job %d never landed", i)
		}
		if res, err := h.Result(); err != nil {
			if !errors.Is(err, ErrQueueClosed) && !errors.Is(err, ErrCanceled) {
				t.Errorf("job %d err = %v", i, err)
			}
		} else if res == nil {
			t.Errorf("job %d: nil result and nil error", i)
		}
	}
}

// TestQueueFaultInjection: a deterministic fault at the batch.job site
// fails exactly the keyed job with a typed, matchable error while its
// neighbors complete untouched.
func TestQueueFaultInjection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = faults.New(11, faults.Rule{
		Site: faults.SiteBatchJob, Key: "1", Kind: faults.KindError, Prob: 1,
	})
	st := newStandardizer(t, cfg)
	q := NewEngine(st, 2, 0).NewQueue(4)
	defer q.Close()

	jobs := batchJobs(t, 3)
	handles := make([]*QueuedJob, len(jobs))
	for i, su := range jobs {
		h, err := q.Submit(context.Background(), su)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	for i, h := range handles {
		res, err := h.Wait(context.Background())
		if i == 1 {
			if !errors.Is(err, faults.ErrInjected) {
				t.Fatalf("job 1 err = %v, want ErrInjected in chain", err)
			}
			continue
		}
		if err != nil || res == nil {
			t.Fatalf("job %d: res=%v err=%v", i, res, err)
		}
	}
	if got := q.Stats().Failed; got != 1 {
		t.Errorf("Stats().Failed = %d, want 1", got)
	}
}

// TestQueueResultBeforeDoneBlocks pins the early-call contract: Result
// invoked before the job lands blocks until Done closes instead of
// panicking, so a status poller that observes JobDone (or just calls
// Result eagerly) can never crash in the store-to-close window.
func TestQueueResultBeforeDoneBlocks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = faults.New(3, faults.Rule{
		Site: faults.SiteBatchJob, Kind: faults.KindDelay, Prob: 1, Delay: 100 * time.Millisecond,
	})
	st := newStandardizer(t, cfg)
	q := NewEngine(st, 1, 0).NewQueue(1)
	defer q.Close()

	h, err := q.Submit(context.Background(), batchJobs(t, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	// Called well before the delayed job can have finished.
	res, err := h.Result()
	if err != nil || res == nil {
		t.Errorf("Result() = %v, %v, want a result", res, err)
	}
	select {
	case <-h.Done():
	default:
		t.Error("Result returned before Done closed")
	}
}

// TestJobStateString pins the wire names.
func TestJobStateString(t *testing.T) {
	for state, want := range map[JobState]string{JobQueued: "queued", JobRunning: "running", JobDone: "done"} {
		if got := state.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", state, got, want)
		}
	}
}

// TestQueueSubmitObserved pins the state-transition hook: a run job sees
// JobRunning then JobDone in order (JobDone after the outcome is readable),
// a drained job sees only JobDone, and the Running stat rises while a
// worker holds a job.
func TestQueueSubmitObserved(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = faults.New(3, faults.Rule{
		Site: faults.SiteBatchJob, Kind: faults.KindDelay, Prob: 1, Delay: 150 * time.Millisecond,
	})
	st := newStandardizer(t, cfg)
	q := NewEngine(st, 1, 0).NewQueue(1)

	var mu sync.Mutex
	var seen []JobState
	var hptr atomic.Pointer[QueuedJob]
	running := make(chan struct{})
	var runningOnce sync.Once
	h, err := q.SubmitObserved(context.Background(), batchJobs(t, 1)[0], func(s JobState) {
		mu.Lock()
		seen = append(seen, s)
		mu.Unlock()
		if s == JobRunning {
			runningOnce.Do(func() { close(running) })
		}
		if s == JobDone {
			// The outcome must already be readable when JobDone fires.
			if j := hptr.Load(); j != nil {
				if res, err := j.Result(); res == nil && err == nil {
					t.Error("JobDone observed before the outcome was recorded")
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	hptr.Store(h)
	<-running
	if got := q.Stats().Running; got != 1 {
		t.Errorf("Stats().Running while job held = %d, want 1", got)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// JobDone fires from finish() on the worker; Wait returning guarantees
	// done is closed, and finish calls observe after recording — but give
	// the observer call itself a moment under -race schedulers.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		got := append([]JobState(nil), seen...)
		mu.Unlock()
		if len(got) == 2 {
			if got[0] != JobRunning || got[1] != JobDone {
				t.Fatalf("transitions = %v, want [running done]", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("transitions = %v, want [running done]", got)
		}
		time.Sleep(time.Millisecond)
	}
	if got := q.Stats().Running; got != 0 {
		t.Errorf("Stats().Running after completion = %d, want 0", got)
	}

	// A job drained by Close never runs: only JobDone is observed.
	blocker, err := q.Submit(context.Background(), batchJobs(t, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	var drained []JobState
	var dmu sync.Mutex
	queued, err := q.SubmitObserved(context.Background(), batchJobs(t, 1)[0], func(s JobState) {
		dmu.Lock()
		drained = append(drained, s)
		dmu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	q.Close()
	if _, err := queued.Result(); !errors.Is(err, ErrQueueClosed) {
		// The drained job may instead have been run if the worker got to it
		// first; both are legal — only the observed sequence is pinned.
		dmu.Lock()
		if len(drained) != 2 || drained[0] != JobRunning {
			t.Errorf("run-before-close job transitions = %v", drained)
		}
		dmu.Unlock()
	} else {
		dmu.Lock()
		if len(drained) != 1 || drained[0] != JobDone {
			t.Errorf("drained job transitions = %v, want [done]", drained)
		}
		dmu.Unlock()
	}
	if _, err := blocker.Result(); err != nil && !errors.Is(err, ErrQueueClosed) {
		t.Errorf("blocker err = %v", err)
	}
}
