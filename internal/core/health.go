package core

import (
	"errors"

	"lucidscript/internal/interp"
)

// classifyQuarantine reports whether an execution failure is a quarantine —
// a contained panic or a resource-budget trip, as opposed to an ordinary
// execution failure — and, when it is, whether the cause was a panic.
func classifyQuarantine(err error) (quarantined, panicked bool) {
	switch {
	case errors.Is(err, interp.ErrStatementPanicked):
		return true, true
	case errors.Is(err, interp.ErrResourceExhausted):
		return true, false
	}
	return false, false
}

// quarantineDetail names the quarantine cause for trace events.
func quarantineDetail(panicked bool) string {
	if panicked {
		return "panic"
	}
	return "exhausted"
}

// PhaseHealth tallies candidate quarantines in one search phase. A
// quarantine is stronger than an ordinary prune: the candidate was dropped
// not because it merely failed to execute, but because the interpreter had
// to contain a panic or cut off a resource-budget blowout. Panicked and
// Exhausted partition Quarantined by cause.
type PhaseHealth struct {
	// Quarantined counts candidates dropped for panics or budget
	// exhaustion (always Panicked + Exhausted).
	Quarantined int
	// Panicked counts candidates whose execution panicked and was
	// contained (interp.ErrStatementPanicked).
	Panicked int
	// Exhausted counts candidates that tripped a resource budget
	// (interp.ErrResourceExhausted).
	Exhausted int
}

func (p *PhaseHealth) add(panicked bool) {
	p.Quarantined++
	if panicked {
		p.Panicked++
	} else {
		p.Exhausted++
	}
}

func (p *PhaseHealth) merge(q PhaseHealth) {
	p.Quarantined += q.Quarantined
	p.Panicked += q.Panicked
	p.Exhausted += q.Exhausted
}

// Health reports how much containment one standardization needed: every
// candidate the fault-isolation layer quarantined, per phase, plus the
// degradations the run absorbed. A fully healthy run is the zero value.
// Pathological candidates are expected in machine-generated search spaces,
// so a non-zero Health is informational — the search completed and its
// output is exactly the result of the same search without the quarantined
// candidates.
type Health struct {
	// Check tallies quarantines during beam-extension early checks.
	Check PhaseHealth
	// Verify tallies quarantines during constraint verification.
	Verify PhaseHealth
	// CurateSkipped counts corpus scripts dropped during curation because
	// they failed to lemmatize (see CuratedCorpus.Diagnostics for the
	// per-script causes).
	CurateSkipped int
	// VerifyDegraded reports that at least one verification fell back to
	// sampled-tuple mode because the candidate's full-data run exceeded its
	// resource budget.
	VerifyDegraded bool
}

// Total returns the number of quarantined candidates across all phases.
func (h Health) Total() int {
	return h.Check.Quarantined + h.Verify.Quarantined
}

// Degraded reports whether the run needed any containment at all:
// quarantines, curation skips, or a degraded verification.
func (h Health) Degraded() bool {
	return h.Total() > 0 || h.CurateSkipped > 0 || h.VerifyDegraded
}
