package core

import (
	"testing"

	"lucidscript/internal/corpusgen"
	"lucidscript/internal/intent"
)

// titanicWorkload builds the seed Titanic standardization workload from the
// generated corpus: the first script is the user input, the rest the corpus.
func titanicWorkload(t testing.TB) (*Standardizer, func(Config) *Standardizer, *corpusgen.Generated) {
	t.Helper()
	comp, err := corpusgen.Get("Titanic")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := comp.Generate(corpusgen.GenOptions{Seed: 3, RowScale: 0.01, MinRows: 80, NumScripts: 16})
	if err != nil {
		t.Fatal(err)
	}
	build := func(cfg Config) *Standardizer {
		return New(gen.ScriptsOnly()[1:], gen.Sources, cfg)
	}
	return build(DefaultConfig()), build, gen
}

// TestExecCacheEquivalence is the tentpole's acceptance check: with the
// prefix cache on vs. off, and sequential vs. parallel extension, the output
// script is byte-identical — and the cache cuts interpreter statement
// executions by at least 2× on the Titanic workload.
func TestExecCacheEquivalence(t *testing.T) {
	_, build, gen := titanicWorkload(t)
	input := gen.ScriptsOnly()[0]
	for _, workers := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.SeqLength = 8
		cfg.Workers = workers

		on := cfg
		on.ExecCache = true
		off := cfg
		off.ExecCache = false

		resOn, err := build(on).Standardize(input)
		if err != nil {
			t.Fatalf("workers=%d cache on: %v", workers, err)
		}
		resOff, err := build(off).Standardize(input)
		if err != nil {
			t.Fatalf("workers=%d cache off: %v", workers, err)
		}
		if got, want := resOn.Output.Source(), resOff.Output.Source(); got != want {
			t.Fatalf("workers=%d: cache changed the output\non:\n%s\noff:\n%s", workers, got, want)
		}
		if resOn.REAfter != resOff.REAfter || resOn.IntentValue != resOff.IntentValue {
			t.Fatalf("workers=%d: cache changed scores: on=(%v,%v) off=(%v,%v)",
				workers, resOn.REAfter, resOn.IntentValue, resOff.REAfter, resOff.IntentValue)
		}

		st := resOn.CacheStats
		total := st.StmtsExecuted + st.StmtsSkipped
		if st.StmtsExecuted == 0 || total < 2*st.StmtsExecuted {
			t.Fatalf("workers=%d: cache below 2x: executed %d of %d statements (%+v)",
				workers, st.StmtsExecuted, total, st)
		}
		t.Logf("workers=%d: %d/%d statements executed (%.1fx reduction), %d hits, %d misses",
			workers, st.StmtsExecuted, total, float64(total)/float64(st.StmtsExecuted), st.Hits, st.Misses)

		if off := resOff.CacheStats; off.Hits != 0 || off.Misses != 0 {
			t.Fatalf("workers=%d: cache-off run reported cache stats %+v", workers, off)
		}
	}
}

// TestModelKeyCollisionFree: the old encoding dropped Protected entirely and
// didn't guard separators inside string fields, so distinct model configs
// could share a verify-cache key (silently reusing a wrong accuracy).
func TestModelKeyCollisionFree(t *testing.T) {
	configs := []intent.ModelConfig{
		{Target: "y", Seed: 1, TestFrac: 0.3, Epochs: 120},
		{Target: "y", Seed: 1, TestFrac: 0.3, Epochs: 120, Protected: "sex"},
		{Target: "y", Seed: 1, TestFrac: 0.3, Epochs: 120, Protected: "race"},
		{Target: "y/1", Seed: 2, TestFrac: 0.3, Epochs: 120},
		{Target: "y", Seed: 1, TestFrac: 0.30000000000000004, Epochs: 120},
	}
	seen := map[string]int{}
	for i, m := range configs {
		k := modelKey(m)
		if j, dup := seen[k]; dup {
			t.Fatalf("configs %d and %d collide on key %q", j, i, k)
		}
		seen[k] = i
	}
}
