package core

import (
	"fmt"
	"sort"
	"strings"

	"lucidscript/internal/dag"
	"lucidscript/internal/script"
)

// Anomaly flags one out-of-the-ordinary step in a script: an atom that is
// rare or absent in the corpus, with the standardness gain its removal
// would yield. Section 6.6 shows that such steps are where target leakage
// and similar mistakes live; this report surfaces them without modifying
// the script.
type Anomaly struct {
	// Line is the 1-based position in the lemmatized script.
	Line int
	// Source is the canonical step text.
	Source string
	// CorpusFrequency is the fraction of corpus scripts containing the atom.
	CorpusFrequency float64
	// REGain is the relative-entropy reduction from deleting just this step
	// (positive = the script becomes more standard without it).
	REGain float64
}

// String renders the anomaly for reports.
func (a Anomaly) String() string {
	return fmt.Sprintf("line %d: %s — used by %.0f%% of corpus scripts (RE gain if removed: %+.3f)",
		a.Line, a.Source, a.CorpusFrequency*100, a.REGain)
}

// DetectAnomalies scores every step of the script against the corpus and
// returns the steps whose corpus frequency is below maxFrequency (default
// 0.1 when ≤ 0), ordered by descending removal gain. Imports and read_csv
// lines are never flagged.
func (st *Standardizer) DetectAnomalies(su *script.Script, maxFrequency float64) []Anomaly {
	if maxFrequency <= 0 {
		maxFrequency = 0.1
	}
	g := dag.Build(su)
	base := st.Corpus.Vocab.RELines(g.Lines)
	var out []Anomaly
	for i, li := range g.Lines {
		if protectedLine(li) {
			continue
		}
		freq := st.atomFrequency(li.Key)
		if freq >= maxFrequency {
			continue
		}
		without := append(append([]dag.LineInfo(nil), g.Lines[:i]...), g.Lines[i+1:]...)
		out = append(out, Anomaly{
			Line:            i + 1,
			Source:          li.Key,
			CorpusFrequency: freq,
			REGain:          base - st.Corpus.Vocab.RELines(without),
		})
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].REGain != out[b].REGain {
			return out[a].REGain > out[b].REGain
		}
		return out[a].Line < out[b].Line
	})
	return out
}

// AnomalyReport renders the anomalies as a human-readable block, or a
// clean bill when none are found.
func (st *Standardizer) AnomalyReport(su *script.Script, maxFrequency float64) string {
	anomalies := st.DetectAnomalies(su, maxFrequency)
	if len(anomalies) == 0 {
		return "no out-of-the-ordinary steps found\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d out-of-the-ordinary step(s):\n", len(anomalies))
	for _, a := range anomalies {
		b.WriteString("  " + a.String() + "\n")
	}
	return b.String()
}
