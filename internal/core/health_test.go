package core

import (
	"errors"
	"fmt"
	"testing"

	"lucidscript/internal/interp"
)

// TestClassifyQuarantine pins the error-to-quarantine mapping the fault
// isolation layer hangs off, including wrapped chains.
func TestClassifyQuarantine(t *testing.T) {
	cases := []struct {
		err                   error
		quarantined, panicked bool
	}{
		{interp.ErrStatementPanicked, true, true},
		{fmt.Errorf("wrap: %w", interp.ErrStatementPanicked), true, true},
		{interp.ErrResourceExhausted, true, false},
		{fmt.Errorf("wrap: %w", interp.ErrResourceExhausted), true, false},
		{errors.New("ordinary execution failure"), false, false},
		{nil, false, false},
	}
	for _, c := range cases {
		q, p := classifyQuarantine(c.err)
		if q != c.quarantined || p != c.panicked {
			t.Errorf("classifyQuarantine(%v) = (%v, %v), want (%v, %v)",
				c.err, q, p, c.quarantined, c.panicked)
		}
	}
}

// TestQuarantineDetail pins the trace-event cause names.
func TestQuarantineDetail(t *testing.T) {
	if got := quarantineDetail(true); got != "panic" {
		t.Errorf("quarantineDetail(true) = %q, want panic", got)
	}
	if got := quarantineDetail(false); got != "exhausted" {
		t.Errorf("quarantineDetail(false) = %q, want exhausted", got)
	}
}

// TestHealthAccessors covers Total/Degraded and the phase bookkeeping.
func TestHealthAccessors(t *testing.T) {
	var h Health
	if h.Degraded() || h.Total() != 0 {
		t.Errorf("zero Health: Degraded=%v Total=%d, want false/0", h.Degraded(), h.Total())
	}

	h.Check.add(true)
	h.Verify.add(false)
	if h.Total() != 2 || !h.Degraded() {
		t.Errorf("after two quarantines: Total=%d Degraded=%v", h.Total(), h.Degraded())
	}
	if h.Check.Panicked != 1 || h.Verify.Exhausted != 1 {
		t.Errorf("phase split = check %+v / verify %+v", h.Check, h.Verify)
	}

	var merged PhaseHealth
	merged.merge(h.Check)
	merged.merge(h.Verify)
	if merged.Quarantined != 2 || merged.Panicked != 1 || merged.Exhausted != 1 {
		t.Errorf("merged = %+v", merged)
	}

	if !(Health{CurateSkipped: 1}).Degraded() {
		t.Error("CurateSkipped alone should degrade")
	}
	if !(Health{VerifyDegraded: true}).Degraded() {
		t.Error("VerifyDegraded alone should degrade")
	}
}
