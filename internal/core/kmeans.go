package core

import (
	"math"
	"sort"

	"lucidscript/internal/dag"
	"lucidscript/internal/entropy"
)

// clusterSteps groups ranked transformations into m clusters by K-means over
// each transformation's updated edge-distribution vector P(x) (the paper's
// ClusterSteps). Within each cluster, transformations stay ranked by RE.
// When there are fewer transformations than clusters, each gets its own.
func clusterSteps(c *candidate, steps []Transformation, m int, v *entropy.Vocab) [][]Transformation {
	if m <= 1 || len(steps) <= m {
		out := make([][]Transformation, 0, len(steps))
		for _, s := range steps {
			out = append(out, []Transformation{s})
		}
		return out
	}
	// Feature space: the corpus edge vocabulary, densely indexed.
	dim := map[string]int{}
	keys := make([]string, 0, len(v.EdgeCounts))
	for k := range v.EdgeCounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		dim[k] = i
	}
	vecs := make([][]float64, len(steps))
	for i, tr := range steps {
		vecs[i] = edgeVector(c, tr, dim)
	}
	assign := kmeans(vecs, m, 12)
	out := make([][]Transformation, m)
	for i, a := range assign {
		out[a] = append(out[a], steps[i])
	}
	// Drop empty clusters.
	res := out[:0]
	for _, cl := range out {
		if len(cl) > 0 {
			res = append(res, cl)
		}
	}
	return res
}

// edgeVector embeds the post-transformation script as a normalized edge
// count vector over the corpus edge vocabulary.
func edgeVector(c *candidate, tr Transformation, dim map[string]int) []float64 {
	lines := c.lines
	switch tr.Type {
	case TransformAdd:
		lines = append(append(append(lines[:0:0], lines[:tr.Pos]...), tr.Atom), lines[tr.Pos:]...)
	case TransformDelete:
		lines = append(append(lines[:0:0], lines[:tr.Pos]...), lines[tr.Pos+1:]...)
	}
	vec := make([]float64, len(dim))
	total := 0.0
	for _, k := range dag.EdgeKeysOf(lines) {
		if i, ok := dim[k]; ok {
			vec[i]++
			total++
		}
	}
	if total > 0 {
		for i := range vec {
			vec[i] /= total
		}
	}
	return vec
}

// kmeans runs Lloyd's algorithm with deterministic farthest-point seeding.
func kmeans(vecs [][]float64, k, iters int) []int {
	n := len(vecs)
	assign := make([]int, n)
	if n == 0 {
		return assign
	}
	if k > n {
		k = n
	}
	d := len(vecs[0])
	centroids := make([][]float64, k)
	// Seed 0: first vector; subsequent: farthest from chosen set.
	centroids[0] = append([]float64(nil), vecs[0]...)
	for c := 1; c < k; c++ {
		bestI, bestD := 0, -1.0
		for i := 0; i < n; i++ {
			minD := math.MaxFloat64
			for cc := 0; cc < c; cc++ {
				dd := sqDist(vecs[i], centroids[cc])
				if dd < minD {
					minD = dd
				}
			}
			if minD > bestD {
				bestD, bestI = minD, i
			}
		}
		centroids[c] = append([]float64(nil), vecs[bestI]...)
	}
	counts := make([]int, k)
	for it := 0; it < iters; it++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, math.MaxFloat64
			for c := 0; c < k; c++ {
				dd := sqDist(vecs[i], centroids[c])
				if dd < bestD {
					bestD, best = dd, c
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		for c := 0; c < k; c++ {
			counts[c] = 0
			for j := 0; j < d; j++ {
				centroids[c][j] = 0
			}
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			for j := 0; j < d; j++ {
				centroids[c][j] += vecs[i][j]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue
			}
			for j := 0; j < d; j++ {
				centroids[c][j] /= float64(counts[c])
			}
		}
	}
	return assign
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		dv := a[i] - b[i]
		s += dv * dv
	}
	return s
}
