package core

import (
	"errors"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"lucidscript/internal/dag"
	"lucidscript/internal/frame"
	"lucidscript/internal/intent"
	"lucidscript/internal/interp"
	"lucidscript/internal/script"
)

// diabetesFrame synthesizes a small Pima-style dataset: a few nulls in
// Glucose, a handful of outlier SkinThickness values, binary Outcome.
func diabetesFrame(t testing.TB, n int) *frame.Frame {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	var b strings.Builder
	b.WriteString("Pregnancies,Glucose,SkinThickness,Age,Outcome\n")
	for i := 0; i < n; i++ {
		preg := rng.Intn(10)
		glucose := ""
		if rng.Float64() > 0.1 {
			glucose = strconv.Itoa(80 + rng.Intn(80))
		}
		skin := rng.Intn(50)
		if rng.Float64() < 0.05 {
			skin = 85 + rng.Intn(20) // abnormal outliers
		}
		age := 18 + rng.Intn(50)
		outcome := 0
		if glucose != "" {
			if g, _ := strconv.Atoi(glucose); g > 120 {
				outcome = 1
			}
		} else if rng.Float64() < 0.5 {
			outcome = 1
		}
		b.WriteString(strconv.Itoa(preg) + "," + glucose + "," + strconv.Itoa(skin) + "," +
			strconv.Itoa(age) + "," + strconv.Itoa(outcome) + "\n")
	}
	f, err := frame.ReadCSVString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// medicalCorpus mirrors the paper's running example: most scripts impute
// with the mean, filter SkinThickness outliers, and one-hot encode.
func medicalCorpus(t testing.TB) []*script.Script {
	t.Helper()
	srcs := []string{
		`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.mean())
df = df[df["SkinThickness"] < 80]
df = pd.get_dummies(df)
y = df["Outcome"]
`,
		`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.mean())
df = df[df["SkinThickness"] < 80]
df = pd.get_dummies(df)
`,
		`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.mean())
df = pd.get_dummies(df)
y = df["Outcome"]
`,
		`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df[df["SkinThickness"] < 80]
df = pd.get_dummies(df)
`,
		`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.mean())
df = df[df["SkinThickness"] < 80]
df = pd.get_dummies(df)
y = df["Outcome"]
`,
		`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.dropna()
df = pd.get_dummies(df)
`,
	}
	var out []*script.Script
	for _, s := range srcs {
		out = append(out, script.MustParse(s))
	}
	return out
}

// userScript is the paper's Figure 1a sketch: median imputation plus an
// age filter, missing the corpus-standard outlier handling.
const userScript = `import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.median())
df = df[df["Age"].between(18, 25)]
df = pd.get_dummies(df)
`

func newStandardizer(t testing.TB, cfg Config) *Standardizer {
	t.Helper()
	sources := map[string]*frame.Frame{"diabetes.csv": diabetesFrame(t, 120)}
	return New(medicalCorpus(t), sources, cfg)
}

func TestAutoConfigTable2(t *testing.T) {
	cases := []struct {
		scripts, edges, wantSeq, wantK int
	}{
		{62, 748, 16, 3},
		{62, 200, 16, 1},
		{8, 400, 8, 3},
		{8, 200, 8, 1},
	}
	for _, c := range cases {
		seq, k := AutoConfig(c.scripts, c.edges)
		if seq != c.wantSeq || k != c.wantK {
			t.Fatalf("AutoConfig(%d,%d) = (%d,%d), want (%d,%d)",
				c.scripts, c.edges, seq, k, c.wantSeq, c.wantK)
		}
	}
}

func TestStandardizeImprovesRE(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeqLength = 8
	st := newStandardizer(t, cfg)
	res, err := st.Standardize(script.MustParse(userScript))
	if err != nil {
		t.Fatal(err)
	}
	if res.ImprovementPct <= 0 {
		t.Fatalf("improvement = %v, want > 0", res.ImprovementPct)
	}
	if res.REAfter >= res.REBefore {
		t.Fatalf("RE did not decrease: %v -> %v", res.REBefore, res.REAfter)
	}
	// Output must execute.
	srcs := map[string]*frame.Frame{"diabetes.csv": diabetesFrame(t, 120)}
	if err := interp.CheckExecutes(res.Output, srcs, interp.Options{Seed: 1}); err != nil {
		t.Fatalf("output script does not execute: %v\n%s", err, res.Output.Source())
	}
}

func TestStandardizeRespectsJaccard(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeqLength = 8
	cfg.Constraint = intent.Constraint{Measure: intent.MeasureJaccard, Tau: 0.9}
	st := newStandardizer(t, cfg)
	su := script.MustParse(userScript)
	res, err := st.Standardize(su)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Source() != dag.Build(su).Script.Source() {
		// A modification was accepted: the measured Jaccard must satisfy τ.
		if res.IntentValue < 0.9 {
			t.Fatalf("intent value %v violates τ=0.9", res.IntentValue)
		}
	}
}

func TestStandardizeAddsCommonStep(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeqLength = 8
	cfg.Constraint.Tau = 0.5 // lenient: allow the outlier filter through
	st := newStandardizer(t, cfg)
	res, err := st.Standardize(script.MustParse(userScript))
	if err != nil {
		t.Fatal(err)
	}
	out := res.Output.Source()
	if !strings.Contains(out, "df = df.fillna(df.mean())") &&
		!strings.Contains(out, `df = df[df["SkinThickness"] < 80]`) &&
		!strings.Contains(out, `y = df["Outcome"]`) {
		t.Fatalf("no corpus-common step added:\n%s", out)
	}
}

func TestStandardizeDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeqLength = 4
	a, err := newStandardizer(t, cfg).Standardize(script.MustParse(userScript))
	if err != nil {
		t.Fatal(err)
	}
	b, err := newStandardizer(t, cfg).Standardize(script.MustParse(userScript))
	if err != nil {
		t.Fatal(err)
	}
	if a.Output.Source() != b.Output.Source() {
		t.Fatalf("non-deterministic:\n%s\nvs\n%s", a.Output.Source(), b.Output.Source())
	}
}

func TestStandardizeInputMustExecute(t *testing.T) {
	st := newStandardizer(t, DefaultConfig())
	bad := script.MustParse(`import pandas as pd
df = pd.read_csv("nope.csv")
`)
	_, err := st.Standardize(bad)
	if !errors.Is(err, ErrInputScriptFails) {
		t.Fatalf("err = %v, want ErrInputScriptFails", err)
	}
}

func TestLateCheckingStillExecutable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeqLength = 6
	cfg.EarlyCheck = false
	st := newStandardizer(t, cfg)
	res, err := st.Standardize(script.MustParse(userScript))
	if err != nil {
		t.Fatal(err)
	}
	srcs := map[string]*frame.Frame{"diabetes.csv": diabetesFrame(t, 120)}
	if err := interp.CheckExecutes(res.Output, srcs, interp.Options{Seed: 1}); err != nil {
		t.Fatalf("late-checked output does not execute: %v", err)
	}
}

func TestDiversityOffRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeqLength = 4
	cfg.Diversity = false
	st := newStandardizer(t, cfg)
	res, err := st.Standardize(script.MustParse(userScript))
	if err != nil {
		t.Fatal(err)
	}
	if res.ImprovementPct < 0 {
		t.Fatalf("improvement = %v", res.ImprovementPct)
	}
}

func TestLongerSequencesDoNotHurt(t *testing.T) {
	base := DefaultConfig()
	base.Constraint.Tau = 0.5
	imp := map[int]float64{}
	for _, seq := range []int{2, 8} {
		cfg := base
		cfg.SeqLength = seq
		res, err := newStandardizer(t, cfg).Standardize(script.MustParse(userScript))
		if err != nil {
			t.Fatal(err)
		}
		imp[seq] = res.ImprovementPct
	}
	if imp[8] < imp[2]-1e-9 {
		t.Fatalf("seq=8 (%v) worse than seq=2 (%v)", imp[8], imp[2])
	}
}

func TestMonotonicityOfAppliedPositions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeqLength = 8
	cfg.Constraint.Tau = 0.5
	st := newStandardizer(t, cfg)
	res, err := st.Standardize(script.MustParse(userScript))
	if err != nil {
		t.Fatal(err)
	}
	low := 0
	for _, tr := range res.Applied {
		if tr.Pos < low {
			t.Fatalf("transformation %v violates monotonicity (low water %d)", tr, low)
		}
		if tr.Type == TransformAdd {
			low = tr.Pos + 1
		} else {
			low = tr.Pos - 1
			if low < 0 {
				low = 0
			}
		}
	}
}

func TestTimingsPopulated(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeqLength = 4
	st := newStandardizer(t, cfg)
	res, err := st.Standardize(script.MustParse(userScript))
	if err != nil {
		t.Fatal(err)
	}
	if res.Timings.Total <= 0 || res.Timings.GetSteps <= 0 {
		t.Fatalf("timings not populated: %+v", res.Timings)
	}
	if res.ExecChecks == 0 {
		t.Fatal("no execution checks recorded")
	}
}

func TestProtectedLines(t *testing.T) {
	imp := dag.NewLineInfo(mustStmt(t, "import pandas as pd"))
	if !protectedLine(imp) {
		t.Fatal("import should be protected")
	}
	rc := dag.NewLineInfo(mustStmt(t, `df = pd.read_csv("x.csv")`))
	if !protectedLine(rc) {
		t.Fatal("read_csv should be protected")
	}
	fn := dag.NewLineInfo(mustStmt(t, "df = df.dropna()"))
	if protectedLine(fn) {
		t.Fatal("dropna should not be protected")
	}
}

func mustStmt(t *testing.T, src string) script.Stmt {
	t.Helper()
	st, err := script.ParseStmt(src)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestEarliestInsertPos(t *testing.T) {
	lines := []dag.LineInfo{
		dag.NewLineInfo(mustStmt(t, "import pandas as pd")),
		dag.NewLineInfo(mustStmt(t, `df = pd.read_csv("x.csv")`)),
	}
	atom := dag.NewLineInfo(mustStmt(t, "df = df.dropna()"))
	if got := earliestInsertPos(lines, atom); got != 2 {
		t.Fatalf("pos = %d, want 2", got)
	}
	orphan := dag.NewLineInfo(mustStmt(t, "df2 = df2.dropna()"))
	if got := earliestInsertPos(lines, orphan); got != -1 {
		t.Fatalf("orphan pos = %d, want -1", got)
	}
	importAtom := dag.NewLineInfo(mustStmt(t, "import numpy as np"))
	if got := earliestInsertPos(lines, importAtom); got != 0 {
		t.Fatalf("no-reads pos = %d, want 0", got)
	}
}

func TestCandidateApply(t *testing.T) {
	st := newStandardizer(t, DefaultConfig())
	g := dag.Build(script.MustParse(userScript))
	c := &candidate{lines: g.Lines, re: st.Corpus.Vocab.RELines(g.Lines)}
	atom := st.Corpus.Vocab.Lines["df = df.fillna(df.mean())"]
	added := c.apply(Transformation{Type: TransformAdd, Atom: atom, Pos: 2}, st.Corpus.Vocab)
	if len(added.lines) != len(c.lines)+1 {
		t.Fatal("add did not grow the script")
	}
	if added.lowWater != 3 {
		t.Fatalf("lowWater = %d", added.lowWater)
	}
	del := c.apply(Transformation{Type: TransformDelete, Atom: c.lines[2], Pos: 2}, st.Corpus.Vocab)
	if len(del.lines) != len(c.lines)-1 {
		t.Fatal("delete did not shrink the script")
	}
	if del.lowWater != 1 {
		t.Fatalf("delete lowWater = %d (deletes allow one step back)", del.lowWater)
	}
	// The original candidate is untouched.
	if len(c.lines) != g.Script.NumStmts() {
		t.Fatal("apply mutated the parent candidate")
	}
}

func TestGetStepsRankedByRE(t *testing.T) {
	st := newStandardizer(t, DefaultConfig())
	g := dag.Build(script.MustParse(userScript))
	c := &candidate{lines: g.Lines, re: st.Corpus.Vocab.RELines(g.Lines)}
	steps := getSteps(c, st.Corpus.Vocab)
	if len(steps) == 0 {
		t.Fatal("no steps enumerated")
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].RE < steps[i-1].RE-1e-12 {
			t.Fatal("steps not sorted by RE")
		}
	}
	// The best step should reduce RE relative to the current script.
	if steps[0].RE >= c.re {
		t.Fatalf("best step RE %v should beat current %v", steps[0].RE, c.re)
	}
}

func TestKMeansBasic(t *testing.T) {
	vecs := [][]float64{{0, 0}, {0, 0.1}, {5, 5}, {5, 5.1}}
	assign := kmeans(vecs, 2, 10)
	if assign[0] != assign[1] || assign[2] != assign[3] || assign[0] == assign[2] {
		t.Fatalf("kmeans assignment = %v", assign)
	}
	if got := kmeans(nil, 3, 5); len(got) != 0 {
		t.Fatal("empty kmeans")
	}
	one := kmeans([][]float64{{1}}, 3, 5)
	if len(one) != 1 || one[0] != 0 {
		t.Fatalf("single-point kmeans = %v", one)
	}
}

func TestTransformationString(t *testing.T) {
	tr := Transformation{Type: TransformAdd, Pos: 3, Atom: dag.LineInfo{Key: "df = df.dropna()"}}
	s := tr.String()
	if !strings.Contains(s, "add") || !strings.Contains(s, "@3") || !strings.Contains(s, "dropna") {
		t.Fatalf("String() = %q", s)
	}
	if TransformDelete.String() != "delete" {
		t.Fatal("delete name")
	}
}

func TestVerifyFallsBackToOriginal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeqLength = 4
	// Impossible constraint: model measure with an absent target column in a
	// modified frame — use τ_J slightly above anything achievable by
	// row-changing candidates AND forbid intent-neutral wins by requiring
	// exact identity plus a corpus whose common steps all change the table.
	cfg.Constraint = intent.Constraint{Measure: intent.MeasureJaccard, Tau: 1.0}
	sources := map[string]*frame.Frame{"diabetes.csv": diabetesFrame(t, 60)}
	corpus := []*script.Script{
		script.MustParse("import pandas as pd\ndf = pd.read_csv(\"diabetes.csv\")\ndf = df[df[\"Age\"] < 40]\n"),
		script.MustParse("import pandas as pd\ndf = pd.read_csv(\"diabetes.csv\")\ndf = df[df[\"Age\"] < 40]\n"),
	}
	st := New(corpus, sources, cfg)
	su := script.MustParse("import pandas as pd\ndf = pd.read_csv(\"diabetes.csv\")\ndf = df.fillna(df.median())\n")
	res, err := st.Standardize(su)
	if err != nil {
		t.Fatal(err)
	}
	// The age filter removes rows, so τ_J=1.0 rejects every candidate and
	// the original script must come back.
	if res.ImprovementPct != 0 {
		t.Fatalf("expected fallback, got improvement %v:\n%s", res.ImprovementPct, res.Output.Source())
	}
}

func TestModelConstraintRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeqLength = 4
	cfg.Constraint = intent.Constraint{
		Measure: intent.MeasureModel,
		Tau:     5,
		Model:   intent.ModelConfig{Target: "Outcome"},
	}
	st := newStandardizer(t, cfg)
	res, err := st.Standardize(script.MustParse(userScript))
	if err != nil {
		t.Fatal(err)
	}
	if res.ImprovementPct < 0 {
		t.Fatalf("improvement = %v", res.ImprovementPct)
	}
}

func TestParallelWorkersProduceValidResult(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeqLength = 8
	cfg.Constraint.Tau = 0.5
	cfg.Workers = 4
	st := newStandardizer(t, cfg)
	res, err := st.Standardize(script.MustParse(userScript))
	if err != nil {
		t.Fatal(err)
	}
	if res.ImprovementPct <= 0 {
		t.Fatalf("parallel improvement = %v", res.ImprovementPct)
	}
	srcs := map[string]*frame.Frame{"diabetes.csv": diabetesFrame(t, 120)}
	if err := interp.CheckExecutes(res.Output, srcs, interp.Options{Seed: 1}); err != nil {
		t.Fatalf("parallel output does not execute: %v", err)
	}
	// Deterministic across repeated parallel runs.
	res2, err := newStandardizer(t, cfg).Standardize(script.MustParse(userScript))
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Source() != res2.Output.Source() {
		t.Fatalf("parallel search not deterministic:\n%s\nvs\n%s",
			res.Output.Source(), res2.Output.Source())
	}
}

func TestParallelMatchesSequentialQuality(t *testing.T) {
	base := DefaultConfig()
	base.SeqLength = 6
	base.Constraint.Tau = 0.5
	seq, err := newStandardizer(t, base).Standardize(script.MustParse(userScript))
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Workers = 3
	pres, err := newStandardizer(t, par).Standardize(script.MustParse(userScript))
	if err != nil {
		t.Fatal(err)
	}
	// Cross-beam dedup differs, so outputs may differ; quality must be in
	// the same ballpark (within 15 percentage points).
	if pres.ImprovementPct < seq.ImprovementPct-15 {
		t.Fatalf("parallel quality degraded: %v vs %v", pres.ImprovementPct, seq.ImprovementPct)
	}
}
