package core

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lucidscript/internal/dag"
	"lucidscript/internal/entropy"
	"lucidscript/internal/faults"
	"lucidscript/internal/frame"
	"lucidscript/internal/interp"
	"lucidscript/internal/script"
)

// CuratedCorpus is the reusable output of the offline phase (Section 5.1):
// the atom/edge vocabularies and corpus distribution Q(x), the input
// datasets, and the MaxRows-sampled execution sources. One CuratedCorpus
// serves every standardization against the same corpus — the single-shot
// path, threshold sweeps, and the batch engine all share it, so a batch of
// N jobs pays for curation exactly once. All fields are read-only after
// Curate (the sample memo is mutex-guarded), making the value safe for
// concurrent use.
type CuratedCorpus struct {
	// Vocab holds the atoms, n-grams, edges and the corpus distribution.
	Vocab *entropy.Vocab
	// Sources are the input datasets, keyed by file name.
	Sources map[string]*frame.Frame
	// CurateTime records how long the offline phase took.
	CurateTime time.Duration
	// Diagnostics lists the corpus scripts curation skipped instead of
	// aborting on: one entry per script whose lemmatization failed (or was
	// chaos-injected to fail), with the contained cause. An empty slice is
	// the healthy case.
	Diagnostics []CurateDiagnostic
	// Version identifies the corpus snapshot this curation came from when
	// the corpus is registry-backed (monotonically increasing, assigned at
	// publish). Zero means the corpus was curated in-process and never
	// versioned. Deterministic per-job fault keys include a non-zero
	// version so a chaos rule armed at "job 3" does not silently re-fire
	// on job 3 of every hot-swapped corpus generation.
	Version int64

	// sampled memoizes the MaxRows-sampled sources so the per-candidate
	// path never pays the sampling loop (optimization 5 runs once, not once
	// per execution).
	sampleMu   sync.Mutex
	sampledKey sampleKey
	sampled    map[string]*frame.Frame
}

type sampleKey struct {
	maxRows int
	seed    int64
}

// Curate lemmatizes the corpus scripts, converts each to its DAG, and
// builds the vocabularies and corpus distribution.
func Curate(corpus []*script.Script, sources map[string]*frame.Frame) *CuratedCorpus {
	return CurateWeighted(corpus, nil, sources)
}

// curateCalls counts Curate invocations process-wide so tests and
// benchmarks can assert that a batch of N jobs curates exactly once.
var curateCalls atomic.Int64

// CurateCalls returns how many times Curate has run in this process.
func CurateCalls() int64 { return curateCalls.Load() }

// CurateWeighted is Curate with per-script corpus weights (e.g. Kaggle
// votes, see Section 8); a script with weight w counts as w copies in the
// corpus distribution. Nil weights or non-positive entries default to 1.
func CurateWeighted(corpus []*script.Script, weights []int, sources map[string]*frame.Frame) *CuratedCorpus {
	return CurateWeightedFaults(corpus, weights, sources, nil)
}

// ErrCurateSkipped marks a corpus script that curation dropped instead of
// letting its failure abort the offline phase.
var ErrCurateSkipped = errors.New("core: corpus script skipped during curation")

// CurateDiagnostic records one corpus script curation skipped.
type CurateDiagnostic struct {
	// Index is the script's position in the submitted corpus.
	Index int
	// Err is the contained cause, wrapping ErrCurateSkipped (and the panic
	// value or injected fault underneath).
	Err error
}

// CurateWeightedFaults is CurateWeighted with graceful per-script
// degradation and an optional chaos-injection hook: a script whose
// lemmatization panics (or is injected to fail at faults.SiteCurateScript)
// is skipped and recorded in Diagnostics — with its weight dropped
// alongside it — instead of aborting the whole offline phase. The corpus
// distribution is then built over the surviving scripts.
func CurateWeightedFaults(corpus []*script.Script, weights []int, sources map[string]*frame.Frame, inj *faults.Injector) *CuratedCorpus {
	curateCalls.Add(1)
	start := time.Now()
	graphs := make([]*dag.Graph, 0, len(corpus))
	kept := weights
	if weights != nil {
		kept = make([]int, 0, len(weights))
	}
	var diags []CurateDiagnostic
	for i, s := range corpus {
		g, err := buildGraphIsolated(i, s, inj)
		if err != nil {
			diags = append(diags, CurateDiagnostic{Index: i, Err: err})
			continue
		}
		graphs = append(graphs, g)
		if weights != nil && i < len(weights) {
			kept = append(kept, weights[i])
		}
	}
	return &CuratedCorpus{
		Vocab:       entropy.BuildVocabWeighted(graphs, kept),
		Sources:     sources,
		CurateTime:  time.Since(start),
		Diagnostics: diags,
	}
}

// buildGraphIsolated lemmatizes one corpus script with panic containment
// and the curation chaos site armed.
func buildGraphIsolated(i int, s *script.Script, inj *faults.Injector) (g *dag.Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			if perr, ok := r.(error); ok {
				err = fmt.Errorf("%w: script %d: %w", ErrCurateSkipped, i, perr)
			} else {
				err = fmt.Errorf("%w: script %d: %v", ErrCurateSkipped, i, r)
			}
		}
	}()
	if f := inj.Fire(faults.SiteCurateScript, strconv.Itoa(i)); f != nil {
		return nil, fmt.Errorf("%w: script %d: %w", ErrCurateSkipped, i, f.Err)
	}
	return dag.Build(s), nil
}

// ExecSources returns the sources every candidate executes against, with
// MaxRows sampling applied once and memoized per (maxRows, seed). A
// non-positive maxRows disables sampling. Safe for concurrent use.
func (cc *CuratedCorpus) ExecSources(maxRows int, seed int64) map[string]*frame.Frame {
	if maxRows <= 0 {
		return cc.Sources
	}
	if seed == 0 {
		seed = 1
	}
	key := sampleKey{maxRows: maxRows, seed: seed}
	cc.sampleMu.Lock()
	defer cc.sampleMu.Unlock()
	if cc.sampled == nil || cc.sampledKey != key {
		cc.sampled = interp.SampleSources(cc.Sources, maxRows, seed)
		cc.sampledKey = key
	}
	return cc.sampled
}
