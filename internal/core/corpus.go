package core

import (
	"sync"
	"sync/atomic"
	"time"

	"lucidscript/internal/dag"
	"lucidscript/internal/entropy"
	"lucidscript/internal/frame"
	"lucidscript/internal/interp"
	"lucidscript/internal/script"
)

// CuratedCorpus is the reusable output of the offline phase (Section 5.1):
// the atom/edge vocabularies and corpus distribution Q(x), the input
// datasets, and the MaxRows-sampled execution sources. One CuratedCorpus
// serves every standardization against the same corpus — the single-shot
// path, threshold sweeps, and the batch engine all share it, so a batch of
// N jobs pays for curation exactly once. All fields are read-only after
// Curate (the sample memo is mutex-guarded), making the value safe for
// concurrent use.
type CuratedCorpus struct {
	// Vocab holds the atoms, n-grams, edges and the corpus distribution.
	Vocab *entropy.Vocab
	// Sources are the input datasets, keyed by file name.
	Sources map[string]*frame.Frame
	// CurateTime records how long the offline phase took.
	CurateTime time.Duration

	// sampled memoizes the MaxRows-sampled sources so the per-candidate
	// path never pays the sampling loop (optimization 5 runs once, not once
	// per execution).
	sampleMu   sync.Mutex
	sampledKey sampleKey
	sampled    map[string]*frame.Frame
}

type sampleKey struct {
	maxRows int
	seed    int64
}

// Curate lemmatizes the corpus scripts, converts each to its DAG, and
// builds the vocabularies and corpus distribution.
func Curate(corpus []*script.Script, sources map[string]*frame.Frame) *CuratedCorpus {
	return CurateWeighted(corpus, nil, sources)
}

// curateCalls counts Curate invocations process-wide so tests and
// benchmarks can assert that a batch of N jobs curates exactly once.
var curateCalls atomic.Int64

// CurateCalls returns how many times Curate has run in this process.
func CurateCalls() int64 { return curateCalls.Load() }

// CurateWeighted is Curate with per-script corpus weights (e.g. Kaggle
// votes, see Section 8); a script with weight w counts as w copies in the
// corpus distribution. Nil weights or non-positive entries default to 1.
func CurateWeighted(corpus []*script.Script, weights []int, sources map[string]*frame.Frame) *CuratedCorpus {
	curateCalls.Add(1)
	start := time.Now()
	graphs := make([]*dag.Graph, len(corpus))
	for i, s := range corpus {
		graphs[i] = dag.Build(s)
	}
	return &CuratedCorpus{
		Vocab:      entropy.BuildVocabWeighted(graphs, weights),
		Sources:    sources,
		CurateTime: time.Since(start),
	}
}

// ExecSources returns the sources every candidate executes against, with
// MaxRows sampling applied once and memoized per (maxRows, seed). A
// non-positive maxRows disables sampling. Safe for concurrent use.
func (cc *CuratedCorpus) ExecSources(maxRows int, seed int64) map[string]*frame.Frame {
	if maxRows <= 0 {
		return cc.Sources
	}
	if seed == 0 {
		seed = 1
	}
	key := sampleKey{maxRows: maxRows, seed: seed}
	cc.sampleMu.Lock()
	defer cc.sampleMu.Unlock()
	if cc.sampled == nil || cc.sampledKey != key {
		cc.sampled = interp.SampleSources(cc.Sources, maxRows, seed)
		cc.sampledKey = key
	}
	return cc.sampled
}
