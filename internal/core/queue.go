package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"lucidscript/internal/interp"
	"lucidscript/internal/obs"
	"lucidscript/internal/script"
)

// The admission-control sentinels surfaced by Queue.Submit.
var (
	// ErrQueueFull reports that a job was rejected because the queue's
	// bounded buffer is at capacity; the caller should retry later (an HTTP
	// front end translates it to 429).
	ErrQueueFull = errors.New("core: job queue is full")
	// ErrQueueClosed reports a submission to (or a job drained by) a queue
	// that is shutting down; an HTTP front end translates it to 503.
	ErrQueueClosed = errors.New("core: job queue is closed")
)

// JobState is the lifecycle position of one queued job.
type JobState int32

// The job lifecycle: Submit parks a job at JobQueued, a worker moves it to
// JobRunning, and completion (success, failure, or cancellation) lands it
// at JobDone.
const (
	JobQueued JobState = iota
	JobRunning
	JobDone
)

// String names the state for JSON status payloads and logs.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	}
	return "done"
}

// QueuedJob is one standardization admitted into a Queue. Submit returns it
// immediately; the result becomes available when Done is closed.
type QueuedJob struct {
	id      int64
	script  *script.Script
	ctx     context.Context
	cancel  context.CancelFunc
	done    chan struct{}
	state   atomic.Int32
	observe func(JobState)
	res     *Result
	err     error
}

// ID is the job's queue-assigned sequence number (0-based). It doubles as
// the faults.SiteBatchJob key, so chaos tests can arm a fault at one exact
// queued job.
func (j *QueuedJob) ID() int64 { return j.id }

// State reports where the job is in its lifecycle.
func (j *QueuedJob) State() JobState { return JobState(j.state.Load()) }

// Done is closed when the job finishes — successfully, with an error, or
// by cancellation.
func (j *QueuedJob) Done() <-chan struct{} { return j.done }

// Cancel stops the job: a queued job completes with ErrCanceled without
// running; a running job stops mid-search with the partial-result-on-cancel
// semantics of StandardizeContext. Safe to call at any time, repeatedly.
func (j *QueuedJob) Cancel() { j.cancel() }

// Result blocks until the job finishes (Done is closed) and returns its
// outcome; both values follow StandardizeContext conventions (a partial
// Result can accompany a cancellation error). Callers that already watched
// Done return immediately; use Wait for a bounded block.
func (j *QueuedJob) Result() (*Result, error) {
	<-j.done
	return j.res, j.err
}

// Wait blocks until the job finishes or ctx is canceled. A ctx cancellation
// abandons only the wait — the job itself keeps running (use Cancel to stop
// it).
func (j *QueuedJob) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-j.done:
		return j.res, j.err
	case <-ctx.Done():
		return nil, ctxCause(ctx)
	}
}

// finish records the outcome and releases waiters. done is closed before
// the state flips to JobDone, so an observer that reads State() == JobDone
// is guaranteed a non-blocking Result.
func (j *QueuedJob) finish(res *Result, err error) {
	j.res, j.err = res, err
	close(j.done)
	j.state.Store(int32(JobDone))
	j.cancel()
	if j.observe != nil {
		j.observe(JobDone)
	}
}

// QueueStats is a point-in-time snapshot of a Queue's admission state.
type QueueStats struct {
	// Depth is how many admitted jobs are waiting for a worker right now;
	// Capacity is the bound admission control enforces.
	Depth, Capacity int
	// Workers is the size of the worker pool consuming the queue.
	Workers int
	// Running is how many jobs workers are executing right now.
	Running int
	// Submitted, Rejected, Completed, and Failed are cumulative counts
	// since the queue was built (Failed ⊆ Completed; a canceled job counts
	// as failed).
	Submitted, Rejected, Completed, Failed int64
}

// Queue is a long-lived, admission-controlled job queue over an Engine's
// worker pool — the serving counterpart of the one-shot StandardizeBatch.
// All jobs share the engine's curated corpus and one execution-prefix
// session cache, so a service keeps paying curation exactly once while
// requests arrive over hours, and concurrent jobs reuse each other's
// executed statement prefixes exactly as a batch does.
//
// Submit never blocks: a job either enters the bounded buffer or is
// rejected with ErrQueueFull, which is what lets an HTTP front end shed
// load with 429s instead of stacking goroutines. Close drains gracefully —
// in-flight jobs finish, still-buffered jobs fail with ErrQueueClosed.
type Queue struct {
	eng    *Engine
	shared *interp.SessionCache
	jobs   chan *QueuedJob
	closed chan struct{}
	wg     sync.WaitGroup

	mu       sync.Mutex
	isClosed bool

	seq                         atomic.Int64
	rejected, completed, failed atomic.Int64
	depth, running              atomic.Int64
}

// NewQueue builds a running queue over the engine: its workers start
// immediately and consume jobs until Close. depth bounds how many admitted
// jobs may wait for a worker (0 means no buffer — a job is only admitted
// when a worker is free to take it promptly; admission still never blocks).
func (e *Engine) NewQueue(depth int) *Queue {
	if depth < 0 {
		depth = 0
	}
	q := &Queue{
		eng: e,
		// The shared cache is scaled for the pool's concurrency, exactly
		// like a batch of that many jobs.
		shared: e.std.newSessionScaled(e.workers),
		jobs:   make(chan *QueuedJob, depth),
		closed: make(chan struct{}),
	}
	for i := 0; i < e.workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// Submit admits one job without blocking: the returned QueuedJob is live
// (watch Done, then call Result), or the error is ErrQueueFull when the
// buffer is at capacity and ErrQueueClosed once Close has begun. ctx covers
// the job's whole life — canceling it while the job is still queued makes
// the job complete with ErrCanceled without running.
func (q *Queue) Submit(ctx context.Context, su *script.Script) (*QueuedJob, error) {
	return q.SubmitObserved(ctx, su, nil)
}

// SubmitObserved is Submit with a state-transition hook: observe is called
// with JobRunning when a worker picks the job up and with JobDone when it
// finishes (after the outcome is recorded and Done is closed). It is the
// durability hook — a persistent front end appends each transition to its
// write-ahead log from here. observe runs on the worker goroutine, so it
// must be fast and must not call back into the queue; it is never called
// for a rejected submission.
func (q *Queue) SubmitObserved(ctx context.Context, su *script.Script, observe func(JobState)) (*QueuedJob, error) {
	jctx, cancel := context.WithCancel(ctx)
	j := &QueuedJob{
		script:  su,
		ctx:     jctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		observe: observe,
	}
	// Admission is under the mutex so a Submit can never slip a job into
	// the buffer after Close's drain pass: Close flips isClosed under the
	// same lock before draining. The id is assigned only on admission, so
	// queue ids stay dense (0, 1, 2, …) no matter how many submissions were
	// rejected — which is what makes the id usable as the batch-index fault
	// key and trace label.
	q.mu.Lock()
	if q.isClosed {
		q.mu.Unlock()
		cancel()
		q.rejected.Add(1)
		return nil, ErrQueueClosed
	}
	j.id = q.seq.Add(1) - 1
	select {
	case q.jobs <- j:
		q.depth.Add(1)
		q.mu.Unlock()
		q.metricAdd(obs.MQueueDepth, 1)
		q.metricAdd(obs.MJobsSubmitted, 1)
		return j, nil
	default:
		// Un-consume the id: seq is only ever touched under mu, so this
		// cannot race another Submit.
		q.seq.Add(-1)
		q.mu.Unlock()
		cancel()
		q.rejected.Add(1)
		q.metricAdd(obs.MJobsRejected, 1)
		return nil, ErrQueueFull
	}
}

// Close stops admission, waits for in-flight jobs to finish, and fails
// every still-buffered job with ErrQueueClosed. It is idempotent and safe
// to call concurrently; every call blocks until the drain completes.
func (q *Queue) Close() {
	q.mu.Lock()
	first := !q.isClosed
	q.isClosed = true
	q.mu.Unlock()
	if first {
		close(q.closed)
	}
	q.wg.Wait()
	for {
		select {
		case j, ok := <-q.jobs:
			if !ok {
				// Drain closed the buffer after emptying it.
				return
			}
			q.depth.Add(-1)
			q.metricAdd(obs.MQueueDepth, -1)
			q.recordOutcome(ErrQueueClosed)
			j.finish(nil, ErrQueueClosed)
		default:
			return
		}
	}
}

// Drain retires the queue gracefully: admission stops (further Submits
// return ErrQueueClosed), but — unlike Close — every already-admitted job
// still runs to completion before the workers exit. It is the hot-swap
// retirement path: a server that replaced this queue's corpus snapshot
// drains the old queue so jobs admitted against the old corpus version
// finish on the version they started with. Idempotent, safe to call
// concurrently with Close (whichever flips the closed flag first decides
// the buffered jobs' fate), and blocks until the last job lands.
func (q *Queue) Drain() {
	q.mu.Lock()
	if q.isClosed {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.isClosed = true
	// Closing the buffer is safe: submissions only send under mu after
	// checking isClosed, which is now set. Workers keep receiving until
	// the buffer is empty, then see the close and exit.
	close(q.jobs)
	q.mu.Unlock()
	q.wg.Wait()
}

// Stats snapshots the queue's admission state for health endpoints.
func (q *Queue) Stats() QueueStats {
	return QueueStats{
		Depth:     int(q.depth.Load()),
		Capacity:  cap(q.jobs),
		Workers:   q.eng.workers,
		Running:   int(q.running.Load()),
		Submitted: q.seq.Load(),
		Rejected:  q.rejected.Load(),
		Completed: q.completed.Load(),
		Failed:    q.failed.Load(),
	}
}

// worker consumes jobs until the queue closes. A buffered job received
// while q.closed is also ready is re-checked after the select — Go picks
// between ready cases randomly, so without the re-check a buffered job
// could race a concurrent Close into execution. Close's contract is that
// buffered jobs drain with ErrQueueClosed once shutdown has begun, and the
// re-check is what delivers it: any job pulled at or after the close is
// failed here instead of run.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		select {
		case <-q.closed:
			return
		case j, ok := <-q.jobs:
			if !ok {
				// Drain closed the buffer: every admitted job has been
				// received (and run) by some worker; nothing is left.
				return
			}
			q.depth.Add(-1)
			q.metricAdd(obs.MQueueDepth, -1)
			select {
			case <-q.closed:
				q.recordOutcome(ErrQueueClosed)
				j.finish(nil, ErrQueueClosed)
				return
			default:
			}
			q.run(j)
		}
	}
}

// run executes one job on the engine, reusing the batch path's per-job
// deadline, panic isolation, fault-injection site, and trace attribution
// (the job's queue id is its batch index).
func (q *Queue) run(j *QueuedJob) {
	if err := j.ctx.Err(); err != nil {
		cause := ctxCause(j.ctx)
		q.recordOutcome(cause)
		j.finish(nil, cause)
		return
	}
	j.state.Store(int32(JobRunning))
	if j.observe != nil {
		j.observe(JobRunning)
	}
	q.running.Add(1)
	res, err := q.eng.runJob(j.ctx, q.shared, int(j.id), j.script)
	q.running.Add(-1)
	q.recordOutcome(err)
	j.finish(res, err)
}

// recordOutcome folds one finished job into the cumulative counters.
func (q *Queue) recordOutcome(err error) {
	q.completed.Add(1)
	q.metricAdd(obs.MJobsCompleted, 1)
	if err != nil {
		q.failed.Add(1)
		q.metricAdd(obs.MJobsFailed, 1)
	}
}

// metricAdd updates the engine's metrics registry when one is configured.
func (q *Queue) metricAdd(name string, delta int64) {
	if m := q.eng.std.Config.Metrics; m != nil {
		m.Counter(name).Add(delta)
	}
}
