package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"lucidscript/internal/obs"
	"lucidscript/internal/script"
)

// batchJobs builds n distinct user scripts against the diabetes fixtures:
// each is the paper's Figure 1a sketch with a varying age filter, so every
// job exercises the full search but no two are the same statement sequence.
func batchJobs(t testing.TB, n int) []*script.Script {
	t.Helper()
	jobs := make([]*script.Script, n)
	for i := range jobs {
		src := fmt.Sprintf(`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.median())
df = df[df["Age"].between(18, %d)]
df = pd.get_dummies(df)
`, 25+i)
		jobs[i] = script.MustParse(src)
	}
	return jobs
}

func TestNewEngineResolvesWorkers(t *testing.T) {
	st := newStandardizer(t, DefaultConfig())
	if got := NewEngine(st, 0, 0).Workers(); got < 1 {
		t.Fatalf("Workers() = %d with workers=0, want >= 1", got)
	}
	if got := NewEngine(st, 3, 0).Workers(); got != 3 {
		t.Fatalf("Workers() = %d, want 3", got)
	}
}

func TestStandardizeBatchEmpty(t *testing.T) {
	st := newStandardizer(t, DefaultConfig())
	res, errs := NewEngine(st, 2, 0).StandardizeBatch(context.Background(), nil)
	if len(res) != 0 || len(errs) != 0 {
		t.Fatalf("empty batch returned %d results, %d errors", len(res), len(errs))
	}
}

// TestStandardizeBatchMatchesSequential is the determinism contract: each
// batch job's output must be byte-identical to a sequential Standardize of
// the same script on the same corpus, despite the shared session cache and
// arbitrary goroutine interleaving.
func TestStandardizeBatchMatchesSequential(t *testing.T) {
	st := newStandardizer(t, DefaultConfig())
	jobs := batchJobs(t, 6)

	want := make([]*Result, len(jobs))
	for i, su := range jobs {
		res, err := st.Standardize(su)
		if err != nil {
			t.Fatalf("sequential job %d: %v", i, err)
		}
		want[i] = res
	}

	got, errs := NewEngine(st, 4, 0).StandardizeBatch(context.Background(), jobs)
	if len(got) != len(jobs) || len(errs) != len(jobs) {
		t.Fatalf("batch returned %d results, %d errors for %d jobs", len(got), len(errs), len(jobs))
	}
	for i := range jobs {
		if errs[i] != nil {
			t.Fatalf("batch job %d: %v", i, errs[i])
		}
		if got[i] == nil {
			t.Fatalf("batch job %d: nil result", i)
		}
		if g, w := got[i].Output.Source(), want[i].Output.Source(); g != w {
			t.Errorf("job %d output diverges from sequential:\nbatch:\n%s\nsequential:\n%s", i, g, w)
		}
		if got[i].REBefore != want[i].REBefore || got[i].REAfter != want[i].REAfter {
			t.Errorf("job %d RE (%.6f -> %.6f) != sequential (%.6f -> %.6f)",
				i, got[i].REBefore, got[i].REAfter, want[i].REBefore, want[i].REAfter)
		}
		if len(got[i].Applied) != len(want[i].Applied) {
			t.Errorf("job %d applied %d transformations, sequential %d",
				i, len(got[i].Applied), len(want[i].Applied))
		}
	}
}

// TestStandardizeBatchSharesCache asserts the batch actually reuses the
// shared execution-prefix cache: across all jobs at least one statement
// execution must be a cache hit (every job starts with the same read_csv
// prefix), and per-job stats must be attributed to the job that saw them.
func TestStandardizeBatchSharesCache(t *testing.T) {
	st := newStandardizer(t, DefaultConfig())
	jobs := batchJobs(t, 4)
	res, errs := NewEngine(st, 2, 0).StandardizeBatch(context.Background(), jobs)
	var totalHits, totalExec int64
	for i := range jobs {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		cs := res[i].CacheStats
		if cs.Hits != cs.StmtsSkipped {
			t.Errorf("job %d: Hits=%d != StmtsSkipped=%d", i, cs.Hits, cs.StmtsSkipped)
		}
		if cs.Misses != cs.StmtsExecuted {
			t.Errorf("job %d: Misses=%d != StmtsExecuted=%d", i, cs.Misses, cs.StmtsExecuted)
		}
		totalHits += cs.Hits
		totalExec += cs.StmtsExecuted
	}
	if totalExec == 0 {
		t.Fatal("no statements executed across the batch")
	}
	if totalHits == 0 {
		t.Error("shared session cache saw zero hits across 4 sibling jobs")
	}
}

// TestStandardizeBatchPanicIsolation submits one job that panics inside the
// search (a nil script makes dag.Build dereference nil) and asserts the
// panic is converted to that job's error while every other job completes.
func TestStandardizeBatchPanicIsolation(t *testing.T) {
	st := newStandardizer(t, DefaultConfig())
	jobs := batchJobs(t, 3)
	jobs[1] = nil // panics inside the job goroutine
	res, errs := NewEngine(st, 2, 0).StandardizeBatch(context.Background(), jobs)
	if errs[1] == nil || !errors.Is(errs[1], ErrJobPanicked) {
		t.Fatalf("job 1 error = %v, want ErrJobPanicked", errs[1])
	}
	if res[1] != nil {
		t.Fatalf("panicked job returned a result: %+v", res[1])
	}
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Errorf("healthy job %d failed: %v", i, errs[i])
		}
		if res[i] == nil {
			t.Errorf("healthy job %d returned nil result", i)
		}
	}
}

// TestStandardizeBatchPerJobTimeout gives each job an unmeetable deadline
// and asserts every job individually reports ErrDeadlineExceeded instead of
// one expiry aborting the batch with a single error.
func TestStandardizeBatchPerJobTimeout(t *testing.T) {
	st := newStandardizer(t, DefaultConfig())
	jobs := batchJobs(t, 3)
	_, errs := NewEngine(st, 2, time.Nanosecond).StandardizeBatch(context.Background(), jobs)
	for i, err := range errs {
		if !errors.Is(err, ErrDeadlineExceeded) {
			t.Errorf("job %d error = %v, want ErrDeadlineExceeded", i, err)
		}
	}
}

func TestStandardizeBatchCanceledContext(t *testing.T) {
	st := newStandardizer(t, DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, errs := NewEngine(st, 2, 0).StandardizeBatch(ctx, batchJobs(t, 3))
	for i, err := range errs {
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("job %d error = %v, want ErrCanceled", i, err)
		}
	}
}

// TestStandardizeBatchTraceAttribution runs a traced batch and asserts
// every search event carries its job's 1-based index, so one shared tracer
// can untangle the interleaved streams.
func TestStandardizeBatchTraceAttribution(t *testing.T) {
	cfg := DefaultConfig()
	tr := obs.NewCollectTracer()
	cfg.Tracer = tr
	st := newStandardizer(t, cfg)
	jobs := batchJobs(t, 3)
	_, errs := NewEngine(st, 2, 0).StandardizeBatch(context.Background(), jobs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	seen := map[int]bool{}
	for _, ev := range tr.Events() {
		if ev.Job < 1 || ev.Job > len(jobs) {
			t.Fatalf("event %s carries job index %d, want 1..%d", ev.Kind, ev.Job, len(jobs))
		}
		if ev.Kind == obs.EvSearchDone {
			seen[ev.Job] = true
		}
	}
	for j := 1; j <= len(jobs); j++ {
		if !seen[j] {
			t.Errorf("no search_done event attributed to job %d", j)
		}
	}
}

// TestStandardizeBatchCacheDisabled covers the ExecCache=false path, where
// jobs run sessionless but must still produce sequential-identical output.
func TestStandardizeBatchCacheDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExecCache = false
	st := newStandardizer(t, cfg)
	jobs := batchJobs(t, 2)
	seq, err := st.Standardize(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	res, errs := NewEngine(st, 2, 0).StandardizeBatch(context.Background(), jobs)
	for i := range jobs {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if cs := res[i].CacheStats; cs.Hits+cs.Misses != 0 {
			t.Errorf("job %d reports cache traffic %+v with ExecCache off", i, cs)
		}
	}
	if g, w := res[0].Output.Source(), seq.Output.Source(); g != w {
		t.Errorf("cacheless batch output diverges from sequential:\n%s\nvs\n%s", g, w)
	}
}
