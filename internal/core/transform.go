package core

import (
	"fmt"
	"sort"

	"lucidscript/internal/dag"
	"lucidscript/internal/entropy"
)

// TransformType identifies the two transformation kinds of Definition 3.4
// (an edit is modeled as a delete followed by an add).
type TransformType int

// The transformation kinds.
const (
	TransformAdd TransformType = iota
	TransformDelete
)

// String names the transformation kind.
func (t TransformType) String() string {
	if t == TransformAdd {
		return "add"
	}
	return "delete"
}

// Transformation is one add/delete of a line atom at a position
// (Definition 3.4: type, what to change, where to change).
type Transformation struct {
	Type TransformType
	// Atom is the line atom added (for add) or removed (for delete).
	Atom dag.LineInfo
	// Pos is the insertion index (add inserts before the line currently at
	// Pos) or the index of the removed line (delete).
	Pos int
	// RE is the relative entropy of the script after applying the
	// transformation, filled in by GetSteps.
	RE float64
}

// String renders the transformation for logs and explanations.
func (tr Transformation) String() string {
	return fmt.Sprintf("%s @%d: %s", tr.Type, tr.Pos, tr.Atom.Key)
}

// candidate is one in-progress transformation sequence: the current line
// atoms, the score, the monotonicity low-water mark, and bookkeeping.
type candidate struct {
	lines    []dag.LineInfo
	re       float64
	lowWater int // transformations must not touch positions before this
	applied  []Transformation
	checked  bool       // execution already verified (early checking)
	parent   *candidate // lineage link for diversity-preserving selection
}

func (c *candidate) key() string {
	s := ""
	for _, li := range c.lines {
		s += li.Key + "\n"
	}
	return s
}

// apply returns the candidate produced by one transformation, enforcing
// monotonicity (optimization 3): the new low-water mark is the transformed
// position, so later transformations cannot modify earlier lines.
func (c *candidate) apply(tr Transformation, v *entropy.Vocab) *candidate {
	var lines []dag.LineInfo
	var low int
	switch tr.Type {
	case TransformAdd:
		lines = make([]dag.LineInfo, 0, len(c.lines)+1)
		lines = append(lines, c.lines[:tr.Pos]...)
		lines = append(lines, tr.Atom)
		lines = append(lines, c.lines[tr.Pos:]...)
		low = tr.Pos + 1
	case TransformDelete:
		lines = make([]dag.LineInfo, 0, len(c.lines)-1)
		lines = append(lines, c.lines[:tr.Pos]...)
		lines = append(lines, c.lines[tr.Pos+1:]...)
		// Allow the next delete one position earlier: removing a multi-line
		// block must proceed consumer-first (deleting a producer first breaks
		// execution), which walks backwards one line at a time. This cannot
		// repair non-executability (a consumer never precedes its producer in
		// straight-line code), so the monotonicity invariant is preserved.
		low = tr.Pos - 1
		if low < 0 {
			low = 0
		}
	}
	return &candidate{
		lines:    lines,
		re:       v.RELines(lines),
		lowWater: low,
		applied:  append(append([]Transformation(nil), c.applied...), tr),
		parent:   c,
	}
}

// protectedLine reports whether a line atom must not be deleted: imports and
// read_csv lines are load-bearing for every script in the corpus, so
// enumerating their deletion only wastes execution checks.
func protectedLine(li dag.LineInfo) bool {
	key := li.Key
	if len(key) >= 6 && key[:6] == "import" {
		return true
	}
	for i := 0; i+8 <= len(key); i++ {
		if key[i:i+8] == "read_csv" {
			return true
		}
	}
	return false
}

// writesConventional reports whether the atom writes a conventional split
// variable (such atoms may be placed at or after the split).
func writesConventional(atom dag.LineInfo) bool {
	for _, w := range atom.Writes {
		if dag.IsConventionalName(w) {
			return true
		}
	}
	return false
}

// earliestInsertPos returns the smallest insertion index at which every
// variable the atom reads has a writer earlier in the line sequence, or -1
// when some read variable has no writer at all.
func earliestInsertPos(lines []dag.LineInfo, atom dag.LineInfo) int {
	pos := 0
	for _, r := range atom.Reads {
		found := -1
		for i, li := range lines {
			for _, w := range li.Writes {
				if w == r {
					found = i
					break
				}
			}
			if found == i {
				break
			}
		}
		if found == -1 {
			return -1
		}
		if found+1 > pos {
			pos = found + 1
		}
	}
	return pos
}

// GetSteps enumerates and ranks the possible next transformations for a
// candidate (Section 5.2): deletes of existing atoms at positions past the
// low-water mark, and adds of corpus atoms at dependency-valid positions
// near their corpus mean relative position. The result is sorted by the RE
// of the resulting script, most standard first.
func getSteps(c *candidate, v *entropy.Vocab) []Transformation {
	return getStepsOpt(c, v, true)
}

func getStepsOpt(c *candidate, v *entropy.Vocab, lookahead bool) []Transformation {
	var steps []Transformation
	// Deletes. A single delete inside a connected block of corpus-unseen
	// atoms (e.g. an injected leakage snippet) barely moves RE because its
	// unseen edges merely re-route; the gain lands only when the whole block
	// is gone. Deletes of unseen atoms are therefore ranked by a chained-
	// delete lookahead: the best RE reachable by following up with more
	// deletes of unseen atoms.
	for i := c.lowWater; i < len(c.lines); i++ {
		if protectedLine(c.lines[i]) {
			continue
		}
		tr := Transformation{Type: TransformDelete, Atom: c.lines[i], Pos: i}
		tr.RE = reAfter(c, tr, v)
		if lookahead && v.LineCounts[c.lines[i].Key] == 0 {
			if la := deleteLookahead(c.lines, i, v, 3); la < tr.RE {
				tr.RE = la
			}
		}
		steps = append(steps, tr)
	}
	// Adds: every corpus line atom not already present, at up to three
	// candidate positions. Exact duplicates are excluded — repeating an
	// identical prep step never helps the data and would let the search
	// game the RE objective by stuffing common edges.
	present := map[string]bool{}
	for _, li := range c.lines {
		present[li.Key] = true
	}
	n := len(c.lines)
	// Preparation steps belong before the target split: cap insertion of
	// non-split atoms at the first line that writes a conventional split
	// variable (y, X, ...). The corpus's relative positions imply the same
	// ordering; the cap enforces it exactly.
	splitPos := n
	for i, li := range c.lines {
		for _, w := range li.Writes {
			if dag.IsConventionalName(w) {
				splitPos = i
				break
			}
		}
		if splitPos == i {
			break
		}
	}
	for _, key := range v.SortedLineKeys() {
		if present[key] {
			continue
		}
		atom := v.Lines[key]
		hi := n
		if !writesConventional(atom) && splitPos < hi {
			hi = splitPos
		}
		lo := earliestInsertPos(c.lines, atom)
		if lo < 0 {
			continue
		}
		if lo < c.lowWater {
			lo = c.lowWater
		}
		if lo > hi {
			continue
		}
		suggested := int(v.MeanPos[key]*float64(n) + 0.5)
		if suggested < lo {
			suggested = lo
		}
		if suggested > hi {
			suggested = hi
		}
		positions := []int{lo, suggested, hi}
		seen := map[int]bool{}
		for _, p := range positions {
			if seen[p] {
				continue
			}
			seen[p] = true
			tr := Transformation{Type: TransformAdd, Atom: atom, Pos: p}
			tr.RE = reAfter(c, tr, v)
			steps = append(steps, tr)
		}
	}
	sortSteps(steps)
	return steps
}

// deleteLookahead returns the best RE reachable from deleting lines[pos] and
// then greedily deleting up to depth-1 more corpus-unseen atoms at positions
// ≥ pos (respecting monotonicity). It is a ranking signal only; the beam
// still applies one delete at a time.
func deleteLookahead(lines []dag.LineInfo, pos int, v *entropy.Vocab, depth int) float64 {
	cur := append(append([]dag.LineInfo(nil), lines[:pos]...), lines[pos+1:]...)
	best := v.RELines(cur)
	low := pos - 1
	if low < 0 {
		low = 0
	}
	for d := 1; d < depth; d++ {
		bestI, bestRE := -1, best
		for i := low; i < len(cur); i++ {
			if protectedLine(cur[i]) || v.LineCounts[cur[i].Key] > 0 {
				continue
			}
			nl := append(append([]dag.LineInfo(nil), cur[:i]...), cur[i+1:]...)
			if re := v.RELines(nl); re < bestRE {
				bestRE, bestI = re, i
			}
		}
		if bestI < 0 {
			break
		}
		cur = append(append([]dag.LineInfo(nil), cur[:bestI]...), cur[bestI+1:]...)
		low = bestI - 1
		if low < 0 {
			low = 0
		}
		best = bestRE
	}
	return best
}

// reAfter scores a transformation by the RE of the resulting line sequence
// without materializing a candidate.
func reAfter(c *candidate, tr Transformation, v *entropy.Vocab) float64 {
	var lines []dag.LineInfo
	switch tr.Type {
	case TransformAdd:
		lines = make([]dag.LineInfo, 0, len(c.lines)+1)
		lines = append(lines, c.lines[:tr.Pos]...)
		lines = append(lines, tr.Atom)
		lines = append(lines, c.lines[tr.Pos:]...)
	case TransformDelete:
		lines = make([]dag.LineInfo, 0, len(c.lines)-1)
		lines = append(lines, c.lines[:tr.Pos]...)
		lines = append(lines, c.lines[tr.Pos+1:]...)
	}
	return v.RELines(lines)
}

// sortSteps orders transformations by ascending RE with deterministic
// tie-breaking.
func sortSteps(steps []Transformation) {
	sort.Slice(steps, func(i, j int) bool {
		a, b := steps[i], steps[j]
		if a.RE != b.RE {
			return a.RE < b.RE
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		return a.Atom.Key < b.Atom.Key
	})
}
