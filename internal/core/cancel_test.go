package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"lucidscript/internal/frame"
	"lucidscript/internal/obs"
	"lucidscript/internal/script"
)

func TestStandardizeContextPreCanceled(t *testing.T) {
	st := newStandardizer(t, DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := st.StandardizeContext(ctx, script.MustParse(userScript))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v should also match context.Canceled", err)
	}
	if res != nil {
		// The input never executed, so no partial result exists here.
		t.Fatalf("pre-canceled search returned a result: %+v", res)
	}
}

func TestStandardizeContextDeadlinePartialResult(t *testing.T) {
	// A dataset large enough that the full search takes well over the
	// deadline, so the 1ms timer reliably fires mid-search.
	cfg := DefaultConfig()
	sources := map[string]*frame.Frame{"diabetes.csv": diabetesFrame(t, 20000)}
	st := New(medicalCorpus(t), sources, cfg)
	input := script.MustParse(userScript)

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := st.StandardizeContext(ctx, input)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v should also match context.DeadlineExceeded", err)
	}
	// Promptness: a canceled search must not run to completion. The bound
	// is generous for CI noise; the real budget is ~10ms.
	if elapsed > 2*time.Second {
		t.Fatalf("canceled search took %s", elapsed)
	}
	if res != nil {
		// When the input itself executed before the deadline, the partial
		// result must fall back to the input script.
		if res.Output.Source() != script.MustParse(userScript).Source() {
			t.Fatalf("partial result output is not the input:\n%s", res.Output.Source())
		}
		if res.ImprovementPct != 0 {
			t.Fatalf("partial fallback claims improvement %.2f%%", res.ImprovementPct)
		}
	}
}

// cancelOnStep cancels the context the first time a given beam step
// completes, producing a deterministic mid-search cancellation.
type cancelOnStep struct {
	step   int
	cancel context.CancelFunc
}

func (c *cancelOnStep) Emit(e obs.Event) {
	if e.Kind == obs.EvStepDone && e.Step >= c.step {
		c.cancel()
	}
}

func TestStandardizeContextMidSearchCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		ctx, cancel := context.WithCancel(context.Background())
		cfg.Tracer = &cancelOnStep{step: 1, cancel: cancel}
		st := newStandardizer(t, cfg)
		res, err := st.StandardizeContext(ctx, script.MustParse(userScript))
		cancel()
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: err = %v, want ErrCanceled", workers, err)
		}
		if res == nil {
			t.Fatalf("workers=%d: mid-search cancel should return a partial result", workers)
		}
		// The partial result is the constraint-checked fallback: the input.
		if res.ImprovementPct != 0 {
			t.Fatalf("workers=%d: partial result claims improvement", workers)
		}
		if res.Timings.Total <= 0 {
			t.Fatalf("workers=%d: partial result missing timings", workers)
		}
	}
}

// TestStandardizerReusableAfterCancel cancels one search and immediately
// runs another on the same Standardizer: the memoized sampled sources and
// curated vocabulary must be unaffected by the abort.
func TestStandardizerReusableAfterCancel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeqLength = 6
	st := newStandardizer(t, cfg)
	input := script.MustParse(userScript)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := st.StandardizeContext(ctx, input); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled run: %v", err)
	}
	res, err := st.Standardize(input)
	if err != nil {
		t.Fatalf("follow-up run: %v", err)
	}
	if res.ImprovementPct <= 0 {
		t.Fatalf("follow-up run found no improvement: %+v", res)
	}
}

func TestTraceEventsOrderedAndReconcile(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeqLength = 6
	tr := obs.NewCollectTracer()
	cfg.Tracer = tr
	st := newStandardizer(t, cfg)
	res, err := st.Standardize(script.MustParse(userScript))
	if err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) < 4 {
		t.Fatalf("too few events: %d", len(events))
	}
	if events[0].Kind != obs.EvCurateDone {
		t.Fatalf("first event = %s, want curate_done", events[0].Kind)
	}
	if events[1].Kind != obs.EvSearchStart {
		t.Fatalf("second event = %s, want search_start", events[1].Kind)
	}
	last := events[len(events)-1]
	if last.Kind != obs.EvSearchDone {
		t.Fatalf("last event = %s, want search_done", last.Kind)
	}
	// The closing event's duration is the search's total wall clock.
	if last.Dur != res.Timings.Total {
		t.Fatalf("search_done dur %s != Timings.Total %s", last.Dur, res.Timings.Total)
	}
	// Monotonic elapsed stamps (sequential search ⇒ emission order).
	var prev time.Duration
	var steps, verifies int
	var stepDur time.Duration
	for i, e := range events {
		if e.Elapsed < prev {
			t.Fatalf("event %d (%s) elapsed %s < previous %s", i, e.Kind, e.Elapsed, prev)
		}
		prev = e.Elapsed
		switch e.Kind {
		case obs.EvStepDone:
			steps++
			stepDur += e.Dur
		case obs.EvVerifyDone:
			verifies++
		}
	}
	if steps == 0 || verifies != 1 {
		t.Fatalf("steps=%d verifies=%d", steps, verifies)
	}
	// Summed phase durations stay within the total (they are a subset of it).
	if stepDur > res.Timings.Total {
		t.Fatalf("summed step durations %s exceed total %s", stepDur, res.Timings.Total)
	}
}

func TestMetricsMatchResult(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeqLength = 6
	m := obs.NewMetrics()
	cfg.Metrics = m
	st := newStandardizer(t, cfg)
	res, err := st.Standardize(script.MustParse(userScript))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.Value(obs.MSearches), int64(1); got != want {
		t.Fatalf("searches = %d", got)
	}
	if got := m.Value(obs.MSearchesCanceled); got != 0 {
		t.Fatalf("canceled = %d", got)
	}
	if got, want := m.Value(obs.MCacheHits), res.CacheStats.Hits; got != want {
		t.Fatalf("cache hits metric %d != result %d", got, want)
	}
	if got, want := m.Value(obs.MCacheMisses), res.CacheStats.Misses; got != want {
		t.Fatalf("cache misses metric %d != result %d", got, want)
	}
	if got, want := m.Value(obs.MStatementsExecuted), res.CacheStats.StmtsExecuted; got != want {
		t.Fatalf("statements executed metric %d != result %d", got, want)
	}
	if got, want := m.Value(obs.MExecChecks), int64(res.ExecChecks); got != want {
		t.Fatalf("exec checks metric %d != result %d", got, want)
	}
	if m.Value(obs.MPhaseTotalNanos) != int64(res.Timings.Total) {
		t.Fatalf("total nanos metric %d != %d", m.Value(obs.MPhaseTotalNanos), int64(res.Timings.Total))
	}
	if m.Value(obs.MVerifications) == 0 || m.Value(obs.MCandidatesAdmitted) == 0 {
		t.Fatalf("verify/admit counters empty: %v", m.Names())
	}
}

// TestTracerDoesNotChangeResult guards the pay-for-what-you-use contract:
// tracing must observe the search, never steer it.
func TestTracerDoesNotChangeResult(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeqLength = 6
	plain := newStandardizer(t, cfg)
	resPlain, err := plain.Standardize(script.MustParse(userScript))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tracer = obs.NewCollectTracer()
	cfg.Metrics = obs.NewMetrics()
	traced := newStandardizer(t, cfg)
	resTraced, err := traced.Standardize(script.MustParse(userScript))
	if err != nil {
		t.Fatal(err)
	}
	if resPlain.Output.Source() != resTraced.Output.Source() {
		t.Fatalf("tracing changed the output:\n%s\nvs\n%s", resPlain.Output.Source(), resTraced.Output.Source())
	}
	if resPlain.REAfter != resTraced.REAfter {
		t.Fatalf("tracing changed RE: %f vs %f", resPlain.REAfter, resTraced.REAfter)
	}
}
