package core

import (
	"context"
	"fmt"
	"strings"

	"lucidscript/internal/dag"
	"lucidscript/internal/intent"
	"lucidscript/internal/script"
)

// Explanation justifies one applied transformation to the user, as outlined
// in the paper's future-work discussion (Section 8): how common the step is
// in the corpus, how it moved the standardness objective, and a rationale
// derived from the step's role.
type Explanation struct {
	Transformation Transformation
	// CorpusFrequency is the fraction of corpus scripts containing the atom.
	CorpusFrequency float64
	// REDelta is the relative-entropy change caused by this transformation
	// (negative = more standard).
	REDelta float64
	// Rationale is a one-sentence human-readable justification.
	Rationale string
}

// String renders the explanation.
func (e Explanation) String() string {
	return fmt.Sprintf("%s — %s (corpus frequency %.0f%%, RE %+.3f)",
		e.Transformation, e.Rationale, e.CorpusFrequency*100, e.REDelta)
}

// ExplainResult reconstructs per-transformation explanations for a result:
// the transformation sequence is replayed and each step's RE delta and
// corpus frequency are reported.
func (st *Standardizer) ExplainResult(res *Result) []Explanation {
	// Replay: undo is not possible from the output alone, so rebuild from
	// the recorded sequence. The Result carries the applied transformations
	// in order; deltas come from re-scoring the intermediate sequences.
	if len(res.Applied) == 0 {
		return nil
	}
	// Recover the starting lines by inverting the transformations from the
	// output: walk backwards, removing added atoms and restoring deleted
	// ones.
	lines := dag.Build(res.Output).Lines
	for i := len(res.Applied) - 1; i >= 0; i-- {
		tr := res.Applied[i]
		switch tr.Type {
		case TransformAdd:
			if tr.Pos < len(lines) {
				lines = append(append(lines[:0:0], lines[:tr.Pos]...), lines[tr.Pos+1:]...)
			}
		case TransformDelete:
			restored := append(append(lines[:0:0], lines[:tr.Pos]...), tr.Atom)
			lines = append(restored, lines[tr.Pos:]...)
		}
	}
	prevRE := st.Corpus.Vocab.RELines(lines)
	out := make([]Explanation, 0, len(res.Applied))
	for _, tr := range res.Applied {
		switch tr.Type {
		case TransformAdd:
			lines = append(append(append(lines[:0:0], lines[:tr.Pos]...), tr.Atom), lines[tr.Pos:]...)
		case TransformDelete:
			lines = append(append(lines[:0:0], lines[:tr.Pos]...), lines[tr.Pos+1:]...)
		}
		re := st.Corpus.Vocab.RELines(lines)
		out = append(out, Explanation{
			Transformation:  tr,
			CorpusFrequency: st.atomFrequency(tr.Atom.Key),
			REDelta:         re - prevRE,
			Rationale:       st.rationale(tr),
		})
		prevRE = re
	}
	return out
}

func (st *Standardizer) atomFrequency(key string) float64 {
	if st.Corpus.Vocab.NumScripts == 0 {
		return 0
	}
	n := st.Corpus.Vocab.LineCounts[key]
	if n > st.Corpus.Vocab.NumScripts {
		n = st.Corpus.Vocab.NumScripts
	}
	return float64(n) / float64(st.Corpus.Vocab.NumScripts)
}

// rationale derives a one-sentence justification from the atom's shape.
func (st *Standardizer) rationale(tr Transformation) string {
	key := tr.Atom.Key
	freq := st.atomFrequency(key)
	if tr.Type == TransformDelete {
		if st.Corpus.Vocab.LineCounts[key] == 0 {
			return "removes a step that no corpus script uses (out-of-the-ordinary step)"
		}
		return fmt.Sprintf("removes a step used by only %.0f%% of corpus scripts", freq*100)
	}
	switch {
	case strings.HasPrefix(key, "y =") || strings.HasPrefix(key, "X ="):
		return fmt.Sprintf("adds the target split used by %.0f%% of corpus scripts", freq*100)
	case strings.Contains(key, "fillna"):
		return fmt.Sprintf("adds the imputation used by %.0f%% of corpus scripts", freq*100)
	case strings.Contains(key, "get_dummies"):
		return fmt.Sprintf("adds the encoding step used by %.0f%% of corpus scripts", freq*100)
	case strings.Contains(key, "drop"):
		return fmt.Sprintf("adds the column pruning used by %.0f%% of corpus scripts", freq*100)
	case strings.Contains(key, "[") && strings.ContainsAny(key, "<>"):
		return fmt.Sprintf("adds the outlier/row filter used by %.0f%% of corpus scripts", freq*100)
	case strings.HasPrefix(key, "import"):
		return "adds a module import required by common corpus steps"
	default:
		return fmt.Sprintf("adds a step used by %.0f%% of corpus scripts", freq*100)
	}
}

// ParetoPoint is one (threshold, outcome) pair of the intent/standardness
// trade-off curve (Section 8's proposed extension).
type ParetoPoint struct {
	// Tau is the intent threshold of this point.
	Tau float64
	// ImprovementPct is the standardness improvement achieved at Tau.
	ImprovementPct float64
	// IntentValue is the measured intent value of the accepted output.
	IntentValue float64
}

// ParetoFrontier explores the user-intent threshold space with a single
// beam search, returning the improvement achievable at each threshold.
// Thresholds are interpreted by the configured measure (τ_J values in
// [0,1] or τ_M percentages).
func (st *Standardizer) ParetoFrontier(su *script.Script, taus []float64) ([]ParetoPoint, error) {
	return st.ParetoFrontierContext(context.Background(), su, taus)
}

// ParetoFrontierContext is ParetoFrontier with cancellation (the shared
// beam search and every per-threshold verification poll the context).
// Unlike StandardizeGridContext, a canceled frontier returns no points: a
// partially explored trade-off curve would be misleading.
func (st *Standardizer) ParetoFrontierContext(ctx context.Context, su *script.Script, taus []float64) ([]ParetoPoint, error) {
	constraints := make([]intent.Constraint, len(taus))
	for i, tau := range taus {
		c := st.Config.Constraint
		c.Tau = tau
		constraints[i] = c
	}
	grid, err := st.StandardizeGridContext(ctx, su, []int{st.Config.SeqLength}, constraints)
	if err != nil {
		return nil, err
	}
	points := make([]ParetoPoint, len(taus))
	for i, tau := range taus {
		points[i] = ParetoPoint{
			Tau:            tau,
			ImprovementPct: grid[0][i].ImprovementPct,
			IntentValue:    grid[0][i].IntentValue,
		}
	}
	return points, nil
}
