package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"lucidscript/internal/dag"
	"lucidscript/internal/entropy"
	"lucidscript/internal/frame"
	"lucidscript/internal/intent"
	"lucidscript/internal/interp"
	"lucidscript/internal/script"
)

// ErrInputScriptFails is returned when the user's input script itself does
// not execute against the input dataset.
var ErrInputScriptFails = errors.New("core: input script does not execute")

// Standardizer holds the curated search space for one corpus and dataset,
// reusable across many input scripts (the offline phase of Section 5.1).
type Standardizer struct {
	Vocab   *entropy.Vocab
	Sources map[string]*frame.Frame
	Config  Config
	// CurateTime records how long the offline phase took.
	CurateTime time.Duration

	// sampled memoizes the MaxRows-sampled sources so the per-candidate
	// path never pays the sampling loop (optimization 5 runs once, not once
	// per execution).
	sampleMu   sync.Mutex
	sampledKey sampleKey
	sampled    map[string]*frame.Frame
}

type sampleKey struct {
	maxRows int
	seed    int64
}

// execSources returns the sources every candidate executes against, with
// MaxRows sampling applied once and memoized per (MaxRows, Seed).
func (st *Standardizer) execSources() map[string]*frame.Frame {
	cfg := st.Config
	if cfg.MaxRows <= 0 {
		return st.Sources
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	key := sampleKey{maxRows: cfg.MaxRows, seed: seed}
	st.sampleMu.Lock()
	defer st.sampleMu.Unlock()
	if st.sampled == nil || st.sampledKey != key {
		st.sampled = interp.SampleSources(st.Sources, cfg.MaxRows, seed)
		st.sampledKey = key
	}
	return st.sampled
}

// runScript executes a candidate script through the shared session cache
// when one is active, else via a plain run against the pre-sampled sources.
func (st *Standardizer) runScript(sess *interp.SessionCache, s *script.Script) (*interp.Result, error) {
	if sess != nil {
		return sess.Run(s)
	}
	return interp.Run(s, st.execSources(), interp.Options{Seed: st.Config.Seed})
}

// checkScript is runScript for the execution constraint only.
func (st *Standardizer) checkScript(sess *interp.SessionCache, s *script.Script) error {
	if sess != nil {
		return sess.Check(s)
	}
	return interp.CheckExecutes(s, st.execSources(), interp.Options{Seed: st.Config.Seed})
}

// New curates the search space from corpus scripts (offline phase): each is
// lemmatized and converted to its DAG, and the atom/edge vocabularies and
// corpus distribution are built.
func New(corpus []*script.Script, sources map[string]*frame.Frame, cfg Config) *Standardizer {
	return NewWeighted(corpus, nil, sources, cfg)
}

// NewWeighted is New with per-script corpus weights (e.g. Kaggle votes, see
// Section 8); a script with weight w counts as w copies in the corpus
// distribution. Nil weights or non-positive entries default to 1.
func NewWeighted(corpus []*script.Script, weights []int, sources map[string]*frame.Frame, cfg Config) *Standardizer {
	start := time.Now()
	graphs := make([]*dag.Graph, len(corpus))
	for i, s := range corpus {
		graphs[i] = dag.Build(s)
	}
	return &Standardizer{
		Vocab:      entropy.BuildVocabWeighted(graphs, weights),
		Sources:    sources,
		Config:     cfg,
		CurateTime: time.Since(start),
	}
}

// Result reports one standardization run.
type Result struct {
	// Output is the standardized script ŝ_u (the input script when no
	// constraint-satisfying improvement was found).
	Output *script.Script
	// REBefore and REAfter are the relative entropies of input and output.
	REBefore, REAfter float64
	// ImprovementPct is the paper's % improvement metric.
	ImprovementPct float64
	// IntentValue is the measured user-intent value of the output (Δ_J or Δ_M).
	IntentValue float64
	// Applied lists the accepted transformation sequence.
	Applied []Transformation
	// ExecChecks counts interpreter runs performed.
	ExecChecks int
	// Timings is the per-phase runtime breakdown (Figure 7).
	Timings Timings
	// CacheStats reports the execution-prefix cache's effectiveness for the
	// whole StandardizeGrid call (zero when Config.ExecCache is off).
	CacheStats interp.CacheStats
}

// Standardize runs Algorithm 1 on the input script.
func (st *Standardizer) Standardize(su *script.Script) (*Result, error) {
	grid, err := st.StandardizeGrid(su, []int{st.Config.SeqLength}, []intent.Constraint{st.Config.Constraint})
	if err != nil {
		return nil, err
	}
	return grid[0][0], nil
}

// StandardizeGrid runs the beam search once to the largest requested
// sequence length and verifies its candidate archive under every (seq,
// constraint) combination, returning one Result per grid cell indexed as
// [seqIdx][constraintIdx].
//
// This is exact, not an approximation: the beam trajectory depends on
// neither the remaining transformation budget nor the intent constraint
// (which Algorithm 1 checks only in VerifyAllConstraints), so the candidate
// set reachable within s steps of a longer run equals the final candidate
// set of a seq=s run. The ablation and threshold sweeps of Figures 5, 6 and
// 9 use this to share one search across all cells.
func (st *Standardizer) StandardizeGrid(su *script.Script, seqs []int, constraints []intent.Constraint) ([][]*Result, error) {
	cfg := st.Config
	start := time.Now()
	maxSeq := 0
	for _, s := range seqs {
		if s > maxSeq {
			maxSeq = s
		}
	}
	var searchTimings Timings
	searchTimings.CurateSearchSpace = st.CurateTime
	execChecks := 0

	// Lemmatize the input and compute its baseline.
	g := dag.Build(su)
	orig := &candidate{lines: g.Lines, re: st.Vocab.RELines(g.Lines)}

	// One shared, mutex-guarded session cache serves every execution in
	// this call: early checks, parallel beam extensions, and the per-cell
	// verification runs all reuse each other's statement prefixes.
	var sess *interp.SessionCache
	if cfg.ExecCache {
		sess = interp.NewSessionCache(st.execSources(), interp.Options{Seed: cfg.Seed}, cfg.ExecCacheSize)
	}
	origRun, err := st.runScript(sess, g.Script)
	execChecks++
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInputScriptFails, err)
	}
	if origRun.Main == nil {
		return nil, fmt.Errorf("%w: script produces no dataset", ErrInputScriptFails)
	}
	orig.checked = true

	// Beam loop: C starts as {s_u}; each iteration extends every candidate
	// by one transformation and keeps the top K (Algorithms 1–3).
	counter := &Result{}
	beams := []*candidate{orig}
	archive := []*candidate{orig}
	globalSeen := map[string]bool{orig.key(): true}
	for step := 0; step < maxSeq && len(beams) > 0; step++ {
		var next []*candidate
		if cfg.Workers > 1 && len(beams) > 1 {
			next = st.extendAllParallel(sess, beams, globalSeen, &searchTimings, counter)
		} else {
			seen := newSeenSet(globalSeen)
			for _, cand := range beams {
				next = st.extendOne(sess, next, cand, seen, &searchTimings, counter)
			}
		}
		for _, c := range next {
			globalSeen[c.key()] = true
		}
		// Every admitted candidate enters the verification archive, not just
		// the K that continue: with early checking they already executed,
		// and a one-step candidate with a cheap intent footprint may satisfy
		// a strict constraint that every deeper candidate violates.
		archive = append(archive, next...)
		beams = selectBeams(next, cfg.BeamSize)
	}
	searchTimings.CheckIfExecutes = counter.Timings.CheckIfExecutes
	execChecks += counter.ExecChecks

	// VerifyAllConstraints per grid cell, sharing candidate outputs and
	// downstream-model accuracies across cells.
	cache := newVerifyCache(origRun.Main)
	results := make([][]*Result, len(seqs))
	for si, seq := range seqs {
		results[si] = make([]*Result, len(constraints))
		var eligible []*candidate
		for _, c := range archive {
			if len(c.applied) <= seq {
				eligible = append(eligible, c)
			}
		}
		for ci, constraint := range constraints {
			res := &Result{REBefore: orig.re, Timings: searchTimings, ExecChecks: execChecks}
			t2 := time.Now()
			best := st.verifyWith(sess, eligible, orig, constraint, cache, res)
			res.Timings.VerifyConstraints = time.Since(t2)
			res.Output = dag.ToScript(best.lines)
			res.REAfter = best.re
			res.ImprovementPct = entropy.Improvement(res.REBefore, res.REAfter)
			res.Applied = best.applied
			res.Timings.Total = time.Since(start)
			results[si][ci] = res
		}
	}
	if sess != nil {
		// Every cell reports the whole call's cache effectiveness.
		stats := sess.Stats()
		for _, row := range results {
			for _, res := range row {
				res.CacheStats = stats
			}
		}
	}
	return results, nil
}

func less(a, b *candidate) bool {
	if a.re != b.re {
		return a.re < b.re
	}
	return a.key() < b.key()
}

// limitSteps bounds the ranked transformation list to the top `limit` adds
// while keeping every delete: deletes are few, and pruning them would
// starve the removal of out-of-the-ordinary blocks (Section 6.6) whose
// payoff needs several chained deletes.
func limitSteps(steps []Transformation, limit int) []Transformation {
	if limit <= 0 || len(steps) <= limit {
		return steps
	}
	out := make([]Transformation, 0, limit)
	adds := 0
	for _, s := range steps {
		if s.Type == TransformDelete {
			out = append(out, s)
			continue
		}
		if adds < limit {
			out = append(out, s)
			adds++
		}
	}
	return out
}

// selectBeams keeps the top K candidates, preserving lineage diversity:
// the best child of every parent survives first (so a slow-payoff path such
// as a chained delete is not evicted by a sibling lineage), then remaining
// slots fill by global RE order.
func selectBeams(next []*candidate, k int) []*candidate {
	if len(next) <= k {
		sort.Slice(next, func(i, j int) bool { return less(next[i], next[j]) })
		return next
	}
	sort.Slice(next, func(i, j int) bool { return less(next[i], next[j]) })
	var out []*candidate
	taken := map[*candidate]bool{}
	seenParent := map[*candidate]bool{}
	for _, c := range next {
		if len(out) >= k {
			break
		}
		if seenParent[c.parent] {
			continue
		}
		seenParent[c.parent] = true
		taken[c] = true
		out = append(out, c)
	}
	for _, c := range next {
		if len(out) >= k {
			break
		}
		if !taken[c] {
			taken[c] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// extendBeams is Algorithm 2 (GetTopKBeams): it walks the ranked
// transformations and admits a candidate when it would enter the current
// top-K, verifying the execution constraint first when early checking is on.
// extendOne runs GetSteps + (diverse) beam extension for one parent beam,
// appending admitted candidates to next.
func (st *Standardizer) extendOne(sess *interp.SessionCache, next []*candidate, cand *candidate, seen *seenSet, timings *Timings, counter *Result) []*candidate {
	cfg := st.Config
	t0 := time.Now()
	steps := getStepsOpt(cand, st.Vocab, !cfg.DisableLookahead)
	timings.GetSteps += time.Since(t0)
	steps = limitSteps(steps, cfg.StepLimit)
	t1 := time.Now()
	if cfg.Diversity {
		clusters := clusterSteps(cand, steps, cfg.Clusters, st.Vocab)
		per := cfg.BeamSize / cfg.Clusters
		if per < 1 {
			per = 1
		}
		for _, cl := range clusters {
			next = st.extendBeams(sess, next, cand, cl, per, seen, counter)
		}
	} else {
		next = st.extendBeams(sess, next, cand, steps, cfg.BeamSize, seen, counter)
	}
	timings.GetTopKBeams += time.Since(t1)
	return next
}

// extendAllParallel extends every parent beam in its own goroutine
// (Section 6.5's proposed parallelism). Each worker dedups against the
// candidates admitted in earlier steps (the shared base set) plus its own
// local admissions; results merge in parent order with a final cross-beam
// dedup, so the outcome is deterministic for a fixed configuration.
func (st *Standardizer) extendAllParallel(sess *interp.SessionCache, beams []*candidate, globalSeen map[string]bool, timings *Timings, counter *Result) []*candidate {
	n := len(beams)
	results := make([][]*candidate, n)
	perTimings := make([]Timings, n)
	perCounter := make([]Result, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, st.Config.Workers)
	for i, cand := range beams {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, cand *candidate) {
			defer wg.Done()
			defer func() { <-sem }()
			seen := newSeenSet(globalSeen)
			results[i] = st.extendOne(sess, nil, cand, seen, &perTimings[i], &perCounter[i])
		}(i, cand)
	}
	wg.Wait()
	var next []*candidate
	merged := map[string]bool{}
	for i := 0; i < n; i++ {
		for _, c := range results[i] {
			key := c.key()
			if merged[key] {
				continue
			}
			merged[key] = true
			next = append(next, c)
		}
		// Wall-clock phases accumulate CPU time across workers; ExecChecks
		// sum exactly.
		timings.GetSteps += perTimings[i].GetSteps
		timings.GetTopKBeams += perTimings[i].GetTopKBeams
		counter.Timings.CheckIfExecutes += perCounter[i].Timings.CheckIfExecutes
		counter.ExecChecks += perCounter[i].ExecChecks
	}
	return next
}

// seenSet is a two-level candidate de-duplication set: a shared read-only
// base plus a local overlay, so parallel beam extensions can each dedup
// against everything admitted in earlier steps without racing on one map.
type seenSet struct {
	base  map[string]bool
	local map[string]bool
}

func newSeenSet(base map[string]bool) *seenSet {
	return &seenSet{base: base, local: map[string]bool{}}
}

func (s *seenSet) has(key string) bool { return s.base[key] || s.local[key] }

func (s *seenSet) add(key string) { s.local[key] = true }

func (st *Standardizer) extendBeams(sess *interp.SessionCache, acc []*candidate, cand *candidate, steps []Transformation, k int, seen *seenSet, res *Result) []*candidate {
	admitted := 0
	for _, tr := range steps {
		if admitted >= k {
			break
		}
		nc := cand.apply(tr, st.Vocab)
		key := nc.key()
		if seen.has(key) {
			continue
		}
		if st.Config.EarlyCheck {
			t0 := time.Now()
			err := st.checkScript(sess, dag.ToScript(nc.lines))
			res.Timings.CheckIfExecutes += time.Since(t0)
			res.ExecChecks++
			if err != nil {
				continue
			}
			nc.checked = true
		}
		seen.add(key)
		acc = append(acc, nc)
		admitted++
	}
	return acc
}

// verifyCache shares candidate outputs and downstream-model accuracies
// across the grid cells of one StandardizeGrid call, so threshold sweeps
// pay for each execution and each model training exactly once.
type verifyCache struct {
	origOut *frame.Frame
	// out maps candidates to their output frame (nil = failed to execute).
	out map[*candidate]*frame.Frame
	// acc memoizes downstream accuracy per candidate and model config key.
	acc map[accKey]accVal
	// origAcc memoizes the original output's accuracy per model config key.
	origAcc map[string]accVal
}

type accKey struct {
	cand *candidate
	cfg  string
}

type accVal struct {
	acc float64
	err error
}

func newVerifyCache(origOut *frame.Frame) *verifyCache {
	return &verifyCache{
		origOut: origOut,
		out:     map[*candidate]*frame.Frame{},
		acc:     map[accKey]accVal{},
		origAcc: map[string]accVal{},
	}
}

// modelKey is a collision-free encoding of every ModelConfig field: %q
// guards separator characters inside the string fields, and the float is
// keyed by its exact bit pattern (formatting with %g can collide across
// distinct values, silently reusing a wrong cached accuracy).
func modelKey(m intent.ModelConfig) string {
	return fmt.Sprintf("%q/%d/%x/%q/%d",
		m.Target, m.Seed, math.Float64bits(m.TestFrac), m.Protected, m.Epochs)
}

// satisfied evaluates the constraint against a candidate's cached output,
// memoizing model accuracies so Δ_M checks across thresholds reduce to
// arithmetic after the first evaluation.
func (vc *verifyCache) satisfied(constraint intent.Constraint, cand *candidate, out *frame.Frame) (bool, float64, error) {
	if constraint.Measure != intent.MeasureModel {
		return constraint.Satisfied(vc.origOut, out)
	}
	key := modelKey(constraint.Model)
	ov, ok := vc.origAcc[key]
	if !ok {
		a, err := intent.ModelAccuracy(vc.origOut, constraint.Model)
		ov = accVal{acc: a, err: err}
		vc.origAcc[key] = ov
	}
	if ov.err != nil {
		return false, 0, ov.err
	}
	ck := accKey{cand: cand, cfg: key}
	cv, ok := vc.acc[ck]
	if !ok {
		a, err := intent.ModelAccuracy(out, constraint.Model)
		cv = accVal{acc: a, err: err}
		vc.acc[ck] = cv
	}
	if cv.err != nil {
		return false, 0, cv.err
	}
	var delta float64
	switch {
	case ov.acc == 0 && cv.acc == 0:
		delta = 0
	case ov.acc == 0:
		delta = 100
	default:
		delta = math.Abs(ov.acc-cv.acc) / ov.acc * 100
	}
	return delta <= constraint.Tau, delta, nil
}

// verifyWith implements VerifyAllConstraints: candidates are sorted by RE
// and the best executable, intent-preserving one wins; the original script
// is the fallback (improvement 0), matching the paper's guarantee that LS
// never worsens standardness.
func (st *Standardizer) verifyWith(sess *interp.SessionCache, archive []*candidate, orig *candidate, constraint intent.Constraint, cache *verifyCache, res *Result) *candidate {
	sorted := append([]*candidate(nil), archive...)
	sort.Slice(sorted, func(i, j int) bool { return less(sorted[i], sorted[j]) })
	checked := 0
	for _, cand := range sorted {
		if cand.re >= orig.re {
			break // no remaining candidate can improve
		}
		if st.Config.VerifyLimit > 0 && checked >= st.Config.VerifyLimit {
			break
		}
		checked++
		out, cached := cache.out[cand]
		if !cached {
			run, err := st.runScript(sess, dag.ToScript(cand.lines))
			res.ExecChecks++
			if err != nil || run.Main == nil {
				cache.out[cand] = nil
				continue
			}
			out = run.Main
			cache.out[cand] = out
		}
		if out == nil {
			continue
		}
		ok, val, err := cache.satisfied(constraint, cand, out)
		if err != nil || !ok {
			continue
		}
		res.IntentValue = val
		return cand
	}
	res.IntentValue = identityIntent(constraint)
	return orig
}

// identityIntent is the intent value of returning the input unchanged.
func identityIntent(c intent.Constraint) float64 {
	switch c.Measure {
	case intent.MeasureJaccard, intent.MeasureRowJaccard:
		return 1 // identical outputs are maximally similar
	default:
		return 0 // zero accuracy change / zero transport distance
	}
}
