package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"lucidscript/internal/dag"
	"lucidscript/internal/entropy"
	"lucidscript/internal/frame"
	"lucidscript/internal/intent"
	"lucidscript/internal/interp"
	"lucidscript/internal/obs"
	"lucidscript/internal/script"
)

// ErrInputScriptFails is returned when the user's input script itself does
// not execute against the input dataset.
var ErrInputScriptFails = errors.New("core: input script does not execute")

// Standardizer binds a curated search space to one search configuration,
// reusable across many input scripts. The curation artifacts themselves
// live in the CuratedCorpus, which several Standardizers (and the batch
// Engine) can share.
type Standardizer struct {
	Corpus *CuratedCorpus
	Config Config
}

// execSources returns the sources every candidate executes against, with
// MaxRows sampling applied once and memoized per (MaxRows, Seed).
func (st *Standardizer) execSources() map[string]*frame.Frame {
	return st.Corpus.ExecSources(st.Config.MaxRows, st.Config.Seed)
}

// newSession builds the execution-prefix cache for one standardization, or
// nil when Config.ExecCache is off.
func (st *Standardizer) newSession() *interp.SessionCache {
	return st.newSessionScaled(1)
}

// newSessionScaled builds a session cache with the node budget scaled for
// n concurrent searches. The configured (or default) size is tuned for one
// search; a batch sharing one trie across n jobs needs a bigger budget, or
// the jobs evict each other's hot prefixes and the cache thrashes. The
// factor is capped: every cached node pins an environment, so scaling by
// the full job count would trade eviction thrash for GC drag on big data.
func (st *Standardizer) newSessionScaled(n int) *interp.SessionCache {
	if !st.Config.ExecCache {
		return nil
	}
	size := st.Config.ExecCacheSize
	if size <= 0 {
		size = interp.DefaultCacheSize
	}
	const maxScale = 4
	if n > maxScale {
		n = maxScale
	}
	if n > 1 {
		size *= n
	}
	return interp.NewSessionCache(st.execSources(), st.interpOptions(), size)
}

// interpOptions is the one construction point for candidate-execution
// options, so the resource governor and fault hook reach every interpreter
// path (cached sessions, plain runs, early checks) identically.
func (st *Standardizer) interpOptions() interp.Options {
	return interp.Options{Seed: st.Config.Seed, Limits: st.Config.Limits, Faults: st.Config.Faults}
}

// runScript executes a candidate script through the shared session cache
// when one is active, else via a plain run against the pre-sampled sources.
// The context cancels at statement granularity.
func (st *Standardizer) runScript(ctx context.Context, sess interp.Session, s *script.Script) (*interp.Result, error) {
	if sess != nil {
		return sess.RunContext(ctx, s)
	}
	return interp.RunContext(ctx, s, st.execSources(), st.interpOptions())
}

// RunOutput executes a script against the corpus's full (unsampled)
// sources and returns its output table. It is how serving layers compute
// the real output — and its hash — of a standardized script: the search
// itself runs over MaxRows-sampled sources, but the table users consume is
// produced by the full data.
func (st *Standardizer) RunOutput(ctx context.Context, s *script.Script) (*frame.Frame, error) {
	res, err := interp.RunContext(ctx, s, st.Corpus.Sources, st.interpOptions())
	if err != nil {
		return nil, err
	}
	return res.Main, nil
}

// checkScript is runScript for the execution constraint only.
func (st *Standardizer) checkScript(ctx context.Context, sess interp.Session, s *script.Script) error {
	if sess != nil {
		return sess.CheckContext(ctx, s)
	}
	return interp.CheckExecutesContext(ctx, s, st.execSources(), st.interpOptions())
}

// New curates the search space from corpus scripts (offline phase): each is
// lemmatized and converted to its DAG, and the atom/edge vocabularies and
// corpus distribution are built.
func New(corpus []*script.Script, sources map[string]*frame.Frame, cfg Config) *Standardizer {
	return NewWeighted(corpus, nil, sources, cfg)
}

// NewWeighted is New with per-script corpus weights (e.g. Kaggle votes, see
// Section 8); a script with weight w counts as w copies in the corpus
// distribution. Nil weights or non-positive entries default to 1. Curation
// degrades gracefully: a corpus script that fails to lemmatize is skipped
// and recorded in the corpus Diagnostics rather than aborting.
func NewWeighted(corpus []*script.Script, weights []int, sources map[string]*frame.Frame, cfg Config) *Standardizer {
	return FromCorpus(CurateWeightedFaults(corpus, weights, sources, cfg.Faults), cfg)
}

// FromCorpus binds an already-curated corpus to a configuration without
// re-curating — the entry point for callers that standardize against the
// same corpus under several configurations or from several goroutines.
func FromCorpus(cc *CuratedCorpus, cfg Config) *Standardizer {
	return &Standardizer{Corpus: cc, Config: cfg}
}

// Result reports one standardization run.
type Result struct {
	// Output is the standardized script ŝ_u (the input script when no
	// constraint-satisfying improvement was found).
	Output *script.Script
	// REBefore and REAfter are the relative entropies of input and output.
	REBefore, REAfter float64
	// ImprovementPct is the paper's % improvement metric.
	ImprovementPct float64
	// IntentValue is the measured user-intent value of the output (Δ_J or Δ_M).
	IntentValue float64
	// Applied lists the accepted transformation sequence.
	Applied []Transformation
	// ExecChecks counts interpreter runs performed.
	ExecChecks int
	// Timings is the per-phase runtime breakdown (Figure 7).
	Timings Timings
	// CacheStats reports the execution-prefix cache's effectiveness for the
	// whole StandardizeGrid call (zero when Config.ExecCache is off).
	CacheStats interp.CacheStats
	// Health reports the containment the run needed: candidates quarantined
	// for panics or budget exhaustion per phase, corpus scripts skipped
	// during curation, and whether verification degraded to sampled-tuple
	// mode. The zero value is a fully healthy run. Check-phase tallies are
	// call-wide (the grid shares one search); Verify tallies are per cell.
	Health Health
}

// Standardize runs Algorithm 1 on the input script.
func (st *Standardizer) Standardize(su *script.Script) (*Result, error) {
	return st.StandardizeContext(context.Background(), su)
}

// StandardizeContext is Standardize with cancellation: the context is
// checked between beam extensions and at statement granularity inside the
// interpreter, so a deadline aborts mid-candidate. On cancellation it
// returns ErrCanceled/ErrDeadlineExceeded together with a partial, non-nil
// Result (the best constraint-verified candidate found so far — the input
// script when verification had not begun) whose Timings and CacheStats
// describe the truncated run.
func (st *Standardizer) StandardizeContext(ctx context.Context, su *script.Script) (*Result, error) {
	grid, err := st.StandardizeGridContext(ctx, su, []int{st.Config.SeqLength}, []intent.Constraint{st.Config.Constraint})
	if grid == nil {
		return nil, err
	}
	return grid[0][0], err
}

// StandardizeGrid runs the beam search once to the largest requested
// sequence length and verifies its candidate archive under every (seq,
// constraint) combination, returning one Result per grid cell indexed as
// [seqIdx][constraintIdx].
//
// This is exact, not an approximation: the beam trajectory depends on
// neither the remaining transformation budget nor the intent constraint
// (which Algorithm 1 checks only in VerifyAllConstraints), so the candidate
// set reachable within s steps of a longer run equals the final candidate
// set of a seq=s run. The ablation and threshold sweeps of Figures 5, 6 and
// 9 use this to share one search across all cells.
func (st *Standardizer) StandardizeGrid(su *script.Script, seqs []int, constraints []intent.Constraint) ([][]*Result, error) {
	return st.StandardizeGridContext(context.Background(), su, seqs, constraints)
}

// StandardizeGridContext is StandardizeGrid with cancellation and tracing.
// The context is polled between beam extensions, between verification
// candidates, and before every interpreter statement, so a deadline aborts
// mid-candidate. On cancellation it returns both a non-nil grid — every
// cell verified against whatever archive the truncated search produced,
// falling back to the input script — and ErrCanceled/ErrDeadlineExceeded.
func (st *Standardizer) StandardizeGridContext(ctx context.Context, su *script.Script, seqs []int, constraints []intent.Constraint) ([][]*Result, error) {
	// One shared, mutex-guarded session cache serves every execution in
	// this call: early checks, parallel beam extensions, and the per-cell
	// verification runs all reuse each other's statement prefixes.
	var sess interp.Session
	if sc := st.newSession(); sc != nil {
		sess = sc
	}
	return st.standardizeGridSession(ctx, sess, su, seqs, constraints)
}

// standardizeGridSession is StandardizeGridContext against a caller-supplied
// execution session (nil = uncached runs). The batch engine passes per-job
// views of one shared SessionCache here, so jobs reuse each other's
// statement prefixes while each Result's CacheStats stay job-local.
func (st *Standardizer) standardizeGridSession(ctx context.Context, sess interp.Session, su *script.Script, seqs []int, constraints []intent.Constraint) ([][]*Result, error) {
	cfg := st.Config
	o := newObsState(ctx, cfg)
	start := o.start
	maxSeq := 0
	for _, s := range seqs {
		if s > maxSeq {
			maxSeq = s
		}
	}
	var searchTimings Timings
	searchTimings.CurateSearchSpace = st.Corpus.CurateTime
	var gs gridStats
	if o.enabled() {
		o.emit(obs.Event{Kind: obs.EvCurateDone, Phase: obs.PhaseCurate, N: st.Corpus.Vocab.NumScripts, Dur: st.Corpus.CurateTime})
		for _, d := range st.Corpus.Diagnostics {
			o.emit(obs.Event{Kind: obs.EvCurateSkipped, Phase: obs.PhaseCurate, N: d.Index, Err: d.Err.Error()})
		}
	}

	// Lemmatize the input and compute its baseline.
	g := dag.Build(su)
	orig := &candidate{lines: g.Lines, re: st.Corpus.Vocab.RELines(g.Lines)}
	if o.enabled() {
		o.emit(obs.Event{Kind: obs.EvSearchStart, Phase: obs.PhaseExtend, N: len(g.Lines)})
	}

	t0 := time.Now()
	origRun, err := st.runScript(o.ctxCheck, sess, g.Script)
	gs.execChecks++
	if err != nil {
		if cerr := ctxCause(ctx); cerr != nil {
			o.emit(obs.Event{Kind: obs.EvCanceled, Phase: obs.PhaseCheck, Err: cerr.Error()})
			return nil, cerr
		}
		// %w keeps the cause chain intact so callers can reach the failing
		// statement (*interp.StmtError) and the quarantine sentinels.
		return nil, fmt.Errorf("%w: %w", ErrInputScriptFails, err)
	}
	if origRun.Main == nil {
		return nil, fmt.Errorf("%w: script produces no dataset", ErrInputScriptFails)
	}
	orig.checked = true
	if o.enabled() {
		o.emit(obs.Event{Kind: obs.EvCandidateExecuted, Phase: obs.PhaseCheck, Detail: "input", Dur: time.Since(t0)})
	}

	// Beam loop: C starts as {s_u}; each iteration extends every candidate
	// by one transformation and keeps the top K (Algorithms 1–3). The
	// extension phase runs under the "extend" pprof label; early checks
	// switch to "check" around each interpreter run.
	counter := &extendStats{}
	beams := []*candidate{orig}
	archive := []*candidate{orig}
	globalSeen := map[string]bool{orig.key(): true}
	var searchErr error
	pprof.SetGoroutineLabels(o.ctxExtend)
	for step := 0; step < maxSeq && len(beams) > 0; step++ {
		if cerr := ctxCause(ctx); cerr != nil {
			searchErr = cerr
			o.emit(obs.Event{Kind: obs.EvCanceled, Phase: obs.PhaseExtend, Step: step + 1, Err: cerr.Error()})
			break
		}
		stepStart := time.Now()
		var next []*candidate
		if cfg.Workers > 1 && len(beams) > 1 {
			next = st.extendAllParallel(ctx, o, sess, beams, globalSeen, &searchTimings, counter)
		} else {
			seen := newSeenSet(globalSeen)
			for _, cand := range beams {
				next = st.extendOne(ctx, o, sess, next, cand, seen, &searchTimings, counter)
			}
		}
		for _, c := range next {
			globalSeen[c.key()] = true
		}
		// Every admitted candidate enters the verification archive, not just
		// the K that continue: with early checking they already executed,
		// and a one-step candidate with a cheap intent footprint may satisfy
		// a strict constraint that every deeper candidate violates.
		archive = append(archive, next...)
		beams = selectBeams(next, cfg.BeamSize)
		gs.beamsPruned += len(next) - len(beams)
		if o.enabled() {
			o.emit(obs.Event{Kind: obs.EvStepDone, Phase: obs.PhaseExtend, Step: step + 1, N: len(next), Dur: time.Since(stepStart)})
			o.emitCacheDelta(sess, step+1)
		}
	}
	pprof.SetGoroutineLabels(ctx)
	searchTimings.CheckIfExecutes = counter.CheckTime
	gs.execChecks += counter.ExecChecks
	gs.admitted += counter.Admitted
	gs.prunedChecks += counter.Pruned
	gs.health.Check = counter.Health
	gs.health.CurateSkipped = len(st.Corpus.Diagnostics)

	// VerifyAllConstraints per grid cell, sharing candidate outputs and
	// downstream-model accuracies across cells. A cancellation mid-search
	// still verifies the truncated archive (each cell falls back to the
	// input script the moment the context check inside verifyWith trips),
	// so the caller receives a usable partial grid alongside the error.
	pprof.SetGoroutineLabels(o.ctxVerify)
	cache := newVerifyCache(origRun.Main)
	searchChecks := gs.execChecks
	results := make([][]*Result, len(seqs))
	for si, seq := range seqs {
		results[si] = make([]*Result, len(constraints))
		var eligible []*candidate
		for _, c := range archive {
			if len(c.applied) <= seq {
				eligible = append(eligible, c)
			}
		}
		for ci, constraint := range constraints {
			res := &Result{REBefore: orig.re, Timings: searchTimings, ExecChecks: searchChecks}
			res.Health.Check = counter.Health
			res.Health.CurateSkipped = len(st.Corpus.Diagnostics)
			if o.enabled() {
				o.emit(obs.Event{Kind: obs.EvVerifyStart, Phase: obs.PhaseVerify, N: len(eligible)})
			}
			t2 := time.Now()
			best, examined := st.verifyWith(ctx, o, sess, eligible, orig, constraint, cache, res)
			gs.verified += examined
			gs.execChecks += res.ExecChecks - searchChecks
			gs.health.Verify.merge(res.Health.Verify)
			if res.Health.VerifyDegraded {
				gs.verifyDegraded++
			}
			res.Timings.VerifyConstraints = time.Since(t2)
			res.Output = dag.ToScript(best.lines)
			res.REAfter = best.re
			res.ImprovementPct = entropy.Improvement(res.REBefore, res.REAfter)
			res.Applied = best.applied
			res.Timings.Total = time.Since(start)
			results[si][ci] = res
			if o.enabled() {
				o.emit(obs.Event{Kind: obs.EvVerifyDone, Phase: obs.PhaseVerify, N: examined, Dur: res.Timings.VerifyConstraints})
			}
		}
	}
	pprof.SetGoroutineLabels(ctx)
	if searchErr == nil {
		if cerr := ctxCause(ctx); cerr != nil {
			searchErr = cerr
			o.emit(obs.Event{Kind: obs.EvCanceled, Phase: obs.PhaseVerify, Err: cerr.Error()})
		}
	}
	gs.canceled = searchErr != nil

	var cacheStats interp.CacheStats
	if sess != nil {
		// Every cell reports the whole call's cache effectiveness.
		cacheStats = sess.Stats()
		for _, row := range results {
			for _, res := range row {
				res.CacheStats = cacheStats
			}
		}
	}
	last := &Result{Timings: searchTimings}
	if len(seqs) > 0 && len(constraints) > 0 {
		last = results[len(seqs)-1][len(constraints)-1]
	}
	o.finalize(last, cacheStats, gs)
	if o.enabled() {
		o.emit(obs.Event{Kind: obs.EvSearchDone, Phase: obs.PhaseVerify, Dur: last.Timings.Total,
			Detail: fmt.Sprintf("improvement=%.1f%%", last.ImprovementPct)})
	}
	return results, searchErr
}

// extendStats accumulates the extension phase's accounting across beams
// (and, in the parallel path, across workers).
type extendStats struct {
	// CheckTime is the wall clock spent in early execution checks
	// (accumulated across workers, so it can exceed elapsed time).
	CheckTime time.Duration
	// ExecChecks counts interpreter runs.
	ExecChecks int
	// Admitted and Pruned count candidates that passed/failed admission.
	Admitted, Pruned int
	// Health tallies the subset of prunes that were quarantines: contained
	// panics and resource-budget trips.
	Health PhaseHealth
}

func less(a, b *candidate) bool {
	if a.re != b.re {
		return a.re < b.re
	}
	return a.key() < b.key()
}

// limitSteps bounds the ranked transformation list to the top `limit` adds
// while keeping every delete: deletes are few, and pruning them would
// starve the removal of out-of-the-ordinary blocks (Section 6.6) whose
// payoff needs several chained deletes.
func limitSteps(steps []Transformation, limit int) []Transformation {
	if limit <= 0 || len(steps) <= limit {
		return steps
	}
	out := make([]Transformation, 0, limit)
	adds := 0
	for _, s := range steps {
		if s.Type == TransformDelete {
			out = append(out, s)
			continue
		}
		if adds < limit {
			out = append(out, s)
			adds++
		}
	}
	return out
}

// selectBeams keeps the top K candidates, preserving lineage diversity:
// the best child of every parent survives first (so a slow-payoff path such
// as a chained delete is not evicted by a sibling lineage), then remaining
// slots fill by global RE order.
func selectBeams(next []*candidate, k int) []*candidate {
	if len(next) <= k {
		sort.Slice(next, func(i, j int) bool { return less(next[i], next[j]) })
		return next
	}
	sort.Slice(next, func(i, j int) bool { return less(next[i], next[j]) })
	var out []*candidate
	taken := map[*candidate]bool{}
	seenParent := map[*candidate]bool{}
	for _, c := range next {
		if len(out) >= k {
			break
		}
		if seenParent[c.parent] {
			continue
		}
		seenParent[c.parent] = true
		taken[c] = true
		out = append(out, c)
	}
	for _, c := range next {
		if len(out) >= k {
			break
		}
		if !taken[c] {
			taken[c] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// extendBeams is Algorithm 2 (GetTopKBeams): it walks the ranked
// transformations and admits a candidate when it would enter the current
// top-K, verifying the execution constraint first when early checking is on.
// extendOne runs GetSteps + (diverse) beam extension for one parent beam,
// appending admitted candidates to next.
func (st *Standardizer) extendOne(ctx context.Context, o *obsState, sess interp.Session, next []*candidate, cand *candidate, seen *seenSet, timings *Timings, counter *extendStats) []*candidate {
	cfg := st.Config
	before := len(next)
	t0 := time.Now()
	steps := getStepsOpt(cand, st.Corpus.Vocab, !cfg.DisableLookahead)
	timings.GetSteps += time.Since(t0)
	steps = limitSteps(steps, cfg.StepLimit)
	t1 := time.Now()
	if cfg.Diversity {
		clusters := clusterSteps(cand, steps, cfg.Clusters, st.Corpus.Vocab)
		per := cfg.BeamSize / cfg.Clusters
		if per < 1 {
			per = 1
		}
		for _, cl := range clusters {
			next = st.extendBeams(ctx, o, sess, next, cand, cl, per, seen, counter)
		}
	} else {
		next = st.extendBeams(ctx, o, sess, next, cand, steps, cfg.BeamSize, seen, counter)
	}
	timings.GetTopKBeams += time.Since(t1)
	if o.enabled() {
		o.emit(obs.Event{Kind: obs.EvBeamExtended, Phase: obs.PhaseExtend, N: len(next) - before, Dur: time.Since(t0)})
	}
	return next
}

// extendAllParallel extends every parent beam in its own goroutine
// (Section 6.5's proposed parallelism). Each worker dedups against the
// candidates admitted in earlier steps (the shared base set) plus its own
// local admissions; results merge in parent order with a final cross-beam
// dedup, so the outcome is deterministic for a fixed configuration.
func (st *Standardizer) extendAllParallel(ctx context.Context, o *obsState, sess interp.Session, beams []*candidate, globalSeen map[string]bool, timings *Timings, counter *extendStats) []*candidate {
	n := len(beams)
	results := make([][]*candidate, n)
	perTimings := make([]Timings, n)
	perCounter := make([]extendStats, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, st.Config.Workers)
	for i, cand := range beams {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, cand *candidate) {
			defer wg.Done()
			defer func() { <-sem }()
			pprof.SetGoroutineLabels(o.ctxExtend)
			seen := newSeenSet(globalSeen)
			results[i] = st.extendOne(ctx, o, sess, nil, cand, seen, &perTimings[i], &perCounter[i])
		}(i, cand)
	}
	wg.Wait()
	var next []*candidate
	merged := map[string]bool{}
	for i := 0; i < n; i++ {
		for _, c := range results[i] {
			key := c.key()
			if merged[key] {
				continue
			}
			merged[key] = true
			next = append(next, c)
		}
		// Wall-clock phases accumulate CPU time across workers; ExecChecks
		// sum exactly.
		timings.GetSteps += perTimings[i].GetSteps
		timings.GetTopKBeams += perTimings[i].GetTopKBeams
		counter.CheckTime += perCounter[i].CheckTime
		counter.ExecChecks += perCounter[i].ExecChecks
		counter.Admitted += perCounter[i].Admitted
		counter.Pruned += perCounter[i].Pruned
		counter.Health.merge(perCounter[i].Health)
	}
	return next
}

// seenSet is a two-level candidate de-duplication set: a shared read-only
// base plus a local overlay, so parallel beam extensions can each dedup
// against everything admitted in earlier steps without racing on one map.
type seenSet struct {
	base  map[string]bool
	local map[string]bool
}

func newSeenSet(base map[string]bool) *seenSet {
	return &seenSet{base: base, local: map[string]bool{}}
}

func (s *seenSet) has(key string) bool { return s.base[key] || s.local[key] }

func (s *seenSet) add(key string) { s.local[key] = true }

func (st *Standardizer) extendBeams(ctx context.Context, o *obsState, sess interp.Session, acc []*candidate, cand *candidate, steps []Transformation, k int, seen *seenSet, res *extendStats) []*candidate {
	admitted := 0
	for _, tr := range steps {
		if admitted >= k {
			break
		}
		// A canceled context makes every early check fail; stop examining
		// candidates instead of pruning the rest of the ranked list.
		if ctx.Err() != nil {
			break
		}
		nc := cand.apply(tr, st.Corpus.Vocab)
		key := nc.key()
		if seen.has(key) {
			continue
		}
		if st.Config.EarlyCheck {
			t0 := time.Now()
			pprof.SetGoroutineLabels(o.ctxCheck)
			err := st.checkScript(o.ctxCheck, sess, dag.ToScript(nc.lines))
			pprof.SetGoroutineLabels(o.ctxExtend)
			dur := time.Since(t0)
			res.CheckTime += dur
			res.ExecChecks++
			if err != nil {
				res.Pruned++
				if quarantined, panicked := classifyQuarantine(err); quarantined {
					res.Health.add(panicked)
					if o.enabled() && ctx.Err() == nil {
						o.emit(obs.Event{Kind: obs.EvCandidateQuarantined, Phase: obs.PhaseCheck,
							Detail: quarantineDetail(panicked), Dur: dur, Err: err.Error()})
					}
				} else if o.enabled() && ctx.Err() == nil {
					o.emit(obs.Event{Kind: obs.EvCandidatePruned, Phase: obs.PhaseCheck, Detail: tr.String(), Dur: dur, Err: err.Error()})
				}
				continue
			}
			nc.checked = true
			if o.enabled() {
				o.emit(obs.Event{Kind: obs.EvCandidateExecuted, Phase: obs.PhaseCheck, Detail: tr.String(), Dur: dur})
			}
		}
		seen.add(key)
		acc = append(acc, nc)
		admitted++
		res.Admitted++
	}
	return acc
}

// verifyCache shares candidate outputs and downstream-model accuracies
// across the grid cells of one StandardizeGrid call, so threshold sweeps
// pay for each execution and each model training exactly once.
type verifyCache struct {
	origOut *frame.Frame
	// out maps candidates to their output frame (nil = failed to execute).
	out map[*candidate]*frame.Frame
	// acc memoizes downstream accuracy per candidate and model config key.
	acc map[accKey]accVal
	// origAcc memoizes the original output's accuracy per model config key.
	origAcc map[string]accVal
}

type accKey struct {
	cand *candidate
	cfg  string
}

type accVal struct {
	acc float64
	err error
}

func newVerifyCache(origOut *frame.Frame) *verifyCache {
	return &verifyCache{
		origOut: origOut,
		out:     map[*candidate]*frame.Frame{},
		acc:     map[accKey]accVal{},
		origAcc: map[string]accVal{},
	}
}

// modelKey is a collision-free encoding of every ModelConfig field: %q
// guards separator characters inside the string fields, and the float is
// keyed by its exact bit pattern (formatting with %g can collide across
// distinct values, silently reusing a wrong cached accuracy).
func modelKey(m intent.ModelConfig) string {
	return fmt.Sprintf("%q/%d/%x/%q/%d",
		m.Target, m.Seed, math.Float64bits(m.TestFrac), m.Protected, m.Epochs)
}

// satisfied evaluates the constraint against a candidate's cached output,
// memoizing model accuracies so Δ_M checks across thresholds reduce to
// arithmetic after the first evaluation.
func (vc *verifyCache) satisfied(constraint intent.Constraint, cand *candidate, out *frame.Frame) (bool, float64, error) {
	if constraint.Measure != intent.MeasureModel {
		return constraint.Satisfied(vc.origOut, out)
	}
	key := modelKey(constraint.Model)
	ov, ok := vc.origAcc[key]
	if !ok {
		a, err := intent.ModelAccuracy(vc.origOut, constraint.Model)
		ov = accVal{acc: a, err: err}
		vc.origAcc[key] = ov
	}
	if ov.err != nil {
		return false, 0, ov.err
	}
	ck := accKey{cand: cand, cfg: key}
	cv, ok := vc.acc[ck]
	if !ok {
		a, err := intent.ModelAccuracy(out, constraint.Model)
		cv = accVal{acc: a, err: err}
		vc.acc[ck] = cv
	}
	if cv.err != nil {
		return false, 0, cv.err
	}
	var delta float64
	switch {
	case ov.acc == 0 && cv.acc == 0:
		delta = 0
	case ov.acc == 0:
		delta = 100
	default:
		delta = math.Abs(ov.acc-cv.acc) / ov.acc * 100
	}
	return delta <= constraint.Tau, delta, nil
}

// verifyWith implements VerifyAllConstraints: candidates are sorted by RE
// and the best executable, intent-preserving one wins; the original script
// is the fallback (improvement 0), matching the paper's guarantee that LS
// never worsens standardness. The context is polled per candidate, so a
// canceled verification falls back to the input promptly. Returns the
// winning candidate and how many candidates were examined.
func (st *Standardizer) verifyWith(ctx context.Context, o *obsState, sess interp.Session, archive []*candidate, orig *candidate, constraint intent.Constraint, cache *verifyCache, res *Result) (*candidate, int) {
	sorted := append([]*candidate(nil), archive...)
	sort.Slice(sorted, func(i, j int) bool { return less(sorted[i], sorted[j]) })
	checked := 0
	for _, cand := range sorted {
		if cand.re >= orig.re {
			break // no remaining candidate can improve
		}
		if st.Config.VerifyLimit > 0 && checked >= st.Config.VerifyLimit {
			break
		}
		if ctx.Err() != nil {
			break // canceled: fall back to the input without poisoning the cache
		}
		checked++
		out, cached := cache.out[cand]
		if !cached {
			t0 := time.Now()
			run, err := st.runScript(o.ctxVerify, sess, dag.ToScript(cand.lines))
			res.ExecChecks++
			if err != nil || run == nil || run.Main == nil {
				if ctx.Err() != nil {
					// A cancellation is not an execution failure: leave the
					// candidate un-cached so a later cell could still run it.
					break
				}
				if quarantined, panicked := classifyQuarantine(err); quarantined {
					res.Health.Verify.add(panicked)
					if o.enabled() {
						o.emit(obs.Event{Kind: obs.EvCandidateQuarantined, Phase: obs.PhaseVerify,
							Detail: quarantineDetail(panicked), Dur: time.Since(t0), Err: err.Error()})
					}
					// A budget trip (not a panic) earns a second chance in
					// sampled-tuple mode: the candidate may be fine on a
					// bounded sample even when the full run is too expensive.
					if !panicked {
						verdict, ok, val := st.verifyDegraded(ctx, o, cand, orig, constraint)
						if verdict {
							res.Health.VerifyDegraded = true
							if ok {
								res.IntentValue = val
								return cand, checked
							}
						}
					}
				}
				cache.out[cand] = nil
				continue
			}
			out = run.Main
			cache.out[cand] = out
			if o.enabled() {
				o.emit(obs.Event{Kind: obs.EvCandidateExecuted, Phase: obs.PhaseVerify, Detail: "verify", Dur: time.Since(t0)})
			}
		}
		if out == nil {
			continue
		}
		ok, val, err := cache.satisfied(constraint, cand, out)
		if err != nil || !ok {
			continue
		}
		res.IntentValue = val
		if o.enabled() {
			o.emit(obs.Event{Kind: obs.EvVerifyPass, Phase: obs.PhaseVerify, Detail: fmt.Sprintf("intent=%.3f", val)})
		}
		return cand, checked
	}
	res.IntentValue = identityIntent(constraint)
	return orig, checked
}

// degradedSampleRows bounds the inputs of a sampled-tuple verification.
const degradedSampleRows = 2000

// verifyDegraded is the sampled-tuple fallback for a candidate whose
// full-data verification run exceeded its resource budget: both the
// original script and the candidate re-run uncached against sources sampled
// down to degradedSampleRows, under the same governor, and the constraint
// is evaluated on the sampled outputs directly (no memoization — the
// sampled accuracies must not contaminate the full-data caches). Returns
// whether a verdict was produced at all (false when even the sampled runs
// fail), whether the constraint held, and the measured intent value.
func (st *Standardizer) verifyDegraded(ctx context.Context, o *obsState, cand, orig *candidate, constraint intent.Constraint) (verdict, ok bool, val float64) {
	srcs := interp.SampleSources(st.execSources(), degradedSampleRows, st.Config.Seed)
	opts := st.interpOptions()
	origRun, err := interp.RunContext(ctx, dag.ToScript(orig.lines), srcs, opts)
	if err != nil || origRun.Main == nil {
		return false, false, 0
	}
	candRun, err := interp.RunContext(ctx, dag.ToScript(cand.lines), srcs, opts)
	if err != nil || candRun.Main == nil {
		return false, false, 0
	}
	ok, val, err = constraint.Satisfied(origRun.Main, candRun.Main)
	if err != nil {
		return false, false, 0
	}
	if o.enabled() {
		o.emit(obs.Event{Kind: obs.EvVerifyDegraded, Phase: obs.PhaseVerify, N: degradedSampleRows,
			Detail: fmt.Sprintf("intent=%.3f ok=%v", val, ok)})
	}
	return true, ok, val
}

// identityIntent is the intent value of returning the input unchanged.
func identityIntent(c intent.Constraint) float64 {
	switch c.Measure {
	case intent.MeasureJaccard, intent.MeasureRowJaccard:
		return 1 // identical outputs are maximally similar
	default:
		return 0 // zero accuracy change / zero transport distance
	}
}
