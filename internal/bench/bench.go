// Package bench regenerates every table and figure of the paper's
// evaluation (Section 6) against the synthetic competitions in
// internal/corpusgen. Each experiment returns one or more text Tables whose
// rows mirror what the paper reports; EXPERIMENTS.md records the measured
// values next to the published ones.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"lucidscript/internal/core"
	"lucidscript/internal/corpusgen"
	"lucidscript/internal/dag"
	"lucidscript/internal/entropy"
	"lucidscript/internal/frame"
	"lucidscript/internal/intent"
	"lucidscript/internal/interp"
	"lucidscript/internal/obs"
	"lucidscript/internal/script"
)

// Options scales the experiments. The zero value gives the fast profile
// used by `lsbench` (small data, capped leave-one-out); raise RowScale and
// ScriptsPerDataset to approach the paper's full runs.
type Options struct {
	// Seed drives all generation and search determinism (default 1).
	Seed int64
	// RowScale scales each competition's tuple count (default 0.02).
	RowScale float64
	// MinRows floors the scaled row count (default 240).
	MinRows int
	// ScriptsPerDataset caps the leave-one-out loop (default 6; 0 = all).
	ScriptsPerDataset int
	// SeqLength and BeamSize override the LS defaults when positive.
	SeqLength, BeamSize int
	// Datasets restricts the competitions (default: all six).
	Datasets []string
	// DisableExecCache turns off the execution-prefix cache (the zero
	// value keeps it on, matching core.DefaultConfig).
	DisableExecCache bool
	// Limits, when non-nil, installs the per-execution resource governor
	// on every standardization the experiments run.
	Limits *interp.Limits
	// BatchWorkers bounds the worker pool of the "batch" experiment
	// (default GOMAXPROCS).
	BatchWorkers int
	// JSONPath, when set, makes experiments with machine-readable output
	// (currently "batch", "serve", and "regress") also write a JSON record
	// file there.
	JSONPath string
	// BatchBaselinePath / ServeBaselinePath / RouteBaselinePath /
	// CurateBaselinePath point the "regress" experiment at committed
	// baseline files; when any is set the fresh replay is gated against it
	// (see GateConfig).
	BatchBaselinePath  string
	ServeBaselinePath  string
	RouteBaselinePath  string
	CurateBaselinePath string
	// Gate tunes the regression thresholds for the "regress" experiment.
	Gate GateConfig
	// Progress receives one line per unit of work when non-nil.
	Progress io.Writer
	// Tracer, when non-nil, receives structured search events from every
	// standardization the experiments run.
	Tracer obs.Tracer
	// Metrics, when non-nil, accumulates search counters across every
	// standardization the experiments run.
	Metrics *obs.Metrics
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.RowScale == 0 {
		o.RowScale = 0.02
	}
	if o.MinRows == 0 {
		o.MinRows = 240
	}
	if o.ScriptsPerDataset == 0 {
		o.ScriptsPerDataset = 6
	}
	if len(o.Datasets) == 0 {
		o.Datasets = corpusgen.Names()
	}
	return o
}

func (o Options) logf(format string, args ...interface{}) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// WithDefaults returns the options with the fast-profile defaults filled
// in, for experiment implementations living outside this package (see
// serveexp).
func (o Options) WithDefaults() Options { return o.withDefaults() }

// Logf writes one progress line to Progress when it is set.
func (o Options) Logf(format string, args ...interface{}) { o.logf(format, args...) }

// GenerateDataset materializes one named competition corpus at the scale
// these options describe.
func (o Options) GenerateDataset(name string) (*corpusgen.Generated, error) {
	c, err := corpusgen.Get(name)
	if err != nil {
		return nil, err
	}
	return c.Generate(corpusgen.GenOptions{
		Seed:     o.Seed,
		RowScale: o.RowScale,
		MinRows:  o.MinRows,
	})
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// generated caches corpora per dataset within one experiment run.
type genCache struct {
	opts Options
	m    map[string]*corpusgen.Generated
}

func newGenCache(opts Options) *genCache {
	return &genCache{opts: opts, m: map[string]*corpusgen.Generated{}}
}

func (g *genCache) get(name string) (*corpusgen.Generated, error) {
	if v, ok := g.m[name]; ok {
		return v, nil
	}
	gen, err := g.opts.GenerateDataset(name)
	if err != nil {
		return nil, err
	}
	g.m[name] = gen
	return gen, nil
}

// lsConfig builds the LS configuration for a run.
func lsConfig(opts Options, measure intent.Measure, tau float64, target string) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = opts.Seed
	cfg.ExecCache = !opts.DisableExecCache
	cfg.Limits = opts.Limits
	cfg.Tracer = opts.Tracer
	cfg.Metrics = opts.Metrics
	if opts.SeqLength > 0 {
		cfg.SeqLength = opts.SeqLength
	}
	if opts.BeamSize > 0 {
		cfg.BeamSize = opts.BeamSize
	}
	switch measure {
	case intent.MeasureJaccard:
		cfg.Constraint = intent.Constraint{Measure: intent.MeasureJaccard, Tau: tau}
	case intent.MeasureModel:
		cfg.Constraint = intent.Constraint{
			Measure: intent.MeasureModel,
			Tau:     tau,
			Model:   intent.ModelConfig{Target: target},
		}
	}
	return cfg
}

// lsRun holds one standardization outcome.
type lsRun struct {
	improvement float64
	intentValue float64
	timings     core.Timings
	output      *script.Script
	execChecks  int
}

// leaveOneOut standardizes up to cap corpus scripts, each against the rest,
// using the supplied corpus override (nil = the generated corpus) and data
// sources override (nil = the generated sources).
func leaveOneOut(gen *corpusgen.Generated, corpus []*script.Script, sources map[string]*frame.Frame, cfg core.Config, cap int, logf func(string, ...interface{})) []lsRun {
	inputs := gen.ScriptsOnly()
	if cap > 0 && len(inputs) > cap {
		inputs = inputs[:cap]
	}
	if sources == nil {
		sources = gen.Sources
	}
	var runs []lsRun
	for i, su := range inputs {
		var rest []*script.Script
		if corpus == nil {
			for j, other := range gen.ScriptsOnly() {
				if j != i {
					rest = append(rest, other)
				}
			}
		} else {
			rest = corpus
		}
		std := core.New(rest, sources, cfg)
		start := time.Now()
		res, err := std.Standardize(su)
		if err != nil {
			logf("  script %d: input failed to execute (%v), skipped", i, err)
			continue
		}
		logf("  script %d: improvement %.1f%% in %s", i, res.ImprovementPct, time.Since(start).Round(time.Millisecond))
		runs = append(runs, lsRun{
			improvement: res.ImprovementPct,
			intentValue: res.IntentValue,
			timings:     res.Timings,
			output:      res.Output,
			execChecks:  res.ExecChecks,
		})
	}
	return runs
}

// corpusVocab builds the vocabulary of a script list.
func corpusVocab(scripts []*script.Script) *entropy.Vocab {
	graphs := make([]*dag.Graph, len(scripts))
	for i, s := range scripts {
		graphs[i] = dag.Build(s)
	}
	return entropy.BuildVocab(graphs)
}

// fmtF renders a float with one decimal.
func fmtF(v float64) string { return fmt.Sprintf("%.1f", v) }

// sortedCopy returns a sorted copy of the values.
func sortedCopy(vals []float64) []float64 {
	out := append([]float64(nil), vals...)
	sort.Float64s(out)
	return out
}
