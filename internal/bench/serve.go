package bench

import "errors"

// ServeRunner is the implementation of the "serve" experiment, installed by
// cmd/lsbench from internal/bench/serveexp. The experiment drives the HTTP
// service through the facade package, which this package cannot import: the
// root package's tests import bench, so bench → lucidscript would be a
// cycle. The one-function indirection keeps the registry complete while the
// facade-dependent code lives one package over.
var ServeRunner func(Options) (*Table, error)

// Serve measures what serving standardization over HTTP costs relative to
// calling the library directly. See serveexp.Run for the implementation.
func Serve(opts Options) (*Table, error) {
	if ServeRunner == nil {
		return nil, errors.New("bench: serve experiment not linked in (install bench.ServeRunner, see internal/bench/serveexp)")
	}
	return ServeRunner(opts)
}
