package bench

import "errors"

// ServeRunner is the implementation of the "serve" experiment, installed by
// cmd/lsbench from internal/bench/serveexp. The experiment drives the HTTP
// service through the facade package, which this package cannot import: the
// root package's tests import bench, so bench → lucidscript would be a
// cycle. The one-function indirection keeps the registry complete while the
// facade-dependent code lives one package over.
var ServeRunner func(Options) (*Table, error)

// Serve measures what serving standardization over HTTP costs relative to
// calling the library directly. See serveexp.Run for the implementation.
func Serve(opts Options) (*Table, error) {
	if ServeRunner == nil {
		return nil, errors.New("bench: serve experiment not linked in (install bench.ServeRunner, see internal/bench/serveexp)")
	}
	return ServeRunner(opts)
}

// RouteRunner is the implementation of the "route" experiment, installed by
// cmd/lsbench from internal/bench/serveexp for the same import-cycle reason
// as ServeRunner: the routed arm spins up real serve.Servers behind an
// internal/router.Router, and both need the facade.
var RouteRunner func(Options) (*Table, error)

// Route measures what fronting the service with lsrouter costs relative to
// addressing a single replica directly. See serveexp.Route for the
// implementation.
func Route(opts Options) (*Table, error) {
	if RouteRunner == nil {
		return nil, errors.New("bench: route experiment not linked in (install bench.RouteRunner, see internal/bench/serveexp)")
	}
	return RouteRunner(opts)
}

// RegressRunner is the implementation of the "regress" experiment, installed
// by cmd/lsbench from internal/bench/serveexp for the same import-cycle
// reason as ServeRunner: the regress replay includes the serve experiment,
// which needs the facade.
var RegressRunner func(Options) (*Table, error)

// Regress replays the batch and serve experiments, writes a combined
// machine-readable report (Options.JSONPath), and when baseline paths are
// set compares the fresh wall-clock numbers against the committed
// BENCH_batch.json / BENCH_serve.json within the configured tolerance. See
// serveexp.Regress for the implementation.
func Regress(opts Options) (*Table, error) {
	if RegressRunner == nil {
		return nil, errors.New("bench: regress experiment not linked in (install bench.RegressRunner, see internal/bench/serveexp)")
	}
	return RegressRunner(opts)
}
