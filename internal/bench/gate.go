package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// ServeResult is the JSON shape of one "serve" experiment record: the HTTP
// standardization service (submit over the wire, poll to completion) versus
// direct in-process batch calls on the same jobs. The type lives here (and
// not in serveexp, which produces it) so the regression gate can compare
// reports against committed baselines without importing the facade.
type ServeResult struct {
	Dataset string `json:"dataset"`
	Jobs    int    `json:"jobs"`
	Workers int    `json:"workers"`
	// Reps is how many times each arm ran; the times below are the best
	// rep, the standard way to cut scheduler noise out of wall-clock runs.
	Reps     int     `json:"reps"`
	DirectMS float64 `json:"direct_ms"`
	ServedMS float64 `json:"served_ms"`
	// OverheadPct is (served - direct) / direct in percent.
	OverheadPct float64 `json:"overhead_pct"`
	// PerJobOverheadMS is the absolute service tax amortized per job.
	PerJobOverheadMS float64 `json:"per_job_overhead_ms"`
	// Identical reports that every served standardized script matched its
	// direct counterpart byte for byte (the experiment fails otherwise).
	Identical bool `json:"identical"`
}

// RouteResult is the JSON shape of one "route" experiment record: the same
// jobs submitted through lsrouter fronting multiple lsserved replicas
// versus a single directly-addressed replica. The gap is the routing tax —
// the extra proxy hop, id namespacing, and ring lookup per request.
type RouteResult struct {
	Dataset  string `json:"dataset"`
	Jobs     int    `json:"jobs"`
	Replicas int    `json:"replicas"`
	Workers  int    `json:"workers"`
	// Reps is how many times each arm ran; the times below are the best rep.
	Reps     int     `json:"reps"`
	ServedMS float64 `json:"served_ms"`
	RoutedMS float64 `json:"routed_ms"`
	// OverheadPct is (routed - served) / served in percent.
	OverheadPct float64 `json:"overhead_pct"`
	// PerJobOverheadMS is the absolute routing tax amortized per job.
	PerJobOverheadMS float64 `json:"per_job_overhead_ms"`
	// Identical reports that every routed standardized script matched its
	// single-replica counterpart byte for byte.
	Identical bool `json:"identical"`
}

// RegressReport is the machine-readable output of the "regress" experiment:
// a fresh replay of the batch, serve, route, and curate experiments,
// comparable against the committed BENCH_batch.json / BENCH_serve.json /
// BENCH_route.json / BENCH_curate.json baselines.
type RegressReport struct {
	Batch  []BatchResult  `json:"batch"`
	Serve  []ServeResult  `json:"serve"`
	Route  []RouteResult  `json:"route,omitempty"`
	Curate []CurateResult `json:"curate,omitempty"`
}

// GateConfig tunes the regression gate. Wall-clock comparisons across
// machines are noisy, so the gate has two tiers: findings above the warn
// ratio are reported but tolerated, findings above the fail ratio (or any
// non-identical output) flunk the gate.
type GateConfig struct {
	// WarnRatio flags current/baseline wall-clock ratios above it (default 1.5).
	WarnRatio float64
	// FailRatio flunks ratios above it (default 2.0).
	FailRatio float64
}

func (c GateConfig) withDefaults() GateConfig {
	if c.WarnRatio == 0 {
		c.WarnRatio = 1.5
	}
	if c.FailRatio == 0 {
		c.FailRatio = 2.0
	}
	return c
}

// Gate severity levels, ordered.
const (
	GateOK   = "ok"
	GateWarn = "warn"
	GateFail = "fail"
)

// GateFinding is one baseline comparison: a wall-clock metric of one dataset
// in one experiment, current run vs committed baseline.
type GateFinding struct {
	Experiment string  `json:"experiment"` // "batch" or "serve"
	Dataset    string  `json:"dataset"`
	Metric     string  `json:"metric"`
	BaselineMS float64 `json:"baseline_ms"`
	CurrentMS  float64 `json:"current_ms"`
	Ratio      float64 `json:"ratio"`
	Level      string  `json:"level"`
	Note       string  `json:"note,omitempty"`
}

func gateLevel(ratio float64, cfg GateConfig) string {
	switch {
	case ratio > cfg.FailRatio:
		return GateFail
	case ratio > cfg.WarnRatio:
		return GateWarn
	default:
		return GateOK
	}
}

func compareMS(exp, dataset, metric string, base, cur float64, cfg GateConfig) GateFinding {
	ratio := 0.0
	if base > 0 {
		ratio = cur / base
	}
	return GateFinding{
		Experiment: exp, Dataset: dataset, Metric: metric,
		BaselineMS: base, CurrentMS: cur, Ratio: ratio,
		Level: gateLevel(ratio, cfg),
	}
}

// Gate compares a fresh regression report against the committed baselines
// and returns one finding per (dataset, metric) pair. Datasets present in
// only one side produce a warn-level note instead of a ratio; any
// non-identical output in the report is an immediate fail, as is a curate
// record whose warm or apply speedup falls through its contract floor.
func Gate(report RegressReport, batchBase []BatchResult, serveBase []ServeResult, routeBase []RouteResult, curateBase []CurateResult, cfg GateConfig) []GateFinding {
	cfg = cfg.withDefaults()
	var findings []GateFinding

	baseByName := make(map[string]BatchResult, len(batchBase))
	for _, b := range batchBase {
		baseByName[b.Dataset] = b
	}
	for _, cur := range report.Batch {
		if !cur.Identical {
			findings = append(findings, GateFinding{
				Experiment: "batch", Dataset: cur.Dataset, Metric: "identical",
				Level: GateFail, Note: "batch output diverged from sequential",
			})
		}
		base, ok := baseByName[cur.Dataset]
		if !ok {
			findings = append(findings, GateFinding{
				Experiment: "batch", Dataset: cur.Dataset, Metric: "batch_ms",
				CurrentMS: cur.BatchMS, Level: GateWarn, Note: "no baseline record",
			})
			continue
		}
		findings = append(findings,
			compareMS("batch", cur.Dataset, "sequential_ms", base.SequentialMS, cur.SequentialMS, cfg),
			compareMS("batch", cur.Dataset, "batch_ms", base.BatchMS, cur.BatchMS, cfg))
	}

	serveByName := make(map[string]ServeResult, len(serveBase))
	for _, s := range serveBase {
		serveByName[s.Dataset] = s
	}
	for _, cur := range report.Serve {
		if !cur.Identical {
			findings = append(findings, GateFinding{
				Experiment: "serve", Dataset: cur.Dataset, Metric: "identical",
				Level: GateFail, Note: "served output diverged from direct",
			})
		}
		base, ok := serveByName[cur.Dataset]
		if !ok {
			findings = append(findings, GateFinding{
				Experiment: "serve", Dataset: cur.Dataset, Metric: "served_ms",
				CurrentMS: cur.ServedMS, Level: GateWarn, Note: "no baseline record",
			})
			continue
		}
		findings = append(findings,
			compareMS("serve", cur.Dataset, "direct_ms", base.DirectMS, cur.DirectMS, cfg),
			compareMS("serve", cur.Dataset, "served_ms", base.ServedMS, cur.ServedMS, cfg))
	}

	routeByName := make(map[string]RouteResult, len(routeBase))
	for _, r := range routeBase {
		routeByName[r.Dataset] = r
	}
	for _, cur := range report.Route {
		if !cur.Identical {
			findings = append(findings, GateFinding{
				Experiment: "route", Dataset: cur.Dataset, Metric: "identical",
				Level: GateFail, Note: "routed output diverged from single-replica",
			})
		}
		base, ok := routeByName[cur.Dataset]
		if !ok {
			findings = append(findings, GateFinding{
				Experiment: "route", Dataset: cur.Dataset, Metric: "routed_ms",
				CurrentMS: cur.RoutedMS, Level: GateWarn, Note: "no baseline record",
			})
			continue
		}
		findings = append(findings,
			compareMS("route", cur.Dataset, "served_ms", base.ServedMS, cur.ServedMS, cfg),
			compareMS("route", cur.Dataset, "routed_ms", base.RoutedMS, cur.RoutedMS, cfg))
	}

	curateByName := make(map[string]CurateResult, len(curateBase))
	for _, c := range curateBase {
		curateByName[c.Corpus] = c
	}
	for _, cur := range report.Curate {
		if !cur.Identical {
			findings = append(findings, GateFinding{
				Experiment: "curate", Dataset: cur.Corpus, Metric: "identical",
				Level: GateFail, Note: "incremental apply diverged from from-scratch rebuild",
			})
		}
		// The speedup floors are the registry's contract and are
		// machine-independent ratios, so they gate even without a baseline.
		if cur.WarmSpeedup < WarmSpeedupFloor {
			findings = append(findings, GateFinding{
				Experiment: "curate", Dataset: cur.Corpus, Metric: "warm_speedup",
				BaselineMS: WarmSpeedupFloor, CurrentMS: cur.WarmSpeedup, Level: GateFail,
				Note: fmt.Sprintf("warm load only %.1fx faster than cold curation (floor %.0fx)",
					cur.WarmSpeedup, WarmSpeedupFloor),
			})
		}
		if cur.ApplySpeedup < ApplySpeedupFloor {
			findings = append(findings, GateFinding{
				Experiment: "curate", Dataset: cur.Corpus, Metric: "apply_speedup",
				BaselineMS: ApplySpeedupFloor, CurrentMS: cur.ApplySpeedup, Level: GateFail,
				Note: fmt.Sprintf("1%%-churn apply only %.1fx faster than rebuild (floor %.0fx)",
					cur.ApplySpeedup, ApplySpeedupFloor),
			})
		}
		base, ok := curateByName[cur.Corpus]
		if !ok {
			findings = append(findings, GateFinding{
				Experiment: "curate", Dataset: cur.Corpus, Metric: "warm_load_ms",
				CurrentMS: cur.WarmLoadMS, Level: GateWarn, Note: "no baseline record",
			})
			continue
		}
		findings = append(findings,
			compareMS("curate", cur.Corpus, "cold_curate_ms", base.ColdCurateMS, cur.ColdCurateMS, cfg),
			compareMS("curate", cur.Corpus, "warm_load_ms", base.WarmLoadMS, cur.WarmLoadMS, cfg),
			compareMS("curate", cur.Corpus, "full_load_ms", base.FullLoadMS, cur.FullLoadMS, cfg),
			compareMS("curate", cur.Corpus, "apply_ms", base.ApplyMS, cur.ApplyMS, cfg))
	}
	return findings
}

// GateTable renders the findings as a result table.
func GateTable(findings []GateFinding) *Table {
	t := &Table{
		Title:  "Perf-regression gate (current run vs committed baselines)",
		Header: []string{"experiment", "dataset", "metric", "baseline", "current", "ratio", "level"},
	}
	for _, f := range findings {
		ratio := "-"
		if f.Ratio > 0 {
			ratio = fmt.Sprintf("%.2fx", f.Ratio)
		}
		level := f.Level
		if f.Note != "" {
			level += " (" + f.Note + ")"
		}
		t.Rows = append(t.Rows, []string{
			f.Experiment, f.Dataset, f.Metric,
			fmt.Sprintf("%.0fms", f.BaselineMS),
			fmt.Sprintf("%.0fms", f.CurrentMS),
			ratio, level,
		})
	}
	return t
}

// GateSummary counts findings by level and renders a one-line verdict.
func GateSummary(findings []GateFinding) (fails, warns int, line string) {
	for _, f := range findings {
		switch f.Level {
		case GateFail:
			fails++
		case GateWarn:
			warns++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "gate: %d comparisons, %d warn, %d fail", len(findings), warns, fails)
	if fails > 0 {
		b.WriteString(" — REGRESSION")
	} else {
		b.WriteString(" — pass")
	}
	return fails, warns, b.String()
}

// LoadBatchBaseline reads a committed BENCH_batch.json.
func LoadBatchBaseline(path string) ([]BatchResult, error) {
	var out []BatchResult
	if err := readJSON(path, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// LoadServeBaseline reads a committed BENCH_serve.json.
func LoadServeBaseline(path string) ([]ServeResult, error) {
	var out []ServeResult
	if err := readJSON(path, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// LoadRouteBaseline reads a committed BENCH_route.json.
func LoadRouteBaseline(path string) ([]RouteResult, error) {
	var out []RouteResult
	if err := readJSON(path, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// LoadCurateBaseline reads a committed BENCH_curate.json.
func LoadCurateBaseline(path string) ([]CurateResult, error) {
	var out []CurateResult
	if err := readJSON(path, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// LoadRegressReport reads a report produced by `lsbench -exp regress -json`.
func LoadRegressReport(path string) (RegressReport, error) {
	var out RegressReport
	err := readJSON(path, &out)
	return out, err
}

func readJSON(path string, v interface{}) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return nil
}

// writeJSON writes v indented to path, newline-terminated, matching the
// committed baseline formatting so refreshes produce minimal diffs.
func writeJSON(path string, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return nil
}
