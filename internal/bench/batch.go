package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"lucidscript/internal/core"
	"lucidscript/internal/intent"
)

// BatchResult is the JSON shape written next to the "batch" experiment's
// table (see Options.JSONPath): one record per dataset comparing a batch
// standardization against the same jobs run sequentially, each with its own
// freshly curated system.
type BatchResult struct {
	Dataset string `json:"dataset"`
	Jobs    int    `json:"jobs"`
	Workers int    `json:"workers"`
	// Reps is how many times each arm ran; the times below are the best
	// rep, the standard way to cut scheduler noise out of wall-clock runs.
	Reps         int     `json:"reps"`
	SequentialMS float64 `json:"sequential_ms"`
	BatchMS      float64 `json:"batch_ms"`
	Speedup      float64 `json:"speedup"`
	// CurateMS is the one-time curation cost inside the batch run; the
	// sequential baseline pays it once per job.
	CurateMS float64 `json:"curate_ms"`
	// CacheHits counts shared-session prefix hits across all batch jobs.
	CacheHits int64 `json:"cache_hits"`
	// Identical reports that every batch output matched its sequential
	// counterpart byte for byte (the experiment fails otherwise).
	Identical bool `json:"identical"`
}

// Batch measures the concurrent batch engine against the sequential
// baseline the paper's single-user workflow implies: N users each curating
// their own system and standardizing one script. The batch path curates
// once, shares the execution-prefix cache, and fans jobs across workers;
// outputs must stay byte-identical to the sequential runs.
func Batch(opts Options) (*Table, error) {
	records, table, err := BatchRecords(opts)
	if err != nil {
		return nil, err
	}
	if opts.JSONPath != "" {
		if err := writeJSON(opts.JSONPath, records); err != nil {
			return nil, err
		}
		opts.logf("batch results written to %s", opts.JSONPath)
	}
	return table, nil
}

// BatchRecords runs the batch experiment and returns the per-dataset
// records alongside the rendered table, without touching Options.JSONPath.
// The regress experiment reuses it to assemble a combined report.
func BatchRecords(opts Options) ([]BatchResult, *Table, error) {
	opts = opts.withDefaults()
	workers := opts.BatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	gc := newGenCache(opts)
	table := &Table{
		Title:  "Batch standardization vs sequential (one curation + shared cache vs per-job systems)",
		Header: []string{"dataset", "jobs", "workers", "seq", "batch", "speedup", "curate", "cache hits"},
	}
	var records []BatchResult
	for _, name := range opts.Datasets {
		gen, err := gc.get(name)
		if err != nil {
			return nil, nil, err
		}
		corpus := gen.ScriptsOnly()
		jobs := gen.Sample(opts.ScriptsPerDataset, opts.Seed+17)
		cfg := lsConfig(opts, intent.MeasureJaccard, 0.8, "")

		// The arms run interleaved (sequential rep, then batch rep) so
		// machine drift hits both equally, and the best rep per arm is
		// recorded so one scheduler hiccup does not decide the comparison.
		const reps = 5
		var seqDur, batchDur, curate time.Duration
		var cacheHits int64
		seqOut := make([]string, len(jobs))
		for r := 0; r < reps; r++ {
			// Sequential baseline: each job pays for its own curation,
			// exactly what N independent single-shot users would do.
			// Collect first so garbage from earlier arms/datasets cannot
			// charge its GC pause to this measurement.
			runtime.GC()
			seqStart := time.Now()
			for i, su := range jobs {
				std := core.New(corpus, gen.Sources, cfg)
				res, err := std.Standardize(su)
				if err != nil {
					return nil, nil, fmt.Errorf("bench: %s sequential job %d: %w", name, i, err)
				}
				seqOut[i] = res.Output.Source()
			}
			if d := time.Since(seqStart); r == 0 || d < seqDur {
				seqDur = d
			}

			// Batch: one curation, one shared session cache, bounded pool.
			runtime.GC()
			batchStart := time.Now()
			std := core.New(corpus, gen.Sources, cfg)
			eng := core.NewEngine(std, workers, 0)
			results, errs := eng.StandardizeBatch(context.Background(), jobs)
			if d := time.Since(batchStart); r == 0 || d < batchDur {
				batchDur = d
			}
			curate = std.Corpus.CurateTime
			cacheHits = 0
			for i := range jobs {
				if errs[i] != nil {
					return nil, nil, fmt.Errorf("bench: %s batch job %d: %w", name, i, errs[i])
				}
				if results[i].Output.Source() != seqOut[i] {
					return nil, nil, fmt.Errorf("bench: %s batch output diverges from sequential", name)
				}
				cacheHits += results[i].CacheStats.Hits
			}
		}

		rec := BatchResult{
			Dataset:      name,
			Jobs:         len(jobs),
			Workers:      workers,
			Reps:         reps,
			SequentialMS: float64(seqDur.Microseconds()) / 1e3,
			BatchMS:      float64(batchDur.Microseconds()) / 1e3,
			Speedup:      float64(seqDur) / float64(batchDur),
			CurateMS:     float64(curate.Microseconds()) / 1e3,
			CacheHits:    cacheHits,
			Identical:    true,
		}
		records = append(records, rec)
		table.Rows = append(table.Rows, []string{
			name,
			fmt.Sprintf("%d", rec.Jobs),
			fmt.Sprintf("%d", rec.Workers),
			fmt.Sprintf("%.0fms", rec.SequentialMS),
			fmt.Sprintf("%.0fms", rec.BatchMS),
			fmt.Sprintf("%.2fx", rec.Speedup),
			fmt.Sprintf("%.0fms", rec.CurateMS),
			fmt.Sprintf("%d", rec.CacheHits),
		})
		opts.logf("%s: %d jobs, sequential %s vs batch %s (%.2fx)",
			name, rec.Jobs, seqDur.Round(time.Millisecond), batchDur.Round(time.Millisecond), rec.Speedup)
	}
	// Aggregate row: the whole workload, batch vs sequential.
	if len(records) > 1 {
		total := BatchResult{Dataset: "all", Workers: workers, Reps: records[0].Reps, Identical: true}
		for _, r := range records {
			total.Jobs += r.Jobs
			total.SequentialMS += r.SequentialMS
			total.BatchMS += r.BatchMS
			total.CurateMS += r.CurateMS
			total.CacheHits += r.CacheHits
		}
		total.Speedup = total.SequentialMS / total.BatchMS
		records = append(records, total)
		table.Rows = append(table.Rows, []string{
			"all",
			fmt.Sprintf("%d", total.Jobs),
			fmt.Sprintf("%d", total.Workers),
			fmt.Sprintf("%.0fms", total.SequentialMS),
			fmt.Sprintf("%.0fms", total.BatchMS),
			fmt.Sprintf("%.2fx", total.Speedup),
			fmt.Sprintf("%.0fms", total.CurateMS),
			fmt.Sprintf("%d", total.CacheHits),
		})
	}
	return records, table, nil
}
