package bench

import (
	"lucidscript/internal/core"
	"lucidscript/internal/intent"
)

// Ablate evaluates the design choices DESIGN.md calls out, beyond the
// paper's own seq/K ablations (Figure 6): K-means transformation diversity
// (Algorithm 3) vs plain beam extension, early vs late execution checking,
// the chained-delete lookahead, and the ranked-step limit. Each variant
// reports the mean % improvement and mean execution-check count over the
// same leave-one-out inputs.
func Ablate(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	cache := newGenCache(opts)
	t := &Table{
		Title:  "Ablation: framework components (mean % improvement / mean exec checks)",
		Header: []string{"Dataset", "Variant", "mean %impr", "exec checks"},
	}
	variants := []struct {
		name  string
		tweak func(*core.Config)
	}{
		{"default (all on)", func(*core.Config) {}},
		{"no diversity", func(c *core.Config) { c.Diversity = false }},
		{"late checking", func(c *core.Config) { c.EarlyCheck = false }},
		{"no delete lookahead", func(c *core.Config) { c.DisableLookahead = true }},
		{"step limit 16", func(c *core.Config) { c.StepLimit = 16 }},
		{"beam K=1, no diversity", func(c *core.Config) { c.BeamSize = 1; c.Diversity = false }},
	}
	for _, name := range opts.Datasets {
		gen, err := cache.get(name)
		if err != nil {
			return nil, err
		}
		opts.logf("ablate: %s", name)
		for _, v := range variants {
			cfg := lsConfig(opts, intent.MeasureJaccard, 0.9, "")
			v.tweak(&cfg)
			runs := leaveOneOut(gen, nil, nil, cfg, opts.ScriptsPerDataset, func(string, ...interface{}) {})
			var imps, checks []float64
			for _, r := range runs {
				imps = append(imps, r.improvement)
				checks = append(checks, float64(r.execChecks))
			}
			t.Rows = append(t.Rows, []string{name, v.name, fmtF(mean(imps)), fmtF(mean(checks))})
		}
	}
	return t, nil
}
