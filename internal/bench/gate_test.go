package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func gateFixture() (RegressReport, []BatchResult, []ServeResult) {
	report := RegressReport{
		Batch: []BatchResult{
			{Dataset: "a", SequentialMS: 100, BatchMS: 50, Identical: true},
			{Dataset: "b", SequentialMS: 300, BatchMS: 160, Identical: true},
		},
		Serve: []ServeResult{
			{Dataset: "a", DirectMS: 80, ServedMS: 90, Identical: true},
		},
	}
	batchBase := []BatchResult{
		{Dataset: "a", SequentialMS: 100, BatchMS: 50},
		{Dataset: "b", SequentialMS: 100, BatchMS: 100},
	}
	serveBase := []ServeResult{{Dataset: "a", DirectMS: 80, ServedMS: 85}}
	return report, batchBase, serveBase
}

func findingFor(t *testing.T, fs []GateFinding, exp, dataset, metric string) GateFinding {
	t.Helper()
	for _, f := range fs {
		if f.Experiment == exp && f.Dataset == dataset && f.Metric == metric {
			return f
		}
	}
	t.Fatalf("no finding for %s/%s %s", exp, dataset, metric)
	return GateFinding{}
}

func TestGateLevels(t *testing.T) {
	report, batchBase, serveBase := gateFixture()
	fs := Gate(report, batchBase, serveBase, nil, nil, GateConfig{})

	// a: unchanged → ok.
	if f := findingFor(t, fs, "batch", "a", "batch_ms"); f.Level != GateOK {
		t.Fatalf("batch/a should be ok, got %+v", f)
	}
	// b sequential: 300 vs 100 = 3x → fail; b batch: 160 vs 100 = 1.6x → warn.
	if f := findingFor(t, fs, "batch", "b", "sequential_ms"); f.Level != GateFail {
		t.Fatalf("batch/b sequential should fail, got %+v", f)
	}
	if f := findingFor(t, fs, "batch", "b", "batch_ms"); f.Level != GateWarn {
		t.Fatalf("batch/b batch should warn, got %+v", f)
	}
	// serve a: 90 vs 85 → ok.
	if f := findingFor(t, fs, "serve", "a", "served_ms"); f.Level != GateOK {
		t.Fatalf("serve/a should be ok, got %+v", f)
	}

	fails, warns, line := GateSummary(fs)
	if fails != 1 || warns != 1 {
		t.Fatalf("summary fails=%d warns=%d", fails, warns)
	}
	if !strings.Contains(line, "REGRESSION") {
		t.Fatalf("summary line should flag regression: %q", line)
	}
	if tbl := GateTable(fs); len(tbl.Rows) != len(fs) {
		t.Fatalf("table rows = %d, want %d", len(tbl.Rows), len(fs))
	}
}

func TestGateNonIdenticalFails(t *testing.T) {
	report, batchBase, serveBase := gateFixture()
	report.Batch[0].Identical = false
	fs := Gate(report, batchBase, serveBase, nil, nil, GateConfig{})
	if f := findingFor(t, fs, "batch", "a", "identical"); f.Level != GateFail {
		t.Fatalf("non-identical output should fail, got %+v", f)
	}
}

func TestGateMissingBaselineWarns(t *testing.T) {
	report, batchBase, serveBase := gateFixture()
	report.Serve = append(report.Serve, ServeResult{Dataset: "new", ServedMS: 10, Identical: true})
	fs := Gate(report, batchBase, serveBase, nil, nil, GateConfig{})
	f := findingFor(t, fs, "serve", "new", "served_ms")
	if f.Level != GateWarn || f.Note == "" {
		t.Fatalf("missing baseline should warn with a note, got %+v", f)
	}
}

func TestGateConfigThresholds(t *testing.T) {
	report, batchBase, serveBase := gateFixture()
	// With a sky-high fail ratio nothing fails.
	fs := Gate(report, batchBase, serveBase, nil, nil, GateConfig{WarnRatio: 10, FailRatio: 20})
	if fails, _, _ := func() (int, int, string) { return GateSummary(fs) }(); fails != 0 {
		t.Fatalf("generous thresholds should not fail, got %d", fails)
	}
}

func TestGateCurateContract(t *testing.T) {
	report := RegressReport{Curate: []CurateResult{{
		Corpus: "gen-10k", Scripts: 10000,
		ColdCurateMS: 1000, WarmLoadMS: 10, FullLoadMS: 200, ApplyMS: 20, RebuildMS: 1000,
		WarmSpeedup: 100, ApplySpeedup: 50, Identical: true,
	}}}
	base := []CurateResult{{Corpus: "gen-10k", ColdCurateMS: 1000, WarmLoadMS: 10, FullLoadMS: 200, ApplyMS: 20}}

	fs := Gate(report, nil, nil, nil, base, GateConfig{})
	if fails, _, _ := GateSummary(fs); fails != 0 {
		t.Fatalf("healthy curate record should pass, got %d fails: %+v", fails, fs)
	}
	if f := findingFor(t, fs, "curate", "gen-10k", "warm_load_ms"); f.Level != GateOK {
		t.Fatalf("warm_load_ms should be ok, got %+v", f)
	}

	// Collapsed speedups and a divergent apply fail regardless of wall clock.
	report.Curate[0].WarmSpeedup = 2
	report.Curate[0].ApplySpeedup = 3
	report.Curate[0].Identical = false
	fs = Gate(report, nil, nil, nil, base, GateConfig{})
	for _, metric := range []string{"warm_speedup", "apply_speedup", "identical"} {
		if f := findingFor(t, fs, "curate", "gen-10k", metric); f.Level != GateFail {
			t.Fatalf("%s should fail, got %+v", metric, f)
		}
	}

	// A corpus with no baseline record warns instead of comparing.
	report.Curate[0].WarmSpeedup = 100
	report.Curate[0].ApplySpeedup = 50
	report.Curate[0].Identical = true
	fs = Gate(report, nil, nil, nil, nil, GateConfig{})
	if f := findingFor(t, fs, "curate", "gen-10k", "warm_load_ms"); f.Level != GateWarn || f.Note == "" {
		t.Fatalf("missing curate baseline should warn with a note, got %+v", f)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	report, batchBase, serveBase := gateFixture()

	bp := filepath.Join(dir, "batch.json")
	if err := writeJSON(bp, batchBase); err != nil {
		t.Fatal(err)
	}
	gotB, err := LoadBatchBaseline(bp)
	if err != nil || len(gotB) != len(batchBase) || gotB[0] != batchBase[0] {
		t.Fatalf("batch round trip: %v %+v", err, gotB)
	}

	sp := filepath.Join(dir, "serve.json")
	if err := writeJSON(sp, serveBase); err != nil {
		t.Fatal(err)
	}
	gotS, err := LoadServeBaseline(sp)
	if err != nil || len(gotS) != len(serveBase) || gotS[0] != serveBase[0] {
		t.Fatalf("serve round trip: %v %+v", err, gotS)
	}

	rp := filepath.Join(dir, "report.json")
	if err := writeJSON(rp, report); err != nil {
		t.Fatal(err)
	}
	gotR, err := LoadRegressReport(rp)
	if err != nil || len(gotR.Batch) != 2 || len(gotR.Serve) != 1 {
		t.Fatalf("report round trip: %v %+v", err, gotR)
	}

	if _, err := LoadRegressReport(filepath.Join(dir, "nope.json")); err == nil {
		t.Fatal("missing file should error")
	}
}
