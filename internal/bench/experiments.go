package bench

import (
	"fmt"
	"strconv"

	"lucidscript/internal/baselines"
	"lucidscript/internal/core"
	"lucidscript/internal/corpusgen"
	"lucidscript/internal/dag"
	"lucidscript/internal/entropy"
	"lucidscript/internal/frame"
	"lucidscript/internal/intent"
	"lucidscript/internal/interp"
	"lucidscript/internal/script"
)

// Table2 reproduces the parameterization table: recommended seq and K by
// corpus size and diversity (it is a property of AutoConfig, so this is a
// direct print plus a consistency check against the live function).
func Table2(opts Options) (*Table, error) {
	t := &Table{
		Title:  "Table 2: parameterization by corpus properties",
		Header: []string{"corpus size", "corpus diversity", "seq", "K"},
	}
	cases := []struct {
		scripts, edges int
		large, diverse string
	}{
		{20, 400, "# scripts > 10", "# uniq edges > 300"},
		{20, 200, "# scripts > 10", "# uniq edges <= 300"},
		{8, 400, "# scripts <= 10", "# uniq edges > 300"},
		{8, 200, "# scripts <= 10", "# uniq edges <= 300"},
	}
	for _, c := range cases {
		seq, k := core.AutoConfig(c.scripts, c.edges)
		t.Rows = append(t.Rows, []string{c.large, c.diverse, strconv.Itoa(seq), strconv.Itoa(k)})
	}
	return t, nil
}

// Table3 reproduces the dataset & DAG statistics table over the six
// synthetic competitions.
func Table3(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	cache := newGenCache(opts)
	t := &Table{
		Title:  fmt.Sprintf("Table 3: examined datasets and their DAG statistics (RowScale=%.3f)", opts.RowScale),
		Header: []string{"Statistics", "Titanic", "House", "NLP", "Spaceship", "Medical", "Sales"},
	}
	rows := map[string][]string{}
	order := []string{"Scripts", "Data files", "Data tuples (k)", "Data features", "Avg # code lines", "Uniq. 1-grams", "Uniq. n-grams", "Uniq. edges"}
	for _, name := range order {
		rows[name] = []string{name}
	}
	for _, name := range corpusgen.Names() {
		opts.logf("table3: %s", name)
		gen, err := cache.get(name)
		if err != nil {
			return nil, err
		}
		v := corpusVocab(gen.ScriptsOnly())
		lines := 0
		for _, s := range gen.ScriptsOnly() {
			lines += s.NumStmts()
		}
		f := gen.Sources[gen.Competition.File]
		rows["Scripts"] = append(rows["Scripts"], strconv.Itoa(len(gen.Scripts)))
		rows["Data files"] = append(rows["Data files"], strconv.Itoa(len(gen.Sources)))
		rows["Data tuples (k)"] = append(rows["Data tuples (k)"], fmt.Sprintf("%.1f", float64(f.NumRows())/1000))
		rows["Data features"] = append(rows["Data features"], strconv.Itoa(f.NumCols()-1))
		rows["Avg # code lines"] = append(rows["Avg # code lines"], strconv.Itoa(lines/len(gen.Scripts)))
		rows["Uniq. 1-grams"] = append(rows["Uniq. 1-grams"], strconv.Itoa(v.NumUniqueUnigrams()))
		rows["Uniq. n-grams"] = append(rows["Uniq. n-grams"], strconv.Itoa(v.NumUniqueLines()))
		rows["Uniq. edges"] = append(rows["Uniq. edges"], strconv.Itoa(v.NumUniqueEdges()))
	}
	for _, name := range order {
		t.Rows = append(t.Rows, rows[name])
	}
	return t, nil
}

// Table4 reproduces the metric-evaluation case study: a minimal Titanic
// input script and two progressively more standard outputs, with their RE,
// Δ_J and Δ_M.
func Table4(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	cache := newGenCache(opts)
	gen, err := cache.get("Titanic")
	if err != nil {
		return nil, err
	}
	vocab := corpusVocab(gen.ScriptsOnly())
	// The trio mirrors the paper's progression (each output adds steps that
	// are common in the corpus); the concrete steps differ where the
	// synthetic corpus's common adjacencies differ from real Kaggle
	// (EXPERIMENTS.md records the deviation).
	su := script.MustParse(`import pandas as pd
df = pd.read_csv("train.csv")
`)
	s1 := script.MustParse(`import pandas as pd
df = pd.read_csv("train.csv")
df["Age"] = df["Age"].fillna(df["Age"].mean())
`)
	s2 := script.MustParse(`import pandas as pd
df = pd.read_csv("train.csv")
df["Age"] = df["Age"].fillna(df["Age"].mean())
df["Sex"] = df["Sex"].map({"male": 0, "female": 1})
df = df.drop(["Name", "Ticket", "Cabin"], axis=1)
df = pd.get_dummies(df)
y = df["Survived"]
X = df.drop("Survived", axis=1)
`)
	mc := intent.ModelConfig{Target: "Survived"}
	base, err := interp.Run(su, gen.Sources, interp.Options{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table 4: case study for metrics evaluation (Titanic)",
		Header: []string{"Script", "RE", "ΔJ", "ΔM (%)"},
	}
	for _, row := range []struct {
		name string
		s    *script.Script
	}{{"s_u (load only)", su}, {"s_1 (+ imputation)", s1}, {"s_2 (full pipeline)", s2}} {
		run, err := interp.Run(row.s, gen.Sources, interp.Options{Seed: opts.Seed})
		if err != nil {
			return nil, fmt.Errorf("table4 %s: %w", row.name, err)
		}
		re := vocab.RE(dag.Build(row.s))
		dj, err := intent.TableJaccard(base.Main, run.Main)
		if err != nil {
			return nil, err
		}
		dm, err := intent.ModelDelta(base.Main, run.Main, mc)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{row.name, fmt.Sprintf("%.2f", re), fmt.Sprintf("%.2f", dj), fmt.Sprintf("%.1f", dm)})
	}
	return t, nil
}

// Table5 reproduces the headline comparison: % improvement of LS under both
// intent measures against the five baselines on the full corpus, plus the
// small / different / low-ranked corpus scenarios for LS.
func Table5(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	cache := newGenCache(opts)
	t := &Table{
		Title:  fmt.Sprintf("Table 5: %% improvement (τJ=0.9, τM=1%%), %d scripts/dataset", opts.ScriptsPerDataset),
		Header: []string{"Corpus setup", "Method", "min", "median", "max", "mean"},
	}
	addRow := func(setup, method string, vals []float64) {
		lo, hi := minMax(vals)
		t.Rows = append(t.Rows, []string{setup, method, fmtF(lo), fmtF(median(vals)), fmtF(hi), fmtF(mean(vals))})
	}

	// ---- Full-size corpus: LS(τJ) and LS(τM) share one search per input.
	var lsJ, lsM []float64
	gptImps := map[string][]float64{}
	zeroMethods := []baselines.Method{baselines.Sourcery{}, baselines.AutoSuggest{}, baselines.AutoTables{}}
	zeroImps := map[string][]float64{}
	for _, name := range opts.Datasets {
		gen, err := cache.get(name)
		if err != nil {
			return nil, err
		}
		opts.logf("table5/full: %s", name)
		constraints := []intent.Constraint{
			{Measure: intent.MeasureJaccard, Tau: 0.9},
			{Measure: intent.MeasureModel, Tau: 1, Model: intent.ModelConfig{Target: gen.Competition.Target}},
		}
		inputs := gen.ScriptsOnly()
		if opts.ScriptsPerDataset > 0 && len(inputs) > opts.ScriptsPerDataset {
			inputs = inputs[:opts.ScriptsPerDataset]
		}
		for i, su := range inputs {
			var rest []*script.Script
			for j, other := range gen.ScriptsOnly() {
				if j != i {
					rest = append(rest, other)
				}
			}
			cfg := lsConfig(opts, intent.MeasureJaccard, 0.9, "")
			std := core.New(rest, gen.Sources, cfg)
			grid, err := std.StandardizeGrid(su, []int{cfg.SeqLength}, constraints)
			if err != nil {
				opts.logf("  %s script %d skipped: %v", name, i, err)
				continue
			}
			lsJ = append(lsJ, grid[0][0].ImprovementPct)
			lsM = append(lsM, grid[0][1].ImprovementPct)

			// Baselines against the same leave-one-out vocabulary.
			vocab := corpusVocab(rest)
			before := vocab.RE(dag.Build(su))
			for _, ver := range []baselines.GPTVersion{baselines.GPT35, baselines.GPT4} {
				g := baselines.NewSimGPT(ver, opts.Seed+int64(i), gen.Sources[gen.Competition.File], gen.Competition.Target).WithExamples(rest)
				out, err := g.Rewrite(su)
				if err != nil {
					continue
				}
				after := vocab.RE(dag.Build(out))
				gptImps[g.Name()] = append(gptImps[g.Name()], entropy.Improvement(before, after))
			}
			for _, m := range zeroMethods {
				out, err := m.Rewrite(su)
				if err != nil {
					continue
				}
				after := vocab.RE(dag.Build(out))
				zeroImps[m.Name()] = append(zeroImps[m.Name()], entropy.Improvement(before, after))
			}
		}
	}
	addRow("Full-size corpus", "LS (τJ)", lsJ)
	addRow("Full-size corpus", "LS (τM)", lsM)
	addRow("Full-size corpus", "GPT-3.5", gptImps["GPT-3.5"])
	addRow("Full-size corpus", "GPT-4", gptImps["GPT-4"])
	for _, m := range zeroMethods {
		addRow("Full-size corpus", m.Name(), zeroImps[m.Name()])
	}

	// ---- Small corpus (10 scripts).
	smallJ, smallM := runScenario(opts, cache, func(gen *corpusgen.Generated) ([]*script.Script, map[string]*frame.Frame) {
		return gen.Sample(10, opts.Seed), nil
	})
	addRow("Small corpus", "LS (τJ)", smallJ)
	addRow("Small corpus", "LS (τM)", smallM)

	// ---- Different corpus: Spaceship inputs with the Titanic corpus.
	diffJ, diffM, err := crossDataset(opts, cache)
	if err != nil {
		return nil, err
	}
	addRow("Different corpus", "LS (τJ)", diffJ)
	addRow("Different corpus", "LS (τM)", diffM)

	// ---- Low-ranked corpus (bottom 30% by votes).
	lowJ, lowM := runScenario(opts, cache, func(gen *corpusgen.Generated) ([]*script.Script, map[string]*frame.Frame) {
		return gen.LowRanked(0.3), nil
	})
	addRow("Low-ranked corpus", "LS (τJ)", lowJ)
	addRow("Low-ranked corpus", "LS (τM)", lowM)
	return t, nil
}

// runScenario runs the leave-in corpus scenario (the corpus is a fixed
// subset rather than leave-one-out) over all datasets, returning pooled
// improvements for τJ and τM.
func runScenario(opts Options, cache *genCache, pick func(*corpusgen.Generated) ([]*script.Script, map[string]*frame.Frame)) (lsJ, lsM []float64) {
	for _, name := range opts.Datasets {
		gen, err := cache.get(name)
		if err != nil {
			continue
		}
		opts.logf("table5/scenario: %s", name)
		corpus, sources := pick(gen)
		if sources == nil {
			sources = gen.Sources
		}
		constraints := []intent.Constraint{
			{Measure: intent.MeasureJaccard, Tau: 0.9},
			{Measure: intent.MeasureModel, Tau: 1, Model: intent.ModelConfig{Target: gen.Competition.Target}},
		}
		inputs := gen.ScriptsOnly()
		if opts.ScriptsPerDataset > 0 && len(inputs) > opts.ScriptsPerDataset {
			inputs = inputs[:opts.ScriptsPerDataset]
		}
		cfg := lsConfig(opts, intent.MeasureJaccard, 0.9, "")
		std := core.New(corpus, sources, cfg)
		for i, su := range inputs {
			grid, err := std.StandardizeGrid(su, []int{cfg.SeqLength}, constraints)
			if err != nil {
				opts.logf("  %s script %d skipped: %v", name, i, err)
				continue
			}
			lsJ = append(lsJ, grid[0][0].ImprovementPct)
			lsM = append(lsM, grid[0][1].ImprovementPct)
		}
	}
	return lsJ, lsM
}

// crossDataset standardizes Spaceship inputs with the Titanic corpus.
func crossDataset(opts Options, cache *genCache) (lsJ, lsM []float64, err error) {
	space, err := cache.get("Spaceship")
	if err != nil {
		return nil, nil, err
	}
	titanic, err := cache.get("Titanic")
	if err != nil {
		return nil, nil, err
	}
	opts.logf("table5/different: Spaceship inputs, Titanic corpus")
	constraints := []intent.Constraint{
		{Measure: intent.MeasureJaccard, Tau: 0.9},
		{Measure: intent.MeasureModel, Tau: 1, Model: intent.ModelConfig{Target: space.Competition.Target}},
	}
	inputs := space.ScriptsOnly()
	if opts.ScriptsPerDataset > 0 && len(inputs) > opts.ScriptsPerDataset {
		inputs = inputs[:opts.ScriptsPerDataset]
	}
	cfg := lsConfig(opts, intent.MeasureJaccard, 0.9, "")
	std := core.New(titanic.ScriptsOnly(), space.Sources, cfg)
	for i, su := range inputs {
		grid, err := std.StandardizeGrid(su, []int{cfg.SeqLength}, constraints)
		if err != nil {
			opts.logf("  spaceship script %d skipped: %v", i, err)
			continue
		}
		lsJ = append(lsJ, grid[0][0].ImprovementPct)
		lsM = append(lsM, grid[0][1].ImprovementPct)
	}
	return lsJ, lsM, nil
}
