package bench

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"lucidscript/internal/baselines"
	"lucidscript/internal/core"
	"lucidscript/internal/corpusgen"
	"lucidscript/internal/dag"
	"lucidscript/internal/entropy"
	"lucidscript/internal/intent"
	"lucidscript/internal/interp"
	"lucidscript/internal/leakage"
	"lucidscript/internal/script"
)

// Fig3 reproduces the user study as a simulated rater panel: 34 raters
// score each method's output for standardness (noisy corpus popularity of
// its steps) and helpfulness (noisy intent preservation), in both the
// without- and with-user-intent cases, with a Welch t-test of LS against
// the strongest baseline.
func Fig3(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	cache := newGenCache(opts)
	gen, err := cache.get("Medical")
	if err != nil {
		return nil, err
	}
	vocab := corpusVocab(gen.ScriptsOnly())
	rng := rand.New(rand.NewSource(opts.Seed * 271))

	// With-user-intent input (the paper's running example), and the
	// cold-start input (load only).
	withIntent := script.MustParse(`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.median())
df = df[df["Age"].between(18, 25)]
df = pd.get_dummies(df)
`)
	coldStart := script.MustParse(`import pandas as pd
df = pd.read_csv("diabetes.csv")
`)

	cfg := lsConfig(opts, intent.MeasureJaccard, 0.5, "")
	std := core.New(gen.ScriptsOnly(), gen.Sources, cfg)

	outputs := func(su *script.Script) (map[string]*script.Script, error) {
		res, err := std.Standardize(su)
		if err != nil {
			return nil, err
		}
		outs := map[string]*script.Script{"LS": res.Output}
		for _, ver := range []baselines.GPTVersion{baselines.GPT35, baselines.GPT4} {
			g := baselines.NewSimGPT(ver, opts.Seed, gen.Sources[gen.Competition.File], gen.Competition.Target).WithExamples(gen.ScriptsOnly())
			out, err := g.Rewrite(su)
			if err != nil {
				return nil, err
			}
			outs[g.Name()] = out
		}
		src, err := (baselines.Sourcery{}).Rewrite(su)
		if err != nil {
			return nil, err
		}
		outs["Sourcery"] = src
		at, err := (baselines.AutoTables{}).Rewrite(su)
		if err != nil {
			return nil, err
		}
		outs["Auto-Tables"] = at
		return outs, nil
	}

	const raters = 34
	methods := []string{"LS", "GPT-3.5", "GPT-4", "Sourcery", "Auto-Tables"}
	t := &Table{
		Title:  "Figure 3: simulated 34-rater user study (mean ± std, 1–5 scale)",
		Header: []string{"Case", "Method", "Standardness", "Helpfulness"},
	}
	ratings := map[string][]float64{}
	for _, cs := range []struct {
		name string
		su   *script.Script
	}{{"without-user-intent", coldStart}, {"with-user-intent", withIntent}} {
		opts.logf("fig3: %s", cs.name)
		outs, err := outputs(cs.su)
		if err != nil {
			return nil, err
		}
		baseRun, err := interp.Run(cs.su, gen.Sources, interp.Options{Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		for _, m := range methods {
			out := outs[m]
			pop := raterStandardness(out, vocab)
			help := helpfulness(out, cs.su, baseRun, vocab, gen, opts)
			var ss, hs []float64
			for r := 0; r < raters; r++ {
				ss = append(ss, clamp15(1+4*pop+rng.NormFloat64()*0.5))
				hs = append(hs, clamp15(1+4*help+rng.NormFloat64()*0.5))
			}
			ratings[cs.name+"/"+m] = ss
			t.Rows = append(t.Rows, []string{cs.name, m,
				fmt.Sprintf("%.2f ± %.2f", mean(ss), stddev(ss)),
				fmt.Sprintf("%.2f ± %.2f", mean(hs), stddev(hs))})
		}
	}
	// t-test LS vs best non-LS on standardness, without-user-intent case.
	bestBase, bestMean := "", -1.0
	for _, m := range methods[1:] {
		if v := mean(ratings["without-user-intent/"+m]); v > bestMean {
			bestMean, bestBase = v, m
		}
	}
	tt, p := welchT(ratings["without-user-intent/LS"], ratings["without-user-intent/"+bestBase])
	t.Rows = append(t.Rows, []string{"t-test (std.)", "LS vs " + bestBase,
		fmt.Sprintf("t=%.2f", tt), fmt.Sprintf("p=%.4f", p)})
	return t, nil
}

// raterStandardness is the simulated rater's judgment of how standard a
// script's preparation steps are w.r.t. the corpus statistics the rater was
// shown, in [0,1]. It is deliberately independent of the RE objective: a
// precision/recall harmonic mean between the script's step set and the
// corpus's popular steps, so a script that does nothing scores low (it uses
// none of the common practice) and a script stuffed with rare steps scores
// low too (its steps aren't common).
func raterStandardness(s *script.Script, vocab *entropy.Vocab) float64 {
	g := dag.Build(s)
	present := map[string]bool{}
	prec, n := 0.0, 0
	for _, li := range g.Lines {
		if strings.HasPrefix(li.Key, "import") || strings.Contains(li.Key, "read_csv") {
			continue
		}
		present[li.Key] = true
		n++
		prec += float64(vocab.LineCounts[li.Key]) / float64(vocab.NumScripts)
	}
	// Popular steps: used by at least 30% of corpus scripts.
	popular, covered := 0, 0
	for key, count := range vocab.LineCounts {
		if strings.HasPrefix(key, "import") || strings.Contains(key, "read_csv") {
			continue
		}
		if float64(count)/float64(vocab.NumScripts) >= 0.3 {
			popular++
			if present[key] {
				covered++
			}
		}
	}
	if n == 0 || popular == 0 {
		return 0
	}
	p := prec / float64(n)
	r := float64(covered) / float64(popular)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// helpfulness scores how useful the output is for the rater's modeling
// task, in [0,1]: intent preservation, model readiness (the prepared table
// trains), and adherence to common practice — the criteria the paper's
// participants were asked to judge.
func helpfulness(out, su *script.Script, baseRun *interp.Result, vocab *entropy.Vocab, gen *corpusgen.Generated, opts Options) float64 {
	run, err := interp.Run(out, gen.Sources, interp.Options{Seed: opts.Seed})
	if err != nil || run.Main == nil {
		return 0.1
	}
	j, err := intent.TableJaccard(baseRun.Main, run.Main)
	if err != nil {
		return 0.2
	}
	ready := 0.0
	if _, err := intent.ModelAccuracy(run.Main, intent.ModelConfig{Target: gen.Competition.Target}); err == nil {
		ready = 1
	}
	return 0.4*j + 0.25*ready + 0.25*raterStandardness(out, vocab) + 0.1
}

func clamp15(v float64) float64 {
	if v < 1 {
		return 1
	}
	if v > 5 {
		return 5
	}
	return v
}

// Fig4 reproduces the %-improvement distributions per dataset for LS and
// the GPT baselines, as 10-bin histograms over [-100, 100] rendered as
// counts and a sparkline.
func Fig4(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	cache := newGenCache(opts)
	t := &Table{
		Title:  "Figure 4: % improvement distribution (bins of 20 over [-100,100])",
		Header: []string{"Dataset", "Method", "histogram", "bins"},
	}
	for _, name := range opts.Datasets {
		gen, err := cache.get(name)
		if err != nil {
			return nil, err
		}
		opts.logf("fig4: %s", name)
		cfg := lsConfig(opts, intent.MeasureJaccard, 0.9, "")
		runs := leaveOneOut(gen, nil, nil, cfg, opts.ScriptsPerDataset, opts.logf)
		var ls []float64
		for _, r := range runs {
			ls = append(ls, r.improvement)
		}
		series := map[string][]float64{"LS (τJ)": ls}
		for _, ver := range []baselines.GPTVersion{baselines.GPT35, baselines.GPT4} {
			var imps []float64
			inputs := gen.ScriptsOnly()
			if opts.ScriptsPerDataset > 0 && len(inputs) > opts.ScriptsPerDataset {
				inputs = inputs[:opts.ScriptsPerDataset]
			}
			vocab := corpusVocab(gen.ScriptsOnly())
			g := baselines.NewSimGPT(ver, opts.Seed, gen.Sources[gen.Competition.File], gen.Competition.Target).WithExamples(gen.ScriptsOnly())
			for _, su := range inputs {
				out, err := g.Rewrite(su)
				if err != nil {
					continue
				}
				imps = append(imps, entropy.Improvement(vocab.RE(dag.Build(su)), vocab.RE(dag.Build(out))))
			}
			series[g.Name()] = imps
		}
		for _, m := range []string{"LS (τJ)", "GPT-3.5", "GPT-4"} {
			h := histogram(series[m], -100, 100, 10)
			t.Rows = append(t.Rows, []string{name, m, sparkline(h), fmt.Sprintf("%v", h)})
		}
	}
	return t, nil
}

// Fig5 reproduces the intent-threshold sweeps: median % improvement as τJ
// varies over {0.5..1.0} and τM over {0,1,2,5}%, per dataset. One beam
// search per input script serves every threshold.
func Fig5(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	cache := newGenCache(opts)
	tauJs := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	tauMs := []float64{0, 1, 2, 5}
	t := &Table{
		Title:  "Figure 5: median % improvement vs intent thresholds",
		Header: []string{"Dataset", "measure", "τ", "median %impr"},
	}
	for _, name := range opts.Datasets {
		gen, err := cache.get(name)
		if err != nil {
			return nil, err
		}
		opts.logf("fig5: %s", name)
		var constraints []intent.Constraint
		for _, tj := range tauJs {
			constraints = append(constraints, intent.Constraint{Measure: intent.MeasureJaccard, Tau: tj})
		}
		for _, tm := range tauMs {
			constraints = append(constraints, intent.Constraint{
				Measure: intent.MeasureModel, Tau: tm,
				Model: intent.ModelConfig{Target: gen.Competition.Target},
			})
		}
		cfg := lsConfig(opts, intent.MeasureJaccard, 0.9, "")
		imps := make([][]float64, len(constraints))
		inputs := gen.ScriptsOnly()
		if opts.ScriptsPerDataset > 0 && len(inputs) > opts.ScriptsPerDataset {
			inputs = inputs[:opts.ScriptsPerDataset]
		}
		for i, su := range inputs {
			var rest []*script.Script
			for j, other := range gen.ScriptsOnly() {
				if j != i {
					rest = append(rest, other)
				}
			}
			std := core.New(rest, gen.Sources, cfg)
			grid, err := std.StandardizeGrid(su, []int{cfg.SeqLength}, constraints)
			if err != nil {
				continue
			}
			for ci := range constraints {
				imps[ci] = append(imps[ci], grid[0][ci].ImprovementPct)
			}
		}
		for ci, c := range constraints {
			measure := "τJ"
			tauStr := fmt.Sprintf("%.1f", c.Tau)
			if c.Measure == intent.MeasureModel {
				measure = "τM"
				tauStr = fmt.Sprintf("%.0f%%", c.Tau)
			}
			t.Rows = append(t.Rows, []string{name, measure, tauStr, fmtF(median(imps[ci]))})
		}
	}
	return t, nil
}

// Fig6 reproduces the ablations: median % improvement for seq ∈ {2,4,8,16}
// (shared search per input) and beam size K ∈ {1,2,3} (separate searches,
// since K changes the trajectory).
func Fig6(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	cache := newGenCache(opts)
	seqs := []int{2, 4, 8, 16}
	beams := []int{1, 2, 3}
	t := &Table{
		Title:  "Figure 6: ablations (median % improvement)",
		Header: []string{"Dataset", "parameter", "value", "median %impr"},
	}
	for _, name := range opts.Datasets {
		gen, err := cache.get(name)
		if err != nil {
			return nil, err
		}
		opts.logf("fig6: %s", name)
		constraint := []intent.Constraint{{Measure: intent.MeasureJaccard, Tau: 0.9}}
		inputs := gen.ScriptsOnly()
		if opts.ScriptsPerDataset > 0 && len(inputs) > opts.ScriptsPerDataset {
			inputs = inputs[:opts.ScriptsPerDataset]
		}
		// seq sweep: one search at seq=16 per input.
		seqImps := make([][]float64, len(seqs))
		for i, su := range inputs {
			var rest []*script.Script
			for j, other := range gen.ScriptsOnly() {
				if j != i {
					rest = append(rest, other)
				}
			}
			cfg := lsConfig(opts, intent.MeasureJaccard, 0.9, "")
			cfg.SeqLength = 16
			std := core.New(rest, gen.Sources, cfg)
			grid, err := std.StandardizeGrid(su, seqs, constraint)
			if err != nil {
				continue
			}
			for si := range seqs {
				seqImps[si] = append(seqImps[si], grid[si][0].ImprovementPct)
			}
		}
		for si, s := range seqs {
			t.Rows = append(t.Rows, []string{name, "seq", strconv.Itoa(s), fmtF(median(seqImps[si]))})
		}
		// Beam sweep: separate searches.
		for _, k := range beams {
			cfg := lsConfig(opts, intent.MeasureJaccard, 0.9, "")
			cfg.BeamSize = k
			runs := leaveOneOut(gen, nil, nil, cfg, opts.ScriptsPerDataset, func(string, ...interface{}) {})
			var vals []float64
			for _, r := range runs {
				vals = append(vals, r.improvement)
			}
			t.Rows = append(t.Rows, []string{name, "K", strconv.Itoa(k), fmtF(median(vals))})
		}
	}
	return t, nil
}

// Fig7 reproduces the runtime breakdown: median per-phase latency per
// dataset at seq=16.
func Fig7(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	cache := newGenCache(opts)
	t := &Table{
		Title:  "Figure 7: median runtime breakdown (ms, seq=16)",
		Header: []string{"Dataset", "Curate", "GetSteps", "GetTopKBeams", "CheckIfExecutes", "VerifyConstraints", "Total"},
	}
	for _, name := range opts.Datasets {
		gen, err := cache.get(name)
		if err != nil {
			return nil, err
		}
		opts.logf("fig7: %s", name)
		cfg := lsConfig(opts, intent.MeasureJaccard, 0.9, "")
		runs := leaveOneOut(gen, nil, nil, cfg, opts.ScriptsPerDataset, func(string, ...interface{}) {})
		collect := func(f func(core.Timings) float64) float64 {
			var vals []float64
			for _, r := range runs {
				vals = append(vals, f(r.timings))
			}
			return median(vals)
		}
		ms := func(v float64) string { return fmt.Sprintf("%.1f", v/1e6) }
		t.Rows = append(t.Rows, []string{
			name,
			ms(collect(func(tm core.Timings) float64 { return float64(tm.CurateSearchSpace) })),
			ms(collect(func(tm core.Timings) float64 { return float64(tm.GetSteps) })),
			ms(collect(func(tm core.Timings) float64 { return float64(tm.GetTopKBeams) })),
			ms(collect(func(tm core.Timings) float64 { return float64(tm.CheckIfExecutes) })),
			ms(collect(func(tm core.Timings) float64 { return float64(tm.VerifyConstraints) })),
			ms(collect(func(tm core.Timings) float64 { return float64(tm.Total) })),
		})
	}
	return t, nil
}

// Fig9 reproduces the target-leakage detection study: noisy-duplicate
// leakage is injected into a sample of each corpus and detection accuracy
// (all ground-truth lines removed by an admissible output) is reported per
// sequence length.
func Fig9(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	cache := newGenCache(opts)
	seqs := []int{2, 4, 8, 16}
	t := &Table{
		Title:  "Figure 9: target-leakage detection accuracy vs seq (τM=5%)",
		Header: []string{"Dataset", "seq=2", "seq=4", "seq=8", "seq=16", "n"},
	}
	for _, name := range opts.Datasets {
		gen, err := cache.get(name)
		if err != nil {
			return nil, err
		}
		opts.logf("fig9: %s", name)
		inputs := gen.ScriptsOnly()
		n := len(inputs) / 10 // the paper samples 10%
		if n < 3 {
			n = 3
		}
		if opts.ScriptsPerDataset > 0 && n > opts.ScriptsPerDataset {
			n = opts.ScriptsPerDataset
		}
		if n > len(inputs) {
			n = len(inputs)
		}
		detected := make([]int, len(seqs))
		tried := 0
		constraint := []intent.Constraint{{
			Measure: intent.MeasureModel, Tau: 5,
			Model: intent.ModelConfig{Target: gen.Competition.Target},
		}}
		for i := 0; i < n; i++ {
			inj, err := leakage.Inject(inputs[i], gen.Competition.Target, leakage.NoisyDup, opts.Seed+int64(i))
			if err != nil {
				continue
			}
			var rest []*script.Script
			for j, other := range gen.ScriptsOnly() {
				if j != i {
					rest = append(rest, other)
				}
			}
			cfg := lsConfig(opts, intent.MeasureModel, 5, gen.Competition.Target)
			cfg.SeqLength = 16
			std := core.New(rest, gen.Sources, cfg)
			grid, err := std.StandardizeGrid(inj.Script, seqs, constraint)
			if err != nil {
				continue
			}
			tried++
			for si := range seqs {
				if inj.Removed(grid[si][0].Output) {
					detected[si]++
				}
			}
		}
		row := []string{name}
		for si := range seqs {
			acc := 0.0
			if tried > 0 {
				acc = float64(detected[si]) / float64(tried) * 100
			}
			row = append(row, fmt.Sprintf("%.0f%%", acc))
		}
		row = append(row, strconv.Itoa(tried))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
