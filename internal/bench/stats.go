package bench

import "math"

// mean returns the arithmetic mean (0 for empty input).
func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// median returns the median (0 for empty input).
func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := sortedCopy(vals)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// minMax returns the extrema (0,0 for empty input).
func minMax(vals []float64) (float64, float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// stddev returns the sample standard deviation.
func stddev(vals []float64) float64 {
	n := len(vals)
	if n < 2 {
		return 0
	}
	m := mean(vals)
	acc := 0.0
	for _, v := range vals {
		d := v - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(n-1))
}

// welchT computes Welch's t statistic and a two-sided p-value for the
// difference of means, using the normal approximation (adequate for the
// ~34-rater panels of the user-study simulation).
func welchT(a, b []float64) (t, p float64) {
	if len(a) < 2 || len(b) < 2 {
		return 0, 1
	}
	ma, mb := mean(a), mean(b)
	va, vb := stddev(a), stddev(b)
	se := math.Sqrt(va*va/float64(len(a)) + vb*vb/float64(len(b)))
	if se == 0 {
		if ma == mb {
			return 0, 1
		}
		return math.Inf(1), 0
	}
	t = (ma - mb) / se
	p = 2 * (1 - normalCDF(math.Abs(t)))
	return t, p
}

// normalCDF is the standard normal CDF.
func normalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// histogram buckets values into fixed-width bins over [lo, hi); values
// outside clamp to the edge bins. Returns per-bin counts.
func histogram(vals []float64, lo, hi float64, bins int) []int {
	counts := make([]int, bins)
	if bins == 0 || hi <= lo {
		return counts
	}
	w := (hi - lo) / float64(bins)
	for _, v := range vals {
		i := int((v - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return counts
}

// sparkline renders counts as a unicode bar row for text figures.
func sparkline(counts []int) string {
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return ""
	}
	out := make([]rune, len(counts))
	for i, c := range counts {
		idx := c * (len(glyphs) - 1) / max
		out[i] = glyphs[idx]
	}
	return string(out)
}
