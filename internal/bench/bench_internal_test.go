package bench

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// fastOpts keeps experiment tests quick: two datasets, one input script.
func fastOpts() Options {
	return Options{
		Seed:              1,
		RowScale:          0.01,
		MinRows:           240,
		ScriptsPerDataset: 1,
		SeqLength:         6,
		Datasets:          []string{"Medical", "NLP"},
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "Demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"xxx", "y"}},
	}
	out := tab.Render()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "xxx") {
		t.Fatalf("render = %q", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatal("render too short")
	}
}

func TestStatsHelpers(t *testing.T) {
	vals := []float64{3, 1, 2}
	if mean(vals) != 2 || median(vals) != 2 {
		t.Fatal("mean/median")
	}
	lo, hi := minMax(vals)
	if lo != 1 || hi != 3 {
		t.Fatal("minMax")
	}
	if mean(nil) != 0 || median(nil) != 0 {
		t.Fatal("empty stats")
	}
	if stddev([]float64{1}) != 0 {
		t.Fatal("stddev single")
	}
	if s := stddev([]float64{1, 3}); math.Abs(s-math.Sqrt2) > 1e-9 {
		t.Fatalf("stddev = %v", s)
	}
	if median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even median")
	}
}

func TestWelchT(t *testing.T) {
	a := []float64{5, 5.1, 4.9, 5.2, 4.8, 5, 5.1, 4.9}
	b := []float64{3, 3.1, 2.9, 3.2, 2.8, 3, 3.1, 2.9}
	tt, p := welchT(a, b)
	if tt <= 0 || p > 0.001 {
		t.Fatalf("t=%v p=%v for clearly different means", tt, p)
	}
	_, pSame := welchT(a, a)
	if pSame < 0.9 {
		t.Fatalf("identical samples p = %v", pSame)
	}
	if _, p := welchT([]float64{1}, a); p != 1 {
		t.Fatal("degenerate input should give p=1")
	}
}

func TestHistogramAndSparkline(t *testing.T) {
	h := histogram([]float64{-150, -50, 0, 50, 150}, -100, 100, 4)
	if len(h) != 4 {
		t.Fatal("bins")
	}
	if h[0] != 1 || h[3] != 2 { // -150 clamps to bin 0; 150 clamps to bin 3
		t.Fatalf("clamped bins = %v", h)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 5 {
		t.Fatalf("histogram loses values: %v", h)
	}
	if sparkline(h) == "" {
		t.Fatal("sparkline empty")
	}
	if sparkline([]int{0, 0}) != "" {
		t.Fatal("all-zero sparkline should be empty")
	}
}

func TestRegistryLookup(t *testing.T) {
	exps := Experiments()
	if len(exps) != 16 {
		t.Fatalf("experiments = %d", len(exps))
	}
	for _, e := range exps {
		if _, err := Lookup(e.ID); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestTable2Defaults(t *testing.T) {
	tab, err := Table2(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][2] != "16" || tab.Rows[0][3] != "3" {
		t.Fatalf("large/diverse row = %v", tab.Rows[0])
	}
	if tab.Rows[3][2] != "8" || tab.Rows[3][3] != "1" {
		t.Fatalf("small/narrow row = %v", tab.Rows[3])
	}
}

func TestTable3Shape(t *testing.T) {
	tab, err := Table3(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "Scripts" || tab.Rows[0][1] != "62" {
		t.Fatalf("scripts row = %v", tab.Rows[0])
	}
}

func TestTable4Monotone(t *testing.T) {
	tab, err := Table4(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var re [3]float64
	for i, row := range tab.Rows {
		if _, err := fmtScan(row[1], &re[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !(re[0] > re[1] && re[1] > re[2]) {
		t.Fatalf("RE not decreasing: %v", re)
	}
}

func TestTable5FastShape(t *testing.T) {
	tab, err := Table5(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[string][]string{}
	for _, row := range tab.Rows {
		if row[0] == "Full-size corpus" {
			byMethod[row[1]] = row
		}
	}
	for _, m := range []string{"Sourcery", "Auto-Suggest", "Auto-Tables"} {
		row := byMethod[m]
		if row == nil {
			t.Fatalf("missing row for %s", m)
		}
		for _, cell := range row[2:] {
			if cell != "0.0" {
				t.Fatalf("%s should be all zeros: %v", m, row)
			}
		}
	}
	var lsMean float64
	if _, err := fmtScan(byMethod["LS (τJ)"][5], &lsMean); err != nil {
		t.Fatal(err)
	}
	if lsMean < 0 {
		t.Fatalf("LS mean = %v", lsMean)
	}
}

func TestFig5MonotoneInTauJ(t *testing.T) {
	opts := fastOpts()
	opts.Datasets = []string{"Medical"}
	tab, err := Fig5(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Improvement must be non-increasing as τJ tightens from 0.5 to 1.0.
	var prev = math.Inf(1)
	for _, row := range tab.Rows {
		if row[1] != "τJ" {
			continue
		}
		var v float64
		if _, err := fmtScan(row[3], &v); err != nil {
			t.Fatal(err)
		}
		if v > prev+1e-9 {
			t.Fatalf("improvement increased as τJ tightened: %v", tab.Rows)
		}
		prev = v
	}
}

func TestFig6SeqMonotone(t *testing.T) {
	opts := fastOpts()
	opts.Datasets = []string{"Medical"}
	tab, err := Fig6(opts)
	if err != nil {
		t.Fatal(err)
	}
	var prev = math.Inf(-1)
	for _, row := range tab.Rows {
		if row[1] != "seq" {
			continue
		}
		var v float64
		if _, err := fmtScan(row[3], &v); err != nil {
			t.Fatal(err)
		}
		if v < prev-1e-9 {
			t.Fatalf("improvement decreased with longer seq: %v", tab.Rows)
		}
		prev = v
	}
}

func TestFig7HasTimings(t *testing.T) {
	opts := fastOpts()
	opts.Datasets = []string{"Medical"}
	tab, err := Fig7(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var total float64
	if _, err := fmtScan(tab.Rows[0][6], &total); err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Fatalf("total time = %v", total)
	}
}

func TestFig9AccuracyInRange(t *testing.T) {
	opts := fastOpts()
	opts.Datasets = []string{"Medical"}
	opts.ScriptsPerDataset = 2
	tab, err := Fig9(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:5] {
			var v float64
			if _, err := fmtScan(strings.TrimSuffix(cell, "%"), &v); err != nil {
				t.Fatal(err)
			}
			if v < 0 || v > 100 {
				t.Fatalf("accuracy out of range: %v", row)
			}
		}
	}
}

func TestFig3PanelsAndTTest(t *testing.T) {
	opts := fastOpts()
	tab, err := Fig3(opts)
	if err != nil {
		t.Fatal(err)
	}
	// 2 cases × 5 methods + t-test row.
	if len(tab.Rows) != 11 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	last := tab.Rows[len(tab.Rows)-1]
	if !strings.HasPrefix(last[0], "t-test") {
		t.Fatalf("missing t-test row: %v", last)
	}
}

func TestFig4HistogramsComplete(t *testing.T) {
	opts := fastOpts()
	opts.Datasets = []string{"Medical"}
	tab, err := Fig4(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d (want LS + 2 GPT)", len(tab.Rows))
	}
}

// fmtScan parses a single float from a string cell.
func fmtScan(s string, v *float64) (int, error) {
	return sscan(s, v)
}

// sscan wraps fmt.Sscanf for the test helpers.
func sscan(s string, v *float64) (int, error) {
	return fmt.Sscanf(s, "%f", v)
}
