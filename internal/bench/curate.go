package bench

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"lucidscript/internal/corpusgen"
	"lucidscript/internal/registry"
)

// CurateResult is the JSON shape of one "curate" experiment record: the
// corpus-registry lifecycle at scale. Cold curation (parse + lemmatize +
// fold + publish) is the price the registry exists to amortize; warm load
// re-opens the published snapshot without touching the per-script section,
// and apply re-curates a small churn incrementally. The two speedups are
// the registry's performance contract — BENCH_curate.json pins them and
// the regress gate fails a build that lets either collapse.
type CurateResult struct {
	// Corpus labels the synthetic corpus ("gen-10k"), the gate's join key.
	Corpus string `json:"corpus"`
	// Scripts is the corpus membership size.
	Scripts int `json:"scripts"`
	// Churn is how many scripts the apply leg added plus removed (~1%).
	Churn int `json:"churn"`
	// Reps is how many times each leg ran; the times below are the best rep.
	Reps int `json:"reps"`
	// ColdCurateMS curates the full corpus from source and publishes v1.
	ColdCurateMS float64 `json:"cold_curate_ms"`
	// WarmLoadMS re-opens the published registry ready to standardize
	// (vocabulary loaded, per-script section untouched).
	WarmLoadMS float64 `json:"warm_load_ms"`
	// FullLoadMS is the one-time lazy load of the per-script section a
	// warm-opened registry pays before its first mutation (membership
	// decode, stats reconstruction, cross-section consistency check).
	FullLoadMS float64 `json:"full_load_ms"`
	// ApplyMS applies the churn to a loaded registry and publishes the new
	// version — the steady-state incremental re-curation cost.
	ApplyMS float64 `json:"apply_ms"`
	// RebuildMS curates the post-churn membership from scratch, the cost
	// Apply replaces.
	RebuildMS float64 `json:"rebuild_ms"`
	// WarmSpeedup is ColdCurateMS / WarmLoadMS (contract: >= 5x).
	WarmSpeedup float64 `json:"warm_speedup"`
	// ApplySpeedup is RebuildMS / ApplyMS (contract: >= 10x).
	ApplySpeedup float64 `json:"apply_speedup"`
	// Identical reports that the applied registry's canonical state matched
	// the from-scratch rebuild byte for byte (the experiment fails otherwise).
	Identical bool `json:"identical"`
}

// The registry's pinned performance contract (see DESIGN.md §10): a warm
// boot must beat cold curation by at least WarmSpeedupFloor, and a ~1%
// churn applied incrementally must beat a from-scratch rebuild by at least
// ApplySpeedupFloor. The gate fails either collapsing regardless of the
// wall-clock ratios, because the speedups are machine-independent.
const (
	WarmSpeedupFloor  = 5.0
	ApplySpeedupFloor = 10.0
)

// curateSizes are the corpus sizes the standalone experiment sweeps; the
// regress replay runs only the first (smallest) to keep CI wall-clock sane.
var curateSizes = []int{10_000, 100_000}

// Curate measures the corpus-registry lifecycle — cold curation, warm
// snapshot load, and incremental re-curation under ~1% churn — over
// seeded synthetic corpora of 10^4..10^5 scripts.
func Curate(opts Options) (*Table, error) {
	records, table, err := CurateRecords(opts, curateSizes)
	if err != nil {
		return nil, err
	}
	if opts.JSONPath != "" {
		if err := writeJSON(opts.JSONPath, records); err != nil {
			return nil, err
		}
		opts.logf("curate results written to %s", opts.JSONPath)
	}
	return table, nil
}

// CurateRecords runs the curate experiment over the given corpus sizes and
// returns the records alongside the rendered table, without touching
// Options.JSONPath. The regress experiment reuses it with the smallest
// size only.
func CurateRecords(opts Options, sizes []int) ([]CurateResult, *Table, error) {
	opts = opts.withDefaults()
	var records []CurateResult
	for _, n := range sizes {
		rec, err := curateOne(opts, n)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: curate %d scripts: %w", n, err)
		}
		records = append(records, rec)
	}
	return records, curateTable(records), nil
}

func curateOne(opts Options, n int) (CurateResult, error) {
	churn := n / 200 // 0.5% removed + 0.5% added = 1% total churn
	if churn == 0 {
		churn = 1
	}
	comp, err := corpusgen.Get("Titanic")
	if err != nil {
		return CurateResult{}, err
	}
	opts.Logf("curate: generating %d scripts (seed %d)", n+churn, opts.Seed)
	// Generate churn extra scripts past the corpus: the per-script streams
	// make the first n a stable prefix, so the tail is the add set.
	generated, err := comp.GenerateScaled(corpusgen.ScaleConfig{Seed: opts.Seed, NumScripts: n + churn})
	if err != nil {
		return CurateResult{}, err
	}
	members := make([]registry.Script, n)
	for i, g := range generated[:n] {
		members[i] = registry.Script{ID: comp.ScaledID(i), Source: g.Script.Source()}
	}
	adds := make([]registry.Script, churn)
	for i, g := range generated[n:] {
		adds[i] = registry.Script{ID: comp.ScaledID(n + i), Source: g.Script.Source()}
	}
	// Remove churn members evenly spread across the corpus.
	removes := make([]registry.Script, churn)
	for i := range removes {
		removes[i] = members[(i*n)/churn]
	}
	removed := make(map[string]bool, churn)
	for _, r := range removes {
		removed[r.ID] = true
	}

	rec := CurateResult{Corpus: fmt.Sprintf("gen-%dk", n/1000), Scripts: n, Churn: 2 * churn, Reps: 1}

	coldDir, err := os.MkdirTemp("", "lsbench-curate-cold-")
	if err != nil {
		return CurateResult{}, err
	}
	defer os.RemoveAll(coldDir)
	opts.Logf("curate: cold-curating %d scripts", n)
	start := time.Now()
	if _, err := registry.Create(coldDir, members); err != nil {
		return CurateResult{}, err
	}
	rec.ColdCurateMS = ms(time.Since(start))

	opts.Logf("curate: warm-loading the published snapshot")
	start = time.Now()
	warm, err := registry.Open(coldDir)
	if err != nil {
		return CurateResult{}, err
	}
	_ = warm.Vocab() // the load a standardization needs is now complete
	rec.WarmLoadMS = ms(time.Since(start))

	opts.Logf("curate: loading the per-script section")
	start = time.Now()
	if _, err := warm.Members(); err != nil {
		return CurateResult{}, err
	}
	rec.FullLoadMS = ms(time.Since(start))

	opts.Logf("curate: applying %d-script churn incrementally", 2*churn)
	start = time.Now()
	if err := warm.Apply(adds, removes); err != nil {
		return CurateResult{}, err
	}
	if _, err := warm.Publish(); err != nil {
		return CurateResult{}, err
	}
	rec.ApplyMS = ms(time.Since(start))

	// The post-churn membership in the registry's canonical order:
	// survivors in insertion order, then the adds.
	mutated := make([]registry.Script, 0, n)
	for _, m := range members {
		if !removed[m.ID] {
			mutated = append(mutated, m)
		}
	}
	mutated = append(mutated, adds...)

	rebuildDir, err := os.MkdirTemp("", "lsbench-curate-rebuild-")
	if err != nil {
		return CurateResult{}, err
	}
	defer os.RemoveAll(rebuildDir)
	opts.Logf("curate: rebuilding the post-churn corpus from scratch")
	start = time.Now()
	rebuilt, err := registry.Create(rebuildDir, mutated)
	if err != nil {
		return CurateResult{}, err
	}
	rec.RebuildMS = ms(time.Since(start))

	appliedState, err := warm.StateBytes()
	if err != nil {
		return CurateResult{}, err
	}
	rebuiltState, err := rebuilt.StateBytes()
	if err != nil {
		return CurateResult{}, err
	}
	rec.Identical = bytes.Equal(appliedState, rebuiltState)
	if rec.WarmLoadMS > 0 {
		rec.WarmSpeedup = rec.ColdCurateMS / rec.WarmLoadMS
	}
	if rec.ApplyMS > 0 {
		rec.ApplySpeedup = rec.RebuildMS / rec.ApplyMS
	}
	opts.Logf("curate: %s cold %.0fms, warm %.0fms (%.1fx), full load %.0fms, apply %.0fms vs rebuild %.0fms (%.1fx), identical=%v",
		rec.Corpus, rec.ColdCurateMS, rec.WarmLoadMS, rec.WarmSpeedup,
		rec.FullLoadMS, rec.ApplyMS, rec.RebuildMS, rec.ApplySpeedup, rec.Identical)
	return rec, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

func curateTable(records []CurateResult) *Table {
	t := &Table{
		Title: "Corpus-registry lifecycle at scale (cold curate vs warm load vs incremental apply)",
		Header: []string{"corpus", "scripts", "cold curate", "warm load", "warm speedup",
			"full load", "apply (1% churn)", "rebuild", "apply speedup", "identical"},
	}
	for _, r := range records {
		t.Rows = append(t.Rows, []string{
			r.Corpus, fmt.Sprintf("%d", r.Scripts),
			fmt.Sprintf("%.0fms", r.ColdCurateMS),
			fmt.Sprintf("%.1fms", r.WarmLoadMS),
			fmt.Sprintf("%.1fx", r.WarmSpeedup),
			fmt.Sprintf("%.0fms", r.FullLoadMS),
			fmt.Sprintf("%.0fms", r.ApplyMS),
			fmt.Sprintf("%.0fms", r.RebuildMS),
			fmt.Sprintf("%.1fx", r.ApplySpeedup),
			fmt.Sprintf("%v", r.Identical),
		})
	}
	return t
}
