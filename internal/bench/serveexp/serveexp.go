// Package serveexp implements the "serve" benchmark experiment: the HTTP
// standardization service versus direct in-process batch calls on the same
// jobs. It lives outside internal/bench because it needs the facade package
// (lucidscript) and internal/serve, and bench itself is imported by the
// root package's tests — importing the facade from bench would be an import
// cycle. cmd/lsbench wires it in via bench.ServeRunner.
package serveexp

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"lucidscript"
	"lucidscript/internal/bench"
	"lucidscript/internal/serve"
)

// Result is the JSON shape written next to the experiment's table: one
// record per dataset comparing the HTTP standardization service (submit
// over the wire, poll to completion) against direct in-process batch calls
// on the same jobs. The gap between the two is the full service tax — JSON
// marshalling, HTTP round trips, queue admission, and status polling. The
// struct itself lives in bench (as ServeResult) so the regression gate can
// compare reports without importing this package.
type Result = bench.ServeResult

// Run measures what serving standardization over HTTP costs relative to
// calling the library directly. Each arm gets its own identically-built
// System with a long-lived job queue — curation paid outside the timed
// region and the execution-prefix cache persistent across reps, mirroring a
// long-lived deployment on both sides — so the comparison isolates the
// transport, marshalling, and polling overhead, not the search or cache
// warmth.
func Run(opts bench.Options) (*bench.Table, error) {
	records, table, err := serveRecords(opts)
	if err != nil {
		return nil, err
	}
	if opts.JSONPath != "" {
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(opts.JSONPath, append(data, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("bench: writing %s: %w", opts.JSONPath, err)
		}
		opts.Logf("serve results written to %s", opts.JSONPath)
	}
	return table, nil
}

// serveRecords runs the serve experiment and returns the per-dataset
// records alongside the rendered table, without touching Options.JSONPath.
func serveRecords(opts bench.Options) ([]Result, *bench.Table, error) {
	opts = opts.WithDefaults()
	workers := opts.BatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	table := &bench.Table{
		Title:  "HTTP service vs direct library calls (same jobs, one long-lived curated System per arm)",
		Header: []string{"dataset", "jobs", "workers", "direct", "served", "overhead", "per-job"},
	}
	var records []Result
	for _, name := range opts.Datasets {
		gen, err := opts.GenerateDataset(name)
		if err != nil {
			return nil, nil, err
		}
		jobs := gen.Sample(opts.ScriptsPerDataset, opts.Seed+17)
		lsOpts := lucidscript.Options{
			Seed:             opts.Seed,
			SeqLength:        opts.SeqLength,
			BeamSize:         opts.BeamSize,
			Measure:          lucidscript.IntentMeasure("jaccard"),
			Tau:              0.8,
			DisableExecCache: opts.DisableExecCache,
			BatchWorkers:     workers,
		}
		sysDirect, err := lucidscript.NewSystem(gen.ScriptsOnly(), gen.Sources, lsOpts)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: %s: %w", name, err)
		}
		sysServed, err := lucidscript.NewSystem(gen.ScriptsOnly(), gen.Sources, lsOpts)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: %s: %w", name, err)
		}
		directQueue := sysDirect.NewJobQueue(workers, len(jobs))
		// The served arm runs durable — every job rides through the
		// write-ahead log exactly as a production -data-dir deployment —
		// so the measured service tax includes the persistence cost and
		// the regression gate would catch a WAL slowdown.
		dataDir, err := os.MkdirTemp("", "lsbench-serve-*")
		if err != nil {
			return nil, nil, err
		}
		srv, err := serve.NewServer(map[string]*lucidscript.System{name: sysServed},
			serve.Config{Workers: workers, QueueDepth: len(jobs), DataDir: dataDir})
		if err != nil {
			os.RemoveAll(dataDir)
			return nil, nil, fmt.Errorf("bench: %s: %w", name, err)
		}
		hs := httptest.NewServer(srv.Handler())
		client := serve.NewClient(hs.URL, hs.Client())
		ctx := context.Background()

		// The arms run interleaved (direct rep, then served rep) so machine
		// drift hits both equally, and the best rep per arm is recorded so
		// one scheduler hiccup does not decide the comparison.
		const reps = 3
		var directDur, servedDur time.Duration
		directOut := make([]string, len(jobs))
		for r := 0; r < reps; r++ {
			runtime.GC()
			directStart := time.Now()
			handles := make([]*lucidscript.QueuedJob, len(jobs))
			for i, su := range jobs {
				h, err := directQueue.Submit(ctx, su)
				if err != nil {
					return nil, nil, fmt.Errorf("bench: %s direct submit %d: %w", name, i, err)
				}
				handles[i] = h
			}
			for i, h := range handles {
				res, err := h.Wait(ctx)
				if err != nil {
					return nil, nil, fmt.Errorf("bench: %s direct job %d: %w", name, i, err)
				}
				directOut[i] = res.Script.Source()
			}
			if d := time.Since(directStart); r == 0 || d < directDur {
				directDur = d
			}

			runtime.GC()
			servedStart := time.Now()
			ids := make([]string, len(jobs))
			for i, su := range jobs {
				st, err := client.Submit(ctx, name, su.Source(), nil)
				if err != nil {
					return nil, nil, fmt.Errorf("bench: %s served submit %d: %w", name, i, err)
				}
				ids[i] = st.ID
			}
			for i, id := range ids {
				st, err := client.Wait(ctx, id, 2*time.Millisecond)
				if err != nil {
					return nil, nil, fmt.Errorf("bench: %s served wait %d: %w", name, i, err)
				}
				if st.State != serve.StateDone {
					return nil, nil, fmt.Errorf("bench: %s served job %d: state %s (%s)", name, i, st.State, st.Error)
				}
				if st.Result.Script != directOut[i] {
					return nil, nil, fmt.Errorf("bench: %s served output diverges from direct for job %d", name, i)
				}
			}
			if d := time.Since(servedStart); r == 0 || d < servedDur {
				servedDur = d
			}
		}
		hs.Close()
		directQueue.Close()
		err = srv.Shutdown(ctx)
		os.RemoveAll(dataDir)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: %s shutdown: %w", name, err)
		}

		rec := Result{
			Dataset:          name,
			Jobs:             len(jobs),
			Workers:          workers,
			Reps:             reps,
			DirectMS:         float64(directDur.Microseconds()) / 1e3,
			ServedMS:         float64(servedDur.Microseconds()) / 1e3,
			OverheadPct:      100 * (float64(servedDur) - float64(directDur)) / float64(directDur),
			PerJobOverheadMS: float64((servedDur - directDur).Microseconds()) / 1e3 / float64(len(jobs)),
			Identical:        true,
		}
		records = append(records, rec)
		table.Rows = append(table.Rows, []string{
			name,
			fmt.Sprintf("%d", rec.Jobs),
			fmt.Sprintf("%d", rec.Workers),
			fmt.Sprintf("%.0fms", rec.DirectMS),
			fmt.Sprintf("%.0fms", rec.ServedMS),
			fmt.Sprintf("%.1f%%", rec.OverheadPct),
			fmt.Sprintf("%.2fms", rec.PerJobOverheadMS),
		})
		opts.Logf("%s: %d jobs, direct %s vs served %s (+%.1f%%)",
			name, rec.Jobs, directDur.Round(time.Millisecond), servedDur.Round(time.Millisecond), rec.OverheadPct)
	}
	return records, table, nil
}
