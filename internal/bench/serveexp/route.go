package serveexp

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"lucidscript"
	"lucidscript/internal/bench"
	"lucidscript/internal/router"
	"lucidscript/internal/serve"
)

// routeReplicas is the fronted cluster size of the "route" experiment —
// the three-replica quickstart topology from the README.
const routeReplicas = 3

// Route measures what fronting the standardization service with lsrouter
// costs relative to addressing a single replica directly: the same jobs
// run through a serve.Server hit straight on (the "served" arm) and
// through a router.Router fronting routeReplicas identically-curated
// replicas (the "routed" arm). The gap is the routing tax — the extra
// proxy hop, the ring lookup, and the job-id namespacing — and the
// regression gate watches it via BENCH_route.json.
func Route(opts bench.Options) (*bench.Table, error) {
	records, table, err := routeRecords(opts)
	if err != nil {
		return nil, err
	}
	if opts.JSONPath != "" {
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(opts.JSONPath, append(data, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("bench: writing %s: %w", opts.JSONPath, err)
		}
		opts.Logf("route results written to %s", opts.JSONPath)
	}
	return table, nil
}

// routeRecords runs the route experiment and returns the per-dataset
// records alongside the rendered table, without touching Options.JSONPath.
func routeRecords(opts bench.Options) ([]bench.RouteResult, *bench.Table, error) {
	opts = opts.WithDefaults()
	workers := opts.BatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	table := &bench.Table{
		Title:  fmt.Sprintf("lsrouter-fronted cluster (%d replicas) vs a single directly-addressed replica", routeReplicas),
		Header: []string{"dataset", "jobs", "replicas", "served", "routed", "overhead", "per-job"},
	}
	var records []bench.RouteResult
	for _, name := range opts.Datasets {
		gen, err := opts.GenerateDataset(name)
		if err != nil {
			return nil, nil, err
		}
		jobs := gen.Sample(opts.ScriptsPerDataset, opts.Seed+17)
		lsOpts := lucidscript.Options{
			Seed:             opts.Seed,
			SeqLength:        opts.SeqLength,
			BeamSize:         opts.BeamSize,
			Measure:          lucidscript.IntentMeasure("jaccard"),
			Tau:              0.8,
			DisableExecCache: opts.DisableExecCache,
			BatchWorkers:     workers,
		}
		newServer := func() (*serve.Server, *httptest.Server, error) {
			sys, err := lucidscript.NewSystem(gen.ScriptsOnly(), gen.Sources, lsOpts)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: %s: %w", name, err)
			}
			srv, err := serve.NewServer(map[string]*lucidscript.System{name: sys},
				serve.Config{Workers: workers, QueueDepth: len(jobs)})
			if err != nil {
				return nil, nil, fmt.Errorf("bench: %s: %w", name, err)
			}
			return srv, httptest.NewServer(srv.Handler()), nil
		}

		// The served arm: one replica, addressed directly.
		directSrv, directHS, err := newServer()
		if err != nil {
			return nil, nil, err
		}
		directClient := serve.NewClient(directHS.URL, directHS.Client())

		// The routed arm: routeReplicas identical replicas behind a router.
		// Every replica hosts the dataset, the ring picks the owner — the
		// same topology lsrouter runs in production, minus the network.
		var replicaSrvs []*serve.Server
		var replicaHSs []*httptest.Server
		var cfg router.Config
		for i := 0; i < routeReplicas; i++ {
			srv, hs, err := newServer()
			if err != nil {
				return nil, nil, err
			}
			replicaSrvs = append(replicaSrvs, srv)
			replicaHSs = append(replicaHSs, hs)
			cfg.Replicas = append(cfg.Replicas, router.Replica{
				Name: fmt.Sprintf("r%d", i+1), BaseURL: hs.URL,
			})
		}
		cfg.Rise, cfg.Fall = 1, 1
		rt, err := router.New(cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: %s: %w", name, err)
		}
		ctx := context.Background()
		rt.ProbeAll(ctx)
		routerHS := httptest.NewServer(rt.Handler())
		routedClient := serve.NewClient(routerHS.URL, routerHS.Client())

		runArm := func(client *serve.Client, out []string) (time.Duration, error) {
			runtime.GC()
			start := time.Now()
			ids := make([]string, len(jobs))
			for i, su := range jobs {
				st, err := client.Submit(ctx, name, su.Source(), nil)
				if err != nil {
					return 0, fmt.Errorf("bench: %s submit %d: %w", name, i, err)
				}
				ids[i] = st.ID
			}
			for i, id := range ids {
				st, err := client.Wait(ctx, id, 2*time.Millisecond)
				if err != nil {
					return 0, fmt.Errorf("bench: %s wait %d: %w", name, i, err)
				}
				if st.State != serve.StateDone {
					return 0, fmt.Errorf("bench: %s job %d: state %s (%s)", name, i, st.State, st.Error)
				}
				out[i] = st.Result.Script
			}
			return time.Since(start), nil
		}

		// Interleaved reps, best per arm — same protocol as the serve
		// experiment, so the two overhead numbers compose.
		const reps = 3
		var servedDur, routedDur time.Duration
		servedOut := make([]string, len(jobs))
		routedOut := make([]string, len(jobs))
		for r := 0; r < reps; r++ {
			d, err := runArm(directClient, servedOut)
			if err != nil {
				return nil, nil, err
			}
			if r == 0 || d < servedDur {
				servedDur = d
			}
			d, err = runArm(routedClient, routedOut)
			if err != nil {
				return nil, nil, err
			}
			if r == 0 || d < routedDur {
				routedDur = d
			}
		}
		identical := true
		for i := range servedOut {
			if servedOut[i] != routedOut[i] {
				identical = false
				break
			}
		}

		routerHS.Close()
		directHS.Close()
		if err := directSrv.Shutdown(ctx); err != nil {
			return nil, nil, fmt.Errorf("bench: %s shutdown: %w", name, err)
		}
		for i, hs := range replicaHSs {
			hs.Close()
			if err := replicaSrvs[i].Shutdown(ctx); err != nil {
				return nil, nil, fmt.Errorf("bench: %s replica shutdown: %w", name, err)
			}
		}
		if !identical {
			return nil, nil, fmt.Errorf("bench: %s routed output diverges from single-replica", name)
		}

		rec := bench.RouteResult{
			Dataset:          name,
			Jobs:             len(jobs),
			Replicas:         routeReplicas,
			Workers:          workers,
			Reps:             reps,
			ServedMS:         float64(servedDur.Microseconds()) / 1e3,
			RoutedMS:         float64(routedDur.Microseconds()) / 1e3,
			OverheadPct:      100 * (float64(routedDur) - float64(servedDur)) / float64(servedDur),
			PerJobOverheadMS: float64((routedDur - servedDur).Microseconds()) / 1e3 / float64(len(jobs)),
			Identical:        identical,
		}
		records = append(records, rec)
		table.Rows = append(table.Rows, []string{
			name,
			fmt.Sprintf("%d", rec.Jobs),
			fmt.Sprintf("%d", rec.Replicas),
			fmt.Sprintf("%.0fms", rec.ServedMS),
			fmt.Sprintf("%.0fms", rec.RoutedMS),
			fmt.Sprintf("%.1f%%", rec.OverheadPct),
			fmt.Sprintf("%.2fms", rec.PerJobOverheadMS),
		})
		opts.Logf("%s: %d jobs, served %s vs routed %s (+%.1f%%)",
			name, rec.Jobs, servedDur.Round(time.Millisecond), routedDur.Round(time.Millisecond), rec.OverheadPct)
	}
	return records, table, nil
}
