package serveexp

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"lucidscript/internal/bench"
)

// Regress replays the batch and serve experiments back to back on the
// current build, emits the combined machine-readable RegressReport
// (Options.JSONPath), and — when baseline paths are set — gates the fresh
// wall-clock numbers against the committed BENCH_batch.json /
// BENCH_serve.json. Ratios above GateConfig.WarnRatio are reported, ratios
// above FailRatio (or any non-identical output) fail the run. It lives here
// rather than in bench because the serve leg needs the facade; cmd/lsbench
// wires it in via bench.RegressRunner.
func Regress(opts bench.Options) (*bench.Table, error) {
	opts.Logf("regress: replaying batch experiment")
	batchRecs, _, err := bench.BatchRecords(opts)
	if err != nil {
		return nil, fmt.Errorf("bench: regress batch leg: %w", err)
	}
	opts.Logf("regress: replaying serve experiment")
	serveRecs, _, err := serveRecords(opts)
	if err != nil {
		return nil, fmt.Errorf("bench: regress serve leg: %w", err)
	}
	opts.Logf("regress: replaying route experiment")
	routeRecs, _, err := routeRecords(opts)
	if err != nil {
		return nil, fmt.Errorf("bench: regress route leg: %w", err)
	}
	opts.Logf("regress: replaying curate experiment (10k corpus only)")
	curateRecs, _, err := bench.CurateRecords(opts, []int{10_000})
	if err != nil {
		return nil, fmt.Errorf("bench: regress curate leg: %w", err)
	}
	report := bench.RegressReport{Batch: batchRecs, Serve: serveRecs, Route: routeRecs, Curate: curateRecs}

	if opts.JSONPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(opts.JSONPath, append(data, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("bench: writing %s: %w", opts.JSONPath, err)
		}
		opts.Logf("regress report written to %s", opts.JSONPath)
	}

	if opts.BatchBaselinePath == "" && opts.ServeBaselinePath == "" &&
		opts.RouteBaselinePath == "" && opts.CurateBaselinePath == "" {
		return replayTable(report), nil
	}

	var batchBase []bench.BatchResult
	if opts.BatchBaselinePath != "" {
		if batchBase, err = bench.LoadBatchBaseline(opts.BatchBaselinePath); err != nil {
			return nil, err
		}
	}
	var serveBase []bench.ServeResult
	if opts.ServeBaselinePath != "" {
		if serveBase, err = bench.LoadServeBaseline(opts.ServeBaselinePath); err != nil {
			return nil, err
		}
	}
	var routeBase []bench.RouteResult
	if opts.RouteBaselinePath != "" {
		if routeBase, err = bench.LoadRouteBaseline(opts.RouteBaselinePath); err != nil {
			return nil, err
		}
	}
	var curateBase []bench.CurateResult
	if opts.CurateBaselinePath != "" {
		if curateBase, err = bench.LoadCurateBaseline(opts.CurateBaselinePath); err != nil {
			return nil, err
		}
	}
	findings := bench.Gate(report, batchBase, serveBase, routeBase, curateBase, opts.Gate)
	fails, _, line := bench.GateSummary(findings)
	opts.Logf("%s", line)
	if fails > 0 {
		var failed []string
		for _, f := range findings {
			if f.Level == bench.GateFail {
				failed = append(failed, fmt.Sprintf("%s/%s %s %.0fms vs baseline %.0fms (%.2fx)",
					f.Experiment, f.Dataset, f.Metric, f.CurrentMS, f.BaselineMS, f.Ratio))
			}
		}
		return nil, fmt.Errorf("bench: perf regression: %s", strings.Join(failed, "; "))
	}
	return bench.GateTable(findings), nil
}

// replayTable summarizes a report when no baselines were supplied: one row
// per wall-clock metric, the same numbers the JSON report carries.
func replayTable(report bench.RegressReport) *bench.Table {
	t := &bench.Table{
		Title:  "Regress replay (no baselines supplied; wall-clock per dataset)",
		Header: []string{"experiment", "dataset", "metric", "ms"},
	}
	for _, b := range report.Batch {
		t.Rows = append(t.Rows,
			[]string{"batch", b.Dataset, "sequential_ms", fmt.Sprintf("%.0f", b.SequentialMS)},
			[]string{"batch", b.Dataset, "batch_ms", fmt.Sprintf("%.0f", b.BatchMS)})
	}
	for _, s := range report.Serve {
		t.Rows = append(t.Rows,
			[]string{"serve", s.Dataset, "direct_ms", fmt.Sprintf("%.0f", s.DirectMS)},
			[]string{"serve", s.Dataset, "served_ms", fmt.Sprintf("%.0f", s.ServedMS)})
	}
	for _, r := range report.Route {
		t.Rows = append(t.Rows,
			[]string{"route", r.Dataset, "served_ms", fmt.Sprintf("%.0f", r.ServedMS)},
			[]string{"route", r.Dataset, "routed_ms", fmt.Sprintf("%.0f", r.RoutedMS)})
	}
	for _, c := range report.Curate {
		t.Rows = append(t.Rows,
			[]string{"curate", c.Corpus, "cold_curate_ms", fmt.Sprintf("%.0f", c.ColdCurateMS)},
			[]string{"curate", c.Corpus, "warm_load_ms", fmt.Sprintf("%.0f", c.WarmLoadMS)},
			[]string{"curate", c.Corpus, "apply_ms", fmt.Sprintf("%.0f", c.ApplyMS)})
	}
	return t
}
