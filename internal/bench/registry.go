package bench

import (
	"fmt"
	"sort"
)

// Experiment is a runnable table/figure reproduction.
type Experiment struct {
	// ID is the command-line name (e.g. "table5", "fig9").
	ID string
	// Paper is the table/figure reference in the paper.
	Paper string
	// Description summarizes what it reproduces.
	Description string
	// Run produces the result table.
	Run func(Options) (*Table, error)
}

// Experiments returns the registry of all reproductions, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table2", Paper: "Table 2", Description: "parameter defaults by corpus properties", Run: Table2},
		{ID: "table3", Paper: "Table 3", Description: "dataset and DAG statistics", Run: Table3},
		{ID: "table4", Paper: "Table 4", Description: "metric-evaluation case study", Run: Table4},
		{ID: "table5", Paper: "Table 5", Description: "% improvement across corpus setups and methods", Run: Table5},
		{ID: "fig3", Paper: "Figure 3", Description: "simulated user study", Run: Fig3},
		{ID: "fig4", Paper: "Figure 4", Description: "% improvement distributions", Run: Fig4},
		{ID: "fig5", Paper: "Figure 5", Description: "intent-threshold sweeps", Run: Fig5},
		{ID: "fig6", Paper: "Figure 6", Description: "seq and beam-size ablations", Run: Fig6},
		{ID: "fig7", Paper: "Figure 7", Description: "runtime breakdown", Run: Fig7},
		{ID: "fig9", Paper: "Figure 9", Description: "target-leakage detection", Run: Fig9},
		{ID: "ablate", Paper: "(extra)", Description: "framework-component ablation (DESIGN.md)", Run: Ablate},
		{ID: "batch", Paper: "(extra)", Description: "concurrent batch engine vs sequential standardization", Run: Batch},
		{ID: "serve", Paper: "(extra)", Description: "HTTP standardization service vs direct library calls", Run: Serve},
		{ID: "route", Paper: "(extra)", Description: "lsrouter-fronted cluster vs a single directly-addressed replica", Run: Route},
		{ID: "curate", Paper: "(extra)", Description: "corpus-registry lifecycle: cold curation vs warm load vs incremental apply", Run: Curate},
		{ID: "regress", Paper: "(extra)", Description: "perf-regression replay of batch+serve+route vs committed baselines", Run: Regress},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}
