package obs

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The metric names the search layer maintains. Counters are cumulative
// across every standardization that shares the registry; phase gauges hold
// nanoseconds of wall clock accumulated per phase.
const (
	MStatementsExecuted = "statements_executed_total"
	MStatementsSkipped  = "statements_skipped_total"
	MCacheHits          = "exec_cache_hits_total"
	MCacheMisses        = "exec_cache_misses_total"
	MCacheEvictions     = "exec_cache_evictions_total"
	MExecChecks         = "exec_checks_total"
	MCandidatesAdmitted = "candidates_admitted_total"
	MCandidatesPruned   = "candidates_pruned_total"
	MBeamsPruned        = "beams_pruned_total"
	MVerifications      = "verifications_total"
	MSearches           = "searches_total"
	MSearchesCanceled   = "searches_canceled_total"
	// Containment metrics: quarantines split by cause and phase totals.
	MCandidatesQuarantined = "candidates_quarantined_total"
	MStatementPanics       = "statement_panics_total"
	MBudgetExhaustions     = "budget_exhaustions_total"
	MVerifyDegraded        = "verifications_degraded_total"
	MCurateSkipped         = "curate_scripts_skipped_total"
	// Service metrics: job-queue admission and HTTP traffic. MQueueDepth
	// is a gauge (enqueue +1 / dequeue -1); the rest are counters.
	MQueueDepth         = "queue_depth"
	MJobsSubmitted      = "queue_jobs_submitted_total"
	MJobsRejected       = "queue_jobs_rejected_total"
	MJobsCompleted      = "queue_jobs_completed_total"
	MJobsFailed         = "queue_jobs_failed_total"
	MHTTPRequests       = "http_requests_total"
	MHTTPErrors         = "http_errors_total"
	MPhaseCurateNanos   = "phase_curate_nanoseconds_total"
	MPhaseGetStepsNanos = "phase_getsteps_nanoseconds_total"
	MPhaseTopKNanos     = "phase_topk_nanoseconds_total"
	MPhaseCheckNanos    = "phase_check_nanoseconds_total"
	MPhaseVerifyNanos   = "phase_verify_nanoseconds_total"
	MPhaseTotalNanos    = "phase_total_nanoseconds_total"
)

// Counter is a single atomic cumulative metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// AddDuration accumulates a wall-clock duration in nanoseconds.
func (c *Counter) AddDuration(d time.Duration) { c.v.Add(int64(d)) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Metrics is a named registry of atomic counters/gauges. Counter updates
// are lock-free; the registry mutex only guards name registration, so a
// caller on a hot path resolves its counters once and increments them
// without touching the map. The zero value is not usable — call NewMetrics.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{counters: map[string]*Counter{}}
}

// Counter returns the named counter, creating it at zero on first use.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Add increments the named counter by delta (a convenience for cold paths).
func (m *Metrics) Add(name string, delta int64) { m.Counter(name).Add(delta) }

// Value returns the named counter's value (0 if never touched).
func (m *Metrics) Value(name string) int64 {
	m.mu.Lock()
	c, ok := m.counters[name]
	m.mu.Unlock()
	if !ok {
		return 0
	}
	return c.Value()
}

// Names returns the registered metric names, sorted.
func (m *Metrics) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.counters))
	for n := range m.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// snapshot returns a sorted, consistent name → value copy.
func (m *Metrics) snapshot() ([]string, map[string]int64) {
	m.mu.Lock()
	vals := make(map[string]int64, len(m.counters))
	names := make([]string, 0, len(m.counters))
	for n, c := range m.counters {
		names = append(names, n)
		vals[n] = c.Value()
	}
	m.mu.Unlock()
	sort.Strings(names)
	return names, vals
}

// WritePrometheus dumps every metric in Prometheus text exposition format,
// sorted by name and prefixed with "lucidscript_".
func (m *Metrics) WritePrometheus(w io.Writer) error {
	names, vals := m.snapshot()
	for _, n := range names {
		full := "lucidscript_" + n
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", full, full, vals[n]); err != nil {
			return err
		}
	}
	return nil
}

// expvar publication: expvar.Publish panics on duplicate names, so the
// package tracks which registry owns each published name.
var (
	publishMu sync.Mutex
	published = map[string]*Metrics{}
)

// Publish exposes the registry on the process's expvar page under the given
// name (e.g. "lucidscript") as a map of metric name → value. Re-publishing
// the same registry under the same name is a no-op, so several Systems can
// share one exported registry; publishing a different registry under a
// taken name returns an error.
func (m *Metrics) Publish(name string) error {
	publishMu.Lock()
	defer publishMu.Unlock()
	if prev, ok := published[name]; ok {
		if prev == m {
			return nil
		}
		return fmt.Errorf("obs: expvar name %q already published by another registry", name)
	}
	expvar.Publish(name, expvar.Func(func() interface{} {
		_, vals := m.snapshot()
		return vals
	}))
	published[name] = m
	return nil
}

// defaultMetrics is the process-wide registry behind Default().
var (
	defaultOnce    sync.Once
	defaultMetrics *Metrics
)

// Default returns the process-wide shared registry, published via expvar
// under "lucidscript" on first use.
func Default() *Metrics {
	defaultOnce.Do(func() {
		defaultMetrics = NewMetrics()
		// The name is reserved on first call; an error is impossible here.
		_ = defaultMetrics.Publish("lucidscript")
	})
	return defaultMetrics
}
