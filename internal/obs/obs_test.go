package obs

import (
	"expvar"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWriterTracerLineFormat(t *testing.T) {
	var b strings.Builder
	tr := NewWriterTracer(&b)
	tr.Emit(Event{Kind: EvStepDone, Phase: PhaseExtend, Elapsed: 1500 * time.Microsecond, Step: 2, N: 5, Dur: time.Millisecond})
	tr.Emit(Event{Kind: EvCandidatePruned, Phase: PhaseCheck, Err: "boom"})
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "step_done") || !strings.Contains(lines[0], "step=2") || !strings.Contains(lines[0], "n=5") {
		t.Errorf("step_done line: %q", lines[0])
	}
	if !strings.Contains(lines[1], `err="boom"`) {
		t.Errorf("pruned line: %q", lines[1])
	}
}

func TestCollectTracerConcurrent(t *testing.T) {
	tr := NewCollectTracer()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Emit(Event{Kind: EvCandidateExecuted})
			}
		}()
	}
	wg.Wait()
	if n := len(tr.Events()); n != 800 {
		t.Fatalf("collected %d events, want 800", n)
	}
}

func TestMultiTracer(t *testing.T) {
	a, b := NewCollectTracer(), NewCollectTracer()
	if got := MultiTracer(nil, nil); got != nil {
		t.Fatalf("all-nil MultiTracer = %v, want nil", got)
	}
	if got := MultiTracer(nil, a); got != Tracer(a) {
		t.Fatalf("single live tracer should be returned directly")
	}
	m := MultiTracer(a, nil, b)
	m.Emit(Event{Kind: EvSearchStart})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatalf("fan-out failed: %d/%d", len(a.Events()), len(b.Events()))
	}
}

func TestMetricsCountersAndPrometheus(t *testing.T) {
	m := NewMetrics()
	c := m.Counter(MCacheHits)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if v := m.Value(MCacheHits); v != 8000 {
		t.Fatalf("hits = %d, want 8000", v)
	}
	m.Add(MSearches, 2)
	m.Counter(MPhaseTotalNanos).AddDuration(3 * time.Second)
	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lucidscript_exec_cache_hits_total counter",
		"lucidscript_exec_cache_hits_total 8000",
		"lucidscript_searches_total 2",
		"lucidscript_phase_total_nanoseconds_total 3000000000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus dump missing %q:\n%s", want, out)
		}
	}
	// Sorted output: hits before searches before total nanos.
	if strings.Index(out, "exec_cache_hits") > strings.Index(out, "searches_total") {
		t.Errorf("dump not sorted:\n%s", out)
	}
}

func TestMetricsValueUnregistered(t *testing.T) {
	m := NewMetrics()
	if v := m.Value("never_touched"); v != 0 {
		t.Fatalf("unregistered value = %d", v)
	}
	if names := m.Names(); len(names) != 0 {
		t.Fatalf("names = %v", names)
	}
}

func TestPublish(t *testing.T) {
	m := NewMetrics()
	m.Add(MSearches, 1)
	if err := m.Publish("obs_test_metrics"); err != nil {
		t.Fatal(err)
	}
	// Same registry, same name: no-op.
	if err := m.Publish("obs_test_metrics"); err != nil {
		t.Fatalf("re-publish same registry: %v", err)
	}
	// Different registry, same name: error, no panic.
	if err := NewMetrics().Publish("obs_test_metrics"); err == nil {
		t.Fatal("publishing a second registry under a taken name should fail")
	}
	v := expvar.Get("obs_test_metrics")
	if v == nil {
		t.Fatal("expvar.Get returned nil")
	}
	if !strings.Contains(v.String(), MSearches) {
		t.Fatalf("expvar value missing counter: %s", v.String())
	}
}

func TestDefaultRegistrySingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() not a singleton")
	}
	Default().Add(MSearches, 0) // must not panic, is published
	if expvar.Get("lucidscript") == nil {
		t.Fatal("default registry not published under lucidscript")
	}
}
