// Package obs provides structured observability for the standardization
// pipeline: a Tracer interface that receives search events with monotonic
// per-phase timings, and an atomic Metrics registry exported via expvar and
// a Prometheus text dump.
//
// Observability is strictly pay-for-what-you-use: a nil Tracer and a nil
// *Metrics disable every emission at the call site, so the search hot path
// carries no tracing cost unless a caller opts in.
package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// EventKind identifies what a trace Event records.
type EventKind string

// The search event kinds, in the order they typically occur.
const (
	// EvCurateDone reports the offline phase: the corpus search space is
	// curated (Dur holds the curation time, N the corpus size).
	EvCurateDone EventKind = "curate_done"
	// EvSearchStart opens one standardization (N = input script lines).
	EvSearchStart EventKind = "search_start"
	// EvCandidateExecuted records an interpreter run of one candidate
	// (Dur = execution time; Detail distinguishes input/candidate/verify).
	EvCandidateExecuted EventKind = "candidate_executed"
	// EvCandidatePruned records a candidate rejected by the early execution
	// check (Err holds the interpreter failure).
	EvCandidatePruned EventKind = "candidate_pruned"
	// EvCandidateQuarantined records a candidate dropped because it panicked
	// or exhausted a resource budget — a containment event, distinct from an
	// ordinary execution-failure prune (Detail = panic|exhausted, Err holds
	// the contained failure).
	EvCandidateQuarantined EventKind = "candidate_quarantined"
	// EvVerifyDegraded records a verification that fell back to
	// sampled-tuple mode because the candidate's full-data run exceeded its
	// resource budget (N = sample rows used).
	EvVerifyDegraded EventKind = "verify_degraded"
	// EvCurateSkipped records a corpus script dropped during curation
	// because it failed to lemmatize (N = script index, Err the cause).
	EvCurateSkipped EventKind = "curate_skipped"
	// EvBeamExtended reports one parent beam fully extended
	// (N = candidates admitted from this parent).
	EvBeamExtended EventKind = "beam_extended"
	// EvStepDone closes one beam-search step (Step is 1-based,
	// N = candidates admitted across all parents, Dur = step wall time).
	EvStepDone EventKind = "step_done"
	// EvCacheReport aggregates execution-prefix cache traffic since the
	// previous report (N = hits, N2 = misses). Per-statement hit/miss events
	// would dominate the stream, so the tracer sees per-step deltas.
	EvCacheReport EventKind = "cache_report"
	// EvVerifyStart opens VerifyAllConstraints for one grid cell
	// (N = eligible candidates).
	EvVerifyStart EventKind = "verify_start"
	// EvVerifyPass records an accepted candidate (Detail = intent value).
	EvVerifyPass EventKind = "verify_pass"
	// EvVerifyDone closes one grid cell's verification
	// (N = candidates examined, Dur = verification wall time).
	EvVerifyDone EventKind = "verify_done"
	// EvSearchDone closes the standardization (Dur = total wall time).
	EvSearchDone EventKind = "search_done"
	// EvCanceled reports that the search stopped on a context cancellation
	// or deadline (Err holds the cause).
	EvCanceled EventKind = "canceled"
)

// The search phases used in Event.Phase and as pprof label values.
const (
	PhaseCurate = "curate"
	PhaseExtend = "extend"
	PhaseCheck  = "check"
	PhaseVerify = "verify"
)

// Event is one structured trace record. Elapsed is measured on the
// monotonic clock from the start of the standardization, so an ordered
// event stream reconciles with the search's total wall time.
type Event struct {
	// Kind identifies the event.
	Kind EventKind
	// Job is the 1-based batch job index the event belongs to, 0 for
	// single-shot standardizations (see JobTracer).
	Job int
	// Elapsed is the monotonic offset since the search started.
	Elapsed time.Duration
	// Phase is the search phase (curate, extend, check, verify).
	Phase string
	// Step is the 1-based beam-search step, 0 when not applicable.
	Step int
	// N and N2 carry the event's cardinalities (see the kind docs).
	N, N2 int
	// Dur is the duration of the traced unit, when meaningful.
	Dur time.Duration
	// Detail carries human-readable specifics.
	Detail string
	// Err holds the failure text for pruned/canceled events.
	Err string
}

// String renders the event as one stable, human-readable line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "+%-11s %-7s %-18s", e.Elapsed.Round(time.Microsecond), e.Phase, e.Kind)
	if e.Job > 0 {
		fmt.Fprintf(&b, " job=%d", e.Job)
	}
	if e.Step > 0 {
		fmt.Fprintf(&b, " step=%d", e.Step)
	}
	if e.N != 0 || e.Kind == EvStepDone || e.Kind == EvBeamExtended || e.Kind == EvCacheReport {
		fmt.Fprintf(&b, " n=%d", e.N)
	}
	if e.N2 != 0 || e.Kind == EvCacheReport {
		fmt.Fprintf(&b, " n2=%d", e.N2)
	}
	if e.Dur != 0 {
		fmt.Fprintf(&b, " dur=%s", e.Dur.Round(time.Microsecond))
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " %s", e.Detail)
	}
	if e.Err != "" {
		fmt.Fprintf(&b, " err=%q", e.Err)
	}
	return b.String()
}

// Tracer receives structured search events. Implementations must be safe
// for concurrent use: parallel beam extensions emit from worker goroutines.
type Tracer interface {
	Emit(Event)
}

// WriterTracer writes one line per event to an io.Writer, serialized by an
// internal mutex. It backs `lsstd -trace`'s stderr progress stream.
type WriterTracer struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriterTracer returns a line-per-event tracer over w.
func NewWriterTracer(w io.Writer) *WriterTracer { return &WriterTracer{w: w} }

// Emit writes the event as one line.
func (t *WriterTracer) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintln(t.w, e.String())
}

// CollectTracer accumulates events in memory, for tests and programmatic
// inspection.
type CollectTracer struct {
	mu     sync.Mutex
	events []Event
}

// NewCollectTracer returns an empty collecting tracer.
func NewCollectTracer() *CollectTracer { return &CollectTracer{} }

// Emit appends the event.
func (t *CollectTracer) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, e)
}

// Events returns a snapshot of the collected events in emission order.
func (t *CollectTracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// jobTracer stamps every event with a batch job index before forwarding.
type jobTracer struct {
	t   Tracer
	job int
}

func (j jobTracer) Emit(e Event) {
	e.Job = j.job
	j.t.Emit(e)
}

// JobTracer wraps t so every emitted event carries the 1-based batch job
// index, letting one shared tracer attribute interleaved events from
// concurrent jobs. A nil t stays nil (tracing disabled).
func JobTracer(t Tracer, job int) Tracer {
	if t == nil {
		return nil
	}
	return jobTracer{t: t, job: job}
}

// multiTracer fans one event out to several tracers.
type multiTracer []Tracer

func (m multiTracer) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}

// MultiTracer returns a tracer that forwards every event to each non-nil
// tracer in order. Nil entries are dropped; with zero or one live tracer it
// returns nil or that tracer directly.
func MultiTracer(tracers ...Tracer) Tracer {
	var live []Tracer
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiTracer(live)
}
