// Package router fronts N lsserved replicas as one standardization
// service: every dataset is consistent-hashed onto exactly one replica
// (its shard owner), so that replica's curated System, SessionCache,
// idempotency-key table, and write-ahead log keep working unmodified —
// the router adds scale without touching the single-node durability
// story. Replica readiness is probed off GET /readyz with hysteresis;
// unready or draining replicas are ejected from the ring and their
// shards fail over to the surviving owners, with Retry-After-bearing
// 503s covering the detection window. See docs/API.md "Topology".
package router

import (
	"hash/fnv"
	"sort"
)

// Ring assigns shard keys (dataset names) to members (replica names) by
// rendezvous — highest-random-weight — hashing. The properties the
// multi-node tier needs are exactly rendezvous hashing's:
//
//   - Stable: the same member set always yields the same owner for a key.
//   - Bounded movement: removing a member remigrates only the shards it
//     owned; adding one moves only the shards the newcomer now wins.
//     Every other (key, owner) pair is untouched, so idempotency keys and
//     WAL recovery stay valid on the replicas that did not change.
//   - Single ownership: a key hashes to exactly one member, never two.
//
// The zero value is an empty ring. Ring is a value type: Owner is
// read-only, and membership changes build the candidate set per call, so
// a Ring can be rebuilt from a ready-replica snapshot on every request
// without synchronization beyond the snapshot itself.
type Ring struct {
	members []string
}

// NewRing builds a ring over the given members. Duplicates are collapsed
// and order is irrelevant — two rings over the same set behave
// identically.
func NewRing(members []string) Ring {
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	return Ring{members: uniq}
}

// Members returns the member set in sorted order. The slice is shared;
// callers must not mutate it.
func (r Ring) Members() []string { return r.members }

// Len reports the member count.
func (r Ring) Len() int { return len(r.members) }

// Owner returns the member that owns key, and false when the ring is
// empty. Ties (astronomically unlikely with a 64-bit hash) break toward
// the lexicographically smaller member so the answer stays deterministic.
func (r Ring) Owner(key string) (string, bool) {
	if len(r.members) == 0 {
		return "", false
	}
	best := r.members[0]
	bestW := weight(best, key)
	for _, m := range r.members[1:] {
		if w := weight(m, key); w > bestW || (w == bestW && m < best) {
			best, bestW = m, w
		}
	}
	return best, true
}

// weight is the rendezvous score of (member, key): FNV-64a over the two
// strings with a NUL fence so ("ab","c") and ("a","bc") cannot collide,
// then a splitmix64 finalizer. The finalizer is load-bearing: raw FNV is
// nearly affine in its running state (h' ≈ h·p^n + C(suffix) mod 2^64 for
// an n-byte suffix), so without it the ranking of members is strongly
// correlated across same-length keys and a joining member can win almost
// no shards. The avalanche mix breaks that correlation.
func weight(member, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(member))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (Steele et al.): a 64-bit bijection
// with full avalanche.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
