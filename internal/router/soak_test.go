package router

// The multi-node acceptance soak: a real lsrouter process fronting three
// real lsserved replicas, each durable, with jobs streaming across six
// datasets while one replica is SIGKILLed and restarted mid-stream. The
// audit afterward is the cluster-level ledger contract: no acknowledged
// job lost, no idempotency key executed twice, and every completed job's
// output hash byte-identical to a direct in-process run on an
// identically-curated System.

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"lucidscript"
	"lucidscript/internal/gen"
	"lucidscript/internal/serve"
)

// soakJobs is the default job population; override with LSROUTER_SOAK_JOBS
// to stress harder (the CI cluster job does).
const soakJobs = 160

// soakDatasets is the shard count — enough that every replica owns at
// least one shard with near-certainty, so the kill always hits live work.
const soakDatasets = 6

func TestRouterKillRecoverySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real server processes")
	}
	nJobs := soakJobs
	if env := os.Getenv("LSROUTER_SOAK_JOBS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n <= 0 {
			t.Fatalf("bad LSROUTER_SOAK_JOBS=%q", env)
		}
		nJobs = n
	}

	servedBin := buildBinary(t, "lucidscript/cmd/lsserved")
	routerBin := buildBinary(t, "lucidscript/cmd/lsrouter")
	workDir := t.TempDir()

	// Six datasets, each its own seeded corpus + CSV on disk for the
	// replica processes, plus an identically-curated in-process System per
	// dataset as the byte-identical oracle.
	datasetNames := make([]string, soakDatasets)
	datasetSpecs := make([]string, soakDatasets)
	oracles := make([]*lucidscript.System, soakDatasets)
	for d := 0; d < soakDatasets; d++ {
		seed := int64(42 + 1000*d)
		name := fmt.Sprintf("ds%d", d)
		corpusDir := filepath.Join(workDir, name, "corpus")
		dataCSV := filepath.Join(workDir, name, "data.csv")
		writeSoakCorpus(t, seed, corpusDir, dataCSV)
		datasetNames[d] = name
		datasetSpecs[d] = name + "=" + corpusDir + "," + dataCSV
		g := gen.New(seed)
		sys, err := lucidscript.NewSystem(g.Scripts(8), g.Sources(120), clusterOptions())
		if err != nil {
			t.Fatal(err)
		}
		oracles[d] = sys
	}

	// Three durable replicas, every one hosting all six datasets so any
	// shard can fail over to any survivor.
	replicas := make([]*replicaProc, 3)
	var replicaFlags []string
	for i := range replicas {
		name := fmt.Sprintf("r%d", i+1)
		port := soakFreePort(t)
		base := fmt.Sprintf("http://127.0.0.1:%d", port)
		args := []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", port),
			"-data-dir", filepath.Join(workDir, name, "jobs"),
			"-tau", "0.9", "-seq", "4", "-beam", "3", "-max-rows", "80",
			"-serve-workers", "2",
			"-queue-depth", strconv.Itoa(2 * nJobs),
			"-job-retention", "1h",
		}
		for _, spec := range datasetSpecs {
			args = append(args, "-dataset", spec)
		}
		replicas[i] = &replicaProc{name: name, base: base, args: args}
		replicas[i].cmd = startProc(t, servedBin, args, base)
		replicaFlags = append(replicaFlags, "-replica", name+"="+base)
	}

	routerPort := soakFreePort(t)
	routerBase := fmt.Sprintf("http://127.0.0.1:%d", routerPort)
	routerArgs := append([]string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", routerPort),
		"-probe-interval", "100ms",
		"-probe-timeout", "2s",
		"-rise", "1", "-fall", "2",
		"-retry-after", "500ms",
	}, replicaFlags...)
	routerProc := startProc(t, routerBin, routerArgs, routerBase)
	defer func() {
		routerProc.Process.Signal(syscall.SIGTERM)
		routerProc.Wait()
	}()
	client := NewClient(routerBase, nil)
	ctx := context.Background()
	waitClusterReady(t, client, len(replicas), 60*time.Second)

	// Stream keyed jobs round-robin across the datasets. Job i: dataset
	// i%soakDatasets, script i/soakDatasets (mod corpus) of that dataset's
	// generator — both recoverable from the key alone, which is what lets
	// the audit resubmit and re-verify any key.
	srcs := make([][]string, soakDatasets)
	for d := 0; d < soakDatasets; d++ {
		for _, sc := range gen.New(int64(7 + d)).Scripts(4) {
			srcs[d] = append(srcs[d], sc.Source())
		}
	}
	jobOf := func(i int) (dataset string, src string, key string) {
		d := i % soakDatasets
		return datasetNames[d], srcs[d][(i/soakDatasets)%len(srcs[d])], fmt.Sprintf("soak-%04d", i)
	}

	var mu sync.Mutex
	acked := map[string]string{} // namespaced job id → key
	failed := map[string]bool{}  // keys whose submission never got acked
	submitterDone := make(chan struct{})
	go func() {
		defer close(submitterDone)
		for i := 0; i < nJobs; i++ {
			ds, src, key := jobOf(i)
			st, err := client.Submit(ctx, ds, src, nil, key)
			mu.Lock()
			if err != nil {
				// The retry policy gave up inside the outage window. The
				// key was never acked to us; the audit resubmits it.
				failed[key] = true
			} else {
				acked[st.ID] = key
			}
			mu.Unlock()
		}
	}()

	// Pick the victim by shard ownership — the replica that owns dataset
	// ds0 is guaranteed to have live traffic — and SIGKILL it once a
	// meaningful slice of jobs has finished while submissions still flow.
	var doneBefore []serve.JobStatus
	killDeadline := time.Now().Add(60 * time.Second)
	for {
		page, err := client.AllJobs(ctx, serve.ListJobsQuery{State: serve.StateDone, Limit: 1000})
		if err == nil {
			doneBefore = page
		}
		if len(doneBefore) >= nJobs/10 || time.Now().After(killDeadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	victim := victimFor(t, replicas, doneBefore)
	if err := victim.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no fsync
		t.Fatal(err)
	}
	victim.cmd.Wait()
	t.Logf("killed %s with %d jobs done cluster-wide", victim.name, len(doneBefore))

	// Restart the victim on the same port and data dir while the stream
	// continues. The port may linger briefly after the kill, so retry.
	var restarted *exec.Cmd
	for attempt := 0; attempt < 5; attempt++ {
		restarted = tryStartProc(t, servedBin, victim.args, victim.base)
		if restarted != nil {
			break
		}
		time.Sleep(500 * time.Millisecond)
	}
	if restarted == nil {
		t.Fatalf("could not restart %s on its original port", victim.name)
	}
	defer func() {
		restarted.Process.Signal(syscall.SIGTERM)
		restarted.Wait()
	}()

	<-submitterDone
	mu.Lock()
	nAcked, nFailed := len(acked), len(failed)
	mu.Unlock()
	t.Logf("stream finished: %d/%d acked, %d gave up during the outage", nAcked, nJobs, nFailed)
	if nAcked == 0 {
		t.Fatal("no job was ever acknowledged — the cluster never took traffic")
	}

	// Settle: all replicas ready again, every job terminal.
	waitClusterReady(t, client, len(replicas), 120*time.Second)
	all := soakWaitTerminal(t, client, nAcked, 120*time.Second)

	// Audit 1 — no acked job lost, none listed twice.
	seen := map[string]int{}
	byID := map[string]serve.JobStatus{}
	for _, st := range all {
		seen[st.ID]++
		byID[st.ID] = st
	}
	for id, key := range acked {
		if seen[id] != 1 {
			t.Errorf("acked job %s (key %s) appears %d times after recovery, want exactly 1", id, key, seen[id])
		}
	}

	// Audit 2 — per idempotency key, at most one job may have done real
	// work: interrupted is the one terminal state that releases a key, so
	// counting non-interrupted jobs per key catches any duplicated
	// execution across the failover (>1) and any lost submission (0, for
	// keys the cluster acked).
	byKey := map[string][]serve.JobStatus{}
	for _, st := range all {
		if st.IdempotencyKey != "" {
			byKey[st.IdempotencyKey] = append(byKey[st.IdempotencyKey], st)
		}
	}
	resubmitted := 0
	for i := 0; i < nJobs; i++ {
		ds, src, key := jobOf(i)
		var live []serve.JobStatus
		for _, st := range byKey[key] {
			if st.State != serve.StateInterrupted {
				live = append(live, st)
			}
		}
		switch {
		case len(live) > 1:
			t.Errorf("key %s executed %d times across the failover: duplicated work", key, len(live))
		case len(live) == 0:
			// Interrupted (key released) or never landed: a keyed resubmit
			// must start fresh on the recovered ring and complete.
			st, err := client.Submit(ctx, ds, src, nil, key)
			if err != nil {
				t.Errorf("resubmit of released key %s: %v", key, err)
				continue
			}
			for _, old := range byKey[key] {
				if st.ID == old.ID {
					t.Errorf("resubmit of interrupted key %s replayed job %s instead of starting fresh", key, old.ID)
				}
			}
			final, err := client.Wait(ctx, st.ID, 5*time.Millisecond)
			if err != nil || final.State != serve.StateDone {
				t.Errorf("resubmitted key %s finished %+v (err %v)", key, final, err)
				continue
			}
			byKey[key] = append(byKey[key], *final)
			resubmitted++
		}
	}
	t.Logf("audit resubmitted %d released keys", resubmitted)

	// Audit 3 — byte-identical outputs: every done job's script and output
	// hash must equal the in-process oracle's for that exact submission,
	// no matter which replica ran it or whether it crossed the failover.
	checkedHashes := 0
	for i := 0; i < nJobs; i++ {
		_, src, key := jobOf(i)
		d := i % soakDatasets
		for _, st := range byKey[key] {
			if st.State != serve.StateDone {
				continue
			}
			if st.Result == nil {
				t.Errorf("done job %s has no result", st.ID)
				continue
			}
			want, err := oracles[d].Standardize(mustParse(t, src))
			if err != nil {
				t.Fatalf("oracle run for key %s: %v", key, err)
			}
			wantHash, err := oracles[d].OutputHash(want.Script)
			if err != nil {
				t.Fatalf("oracle hash for key %s: %v", key, err)
			}
			if st.Result.Script != want.Script.Source() {
				t.Errorf("job %s (key %s): routed script differs from oracle", st.ID, key)
			}
			if st.Result.OutputHash != wantHash {
				t.Errorf("job %s (key %s): output hash %q, oracle %q", st.ID, key, st.Result.OutputHash, wantHash)
			}
			checkedHashes++
		}
	}
	if checkedHashes == 0 {
		t.Error("hash audit covered zero done jobs")
	}

	// Audit 4 — jobs finished before the kill survived it byte-for-byte: a
	// drifted finish instant would mean the restart re-executed them.
	for _, want := range doneBefore {
		got, ok := byID[want.ID]
		if !ok {
			t.Errorf("pre-kill finished job %s lost across recovery", want.ID)
			continue
		}
		if got.State != serve.StateDone || got.Result == nil {
			t.Errorf("pre-kill finished job %s now %q (%s)", want.ID, got.State, got.Error)
			continue
		}
		if got.Result.OutputHash != want.Result.OutputHash {
			t.Errorf("job %s output hash drifted across the kill", want.ID)
		}
		if got.FinishedAt == nil || !got.FinishedAt.Equal(*want.FinishedAt) {
			t.Errorf("job %s finished_at %v → %v: it re-executed", want.ID, want.FinishedAt, got.FinishedAt)
		}
	}

	var interrupted, done int
	for _, st := range all {
		switch st.State {
		case serve.StateDone:
			done++
		case serve.StateInterrupted:
			interrupted++
		}
	}
	t.Logf("ledger after recovery: %d jobs, %d done, %d interrupted", len(all), done, interrupted)
}

// replicaProc is one spawned lsserved replica: identity, address, and the
// argv it can be restarted with.
type replicaProc struct {
	name string
	base string
	args []string
	cmd  *exec.Cmd
}

// victimFor picks the replica to kill: the one that has finished the most
// jobs so far, derived from the namespaced ids of already-done work, so
// the kill provably lands on a replica with traffic.
func victimFor(t *testing.T, replicas []*replicaProc, done []serve.JobStatus) *replicaProc {
	t.Helper()
	counts := map[string]int{}
	for _, st := range done {
		if name, _, ok := splitJobID(st.ID); ok {
			counts[name]++
		}
	}
	best := replicas[0]
	for _, rep := range replicas {
		if counts[rep.name] > counts[best.name] {
			best = rep
		}
	}
	return best
}

// mustParse parses a generated script source.
func mustParse(t *testing.T, src string) *lucidscript.Script {
	t.Helper()
	sc, err := lucidscript.ParseScript(src)
	if err != nil {
		t.Fatalf("parsing generated source: %v", err)
	}
	return sc
}

// writeSoakCorpus materializes one dataset's seeded corpus and CSV.
func writeSoakCorpus(t *testing.T, seed int64, corpusDir, dataCSV string) {
	t.Helper()
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		t.Fatal(err)
	}
	g := gen.New(seed)
	for i, sc := range g.Scripts(8) {
		path := filepath.Join(corpusDir, fmt.Sprintf("s%02d.ls", i))
		if err := os.WriteFile(path, []byte(sc.Source()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range g.Sources(120) {
		if err := f.WriteCSVFile(dataCSV); err != nil {
			t.Fatal(err)
		}
	}
}

// buildBinary compiles one command into the test's temp space.
func buildBinary(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = "../.." // module root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// startProc launches a server process and blocks until its /healthz
// answers; fatal if it does not come up.
func startProc(t *testing.T, bin string, args []string, base string) *exec.Cmd {
	t.Helper()
	cmd := tryStartProc(t, bin, args, base)
	if cmd == nil {
		t.Fatalf("%s did not become healthy in time", filepath.Base(bin))
	}
	return cmd
}

// tryStartProc is startProc without the fatal: nil when the process did
// not answer /healthz within the window (e.g. its port was still held).
func tryStartProc(t *testing.T, bin string, args []string, base string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	cli := serve.NewClient(base, nil)
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if cmd.ProcessState != nil { // exited (port clash, bad flags)
			return nil
		}
		if _, err := cli.Healthz(context.Background()); err == nil {
			return cmd
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil
}

// waitClusterReady polls the router's /healthz until it reports "ok",
// which the router emits only when every configured replica is ready.
func waitClusterReady(t *testing.T, client *Client, replicas int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		// The router's Health payload is a superset of the serve wire
		// shape; the status field is all the readiness check needs.
		if h, err := client.Healthz(context.Background()); err == nil && h.Status == "ok" {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("cluster did not reach %d ready replicas within %v", replicas, timeout)
}

// soakWaitTerminal polls the router listing until every job is terminal.
func soakWaitTerminal(t *testing.T, client *Client, want int, timeout time.Duration) []serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		all, err := client.AllJobs(context.Background(), serve.ListJobsQuery{Limit: 1000})
		if err == nil {
			settled := len(all) >= want
			for _, st := range all {
				if !serve.TerminalState(st.State) {
					settled = false
					break
				}
			}
			if settled {
				return all
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("jobs did not settle within %v of recovery", timeout)
	return nil
}

// soakFreePort grabs an ephemeral TCP port for a spawned process.
func soakFreePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}
