package router

import (
	"fmt"
	"math/rand"
	"testing"
)

// names generates n distinct member names.
func memberNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("replica-%02d", i)
	}
	return out
}

// shardKeys generates n distinct dataset names.
func shardKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("dataset-%03d", i)
	}
	return out
}

// TestRingStableAssignment: the same member set — in any insertion
// order, duplicates included — yields the same owner for every key, on
// every call.
func TestRingStableAssignment(t *testing.T) {
	members := memberNames(7)
	keys := shardKeys(200)
	base := NewRing(members)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]string(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		shuffled = append(shuffled, members[trial%len(members)]) // duplicate
		r := NewRing(shuffled)
		for _, k := range keys {
			want, okW := base.Owner(k)
			got, okG := r.Owner(k)
			got2, _ := r.Owner(k)
			if !okW || !okG || got != want || got2 != got {
				t.Fatalf("trial %d key %s: owner %q/%v vs base %q/%v", trial, k, got, okG, want, okW)
			}
		}
	}
}

// TestRingMinimalMovementOnLeave: removing one member remigrates exactly
// the keys it owned — every other assignment is untouched.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	members := memberNames(6)
	keys := shardKeys(300)
	full := NewRing(members)
	for _, leaving := range members {
		var rest []string
		for _, m := range members {
			if m != leaving {
				rest = append(rest, m)
			}
		}
		shrunk := NewRing(rest)
		moved := 0
		for _, k := range keys {
			before, _ := full.Owner(k)
			after, ok := shrunk.Owner(k)
			if !ok {
				t.Fatalf("no owner for %s after removing %s", k, leaving)
			}
			if before == leaving {
				moved++
				if after == leaving {
					t.Fatalf("key %s still assigned to departed member %s", k, leaving)
				}
				continue
			}
			if after != before {
				t.Fatalf("removing %s moved key %s from %s to %s (not the departed member's shard)",
					leaving, k, before, after)
			}
		}
		t.Logf("removing %s moved %d/%d keys", leaving, moved, len(keys))
	}
}

// TestRingMinimalMovementOnJoin: adding a member moves only the keys the
// newcomer wins, and they all move to it.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	members := memberNames(5)
	keys := shardKeys(300)
	base := NewRing(members)
	joiner := "replica-new"
	grown := NewRing(append(append([]string(nil), members...), joiner))
	moved := 0
	for _, k := range keys {
		before, _ := base.Owner(k)
		after, _ := grown.Owner(k)
		if after == before {
			continue
		}
		moved++
		if after != joiner {
			t.Fatalf("join of %s moved key %s from %s to %s (only the joiner may win keys)",
				joiner, k, before, after)
		}
	}
	if moved == 0 {
		t.Error("joiner won zero keys out of 300 — hash distribution is broken")
	}
	t.Logf("join moved %d/%d keys to %s", moved, len(keys), joiner)
}

// TestRingBalance sanity-checks the distribution: over 3 members and 600
// keys every member should own a non-trivial share.
func TestRingBalance(t *testing.T) {
	r := NewRing(memberNames(3))
	counts := map[string]int{}
	for _, k := range shardKeys(600) {
		o, _ := r.Owner(k)
		counts[o]++
	}
	for m, c := range counts {
		if c < 100 {
			t.Errorf("member %s owns only %d/600 keys", m, c)
		}
	}
}

// TestRingEmptyAndSingle pins the edges: the empty ring owns nothing; a
// single member owns everything.
func TestRingEmptyAndSingle(t *testing.T) {
	var empty Ring
	if _, ok := empty.Owner("x"); ok {
		t.Error("empty ring claims an owner")
	}
	if _, ok := NewRing(nil).Owner("x"); ok {
		t.Error("NewRing(nil) claims an owner")
	}
	solo := NewRing([]string{"only"})
	for _, k := range shardKeys(20) {
		if o, ok := solo.Owner(k); !ok || o != "only" {
			t.Fatalf("single-member ring assigned %s to %q/%v", k, o, ok)
		}
	}
}

// FuzzRingChurn drives a fuzzed sequence of joins and leaves over a
// member pool and checks the ring's contract after every step: a key is
// never double-assigned (the owner function is deterministic and names a
// current member), and each membership change moves only the shards the
// contract allows — a leave moves only the departed member's keys, a
// join moves keys only onto the joiner.
func FuzzRingChurn(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{9, 9, 9, 0, 0, 0, 7, 7})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		pool := memberNames(8)
		keys := shardKeys(64)
		present := map[string]bool{}
		current := func() Ring {
			var ms []string
			for m, in := range present {
				if in {
					ms = append(ms, m)
				}
			}
			return NewRing(ms)
		}
		prev := current()
		prevOwner := map[string]string{}
		for _, op := range ops {
			m := pool[int(op)%len(pool)]
			joining := !present[m]
			present[m] = joining
			r := current()
			for _, k := range keys {
				o1, ok1 := r.Owner(k)
				o2, ok2 := r.Owner(k)
				if ok1 != ok2 || o1 != o2 {
					t.Fatalf("non-deterministic owner for %s: %q/%v vs %q/%v", k, o1, ok1, o2, ok2)
				}
				if !ok1 {
					if r.Len() != 0 {
						t.Fatalf("no owner for %s despite %d members", k, r.Len())
					}
					continue
				}
				if !present[o1] {
					t.Fatalf("key %s assigned to absent member %s", k, o1)
				}
				if po, had := prevOwner[k]; had && prev.Len() > 0 && o1 != po {
					// The key moved: legal only if its old owner left or
					// the move is onto a joiner.
					if joining && o1 != m {
						t.Fatalf("join of %s moved key %s from %s to %s", m, k, po, o1)
					}
					if !joining && po != m {
						t.Fatalf("leave of %s moved key %s from %s to %s", m, k, po, o1)
					}
				}
				prevOwner[k] = o1
			}
			if r.Len() == 0 {
				prevOwner = map[string]string{}
			}
			prev = r
		}
	})
}
