package router

import (
	"context"
	"net/http"
	"time"

	"lucidscript/internal/serve"
)

// Client is the topology-blind face over serve.Client: point it at a
// router or at a single replica — the wire API is identical — and submit
// with idempotency keys under a retry policy tuned for failover windows.
// Everything serve.Client offers (Job, Wait, Cancel, ListJobs, AllJobs,
// Healthz, Readyz, ...) is promoted unchanged; Submit is the one method
// this type reshapes, because against a multi-replica cluster a keyless
// submission cannot be retried safely and a keyed one must outlast an
// owner failover.
type Client struct {
	*serve.Client
	// Policy drives Submit's backoff. The zero value resolves to a
	// failover-sized policy: enough attempts, with server Retry-After
	// hints honored, to ride out a replica ejection and shard
	// reassignment (roughly 30s worst case).
	Policy serve.RetryPolicy
}

// NewClient builds a router client for a cluster rooted at base. hc nil
// uses http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	return &Client{
		Client: serve.NewClient(base, hc),
		Policy: serve.RetryPolicy{MaxAttempts: 16, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second},
	}
}

// Submit enqueues one standardization under the client's retry policy.
// key must be non-empty: it is what makes retrying across 503 failover
// windows safe (a duplicate delivery replays the original job instead of
// duplicating work) and what maps a post-crash retry onto the recovered
// replica's ledger. The sticky routing guarantee — same dataset, same
// replica — is the router's; the key guarantee is this method's.
func (c *Client) Submit(ctx context.Context, dataset, scriptSrc string, opts *serve.JobOptions, key string) (*serve.JobStatus, error) {
	return c.Client.SubmitRetry(ctx, dataset, scriptSrc, opts, key, c.Policy)
}
