package router

import (
	"context"
	"sync"
	"time"

	"lucidscript/internal/serve"
)

// replica is one fronted lsserved process: its address, a typed client,
// and the prober's view of it. All mutable state sits behind mu.
type replica struct {
	name string
	base string
	cli  *serve.Client

	mu         sync.Mutex
	ready      bool
	okStreak   int
	failStreak int
	lastErr    error
	lastProbe  time.Time
	health     *serve.HealthResponse
}

// ReplicaStatus is one replica's externally visible probe state, reported
// by the router's own /healthz.
type ReplicaStatus struct {
	Name string `json:"name"`
	Base string `json:"base"`
	// Ready is the hysteresis verdict: true once Rise consecutive probes
	// succeeded, false again after Fall consecutive failures.
	Ready bool `json:"ready"`
	// Error is the last probe failure ("" when the last probe succeeded).
	Error string `json:"error,omitempty"`
	// QueueDepth / Running are lifted from the replica's last healthz
	// payload so shard-level shedding decisions are visible.
	QueueDepth int `json:"queue_depth"`
	Running    int `json:"running"`
	// Datasets lists the shard snapshot the replica last reported.
	Datasets map[string]serve.DatasetHealth `json:"datasets,omitempty"`
}

// probe runs one readiness check against the replica and applies
// hysteresis: the replica becomes ready only after rise consecutive
// successes and unready only after fall consecutive failures, so one
// dropped packet neither ejects a healthy replica nor readmits a flapping
// one. A successful probe also refreshes the replica's healthz snapshot —
// queue depths feed the router's load shedding — tolerating a stale
// snapshot when only the healthz call fails.
func (rep *replica) probe(ctx context.Context, timeout time.Duration, rise, fall int) {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	err := rep.cli.Readyz(pctx)
	var health *serve.HealthResponse
	if err == nil {
		health, _ = rep.cli.Healthz(pctx)
	}
	cancel()

	rep.mu.Lock()
	defer rep.mu.Unlock()
	rep.lastProbe = time.Now()
	rep.lastErr = err
	if health != nil {
		rep.health = health
	}
	if err != nil {
		rep.okStreak = 0
		rep.failStreak++
		if rep.failStreak >= fall {
			rep.ready = false
		}
		return
	}
	rep.failStreak = 0
	rep.okStreak++
	if rep.okStreak >= rise {
		rep.ready = true
	}
}

// isReady reports the hysteresis verdict.
func (rep *replica) isReady() bool {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return rep.ready
}

// snapshot returns the replica's externally visible state.
func (rep *replica) snapshot() ReplicaStatus {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	st := ReplicaStatus{Name: rep.name, Base: rep.base, Ready: rep.ready}
	if rep.lastErr != nil {
		st.Error = rep.lastErr.Error()
	}
	if rep.health != nil {
		st.QueueDepth = rep.health.QueueDepth
		st.Running = rep.health.Running
		st.Datasets = rep.health.Datasets
	}
	return st
}

// shardDepth returns the replica's last-reported queue depth for one
// dataset, and false when no healthz snapshot mentions it.
func (rep *replica) shardDepth(dataset string) (int, bool) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.health == nil {
		return 0, false
	}
	d, ok := rep.health.Datasets[dataset]
	return d.QueueDepth, ok
}

// markFailed records an in-band request failure (a proxied call that
// could not reach the replica) as if a probe had failed, so ejection does
// not wait for the next probe tick when traffic already knows.
func (rep *replica) markFailed(err error, fall int) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	rep.lastErr = err
	rep.okStreak = 0
	rep.failStreak++
	if rep.failStreak >= fall {
		rep.ready = false
	}
}

// Start launches the background probe loop: every replica is probed once
// immediately and then on the configured interval until Stop (or ctx
// cancellation). Calling Start twice is a no-op.
func (rt *Router) Start(ctx context.Context) {
	rt.startOnce.Do(func() {
		ctx, rt.stop = context.WithCancel(ctx)
		for _, rep := range rt.replicas {
			rep := rep
			rt.wg.Add(1)
			go func() {
				defer rt.wg.Done()
				rep.probe(ctx, rt.cfg.ProbeTimeout, rt.cfg.Rise, rt.cfg.Fall)
				t := time.NewTicker(rt.cfg.ProbeInterval)
				defer t.Stop()
				for {
					select {
					case <-ctx.Done():
						return
					case <-t.C:
						rep.probe(ctx, rt.cfg.ProbeTimeout, rt.cfg.Rise, rt.cfg.Fall)
					}
				}
			}()
		}
	})
}

// Stop halts the probe loops and waits for them to exit.
func (rt *Router) Stop() {
	if rt.stop != nil {
		rt.stop()
	}
	rt.wg.Wait()
}

// ProbeAll probes every replica synchronously once — the deterministic
// alternative to Start's background cadence, used by tests and by
// cmd/lsrouter before announcing readiness.
func (rt *Router) ProbeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, rep := range rt.replicas {
		rep := rep
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep.probe(ctx, rt.cfg.ProbeTimeout, rt.cfg.Rise, rt.cfg.Fall)
		}()
	}
	wg.Wait()
}
