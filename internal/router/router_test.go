package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lucidscript"
	"lucidscript/internal/gen"
	"lucidscript/internal/serve"
)

// clusterOptions is the fast-search option set the router tests build
// their replica Systems with — identical to the serve test suite's, so
// routed results can be compared against direct in-process runs.
func clusterOptions() lucidscript.Options {
	return lucidscript.Options{Tau: 0.9, SeqLength: 4, BeamSize: 3, MaxRows: 80}
}

// clusterSystem builds one dataset's System from the seeded generative
// corpus; the same seed on every replica yields identical curation, which
// is what makes any shard placement produce identical results.
func clusterSystem(t testing.TB, seed int64) *lucidscript.System {
	t.Helper()
	g := gen.New(seed)
	sys, err := lucidscript.NewSystem(g.Scripts(8), g.Sources(120), clusterOptions())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// cluster is an in-process router deployment: n real serve.Servers on
// httptest listeners, each hosting every dataset, fronted by one Router.
type cluster struct {
	rt       *Router
	client   *Client
	servers  []*httptest.Server // replica listeners, index i = replica name ri
	names    []string
	routerHS *httptest.Server
}

// startCluster builds the deployment. datasets maps dataset name → corpus
// seed; every replica hosts all of them. cfg's Replicas/HTTPClient are
// filled in here; Rise/Fall default to 1 for deterministic single-probe
// tests unless the caller sets them.
func startCluster(t *testing.T, n int, datasets map[string]int64, cfg Config) *cluster {
	t.Helper()
	c := &cluster{}
	for i := 0; i < n; i++ {
		systems := map[string]*lucidscript.System{}
		for ds, seed := range datasets {
			systems[ds] = clusterSystem(t, seed)
		}
		srv, err := serve.NewServer(systems, serve.Config{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		name := fmt.Sprintf("r%d", i+1)
		c.servers = append(c.servers, hs)
		c.names = append(c.names, name)
		cfg.Replicas = append(cfg.Replicas, Replica{Name: name, BaseURL: hs.URL})
	}
	if cfg.Rise == 0 {
		cfg.Rise = 1
	}
	if cfg.Fall == 0 {
		cfg.Fall = 1
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.rt = rt
	c.routerHS = httptest.NewServer(rt.Handler())
	t.Cleanup(c.routerHS.Close)
	c.client = NewClient(c.routerHS.URL, nil)
	return c
}

// TestRouterStickyRoutingAndResult is the tentpole e2e: submissions route
// by dataset to one stable owner, job ids come back namespaced, polling
// and waiting work through the router, and the routed result — script and
// output hash — is byte-identical to a direct in-process run on an
// identically-curated System. Idempotent replay through the router
// returns the original namespaced job.
func TestRouterStickyRoutingAndResult(t *testing.T) {
	datasets := map[string]int64{"alpha": 42, "beta": 1042}
	c := startCluster(t, 2, datasets, Config{})
	c.rt.ProbeAll(context.Background())
	ctx := context.Background()

	for ds, seed := range datasets {
		owner, ok := c.rt.Owner(ds)
		if !ok {
			t.Fatalf("no owner for %s with both replicas ready", ds)
		}
		direct := clusterSystem(t, seed)
		for i, su := range gen.New(7).Scripts(2) {
			want, err := direct.Standardize(su)
			if err != nil {
				t.Fatalf("direct %s/%d: %v", ds, i, err)
			}
			wantHash, err := direct.OutputHash(want.Script)
			if err != nil {
				t.Fatalf("direct hash %s/%d: %v", ds, i, err)
			}

			key := fmt.Sprintf("sticky-%s-%d", ds, i)
			sub, err := c.client.Submit(ctx, ds, su.Source(), nil, key)
			if err != nil {
				t.Fatalf("Submit %s/%d: %v", ds, i, err)
			}
			prefix, _, ok := splitJobID(sub.ID)
			if !ok || prefix != owner {
				t.Fatalf("job %q not namespaced to owner %q", sub.ID, owner)
			}

			st, err := c.client.Wait(ctx, sub.ID, 5*time.Millisecond)
			if err != nil {
				t.Fatalf("Wait %s: %v", sub.ID, err)
			}
			if st.State != serve.StateDone || st.Result == nil {
				t.Fatalf("job %s finished %s (%s): %s", st.ID, st.State, st.Code, st.Error)
			}
			if st.Result.Script != want.Script.Source() {
				t.Errorf("routed script differs from direct run for %s/%d", ds, i)
			}
			if st.Result.OutputHash != wantHash {
				t.Errorf("routed output hash %q != direct %q", st.Result.OutputHash, wantHash)
			}

			replay, err := c.client.Submit(ctx, ds, su.Source(), nil, key)
			if err != nil {
				t.Fatalf("replay %s: %v", key, err)
			}
			if replay.ID != sub.ID {
				t.Errorf("idempotent replay returned %q, want original %q", replay.ID, sub.ID)
			}
		}
	}
}

// TestRouterJobRoutingEdges pins the prefix-routing contract: ids with an
// unknown replica prefix or no prefix at all are 404s, and DELETE routes
// by prefix like GET does.
func TestRouterJobRoutingEdges(t *testing.T) {
	c := startCluster(t, 2, map[string]int64{"alpha": 42}, Config{})
	c.rt.ProbeAll(context.Background())
	ctx := context.Background()

	for _, id := range []string{"zz.j-00000001", "j-00000001", "r1."} {
		_, err := c.client.Job(ctx, id)
		if !errors.Is(err, serve.ErrNotFound) {
			t.Errorf("Job(%q) = %v, want ErrNotFound", id, err)
		}
	}

	sub, err := c.client.Submit(ctx, "alpha", gen.New(9).ScriptSource(), nil, "edge-cancel")
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.client.Cancel(ctx, sub.ID)
	if err != nil {
		t.Fatalf("Cancel(%s): %v", sub.ID, err)
	}
	if st.ID != sub.ID {
		t.Errorf("cancel status id %q, want %q", st.ID, sub.ID)
	}
	final, err := c.client.Wait(ctx, sub.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !serve.TerminalState(final.State) {
		t.Errorf("canceled job landed in non-terminal state %q", final.State)
	}
}

// TestRouterListMergePagination: the fan-out listing merges every
// replica's jobs in namespaced-id order, pages with the single-node
// cursor contract, honors dataset/state filters, and rejects bad
// parameters like a single replica would.
func TestRouterListMergePagination(t *testing.T) {
	datasets := map[string]int64{"alpha": 42, "beta": 1042, "gamma": 2042}
	c := startCluster(t, 3, datasets, Config{})
	c.rt.ProbeAll(context.Background())
	ctx := context.Background()

	var ids []string
	perDataset := map[string]int{}
	for ds := range datasets {
		for i := 0; i < 3; i++ {
			sub, err := c.client.Submit(ctx, ds, gen.New(int64(100+i)).ScriptSource(), nil,
				fmt.Sprintf("list-%s-%d", ds, i))
			if err != nil {
				t.Fatalf("Submit %s/%d: %v", ds, i, err)
			}
			ids = append(ids, sub.ID)
			perDataset[ds]++
		}
	}
	for _, id := range ids {
		if _, err := c.client.Wait(ctx, id, 5*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}

	// Walk with a tiny page size: every job appears exactly once, sorted.
	var walked []string
	q := serve.ListJobsQuery{Limit: 2}
	for {
		page, err := c.client.ListJobs(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(page.Jobs) > 2 {
			t.Fatalf("page of %d jobs exceeds limit 2", len(page.Jobs))
		}
		for _, st := range page.Jobs {
			walked = append(walked, st.ID)
		}
		if page.NextCursor == "" {
			break
		}
		q.Cursor = page.NextCursor
	}
	if len(walked) != len(ids) {
		t.Fatalf("walked %d jobs, submitted %d", len(walked), len(ids))
	}
	seen := map[string]bool{}
	for i, id := range walked {
		if i > 0 && walked[i-1] >= id {
			t.Fatalf("merged listing out of order: %q before %q", walked[i-1], id)
		}
		seen[id] = true
	}
	for _, id := range ids {
		if !seen[id] {
			t.Errorf("job %s missing from merged listing", id)
		}
	}

	// Dataset filter crosses shards transparently.
	alpha, err := c.client.AllJobs(ctx, serve.ListJobsQuery{Dataset: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	if len(alpha) != perDataset["alpha"] {
		t.Errorf("dataset=alpha returned %d jobs, want %d", len(alpha), perDataset["alpha"])
	}
	for _, st := range alpha {
		if st.Dataset != "alpha" {
			t.Errorf("dataset filter leaked job %s from %q", st.ID, st.Dataset)
		}
	}

	// State filter and bad parameters behave like a single replica.
	done, err := c.client.AllJobs(ctx, serve.ListJobsQuery{State: serve.StateDone})
	if err != nil {
		t.Fatal(err)
	}
	if len(done) == 0 {
		t.Error("state=done returned nothing after all jobs finished")
	}
	if _, err := c.client.ListJobs(ctx, serve.ListJobsQuery{State: "bogus"}); !errors.Is(err, serve.ErrBadRequest) {
		t.Errorf("state=bogus: %v, want ErrBadRequest", err)
	}
	resp, err := http.Get(c.routerHS.URL + "/v1/jobs?limit=-3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("limit=-3: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestRouterFailover: killing a shard's owner yields a retryable 503 with
// a Retry-After hint while the failure is detected, after which the ring
// reassigns the shard to a survivor and submissions flow again — and the
// RouterClient's retry policy rides the whole window out on its own.
func TestRouterFailover(t *testing.T) {
	c := startCluster(t, 2, map[string]int64{"alpha": 42}, Config{})
	c.rt.ProbeAll(context.Background())
	ctx := context.Background()

	owner, ok := c.rt.Owner("alpha")
	if !ok {
		t.Fatal("no owner for alpha")
	}
	var survivor string
	for i, name := range c.names {
		if name == owner {
			c.servers[i].Close() // SIGKILL stand-in: connections refused from now on
		} else {
			survivor = name
		}
	}

	// A raw (no-retry) submit inside the detection window: retryable 503,
	// no_replica, Retry-After set. The in-band failure also ejects the
	// owner (Fall=1), so the ring has already failed the shard over.
	_, err := c.client.SubmitIdempotent(ctx, "alpha", gen.New(11).ScriptSource(), nil, "fo-window")
	if err == nil {
		t.Fatal("submit to a dead owner succeeded without failover")
	}
	if !serve.Retryable(err) {
		t.Fatalf("detection-window error not retryable: %v", err)
	}
	var ae *serve.APIError
	if !errors.As(err, &ae) || ae.Code != serve.CodeNoReplica || ae.RetryAfter <= 0 {
		t.Fatalf("detection-window error = %+v, want no_replica with Retry-After", ae)
	}

	if got, _ := c.rt.Owner("alpha"); got != survivor {
		t.Fatalf("after ejection alpha is owned by %q, want survivor %q", got, survivor)
	}

	// The RouterClient retries through the same shape by itself.
	sub, err := c.client.Submit(ctx, "alpha", gen.New(11).ScriptSource(), nil, "fo-retry")
	if err != nil {
		t.Fatalf("post-failover submit: %v", err)
	}
	if prefix, _, _ := splitJobID(sub.ID); prefix != survivor {
		t.Fatalf("post-failover job %q not on survivor %q", sub.ID, survivor)
	}
	if st, err := c.client.Wait(ctx, sub.ID, 5*time.Millisecond); err != nil || st.State != serve.StateDone {
		t.Fatalf("post-failover job: %v / %+v", err, st)
	}
}

// fakeReplica is a scripted lsserved stand-in for prober and shedding
// tests: readiness can be toggled and the reported shard queue depth set.
type fakeReplica struct {
	mu      sync.Mutex
	failing bool
	depth   int
}

func (f *fakeReplica) setFailing(v bool) { f.mu.Lock(); f.failing = v; f.mu.Unlock() }
func (f *fakeReplica) setDepth(d int)    { f.mu.Lock(); f.depth = d; f.mu.Unlock() }

func (f *fakeReplica) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		failing := f.failing
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if failing {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(serve.ErrorResponse{Code: serve.CodeShuttingDown, Retryable: true})
			return
		}
		json.NewEncoder(w).Encode(serve.ReadyResponse{Status: "ready"})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		depth := f.depth
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(serve.HealthResponse{
			Status:     "ok",
			QueueDepth: depth,
			Datasets:   map[string]serve.DatasetHealth{"alpha": {QueueDepth: depth}},
		})
	})
	return mux
}

// TestProberHysteresis: a replica is admitted only after Rise consecutive
// probe successes and ejected only after Fall consecutive failures — one
// blip in either direction changes nothing.
func TestProberHysteresis(t *testing.T) {
	fake := &fakeReplica{}
	hs := httptest.NewServer(fake.handler())
	defer hs.Close()
	rt, err := New(Config{
		Replicas: []Replica{{Name: "r1", BaseURL: hs.URL}},
		Rise:     2, Fall: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	step := func(failing bool, wantReady bool, note string) {
		t.Helper()
		fake.setFailing(failing)
		rt.ProbeAll(ctx)
		if got := rt.replicas["r1"].isReady(); got != wantReady {
			t.Fatalf("%s: ready=%v, want %v", note, got, wantReady)
		}
	}
	step(false, false, "one success (rise=2) must not admit")
	step(false, true, "second success admits")
	step(true, true, "one failure (fall=2) must not eject")
	step(true, false, "second failure ejects")
	step(false, false, "one success after ejection must not readmit")
	step(false, true, "second success readmits")
}

// TestRouterShed: once the shard owner's last-reported queue depth
// reaches ShedDepth, the router sheds the submission with a retryable
// 429 router_shed before the replica ever sees it.
func TestRouterShed(t *testing.T) {
	fake := &fakeReplica{}
	hs := httptest.NewServer(fake.handler())
	defer hs.Close()
	rt, err := New(Config{
		Replicas: []Replica{{Name: "r1", BaseURL: hs.URL}},
		Rise:     1, Fall: 1,
		ShedDepth: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	fake.setDepth(5)
	rt.ProbeAll(context.Background())

	routerHS := httptest.NewServer(rt.Handler())
	defer routerHS.Close()
	cli := serve.NewClient(routerHS.URL, nil)

	_, err = cli.SubmitIdempotent(context.Background(), "alpha", "x = read_csv(\"gen.csv\")", nil, "shed-1")
	if !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("saturated shard submit = %v, want ErrOverloaded", err)
	}
	var ae *serve.APIError
	if !errors.As(err, &ae) || ae.Code != serve.CodeRouterShed || !ae.Retryable || ae.RetryAfter <= 0 {
		t.Fatalf("shed error = %+v, want retryable router_shed with Retry-After", ae)
	}

	// Under the threshold the submission passes through to the replica
	// (which, being fake, 404s the unknown route — proving the router
	// stopped shedding, not that the replica accepted).
	fake.setDepth(4)
	rt.ProbeAll(context.Background())
	_, err = cli.SubmitIdempotent(context.Background(), "alpha", "x = read_csv(\"gen.csv\")", nil, "shed-2")
	if errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("under-threshold submit still shed: %v", err)
	}
}

// TestRouterHealthzReadyz: /readyz flips 503→200 with ring membership,
// /healthz is always 200 and reports per-replica probe state plus the
// shard→owner map.
func TestRouterHealthzReadyz(t *testing.T) {
	c := startCluster(t, 2, map[string]int64{"alpha": 42}, Config{})
	ctx := context.Background()

	// Before any probe: nothing is ready.
	err := c.client.Readyz(ctx)
	if !errors.Is(err, serve.ErrDraining) {
		t.Fatalf("pre-probe Readyz = %v, want 503", err)
	}
	var ae *serve.APIError
	if !errors.As(err, &ae) || ae.Code != serve.CodeNoReplica || !ae.Retryable {
		t.Fatalf("pre-probe readyz error = %+v, want retryable no_replica", ae)
	}
	h := routerHealth(t, c.routerHS.URL)
	if h.Status != "unavailable" || h.ReadyReplicas != 0 {
		t.Fatalf("pre-probe health = %+v, want unavailable/0", h)
	}

	c.rt.ProbeAll(ctx)
	if err := c.client.Readyz(ctx); err != nil {
		t.Fatalf("post-probe Readyz: %v", err)
	}
	h = routerHealth(t, c.routerHS.URL)
	if h.Status != "ok" || h.ReadyReplicas != 2 || len(h.Replicas) != 2 {
		t.Fatalf("post-probe health = %+v, want ok/2", h)
	}
	owner, ok := h.Shards["alpha"]
	if !ok {
		t.Fatal("health shard map missing dataset alpha")
	}
	if want, _ := c.rt.Owner("alpha"); owner != want {
		t.Errorf("health shard owner %q != ring owner %q", owner, want)
	}
}

// routerHealth fetches and decodes the router's /healthz (always 200).
func routerHealth(t *testing.T, base string) Health {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: HTTP %d, want 200 always", resp.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestRouterSubmitBadRequests: undecodable bodies are 400s the router
// originates itself; unknown datasets pass through as the replica's 404.
func TestRouterSubmitBadRequests(t *testing.T) {
	c := startCluster(t, 1, map[string]int64{"alpha": 42}, Config{})
	c.rt.ProbeAll(context.Background())

	resp, err := http.Post(c.routerHS.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: HTTP %d, want 400", resp.StatusCode)
	}

	_, err = c.client.SubmitIdempotent(context.Background(), "nosuch", "x = 1", nil, "bad-ds")
	if !errors.Is(err, serve.ErrNotFound) {
		t.Errorf("unknown dataset = %v, want replica's ErrNotFound passed through", err)
	}
}

// TestNewRejectsBadConfig pins constructor validation: empty sets, bad
// names (the namespacing separator especially), missing URLs, duplicates.
func TestNewRejectsBadConfig(t *testing.T) {
	cases := []Config{
		{},
		{Replicas: []Replica{{Name: "has.dot", BaseURL: "http://x"}}},
		{Replicas: []Replica{{Name: "", BaseURL: "http://x"}}},
		{Replicas: []Replica{{Name: "r1", BaseURL: ""}}},
		{Replicas: []Replica{{Name: "r1", BaseURL: "http://x"}, {Name: "r1", BaseURL: "http://y"}}},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted bad config %+v", i, cfg)
		}
	}
}
