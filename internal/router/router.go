package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"lucidscript/internal/serve"
)

// Replica names one fronted lsserved process.
type Replica struct {
	// Name is the replica's stable identity — it prefixes every job id
	// the router hands out ("r1.j-00000042") and is the unit the ring
	// hashes over, so it must stay the same across restarts of the same
	// data dir. Letters, digits, '-' and '_' only.
	Name string
	// BaseURL is the replica's root, e.g. "http://127.0.0.1:8081".
	BaseURL string
}

// Config tunes a Router. The zero value of every field resolves to the
// default documented on it; Replicas is the only required field.
type Config struct {
	// Replicas is the fixed replica set the router fronts. Readiness is
	// dynamic (probed), membership is not.
	Replicas []Replica
	// ProbeInterval is the background readiness-probe cadence; ≤ 0
	// resolves to 500ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip; ≤ 0 resolves to 2s.
	ProbeTimeout time.Duration
	// Rise is how many consecutive successful probes flip a replica
	// ready; ≤ 0 resolves to 2. Fall is the symmetric ejection count;
	// ≤ 0 resolves to 2.
	Rise, Fall int
	// ShedDepth sheds submissions for a shard once its owner's
	// last-reported queue depth for that dataset reaches this value —
	// a router-level 429 before the replica itself would saturate.
	// ≤ 0 disables the extra tier (the replica's own 429 still applies).
	ShedDepth int
	// RetryAfter is the back-off hint attached to every 429/503 the
	// router originates; ≤ 0 resolves to 1s.
	RetryAfter time.Duration
	// HTTPClient carries proxied requests and probes; nil resolves to a
	// client with a 60s timeout.
	HTTPClient *http.Client
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.Rise <= 0 {
		c.Rise = 2
	}
	if c.Fall <= 0 {
		c.Fall = 2
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 60 * time.Second}
	}
	return c
}

var replicaName = regexp.MustCompile(`^[A-Za-z0-9_-]+$`)

// Router fronts the replica set: one HTTP surface speaking the same v1
// API as a single lsserved, with every dataset consistent-hashed onto
// one ready replica. Build with New, call Start for background probes,
// mount Handler, and Stop on the way out.
type Router struct {
	cfg      Config
	replicas map[string]*replica
	names    []string // sorted

	startOnce sync.Once
	stop      context.CancelFunc
	wg        sync.WaitGroup
}

// New builds a router over the configured replicas. Every replica starts
// unready — call Start (or ProbeAll) before serving traffic.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("router: no replicas configured")
	}
	rt := &Router{cfg: cfg, replicas: make(map[string]*replica, len(cfg.Replicas))}
	for _, r := range cfg.Replicas {
		if !replicaName.MatchString(r.Name) {
			return nil, fmt.Errorf("router: bad replica name %q (want letters, digits, '-', '_')", r.Name)
		}
		if r.BaseURL == "" {
			return nil, fmt.Errorf("router: replica %q has no base URL", r.Name)
		}
		if _, dup := rt.replicas[r.Name]; dup {
			return nil, fmt.Errorf("router: duplicate replica name %q", r.Name)
		}
		base := strings.TrimRight(r.BaseURL, "/")
		rt.replicas[r.Name] = &replica{
			name: r.Name,
			base: base,
			cli:  serve.NewClient(base, cfg.HTTPClient),
		}
		rt.names = append(rt.names, r.Name)
	}
	sort.Strings(rt.names)
	return rt, nil
}

// ring snapshots the ready replicas into a Ring. It is rebuilt per
// request — membership is tiny and the probe state is the only shared
// mutable input.
func (rt *Router) ring() Ring {
	ready := make([]string, 0, len(rt.names))
	for _, name := range rt.names {
		if rt.replicas[name].isReady() {
			ready = append(ready, name)
		}
	}
	return NewRing(ready)
}

// Owner reports which replica currently owns a dataset's shard, and
// false when no replica is ready.
func (rt *Router) Owner(dataset string) (string, bool) {
	return rt.ring().Owner(dataset)
}

// Handler returns the router's routes — the same v1 surface a single
// replica serves, plus the router's own /healthz and /readyz.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", rt.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", rt.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", rt.handleJob(http.MethodGet))
	mux.HandleFunc("DELETE /v1/jobs/{id}", rt.handleJob(http.MethodDelete))
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	return mux
}

// handleSubmit routes POST /v1/jobs: the dataset names the shard, the
// ring names the owner, and the request is proxied there byte-for-byte
// (idempotency key included) so the replica's admission control,
// idempotency table, and WAL see exactly what a direct client would
// send. The two router-originated failures are load shedding (429, the
// shard's reported queue depth crossed Config.ShedDepth) and ownerless
// shards (503 + Retry-After while a failover is in progress).
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, serve.CodeBadRequest, fmt.Sprintf("reading request body: %v", err))
		return
	}
	var req serve.SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		rt.writeError(w, http.StatusBadRequest, serve.CodeBadRequest, fmt.Sprintf("decoding request body: %v", err))
		return
	}
	owner, ok := rt.ring().Owner(req.Dataset)
	if !ok {
		rt.writeUnavailable(w, fmt.Sprintf("no ready replica owns dataset %q", req.Dataset))
		return
	}
	rep := rt.replicas[owner]
	if rt.cfg.ShedDepth > 0 {
		if depth, known := rep.shardDepth(req.Dataset); known && depth >= rt.cfg.ShedDepth {
			rt.writeShed(w, req.Dataset, owner, depth)
			return
		}
	}
	preq, err := http.NewRequestWithContext(r.Context(), http.MethodPost, rep.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, serve.CodeInternal, err.Error())
		return
	}
	preq.Header.Set("Content-Type", "application/json")
	if key := r.Header.Get("Idempotency-Key"); key != "" {
		preq.Header.Set("Idempotency-Key", key)
	}
	rt.proxyJobResponse(w, rep, preq)
}

// handleJob routes GET/DELETE /v1/jobs/{id}: the replica prefix minted
// at submission names the shard owner directly — no ring lookup, so
// status polls and cancels reach the right replica even while the ring
// is failing the dataset over to another owner.
func (rt *Router) handleJob(method string) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		name, rest, ok := splitJobID(id)
		rep := rt.replicas[name]
		if !ok || rep == nil {
			rt.writeError(w, http.StatusNotFound, serve.CodeNotFound, fmt.Sprintf("no job %q (want <replica>.<job-id>)", id))
			return
		}
		preq, err := http.NewRequestWithContext(r.Context(), method, rep.base+"/v1/jobs/"+rest, nil)
		if err != nil {
			rt.writeError(w, http.StatusInternalServerError, serve.CodeInternal, err.Error())
			return
		}
		rt.proxyJobResponse(w, rep, preq)
	}
}

// proxyJobResponse performs one proxied round trip whose success body is
// a JobStatus, rewriting the job id into the router's namespaced form. A
// replica that cannot be reached at all yields a retryable 503 — the
// Retry-After window is the client's cue to come back once the prober
// has ejected the replica and failed its shards over — and counts
// against the replica's readiness streak immediately.
func (rt *Router) proxyJobResponse(w http.ResponseWriter, rep *replica, preq *http.Request) {
	resp, err := rt.cfg.HTTPClient.Do(preq)
	if err != nil {
		rep.markFailed(err, rt.cfg.Fall)
		rt.writeUnavailable(w, fmt.Sprintf("replica %q unreachable: %v", rep.name, err))
		return
	}
	defer resp.Body.Close()
	copyHeader(w, resp, "Retry-After")
	copyHeader(w, resp, "Idempotency-Replayed")
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		copyHeader(w, resp, "Content-Type")
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		return
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		rt.writeError(w, http.StatusBadGateway, serve.CodeInternal,
			fmt.Sprintf("replica %q sent an undecodable job status: %v", rep.name, err))
		return
	}
	st.ID = joinJobID(rep.name, st.ID)
	rt.writeJSON(w, resp.StatusCode, st)
}

// listLimits mirror the replica-side page bounds.
const (
	defaultListLimit = 100
	maxListLimit     = 1000
)

// handleList is the fan-out-and-merge GET /v1/jobs: every replica's full
// (state/dataset-filtered) listing is collected, ids are namespaced, and
// one merged page in id order is returned with the same cursor contract
// a single replica offers. Replicas that cannot be reached are skipped —
// a listing taken during a replica outage covers the survivors (their
// jobs reappear once the replica recovers; the router's /healthz says
// which replicas are out).
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	state := q.Get("state")
	if state != "" && !validState(state) {
		rt.writeError(w, http.StatusBadRequest, serve.CodeBadRequest,
			fmt.Sprintf("unknown state %q (want one of %v)", state, serve.States))
		return
	}
	dataset := q.Get("dataset")
	limit := defaultListLimit
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n <= 0 {
			rt.writeError(w, http.StatusBadRequest, serve.CodeBadRequest,
				fmt.Sprintf("invalid limit %q: want a positive integer", ls))
			return
		}
		if n > maxListLimit {
			n = maxListLimit
		}
		limit = n
	}
	cursor := q.Get("cursor")

	type shard struct {
		name string
		jobs []serve.JobStatus
		err  error
	}
	results := make([]shard, len(rt.names))
	var wg sync.WaitGroup
	for i, name := range rt.names {
		i, rep := i, rt.replicas[rt.names[i]]
		_ = name
		wg.Add(1)
		go func() {
			defer wg.Done()
			jobs, err := rep.cli.AllJobs(r.Context(), serve.ListJobsQuery{
				State: state, Dataset: dataset, Limit: maxListLimit,
			})
			results[i] = shard{name: rep.name, jobs: jobs, err: err}
		}()
	}
	wg.Wait()

	var merged []serve.JobStatus
	for _, sh := range results {
		if sh.err != nil {
			continue
		}
		for _, st := range sh.jobs {
			st.ID = joinJobID(sh.name, st.ID)
			merged = append(merged, st)
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].ID < merged[j].ID })

	resp := serve.ListResponse{Jobs: []serve.JobStatus{}}
	for _, st := range merged {
		if cursor != "" && st.ID <= cursor {
			continue
		}
		if len(resp.Jobs) == limit {
			resp.NextCursor = resp.Jobs[limit-1].ID
			break
		}
		resp.Jobs = append(resp.Jobs, st)
	}
	rt.writeJSON(w, http.StatusOK, resp)
}

// Health is the router's GET /healthz payload: always 200, machine-
// readable cluster state.
type Health struct {
	// Status is "ok" when every replica is ready, "degraded" when some
	// are not, and "unavailable" when none are.
	Status string `json:"status"`
	// ReadyReplicas / Replicas describe the probe state per replica.
	ReadyReplicas int             `json:"ready_replicas"`
	Replicas      []ReplicaStatus `json:"replicas"`
	// Shards maps every dataset any replica reports hosting to the
	// replica that currently owns its shard ("" while no owner is ready).
	Shards map[string]string `json:"shards,omitempty"`
}

// handleHealthz reports cluster liveness — always 200; readiness is
// /readyz's job.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{Shards: map[string]string{}}
	ring := rt.ring()
	for _, name := range rt.names {
		st := rt.replicas[name].snapshot()
		if st.Ready {
			h.ReadyReplicas++
		}
		for ds := range st.Datasets {
			if _, seen := h.Shards[ds]; !seen {
				owner, _ := ring.Owner(ds)
				h.Shards[ds] = owner
			}
		}
		h.Replicas = append(h.Replicas, st)
	}
	switch {
	case h.ReadyReplicas == len(rt.names):
		h.Status = "ok"
	case h.ReadyReplicas > 0:
		h.Status = "degraded"
	default:
		h.Status = "unavailable"
	}
	rt.writeJSON(w, http.StatusOK, h)
}

// handleReadyz reports whether the router can route anything at all: 200
// once at least one replica is ready, 503 + Retry-After otherwise.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if rt.ring().Len() == 0 {
		rt.writeUnavailable(w, "no replica is ready")
		return
	}
	rt.writeJSON(w, http.StatusOK, serve.ReadyResponse{Status: "ready"})
}

// joinJobID namespaces a replica-local job id with its replica's name;
// splitJobID inverts it. The separator cannot appear in replica names
// (enforced by New), so the split is unambiguous.
func joinJobID(replica, id string) string { return replica + "." + id }

func splitJobID(id string) (replica, rest string, ok bool) {
	replica, rest, ok = strings.Cut(id, ".")
	if !ok || replica == "" || rest == "" {
		return "", "", false
	}
	return replica, rest, true
}

func validState(st string) bool {
	for _, s := range serve.States {
		if s == st {
			return true
		}
	}
	return false
}

// copyHeader forwards one header from a proxied response when present.
func copyHeader(w http.ResponseWriter, resp *http.Response, name string) {
	if v := resp.Header.Get(name); v != "" {
		w.Header().Set(name, v)
	}
}

// writeUnavailable is the router-originated retryable 503: no ready
// owner for the shard (failover in progress) or an unreachable replica.
func (rt *Router) writeUnavailable(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", retryAfterSeconds(rt.cfg.RetryAfter))
	rt.writeJSON(w, http.StatusServiceUnavailable, serve.ErrorResponse{
		Code:         serve.CodeNoReplica,
		Message:      msg,
		Retryable:    true,
		RetryAfterMS: rt.cfg.RetryAfter.Milliseconds(),
	})
}

// writeShed is the router-level 429: the shard's owner reported a queue
// depth at or over Config.ShedDepth, so the router sheds before the
// replica saturates.
func (rt *Router) writeShed(w http.ResponseWriter, dataset, owner string, depth int) {
	w.Header().Set("Retry-After", retryAfterSeconds(rt.cfg.RetryAfter))
	rt.writeJSON(w, http.StatusTooManyRequests, serve.ErrorResponse{
		Code:         serve.CodeRouterShed,
		Message:      fmt.Sprintf("shard %q on replica %q is saturated (queue depth %d)", dataset, owner, depth),
		Retryable:    true,
		RetryAfterMS: rt.cfg.RetryAfter.Milliseconds(),
	})
}

// writeError writes one router-originated error in the uniform shape.
func (rt *Router) writeError(w http.ResponseWriter, status int, code, msg string) {
	rt.writeJSON(w, status, serve.ErrorResponse{Code: code, Message: msg, Retryable: serve.RetryableCode(code)})
}

func (rt *Router) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// retryAfterSeconds renders a Retry-After header value, rounding up so
// sub-second hints do not become "0".
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
