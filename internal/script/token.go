// Package script implements LSL, the straight-line pandas-style script
// language that LucidScript standardizes. It provides a lexer, a
// recursive-descent parser producing an AST, and a canonical source
// printer. The surface syntax mirrors the Python/pandas scripts in the
// paper's figures, e.g.
//
//	import pandas as pd
//	df = pd.read_csv("diabetes.csv")
//	df = df.fillna(df.median())
//	df = df[df["Age"].between(18, 25)]
//	df = pd.get_dummies(df)
package script

import "fmt"

// TokenKind identifies a lexical token class.
type TokenKind int

// Token kinds produced by the lexer.
const (
	TokEOF TokenKind = iota
	TokNewline
	TokIdent
	TokNumber
	TokString
	TokOp      // operators and punctuation: = == != < <= > >= + - * / & | ~ ( ) [ ] { } , : .
	TokKeyword // import, as, True, False, None
)

// String names the token kind.
func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokNewline:
		return "NEWLINE"
	case TokIdent:
		return "IDENT"
	case TokNumber:
		return "NUMBER"
	case TokString:
		return "STRING"
	case TokOp:
		return "OP"
	case TokKeyword:
		return "KEYWORD"
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Token is a lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Line int // 1-based source line
	Col  int // 1-based source column
}

// String renders the token for error messages.
func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	if t.Kind == TokNewline {
		return "end of line"
	}
	return fmt.Sprintf("%q", t.Text)
}

var keywords = map[string]bool{
	"import": true,
	"as":     true,
	"True":   true,
	"False":  true,
	"None":   true,
}
