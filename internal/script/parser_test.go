package script

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParsePaperScript(t *testing.T) {
	src := `import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.mean())
df = df[df["Age"].between(18, 25)]
df = df[df["SkinThickness"] < 80]
df = pd.get_dummies(df)
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Stmts) != 6 {
		t.Fatalf("statements = %d, want 6", len(s.Stmts))
	}
	if _, ok := s.Stmts[0].(*ImportStmt); !ok {
		t.Fatalf("stmt 0 is %T, want ImportStmt", s.Stmts[0])
	}
	as, ok := s.Stmts[1].(*AssignStmt)
	if !ok {
		t.Fatalf("stmt 1 is %T", s.Stmts[1])
	}
	call, ok := as.Value.(*CallExpr)
	if !ok {
		t.Fatalf("rhs is %T", as.Value)
	}
	if call.Fn.Source() != "pd.read_csv" {
		t.Fatalf("fn = %q", call.Fn.Source())
	}
}

func TestRoundTripCanonical(t *testing.T) {
	cases := []string{
		"import pandas as pd",
		"import numpy as np",
		"import sklearn.preprocessing",
		`df = pd.read_csv("train.csv")`,
		"df = df.fillna(df.median())",
		`df = df[df["Age"].between(18, 25)]`,
		`df = df[df["SkinThickness"] < 80]`,
		"df = pd.get_dummies(df)",
		`y = df["Survived"]`,
		`X = df.drop("Survived", axis=1)`,
		`df["Age"] = df["Age"].fillna(df["Age"].mean())`,
		`df["Embarked"] = df["Embarked"].fillna("S")`,
		`df = df.drop(["Cabin", "Ticket"], axis=1)`,
		`df["FamilySize"] = df["SibSp"] + df["Parch"] + 1`,
		`df["Fare"] = df["Fare"] / df["FamilySize"]`,
		`df = df[(df["Fare"] > 0) & (df["Age"] < 80)]`,
		`df = df[(df["Pclass"] == 1) | (df["Pclass"] == 2)]`,
		`df = df[~(df["Fare"] > 500)]`,
		`df["Sex"] = df["Sex"].map({"male": 0, "female": 1})`,
		`df["Name"] = df["Name"].str.lower()`,
		`update = df.sample(20).index`,
		`df.loc[update, "Outcome_dup"] = 0`,
		"df = df.dropna()",
		`df["Fare"] = np.log1p(df["Fare"])`,
		"x = -5",
		"x = 2.5",
		"x = True",
		"x = None",
		`df = df.sort_values("Fare", ascending=False)`,
		`df["Outcome"]`,
	}
	for _, src := range cases {
		s, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		got := strings.TrimSuffix(s.Source(), "\n")
		if got != src {
			t.Errorf("round trip:\n  in:  %q\n  out: %q", src, got)
		}
	}
}

func TestNormalization(t *testing.T) {
	// Single quotes, extra spaces and comments normalize away.
	s, err := Parse("df  =  pd.read_csv( 'x.csv' )  # load\n\n\ndf=df.dropna()\n")
	if err != nil {
		t.Fatal(err)
	}
	want := "df = pd.read_csv(\"x.csv\")\ndf = df.dropna()\n"
	if s.Source() != want {
		t.Fatalf("normalized = %q, want %q", s.Source(), want)
	}
}

func TestPrecedence(t *testing.T) {
	s := MustParse("x = a + b * c")
	as := s.Stmts[0].(*AssignStmt)
	add, ok := as.Value.(*BinaryExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("top op = %v", as.Value.Source())
	}
	if mul, ok := add.Y.(*BinaryExpr); !ok || mul.Op != "*" {
		t.Fatalf("rhs = %v", add.Y.Source())
	}
	// & binds tighter than |, comparisons tighter than &.
	s2 := MustParse("m = a < 1 & b > 2 | c == 3")
	or := s2.Stmts[0].(*AssignStmt).Value.(*BinaryExpr)
	if or.Op != "|" {
		t.Fatalf("top = %q", or.Op)
	}
	and := or.X.(*BinaryExpr)
	if and.Op != "&" {
		t.Fatalf("left = %q", and.Op)
	}
}

func TestPrinterPreservesPrecedence(t *testing.T) {
	cases := []string{
		`x = (a - b) / (c - d)`,
		`x = a - b / c - d`,
		`x = (a + b) * c`,
		`x = a - (b - c)`,
		`x = a / (b * c)`,
		`x = 2 * (a + 1)`,
	}
	for _, src := range cases {
		s1 := MustParse(src)
		s2 := MustParse(s1.Source())
		if s1.Source() != s2.Source() {
			t.Errorf("print/parse not a fixpoint for %q: %q then %q", src, s1.Source(), s2.Source())
		}
	}
	// The two precedence-distinct forms must not print identically.
	a := MustParse(`x = (a - b) / (c - d)`).Source()
	b := MustParse(`x = a - b / c - d`).Source()
	if a == b {
		t.Fatalf("parenthesized and flat forms collapsed to %q", a)
	}
}

func TestNegativeNumberFolding(t *testing.T) {
	s := MustParse("x = -3")
	n, ok := s.Stmts[0].(*AssignStmt).Value.(*NumberLit)
	if !ok || n.Value != -3 || !n.IsInt {
		t.Fatalf("folded literal = %#v", s.Stmts[0].(*AssignStmt).Value)
	}
}

func TestSliceIndex(t *testing.T) {
	s := MustParse(`df.loc[update, "col"] = 0`)
	as := s.Stmts[0].(*AssignStmt)
	idx, ok := as.Target.(*IndexExpr)
	if !ok {
		t.Fatalf("target = %T", as.Target)
	}
	sl, ok := idx.Index.(*SliceExpr)
	if !ok || len(sl.Parts) != 2 {
		t.Fatalf("index = %T", idx.Index)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"df = ",
		"df = df[",
		"= 5",
		"df = 'unterminated",
		"import",
		"import 5",
		"df = df..x",
		"1 + 2 = 3",
		"df = ?",
		"x = {1: }",
		"x = (1",
		"df = df.fillna(df.mean()",
		"x = y z",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseStmtSingle(t *testing.T) {
	st, err := ParseStmt("df = df.dropna()")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*AssignStmt); !ok {
		t.Fatalf("stmt = %T", st)
	}
	if _, err := ParseStmt("a = 1\nb = 2"); err == nil {
		t.Fatal("two statements should error")
	}
	if _, err := ParseStmt("a = ("); err == nil {
		t.Fatal("syntax error should propagate")
	}
}

func TestKeywordArgs(t *testing.T) {
	s := MustParse(`df = df.drop("Survived", axis=1, inplace=False)`)
	call := s.Stmts[0].(*AssignStmt).Value.(*CallExpr)
	if len(call.Args) != 1 || len(call.Kwargs) != 2 {
		t.Fatalf("args=%d kwargs=%d", len(call.Args), len(call.Kwargs))
	}
	if call.Kwargs[0].Name != "axis" {
		t.Fatalf("kwarg = %q", call.Kwargs[0].Name)
	}
	if b, ok := call.Kwargs[1].Value.(*BoolLit); !ok || b.Value {
		t.Fatal("inplace=False")
	}
}

func TestStringEscapes(t *testing.T) {
	s := MustParse(`x = "a\"b\n"`)
	lit := s.Stmts[0].(*AssignStmt).Value.(*StringLit)
	if lit.Value != "a\"b\n" {
		t.Fatalf("escaped = %q", lit.Value)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	s := MustParse("# header comment\n\na = 1\n# trailing\n\nb = 2\n")
	if len(s.Stmts) != 2 {
		t.Fatalf("stmts = %d", len(s.Stmts))
	}
}

func TestWalkVisitsAll(t *testing.T) {
	s := MustParse(`df = df[df["Age"].between(18, 25)]`)
	var names []string
	WalkStmt(s.Stmts[0], func(e Expr) {
		if id, ok := e.(*Ident); ok {
			names = append(names, id.Name)
		}
	})
	// target df + value df + inner df = 3 idents
	if len(names) != 3 {
		t.Fatalf("idents = %v", names)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := MustParse("a = 1\nb = 2")
	c := s.Clone()
	c.Stmts = c.Stmts[:1]
	if len(s.Stmts) != 2 {
		t.Fatal("Clone shares the statement slice")
	}
}

func TestScriptNumStmts(t *testing.T) {
	if MustParse("a = 1").NumStmts() != 1 {
		t.Fatal("NumStmts")
	}
}

// Property: parse(print(parse(src))) == parse(src) for generated statements.
func TestParsePrintFixpointProperty(t *testing.T) {
	stmts := []string{
		`df = df.fillna(df.mean())`,
		`df = df[df["A"] < 10]`,
		`df["B"] = df["B"] * 2`,
		`df = pd.get_dummies(df)`,
		`y = df["target"]`,
	}
	f := func(pick []uint8) bool {
		var lines []string
		for _, p := range pick {
			lines = append(lines, stmts[int(p)%len(stmts)])
		}
		src := strings.Join(lines, "\n")
		s1, err := Parse(src)
		if err != nil {
			return false
		}
		s2, err := Parse(s1.Source())
		if err != nil {
			return false
		}
		return s1.Source() == s2.Source()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
