package script

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser builds a Script AST from a token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse tokenizes and parses LSL source into a Script.
func Parse(src string) (*Script, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseScript()
}

// MustParse parses src and panics on error. For tests and fixtures.
func MustParse(src string) *Script {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

// ParseStmt parses a single statement from src (which must contain one line).
func ParseStmt(src string) (Stmt, error) {
	s, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(s.Stmts) != 1 {
		return nil, fmt.Errorf("script: expected exactly one statement, got %d", len(s.Stmts))
	}
	return s.Stmts[0], nil
}

func (p *Parser) peek() Token { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *Parser) atEOF() bool { return p.peek().Kind == TokEOF }

func (p *Parser) errf(t Token, format string, args ...interface{}) error {
	return fmt.Errorf("script: line %d: %s", t.Line, fmt.Sprintf(format, args...))
}

func (p *Parser) expectOp(op string) error {
	t := p.peek()
	if t.Kind != TokOp || t.Text != op {
		return p.errf(t, "expected %q, found %s", op, t)
	}
	p.next()
	return nil
}

func (p *Parser) isOp(op string) bool {
	t := p.peek()
	return t.Kind == TokOp && t.Text == op
}

func (p *Parser) parseScript() (*Script, error) {
	s := &Script{}
	for !p.atEOF() {
		if p.peek().Kind == TokNewline {
			p.next()
			continue
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Stmts = append(s.Stmts, st)
		t := p.peek()
		switch t.Kind {
		case TokNewline:
			p.next()
		case TokEOF:
		default:
			return nil, p.errf(t, "unexpected %s after statement", t)
		}
	}
	return s, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.peek()
	if t.Kind == TokKeyword && t.Text == "import" {
		return p.parseImport()
	}
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.isOp("=") {
		p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		switch lhs.(type) {
		case *Ident, *IndexExpr, *AttrExpr:
		default:
			return nil, p.errf(t, "cannot assign to %s", lhs.Source())
		}
		return &AssignStmt{Target: lhs, Value: rhs}, nil
	}
	return &ExprStmt{X: lhs}, nil
}

func (p *Parser) parseImport() (Stmt, error) {
	p.next() // import
	t := p.peek()
	if t.Kind != TokIdent {
		return nil, p.errf(t, "expected module name, found %s", t)
	}
	mod := p.next().Text
	// Dotted modules like sklearn.preprocessing.
	for p.isOp(".") {
		p.next()
		t = p.peek()
		if t.Kind != TokIdent {
			return nil, p.errf(t, "expected module path segment, found %s", t)
		}
		mod += "." + p.next().Text
	}
	alias := ""
	if p.peek().Kind == TokKeyword && p.peek().Text == "as" {
		p.next()
		t = p.peek()
		if t.Kind != TokIdent {
			return nil, p.errf(t, "expected import alias, found %s", t)
		}
		alias = p.next().Text
	}
	return &ImportStmt{Module: mod, Alias: alias}, nil
}

// Precedence climbing:
//
//	or:   |
//	and:  &
//	cmp:  == != < <= > >=
//	add:  + -
//	mul:  * / %
//	unary: - ~
//	postfix: call, attribute, subscript
func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isOp("|") {
		p.next()
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: "|", X: x, Y: y}
	}
	return x, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	x, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.isOp("&") {
		p.next()
		y, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: "&", X: x, Y: y}
	}
	return x, nil
}

var cmpOps = map[string]bool{"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *Parser) parseCmp() (Expr, error) {
	x, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TokOp && cmpOps[t.Text] {
		op := p.next().Text
		y, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op, X: x, Y: y}, nil
	}
	return x, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	x, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.isOp("+") || p.isOp("-") {
		op := p.next().Text
		y, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: op, X: x, Y: y}
	}
	return x, nil
}

func (p *Parser) parseMul() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isOp("*") || p.isOp("/") || p.isOp("%") {
		op := p.next().Text
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: op, X: x, Y: y}
	}
	return x, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.isOp("-") || p.isOp("~") {
		op := p.next().Text
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative number literals.
		if op == "-" {
			if n, ok := x.(*NumberLit); ok {
				return &NumberLit{Value: -n.Value, IsInt: n.IsInt}, nil
			}
		}
		return &UnaryExpr{Op: op, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isOp("."):
			p.next()
			t := p.peek()
			if t.Kind != TokIdent {
				return nil, p.errf(t, "expected attribute name, found %s", t)
			}
			x = &AttrExpr{X: x, Attr: p.next().Text}
		case p.isOp("("):
			p.next()
			call := &CallExpr{Fn: x}
			for !p.isOp(")") {
				// Keyword argument?
				if p.peek().Kind == TokIdent && p.pos+1 < len(p.toks) &&
					p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "=" {
					name := p.next().Text
					p.next() // =
					v, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Kwargs = append(call.Kwargs, Kwarg{Name: name, Value: v})
				} else {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
				}
				if p.isOp(",") {
					p.next()
					continue
				}
				break
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			x = call
		case p.isOp("["):
			p.next()
			idx, err := p.parseIndex()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{X: x, Index: idx}
		default:
			return x, nil
		}
	}
}

// parseIndex parses the inside of a subscript; commas produce a SliceExpr
// (e.g. df.loc[mask, "col"]).
func (p *Parser) parseIndex() (Expr, error) {
	first, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.isOp(",") {
		return first, nil
	}
	parts := []Expr{first}
	for p.isOp(",") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		parts = append(parts, e)
	}
	return &SliceExpr{Parts: parts}, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokIdent:
		p.next()
		return &Ident{Name: t.Text}, nil
	case TokNumber:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf(t, "bad number %q: %v", t.Text, err)
		}
		isInt := !strings.ContainsAny(t.Text, ".eE")
		return &NumberLit{Value: v, IsInt: isInt}, nil
	case TokString:
		p.next()
		return &StringLit{Value: t.Text}, nil
	case TokKeyword:
		switch t.Text {
		case "True":
			p.next()
			return &BoolLit{Value: true}, nil
		case "False":
			p.next()
			return &BoolLit{Value: false}, nil
		case "None":
			p.next()
			return &NoneLit{}, nil
		}
		return nil, p.errf(t, "unexpected keyword %q in expression", t.Text)
	case TokOp:
		switch t.Text {
		case "(":
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "[":
			p.next()
			lst := &ListExpr{}
			for !p.isOp("]") {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				lst.Elems = append(lst.Elems, e)
				if p.isOp(",") {
					p.next()
					continue
				}
				break
			}
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			return lst, nil
		case "{":
			p.next()
			d := &DictExpr{}
			for !p.isOp("}") {
				k, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(":"); err != nil {
					return nil, err
				}
				v, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				d.Keys = append(d.Keys, k)
				d.Values = append(d.Values, v)
				if p.isOp(",") {
					p.next()
					continue
				}
				break
			}
			if err := p.expectOp("}"); err != nil {
				return nil, err
			}
			return d, nil
		}
	}
	return nil, p.errf(t, "unexpected %s in expression", t)
}
