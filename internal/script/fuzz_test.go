package script

import (
	"testing"
	"testing/quick"
)

// Property: the lexer and parser never panic on arbitrary input; they
// either produce a script or an error.
func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		s, err := Parse(src)
		if err != nil {
			return true
		}
		// Whatever parses must re-parse from its canonical print.
		if _, err := Parse(s.Source()); err != nil {
			t.Logf("reprint failed for %q -> %q: %v", src, s.Source(), err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: tokenizing then joining loses no statements for well-formed
// single-line inputs assembled from known fragments.
func TestTokenizeStability(t *testing.T) {
	fragments := []string{
		"df", "=", "pd", ".", "read_csv", "(", `"x.csv"`, ")", "[", "]",
		"5", "2.5", "+", "-", "<", "<=", "==", "&", "|", "~", "{", "}", ":", ",",
	}
	f := func(pick []uint8) bool {
		src := ""
		for _, p := range pick {
			src += fragments[int(p)%len(fragments)] + " "
		}
		toks, err := Tokenize(src)
		if err != nil {
			return true
		}
		return len(toks) >= 1 && toks[len(toks)-1].Kind == TokEOF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
