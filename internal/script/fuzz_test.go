package script_test

import (
	"testing"
	"testing/quick"

	"lucidscript/internal/gen"
	"lucidscript/internal/script"
)

// Property: the lexer and parser never panic on arbitrary input; they
// either produce a script or an error.
func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		s, err := script.Parse(src)
		if err != nil {
			return true
		}
		// Whatever parses must re-parse from its canonical print.
		if _, err := script.Parse(s.Source()); err != nil {
			t.Logf("reprint failed for %q -> %q: %v", src, s.Source(), err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: tokenizing then joining loses no statements for well-formed
// single-line inputs assembled from known fragments.
func TestTokenizeStability(t *testing.T) {
	fragments := []string{
		"df", "=", "pd", ".", "read_csv", "(", `"x.csv"`, ")", "[", "]",
		"5", "2.5", "+", "-", "<", "<=", "==", "&", "|", "~", "{", "}", ":", ",",
	}
	f := func(pick []uint8) bool {
		src := ""
		for _, p := range pick {
			src += fragments[int(p)%len(fragments)] + " "
		}
		toks, err := script.Tokenize(src)
		if err != nil {
			return true
		}
		return len(toks) >= 1 && toks[len(toks)-1].Kind == script.TokEOF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// roundTripSeeds are realistic scripts covering every statement and
// expression form the printer emits: slices, dicts, unary/binary operator
// precedence, chained calls, keyword arguments, and aliased imports.
var roundTripSeeds = []string{
	"import pandas as pd\n",
	`import pandas as pd
import numpy as np
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.mean())
df = df[df["SkinThickness"] < 80]
df = pd.get_dummies(df)
y = df["Outcome"]
`,
	`df["FamilySize"] = df["SibSp"] + df["Parch"] + 1
df["IsAlone"] = np.where(df["FamilySize"] == 1, 1, 0)
df["Sex"] = df["Sex"].map({"male": 0, "female": 1})
`,
	`df = df[(df["Pclass"] == 1) | (df["Pclass"] == 2)]
df = df[~(df["Age"] > 70)]
x = -df["Fare"] * 2.5
df = df.drop(["Name", "Ticket"], axis=1)
`,
	`df["FareScaled"] = (df["Fare"] - df["Fare"].min()) / (df["Fare"].max() - df["Fare"].min())
df["AgeBin"] = pd.cut(df["Age"], 5)
s = df["Name"].str.len()
t = df.iloc[0:10]
`,
	"x = True\ny = False\nz = None\n",
}

// FuzzParseRoundTrip checks the printer/parser agreement: any input the
// parser accepts must reprint to a canonical form that (a) parses and
// (b) is a fixed point — printing the reparse changes nothing. The seeds
// mix hand-written scripts with generated ones from the gen harness.
func FuzzParseRoundTrip(f *testing.F) {
	for _, s := range roundTripSeeds {
		f.Add(s)
	}
	g := gen.New(99)
	for i := 0; i < 16; i++ {
		f.Add(g.ScriptSource())
	}
	f.Fuzz(func(t *testing.T, src string) {
		s1, err := script.Parse(src)
		if err != nil {
			return // invalid input is out of scope; the no-panic property has its own target
		}
		printed := s1.Source()
		s2, err := script.Parse(printed)
		if err != nil {
			t.Fatalf("canonical print does not reparse: %v\ninput:\n%s\nprint:\n%s", err, src, printed)
		}
		if again := s2.Source(); again != printed {
			t.Fatalf("print is not a fixed point:\nfirst:\n%s\nsecond:\n%s", printed, again)
		}
		if s2.NumStmts() != s1.NumStmts() {
			t.Fatalf("reparse changed statement count: %d -> %d\ninput:\n%s", s1.NumStmts(), s2.NumStmts(), src)
		}
	})
}
