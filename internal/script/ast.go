package script

import (
	"fmt"
	"strconv"
	"strings"
)

// Node is implemented by every AST node.
type Node interface {
	// Source renders the node in canonical LSL source form.
	Source() string
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Script is a parsed straight-line program: an ordered statement list.
type Script struct {
	Stmts []Stmt
}

// Source renders the whole script in canonical form, one statement per line.
func (s *Script) Source() string {
	lines := make([]string, len(s.Stmts))
	for i, st := range s.Stmts {
		lines[i] = st.Source()
	}
	return strings.Join(lines, "\n") + "\n"
}

// Clone returns a deep copy of the script (statements are immutable once
// built, so sharing statement pointers is safe; the slice is copied).
func (s *Script) Clone() *Script {
	return &Script{Stmts: append([]Stmt(nil), s.Stmts...)}
}

// NumStmts returns the number of statements.
func (s *Script) NumStmts() int { return len(s.Stmts) }

// ImportStmt is `import module` or `import module as alias`.
type ImportStmt struct {
	Module string
	Alias  string
}

func (*ImportStmt) stmtNode() {}

// Source renders the import statement.
func (s *ImportStmt) Source() string {
	if s.Alias != "" && s.Alias != s.Module {
		return fmt.Sprintf("import %s as %s", s.Module, s.Alias)
	}
	return "import " + s.Module
}

// AssignStmt is `target = value`. Target is an Ident, an IndexExpr
// (column assignment df["c"] = ...) or an AttrExpr.
type AssignStmt struct {
	Target Expr
	Value  Expr
}

func (*AssignStmt) stmtNode() {}

// Source renders the assignment.
func (s *AssignStmt) Source() string {
	return s.Target.Source() + " = " + s.Value.Source()
}

// ExprStmt is a bare expression evaluated for effect (or no effect).
type ExprStmt struct {
	X Expr
}

func (*ExprStmt) stmtNode() {}

// Source renders the expression statement.
func (s *ExprStmt) Source() string { return s.X.Source() }

// Ident is a variable reference.
type Ident struct {
	Name string
}

func (*Ident) exprNode() {}

// Source renders the identifier.
func (e *Ident) Source() string { return e.Name }

// NumberLit is a numeric literal.
type NumberLit struct {
	Value float64
	IsInt bool
}

func (*NumberLit) exprNode() {}

// Source renders the number as the shortest decimal that parses back to
// the same float64, in fixed-point form (the lexer has no scientific
// notation). Integral values — whatever their IsInt flag — therefore print
// without a fractional part, and negative zero normalizes to "0" (the sign
// would re-fold into the literal on reparse).
func (e *NumberLit) Source() string {
	if e.Value == 0 {
		return "0"
	}
	return strconv.FormatFloat(e.Value, 'f', -1, 64)
}

// StringLit is a string literal; canonical form uses double quotes.
type StringLit struct {
	Value string
}

func (*StringLit) exprNode() {}

// Source renders the string with double quotes.
func (e *StringLit) Source() string { return strconv.Quote(e.Value) }

// BoolLit is True or False.
type BoolLit struct {
	Value bool
}

func (*BoolLit) exprNode() {}

// Source renders the Python-style boolean.
func (e *BoolLit) Source() string {
	if e.Value {
		return "True"
	}
	return "False"
}

// NoneLit is the None literal.
type NoneLit struct{}

func (*NoneLit) exprNode() {}

// Source renders None.
func (*NoneLit) Source() string { return "None" }

// AttrExpr is attribute access `x.attr`.
type AttrExpr struct {
	X    Expr
	Attr string
}

func (*AttrExpr) exprNode() {}

// postfixOperand renders x as the operand of a postfix form (attribute
// access, call, subscript). Postfix binds tighter than any operator, so an
// operator expression in that position must keep its parentheses —
// `([] % 0)[k]` would otherwise print as `[] % 0[k]` and re-parse as
// `[] % (0[k])`. A number literal needs them too: `(2).mean` without
// parentheses lexes as the number `2.` followed by `mean`.
func postfixOperand(x Expr) string {
	switch x.(type) {
	case *BinaryExpr, *UnaryExpr, *NumberLit:
		return "(" + x.Source() + ")"
	}
	return x.Source()
}

// Source renders the attribute access.
func (e *AttrExpr) Source() string { return postfixOperand(e.X) + "." + e.Attr }

// Kwarg is a keyword argument inside a call.
type Kwarg struct {
	Name  string
	Value Expr
}

// CallExpr is a function or method call `fn(args, k=v)`.
type CallExpr struct {
	Fn     Expr
	Args   []Expr
	Kwargs []Kwarg
}

func (*CallExpr) exprNode() {}

// Source renders the call with positional then keyword arguments.
func (e *CallExpr) Source() string {
	parts := make([]string, 0, len(e.Args)+len(e.Kwargs))
	for _, a := range e.Args {
		parts = append(parts, a.Source())
	}
	for _, k := range e.Kwargs {
		parts = append(parts, k.Name+"="+k.Value.Source())
	}
	return postfixOperand(e.Fn) + "(" + strings.Join(parts, ", ") + ")"
}

// IndexExpr is subscripting `x[index]`: column access (string index),
// boolean-mask filtering, or column-list selection.
type IndexExpr struct {
	X     Expr
	Index Expr
}

func (*IndexExpr) exprNode() {}

// Source renders the subscript.
func (e *IndexExpr) Source() string { return postfixOperand(e.X) + "[" + e.Index.Source() + "]" }

// SliceExpr is a two-part subscript index `a, b` as used by df.loc[rows, col].
type SliceExpr struct {
	Parts []Expr
}

func (*SliceExpr) exprNode() {}

// Source renders the comma-joined index parts.
func (e *SliceExpr) Source() string {
	parts := make([]string, len(e.Parts))
	for i, p := range e.Parts {
		parts[i] = p.Source()
	}
	return strings.Join(parts, ", ")
}

// ListExpr is a list literal `[a, b, c]`.
type ListExpr struct {
	Elems []Expr
}

func (*ListExpr) exprNode() {}

// Source renders the list literal.
func (e *ListExpr) Source() string {
	parts := make([]string, len(e.Elems))
	for i, el := range e.Elems {
		parts[i] = el.Source()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// DictExpr is a dict literal `{k: v, ...}` with parallel key/value slices.
type DictExpr struct {
	Keys   []Expr
	Values []Expr
}

func (*DictExpr) exprNode() {}

// Source renders the dict literal.
func (e *DictExpr) Source() string {
	parts := make([]string, len(e.Keys))
	for i := range e.Keys {
		parts[i] = e.Keys[i].Source() + ": " + e.Values[i].Source()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// BinaryExpr is a binary operation. Op is one of
// == != < <= > >= + - * / & | .
type BinaryExpr struct {
	Op string
	X  Expr
	Y  Expr
}

func (*BinaryExpr) exprNode() {}

// precedence returns the binding strength of a binary operator, matching
// the parser's climbing order.
func precedence(op string) int {
	switch op {
	case "|":
		return 1
	case "&":
		return 2
	case "==", "!=", "<", "<=", ">", ">=":
		return 3
	case "+", "-":
		return 4
	case "*", "/", "%":
		return 5
	}
	return 6
}

// Source renders the binary expression, parenthesizing operands whose
// operators bind less tightly than this one (so printing and re-parsing
// round-trips the tree exactly). Mask combinators (& |) always wrap their
// operands, matching pandas' precedence requirements.
func (e *BinaryExpr) Source() string {
	if e.Op == "&" || e.Op == "|" {
		return "(" + e.X.Source() + ") " + e.Op + " (" + e.Y.Source() + ")"
	}
	p := precedence(e.Op)
	left := e.X.Source()
	if bx, ok := e.X.(*BinaryExpr); ok && precedence(bx.Op) < p {
		left = "(" + left + ")"
	}
	right := e.Y.Source()
	// The right operand needs parentheses at equal precedence too, since
	// the parser is left-associative (a - (b - c) must keep its parens).
	if by, ok := e.Y.(*BinaryExpr); ok && precedence(by.Op) <= p {
		right = "(" + right + ")"
	}
	return left + " " + e.Op + " " + right
}

// UnaryExpr is a prefix operation: `-x` or `~x` (mask negation).
type UnaryExpr struct {
	Op string
	X  Expr
}

func (*UnaryExpr) exprNode() {}

// Source renders the unary expression.
func (e *UnaryExpr) Source() string {
	if _, ok := e.X.(*BinaryExpr); ok {
		return e.Op + "(" + e.X.Source() + ")"
	}
	return e.Op + e.X.Source()
}

// Walk applies fn to expr and all sub-expressions, pre-order.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch v := e.(type) {
	case *AttrExpr:
		Walk(v.X, fn)
	case *CallExpr:
		Walk(v.Fn, fn)
		for _, a := range v.Args {
			Walk(a, fn)
		}
		for _, k := range v.Kwargs {
			Walk(k.Value, fn)
		}
	case *IndexExpr:
		Walk(v.X, fn)
		Walk(v.Index, fn)
	case *SliceExpr:
		for _, p := range v.Parts {
			Walk(p, fn)
		}
	case *ListExpr:
		for _, el := range v.Elems {
			Walk(el, fn)
		}
	case *DictExpr:
		for i := range v.Keys {
			Walk(v.Keys[i], fn)
			Walk(v.Values[i], fn)
		}
	case *BinaryExpr:
		Walk(v.X, fn)
		Walk(v.Y, fn)
	case *UnaryExpr:
		Walk(v.X, fn)
	}
}

// WalkStmt applies fn to every expression in the statement.
func WalkStmt(s Stmt, fn func(Expr)) {
	switch v := s.(type) {
	case *AssignStmt:
		Walk(v.Target, fn)
		Walk(v.Value, fn)
	case *ExprStmt:
		Walk(v.X, fn)
	}
}
