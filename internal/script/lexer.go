package script

import (
	"fmt"
	"strings"
	"unicode"
)

// Lexer turns LSL source text into a token stream.
type Lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

// NewLexer builds a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

// Tokenize lexes the whole input, returning the token list terminated by EOF.
// Consecutive newlines are collapsed; comment text (after '#') is skipped.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokNewline && (len(toks) == 0 || toks[len(toks)-1].Kind == TokNewline) {
			continue // collapse blank lines / leading newlines
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peek() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) advance() rune {
	r := lx.src[lx.pos]
	lx.pos++
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

// hexDigits consumes exactly n hex digits and returns their value as a
// rune. On malformed input it consumes nothing and reports !ok, so the
// caller can fall back to the literal-backslash behavior.
func (lx *Lexer) hexDigits(n int) (rune, bool) {
	if lx.pos+n > len(lx.src) {
		return 0, false
	}
	var v rune
	for i := 0; i < n; i++ {
		r := lx.src[lx.pos+i]
		var d rune
		switch {
		case r >= '0' && r <= '9':
			d = r - '0'
		case r >= 'a' && r <= 'f':
			d = r - 'a' + 10
		case r >= 'A' && r <= 'F':
			d = r - 'A' + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	if v > unicode.MaxRune {
		return 0, false
	}
	for i := 0; i < n; i++ {
		lx.advance()
	}
	return v, true
}

func (lx *Lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("script: line %d col %d: %s", lx.line, lx.col, fmt.Sprintf(format, args...))
}

func (lx *Lexer) next() (Token, error) {
	// Skip horizontal whitespace and comments.
	for lx.pos < len(lx.src) {
		r := lx.peek()
		if r == ' ' || r == '\t' || r == '\r' {
			lx.advance()
			continue
		}
		if r == '#' {
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
			continue
		}
		if r == '\\' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '\n' {
			lx.advance()
			lx.advance() // line continuation
			continue
		}
		break
	}
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	}
	r := lx.peek()
	switch {
	case r == '\n':
		lx.advance()
		return Token{Kind: TokNewline, Text: "\n", Line: line, Col: col}, nil
	case unicode.IsLetter(r) || r == '_':
		var b strings.Builder
		for lx.pos < len(lx.src) {
			c := lx.peek()
			if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
				b.WriteRune(lx.advance())
			} else {
				break
			}
		}
		text := b.String()
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
	case unicode.IsDigit(r) || (r == '.' && lx.pos+1 < len(lx.src) && unicode.IsDigit(lx.src[lx.pos+1])):
		var b strings.Builder
		seenDot, seenExp := false, false
		for lx.pos < len(lx.src) {
			c := lx.peek()
			if unicode.IsDigit(c) {
				b.WriteRune(lx.advance())
				continue
			}
			if c == '.' && !seenDot && !seenExp {
				seenDot = true
				b.WriteRune(lx.advance())
				continue
			}
			if (c == 'e' || c == 'E') && !seenExp {
				seenExp = true
				b.WriteRune(lx.advance())
				if lx.peek() == '+' || lx.peek() == '-' {
					b.WriteRune(lx.advance())
				}
				continue
			}
			break
		}
		return Token{Kind: TokNumber, Text: b.String(), Line: line, Col: col}, nil
	case r == '"' || r == '\'':
		quote := lx.advance()
		var b strings.Builder
		for {
			if lx.pos >= len(lx.src) || lx.peek() == '\n' {
				return Token{}, lx.errf("unterminated string literal")
			}
			c := lx.advance()
			if c == quote {
				break
			}
			if c == '\\' && lx.pos < len(lx.src) {
				e := lx.advance()
				switch e {
				case 'n':
					b.WriteRune('\n')
				case 't':
					b.WriteRune('\t')
				case 'a':
					b.WriteRune('\a')
				case 'b':
					b.WriteRune('\b')
				case 'f':
					b.WriteRune('\f')
				case 'r':
					b.WriteRune('\r')
				case 'v':
					b.WriteRune('\v')
				case 'x', 'u', 'U':
					// Hex escapes, as emitted by the printer's strconv.Quote:
					// \xHH, \uXXXX, \UXXXXXXXX.
					n := map[rune]int{'x': 2, 'u': 4, 'U': 8}[e]
					if v, ok := lx.hexDigits(n); ok {
						b.WriteRune(v)
					} else {
						b.WriteRune('\\')
						b.WriteRune(e)
					}
				case '\\', '\'', '"':
					b.WriteRune(e)
				default:
					b.WriteRune('\\')
					b.WriteRune(e)
				}
				continue
			}
			b.WriteRune(c)
		}
		return Token{Kind: TokString, Text: b.String(), Line: line, Col: col}, nil
	default:
		// Operators / punctuation, longest match first.
		two := ""
		if lx.pos+1 < len(lx.src) {
			two = string(lx.src[lx.pos : lx.pos+2])
		}
		switch two {
		case "==", "!=", "<=", ">=", "//", "**":
			lx.advance()
			lx.advance()
			return Token{Kind: TokOp, Text: two, Line: line, Col: col}, nil
		}
		switch r {
		case '=', '<', '>', '+', '-', '*', '/', '&', '|', '~', '(', ')', '[', ']', '{', '}', ',', ':', '.', '%':
			lx.advance()
			return Token{Kind: TokOp, Text: string(r), Line: line, Col: col}, nil
		}
		return Token{}, lx.errf("unexpected character %q", string(r))
	}
}
