package corpusgen

import (
	"testing"
)

func scaledSources(t *testing.T, cfg ScaleConfig) []string {
	t.Helper()
	c, err := Get("Titanic")
	if err != nil {
		t.Fatal(err)
	}
	gs, err := c.GenerateScaled(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(gs))
	for i, g := range gs {
		out[i] = g.Script.Source()
	}
	return out
}

func TestGenerateScaledStableUnderRerun(t *testing.T) {
	cfg := ScaleConfig{Seed: 7, NumScripts: 300}
	a := scaledSources(t, cfg)
	b := scaledSources(t, cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("script %d differs between identical runs", i)
		}
	}
}

func TestGenerateScaledPrefixStable(t *testing.T) {
	small := scaledSources(t, ScaleConfig{Seed: 7, NumScripts: 100})
	large := scaledSources(t, ScaleConfig{Seed: 7, NumScripts: 400})
	for i := range small {
		if small[i] != large[i] {
			t.Fatalf("script %d differs between corpus sizes 100 and 400", i)
		}
	}
}

func TestGenerateScaledSeedMatters(t *testing.T) {
	a := scaledSources(t, ScaleConfig{Seed: 7, NumScripts: 50})
	b := scaledSources(t, ScaleConfig{Seed: 8, NumScripts: 50})
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	// Scripts draw from a finite template pool, so collisions happen — but
	// different seeds must not reproduce the corpus wholesale.
	if same == len(a) {
		t.Fatal("seeds 7 and 8 generated identical corpora")
	}
}

func TestGenerateScaledArchetypeRatios(t *testing.T) {
	c, err := Get("Titanic")
	if err != nil {
		t.Fatal(err)
	}
	count := func(cfg ScaleConfig) map[string]int {
		gs, err := c.GenerateScaled(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := map[string]int{}
		for _, g := range gs {
			m[g.Archetype]++
		}
		return m
	}
	const n = 2000
	defaults := count(ScaleConfig{Seed: 3, NumScripts: n})
	for arch, want := range map[string]float64{
		ArchetypeMinimal:     defaultMinimalRatio,
		ArchetypeImputeSplit: defaultImputeSplitRatio,
	} {
		got := float64(defaults[arch]) / n
		if got < want-0.05 || got > want+0.05 {
			t.Fatalf("%s ratio = %.3f, want ≈ %.2f", arch, got, want)
		}
	}
	// Knobs: disabling both archetypes leaves only full pipelines; cranking
	// minimal dominates the mix.
	fullOnly := count(ScaleConfig{Seed: 3, NumScripts: n, MinimalRatio: -1, ImputeSplitRatio: -1})
	if fullOnly[ArchetypeMinimal] != 0 || fullOnly[ArchetypeImputeSplit] != 0 {
		t.Fatalf("disabled archetypes still generated: %v", fullOnly)
	}
	heavy := count(ScaleConfig{Seed: 3, NumScripts: n, MinimalRatio: 0.8, ImputeSplitRatio: 0.1})
	if got := float64(heavy[ArchetypeMinimal]) / n; got < 0.7 {
		t.Fatalf("minimal ratio 0.8 produced %.3f", got)
	}
	if _, err := c.GenerateScaled(ScaleConfig{Seed: 3, NumScripts: 10, MinimalRatio: 0.8, ImputeSplitRatio: 0.3}); err == nil {
		t.Fatal("ratio sum > 1 accepted")
	}
	if _, err := c.GenerateScaled(ScaleConfig{Seed: 3}); err == nil {
		t.Fatal("NumScripts 0 accepted")
	}
}

func TestScaledIDStable(t *testing.T) {
	c, err := Get("Titanic")
	if err != nil {
		t.Fatal(err)
	}
	if id := c.ScaledID(42); id != "Titanic-000042" {
		t.Fatalf("ScaledID = %q", id)
	}
}
