// Package corpusgen synthesizes the six Kaggle-style competitions of the
// paper's evaluation (Table 3): for each competition it generates an input
// dataset with the right shape and noise characteristics, and a corpus of
// data-preparation scripts whose step popularity mirrors real corpora
// (common steps in most scripts, rare steps in a few). The paper used real
// Kaggle data and scripts; the algorithm consumes only corpus statistics
// and executability, which the generators reproduce (see DESIGN.md).
package corpusgen

import (
	"fmt"
	"math/rand"
	"sort"

	"lucidscript/internal/frame"
	"lucidscript/internal/script"
)

// ColKind identifies how a synthetic column is generated.
type ColKind int

// The synthetic column kinds.
const (
	// ColFloat draws uniformly from [Min, Max] (log-skewed when Skew).
	ColFloat ColKind = iota
	// ColInt draws integers uniformly from [Min, Max].
	ColInt
	// ColCat draws from Cats with geometric-ish weights.
	ColCat
	// ColText draws short pseudo-text strings (Cardinality distinct values).
	ColText
	// ColSeq emits sequential integers Min, Min+1, … (join keys for
	// dimension tables: a main-file key drawn from [Min, Max] always finds
	// its row when the dimension table enumerates the range).
	ColSeq
	// ColDate emits DD.MM.YYYY date strings drawn from years
	// [Min, Max] (the Kaggle sales date format).
	ColDate
)

// ColSpec describes one synthetic column.
type ColSpec struct {
	Name        string
	Kind        ColKind
	Min, Max    float64
	Cats        []string
	Cardinality int     // for ColText
	NullRate    float64 // fraction of nulls
	OutlierRate float64 // fraction of values drawn from the outlier range
	OutlierMin  float64
	OutlierMax  float64
	Skew        bool
}

// StepTemplate is one data-preparation step observed in a competition's
// corpus: a set of alternative concrete lines (variants), an inclusion
// popularity, an ordering phase, and optional prerequisite templates.
type StepTemplate struct {
	// Variants are alternative source lines; the first is the most common
	// realization and later ones are progressively rarer.
	Variants []string
	// Pop is the probability a (high-quality) script includes this step.
	Pop float64
	// Phase orders steps within a script: 0 imports, 1 load, 2 impute,
	// 3 filter, 4 feature engineering, 5 encode, 6 target split.
	Phase int
	// Requires lists indices of templates that must also be included when
	// this one is (e.g. get_dummies requires dropping high-cardinality
	// string columns first).
	Requires []int
	// Rare steps are preferentially chosen by low-quality scripts.
	Rare bool
}

// Competition describes one synthetic benchmark dataset plus its script
// corpus model.
type Competition struct {
	Name    string
	File    string
	Target  string
	NumRows int // full-size tuple count (Table 3, data tuples)
	// NumScripts is the corpus size (Table 3, scripts).
	NumScripts int
	Schema     []ColSpec
	Steps      []StepTemplate
	// Extra are auxiliary data files some corpus scripts read (dimension
	// tables, secondary splits); the paper's competitions ship 1–6 files
	// each (Table 3).
	Extra []ExtraFile
	// targetFn derives the binary label from a row's numeric cell values.
	targetFn func(vals map[string]float64, rng *rand.Rand) int
}

// ExtraFile is an auxiliary data file of a competition.
type ExtraFile struct {
	Name   string
	Rows   int // full-size row count (scaled like the main file)
	Schema []ColSpec
	// NoScale keeps the file at full size regardless of RowScale —
	// dimension tables must cover the main file's key range or merges
	// would silently drop rows.
	NoScale bool
}

// The script archetypes a generated corpus mixes (see generateScriptMix).
const (
	ArchetypeFull        = "full"
	ArchetypeMinimal     = "minimal"
	ArchetypeImputeSplit = "impute-split"
)

// GeneratedScript is one corpus member with its simulated Kaggle vote count.
type GeneratedScript struct {
	Script *script.Script
	// Votes simulates Kaggle upvotes; higher-quality scripts earn more.
	Votes int
	// Quality in [0,1] drove step selection (kept for analysis).
	Quality float64
	// Archetype records which script shape the generator drew ("full",
	// "minimal", or "impute-split").
	Archetype string
}

// Generated bundles everything a standardization experiment needs.
type Generated struct {
	Competition *Competition
	// Sources maps the competition file name to the synthesized dataset.
	Sources map[string]*frame.Frame
	// Scripts is the corpus, ordered by generation index.
	Scripts []GeneratedScript
}

// GenOptions controls generation.
type GenOptions struct {
	// Seed drives all randomness; a given (competition, seed, scale) is
	// bit-reproducible.
	Seed int64
	// RowScale scales NumRows (0 means 1.0, full size).
	RowScale float64
	// MinRows floors the scaled row count (default 240).
	MinRows int
	// NumScripts overrides the corpus size when positive.
	NumScripts int
}

func (o *GenOptions) defaults() {
	if o.RowScale == 0 {
		o.RowScale = 1
	}
	if o.MinRows == 0 {
		o.MinRows = 240
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Names lists the competitions in the paper's Table 3 order.
func Names() []string {
	return []string{"Titanic", "House", "NLP", "Spaceship", "Medical", "Sales"}
}

// Get returns the named competition definition.
func Get(name string) (*Competition, error) {
	for _, c := range registry() {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("corpusgen: unknown competition %q (have %v)", name, Names())
}

// All returns every competition definition in Table 3 order.
func All() []*Competition { return registry() }

// Generate synthesizes the dataset and corpus for the competition.
func (c *Competition) Generate(opts GenOptions) (*Generated, error) {
	opts.defaults()
	rng := rand.New(rand.NewSource(opts.Seed*1315423911 + int64(len(c.Name))))
	rows := int(float64(c.NumRows) * opts.RowScale)
	if rows < opts.MinRows {
		rows = opts.MinRows
	}
	if rows > c.NumRows {
		rows = c.NumRows
	}
	data, err := c.generateData(rows, rng)
	if err != nil {
		return nil, err
	}
	sources := map[string]*frame.Frame{c.File: data}
	for _, ex := range c.Extra {
		exRows := ex.Rows
		if !ex.NoScale {
			exRows = int(float64(ex.Rows) * opts.RowScale)
			if exRows < opts.MinRows/4 {
				exRows = opts.MinRows / 4
			}
			if exRows > ex.Rows {
				exRows = ex.Rows
			}
		}
		f := frame.New()
		for _, spec := range ex.Schema {
			s, _ := genColumn(spec, exRows, rng)
			if err := f.AddColumn(s); err != nil {
				return nil, err
			}
		}
		sources[ex.Name] = f
	}
	n := c.NumScripts
	if opts.NumScripts > 0 {
		n = opts.NumScripts
	}
	scripts := make([]GeneratedScript, 0, n)
	for i := 0; i < n; i++ {
		gs, err := c.generateScript(rng)
		if err != nil {
			return nil, fmt.Errorf("corpusgen: %s script %d: %w", c.Name, i, err)
		}
		scripts = append(scripts, gs)
	}
	return &Generated{
		Competition: c,
		Sources:     sources,
		Scripts:     scripts,
	}, nil
}

// generateData synthesizes the dataset frame.
func (c *Competition) generateData(rows int, rng *rand.Rand) (*frame.Frame, error) {
	f := frame.New()
	numeric := make(map[string][]float64, len(c.Schema))
	for _, spec := range c.Schema {
		s, nums := genColumn(spec, rows, rng)
		if err := f.AddColumn(s); err != nil {
			return nil, err
		}
		if nums != nil {
			numeric[spec.Name] = nums
		}
	}
	// Target column.
	target := frame.NewEmptySeries(c.Target, frame.Int, rows)
	vals := map[string]float64{}
	for i := 0; i < rows; i++ {
		for name, col := range numeric {
			vals[name] = col[i]
		}
		target.SetInt(i, int64(c.targetFn(vals, rng)))
	}
	if err := f.AddColumn(target); err != nil {
		return nil, err
	}
	return f, nil
}

// genColumn synthesizes one column; for numeric kinds it also returns the
// pre-null values so the target function can depend on them.
func genColumn(spec ColSpec, rows int, rng *rand.Rand) (*frame.Series, []float64) {
	switch spec.Kind {
	case ColFloat, ColInt:
		kind := frame.Float
		if spec.Kind == ColInt && spec.NullRate == 0 {
			kind = frame.Int
		}
		out := frame.NewEmptySeries(spec.Name, kind, rows)
		vals := make([]float64, rows)
		for i := 0; i < rows; i++ {
			var v float64
			if spec.OutlierRate > 0 && rng.Float64() < spec.OutlierRate {
				v = spec.OutlierMin + rng.Float64()*(spec.OutlierMax-spec.OutlierMin)
			} else if spec.Skew {
				u := rng.Float64()
				v = spec.Min + (spec.Max-spec.Min)*u*u*u
			} else {
				v = spec.Min + rng.Float64()*(spec.Max-spec.Min)
			}
			if spec.Kind == ColInt {
				v = float64(int64(v))
			}
			vals[i] = v
			if spec.NullRate > 0 && rng.Float64() < spec.NullRate {
				continue // leave null
			}
			if kind == frame.Int {
				out.SetInt(i, int64(v))
			} else {
				out.SetFloat(i, v)
			}
		}
		return out, vals
	case ColCat:
		out := frame.NewEmptySeries(spec.Name, frame.String, rows)
		for i := 0; i < rows; i++ {
			if spec.NullRate > 0 && rng.Float64() < spec.NullRate {
				continue
			}
			out.SetString(i, pickWeighted(spec.Cats, rng))
		}
		return out, nil
	case ColSeq:
		out := frame.NewEmptySeries(spec.Name, frame.Int, rows)
		for i := 0; i < rows; i++ {
			out.SetInt(i, int64(spec.Min)+int64(i))
		}
		return out, nil
	case ColDate:
		out := frame.NewEmptySeries(spec.Name, frame.String, rows)
		years := int(spec.Max-spec.Min) + 1
		if years < 1 {
			years = 1
		}
		for i := 0; i < rows; i++ {
			if spec.NullRate > 0 && rng.Float64() < spec.NullRate {
				continue
			}
			y := int(spec.Min) + rng.Intn(years)
			m := 1 + rng.Intn(12)
			d := 1 + rng.Intn(28)
			out.SetString(i, fmt.Sprintf("%02d.%02d.%04d", d, m, y))
		}
		return out, nil
	case ColText:
		card := spec.Cardinality
		if card <= 0 {
			card = 40
		}
		out := frame.NewEmptySeries(spec.Name, frame.String, rows)
		for i := 0; i < rows; i++ {
			if spec.NullRate > 0 && rng.Float64() < spec.NullRate {
				continue
			}
			out.SetString(i, fmt.Sprintf("%s_%03d", spec.Name, rng.Intn(card)))
		}
		return out, nil
	}
	return frame.NewEmptySeries(spec.Name, frame.String, rows), nil
}

// pickWeighted draws from cats with geometric weights (first most common).
func pickWeighted(cats []string, rng *rand.Rand) string {
	for _, c := range cats {
		if rng.Float64() < 0.5 {
			return c
		}
	}
	return cats[len(cats)-1]
}

// The default archetype mix (see generateScript): 18% minimal splitters,
// 20% impute-and-split, the rest full pipelines. GenerateScaled exposes
// these as knobs; the unscaled path always uses the defaults, so existing
// corpora stay bit-identical.
const (
	defaultMinimalRatio     = 0.18
	defaultImputeSplitRatio = 0.20
)

// generateScript assembles one corpus script from the step templates.
func (c *Competition) generateScript(rng *rand.Rand) (GeneratedScript, error) {
	return c.generateScriptMix(rng, defaultMinimalRatio, defaultImputeSplitRatio)
}

// generateScriptMix is generateScript with the archetype mix explicit:
// a script is a minimal splitter with probability minimalRatio and an
// impute-and-split with probability imputeSplitRatio (full pipeline
// otherwise). The rng draw sequence is identical for every mix, so two
// corpora generated from the same seeds differ only where the thresholds
// reclassify a draw.
func (c *Competition) generateScriptMix(rng *rand.Rand, minimalRatio, imputeSplitRatio float64) (GeneratedScript, error) {
	quality := rng.Float64()
	// Real corpora mix script archetypes: full pipelines, "minimal
	// splitter" scripts that load and go straight to the target split, and
	// "impute and split" scripts that clean but skip filtering and
	// encoding. The lighter archetypes make short data flows (read→split,
	// impute→split) legitimately common, as they are on Kaggle.
	archetypeDraw := rng.Float64()
	minimal := archetypeDraw < minimalRatio
	imputeSplit := !minimal && archetypeDraw < minimalRatio+imputeSplitRatio
	include := map[int]bool{}
	for i, t := range c.Steps {
		pop := t.Pop
		switch {
		case minimal:
			switch {
			case t.Phase < 5:
				continue
			case t.Phase == 5:
				pop = t.Pop * 0.4 // encode is usually skipped in quick splits
			default:
				pop = t.Pop*1.5 + 0.3
			}
		case imputeSplit:
			switch t.Phase {
			case 2:
				pop = t.Pop * 1.3
			case 6:
				pop = t.Pop*1.5 + 0.3
			default:
				continue
			}
		case t.Rare:
			// Low-quality authors reach for unusual steps more often.
			pop = t.Pop * (0.4 + 1.6*(1-quality))
		case quality < 0.3:
			// Low-quality authors skip common practice more often.
			pop = t.Pop * 0.6
		}
		if rng.Float64() < pop {
			include[i] = true
		}
	}
	// Close over prerequisites.
	for changed := true; changed; {
		changed = false
		for i := range c.Steps {
			if !include[i] {
				continue
			}
			for _, r := range c.Steps[i].Requires {
				if !include[r] {
					include[r] = true
					changed = true
				}
			}
		}
	}
	idxs := make([]int, 0, len(include))
	for i := range include {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool {
		if c.Steps[idxs[a]].Phase != c.Steps[idxs[b]].Phase {
			return c.Steps[idxs[a]].Phase < c.Steps[idxs[b]].Phase
		}
		return idxs[a] < idxs[b]
	})
	src := "import pandas as pd\n"
	needNumpy := false
	var lines []string
	for _, i := range idxs {
		t := c.Steps[i]
		v := 0
		if len(t.Variants) > 1 {
			// Higher quality → first (most standard) variant.
			if rng.Float64() > 0.55+0.4*quality {
				v = 1 + rng.Intn(len(t.Variants)-1)
			}
		}
		line := t.Variants[v]
		lines = append(lines, line)
		if containsNp(line) {
			needNumpy = true
		}
	}
	if needNumpy {
		src += "import numpy as np\n"
	}
	src += fmt.Sprintf("df = pd.read_csv(%q)\n", c.File)
	for _, l := range lines {
		src += l + "\n"
	}
	s, err := script.Parse(src)
	if err != nil {
		return GeneratedScript{}, fmt.Errorf("generated script does not parse: %w\n%s", err, src)
	}
	votes := int(quality*40) + rng.Intn(8)
	arch := ArchetypeFull
	if minimal {
		arch = ArchetypeMinimal
	} else if imputeSplit {
		arch = ArchetypeImputeSplit
	}
	return GeneratedScript{Script: s, Votes: votes, Quality: quality, Archetype: arch}, nil
}

func containsNp(line string) bool {
	for i := 0; i+3 <= len(line); i++ {
		if line[i:i+3] == "np." {
			return true
		}
	}
	return false
}

// ScriptsOnly extracts the bare scripts from a generated corpus.
func (g *Generated) ScriptsOnly() []*script.Script {
	out := make([]*script.Script, len(g.Scripts))
	for i, gs := range g.Scripts {
		out[i] = gs.Script
	}
	return out
}

// LowRanked returns the bottom fraction of the corpus by votes (the paper's
// low-ranked corpus scenario uses the bottom 30%).
func (g *Generated) LowRanked(fraction float64) []*script.Script {
	idx := make([]int, len(g.Scripts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return g.Scripts[idx[a]].Votes < g.Scripts[idx[b]].Votes })
	n := int(float64(len(idx)) * fraction)
	if n < 1 {
		n = 1
	}
	out := make([]*script.Script, 0, n)
	for _, i := range idx[:n] {
		out = append(out, g.Scripts[i].Script)
	}
	return out
}

// Sample returns n corpus scripts chosen deterministically (the paper's
// small-corpus scenario samples 10).
func (g *Generated) Sample(n int, seed int64) []*script.Script {
	if n >= len(g.Scripts) {
		return g.ScriptsOnly()
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(g.Scripts))
	out := make([]*script.Script, 0, n)
	for _, i := range perm[:n] {
		out = append(out, g.Scripts[i].Script)
	}
	return out
}
