package corpusgen

import "math/rand"

// registry returns the six competition definitions in Table 3 order.
// Row counts and corpus sizes follow the paper's Table 3; schemas and step
// pools are synthetic stand-ins with matching shape (see DESIGN.md).
// Template pools are deliberately large so generated scripts reach realistic
// lengths and the atom/edge vocabularies approach the paper's sizes.
func registry() []*Competition {
	return []*Competition{titanic(), house(), nlp(), spaceship(), medical(), sales()}
}

func titanic() *Competition {
	return &Competition{
		Name:       "Titanic",
		File:       "train.csv",
		Target:     "Survived",
		NumRows:    2600,
		NumScripts: 62,
		Schema: []ColSpec{
			{Name: "PassengerId", Kind: ColInt, Min: 1, Max: 900},
			{Name: "Pclass", Kind: ColInt, Min: 1, Max: 3},
			{Name: "Name", Kind: ColText, Cardinality: 60},
			{Name: "Sex", Kind: ColCat, Cats: []string{"male", "female"}},
			{Name: "Age", Kind: ColFloat, Min: 1, Max: 70, NullRate: 0.2},
			{Name: "SibSp", Kind: ColInt, Min: 0, Max: 5},
			{Name: "Parch", Kind: ColInt, Min: 0, Max: 4},
			{Name: "Ticket", Kind: ColText, Cardinality: 50},
			{Name: "Fare", Kind: ColFloat, Min: 5, Max: 260, Skew: true, NullRate: 0.02},
			{Name: "Cabin", Kind: ColText, Cardinality: 40, NullRate: 0.7},
			{Name: "Embarked", Kind: ColCat, Cats: []string{"S", "C", "Q"}, NullRate: 0.02},
		},
		Extra: []ExtraFile{
			{
				Name: "test.csv",
				Rows: 1100,
				Schema: []ColSpec{
					{Name: "PassengerId", Kind: ColInt, Min: 901, Max: 1400},
					{Name: "Pclass", Kind: ColInt, Min: 1, Max: 3},
					{Name: "Sex", Kind: ColCat, Cats: []string{"male", "female"}},
					{Name: "Age", Kind: ColFloat, Min: 1, Max: 70, NullRate: 0.2},
					{Name: "Fare", Kind: ColFloat, Min: 5, Max: 260, Skew: true, NullRate: 0.02},
					{Name: "Embarked", Kind: ColCat, Cats: []string{"S", "C", "Q"}, NullRate: 0.02},
				},
			},
		},
		targetFn: func(v map[string]float64, rng *rand.Rand) int {
			score := 0.0
			if v["Pclass"] == 1 {
				score += 1.2
			}
			if v["Fare"] > 60 {
				score += 0.8
			}
			if v["Age"] < 16 {
				score += 0.7
			}
			score += rng.NormFloat64() * 0.6
			if score > 0.9 {
				return 1
			}
			return 0
		},
		Steps: []StepTemplate{
			0: {Phase: 2, Pop: 0.45, Variants: []string{
				`df["Age"] = df["Age"].fillna(df["Age"].mean())`,
				`df["Age"] = df["Age"].fillna(df["Age"].median())`,
			}},
			1: {Phase: 2, Pop: 0.14, Variants: []string{`df["Embarked"] = df["Embarked"].fillna("S")`}},
			2: {Phase: 2, Pop: 0.3, Variants: []string{
				`df["Fare"] = df["Fare"].fillna(df["Fare"].median())`,
				`df["Fare"] = df["Fare"].fillna(df["Fare"].mean())`,
			}},
			3: {Phase: 2, Pop: 0.2, Variants: []string{`df["Cabin"] = df["Cabin"].fillna("Unknown")`}},
			4: {Phase: 2, Pop: 0.07, Rare: true, Variants: []string{`df = df.dropna()`}},
			5: {Phase: 2, Pop: 0.1, Variants: []string{`df = df.drop_duplicates()`}},
			6: {Phase: 3, Pop: 0.22, Variants: []string{
				`df = df[df["Fare"] < 300]`,
				`df = df[df["Fare"] < 500]`,
			}},
			7:  {Phase: 3, Pop: 0.09, Rare: true, Variants: []string{`df = df[df["Age"] < 80]`}},
			8:  {Phase: 3, Pop: 0.05, Rare: true, Variants: []string{`df = df[df["Embarked"] == "S"]`}},
			9:  {Phase: 3, Pop: 0.12, Variants: []string{`df = df[df["Fare"] > 0]`}},
			10: {Phase: 4, Pop: 0.38, Variants: []string{`df["FamilySize"] = df["SibSp"] + df["Parch"] + 1`}},
			11: {Phase: 4, Pop: 0.18, Requires: []int{10}, Variants: []string{`df["IsAlone"] = np.where(df["FamilySize"] == 1, 1, 0)`}},
			12: {Phase: 4, Pop: 0.22, Variants: []string{`df["Fare"] = np.log1p(df["Fare"])`}},
			13: {Phase: 4, Pop: 0.52, Variants: []string{`df["Sex"] = df["Sex"].map({"male": 0, "female": 1})`}},
			14: {Phase: 4, Pop: 0.12, Rare: true, Variants: []string{`df["AgeBin"] = pd.cut(df["Age"], 5)`}},
			15: {Phase: 4, Pop: 0.14, Variants: []string{`df["FareScaled"] = (df["Fare"] - df["Fare"].min()) / (df["Fare"].max() - df["Fare"].min())`}},
			16: {Phase: 4, Pop: 0.2, Variants: []string{`df["Embarked"] = df["Embarked"].map({"S": 0, "C": 1, "Q": 2})`}},
			17: {Phase: 4, Pop: 0.15, Variants: []string{`df["Child"] = np.where(df["Age"] < 16, 1, 0)`}},
			18: {Phase: 4, Pop: 0.12, Variants: []string{`df["FareBin"] = pd.qcut(df["Fare"], 4)`}},
			19: {Phase: 4, Pop: 0.1, Variants: []string{`df["AgeClass"] = df["Age"] * df["Pclass"]`}},
			20: {Phase: 4, Pop: 0.08, Rare: true, Variants: []string{`df["NameLen"] = df["Name"].str.len()`}},
			21: {Phase: 4, Pop: 0.06, Rare: true, Variants: []string{`df["FarePerPerson"] = df["Fare"] / (df["SibSp"] + df["Parch"] + 1)`}},
			22: {Phase: 5, Pop: 0.68, Variants: []string{
				`df = df.drop(["Name", "Ticket", "Cabin"], axis=1)`,
				`df = df.drop(["Name", "Ticket"], axis=1)`,
			}},
			23: {Phase: 5, Pop: 0.3, Variants: []string{`df = df.drop("PassengerId", axis=1)`}},
			24: {Phase: 5, Pop: 0.6, Requires: []int{22}, Variants: []string{`df = pd.get_dummies(df)`}},
			25: {Phase: 6, Pop: 0.5, Variants: []string{`y = df["Survived"]`}},
			26: {Phase: 6, Pop: 0.45, Variants: []string{`X = df.drop("Survived", axis=1)`}},
			27: {Phase: 2, Pop: 0.12, Variants: []string{`df["SibSp"] = df["SibSp"].astype("int")`}},
			28: {Phase: 4, Pop: 0.07, Rare: true, Variants: []string{`df["Fare"] = df["Fare"].round()`}},
			29: {Phase: 3, Pop: 0.06, Rare: true, Variants: []string{`df = df[(df["Pclass"] == 1) | (df["Pclass"] == 2)]`}},
			30: {Phase: 2, Pop: 0.28, Variants: []string{`test = pd.read_csv("test.csv")`}},
			31: {Phase: 2, Pop: 0.2, Requires: []int{30}, Variants: []string{`test["Age"] = test["Age"].fillna(test["Age"].mean())`}},
			32: {Phase: 2, Pop: 0.12, Requires: []int{30}, Variants: []string{`test["Fare"] = test["Fare"].fillna(test["Fare"].median())`}},
		},
	}
}

func house() *Competition {
	return &Competition{
		Name:       "House",
		File:       "house.csv",
		Target:     "SalePrice",
		NumRows:    4300,
		NumScripts: 49,
		Schema: []ColSpec{
			{Name: "Id", Kind: ColInt, Min: 1, Max: 1500},
			{Name: "MSSubClass", Kind: ColInt, Min: 20, Max: 190},
			{Name: "LotFrontage", Kind: ColFloat, Min: 20, Max: 150, NullRate: 0.18},
			{Name: "LotArea", Kind: ColFloat, Min: 1500, Max: 50000, Skew: true, OutlierRate: 0.01, OutlierMin: 100000, OutlierMax: 200000},
			{Name: "OverallQual", Kind: ColInt, Min: 1, Max: 10},
			{Name: "OverallCond", Kind: ColInt, Min: 1, Max: 10},
			{Name: "YearBuilt", Kind: ColInt, Min: 1900, Max: 2010},
			{Name: "YearRemodAdd", Kind: ColInt, Min: 1950, Max: 2010},
			{Name: "TotalBsmtSF", Kind: ColFloat, Min: 0, Max: 2500, NullRate: 0.03},
			{Name: "FirstFlrSF", Kind: ColFloat, Min: 300, Max: 2500},
			{Name: "SecondFlrSF", Kind: ColFloat, Min: 0, Max: 1500},
			{Name: "GrLivArea", Kind: ColFloat, Min: 400, Max: 4000, OutlierRate: 0.02, OutlierMin: 4500, OutlierMax: 6000},
			{Name: "FullBath", Kind: ColInt, Min: 0, Max: 3},
			{Name: "HalfBath", Kind: ColInt, Min: 0, Max: 2},
			{Name: "BedroomAbvGr", Kind: ColInt, Min: 0, Max: 6},
			{Name: "TotRmsAbvGrd", Kind: ColInt, Min: 2, Max: 12},
			{Name: "Fireplaces", Kind: ColInt, Min: 0, Max: 3},
			{Name: "GarageCars", Kind: ColFloat, Min: 0, Max: 4, NullRate: 0.05},
			{Name: "GarageArea", Kind: ColFloat, Min: 0, Max: 1200, NullRate: 0.05},
			{Name: "WoodDeckSF", Kind: ColFloat, Min: 0, Max: 800},
			{Name: "OpenPorchSF", Kind: ColFloat, Min: 0, Max: 500},
			{Name: "PoolArea", Kind: ColFloat, Min: 0, Max: 700, Skew: true},
			{Name: "Neighborhood", Kind: ColCat, Cats: []string{"NAmes", "CollgCr", "OldTown", "Edwards", "Somerst", "Gilbert", "NridgHt", "Sawyer", "NWAmes", "SawyerW", "BrkSide", "Crawfor"}},
			{Name: "HouseStyle", Kind: ColCat, Cats: []string{"1Story", "2Story", "1.5Fin", "SLvl", "SFoyer", "2.5Unf"}},
			{Name: "ExterQual", Kind: ColCat, Cats: []string{"TA", "Gd", "Ex", "Fa"}},
			{Name: "KitchenQual", Kind: ColCat, Cats: []string{"TA", "Gd", "Ex", "Fa"}, NullRate: 0.04},
			{Name: "BsmtQual", Kind: ColCat, Cats: []string{"TA", "Gd", "Ex", "Fa", "Po"}, NullRate: 0.06},
			{Name: "SaleCondition", Kind: ColCat, Cats: []string{"Normal", "Partial", "Abnorml", "Family", "Alloca"}},
			{Name: "CentralAir", Kind: ColCat, Cats: []string{"Y", "N"}},
			{Name: "MSZoning", Kind: ColCat, Cats: []string{"RL", "RM", "FV", "RH", "C"}, NullRate: 0.01},
		},
		targetFn: func(v map[string]float64, rng *rand.Rand) int {
			score := v["OverallQual"]*0.5 + v["GrLivArea"]/1000 + v["GarageCars"]*0.3 + rng.NormFloat64()*0.8
			if score > 4.6 {
				return 1
			}
			return 0
		},
		Steps: []StepTemplate{
			0: {Phase: 2, Pop: 0.42, Variants: []string{
				`df["LotFrontage"] = df["LotFrontage"].fillna(df["LotFrontage"].median())`,
				`df["LotFrontage"] = df["LotFrontage"].fillna(df["LotFrontage"].mean())`,
			}},
			1: {Phase: 2, Pop: 0.35, Variants: []string{
				`df = df.fillna(df.mean())`,
				`df = df.fillna(df.median())`,
			}},
			2: {Phase: 2, Pop: 0.22, Variants: []string{`df["GarageArea"] = df["GarageArea"].fillna(0)`}},
			3: {Phase: 2, Pop: 0.2, Variants: []string{`df["GarageCars"] = df["GarageCars"].fillna(0)`}},
			4: {Phase: 2, Pop: 0.16, Variants: []string{`df["BsmtQual"] = df["BsmtQual"].fillna("NA")`}},
			5: {Phase: 2, Pop: 0.12, Variants: []string{`df["KitchenQual"] = df["KitchenQual"].fillna("TA")`}},
			6: {Phase: 2, Pop: 0.1, Variants: []string{`df["TotalBsmtSF"] = df["TotalBsmtSF"].fillna(0)`}},
			7: {Phase: 3, Pop: 0.45, Variants: []string{
				`df = df[df["GrLivArea"] < 4500]`,
				`df = df[df["GrLivArea"] < 4000]`,
			}},
			8:  {Phase: 3, Pop: 0.09, Rare: true, Variants: []string{`df = df[df["LotArea"] < 100000]`}},
			9:  {Phase: 3, Pop: 0.1, Variants: []string{`df = df[df["SaleCondition"] == "Normal"]`}},
			10: {Phase: 4, Pop: 0.3, Variants: []string{`df["TotalSF"] = df["TotalBsmtSF"] + df["GrLivArea"]`}},
			11: {Phase: 4, Pop: 0.18, Variants: []string{`df["Age"] = 2011 - df["YearBuilt"]`}},
			12: {Phase: 4, Pop: 0.15, Variants: []string{`df["TotalBath"] = df["FullBath"] + df["HalfBath"]`}},
			13: {Phase: 4, Pop: 0.14, Variants: []string{`df["HasPool"] = np.where(df["PoolArea"] > 0, 1, 0)`}},
			14: {Phase: 4, Pop: 0.12, Variants: []string{`df["Remodeled"] = np.where(df["YearRemodAdd"] > df["YearBuilt"], 1, 0)`}},
			15: {Phase: 4, Pop: 0.08, Rare: true, Variants: []string{`df["OverallQual_sq"] = df["OverallQual"] * df["OverallQual"]`}},
			16: {Phase: 4, Pop: 0.12, Variants: []string{`df["LotArea"] = np.log1p(df["LotArea"])`}},
			17: {Phase: 4, Pop: 0.1, Variants: []string{`df["PorchSF"] = df["OpenPorchSF"] + df["WoodDeckSF"]`}},
			18: {Phase: 5, Pop: 0.3, Variants: []string{`df = df.drop("Id", axis=1)`}},
			19: {Phase: 5, Pop: 0.55, Variants: []string{`df = pd.get_dummies(df)`}},
			20: {Phase: 6, Pop: 0.35, Variants: []string{`y = df["SalePrice"]`}},
			21: {Phase: 6, Pop: 0.3, Variants: []string{`X = df.drop("SalePrice", axis=1)`}},
			22: {Phase: 4, Pop: 0.07, Rare: true, Variants: []string{`df["CondQual"] = df["OverallCond"] * df["OverallQual"]`}},
			23: {Phase: 3, Pop: 0.06, Rare: true, Variants: []string{`df = df[df["MSZoning"].isin(["RL", "RM"])]`}},
		},
	}
}

func nlp() *Competition {
	return &Competition{
		Name:       "NLP",
		File:       "tweets.csv",
		Target:     "target",
		NumRows:    22700,
		NumScripts: 24,
		Schema: []ColSpec{
			{Name: "id", Kind: ColInt, Min: 0, Max: 100000},
			{Name: "keyword", Kind: ColCat, NullRate: 0.05, Cats: []string{"fire", "flood", "earthquake", "storm", "crash", "attack", "explosion", "wildfire", "collapse", "emergency", "disaster", "panic"}},
			{Name: "location", Kind: ColText, Cardinality: 50, NullRate: 0.33},
			{Name: "text", Kind: ColText, Cardinality: 200},
			{Name: "followers", Kind: ColFloat, Min: 0, Max: 50000, Skew: true},
		},
		targetFn: func(v map[string]float64, rng *rand.Rand) int {
			score := v["followers"]/20000 + rng.NormFloat64()*0.7
			if score > 0.8 {
				return 1
			}
			return 0
		},
		Steps: []StepTemplate{
			0: {Phase: 2, Pop: 0.5, Variants: []string{
				`df["keyword"] = df["keyword"].fillna("none")`,
				`df["keyword"] = df["keyword"].fillna("unknown")`,
			}},
			1: {Phase: 2, Pop: 0.4, Variants: []string{`df["location"] = df["location"].fillna("unknown")`}},
			2: {Phase: 4, Pop: 0.6, Variants: []string{`df["text"] = df["text"].str.lower()`}},
			3: {Phase: 4, Pop: 0.32, Variants: []string{`df["text_len"] = df["text"].str.len()`}},
			4: {Phase: 4, Pop: 0.09, Rare: true, Variants: []string{`df["text"] = df["text"].str.strip()`}},
			5: {Phase: 4, Pop: 0.15, Variants: []string{`df["keyword"] = df["keyword"].str.lower()`}},
			6: {Phase: 4, Pop: 0.12, Variants: []string{`df["log_followers"] = np.log1p(df["followers"])`}},
			7: {Phase: 5, Pop: 0.5, Variants: []string{
				`df = df.drop(["location", "text", "id"], axis=1)`,
				`df = df.drop(["location", "text"], axis=1)`,
			}},
			8:  {Phase: 5, Pop: 0.4, Requires: []int{7}, Variants: []string{`df = pd.get_dummies(df)`}},
			9:  {Phase: 6, Pop: 0.4, Variants: []string{`y = df["target"]`}},
			10: {Phase: 6, Pop: 0.35, Variants: []string{`X = df.drop("target", axis=1)`}},
		},
	}
}

func spaceship() *Competition {
	return &Competition{
		Name:       "Spaceship",
		File:       "spaceship.csv",
		Target:     "Transported",
		NumRows:    17200,
		NumScripts: 38,
		Schema: []ColSpec{
			{Name: "PassengerId", Kind: ColText, Cardinality: 400},
			{Name: "HomePlanet", Kind: ColCat, Cats: []string{"Earth", "Europa", "Mars"}, NullRate: 0.02},
			{Name: "CryoSleep", Kind: ColCat, Cats: []string{"False", "True"}, NullRate: 0.02},
			{Name: "Cabin", Kind: ColText, Cardinality: 60, NullRate: 0.02},
			{Name: "Destination", Kind: ColCat, Cats: []string{"TRAPPIST-1e", "55 Cancri e", "PSO J318.5-22"}, NullRate: 0.02},
			{Name: "Age", Kind: ColFloat, Min: 1, Max: 80, NullRate: 0.05},
			{Name: "VIP", Kind: ColCat, Cats: []string{"False", "True"}, NullRate: 0.02},
			{Name: "RoomService", Kind: ColFloat, Min: 0, Max: 9000, Skew: true, NullRate: 0.05},
			{Name: "FoodCourt", Kind: ColFloat, Min: 0, Max: 9000, Skew: true, NullRate: 0.05},
			{Name: "ShoppingMall", Kind: ColFloat, Min: 0, Max: 9000, Skew: true, NullRate: 0.05},
			{Name: "Spa", Kind: ColFloat, Min: 0, Max: 9000, Skew: true, NullRate: 0.05},
			{Name: "VRDeck", Kind: ColFloat, Min: 0, Max: 9000, Skew: true, NullRate: 0.05},
		},
		targetFn: func(v map[string]float64, rng *rand.Rand) int {
			spend := v["RoomService"] + v["Spa"] + v["VRDeck"]
			score := -spend/4000 + v["Age"]/60 + rng.NormFloat64()*0.5
			if score > 0.1 {
				return 1
			}
			return 0
		},
		Steps: []StepTemplate{
			0: {Phase: 2, Pop: 0.42, Variants: []string{
				`df["Age"] = df["Age"].fillna(df["Age"].mean())`,
				`df["Age"] = df["Age"].fillna(df["Age"].median())`,
			}},
			1:  {Phase: 2, Pop: 0.36, Variants: []string{`df["RoomService"] = df["RoomService"].fillna(0)`}},
			2:  {Phase: 2, Pop: 0.32, Variants: []string{`df["Spa"] = df["Spa"].fillna(0)`}},
			3:  {Phase: 2, Pop: 0.28, Variants: []string{`df["FoodCourt"] = df["FoodCourt"].fillna(0)`}},
			4:  {Phase: 2, Pop: 0.25, Variants: []string{`df["VRDeck"] = df["VRDeck"].fillna(0)`}},
			5:  {Phase: 2, Pop: 0.22, Variants: []string{`df["ShoppingMall"] = df["ShoppingMall"].fillna(0)`}},
			6:  {Phase: 2, Pop: 0.2, Variants: []string{`df = df.fillna(df.mean())`}},
			7:  {Phase: 2, Pop: 0.18, Variants: []string{`df["HomePlanet"] = df["HomePlanet"].fillna("Earth")`}},
			8:  {Phase: 2, Pop: 0.15, Variants: []string{`df["CryoSleep"] = df["CryoSleep"].fillna("False")`}},
			9:  {Phase: 3, Pop: 0.08, Rare: true, Variants: []string{`df = df[df["Age"] < 80]`}},
			10: {Phase: 4, Pop: 0.38, Variants: []string{`df["TotalSpend"] = df["RoomService"] + df["FoodCourt"] + df["ShoppingMall"] + df["Spa"] + df["VRDeck"]`}},
			11: {Phase: 4, Pop: 0.08, Rare: true, Requires: []int{10}, Variants: []string{`df["LogSpend"] = np.log1p(df["TotalSpend"])`}},
			12: {Phase: 4, Pop: 0.2, Variants: []string{`df["CryoSleep"] = df["CryoSleep"].map({"False": 0, "True": 1})`}},
			13: {Phase: 4, Pop: 0.15, Variants: []string{`df["VIP"] = df["VIP"].map({"False": 0, "True": 1})`}},
			14: {Phase: 4, Pop: 0.14, Requires: []int{10}, Variants: []string{`df["NoSpend"] = np.where(df["TotalSpend"] == 0, 1, 0)`}},
			15: {Phase: 4, Pop: 0.1, Variants: []string{`df["IsChild"] = np.where(df["Age"] < 13, 1, 0)`}},
			16: {Phase: 5, Pop: 0.6, Variants: []string{`df = df.drop(["PassengerId", "Cabin"], axis=1)`}},
			17: {Phase: 5, Pop: 0.55, Requires: []int{16}, Variants: []string{`df = pd.get_dummies(df)`}},
			18: {Phase: 6, Pop: 0.4, Variants: []string{`y = df["Transported"]`}},
			19: {Phase: 6, Pop: 0.35, Variants: []string{`X = df.drop("Transported", axis=1)`}},
			20: {Phase: 4, Pop: 0.07, Rare: true, Variants: []string{`df["SpendPerYear"] = df["RoomService"] / df["Age"]`}},
		},
	}
}

func medical() *Competition {
	return &Competition{
		Name:       "Medical",
		File:       "diabetes.csv",
		Target:     "Outcome",
		NumRows:    700,
		NumScripts: 47,
		Schema: []ColSpec{
			{Name: "Pregnancies", Kind: ColInt, Min: 0, Max: 12},
			{Name: "Glucose", Kind: ColFloat, Min: 70, Max: 180, NullRate: 0.08},
			{Name: "BloodPressure", Kind: ColFloat, Min: 50, Max: 110, NullRate: 0.04},
			{Name: "SkinThickness", Kind: ColFloat, Min: 5, Max: 50, OutlierRate: 0.05, OutlierMin: 85, OutlierMax: 99},
			{Name: "Insulin", Kind: ColFloat, Min: 15, Max: 300, Skew: true, NullRate: 0.25},
			{Name: "BMI", Kind: ColFloat, Min: 18, Max: 45, NullRate: 0.03},
			{Name: "DiabetesPedigreeFunction", Kind: ColFloat, Min: 0.08, Max: 2, Skew: true},
			{Name: "Age", Kind: ColInt, Min: 18, Max: 70},
		},
		targetFn: func(v map[string]float64, rng *rand.Rand) int {
			score := (v["Glucose"]-120)/30 + (v["BMI"]-30)/10 + rng.NormFloat64()*0.5
			if score > 0 {
				return 1
			}
			return 0
		},
		Steps: []StepTemplate{
			0: {Phase: 2, Pop: 0.55, Variants: []string{
				`df = df.fillna(df.mean())`,
				`df = df.fillna(df.median())`,
			}},
			1: {Phase: 2, Pop: 0.16, Variants: []string{`df["Glucose"] = df["Glucose"].fillna(df["Glucose"].mean())`}},
			2: {Phase: 2, Pop: 0.12, Variants: []string{`df["Insulin"] = df["Insulin"].fillna(df["Insulin"].median())`}},
			3: {Phase: 3, Pop: 0.5, Variants: []string{
				`df = df[df["SkinThickness"] < 80]`,
				`df = df[df["SkinThickness"] < 100]`,
			}},
			4:  {Phase: 3, Pop: 0.16, Variants: []string{`df = df[df["BMI"] > 0]`}},
			5:  {Phase: 3, Pop: 0.1, Rare: true, Variants: []string{`df = df[df["Insulin"] < 400]`}},
			6:  {Phase: 3, Pop: 0.08, Rare: true, Variants: []string{`df = df[df["BloodPressure"] > 0]`}},
			7:  {Phase: 4, Pop: 0.1, Rare: true, Variants: []string{`df["BMI_Age"] = df["BMI"] * df["Age"]`}},
			8:  {Phase: 4, Pop: 0.14, Variants: []string{`df["GlucoseScaled"] = (df["Glucose"] - df["Glucose"].min()) / (df["Glucose"].max() - df["Glucose"].min())`}},
			9:  {Phase: 4, Pop: 0.1, Variants: []string{`df["Overweight"] = np.where(df["BMI"] > 30, 1, 0)`}},
			10: {Phase: 4, Pop: 0.08, Rare: true, Variants: []string{`df["AgeBin"] = pd.cut(df["Age"], 4)`}},
			11: {Phase: 5, Pop: 0.6, Variants: []string{`df = pd.get_dummies(df)`}},
			12: {Phase: 6, Pop: 0.45, Variants: []string{`y = df["Outcome"]`}},
			13: {Phase: 6, Pop: 0.4, Variants: []string{`X = df.drop("Outcome", axis=1)`}},
			14: {Phase: 2, Pop: 0.08, Rare: true, Variants: []string{`df = df.dropna()`}},
		},
	}
}

func sales() *Competition {
	return &Competition{
		Name:       "Sales",
		File:       "sales.csv",
		Target:     "HighSales",
		NumRows:    744300,
		NumScripts: 26,
		Schema: []ColSpec{
			{Name: "date", Kind: ColDate, Min: 2013, Max: 2015},
			{Name: "date_block_num", Kind: ColInt, Min: 0, Max: 33},
			{Name: "shop_id", Kind: ColInt, Min: 0, Max: 59},
			{Name: "item_id", Kind: ColInt, Min: 0, Max: 1000},
			{Name: "item_price", Kind: ColFloat, Min: 0.5, Max: 30000, Skew: true, OutlierRate: 0.01, OutlierMin: -10, OutlierMax: 0},
			{Name: "item_cnt_day", Kind: ColFloat, Min: -1, Max: 20, OutlierRate: 0.005, OutlierMin: 500, OutlierMax: 2000},
		},
		targetFn: func(v map[string]float64, rng *rand.Rand) int {
			score := v["item_cnt_day"]/8 - v["item_price"]/20000 + rng.NormFloat64()*0.4
			if score > 0.5 {
				return 1
			}
			return 0
		},
		Extra: []ExtraFile{
			{
				Name:    "items.csv",
				Rows:    1001,
				NoScale: true,
				Schema: []ColSpec{
					{Name: "item_id", Kind: ColSeq, Min: 0},
					{Name: "item_category_id", Kind: ColInt, Min: 0, Max: 83},
					{Name: "item_name", Kind: ColText, Cardinality: 400},
				},
			},
		},
		Steps: []StepTemplate{
			0: {Phase: 3, Pop: 0.6, Variants: []string{`df = df[df["item_price"] > 0]`}},
			1: {Phase: 3, Pop: 0.36, Variants: []string{
				`df = df[df["item_price"] < 100000]`,
				`df = df[df["item_price"] < 50000]`,
			}},
			2: {Phase: 3, Pop: 0.42, Variants: []string{
				`df = df[df["item_cnt_day"] < 1000]`,
				`df = df[df["item_cnt_day"] < 1500]`,
			}},
			3:  {Phase: 3, Pop: 0.12, Variants: []string{`df = df[df["item_cnt_day"] > 0]`}},
			4:  {Phase: 4, Pop: 0.26, Variants: []string{`df["item_price"] = np.log1p(df["item_price"])`}},
			5:  {Phase: 4, Pop: 0.22, Variants: []string{`df["item_cnt_day"] = df["item_cnt_day"].clip(0, 20)`}},
			6:  {Phase: 4, Pop: 0.12, Rare: true, Variants: []string{`df["revenue"] = df["item_price"] * df["item_cnt_day"]`}},
			7:  {Phase: 2, Pop: 0.1, Variants: []string{`df = df.drop_duplicates()`}},
			8:  {Phase: 6, Pop: 0.3, Variants: []string{`y = df["HighSales"]`}},
			9:  {Phase: 6, Pop: 0.25, Variants: []string{`X = df.drop("HighSales", axis=1)`}},
			10: {Phase: 2, Pop: 0.35, Variants: []string{`items = pd.read_csv("items.csv")`}},
			13: {Phase: 2, Pop: 0.4, Variants: []string{`df["date"] = pd.to_datetime(df["date"])`}},
			14: {Phase: 4, Pop: 0.25, Requires: []int{13}, Variants: []string{`df["month"] = df["date"].dt.month`}},
			15: {Phase: 4, Pop: 0.15, Requires: []int{13}, Variants: []string{`df["year"] = df["date"].dt.year`}},
			16: {Phase: 5, Pop: 0.3, Requires: []int{13}, Variants: []string{`df = df.drop("date", axis=1)`}},
			11: {Phase: 2, Pop: 0.3, Requires: []int{10}, Variants: []string{
				`df = df.merge(items, on="item_id")`,
				`df = pd.merge(df, items, on="item_id", how="left")`,
			}},
			12: {Phase: 5, Pop: 0.2, Requires: []int{10, 11}, Variants: []string{`df = df.drop("item_name", axis=1)`}},
		},
	}
}
