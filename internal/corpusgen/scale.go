package corpusgen

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"lucidscript/internal/script"
)

// ScaleConfig drives GenerateScaled, the large-corpus generator behind the
// registry's curation benchmarks and soak tests (10⁴–10⁵ scripts).
type ScaleConfig struct {
	// Seed drives all randomness; a given (competition, seed, index) is
	// bit-reproducible and independent of NumScripts.
	Seed int64
	// NumScripts is the corpus size (required, positive).
	NumScripts int
	// MinimalRatio and ImputeSplitRatio set the archetype mix: the
	// probability a script is a minimal splitter or an impute-and-split
	// (full pipeline otherwise). Zero means the generator's default mix
	// (0.18 / 0.20); a negative value disables the archetype entirely.
	MinimalRatio     float64
	ImputeSplitRatio float64
}

func (c *ScaleConfig) defaults() error {
	if c.NumScripts <= 0 {
		return fmt.Errorf("corpusgen: ScaleConfig.NumScripts must be positive, got %d", c.NumScripts)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MinimalRatio == 0 {
		c.MinimalRatio = defaultMinimalRatio
	} else if c.MinimalRatio < 0 {
		c.MinimalRatio = 0
	}
	if c.ImputeSplitRatio == 0 {
		c.ImputeSplitRatio = defaultImputeSplitRatio
	} else if c.ImputeSplitRatio < 0 {
		c.ImputeSplitRatio = 0
	}
	if c.MinimalRatio+c.ImputeSplitRatio > 1 {
		return fmt.Errorf("corpusgen: archetype ratios sum to %v > 1",
			c.MinimalRatio+c.ImputeSplitRatio)
	}
	return nil
}

// scriptRNG derives script i's private generator. Unlike Generate's single
// sequential rng, each script owns an independently seeded stream, which is
// what makes the corpus prefix-stable: the first 10⁴ scripts of a
// 10⁵-script corpus are bit-identical to a 10⁴-script corpus of the same
// seed, so incremental-growth experiments compare like with like.
func (c *Competition) scriptRNG(seed int64, i int) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(c.Name))
	mixed := seed*0x9E3779B1 + int64(i)*0x85EBCA77 + int64(h.Sum64()&0x7FFFFFFF)
	return rand.New(rand.NewSource(mixed))
}

// GenerateScaled synthesizes a large script corpus for the competition —
// scripts only, no dataset (pair it with Generate's sources when execution
// is needed). Stable under re-run and prefix-stable across sizes; see
// ScaleConfig and scriptRNG.
func (c *Competition) GenerateScaled(cfg ScaleConfig) ([]GeneratedScript, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	scripts := make([]GeneratedScript, 0, cfg.NumScripts)
	for i := 0; i < cfg.NumScripts; i++ {
		gs, err := c.generateScriptMix(c.scriptRNG(cfg.Seed, i), cfg.MinimalRatio, cfg.ImputeSplitRatio)
		if err != nil {
			return nil, fmt.Errorf("corpusgen: %s scaled script %d: %w", c.Name, i, err)
		}
		scripts = append(scripts, gs)
	}
	return scripts, nil
}

// ScaledID names scaled script i for corpus registries — stable across
// runs and corpus sizes, like the script itself.
func (c *Competition) ScaledID(i int) string {
	return fmt.Sprintf("%s-%06d", c.Name, i)
}

// ScaledScriptsOnly extracts the bare scripts.
func ScaledScriptsOnly(gs []GeneratedScript) []*script.Script {
	out := make([]*script.Script, len(gs))
	for i, g := range gs {
		out[i] = g.Script
	}
	return out
}
