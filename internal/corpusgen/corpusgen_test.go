package corpusgen

import (
	"testing"

	"lucidscript/internal/dag"
	"lucidscript/internal/entropy"
	"lucidscript/internal/interp"
)

func TestNamesAndGet(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		c, err := Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if c.Name != n {
			t.Fatalf("Get(%q).Name = %q", n, c.Name)
		}
	}
	if _, err := Get("Nope"); err == nil {
		t.Fatal("unknown competition should error")
	}
	if len(All()) != 6 {
		t.Fatal("All should return 6")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c, _ := Get("Medical")
	a, err := c.Generate(GenOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Generate(GenOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := a.Sources[c.File], b.Sources[c.File]
	if fa.NumRows() != fb.NumRows() {
		t.Fatal("row counts differ")
	}
	for i := 0; i < fa.NumRows(); i += 50 {
		if fa.RowString(i) != fb.RowString(i) {
			t.Fatal("data not deterministic")
		}
	}
	for i := range a.Scripts {
		if a.Scripts[i].Script.Source() != b.Scripts[i].Script.Source() {
			t.Fatal("scripts not deterministic")
		}
		if a.Scripts[i].Votes != b.Scripts[i].Votes {
			t.Fatal("votes not deterministic")
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	c, _ := Get("Medical")
	a, _ := c.Generate(GenOptions{Seed: 5})
	b, _ := c.Generate(GenOptions{Seed: 6})
	same := true
	for i := range a.Scripts {
		if a.Scripts[i].Script.Source() != b.Scripts[i].Script.Source() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestAllCompetitionScriptsExecute(t *testing.T) {
	for _, c := range All() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			g, err := c.Generate(GenOptions{Seed: 3, RowScale: 0.02, MinRows: 300})
			if err != nil {
				t.Fatal(err)
			}
			if len(g.Scripts) != c.NumScripts {
				t.Fatalf("scripts = %d, want %d", len(g.Scripts), c.NumScripts)
			}
			for i, gs := range g.Scripts {
				if err := interp.CheckExecutes(gs.Script, g.Sources, interp.Options{Seed: 1}); err != nil {
					t.Fatalf("script %d does not execute: %v\n%s", i, err, gs.Script.Source())
				}
			}
		})
	}
}

func TestGeneratedDataShape(t *testing.T) {
	c, _ := Get("Medical")
	g, err := c.Generate(GenOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := g.Sources["diabetes.csv"]
	if f.NumRows() != 700 {
		t.Fatalf("rows = %d, want 700 (full scale)", f.NumRows())
	}
	if f.NumCols() != 9 {
		t.Fatalf("cols = %d, want 9 (8 features + Outcome)", f.NumCols())
	}
	out, _ := f.Column("Outcome")
	ones := 0
	for i := 0; i < out.Len(); i++ {
		if out.Float(i) == 1 {
			ones++
		}
	}
	if ones < 70 || ones > 630 {
		t.Fatalf("label balance = %d/%d", ones, out.Len())
	}
	skin, _ := f.Column("SkinThickness")
	if skin.Max() < 80 {
		t.Fatal("expected SkinThickness outliers above 80")
	}
	glucose, _ := f.Column("Glucose")
	if glucose.NullCount() == 0 {
		t.Fatal("expected nulls in Glucose")
	}
}

func TestRowScaleAndMinRows(t *testing.T) {
	c, _ := Get("Sales")
	g, err := c.Generate(GenOptions{Seed: 2, RowScale: 0.001, MinRows: 500})
	if err != nil {
		t.Fatal(err)
	}
	rows := g.Sources[c.File].NumRows()
	if rows != 744 {
		t.Fatalf("rows = %d, want 744 (0.001 × 744300)", rows)
	}
	g2, _ := c.Generate(GenOptions{Seed: 2, RowScale: 0.0001, MinRows: 500})
	if g2.Sources[c.File].NumRows() != 500 {
		t.Fatalf("MinRows floor not applied: %d", g2.Sources[c.File].NumRows())
	}
}

func TestNumScriptsOverride(t *testing.T) {
	c, _ := Get("NLP")
	g, err := c.Generate(GenOptions{Seed: 2, RowScale: 0.02, NumScripts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Scripts) != 5 {
		t.Fatalf("scripts = %d", len(g.Scripts))
	}
}

func TestCorpusStepPopularity(t *testing.T) {
	c, _ := Get("Medical")
	g, err := c.Generate(GenOptions{Seed: 7, RowScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, gs := range g.Scripts {
		seen := map[string]bool{}
		for _, st := range gs.Script.Stmts {
			k := st.Source()
			if !seen[k] {
				counts[k]++
				seen[k] = true
			}
		}
	}
	mean := counts["df = df.fillna(df.mean())"]
	median := counts["df = df.fillna(df.median())"]
	if mean <= median {
		t.Fatalf("mean fill (%d) should be more common than median fill (%d)", mean, median)
	}
	skin := counts[`df = df[df["SkinThickness"] < 80]`]
	if skin == 0 {
		t.Fatal("outlier filter missing from corpus")
	}
}

func TestLowRankedAndSample(t *testing.T) {
	c, _ := Get("Medical")
	g, _ := c.Generate(GenOptions{Seed: 7, RowScale: 0.5})
	low := g.LowRanked(0.3)
	want := int(float64(len(g.Scripts)) * 0.3)
	if len(low) != want {
		t.Fatalf("low-ranked = %d, want %d", len(low), want)
	}
	sampled := g.Sample(10, 1)
	if len(sampled) != 10 {
		t.Fatalf("sample = %d", len(sampled))
	}
	all := g.Sample(1000, 1)
	if len(all) != len(g.Scripts) {
		t.Fatal("oversample should return all")
	}
}

func TestVotesTrackQuality(t *testing.T) {
	c, _ := Get("Titanic")
	g, _ := c.Generate(GenOptions{Seed: 4, RowScale: 0.1})
	// Votes are quality plus bounded noise, so the mean quality of the
	// bottom-30%-by-votes slice must sit below the overall mean.
	idx := make([]int, len(g.Scripts))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && g.Scripts[idx[j]].Votes < g.Scripts[idx[j-1]].Votes; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	n := int(float64(len(idx)) * 0.3)
	lowQ, allQ := 0.0, 0.0
	for i, k := range idx {
		if i < n {
			lowQ += g.Scripts[k].Quality
		}
		allQ += g.Scripts[k].Quality
	}
	if lowQ/float64(n) >= allQ/float64(len(idx)) {
		t.Fatalf("bottom-by-votes mean quality %.2f should be below overall %.2f",
			lowQ/float64(n), allQ/float64(len(idx)))
	}
}

func TestTable3ShapeOrdering(t *testing.T) {
	// Titanic should have the richest vocabulary and NLP the smallest,
	// mirroring Table 3's ordering.
	vocabSize := func(name string) int {
		c, _ := Get(name)
		g, err := c.Generate(GenOptions{Seed: 3, RowScale: 0.01, MinRows: 250})
		if err != nil {
			t.Fatal(err)
		}
		var graphs []*dag.Graph
		for _, s := range g.ScriptsOnly() {
			graphs = append(graphs, dag.Build(s))
		}
		return entropy.BuildVocab(graphs).NumUniqueEdges()
	}
	ti := vocabSize("Titanic")
	nl := vocabSize("NLP")
	if ti <= nl {
		t.Fatalf("Titanic vocab (%d) should exceed NLP (%d)", ti, nl)
	}
}
