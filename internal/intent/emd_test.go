package intent

import (
	"math"
	"testing"
	"testing/quick"

	"lucidscript/internal/frame"
)

func TestEMDIdentical(t *testing.T) {
	f := mustCSV(t, "a,b\n1,10\n2,20\n3,30\n")
	d, err := EMD(f, f.Clone())
	if err != nil || d != 0 {
		t.Fatalf("EMD = %v err=%v", d, err)
	}
}

func TestEMDShiftedDistribution(t *testing.T) {
	a := mustCSV(t, "a\n0\n10\n")
	b := mustCSV(t, "a\n5\n15\n")
	d, err := EMD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Shift of 5 over a range of 10 → normalized distance 0.5.
	if math.Abs(d-0.5) > 1e-9 {
		t.Fatalf("EMD = %v, want 0.5", d)
	}
}

func TestEMDColumnAddedOrRemoved(t *testing.T) {
	a := mustCSV(t, "a\n1\n2\n")
	b := mustCSV(t, "a,extra\n1,9\n2,9\n")
	d, err := EMD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Column `a` identical (0) + column `extra` missing from a (1) → 0.5.
	if math.Abs(d-0.5) > 1e-9 {
		t.Fatalf("EMD = %v, want 0.5", d)
	}
}

func TestEMDIgnoresStringColumns(t *testing.T) {
	a := mustCSV(t, "a,s\n1,x\n2,y\n")
	b := mustCSV(t, "a,s\n1,completely\n2,different\n")
	d, err := EMD(a, b)
	if err != nil || d != 0 {
		t.Fatalf("EMD over string change = %v", d)
	}
}

func TestEMDNil(t *testing.T) {
	f := mustCSV(t, "a\n1\n")
	if _, err := EMD(nil, f); err == nil {
		t.Fatal("nil should error")
	}
}

func TestEMDEmptySides(t *testing.T) {
	a := mustCSV(t, "a\n1\n").Head(0)
	b := mustCSV(t, "a\n1\n2\n")
	d, err := EMD(a, b)
	if err != nil || d != 1 {
		t.Fatalf("empty-vs-nonempty EMD = %v", d)
	}
	d2, _ := EMD(a, a.Clone())
	if d2 != 0 {
		t.Fatalf("empty-vs-empty EMD = %v", d2)
	}
}

func TestEMDConstraint(t *testing.T) {
	a := mustCSV(t, "a\n0\n10\n")
	b := mustCSV(t, "a\n5\n15\n")
	c := Constraint{Measure: MeasureEMD, Tau: 0.1}
	ok, val, err := c.Satisfied(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("EMD %v should violate τ=0.1", val)
	}
	c.Tau = 0.6
	ok, _, _ = c.Satisfied(a, b)
	if !ok {
		t.Fatal("EMD 0.5 should satisfy τ=0.6")
	}
}

func TestRowJaccardConstraint(t *testing.T) {
	a := mustCSV(t, "a\n1\n2\n3\n4\n5\n")
	b := mustCSV(t, "a\n1\n2\n3\n4\n")
	c := Constraint{Measure: MeasureRowJaccard, Tau: 0.9}
	ok, val, err := c.Satisfied(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ok || math.Abs(val-0.8) > 1e-9 {
		t.Fatalf("row jaccard = %v ok=%v", val, ok)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 10}
	if q := quantile(sorted, 0.5); math.Abs(q-5) > 1e-9 {
		t.Fatalf("quantile = %v", q)
	}
	if quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
	if quantile(sorted, 1) != 10 {
		t.Fatal("q=1")
	}
}

// Property: EMD is symmetric up to range normalization for same-range
// inputs, non-negative, and ≤ 1.
func TestEMDRangeProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		if len(xs) == 0 || len(ys) == 0 {
			return true
		}
		a := frameFromBytes(t, xs)
		b := frameFromBytes(t, ys)
		d, err := EMD(a, b)
		if err != nil {
			return false
		}
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func frameFromBytes(t *testing.T, xs []uint8) *frame.Frame {
	vals := make([]float64, len(xs))
	for i, x := range xs {
		vals[i] = float64(x)
	}
	f, err := frame.FromSeries(frame.NewFloatSeries("a", vals))
	if err != nil {
		t.Fatal(err)
	}
	return f
}
