package intent

import (
	"math"
	"sort"

	"lucidscript/internal/frame"
)

// EMD computes a normalized earth-mover distance between the two output
// datasets, the additional intent measure the paper proposes in Section 8.
// For every numeric column present in both frames the 1-D Wasserstein-1
// distance between the column's value distributions is computed and
// normalized by the original column's value range; columns present in only
// one frame contribute the maximum penalty 1. The result is the mean over
// the union of numeric columns, in [0, 1] for typical data (distances
// beyond one range-width clamp to 1).
func EMD(orig, modified *frame.Frame) (float64, error) {
	if orig == nil || modified == nil {
		return 0, ErrNoOutput
	}
	origCols := numericColumns(orig)
	modCols := numericColumns(modified)
	union := map[string]bool{}
	for name := range origCols {
		union[name] = true
	}
	for name := range modCols {
		union[name] = true
	}
	if len(union) == 0 {
		return 0, nil
	}
	total := 0.0
	for name := range union {
		a, okA := origCols[name]
		b, okB := modCols[name]
		if !okA || !okB {
			total++ // column added or removed: maximal distributional change
			continue
		}
		total += columnEMD(a, b)
	}
	return total / float64(len(union)), nil
}

func numericColumns(f *frame.Frame) map[string]*frame.Series {
	out := map[string]*frame.Series{}
	for i := 0; i < f.NumCols(); i++ {
		c := f.ColumnAt(i)
		if c.IsNumeric() || c.Kind() == frame.Bool {
			out[c.Name()] = c
		}
	}
	return out
}

// columnEMD is the 1-D Wasserstein-1 distance between the non-null values
// of two series, normalized by the first series' value range and clamped
// to [0,1]. Empty sides count as distance 1 unless both are empty.
func columnEMD(a, b *frame.Series) float64 {
	av := sortedValues(a)
	bv := sortedValues(b)
	if len(av) == 0 && len(bv) == 0 {
		return 0
	}
	if len(av) == 0 || len(bv) == 0 {
		return 1
	}
	span := av[len(av)-1] - av[0]
	if span == 0 {
		span = 1
	}
	// W1 between empirical distributions via quantile-function integral:
	// sample both at max(len(av), len(bv)) quantiles.
	n := len(av)
	if len(bv) > n {
		n = len(bv)
	}
	acc := 0.0
	for i := 0; i < n; i++ {
		q := (float64(i) + 0.5) / float64(n)
		acc += math.Abs(quantile(av, q) - quantile(bv, q))
	}
	d := acc / float64(n) / span
	if d > 1 {
		d = 1
	}
	return d
}

func sortedValues(s *frame.Series) []float64 {
	out := make([]float64, 0, s.Len())
	for i := 0; i < s.Len(); i++ {
		if !s.IsValid(i) {
			continue
		}
		v := s.Float(i)
		if !math.IsNaN(v) {
			out = append(out, v)
		}
	}
	sort.Float64s(out)
	return out
}

// quantile evaluates the empirical quantile function of sorted values.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
