// Package intent implements the paper's user-intent measures (Section 2.1):
// the table Jaccard similarity Δ_J between the output datasets of the input
// and modified scripts, and the model-performance change Δ_M measured on a
// downstream classifier trained on each output dataset.
package intent

import (
	"errors"
	"fmt"
	"math"

	"lucidscript/internal/frame"
	"lucidscript/internal/ml"
)

// ErrNoOutput is returned when a script produced no output dataset.
var ErrNoOutput = errors.New("intent: script produced no output dataset")

// TableJaccard returns |A ∩ B| / |A ∪ B| over the distinct cell values of
// the two frames, following the paper's Example 2.1 (the output datasets
// are compared as sets of values, e.g. {"benign", "Benign", "High Risk",
// "High risk", "high risk"} vs {"benign", "high risk"} → 2/5). Comparing
// value sets rather than rows means feature additions whose values already
// occur (one-hot 0/1 columns, dummies) barely move the measure, matching
// the paper's observation that τ_J = 0.9 still admits substantial
// standardization. Null cells contribute a distinct <null> token. Two empty
// frames are identical (1.0).
func TableJaccard(a, b *frame.Frame) (float64, error) {
	if a == nil || b == nil {
		return 0, ErrNoOutput
	}
	sa := valueSet(a)
	sb := valueSet(b)
	inter, union := 0, len(sb)
	for v := range sa {
		if sb[v] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 1, nil
	}
	return float64(inter) / float64(union), nil
}

// valueSet collects the distinct cell values of a frame as strings.
func valueSet(f *frame.Frame) map[string]bool {
	set := make(map[string]bool)
	for j := 0; j < f.NumCols(); j++ {
		col := f.ColumnAt(j)
		for i := 0; i < col.Len(); i++ {
			if col.IsValid(i) {
				set[col.StringAt(i)] = true
			} else {
				set["<null>"] = true
			}
		}
	}
	return set
}

// RowJaccard returns |A ∩ B| / |A ∪ B| over the row multisets of the two
// frames — a stricter alternative measure the framework also supports.
// Rows compare by their canonical column-sorted rendering, so column
// reordering does not reduce similarity.
func RowJaccard(a, b *frame.Frame) (float64, error) {
	if a == nil || b == nil {
		return 0, ErrNoOutput
	}
	ca := rowCounts(a)
	cb := rowCounts(b)
	inter, union := 0, 0
	for k, na := range ca {
		nb := cb[k]
		inter += minInt(na, nb)
		union += maxInt(na, nb)
	}
	for k, nb := range cb {
		if _, seen := ca[k]; !seen {
			union += nb
		}
	}
	if union == 0 {
		return 1, nil
	}
	return float64(inter) / float64(union), nil
}

func rowCounts(f *frame.Frame) map[string]int {
	counts := make(map[string]int, f.NumRows())
	for _, key := range f.RowStrings() {
		counts[key]++
	}
	return counts
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ModelConfig configures the downstream model used by Δ_M.
type ModelConfig struct {
	// Target is the label column name in the output dataset.
	Target string
	// Seed drives the deterministic train/test split.
	Seed uint64
	// TestFrac is the held-out fraction (default 0.3).
	TestFrac float64
	// Protected names the protected-attribute column for MeasureFairness.
	Protected string
	// Epochs overrides logistic training epochs (default 120, enough for
	// the small corpus datasets while keeping constraint checks fast).
	Epochs int
}

func (c *ModelConfig) defaults() {
	if c.TestFrac == 0 {
		c.TestFrac = 0.3
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	if c.Epochs == 0 {
		c.Epochs = 120
	}
}

// ModelAccuracy trains the downstream classifier on the output dataset and
// returns 4-fold cross-validated accuracy (every row is tested exactly
// once, which keeps Δ_M dominated by genuine data changes rather than
// partition churn). The target column is binarized by comparing to its
// mean when it is not already 0/1. When the prepared dataset has no usable
// numeric features the majority baseline is used (a prepared table that
// destroys all features still has a defined accuracy).
func ModelAccuracy(out *frame.Frame, cfg ModelConfig) (float64, error) {
	if out == nil {
		return 0, ErrNoOutput
	}
	cfg.defaults()
	target, err := out.Column(cfg.Target)
	if err != nil {
		return 0, fmt.Errorf("intent: target column: %w", err)
	}
	x, _ := out.NumericMatrix(cfg.Target)
	y, err := binarize(target)
	if err != nil {
		return 0, err
	}
	if len(x) == 0 {
		return 0, fmt.Errorf("%w: no rows after preparation", ml.ErrNoData)
	}
	ds, err := ml.NewDataset(x, y)
	if err != nil {
		return 0, err
	}
	if ds.NumFeatures() == 0 {
		return ml.CrossValAccuracy(ds, 4, func(train *ml.Dataset) (ml.Classifier, error) {
			return ml.TrainMajority(train), nil
		})
	}
	return ml.CrossValAccuracy(ds, 4, func(train *ml.Dataset) (ml.Classifier, error) {
		return ml.TrainLogistic(train, ml.LogisticConfig{Epochs: cfg.Epochs})
	})
}

func binarize(target *frame.Series) ([]int, error) {
	n := target.Len()
	y := make([]int, n)
	if target.IsNumeric() || target.Kind() == frame.Bool {
		zeroOne := true
		for i := 0; i < n; i++ {
			v := target.Float(i)
			if math.IsNaN(v) {
				continue
			}
			if v != 0 && v != 1 {
				zeroOne = false
				break
			}
		}
		thr := 0.5
		if !zeroOne {
			thr = target.Mean()
		}
		for i := 0; i < n; i++ {
			v := target.Float(i)
			if !math.IsNaN(v) && v > thr {
				y[i] = 1
			}
		}
		return y, nil
	}
	// String target: most frequent value is class 0, everything else 1.
	mode, ok := target.Mode()
	if !ok {
		return nil, fmt.Errorf("intent: target column %q is all null", target.Name())
	}
	for i := 0; i < n; i++ {
		if target.IsValid(i) && target.StringAt(i) != mode {
			y[i] = 1
		}
	}
	return y, nil
}

// ModelDelta returns Δ_M: the absolute relative accuracy change in percent
// (Section 2.1), between the output datasets of the original and modified
// scripts.
func ModelDelta(origOut, newOut *frame.Frame, cfg ModelConfig) (float64, error) {
	accOrig, err := ModelAccuracy(origOut, cfg)
	if err != nil {
		return 0, err
	}
	accNew, err := ModelAccuracy(newOut, cfg)
	if err != nil {
		return 0, err
	}
	if accOrig == 0 {
		if accNew == 0 {
			return 0, nil
		}
		return 100, nil
	}
	return math.Abs(accOrig-accNew) / accOrig * 100, nil
}

// Measure identifies the user-intent measure in use.
type Measure int

// The supported user-intent measures.
const (
	// MeasureJaccard constrains Δ_J(D_OUT^s, D_OUT^ŝ) ≥ τ_J (value-set
	// Jaccard, the paper's Example 2.1 definition).
	MeasureJaccard Measure = iota
	// MeasureModel constrains Δ_M(D_OUT^s, D_OUT^ŝ) ≤ τ_M (percent).
	MeasureModel
	// MeasureRowJaccard constrains the stricter row-multiset Jaccard ≥ τ.
	MeasureRowJaccard
	// MeasureEMD constrains the normalized earth-mover distance ≤ τ
	// (the additional measure proposed in Section 8).
	MeasureEMD
	// MeasureFairness constrains the change in the downstream model's
	// demographic-parity gap to ≤ τ (Section 8's fairness direction);
	// requires Model.Target and Model.Protected.
	MeasureFairness
)

// String names the measure.
func (m Measure) String() string {
	switch m {
	case MeasureJaccard:
		return "table-jaccard"
	case MeasureModel:
		return "model-performance"
	case MeasureRowJaccard:
		return "row-jaccard"
	case MeasureEMD:
		return "earth-mover"
	case MeasureFairness:
		return "fairness"
	}
	return fmt.Sprintf("Measure(%d)", int(m))
}

// Constraint is a user-intent constraint: measure plus threshold.
type Constraint struct {
	Measure Measure
	// Tau is τ_J in [0,1] for MeasureJaccard (higher = stricter) or τ_M in
	// percent for MeasureModel (lower = stricter).
	Tau float64
	// Model configures the downstream model for MeasureModel.
	Model ModelConfig
}

// Satisfied reports whether the modified output preserves the user intent
// within the constraint threshold, along with the measured value.
func (c Constraint) Satisfied(origOut, newOut *frame.Frame) (bool, float64, error) {
	switch c.Measure {
	case MeasureJaccard:
		j, err := TableJaccard(origOut, newOut)
		if err != nil {
			return false, 0, err
		}
		return j >= c.Tau, j, nil
	case MeasureModel:
		d, err := ModelDelta(origOut, newOut, c.Model)
		if err != nil {
			return false, 0, err
		}
		return d <= c.Tau, d, nil
	case MeasureRowJaccard:
		j, err := RowJaccard(origOut, newOut)
		if err != nil {
			return false, 0, err
		}
		return j >= c.Tau, j, nil
	case MeasureEMD:
		d, err := EMD(origOut, newOut)
		if err != nil {
			return false, 0, err
		}
		return d <= c.Tau, d, nil
	case MeasureFairness:
		d, err := FairnessDelta(origOut, newOut, c.Model, c.Model.Protected)
		if err != nil {
			return false, 0, err
		}
		return d <= c.Tau, d, nil
	default:
		return false, 0, fmt.Errorf("intent: unknown measure %v", c.Measure)
	}
}
